file(REMOVE_RECURSE
  "CMakeFiles/wb_whiteboard.dir/wb_whiteboard.cpp.o"
  "CMakeFiles/wb_whiteboard.dir/wb_whiteboard.cpp.o.d"
  "wb_whiteboard"
  "wb_whiteboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_whiteboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
