# Empty compiler generated dependencies file for wb_whiteboard.
# This may be replaced when dependencies are built.
