# Empty compiler generated dependencies file for local_recovery.
# This may be replaced when dependencies are built.
