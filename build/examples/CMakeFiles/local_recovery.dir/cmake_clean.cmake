file(REMOVE_RECURSE
  "CMakeFiles/local_recovery.dir/local_recovery.cpp.o"
  "CMakeFiles/local_recovery.dir/local_recovery.cpp.o.d"
  "local_recovery"
  "local_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
