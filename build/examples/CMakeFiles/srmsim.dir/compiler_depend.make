# Empty compiler generated dependencies file for srmsim.
# This may be replaced when dependencies are built.
