file(REMOVE_RECURSE
  "CMakeFiles/srmsim.dir/srmsim.cpp.o"
  "CMakeFiles/srmsim.dir/srmsim.cpp.o.d"
  "srmsim"
  "srmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
