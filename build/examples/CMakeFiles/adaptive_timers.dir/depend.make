# Empty dependencies file for adaptive_timers.
# This may be replaced when dependencies are built.
