file(REMOVE_RECURSE
  "CMakeFiles/adaptive_timers.dir/adaptive_timers.cpp.o"
  "CMakeFiles/adaptive_timers.dir/adaptive_timers.cpp.o.d"
  "adaptive_timers"
  "adaptive_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
