file(REMOVE_RECURSE
  "CMakeFiles/srm_harness.dir/conformance.cpp.o"
  "CMakeFiles/srm_harness.dir/conformance.cpp.o.d"
  "CMakeFiles/srm_harness.dir/loss_round.cpp.o"
  "CMakeFiles/srm_harness.dir/loss_round.cpp.o.d"
  "CMakeFiles/srm_harness.dir/scenario.cpp.o"
  "CMakeFiles/srm_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/srm_harness.dir/session.cpp.o"
  "CMakeFiles/srm_harness.dir/session.cpp.o.d"
  "libsrm_harness.a"
  "libsrm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
