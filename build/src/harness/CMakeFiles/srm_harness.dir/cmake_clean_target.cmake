file(REMOVE_RECURSE
  "libsrm_harness.a"
)
