# Empty dependencies file for srm_harness.
# This may be replaced when dependencies are built.
