
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srm/adaptive.cpp" "src/srm/CMakeFiles/srm_core.dir/adaptive.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/srm/agent.cpp" "src/srm/CMakeFiles/srm_core.dir/agent.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/agent.cpp.o.d"
  "/root/repo/src/srm/baseline.cpp" "src/srm/CMakeFiles/srm_core.dir/baseline.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/baseline.cpp.o.d"
  "/root/repo/src/srm/local_groups.cpp" "src/srm/CMakeFiles/srm_core.dir/local_groups.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/local_groups.cpp.o.d"
  "/root/repo/src/srm/names.cpp" "src/srm/CMakeFiles/srm_core.dir/names.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/names.cpp.o.d"
  "/root/repo/src/srm/parity.cpp" "src/srm/CMakeFiles/srm_core.dir/parity.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/parity.cpp.o.d"
  "/root/repo/src/srm/session.cpp" "src/srm/CMakeFiles/srm_core.dir/session.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/session.cpp.o.d"
  "/root/repo/src/srm/session_hierarchy.cpp" "src/srm/CMakeFiles/srm_core.dir/session_hierarchy.cpp.o" "gcc" "src/srm/CMakeFiles/srm_core.dir/session_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/srm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
