file(REMOVE_RECURSE
  "libsrm_core.a"
)
