file(REMOVE_RECURSE
  "CMakeFiles/srm_core.dir/adaptive.cpp.o"
  "CMakeFiles/srm_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/srm_core.dir/agent.cpp.o"
  "CMakeFiles/srm_core.dir/agent.cpp.o.d"
  "CMakeFiles/srm_core.dir/baseline.cpp.o"
  "CMakeFiles/srm_core.dir/baseline.cpp.o.d"
  "CMakeFiles/srm_core.dir/local_groups.cpp.o"
  "CMakeFiles/srm_core.dir/local_groups.cpp.o.d"
  "CMakeFiles/srm_core.dir/names.cpp.o"
  "CMakeFiles/srm_core.dir/names.cpp.o.d"
  "CMakeFiles/srm_core.dir/parity.cpp.o"
  "CMakeFiles/srm_core.dir/parity.cpp.o.d"
  "CMakeFiles/srm_core.dir/session.cpp.o"
  "CMakeFiles/srm_core.dir/session.cpp.o.d"
  "CMakeFiles/srm_core.dir/session_hierarchy.cpp.o"
  "CMakeFiles/srm_core.dir/session_hierarchy.cpp.o.d"
  "libsrm_core.a"
  "libsrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
