file(REMOVE_RECURSE
  "CMakeFiles/srm_net.dir/drop_policy.cpp.o"
  "CMakeFiles/srm_net.dir/drop_policy.cpp.o.d"
  "CMakeFiles/srm_net.dir/network.cpp.o"
  "CMakeFiles/srm_net.dir/network.cpp.o.d"
  "CMakeFiles/srm_net.dir/routing.cpp.o"
  "CMakeFiles/srm_net.dir/routing.cpp.o.d"
  "CMakeFiles/srm_net.dir/topology.cpp.o"
  "CMakeFiles/srm_net.dir/topology.cpp.o.d"
  "libsrm_net.a"
  "libsrm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
