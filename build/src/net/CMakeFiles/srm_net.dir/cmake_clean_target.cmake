file(REMOVE_RECURSE
  "libsrm_net.a"
)
