# Empty compiler generated dependencies file for srm_net.
# This may be replaced when dependencies are built.
