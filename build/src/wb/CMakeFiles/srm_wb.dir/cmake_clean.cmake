file(REMOVE_RECURSE
  "CMakeFiles/srm_wb.dir/drawop.cpp.o"
  "CMakeFiles/srm_wb.dir/drawop.cpp.o.d"
  "CMakeFiles/srm_wb.dir/page.cpp.o"
  "CMakeFiles/srm_wb.dir/page.cpp.o.d"
  "CMakeFiles/srm_wb.dir/recorder.cpp.o"
  "CMakeFiles/srm_wb.dir/recorder.cpp.o.d"
  "CMakeFiles/srm_wb.dir/whiteboard.cpp.o"
  "CMakeFiles/srm_wb.dir/whiteboard.cpp.o.d"
  "libsrm_wb.a"
  "libsrm_wb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_wb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
