file(REMOVE_RECURSE
  "libsrm_wb.a"
)
