# Empty compiler generated dependencies file for srm_wb.
# This may be replaced when dependencies are built.
