# CMake generated Testfile for 
# Source directory: /root/repo/src/wb
# Build directory: /root/repo/build/src/wb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
