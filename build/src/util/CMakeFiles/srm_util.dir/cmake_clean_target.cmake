file(REMOVE_RECURSE
  "libsrm_util.a"
)
