# Empty compiler generated dependencies file for srm_util.
# This may be replaced when dependencies are built.
