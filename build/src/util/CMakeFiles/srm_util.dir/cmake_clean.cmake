file(REMOVE_RECURSE
  "CMakeFiles/srm_util.dir/flags.cpp.o"
  "CMakeFiles/srm_util.dir/flags.cpp.o.d"
  "CMakeFiles/srm_util.dir/rng.cpp.o"
  "CMakeFiles/srm_util.dir/rng.cpp.o.d"
  "CMakeFiles/srm_util.dir/stats.cpp.o"
  "CMakeFiles/srm_util.dir/stats.cpp.o.d"
  "CMakeFiles/srm_util.dir/table.cpp.o"
  "CMakeFiles/srm_util.dir/table.cpp.o.d"
  "libsrm_util.a"
  "libsrm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
