# Empty dependencies file for srm_topo.
# This may be replaced when dependencies are built.
