file(REMOVE_RECURSE
  "libsrm_topo.a"
)
