file(REMOVE_RECURSE
  "CMakeFiles/srm_topo.dir/builders.cpp.o"
  "CMakeFiles/srm_topo.dir/builders.cpp.o.d"
  "libsrm_topo.a"
  "libsrm_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
