file(REMOVE_RECURSE
  "CMakeFiles/srm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/srm_sim.dir/event_queue.cpp.o.d"
  "libsrm_sim.a"
  "libsrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
