# Empty compiler generated dependencies file for srm_sim.
# This may be replaced when dependencies are built.
