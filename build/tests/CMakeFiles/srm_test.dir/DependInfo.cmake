
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/srm/adaptive_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/adaptive_test.cpp.o.d"
  "/root/repo/tests/srm/agent_details_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/agent_details_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/agent_details_test.cpp.o.d"
  "/root/repo/tests/srm/agent_recovery_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/agent_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/agent_recovery_test.cpp.o.d"
  "/root/repo/tests/srm/baseline_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/baseline_test.cpp.o.d"
  "/root/repo/tests/srm/local_groups_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/local_groups_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/local_groups_test.cpp.o.d"
  "/root/repo/tests/srm/messages_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/messages_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/messages_test.cpp.o.d"
  "/root/repo/tests/srm/names_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/names_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/names_test.cpp.o.d"
  "/root/repo/tests/srm/page_state_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/page_state_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/page_state_test.cpp.o.d"
  "/root/repo/tests/srm/parity_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/parity_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/parity_test.cpp.o.d"
  "/root/repo/tests/srm/rate_limiter_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/rate_limiter_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/rate_limiter_test.cpp.o.d"
  "/root/repo/tests/srm/send_policy_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/send_policy_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/send_policy_test.cpp.o.d"
  "/root/repo/tests/srm/session_hierarchy_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/session_hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/session_hierarchy_test.cpp.o.d"
  "/root/repo/tests/srm/session_test.cpp" "tests/CMakeFiles/srm_test.dir/srm/session_test.cpp.o" "gcc" "tests/CMakeFiles/srm_test.dir/srm/session_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/srm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/srm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/srm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/srm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
