file(REMOVE_RECURSE
  "CMakeFiles/srm_test.dir/srm/adaptive_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/adaptive_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/agent_details_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/agent_details_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/agent_recovery_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/agent_recovery_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/baseline_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/baseline_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/local_groups_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/local_groups_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/messages_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/messages_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/names_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/names_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/page_state_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/page_state_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/parity_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/parity_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/rate_limiter_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/rate_limiter_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/send_policy_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/send_policy_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/session_hierarchy_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/session_hierarchy_test.cpp.o.d"
  "CMakeFiles/srm_test.dir/srm/session_test.cpp.o"
  "CMakeFiles/srm_test.dir/srm/session_test.cpp.o.d"
  "srm_test"
  "srm_test.pdb"
  "srm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
