file(REMOVE_RECURSE
  "CMakeFiles/wb_test.dir/wb/drawop_test.cpp.o"
  "CMakeFiles/wb_test.dir/wb/drawop_test.cpp.o.d"
  "CMakeFiles/wb_test.dir/wb/page_test.cpp.o"
  "CMakeFiles/wb_test.dir/wb/page_test.cpp.o.d"
  "CMakeFiles/wb_test.dir/wb/recorder_test.cpp.o"
  "CMakeFiles/wb_test.dir/wb/recorder_test.cpp.o.d"
  "CMakeFiles/wb_test.dir/wb/whiteboard_test.cpp.o"
  "CMakeFiles/wb_test.dir/wb/whiteboard_test.cpp.o.d"
  "wb_test"
  "wb_test.pdb"
  "wb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
