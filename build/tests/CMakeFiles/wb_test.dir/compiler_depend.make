# Empty compiler generated dependencies file for wb_test.
# This may be replaced when dependencies are built.
