file(REMOVE_RECURSE
  "CMakeFiles/ablation_backoff.dir/ablation_backoff.cpp.o"
  "CMakeFiles/ablation_backoff.dir/ablation_backoff.cpp.o.d"
  "ablation_backoff"
  "ablation_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
