# Empty dependencies file for fig15_local_recovery.
# This may be replaced when dependencies are built.
