file(REMOVE_RECURSE
  "CMakeFiles/fig15_local_recovery.dir/fig15_local_recovery.cpp.o"
  "CMakeFiles/fig15_local_recovery.dir/fig15_local_recovery.cpp.o.d"
  "fig15_local_recovery"
  "fig15_local_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_local_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
