file(REMOVE_RECURSE
  "CMakeFiles/fig12_nonadaptive.dir/fig12_nonadaptive.cpp.o"
  "CMakeFiles/fig12_nonadaptive.dir/fig12_nonadaptive.cpp.o.d"
  "fig12_nonadaptive"
  "fig12_nonadaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nonadaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
