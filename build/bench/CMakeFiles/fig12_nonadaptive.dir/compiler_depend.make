# Empty compiler generated dependencies file for fig12_nonadaptive.
# This may be replaced when dependencies are built.
