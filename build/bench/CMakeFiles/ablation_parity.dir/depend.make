# Empty dependencies file for ablation_parity.
# This may be replaced when dependencies are built.
