file(REMOVE_RECURSE
  "CMakeFiles/ablation_parity.dir/ablation_parity.cpp.o"
  "CMakeFiles/ablation_parity.dir/ablation_parity.cpp.o.d"
  "ablation_parity"
  "ablation_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
