file(REMOVE_RECURSE
  "CMakeFiles/fig3_random_trees.dir/fig3_random_trees.cpp.o"
  "CMakeFiles/fig3_random_trees.dir/fig3_random_trees.cpp.o.d"
  "fig3_random_trees"
  "fig3_random_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_random_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
