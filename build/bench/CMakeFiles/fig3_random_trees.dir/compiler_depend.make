# Empty compiler generated dependencies file for fig3_random_trees.
# This may be replaced when dependencies are built.
