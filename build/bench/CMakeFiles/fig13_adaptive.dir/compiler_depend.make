# Empty compiler generated dependencies file for fig13_adaptive.
# This may be replaced when dependencies are built.
