file(REMOVE_RECURSE
  "CMakeFiles/fig13_adaptive.dir/fig13_adaptive.cpp.o"
  "CMakeFiles/fig13_adaptive.dir/fig13_adaptive.cpp.o.d"
  "fig13_adaptive"
  "fig13_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
