file(REMOVE_RECURSE
  "CMakeFiles/fig5_star_tradeoff.dir/fig5_star_tradeoff.cpp.o"
  "CMakeFiles/fig5_star_tradeoff.dir/fig5_star_tradeoff.cpp.o.d"
  "fig5_star_tradeoff"
  "fig5_star_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_star_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
