# Empty dependencies file for fig5_star_tradeoff.
# This may be replaced when dependencies are built.
