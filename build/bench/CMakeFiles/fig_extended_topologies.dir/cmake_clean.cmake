file(REMOVE_RECURSE
  "CMakeFiles/fig_extended_topologies.dir/fig_extended_topologies.cpp.o"
  "CMakeFiles/fig_extended_topologies.dir/fig_extended_topologies.cpp.o.d"
  "fig_extended_topologies"
  "fig_extended_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_extended_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
