# Empty dependencies file for fig7_dense_tree_tradeoff.
# This may be replaced when dependencies are built.
