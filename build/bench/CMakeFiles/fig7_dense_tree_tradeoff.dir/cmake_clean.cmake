file(REMOVE_RECURSE
  "CMakeFiles/fig7_dense_tree_tradeoff.dir/fig7_dense_tree_tradeoff.cpp.o"
  "CMakeFiles/fig7_dense_tree_tradeoff.dir/fig7_dense_tree_tradeoff.cpp.o.d"
  "fig7_dense_tree_tradeoff"
  "fig7_dense_tree_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dense_tree_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
