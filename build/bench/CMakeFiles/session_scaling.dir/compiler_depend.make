# Empty compiler generated dependencies file for session_scaling.
# This may be replaced when dependencies are built.
