
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/session_scaling.cpp" "bench/CMakeFiles/session_scaling.dir/session_scaling.cpp.o" "gcc" "bench/CMakeFiles/session_scaling.dir/session_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/srm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/srm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/srm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/srm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/srm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
