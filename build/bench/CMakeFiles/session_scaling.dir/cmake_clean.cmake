file(REMOVE_RECURSE
  "CMakeFiles/session_scaling.dir/session_scaling.cpp.o"
  "CMakeFiles/session_scaling.dir/session_scaling.cpp.o.d"
  "session_scaling"
  "session_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
