# Empty compiler generated dependencies file for fig8_sparse_tree_tradeoff.
# This may be replaced when dependencies are built.
