file(REMOVE_RECURSE
  "CMakeFiles/fig8_sparse_tree_tradeoff.dir/fig8_sparse_tree_tradeoff.cpp.o"
  "CMakeFiles/fig8_sparse_tree_tradeoff.dir/fig8_sparse_tree_tradeoff.cpp.o.d"
  "fig8_sparse_tree_tradeoff"
  "fig8_sparse_tree_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sparse_tree_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
