file(REMOVE_RECURSE
  "CMakeFiles/fig_mixed_drops.dir/fig_mixed_drops.cpp.o"
  "CMakeFiles/fig_mixed_drops.dir/fig_mixed_drops.cpp.o.d"
  "fig_mixed_drops"
  "fig_mixed_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_mixed_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
