# Empty compiler generated dependencies file for fig_mixed_drops.
# This may be replaced when dependencies are built.
