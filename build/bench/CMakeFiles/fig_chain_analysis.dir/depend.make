# Empty dependencies file for fig_chain_analysis.
# This may be replaced when dependencies are built.
