file(REMOVE_RECURSE
  "CMakeFiles/fig_chain_analysis.dir/fig_chain_analysis.cpp.o"
  "CMakeFiles/fig_chain_analysis.dir/fig_chain_analysis.cpp.o.d"
  "fig_chain_analysis"
  "fig_chain_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_chain_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
