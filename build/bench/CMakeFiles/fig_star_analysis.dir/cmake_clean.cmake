file(REMOVE_RECURSE
  "CMakeFiles/fig_star_analysis.dir/fig_star_analysis.cpp.o"
  "CMakeFiles/fig_star_analysis.dir/fig_star_analysis.cpp.o.d"
  "fig_star_analysis"
  "fig_star_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_star_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
