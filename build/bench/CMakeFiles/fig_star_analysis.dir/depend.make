# Empty dependencies file for fig_star_analysis.
# This may be replaced when dependencies are built.
