file(REMOVE_RECURSE
  "CMakeFiles/fig4b_source_adjacent.dir/fig4b_source_adjacent.cpp.o"
  "CMakeFiles/fig4b_source_adjacent.dir/fig4b_source_adjacent.cpp.o.d"
  "fig4b_source_adjacent"
  "fig4b_source_adjacent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_source_adjacent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
