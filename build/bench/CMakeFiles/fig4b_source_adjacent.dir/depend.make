# Empty dependencies file for fig4b_source_adjacent.
# This may be replaced when dependencies are built.
