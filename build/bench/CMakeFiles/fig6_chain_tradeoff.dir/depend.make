# Empty dependencies file for fig6_chain_tradeoff.
# This may be replaced when dependencies are built.
