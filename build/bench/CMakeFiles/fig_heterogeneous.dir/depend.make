# Empty dependencies file for fig_heterogeneous.
# This may be replaced when dependencies are built.
