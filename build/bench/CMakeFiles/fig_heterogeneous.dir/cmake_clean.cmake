file(REMOVE_RECURSE
  "CMakeFiles/fig_heterogeneous.dir/fig_heterogeneous.cpp.o"
  "CMakeFiles/fig_heterogeneous.dir/fig_heterogeneous.cpp.o.d"
  "fig_heterogeneous"
  "fig_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
