# Empty compiler generated dependencies file for fig4_sparse_tree.
# This may be replaced when dependencies are built.
