file(REMOVE_RECURSE
  "CMakeFiles/fig4_sparse_tree.dir/fig4_sparse_tree.cpp.o"
  "CMakeFiles/fig4_sparse_tree.dir/fig4_sparse_tree.cpp.o.d"
  "fig4_sparse_tree"
  "fig4_sparse_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sparse_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
