// Quickstart: the smallest complete SRM program.
//
// Builds a 6-node chain network, runs a 6-member SRM session on it, drops a
// packet on a link, and watches the framework recover it: the member just
// below the failure requests, the member just above answers, everyone else
// is suppressed.
//
//   $ ./examples/quickstart
#include <iostream>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

int main() {
  using namespace srm;

  // 1. A network: six nodes in a chain, one second of delay per link.
  net::Topology topo = topo::make_chain(6);

  // 2. A session: an SRM agent on every node.  Timer parameters C1=C2=2,
  //    D1=D2=1; distances from the routing oracle (see SrmConfig for the
  //    session-message-estimated alternative).
  SrmConfig config;
  config.timers = TimerParams{2.0, 2.0, 1.0, 1.0};
  harness::SimSession session(std::move(topo), {0, 1, 2, 3, 4, 5},
                              {config, /*seed=*/7, /*group=*/1});

  // 3. Watch the control traffic.
  session.network().set_send_observer(
      [&](net::NodeId from, const net::Packet& p) {
        std::cout << "  t=" << session.queue().now() << "s  node " << from
                  << " sends " << p.payload->describe() << "\n";
      });

  // 4. Drop the first data packet on the link between nodes 2 and 3, so
  //    members 3, 4, 5 miss it.
  auto drop = std::make_shared<net::ScriptedLinkDrop>(
      2, 3, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      });
  session.network().set_drop_policy(drop);

  // 5. Member 0 sends two ADUs on its page; the first is lost downstream of
  //    node 2, and the gap revealed by the second triggers recovery.
  const PageId page{0, 0};
  std::cout << "sending (packet seq 0 will be dropped on link 2-3):\n";
  session.agent_at(0).send_data(page, {'h', 'i'});
  session.queue().schedule_after(1.0, [&] {
    session.agent_at(0).send_data(page, {'!'});
  });
  session.queue().run();

  // 6. Everyone has everything.
  std::cout << "\nfinal state:\n";
  for (net::NodeId n = 0; n < 6; ++n) {
    const auto& m = session.agent_at(n).metrics();
    std::cout << "  node " << n << ": has seq0="
              << session.agent_at(n).has_data(DataName{0, page, 0})
              << "  requests_sent=" << m.requests_sent
              << "  repairs_sent=" << m.repairs_sent
              << "  recoveries=" << m.recoveries << "\n";
  }
  return 0;
}
