// The adaptive timer algorithm in action (Sec. VII-A).
//
// A sparse 40-member session on a 500-node tree suffers a persistent lossy
// link.  With fixed timer parameters every loss triggers several duplicate
// requests; with the adaptive algorithm, members tune C1/C2/D1/D2 from the
// duplicates and delays they observe, and after a few dozen losses the
// session converges to ~1 request and ~1 repair per loss.
//
//   $ ./examples/adaptive_timers [--rounds=60] [--seed=3]
#include <iostream>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  const std::uint64_t seed = flags.get_seed(3);
  const int rounds = static_cast<int>(flags.get_int("rounds", 60));

  util::Rng rng(seed);
  const std::size_t nodes = 500, g = 40;

  auto make_session = [&](bool adaptive,
                          const std::vector<net::NodeId>& members) {
    SrmConfig cfg;
    cfg.timers = paper_fixed_params(g);
    cfg.adaptive.enabled = adaptive;
    if (adaptive) cfg.backoff_factor = 3.0;
    return std::make_unique<harness::SimSession>(
        topo::make_bounded_degree_tree(nodes, 4), members,
        harness::SimSession::Options{cfg, seed, 1});
  };

  // As in the paper's Fig. 12/13, pick a membership and drop location that
  // produce duplicate control traffic under fixed timers.
  std::vector<net::NodeId> members;
  net::NodeId source = 0;
  harness::DirectedLink congested{0, 0};
  harness::RoundSpec round;
  for (int attempt = 0; attempt < 100; ++attempt) {
    members = harness::choose_members(nodes, g, rng);
    source = members[rng.index(g)];
    auto probe = make_session(false, members);
    congested = harness::choose_congested_link(probe->network().routing(),
                                               source, members, rng);
    round.source_node = source;
    round.congested = congested;
    round.page = PageId{static_cast<SourceId>(source), 0};
    const auto r = harness::run_loss_round(*probe, round, 0);
    if (r.requests + r.repairs >= 5) break;
  }

  auto fixed = make_session(false, members);
  auto adaptive = make_session(true, members);

  std::cout << "sparse session: " << g << " members on a " << nodes
            << "-node degree-4 tree, one persistent lossy link\n"
            << "per-loss control traffic (requests+repairs), fixed vs "
               "adaptive timers:\n\n";

  util::Table table({"round", "fixed req", "fixed rep", "adaptive req",
                     "adaptive rep", "adaptive C1@src", "adaptive C2@src"});
  for (int r = 0; r < rounds; ++r) {
    const auto rf = harness::run_loss_round(*fixed, round, r * 2);
    const auto ra = harness::run_loss_round(*adaptive, round, r * 2);
    if (r < 5 || (r + 1) % 10 == 0) {
      // Show the adapted parameters of one affected member for flavor.
      const auto affected = harness::affected_members(
          adaptive->network().routing(), source, congested, members);
      const SrmAgent& probe = adaptive->agent_at(affected.front());
      table.add_row({util::Table::num(static_cast<std::size_t>(r + 1)),
                     util::Table::num(rf.requests),
                     util::Table::num(rf.repairs),
                     util::Table::num(ra.requests),
                     util::Table::num(ra.repairs),
                     util::Table::num(probe.c1(), 2),
                     util::Table::num(probe.c2(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive session settles near one request and one "
               "repair per loss;\nthe fixed-parameter session keeps paying "
               "the duplicate tax forever.\n";
  return 0;
}
