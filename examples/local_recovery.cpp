// TTL-scoped local recovery (Sec. VII-B).
//
// A tail circuit: a small office LAN hangs off a long link into a backbone
// tree.  Losses on the office's uplink affect only the three office
// members.  With global recovery, every request and repair floods all 60
// session members; with two-step TTL-scoped recovery plus a strategically
// placed cache member at the head of the tail circuit (the paper's
// suggestion in Sec. IX-B), recovery traffic stays in the office.
//
//   $ ./examples/local_recovery
#include <iostream>
#include <set>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

int main() {
  using namespace srm;

  // Backbone: 40-node degree-4 tree.  Tail circuit: node 40 (cache box at
  // the head of the tail) - long link - node 41 (office router), with
  // office hosts 42, 43, 44.
  auto topo = topo::make_bounded_degree_tree(40, 4);
  const net::NodeId cache = topo.add_node();   // 40
  const net::NodeId office = topo.add_node();  // 41
  topo.add_link(12, cache, 1.0);
  topo.add_link(cache, office, 5.0);  // the long tail circuit
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 3; ++i) {
    const net::NodeId h = topo.add_node();
    topo.add_link(office, h, 0.5);
    hosts.push_back(h);
  }

  // Members: 20 backbone nodes, the cache, and the office hosts.
  std::vector<net::NodeId> members;
  for (net::NodeId v = 0; v < 20; ++v) members.push_back(v);
  members.push_back(cache);
  for (net::NodeId h : hosts) members.push_back(h);

  auto run = [&](bool scoped) {
    SrmConfig cfg;
    cfg.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
    cfg.local_recovery.enabled = scoped;
    harness::SimSession session(topo, members, {cfg, 77, 1});
    if (scoped) {
      // Office hosts know their loss neighborhood is the office plus the
      // cache at the head of the tail circuit: TTL 2 covers
      // host-office-cache and the sibling hosts.
      for (net::NodeId h : hosts) {
        session.agent_at(h).set_request_ttl_policy(
            [](const DataName&) { return 2; });
      }
    }

    // Count which members recovery traffic reaches.
    std::set<net::NodeId> touched;
    session.network().set_delivery_observer(
        [&](const net::Packet& p, const net::DeliveryInfo& info) {
          if (dynamic_cast<const RequestMessage*>(p.payload.get()) ||
              dynamic_cast<const RepairMessage*>(p.payload.get())) {
            touched.insert(info.receiver);
          }
        });

    // The office uplink (cache -> office) drops the first packet from
    // backbone member 0.
    const PageId page{0, 0};
    auto drop = std::make_shared<net::ScriptedLinkDrop>(
        cache, office, [](const net::Packet& p) {
          const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
          return d != nullptr && d->name().seq == 0;
        });
    session.network().set_drop_policy(drop);

    session.agent_at(0).send_data(page, {1});
    session.queue().schedule_after(1.0,
                                   [&] { session.agent_at(0).send_data(page, {2}); });
    session.queue().run();

    std::size_t recovered = 0;
    for (net::NodeId h : hosts) {
      recovered += session.agent_at(h).has_data(DataName{0, page, 0});
    }
    std::cout << (scoped ? "scoped" : "global")
              << " recovery: members touched by request/repair traffic = "
              << touched.size() << "/" << members.size()
              << ", office hosts recovered = " << recovered << "/3\n";
    return touched.size();
  };

  const std::size_t global_touched = run(false);
  const std::size_t scoped_touched = run(true);
  std::cout << "\ntwo-step TTL scoping confined recovery to "
            << scoped_touched << " members instead of " << global_touched
            << " — the backbone at large never saw it.\n";
  return scoped_touched < global_touched ? 0 : 1;
}
