// srmsim — a command-line scenario driver for the SRM simulator, in the
// spirit of the ns scripts the authors used.  Builds a topology, places a
// session, injects losses, runs loss-recovery rounds, and reports the
// per-round statistics plus a conformance-check summary.
//
// Examples:
//   ./examples/srmsim --topo=btree --nodes=1000 --degree=4 --members=50
//                      --rounds=40 --adaptive=true --seed=7   (one line)
//   ./examples/srmsim --topo=random-tree --nodes=200 --members=200
//   ./examples/srmsim --topo=transit-stub --members=60 --rounds=20
//   ./examples/srmsim --topo=star --nodes=100 --c1=0 --c2=50
//
// Run `srmsim --help` for the flag table (kept in sync with README.md by
// scripts/check_docs.py).
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/conformance.h"
#include "harness/fault_scenarios.h"
#include "harness/loss_round.h"
#include "srm/fec/session.h"
#include "harness/replication.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/timeline.h"
#include "trace/trace.h"
#include "transport/udp_transport.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/workload.h"

namespace {

using namespace srm;

// The authoritative flag table; README.md's srmsim section mirrors it and
// scripts/check_docs.py fails CI if the two drift apart.
constexpr const char* kUsage = R"(srmsim: SRM loss-recovery scenario driver

Flags (defaults in brackets):
  --topo          btree | random-tree | random-graph | chain | star | ring |
                  dumbbell | transit-stub | lans            [btree]
  --nodes         topology size                             [1000]
  --degree        interior degree for btree                 [4]
  --edges         edge count for random-graph               [3*nodes/2]
  --members       session size (0 = all nodes)              [50]
  --rounds        loss-recovery rounds                      [10]
  --adaptive      adaptive timer adjustment                 [false]
  --c1 --c2       request timer parameters                  [2/2]
  --d1 --d2       repair timer parameters                   [log10 G]
  --backoff       request-timer backoff multiplier          [3]
  --seed          RNG seed                                  [1]
  --verbose       print every request/repair                [false]
  --trace         write a structured trace to this file     [off]
  --trace-mask    categories: sim,net,srm,fault | all | none  [srm]
  --trace-format  jsonl | binary                            [jsonl]
  --fec           generation-framed coded repair: XOR/GF(256)
                  parity ADUs with a loss-adaptive budget
                  (ARCHITECTURE.md §11)                     [false]
  --fec-max-k     parity-budget ceiling per generation (1-4) [4]
  --hierarchy     hierarchical session messages: local areas
                  with TTL-scoped reports and elected
                  representatives (ARCHITECTURE.md §12);
                  a warm-up runs before the loss rounds     [false]
  --areas         local-area count for --hierarchy
                  (0 = about sqrt(members))                 [0]
  --local-ttl     TTL of --hierarchy local reports          [4]
  --faults        fault-plan file: link churn, partitions,
                  membership dynamics, bursty loss
                  (format: ARCHITECTURE.md)                 [off]
  --fault-deadline  recovery deadline in seconds for the
                  fault invariant checker                   [100]
  --routing-verify  cross-check every journal-repaired
                  routing tree against a fresh Dijkstra
                  (same switch as SRM_ROUTING_VERIFY=1)     [false]
  --kernel-threads  parallel (PDES) kernel workers; 0 runs
                  the sequential kernel (capped at the
                  hardware concurrency)                     [0]
  --kernel-regions  region count for the parallel kernel
                  (0 = derive from the node count; keep
                  fixed when comparing thread counts)       [0]
  --pdes-verify   run the scenario on the sequential AND
                  parallel kernels and compare per-round
                  stats; with --faults also diffs the full
                  trace across parallel thread counts;
                  exits non-zero on any mismatch            [false]
  --workload      run a heavy-traffic workload instead of
                  the loss rounds: flash-crowd | conference
                  | diurnal | repair-storm, judged by the
                  recovery-invariant checker
                  (ARCHITECTURE.md §13)                     [off]
  --transport     backend for --workload: sim (virtual
                  time) | udp (real multicast on loopback,
                  wall time); udp requires --workload       [sim]
  --help          print this table and exit
)";

struct BuiltTopology {
  net::Topology topo;
  std::vector<net::NodeId> candidates;  // nodes members may be placed on
};

BuiltTopology build_topology(const std::string& kind, std::size_t nodes,
                             int degree, std::size_t edges, util::Rng& rng) {
  auto everything = [](const net::Topology& t) {
    std::vector<net::NodeId> v(t.node_count());
    for (std::size_t i = 0; i < t.node_count(); ++i) {
      v[i] = static_cast<net::NodeId>(i);
    }
    return v;
  };
  if (kind == "btree") {
    auto t = topo::make_bounded_degree_tree(nodes, degree);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "random-tree") {
    auto t = topo::make_random_tree(nodes, rng);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "random-graph") {
    auto t = topo::make_random_graph(nodes, edges, rng);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "chain") {
    auto t = topo::make_chain(nodes);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "ring") {
    auto t = topo::make_ring(nodes);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "star") {
    auto s = topo::make_star(nodes);
    return {std::move(s.topo), std::move(s.leaves)};
  }
  if (kind == "dumbbell") {
    auto d = topo::make_dumbbell(nodes / 2);
    std::vector<net::NodeId> c = d.left_hosts;
    c.insert(c.end(), d.right_hosts.begin(), d.right_hosts.end());
    return {std::move(d.topo), std::move(c)};
  }
  if (kind == "transit-stub") {
    auto ts = topo::make_transit_stub(4, 3, std::max<std::size_t>(4, nodes / 48),
                                      rng);
    return {std::move(ts.topo), std::move(ts.stub_nodes)};
  }
  if (kind == "lans") {
    auto tl = topo::make_tree_of_lans(std::max<std::size_t>(2, nodes / 6), 3, 5);
    return {std::move(tl.topo), std::move(tl.workstations)};
  }
  throw std::invalid_argument("unknown --topo: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  const std::string kind = flags.get_string("topo", "btree");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  const int degree = static_cast<int>(flags.get_int("degree", 4));
  const auto edges = static_cast<std::size_t>(
      flags.get_int("edges", static_cast<std::int64_t>(nodes) * 3 / 2));
  auto member_count = static_cast<std::size_t>(flags.get_int("members", 50));
  const int rounds = static_cast<int>(flags.get_int("rounds", 10));
  const std::uint64_t seed = flags.get_seed(1);
  const bool verbose = flags.get_bool("verbose", false);
  const std::string trace_path = flags.get_string("trace", "");
  const std::uint32_t trace_mask =
      trace::parse_mask(flags.get_string("trace-mask", "srm"));
  const std::string trace_format = flags.get_string("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "binary") {
    std::cerr << "srmsim: unknown --trace-format: " << trace_format << "\n";
    return 1;
  }
  // Workload mode: a scripted heavy-traffic scenario (ARCHITECTURE.md §13)
  // replaces the loss rounds entirely.  --members scales the peak
  // membership; --transport selects the backend the identical spec runs on.
  const std::string transport_kind = flags.get_string("transport", "sim");
  const std::string workload_name = flags.get_string("workload", "");
  if (transport_kind != "sim" && transport_kind != "udp") {
    std::cerr << "srmsim: unknown --transport: " << transport_kind << "\n";
    return 1;
  }
  if (workload_name.empty() && transport_kind == "udp") {
    std::cerr << "srmsim: --transport=udp requires --workload (the figure "
                 "rounds are simulator-only)\n";
    return 1;
  }
  if (!workload_name.empty()) {
    workload::WorkloadSpec wspec;
    try {
      wspec = workload::make_workload(
          workload_name, member_count == 0 ? 48 : member_count, seed);
    } catch (const std::invalid_argument& e) {
      std::cerr << "srmsim: " << e.what() << "\n";
      return 1;
    }
    const bool udp = transport_kind == "udp";
    if (udp && !transport::UdpTransport::available()) {
      std::cout << "srmsim: loopback multicast unavailable; skipping "
                   "--transport=udp workload\n";
      return 0;
    }
    std::cout << "workload '" << wspec.name << "': " << wspec.peak_members
              << " peak members (" << wspec.initial_members
              << " initial), seed " << seed << ", " << transport_kind
              << " backend, " << wspec.actions.size()
              << " scripted actions over " << wspec.duration << "s\n\n";
    const workload::WorkloadResult r = udp
                                           ? workload::run_workload_udp(wspec)
                                           : workload::run_workload_sim(wspec);
    util::Table wtable({"sends", "joins", "departs", "drops", "losses",
                        "requests", "repairs", "recovered", "p50 (s)",
                        "p99 (s)", "max (s)"});
    wtable.add_row(
        {util::Table::num(r.data_sent), util::Table::num(r.joins),
         util::Table::num(r.departures), util::Table::num(r.scripted_drops),
         util::Table::num(r.losses), util::Table::num(r.requests),
         util::Table::num(r.repairs), util::Table::num(r.recoveries),
         util::Table::num(r.recovery_p50, 2),
         util::Table::num(r.recovery_p99, 2),
         util::Table::num(r.recovery_max, 2)});
    wtable.print(std::cout);
    std::cout << "\nfingerprint 0x" << std::hex << r.fingerprint << std::dec
              << "\n"
              << r.checker.summary();
    return r.passed ? 0 : 1;
  }

  const std::string faults_path = flags.get_string("faults", "");
  const double fault_deadline = flags.get_double("fault-deadline", 100.0);
  const bool routing_verify = flags.get_bool("routing-verify", false);
  const long long kernel_threads_flag = flags.get_int("kernel-threads", 0);
  // srmsim runs one session, so the whole hardware budget belongs to the
  // kernel side (replication = 1); plan_thread_budget caps oversubscription.
  unsigned kernel_threads =
      harness::plan_thread_budget(
          /*requested_replication=*/1,
          kernel_threads_flag > 0 ? static_cast<unsigned>(kernel_threads_flag)
                                  : 0u)
          .kernel_threads;
  const auto kernel_regions =
      static_cast<std::uint32_t>(flags.get_int("kernel-regions", 0));
  const bool pdes_verify = flags.get_bool("pdes-verify", false);
  const bool fec = flags.get_bool("fec", false);
  const auto fec_max_k =
      static_cast<std::size_t>(flags.get_int("fec-max-k", 4));
  if (fec && (fec_max_k < 1 || fec_max_k > fec::kMaxParity)) {
    std::cerr << "srmsim: --fec-max-k must be in [1, 4]\n";
    return 1;
  }
  const bool hierarchy = flags.get_bool("hierarchy", false);
  const auto hier_areas = static_cast<std::uint32_t>(flags.get_int("areas", 0));
  const int local_ttl = static_cast<int>(flags.get_int("local-ttl", 4));
  if (local_ttl < 1) {
    std::cerr << "srmsim: --local-ttl must be >= 1\n";
    return 1;
  }

  fault::FaultPlan fault_plan;
  if (!faults_path.empty()) {
    std::ifstream in(faults_path);
    if (!in) {
      std::cerr << "srmsim: cannot open --faults file: " << faults_path
                << "\n";
      return 1;
    }
    try {
      fault_plan = fault::FaultPlan::parse(in);
    } catch (const std::exception& e) {
      std::cerr << "srmsim: " << faults_path << ": " << e.what() << "\n";
      return 1;
    }
  }
  util::Rng rng(seed);
  BuiltTopology built = build_topology(kind, nodes, degree, edges, rng);
  if (member_count == 0 || member_count > built.candidates.size()) {
    member_count = built.candidates.size();
  }
  rng.shuffle(built.candidates);
  std::vector<net::NodeId> members(built.candidates.begin(),
                                   built.candidates.begin() +
                                       static_cast<long>(member_count));
  std::sort(members.begin(), members.end());

  SrmConfig cfg;
  const double lg = std::log10(static_cast<double>(member_count));
  cfg.timers.c1 = flags.get_double("c1", 2.0);
  cfg.timers.c2 = flags.get_double("c2", 2.0);
  cfg.timers.d1 = flags.get_double("d1", lg);
  cfg.timers.d2 = flags.get_double("d2", lg);
  cfg.backoff_factor = flags.get_double("backoff", 3.0);
  cfg.adaptive.enabled = flags.get_bool("adaptive", false);
  cfg.fec.enabled = fec;
  cfg.fec.max_k = fec_max_k;
  cfg.hierarchy.enabled = hierarchy;
  cfg.hierarchy.areas = hier_areas;
  cfg.hierarchy.local_ttl = local_ttl;

  std::cout << "srmsim: " << kind << " with " << built.topo.node_count()
            << " nodes, " << member_count << " members, seed " << seed
            << (cfg.adaptive.enabled ? ", adaptive timers" : "")
            << (hierarchy ? ", hierarchical sessions" : "")
            << (fec ? ", coded repair (max K " + std::to_string(fec_max_k) +
                          ")"
                    : "")
            << "\n";

  if (pdes_verify) {
    // Run the identical scenario on both kernels and diff everything the
    // harness measures.  The parallel kernel's claim is event-order
    // equivalence, so the comparison is exact — including the double-valued
    // delay statistics, which must match bit for bit.
    const unsigned kt = kernel_threads > 0 ? kernel_threads : 1;
    std::vector<std::string> diffs;
    const auto stat_diff = [&](const char* what, std::uint64_t x,
                               std::uint64_t y) {
      if (x != y) {
        std::ostringstream os;
        os << "network " << what << ": sequential " << x << " vs parallel "
           << y;
        diffs.push_back(os.str());
      }
    };
    if (!fault_plan.empty()) {
      // With a fault plan the scenario includes stochastic (keyed
      // Gilbert-Elliott) loss, churn, and partitions.  Three runs: the
      // sequential kernel, the parallel kernel at 1 thread, and at the
      // requested thread count.  The parallel runs must produce
      // bit-identical merged traces (the strongest claim); the parallel
      // run must match the sequential one on network stats and on every
      // recovery-invariant-checker counter.
      struct FaultModeResult {
        std::vector<trace::Event> events;
        net::NetworkStats stats;
        fault::CheckerReport report;
        std::size_t disrupted = 0;
      };
      const auto run_fault_mode = [&](unsigned kthreads) {
        FaultModeResult mr;
        harness::SimSession::Options opts{cfg, seed, /*group=*/1};
        opts.kernel_threads = kthreads;
        opts.kernel_regions = kernel_regions;
        harness::SimSession session(net::Topology(built.topo), members, opts);
        trace::VectorSink capture;
        trace::Tracer vtracer;
        vtracer.set_sink(&capture);
        vtracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                         static_cast<std::uint32_t>(trace::Category::kFault));
        session.set_tracer(&vtracer);
        fault::FaultInjector injector(
            session.queue(), session.mutable_topology(), session.network(),
            fault_plan, session.rng().fork());
        injector.set_membership_hooks(harness::membership_hooks(session));
        injector.set_tracer(session.control_tracer());
        injector.arm();
        util::Rng pick(seed * 2 + 1);
        const net::NodeId src = members[pick.index(members.size())];
        harness::RoundSpec rspec;
        rspec.source_node = src;
        rspec.congested = harness::choose_congested_link(
            session.network().routing(), src, members, pick);
        rspec.page = PageId{static_cast<SourceId>(src), 0};
        for (int r = 0; r < rounds; ++r) {
          try {
            harness::run_loss_round(session, rspec,
                                    static_cast<SeqNo>(r) * 2);
          } catch (const std::exception&) {
            ++mr.disrupted;  // the plan ate the round; all runs must agree
          }
        }
        fault::CheckerOptions copts;
        copts.deadline = fault_deadline;
        mr.report = fault::RecoveryInvariantChecker(copts).check(
            capture.events(), injector.disruption_windows(),
            session.queue().now());
        mr.events = capture.events();
        mr.stats = session.network_stats();
        return mr;
      };
      const FaultModeResult seq = run_fault_mode(0);
      const FaultModeResult p1 = run_fault_mode(1);
      const FaultModeResult pkt = run_fault_mode(kt);
      const auto events_equal = [](const trace::Event& a,
                                   const trace::Event& b) {
        return a.type == b.type && a.t == b.t && a.actor == b.actor &&
               a.a == b.a && a.b == b.b && a.c == b.c && a.d == b.d &&
               a.e == b.e && a.x == b.x && a.y == b.y;
      };
      if (p1.events.size() != pkt.events.size()) {
        std::ostringstream os;
        os << "parallel trace length: 1-thread " << p1.events.size()
           << " events vs " << kt << "-thread " << pkt.events.size();
        diffs.push_back(os.str());
      } else {
        for (std::size_t i = 0; i < p1.events.size(); ++i) {
          if (!events_equal(p1.events[i], pkt.events[i])) {
            std::ostringstream os;
            os << "parallel traces diverge at event " << i << " (t="
               << p1.events[i].t << " vs t=" << pkt.events[i].t << ")";
            diffs.push_back(os.str());
            break;
          }
        }
      }
      stat_diff("multicasts", seq.stats.multicasts_sent,
                pkt.stats.multicasts_sent);
      stat_diff("unicasts", seq.stats.unicasts_sent, pkt.stats.unicasts_sent);
      stat_diff("link transmissions", seq.stats.link_transmissions,
                pkt.stats.link_transmissions);
      stat_diff("deliveries", seq.stats.deliveries, pkt.stats.deliveries);
      stat_diff("drops", seq.stats.drops, pkt.stats.drops);
      stat_diff("checker losses", seq.report.losses, pkt.report.losses);
      stat_diff("checker recovered", seq.report.recovered,
                pkt.report.recovered);
      stat_diff("checker storm violations", seq.report.storm_violations,
                pkt.report.storm_violations);
      stat_diff("checker verdict", seq.report.passed ? 1 : 0,
                pkt.report.passed ? 1 : 0);
      stat_diff("disrupted rounds", seq.disrupted, pkt.disrupted);
      if (diffs.empty()) {
        std::cout << "pdes-verify: OK (fault plan, " << p1.events.size()
                  << "-event trace bit-identical at 1 vs " << kt
                  << " threads; stats and recovery invariants match the "
                     "sequential kernel)\n";
        return 0;
      }
      std::cout << "pdes-verify: MISMATCH (" << diffs.size()
                << " differences)\n";
      for (const std::string& d : diffs) std::cout << "  " << d << "\n";
      return 1;
    }
    struct ModeResult {
      std::vector<harness::RoundResult> rounds;
      net::NetworkStats stats;
    };
    const auto run_mode = [&](unsigned kthreads) {
      harness::SimSession::Options opts{cfg, seed, /*group=*/1};
      opts.kernel_threads = kthreads;
      opts.kernel_regions = kernel_regions;
      harness::SimSession session(net::Topology(built.topo), members, opts);
      if (session.hierarchy() != nullptr) {
        // Two-level reporting warms up identically on both kernels, so the
        // stats diff below also covers hierarchy determinism; reporting
        // then stops so the rounds drain the queue.
        session.run_until(2.0 * cfg.hierarchy.report_interval);
        session.hierarchy()->stop();
      }
      // Same pick seed in both modes -> same source and congested link
      // (routing depends only on the topology, which is identical).
      util::Rng pick(seed * 2 + 1);
      const net::NodeId src = members[pick.index(members.size())];
      const auto cong = harness::choose_congested_link(
          session.network().routing(), src, members, pick);
      harness::RoundSpec rspec;
      rspec.source_node = src;
      rspec.congested = cong;
      rspec.page = PageId{static_cast<SourceId>(src), 0};
      // Coded repair composes with the verify: one FecSession per member,
      // the round's sends routed through the source's session.  Adaptive-K
      // transitions are count-based, so both kernels see the same budget.
      std::unordered_map<net::NodeId, std::unique_ptr<fec::FecSession>>
          fec_sessions;
      if (fec) {
        for (net::NodeId m : members) {
          fec_sessions.emplace(m, std::make_unique<fec::FecSession>(
                                      session.agent_at(m), cfg.fec));
        }
        rspec.send_fn = [&fec_sessions](SrmAgent& agent, const PageId& page,
                                        Payload payload) {
          return fec_sessions.at(agent.node())->send(page,
                                                     std::move(payload));
        };
      }
      ModeResult mr;
      SeqNo next_seq = 0;
      for (int r = 0; r < rounds; ++r) {
        mr.rounds.push_back(harness::run_loss_round(session, rspec, next_seq));
        if (fec) {
          // Parity ADUs consume sequence numbers, so the next round's
          // dropped seq is whatever the source's stream advanced to.
          const SrmAgent& agent = session.agent_at(src);
          const auto adv = agent.advertised_max(
              StreamKey{agent.id(), rspec.page});
          next_seq = adv ? *adv + 1 : next_seq + 2;
        } else {
          next_seq += 2;
        }
      }
      mr.stats = session.network_stats();
      return mr;
    };
    const ModeResult seq = run_mode(0);
    const ModeResult par = run_mode(kt);
    for (int r = 0; r < rounds; ++r) {
      const harness::RoundResult& a = seq.rounds[static_cast<std::size_t>(r)];
      const harness::RoundResult& b = par.rounds[static_cast<std::size_t>(r)];
      const auto diff = [&](const char* what, double x, double y) {
        if (x != y) {
          std::ostringstream os;
          os << "round " << r + 1 << " " << what << ": sequential " << x
             << " vs parallel " << y;
          diffs.push_back(os.str());
        }
      };
      diff("requests", static_cast<double>(a.requests),
           static_cast<double>(b.requests));
      diff("repairs", static_cast<double>(a.repairs),
           static_cast<double>(b.repairs));
      diff("affected", static_cast<double>(a.affected),
           static_cast<double>(b.affected));
      diff("recovered", static_cast<double>(a.recovered),
           static_cast<double>(b.recovered));
      diff("link transmissions", static_cast<double>(a.link_transmissions),
           static_cast<double>(b.link_transmissions));
      diff("repair reach", static_cast<double>(a.members_reached_by_repair),
           static_cast<double>(b.members_reached_by_repair));
      diff("max delay", a.max_delay_seconds, b.max_delay_seconds);
      diff("last delay/RTT", a.last_member_delay_rtt, b.last_member_delay_rtt);
      if (a.request_times != b.request_times) {
        diffs.push_back("round " + std::to_string(r + 1) +
                        " request-time vectors differ");
      }
      if (a.repair_times != b.repair_times) {
        diffs.push_back("round " + std::to_string(r + 1) +
                        " repair-time vectors differ");
      }
    }
    stat_diff("multicasts", seq.stats.multicasts_sent,
              par.stats.multicasts_sent);
    stat_diff("unicasts", seq.stats.unicasts_sent, par.stats.unicasts_sent);
    stat_diff("link transmissions", seq.stats.link_transmissions,
              par.stats.link_transmissions);
    stat_diff("deliveries", seq.stats.deliveries, par.stats.deliveries);
    stat_diff("drops", seq.stats.drops, par.stats.drops);
    if (diffs.empty()) {
      std::cout << "pdes-verify: OK (" << rounds
                << " rounds bit-identical, sequential vs " << kt
                << "-thread parallel kernel)\n";
      return 0;
    }
    std::cout << "pdes-verify: MISMATCH (" << diffs.size() << " differences)\n";
    for (const std::string& d : diffs) std::cout << "  " << d << "\n";
    return 1;
  }

  harness::SimSession::Options session_opts{cfg, seed, /*group=*/1};
  session_opts.kernel_threads = kernel_threads;
  session_opts.kernel_regions = kernel_regions;
  harness::SimSession session(std::move(built.topo), members, session_opts);
  if (session.kernel() != nullptr) {
    std::cout << "parallel kernel: " << session.region_map().count
              << " regions, lookahead " << session.region_map().lookahead
              << ", " << kernel_threads << " worker thread"
              << (kernel_threads == 1 ? "" : "s") << "\n";
  }
  if (routing_verify) {
    for (std::size_t r = 0; r < session.network_count(); ++r) {
      session.network(r).routing().set_verify(true);
    }
  }
  // The conformance checker chains one network's observers, which under the
  // parallel kernel would see only one region's packets; --pdes-verify is
  // the equivalence check in that mode.
  std::unique_ptr<harness::ConformanceChecker> checker;
  if (session.kernel() == nullptr) {
    checker = std::make_unique<harness::ConformanceChecker>(
        session.network(), session.directory(), cfg.holddown_multiplier);
  }

  // Structured tracing: one Tracer + file sink for the whole run.  With a
  // fault plan the trace is additionally captured in memory (tee'd if a file
  // sink is also active) and the mask force-includes the srm and fault
  // categories the recovery-invariant checker consumes.
  std::ofstream trace_file;
  std::unique_ptr<trace::Sink> trace_sink;
  trace::VectorSink fault_capture;
  trace::TeeSink tee;
  trace::Tracer tracer;
  std::uint32_t effective_mask = trace_mask;
  if (!fault_plan.empty()) {
    effective_mask |= static_cast<std::uint32_t>(trace::Category::kSrm) |
                      static_cast<std::uint32_t>(trace::Category::kFault);
  }
  if (!trace_path.empty()) {
    const auto mode = trace_format == "binary"
                          ? std::ios::out | std::ios::binary
                          : std::ios::out;
    trace_file.open(trace_path, mode);
    if (!trace_file) {
      std::cerr << "srmsim: cannot open --trace file: " << trace_path << "\n";
      return 1;
    }
    if (trace_format == "binary") {
      trace_sink = std::make_unique<trace::BinarySink>(trace_file);
    } else {
      trace_sink = std::make_unique<trace::JsonlSink>(trace_file);
    }
    std::cout << "tracing " << trace::format_mask(trace_mask) << " ("
              << trace_format << ") to " << trace_path << "\n";
  }
  if (!fault_plan.empty() && trace_sink != nullptr) {
    tee.add(trace_sink.get());
    tee.add(&fault_capture);
    tracer.set_sink(&tee);
  } else if (!fault_plan.empty()) {
    tracer.set_sink(&fault_capture);
  } else if (trace_sink != nullptr) {
    tracer.set_sink(trace_sink.get());
  }
  if (tracer.sink() != nullptr) {
    tracer.set_mask(effective_mask);
    session.set_tracer(&tracer);
  }

  // Hierarchical sessions: let two report intervals elapse so every area
  // has heard its members and elected a representative, print the steady
  // state, then stop reporting so the loss rounds below drain the queue.
  if (session.hierarchy() != nullptr) {
    SessionHierarchy& hier = *session.hierarchy();
    const double warm = 2.0 * cfg.hierarchy.report_interval;
    session.run_until(warm);
    std::size_t reps = 0;
    for (std::size_t i = 0; i < session.member_count(); ++i) {
      if (hier.is_representative(session.agent(i))) ++reps;
    }
    const SrmAgent& probe = session.agent(0);
    std::cout << "hierarchy: " << hier.area_count() << " areas, " << reps
              << " representatives, local TTL " << cfg.hierarchy.local_ttl
              << "\n  warm-up " << warm << "s: " << hier.local_reports_sent()
              << " local + " << hier.global_reports_sent()
              << " global reports, " << hier.pending_wheel_buckets()
              << " timer buckets for " << hier.pending_wheel_items()
              << " pending reports\n  node " << probe.node()
              << " estimates group size " << hier.estimated_group_size(probe)
              << "\n";
    hier.stop();
  }

  // Coded repair: one FecSession per member, layered over each agent's
  // AppHooks.  Membership churn (below) keeps the map in step with the
  // session, and the fault injector's epoch observer floors every budget
  // during Gilbert-Elliott bursts.
  std::unordered_map<net::NodeId, std::unique_ptr<fec::FecSession>>
      fec_sessions;
  bool burst_epoch_now = false;
  const auto add_fec_session = [&](net::NodeId node) {
    auto fs = std::make_unique<fec::FecSession>(session.agent_at(node),
                                                cfg.fec);
    if (burst_epoch_now) fs->set_burst_epoch(true);
    fec_sessions[node] = std::move(fs);
  };
  if (fec) {
    for (net::NodeId m : session.member_nodes()) add_fec_session(m);
  }

  // Fault injection: arm the plan before the first round.
  std::unique_ptr<fault::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        session.queue(), session.mutable_topology(), session.network(),
        std::move(fault_plan), session.rng().fork());
    fault::MembershipHooks membership = harness::membership_hooks(session);
    if (fec) {
      // Keep the FEC layer in step with churn: a departing member's
      // FecSession must die before its agent, and a (re)joining member gets
      // a fresh one over the new agent's hooks.
      auto inner = std::move(membership);
      membership.join = [&, inner](net::NodeId node) {
        if (inner.join) inner.join(node);
        add_fec_session(node);
      };
      membership.leave = [&, inner](net::NodeId node, bool graceful) {
        fec_sessions.erase(node);
        if (inner.leave) inner.leave(node, graceful);
      };
      injector->set_epoch_observer(
          [&](bool active, const net::GilbertElliottDrop::Params&) {
            burst_epoch_now = active;
            for (auto& [node, fs] : fec_sessions) fs->set_burst_epoch(active);
          });
    }
    injector->set_membership_hooks(std::move(membership));
    // Under the parallel kernel the injector's events (global queue) must
    // emit into the global trace lane so they join the deterministic merge.
    injector->set_tracer(session.control_tracer());
    injector->arm();
    std::cout << "fault plan: " << faults_path << " ("
              << injector->plan().size() << " events, deadline "
              << fault_deadline << "s)\n";
  }
  if (verbose && session.kernel() != nullptr) {
    std::cout << "(--verbose is sequential-kernel only; ignoring)\n";
  } else if (verbose) {
    session.network().set_send_observer(
        [&](net::NodeId from, const net::Packet& p) {
          std::cout << "  t=" << session.queue().now() << " node " << from
                    << " " << p.payload->describe() << "\n";
        });
  }

  const net::NodeId source = members[rng.index(members.size())];
  const auto congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  std::cout << "source node " << source << ", congested link ("
            << congested.from << " -> " << congested.to << ")\n\n";

  util::Table table({"round", "affected", "requests", "repairs",
                     "last delay (s)", "last delay/RTT"});
  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = congested;
  spec.page = PageId{static_cast<SourceId>(source), 0};
  if (fec) {
    spec.send_fn = [&fec_sessions](SrmAgent& agent, const PageId& page,
                                   Payload payload) {
      return fec_sessions.at(agent.node())->send(page, std::move(payload));
    };
  }
  // With coded repair, parity ADUs consume sequence numbers, so each
  // round's dropped seq comes from where the source's stream actually is
  // rather than the fixed 2-per-round arithmetic.
  const auto next_round_seq = [&](SeqNo fallback) -> SeqNo {
    if (!fec) return fallback;
    try {
      const SrmAgent& agent = session.agent_at(source);
      const auto adv =
          agent.advertised_max(StreamKey{agent.id(), spec.page});
      return adv ? *adv + 1 : fallback;
    } catch (const std::exception&) {
      return fallback;  // source currently churned out; round will report it
    }
  };
  std::size_t total_requests = 0;
  std::size_t total_repairs = 0;
  SeqNo fec_seq = 0;
  for (int r = 0; r < rounds; ++r) {
    harness::RoundResult res;
    const SeqNo round_seq =
        fec ? (fec_seq = next_round_seq(fec_seq))
            : static_cast<SeqNo>(r) * 2;
    try {
      res = harness::run_loss_round(session, spec, round_seq);
    } catch (const std::exception& e) {
      // With a fault plan active a round can be unrunnable (the source
      // crashed, the congested link is already down, the partition ate the
      // scripted drop).  That is the scenario working as intended; the
      // invariant checker below still judges every loss that did happen.
      if (injector == nullptr) throw;
      std::cout << "round " << r + 1 << " disrupted by faults (" << e.what()
                << ")\n";
      continue;
    }
    total_requests += res.requests;
    total_repairs += res.repairs;
    table.add_row({util::Table::num(static_cast<std::size_t>(r + 1)),
                   util::Table::num(res.affected),
                   util::Table::num(res.requests),
                   util::Table::num(res.repairs),
                   util::Table::num(res.max_delay_seconds, 2),
                   util::Table::num(res.last_member_delay_rtt, 2)});
    if (res.recovered != res.affected && injector == nullptr) {
      std::cout << "WARNING: round " << r + 1 << " recovered "
                << res.recovered << "/" << res.affected << "\n";
    }
  }
  table.print(std::cout);

  std::cout << "\nconformance: "
            << (checker == nullptr ? std::string(
                                         "skipped (parallel kernel; use "
                                         "--pdes-verify)\n")
                : checker->clean() ? std::string("clean\n")
                                   : checker->report());
  const net::NetworkStats totals = session.network_stats();
  std::cout << "network totals: " << totals.multicasts_sent << " multicasts, "
            << totals.link_transmissions << " link transmissions, "
            << totals.drops << " drops\n";

  // Fold the trace back into per-loss recovery stories and cross-check the
  // reconstruction against the aggregate per-round counters.
  bool trace_ok = true;
  if (!trace_path.empty()) {
    trace_sink->flush();
    trace_file.close();
    const auto mode = trace_format == "binary"
                          ? std::ios::in | std::ios::binary
                          : std::ios::in;
    std::ifstream in(trace_path, mode);
    const std::vector<trace::Event> events = trace_format == "binary"
                                                 ? trace::read_binary(in)
                                                 : trace::read_jsonl(in);
    const auto timeline = trace::RecoveryTimeline::fold(events);
    std::cout << "\n" << timeline.summary();
    if (injector == nullptr &&
        (trace_mask & static_cast<std::uint32_t>(trace::Category::kSrm)) !=
            0) {
      trace_ok = timeline.total_requests() == total_requests &&
                 timeline.total_repairs() == total_repairs;
      std::cout << "trace self-check: ";
      if (trace_ok) {
        std::cout << "OK (" << timeline.total_requests() << " requests, "
                  << timeline.total_repairs()
                  << " repairs match aggregate counters)\n";
      } else {
        std::cout << "MISMATCH (timeline " << timeline.total_requests()
                  << " requests / " << timeline.total_repairs()
                  << " repairs vs aggregate " << total_requests << " / "
                  << total_repairs << ")\n";
      }
    }
  }
  // With faults active the conformance checker sees duplicate repairs and
  // timer restarts that are legitimate under churn, so the pass/fail verdict
  // comes from the recovery-invariant checker instead: every loss at a
  // surviving member must be repaired within the (window-extended) deadline,
  // with no repair storms.
  if (injector != nullptr) {
    fault::CheckerOptions copts;
    copts.deadline = fault_deadline;
    const fault::CheckerReport report =
        fault::RecoveryInvariantChecker(copts).check(
            fault_capture.events(), injector->disruption_windows(),
            session.queue().now());
    std::cout << "\n" << report.summary();
    const auto& fs = injector->stats();
    std::cout << "fault totals: " << fs.links_taken_down << " links down, "
              << fs.partitions << " partitions, " << fs.heals << " heals, "
              << fs.joins << " joins, " << fs.leaves + fs.crashes
              << " departures, " << fs.burst_epochs << " burst epochs\n";
    return report.passed && trace_ok ? 0 : 1;
  }
  return (checker == nullptr || checker->clean()) && trace_ok ? 0 : 1;
}
