// srmsim — a command-line scenario driver for the SRM simulator, in the
// spirit of the ns scripts the authors used.  Builds a topology, places a
// session, injects losses, runs loss-recovery rounds, and reports the
// per-round statistics plus a conformance-check summary.
//
// Examples:
//   ./examples/srmsim --topo=btree --nodes=1000 --degree=4 --members=50
//                      --rounds=40 --adaptive=true --seed=7   (one line)
//   ./examples/srmsim --topo=random-tree --nodes=200 --members=200
//   ./examples/srmsim --topo=transit-stub --members=60 --rounds=20
//   ./examples/srmsim --topo=star --nodes=100 --c1=0 --c2=50
//
// Run `srmsim --help` for the flag table (kept in sync with README.md by
// scripts/check_docs.py).
#include <fstream>
#include <iostream>
#include <sstream>

#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/conformance.h"
#include "harness/fault_scenarios.h"
#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/timeline.h"
#include "trace/trace.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace srm;

// The authoritative flag table; README.md's srmsim section mirrors it and
// scripts/check_docs.py fails CI if the two drift apart.
constexpr const char* kUsage = R"(srmsim: SRM loss-recovery scenario driver

Flags (defaults in brackets):
  --topo          btree | random-tree | random-graph | chain | star | ring |
                  dumbbell | transit-stub | lans            [btree]
  --nodes         topology size                             [1000]
  --degree        interior degree for btree                 [4]
  --edges         edge count for random-graph               [3*nodes/2]
  --members       session size (0 = all nodes)              [50]
  --rounds        loss-recovery rounds                      [10]
  --adaptive      adaptive timer adjustment                 [false]
  --c1 --c2       request timer parameters                  [2/2]
  --d1 --d2       repair timer parameters                   [log10 G]
  --backoff       request-timer backoff multiplier          [3]
  --seed          RNG seed                                  [1]
  --verbose       print every request/repair                [false]
  --trace         write a structured trace to this file     [off]
  --trace-mask    categories: sim,net,srm,fault | all | none  [srm]
  --trace-format  jsonl | binary                            [jsonl]
  --faults        fault-plan file: link churn, partitions,
                  membership dynamics, bursty loss
                  (format: ARCHITECTURE.md)                 [off]
  --fault-deadline  recovery deadline in seconds for the
                  fault invariant checker                   [100]
  --routing-verify  cross-check every journal-repaired
                  routing tree against a fresh Dijkstra
                  (same switch as SRM_ROUTING_VERIFY=1)     [false]
  --help          print this table and exit
)";

struct BuiltTopology {
  net::Topology topo;
  std::vector<net::NodeId> candidates;  // nodes members may be placed on
};

BuiltTopology build_topology(const std::string& kind, std::size_t nodes,
                             int degree, std::size_t edges, util::Rng& rng) {
  auto everything = [](const net::Topology& t) {
    std::vector<net::NodeId> v(t.node_count());
    for (std::size_t i = 0; i < t.node_count(); ++i) {
      v[i] = static_cast<net::NodeId>(i);
    }
    return v;
  };
  if (kind == "btree") {
    auto t = topo::make_bounded_degree_tree(nodes, degree);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "random-tree") {
    auto t = topo::make_random_tree(nodes, rng);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "random-graph") {
    auto t = topo::make_random_graph(nodes, edges, rng);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "chain") {
    auto t = topo::make_chain(nodes);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "ring") {
    auto t = topo::make_ring(nodes);
    auto c = everything(t);
    return {std::move(t), std::move(c)};
  }
  if (kind == "star") {
    auto s = topo::make_star(nodes);
    return {std::move(s.topo), std::move(s.leaves)};
  }
  if (kind == "dumbbell") {
    auto d = topo::make_dumbbell(nodes / 2);
    std::vector<net::NodeId> c = d.left_hosts;
    c.insert(c.end(), d.right_hosts.begin(), d.right_hosts.end());
    return {std::move(d.topo), std::move(c)};
  }
  if (kind == "transit-stub") {
    auto ts = topo::make_transit_stub(4, 3, std::max<std::size_t>(4, nodes / 48),
                                      rng);
    return {std::move(ts.topo), std::move(ts.stub_nodes)};
  }
  if (kind == "lans") {
    auto tl = topo::make_tree_of_lans(std::max<std::size_t>(2, nodes / 6), 3, 5);
    return {std::move(tl.topo), std::move(tl.workstations)};
  }
  throw std::invalid_argument("unknown --topo: " + kind);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srm;
  const util::Flags flags(argc, argv);
  if (flags.get_bool("help", false)) {
    std::cout << kUsage;
    return 0;
  }
  const std::string kind = flags.get_string("topo", "btree");
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 1000));
  const int degree = static_cast<int>(flags.get_int("degree", 4));
  const auto edges = static_cast<std::size_t>(
      flags.get_int("edges", static_cast<std::int64_t>(nodes) * 3 / 2));
  auto member_count = static_cast<std::size_t>(flags.get_int("members", 50));
  const int rounds = static_cast<int>(flags.get_int("rounds", 10));
  const std::uint64_t seed = flags.get_seed(1);
  const bool verbose = flags.get_bool("verbose", false);
  const std::string trace_path = flags.get_string("trace", "");
  const std::uint32_t trace_mask =
      trace::parse_mask(flags.get_string("trace-mask", "srm"));
  const std::string trace_format = flags.get_string("trace-format", "jsonl");
  if (trace_format != "jsonl" && trace_format != "binary") {
    std::cerr << "srmsim: unknown --trace-format: " << trace_format << "\n";
    return 1;
  }
  const std::string faults_path = flags.get_string("faults", "");
  const double fault_deadline = flags.get_double("fault-deadline", 100.0);
  const bool routing_verify = flags.get_bool("routing-verify", false);

  fault::FaultPlan fault_plan;
  if (!faults_path.empty()) {
    std::ifstream in(faults_path);
    if (!in) {
      std::cerr << "srmsim: cannot open --faults file: " << faults_path
                << "\n";
      return 1;
    }
    try {
      fault_plan = fault::FaultPlan::parse(in);
    } catch (const std::exception& e) {
      std::cerr << "srmsim: " << faults_path << ": " << e.what() << "\n";
      return 1;
    }
  }

  util::Rng rng(seed);
  BuiltTopology built = build_topology(kind, nodes, degree, edges, rng);
  if (member_count == 0 || member_count > built.candidates.size()) {
    member_count = built.candidates.size();
  }
  rng.shuffle(built.candidates);
  std::vector<net::NodeId> members(built.candidates.begin(),
                                   built.candidates.begin() +
                                       static_cast<long>(member_count));
  std::sort(members.begin(), members.end());

  SrmConfig cfg;
  const double lg = std::log10(static_cast<double>(member_count));
  cfg.timers.c1 = flags.get_double("c1", 2.0);
  cfg.timers.c2 = flags.get_double("c2", 2.0);
  cfg.timers.d1 = flags.get_double("d1", lg);
  cfg.timers.d2 = flags.get_double("d2", lg);
  cfg.backoff_factor = flags.get_double("backoff", 3.0);
  cfg.adaptive.enabled = flags.get_bool("adaptive", false);

  std::cout << "srmsim: " << kind << " with " << built.topo.node_count()
            << " nodes, " << member_count << " members, seed " << seed
            << (cfg.adaptive.enabled ? ", adaptive timers" : "") << "\n";

  harness::SimSession session(std::move(built.topo), members,
                              {cfg, seed, /*group=*/1});
  if (routing_verify) session.network().routing().set_verify(true);
  harness::ConformanceChecker checker(session.network(), session.directory(),
                                      cfg.holddown_multiplier);

  // Structured tracing: one Tracer + file sink for the whole run.  With a
  // fault plan the trace is additionally captured in memory (tee'd if a file
  // sink is also active) and the mask force-includes the srm and fault
  // categories the recovery-invariant checker consumes.
  std::ofstream trace_file;
  std::unique_ptr<trace::Sink> trace_sink;
  trace::VectorSink fault_capture;
  trace::TeeSink tee;
  trace::Tracer tracer;
  std::uint32_t effective_mask = trace_mask;
  if (!fault_plan.empty()) {
    effective_mask |= static_cast<std::uint32_t>(trace::Category::kSrm) |
                      static_cast<std::uint32_t>(trace::Category::kFault);
  }
  if (!trace_path.empty()) {
    const auto mode = trace_format == "binary"
                          ? std::ios::out | std::ios::binary
                          : std::ios::out;
    trace_file.open(trace_path, mode);
    if (!trace_file) {
      std::cerr << "srmsim: cannot open --trace file: " << trace_path << "\n";
      return 1;
    }
    if (trace_format == "binary") {
      trace_sink = std::make_unique<trace::BinarySink>(trace_file);
    } else {
      trace_sink = std::make_unique<trace::JsonlSink>(trace_file);
    }
    std::cout << "tracing " << trace::format_mask(trace_mask) << " ("
              << trace_format << ") to " << trace_path << "\n";
  }
  if (!fault_plan.empty() && trace_sink != nullptr) {
    tee.add(trace_sink.get());
    tee.add(&fault_capture);
    tracer.set_sink(&tee);
  } else if (!fault_plan.empty()) {
    tracer.set_sink(&fault_capture);
  } else if (trace_sink != nullptr) {
    tracer.set_sink(trace_sink.get());
  }
  if (tracer.sink() != nullptr) {
    tracer.set_mask(effective_mask);
    session.set_tracer(&tracer);
  }

  // Fault injection: arm the plan before the first round.
  std::unique_ptr<fault::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        session.queue(), session.mutable_topology(), session.network(),
        std::move(fault_plan), session.rng().fork());
    injector->set_membership_hooks(harness::membership_hooks(session));
    injector->set_tracer(&tracer);
    injector->arm();
    std::cout << "fault plan: " << faults_path << " ("
              << injector->plan().size() << " events, deadline "
              << fault_deadline << "s)\n";
  }
  if (verbose) {
    session.network().set_send_observer(
        [&](net::NodeId from, const net::Packet& p) {
          std::cout << "  t=" << session.queue().now() << " node " << from
                    << " " << p.payload->describe() << "\n";
        });
  }

  const net::NodeId source = members[rng.index(members.size())];
  const auto congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  std::cout << "source node " << source << ", congested link ("
            << congested.from << " -> " << congested.to << ")\n\n";

  util::Table table({"round", "affected", "requests", "repairs",
                     "last delay (s)", "last delay/RTT"});
  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = congested;
  spec.page = PageId{static_cast<SourceId>(source), 0};
  std::size_t total_requests = 0;
  std::size_t total_repairs = 0;
  for (int r = 0; r < rounds; ++r) {
    harness::RoundResult res;
    try {
      res = harness::run_loss_round(session, spec, r * 2);
    } catch (const std::exception& e) {
      // With a fault plan active a round can be unrunnable (the source
      // crashed, the congested link is already down, the partition ate the
      // scripted drop).  That is the scenario working as intended; the
      // invariant checker below still judges every loss that did happen.
      if (injector == nullptr) throw;
      std::cout << "round " << r + 1 << " disrupted by faults (" << e.what()
                << ")\n";
      continue;
    }
    total_requests += res.requests;
    total_repairs += res.repairs;
    table.add_row({util::Table::num(static_cast<std::size_t>(r + 1)),
                   util::Table::num(res.affected),
                   util::Table::num(res.requests),
                   util::Table::num(res.repairs),
                   util::Table::num(res.max_delay_seconds, 2),
                   util::Table::num(res.last_member_delay_rtt, 2)});
    if (res.recovered != res.affected && injector == nullptr) {
      std::cout << "WARNING: round " << r + 1 << " recovered "
                << res.recovered << "/" << res.affected << "\n";
    }
  }
  table.print(std::cout);

  std::cout << "\nconformance: "
            << (checker.clean() ? std::string("clean\n") : checker.report());
  std::cout << "network totals: "
            << session.network().stats().multicasts_sent << " multicasts, "
            << session.network().stats().link_transmissions
            << " link transmissions, " << session.network().stats().drops
            << " drops\n";

  // Fold the trace back into per-loss recovery stories and cross-check the
  // reconstruction against the aggregate per-round counters.
  bool trace_ok = true;
  if (!trace_path.empty()) {
    trace_sink->flush();
    trace_file.close();
    const auto mode = trace_format == "binary"
                          ? std::ios::in | std::ios::binary
                          : std::ios::in;
    std::ifstream in(trace_path, mode);
    const std::vector<trace::Event> events = trace_format == "binary"
                                                 ? trace::read_binary(in)
                                                 : trace::read_jsonl(in);
    const auto timeline = trace::RecoveryTimeline::fold(events);
    std::cout << "\n" << timeline.summary();
    if (injector == nullptr &&
        (trace_mask & static_cast<std::uint32_t>(trace::Category::kSrm)) !=
            0) {
      trace_ok = timeline.total_requests() == total_requests &&
                 timeline.total_repairs() == total_repairs;
      std::cout << "trace self-check: ";
      if (trace_ok) {
        std::cout << "OK (" << timeline.total_requests() << " requests, "
                  << timeline.total_repairs()
                  << " repairs match aggregate counters)\n";
      } else {
        std::cout << "MISMATCH (timeline " << timeline.total_requests()
                  << " requests / " << timeline.total_repairs()
                  << " repairs vs aggregate " << total_requests << " / "
                  << total_repairs << ")\n";
      }
    }
  }
  // With faults active the conformance checker sees duplicate repairs and
  // timer restarts that are legitimate under churn, so the pass/fail verdict
  // comes from the recovery-invariant checker instead: every loss at a
  // surviving member must be repaired within the (window-extended) deadline,
  // with no repair storms.
  if (injector != nullptr) {
    fault::CheckerOptions copts;
    copts.deadline = fault_deadline;
    const fault::CheckerReport report =
        fault::RecoveryInvariantChecker(copts).check(
            fault_capture.events(), injector->disruption_windows(),
            session.queue().now());
    std::cout << "\n" << report.summary();
    const auto& fs = injector->stats();
    std::cout << "fault totals: " << fs.links_taken_down << " links down, "
              << fs.partitions << " partitions, " << fs.heals << " heals, "
              << fs.joins << " joins, " << fs.leaves + fs.crashes
              << " departures, " << fs.burst_epochs << " burst epochs\n";
    return report.passed && trace_ok ? 0 : 1;
  }
  return checker.clean() && trace_ok ? 0 : 1;
}
