// Two SRM agents talk over real UDP multicast on loopback — each on its own
// UdpTransport (own socket, same port, peered by SO_REUSEPORT), the way two
// separate processes would share a session.  The receiver's transport drops
// the first DATA frame through the receive-filter hook, so the run
// exercises the full loss -> request -> repair -> recovery path over the
// wire (ARCHITECTURE.md §13).
//
// Environments without loopback multicast (some containers) skip cleanly
// with exit code 0; anything short of full recovery on a capable machine
// exits 1.
#include <iostream>

#include "srm/agent.h"
#include "srm/config.h"
#include "srm/messages.h"
#include "trace/timeline.h"
#include "trace/trace.h"
#include "transport/udp_transport.h"
#include "util/rng.h"

int main() {
  using namespace srm;
  if (!transport::UdpTransport::available()) {
    std::cout << "udp_session: loopback multicast unavailable; skipping\n";
    return 0;
  }

  // Default options: loopback interface, pid-derived port — both transports
  // get the same options, so their sockets bind the same port and peer.
  const transport::UdpOptions options;
  transport::UdpTransport alice_bus(options);
  transport::UdpTransport bob_bus(options);

  // The cross-backend conformance configuration (transport/conformance.h):
  // session messages off, estimated distances, decision points spaced far
  // above the transports' poll granularity.
  SrmConfig config;
  config.timers.c1 = 2.0;
  config.timers.c2 = 0.0;
  config.timers.d1 = 1.0;
  config.timers.d2 = 0.0;
  config.backoff_factor = 3.0;
  config.distance_mode = DistanceMode::kEstimated;
  config.default_distance = 0.05;
  config.session.enabled = false;

  // Each side has its own directory, as two real processes would: an agent
  // only ever binds itself, and remote peers are known purely by the frames
  // they multicast.
  MemberDirectory alice_dir;
  MemberDirectory bob_dir;
  SrmAgent alice(alice_bus, alice_dir, /*node=*/0, /*id=*/0, /*group=*/1,
                 config, util::Rng(7000));
  SrmAgent bob(bob_bus, bob_dir, /*node=*/1, /*id=*/1, /*group=*/1, config,
               util::Rng(7001));

  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));
  alice.set_tracer(&tracer);
  bob.set_tracer(&tracer);

  // Bob's transport eats the first DATA frame for seq 0; the gap surfaces
  // when seq 1 arrives and SRM repairs it.
  bool eaten = false;
  bob_bus.set_receive_filter(
      [&eaten](const net::Packet& packet, const net::DeliveryInfo&) {
        if (eaten || !packet.payload || packet.payload->trace_kind() != 1) {
          return false;
        }
        const auto& data = static_cast<const DataMessage&>(*packet.payload);
        if (data.name().seq != 0) return false;
        eaten = true;
        return true;
      });

  alice.start();
  bob.start();

  const PageId page{/*source=*/0, /*page=*/1};
  alice_bus.queue().schedule_at(0.25, [&] {
    alice.send_data(page, Payload{'h', 'i'});
  });
  alice_bus.queue().schedule_at(0.40, [&] {
    alice.send_data(page, Payload{'y', 'o'});
  });

  // One thread drives both sockets, alternating short polls; ~2.5 wall
  // seconds covers the request timer (C1 * 0.05s scale) with a wide margin.
  while (alice_bus.elapsed() < 2.5) {
    alice_bus.poll_once(0.002);
    bob_bus.poll_once(0.002);
  }
  alice.stop();
  bob.stop();

  const auto timeline = trace::RecoveryTimeline::fold(sink.events());
  std::cout << "udp_session: port " << alice_bus.port() << "\n"
            << "  alice sent " << alice_bus.stats().frames_sent
            << " frames, bob received " << bob_bus.stats().deliveries
            << " deliveries, " << bob_bus.stats().filtered_drops
            << " scripted drop(s)\n"
            << timeline.summary();

  bool recovered = eaten && !timeline.stories().empty();
  for (const auto& story : timeline.stories()) {
    if (story.recoveries < story.detections || story.abandoned > 0) {
      recovered = false;
    }
  }
  std::cout << (recovered ? "recovery over real UDP: OK\n"
                          : "recovery over real UDP: FAILED\n");
  return recovered ? 0 : 1;
}
