// A distributed whiteboard session over SRM — the paper's motivating
// application (Sec. II-C).
//
// Three members share a whiteboard across a lossy wide-area tree.  Member A
// draws a diagram, member B annotates and deletes one of A's strokes, and a
// late joiner C pulls the whole history from whoever has it.  Every board
// converges to the same picture despite 15% packet loss.
//
//   $ ./examples/wb_whiteboard
#include <iostream>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "wb/whiteboard.h"

namespace {

void render(const char* who, const srm::wb::Page& page) {
  std::cout << who << " sees " << page.visible_count() << " strokes:";
  for (const auto& [name, op] : page.visible_ops()) {
    std::cout << " [" << srm::wb::to_string(op.type) << " @" << op.timestamp
              << " by " << name.source << "]";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace srm;

  // A wide-area tree: 20 routers, degree 3; members sit on nodes 2, 11, 19.
  auto topo = topo::make_bounded_degree_tree(20, 3);
  SrmConfig config;
  config.timers = TimerParams{2.0, 2.0, 1.0, 1.0};
  harness::SimSession session(std::move(topo), {2, 11}, {config, 21, 1});

  wb::Whiteboard alice(session.agent_at(2));
  wb::Whiteboard bob(session.agent_at(11));

  // 15% loss on all data packets: the whiteboard must not care.
  session.network().set_drop_policy(std::make_shared<net::RandomDrop>(
      0.15, 5, [](const net::Packet& p) {
        return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
      }));

  const PageId page = alice.create_page();
  bob.view_page(page);

  // Alice draws a house.
  auto stroke = [&](wb::Whiteboard& board, wb::OpType type, double x1,
                    double y1, double x2, double y2, double ts) {
    wb::DrawOp op;
    op.type = type;
    op.x1 = x1;
    op.y1 = y1;
    op.x2 = x2;
    op.y2 = y2;
    op.timestamp = ts;
    return board.draw(page, op);
  };
  stroke(alice, wb::OpType::kRect, 0, 0, 10, 8, 1);
  stroke(alice, wb::OpType::kLine, 0, 8, 5, 12, 2);
  stroke(alice, wb::OpType::kLine, 5, 12, 10, 8, 3);
  const DataName door = stroke(alice, wb::OpType::kRect, 4, 0, 6, 4, 4);
  session.queue().run();

  // Bob annotates, then deletes Alice's door (any member may modify the
  // shared drawing; deletion is a new drawop, Sec. II-C).
  stroke(bob, wb::OpType::kCircle, 12, 10, 1, 0, 5);
  bob.erase(page, door);
  session.queue().run();

  // Session messages let members recover any tail losses.
  session.agent_at(2).send_session_message();
  session.agent_at(11).send_session_message();
  session.queue().run();

  render("alice", alice.page(page));
  render("bob  ", bob.page(page));

  // A late joiner appears at node 19 and fetches the back history purely
  // through SRM's request/repair machinery.
  std::cout << "\nlate joiner at node 19...\n";
  SrmAgent carol_agent(session.network(), session.directory(), 19, 19, 1,
                       config, util::Rng(99));
  carol_agent.start();
  wb::Whiteboard carol(carol_agent);
  carol.view_page(page);
  session.agent_at(11).send_session_message();
  session.queue().run();
  render("carol", carol.page(page));

  const bool converged =
      alice.page(page).visible_count() == bob.page(page).visible_count() &&
      bob.page(page).visible_count() == carol.page(page).visible_count();
  std::cout << "\nboards converged: " << (converged ? "yes" : "NO") << "\n";
  std::cout << "loss recoveries: alice=" << session.agent_at(2).metrics().recoveries
            << " bob=" << session.agent_at(11).metrics().recoveries
            << " carol=" << carol_agent.metrics().recoveries << "\n";
  carol_agent.stop();
  return converged ? 0 : 1;
}
