// ReplicationRunner: pool mechanics, exception propagation, and the
// determinism contract the parallel figure sweeps rely on — per-seed
// statistics identical for every thread count.
#include "harness/replication.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "srm/config.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace srm::harness {
namespace {

TEST(ReplicationRunnerTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(ReplicationRunner(0).threads(), default_thread_count());
  EXPECT_EQ(ReplicationRunner(3).threads(), 3u);
}

TEST(ReplicationRunnerTest, MapReturnsResultsInJobOrder) {
  const ReplicationRunner runner(4);
  const auto results = runner.map<int>(
      100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ReplicationRunnerTest, EveryJobRunsExactlyOnce) {
  const ReplicationRunner runner(8);
  std::atomic<int> calls{0};
  const auto results = runner.map<std::size_t>(257, [&](std::size_t i) {
    calls.fetch_add(1);
    return i;
  });
  EXPECT_EQ(calls.load(), 257);
  std::size_t sum = std::accumulate(results.begin(), results.end(),
                                    std::size_t{0});
  EXPECT_EQ(sum, 257u * 256u / 2u);
}

TEST(ReplicationRunnerTest, EmptyAndSingleBatches) {
  const ReplicationRunner runner(4);
  EXPECT_TRUE(runner.map<int>(0, [](std::size_t) { return 1; }).empty());
  const auto one = runner.map<int>(1, [](std::size_t) { return 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(ReplicationRunnerTest, PropagatesJobExceptions) {
  for (unsigned threads : {1u, 4u}) {
    const ReplicationRunner runner(threads);
    EXPECT_THROW(runner.map<int>(16,
                                 [](std::size_t i) -> int {
                                   if (i == 9) {
                                     throw std::runtime_error("replication 9");
                                   }
                                   return 0;
                                 }),
                 std::runtime_error);
  }
}

// One fig3-style batch: specs (all RNG draws) built serially, sessions run
// per job.  Mirrors bench/common.h's run_trials without depending on bench
// headers.
std::vector<RoundResult> run_fig_batch(std::uint64_t seed, int trials,
                                       unsigned threads) {
  struct Spec {
    net::Topology topo;
    std::vector<net::NodeId> members;
    net::NodeId source;
    DirectedLink congested{0, 0};
    std::uint64_t seed = 1;
  };
  util::Rng rng(seed);
  std::vector<Spec> specs;
  for (int t = 0; t < trials; ++t) {
    Spec spec;
    const std::size_t n = 24;
    spec.topo = topo::make_random_tree(n, rng);
    spec.members.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      spec.members[i] = static_cast<net::NodeId>(i);
    }
    spec.source = spec.members[rng.index(n)];
    net::Routing routing(spec.topo);
    spec.congested =
        choose_congested_link(routing, spec.source, spec.members, rng);
    spec.seed = rng.next_u64();
    specs.push_back(std::move(spec));
  }
  const ReplicationRunner runner(threads);
  return runner.map<RoundResult>(specs.size(), [&](std::size_t i) {
    Spec& spec = specs[i];
    SrmConfig cfg;
    cfg.timers = paper_fixed_params(spec.members.size());
    cfg.backoff_factor = 3.0;
    SimSession session(std::move(spec.topo), spec.members,
                       {cfg, spec.seed, /*group=*/1});
    RoundSpec round;
    round.source_node = spec.source;
    round.congested = spec.congested;
    round.page = PageId{static_cast<SourceId>(spec.source), 0};
    return run_loss_round(session, round, /*seq=*/0);
  });
}

TEST(ReplicationRunnerTest, ThreadCountDoesNotChangeStatistics) {
  const auto serial = run_fig_batch(/*seed=*/77, /*trials=*/12, /*threads=*/1);
  for (unsigned threads : {2u, 4u, 7u}) {
    const auto parallel = run_fig_batch(77, 12, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].requests, serial[i].requests)
          << "trial " << i << " threads=" << threads;
      EXPECT_EQ(parallel[i].repairs, serial[i].repairs)
          << "trial " << i << " threads=" << threads;
      EXPECT_EQ(parallel[i].affected, serial[i].affected);
      EXPECT_EQ(parallel[i].recovered, serial[i].recovered);
      // Bit-for-bit, not approximately: the merge contract is exact.
      EXPECT_EQ(parallel[i].last_member_delay_rtt,
                serial[i].last_member_delay_rtt)
          << "trial " << i << " threads=" << threads;
      EXPECT_EQ(parallel[i].max_delay_seconds, serial[i].max_delay_seconds);
      EXPECT_EQ(parallel[i].link_transmissions, serial[i].link_transmissions);
      EXPECT_EQ(parallel[i].request_times, serial[i].request_times);
      EXPECT_EQ(parallel[i].repair_times, serial[i].repair_times);
    }
  }
}

TEST(PdesThreadBudgetTest, ProductNeverExceedsHardware) {
  // 8 cores, 4 kernel threads per session: at most 2 replication workers.
  const auto b = plan_thread_budget(8, 4, /*hardware=*/8);
  EXPECT_EQ(b.replication_threads, 2u);
  EXPECT_EQ(b.kernel_threads, 4u);
  EXPECT_TRUE(b.reduced);
  EXPECT_LE(b.replication_threads * std::max(1u, b.kernel_threads), 8u);
}

TEST(PdesThreadBudgetTest, ReplicationYieldsBeforeKernel) {
  // The kernel side is what PDES benches measure; the replication side is
  // squeezed first, down to 1 if necessary.
  const auto b = plan_thread_budget(16, 8, /*hardware=*/8);
  EXPECT_EQ(b.kernel_threads, 8u);
  EXPECT_EQ(b.replication_threads, 1u);
  EXPECT_TRUE(b.reduced);
}

TEST(PdesThreadBudgetTest, KernelCappedAtHardware) {
  const auto b = plan_thread_budget(1, 32, /*hardware=*/4);
  EXPECT_EQ(b.kernel_threads, 4u);
  EXPECT_EQ(b.replication_threads, 1u);
  EXPECT_TRUE(b.reduced);
}

TEST(PdesThreadBudgetTest, FitsWithinBudgetUnchanged) {
  const auto b = plan_thread_budget(2, 3, /*hardware=*/8);
  EXPECT_EQ(b.replication_threads, 2u);
  EXPECT_EQ(b.kernel_threads, 3u);
  EXPECT_FALSE(b.reduced);
}

TEST(PdesThreadBudgetTest, ZeroReplicationPicksLargestAllowed) {
  const auto a = plan_thread_budget(0, 0, /*hardware=*/8);
  EXPECT_EQ(a.replication_threads, 8u);
  EXPECT_EQ(a.kernel_threads, 0u);  // sequential kernel passes through
  EXPECT_FALSE(a.reduced);
  const auto b = plan_thread_budget(0, 2, /*hardware=*/8);
  EXPECT_EQ(b.replication_threads, 4u);
  EXPECT_EQ(b.kernel_threads, 2u);
  EXPECT_FALSE(b.reduced);
}

TEST(PdesThreadBudgetTest, SingleCoreDegeneratesToSerial) {
  const auto b = plan_thread_budget(4, 2, /*hardware=*/1);
  EXPECT_EQ(b.replication_threads, 1u);
  EXPECT_EQ(b.kernel_threads, 1u);
  EXPECT_TRUE(b.reduced);
}

TEST(PdesThreadBudgetTest, DefaultHardwareIsRealConcurrency) {
  const auto b = plan_thread_budget(0, 0);
  EXPECT_EQ(b.replication_threads, default_thread_count());
}

}  // namespace
}  // namespace srm::harness
