// End-to-end determinism of the parallel (PDES) kernel at the session
// level: the figure scenarios and the fault-injection acceptance scenario
// must produce bit-identical statistics AND bit-identical merged traces for
// every kernel thread count (the region map being fixed), and statistics
// identical to the sequential kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/checker.h"
#include "net/drop_policy.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/trace.h"

namespace srm {
namespace {

bool events_equal(const trace::Event& a, const trace::Event& b) {
  return a.type == b.type && a.t == b.t && a.actor == b.actor && a.a == b.a &&
         a.b == b.b && a.c == b.c && a.d == b.d && a.e == b.e && a.x == b.x &&
         a.y == b.y;
}

void expect_traces_identical(const std::vector<trace::Event>& a,
                             const std::vector<trace::Event>& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(events_equal(a[i], b[i]))
        << what << ": first divergence at event " << i << " (t=" << a[i].t
        << " vs t=" << b[i].t << ")";
  }
}

void expect_rounds_identical(const harness::RoundResult& a,
                             const harness::RoundResult& b, const char* what) {
  EXPECT_EQ(a.requests, b.requests) << what;
  EXPECT_EQ(a.repairs, b.repairs) << what;
  EXPECT_EQ(a.affected, b.affected) << what;
  EXPECT_EQ(a.recovered, b.recovered) << what;
  EXPECT_EQ(a.link_transmissions, b.link_transmissions) << what;
  EXPECT_EQ(a.members_reached_by_repair, b.members_reached_by_repair) << what;
  EXPECT_EQ(a.last_member_delay_rtt, b.last_member_delay_rtt) << what;
  EXPECT_EQ(a.max_delay_seconds, b.max_delay_seconds) << what;
  EXPECT_EQ(a.closest_request_delay_valid, b.closest_request_delay_valid)
      << what;
  EXPECT_EQ(a.closest_request_delay_rtt, b.closest_request_delay_rtt) << what;
  EXPECT_EQ(a.request_times, b.request_times) << what;
  EXPECT_EQ(a.repair_times, b.repair_times) << what;
}

void expect_stats_identical(const net::NetworkStats& a,
                            const net::NetworkStats& b, const char* what) {
  EXPECT_EQ(a.multicasts_sent, b.multicasts_sent) << what;
  EXPECT_EQ(a.unicasts_sent, b.unicasts_sent) << what;
  EXPECT_EQ(a.link_transmissions, b.link_transmissions) << what;
  EXPECT_EQ(a.deliveries, b.deliveries) << what;
  EXPECT_EQ(a.drops, b.drops) << what;
  EXPECT_EQ(a.ttl_prunes, b.ttl_prunes) << what;
}

// --- figure-style scenarios ------------------------------------------------

enum class Fig { kRandomTree, kDenseTree, kAdaptive };

struct FigOutcome {
  std::vector<harness::RoundResult> rounds;
  net::NetworkStats stats;
  std::vector<trace::Event> events;
  double end_time = 0.0;
};

// One figure scenario (fig3-style random tree / fig4-style dense tree /
// fig12-style adaptive run), three loss rounds, full trace capture.
// kernel_threads == 0 runs the sequential kernel.
FigOutcome run_fig(Fig fig, std::uint64_t seed, unsigned kernel_threads,
                   std::uint32_t kernel_regions) {
  util::Rng rng(seed);
  net::Topology topo = fig == Fig::kRandomTree
                           ? topo::make_random_tree(160, rng)
                           : topo::make_bounded_degree_tree(200, 4);
  std::vector<net::NodeId> all(topo.node_count());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<net::NodeId>(i);
  }
  rng.shuffle(all);
  std::vector<net::NodeId> members(all.begin(), all.begin() + 40);
  std::sort(members.begin(), members.end());
  const net::NodeId source = members[rng.index(members.size())];

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.backoff_factor = 3.0;
  cfg.adaptive.enabled = fig == Fig::kAdaptive;

  harness::SimSession::Options opts{cfg, seed, /*group=*/1};
  opts.kernel_threads = kernel_threads;
  opts.kernel_regions = kernel_regions;
  harness::SimSession session(std::move(topo), members, opts);

  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kNet));
  session.set_tracer(&tracer);

  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  spec.page = PageId{static_cast<SourceId>(source), 0};

  FigOutcome out;
  for (int r = 0; r < 3; ++r) {
    out.rounds.push_back(
        harness::run_loss_round(session, spec, static_cast<SeqNo>(r * 2)));
  }
  out.stats = session.network_stats();
  out.events = capture.events();
  out.end_time = session.now();
  return out;
}

class PdesFigureTest : public ::testing::TestWithParam<Fig> {};

TEST_P(PdesFigureTest, BitIdenticalAcrossKernelThreadCounts) {
  // Fixed region map (4 regions), varying worker count: everything —
  // per-round figure stats, network totals, the merged trace — must match
  // bit for bit.
  const FigOutcome t1 = run_fig(GetParam(), 97, 1, 4);
  const FigOutcome t2 = run_fig(GetParam(), 97, 2, 4);
  const FigOutcome t8 = run_fig(GetParam(), 97, 8, 4);
  ASSERT_EQ(t1.rounds.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    expect_rounds_identical(t1.rounds[r], t2.rounds[r], "threads 1 vs 2");
    expect_rounds_identical(t1.rounds[r], t8.rounds[r], "threads 1 vs 8");
  }
  expect_stats_identical(t1.stats, t2.stats, "threads 1 vs 2");
  expect_stats_identical(t1.stats, t8.stats, "threads 1 vs 8");
  EXPECT_EQ(t1.end_time, t2.end_time);
  EXPECT_EQ(t1.end_time, t8.end_time);
  expect_traces_identical(t1.events, t2.events, "threads 1 vs 2");
  expect_traces_identical(t1.events, t8.events, "threads 1 vs 8");
  EXPECT_FALSE(t1.events.empty());
}

TEST_P(PdesFigureTest, StatsMatchSequentialKernel) {
  // The parallel kernel must be event-order equivalent to the sequential
  // one: every statistic the figures plot agrees exactly.  (The trace
  // streams are compared across thread counts above, not against the
  // sequential kernel, whose emission order at equal timestamps is its own.)
  const FigOutcome seq = run_fig(GetParam(), 1995, 0, 0);
  const FigOutcome par = run_fig(GetParam(), 1995, 2, 4);
  ASSERT_EQ(seq.rounds.size(), par.rounds.size());
  for (std::size_t r = 0; r < seq.rounds.size(); ++r) {
    expect_rounds_identical(seq.rounds[r], par.rounds[r], "seq vs parallel");
  }
  expect_stats_identical(seq.stats, par.stats, "seq vs parallel");
  EXPECT_EQ(seq.end_time, par.end_time);
}

INSTANTIATE_TEST_SUITE_P(Figures, PdesFigureTest,
                         ::testing::Values(Fig::kRandomTree, Fig::kDenseTree,
                                           Fig::kAdaptive));

// --- stochastic loss under PDES --------------------------------------------

enum class Stoch { kRandomDrop, kGilbertElliott, kBurstPlan };

struct StochOutcome {
  std::vector<harness::RoundResult> rounds;  // completed rounds only
  std::size_t disrupted = 0;                 // rounds eaten by the loss
  net::NetworkStats stats;
  std::vector<trace::Event> events;
  double end_time = 0.0;
};

// Three loss rounds with background stochastic loss in the fault policy
// slot: an always-on keyed RandomDrop, an always-on keyed Gilbert-Elliott
// chain, or a fault-plan burst epoch installed by the injector mid-run.
// The stochastic draws are keyed by stable hop coordinates, so the whole
// scenario must stay deterministic across kernels and thread counts.
StochOutcome run_stochastic(Stoch mode, std::uint64_t seed,
                            unsigned kernel_threads,
                            std::uint32_t kernel_regions) {
  util::Rng rng(seed);
  net::Topology topo = topo::make_random_tree(80, rng);
  std::vector<net::NodeId> all(topo.node_count());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<net::NodeId>(i);
  }
  rng.shuffle(all);
  std::vector<net::NodeId> members(all.begin(), all.begin() + 20);
  std::sort(members.begin(), members.end());
  const net::NodeId source = members[rng.index(members.size())];

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.backoff_factor = 3.0;
  harness::SimSession::Options opts{cfg, seed, /*group=*/1};
  opts.kernel_threads = kernel_threads;
  opts.kernel_regions = kernel_regions;
  harness::SimSession session(std::move(topo), members, opts);

  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kNet));
  session.set_tracer(&tracer);

  // Rare, short bursts: the default chain (5% burst entry per slot per
  // link, mean burst 2 slots, 100% loss) makes recovery retries stretch
  // virtual time far enough to dominate the test's runtime.  The keying —
  // not the loss rate — is what's under test.
  net::GilbertElliottDrop::Params ge;
  ge.p_good_bad = 0.01;
  ge.p_bad_good = 0.5;
  std::unique_ptr<fault::FaultInjector> injector;
  switch (mode) {
    case Stoch::kRandomDrop:
      session.network().set_fault_drop_policy(
          std::make_shared<net::RandomDrop>(0.03, seed ^ 0x5EEDF00Dull));
      break;
    case Stoch::kGilbertElliott:
      session.network().set_fault_drop_policy(
          std::make_shared<net::GilbertElliottDrop>(ge, seed ^ 0xB00B5ull));
      break;
    case Stoch::kBurstPlan: {
      fault::FaultPlan plan;
      plan.burst_on(10.0, ge);
      plan.burst_off(200.0);
      injector = std::make_unique<fault::FaultInjector>(
          session.queue(), session.mutable_topology(), session.network(),
          std::move(plan), session.rng().fork());
      injector->set_tracer(session.control_tracer());
      injector->arm();
      break;
    }
  }

  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  spec.page = PageId{static_cast<SourceId>(source), 0};
  StochOutcome out;
  for (int r = 0; r < 3; ++r) {
    try {
      out.rounds.push_back(
          harness::run_loss_round(session, spec, static_cast<SeqNo>(r * 2)));
    } catch (const std::exception&) {
      // Background loss can eat the scripted drop's packet upstream of the
      // congested link; all kernels must agree on *which* rounds die.
      ++out.disrupted;
    }
  }
  out.stats = session.network_stats();
  out.events = capture.events();
  out.end_time = session.now();
  return out;
}

class PdesStochasticTest : public ::testing::TestWithParam<Stoch> {};

TEST_P(PdesStochasticTest, BitIdenticalAcrossKernelThreadCounts) {
  const StochOutcome t1 = run_stochastic(GetParam(), 31, 1, 4);
  const StochOutcome t2 = run_stochastic(GetParam(), 31, 2, 4);
  const StochOutcome t8 = run_stochastic(GetParam(), 31, 8, 4);
  // At least one round must survive the background loss, or the per-round
  // comparisons below are vacuous (pick a different seed if this trips).
  ASSERT_FALSE(t1.rounds.empty());
  EXPECT_EQ(t1.disrupted, t2.disrupted);
  EXPECT_EQ(t1.disrupted, t8.disrupted);
  ASSERT_EQ(t1.rounds.size(), t2.rounds.size());
  ASSERT_EQ(t1.rounds.size(), t8.rounds.size());
  for (std::size_t r = 0; r < t1.rounds.size(); ++r) {
    expect_rounds_identical(t1.rounds[r], t2.rounds[r], "threads 1 vs 2");
    expect_rounds_identical(t1.rounds[r], t8.rounds[r], "threads 1 vs 8");
  }
  expect_stats_identical(t1.stats, t2.stats, "threads 1 vs 2");
  expect_stats_identical(t1.stats, t8.stats, "threads 1 vs 8");
  EXPECT_EQ(t1.end_time, t2.end_time);
  EXPECT_EQ(t1.end_time, t8.end_time);
  expect_traces_identical(t1.events, t2.events, "threads 1 vs 2");
  expect_traces_identical(t1.events, t8.events, "threads 1 vs 8");
  EXPECT_FALSE(t1.events.empty());
  // The scripted drop contributes exactly one per completed round, so any
  // excess proves the stochastic policy fired; a disrupted round proves it
  // directly (only background loss can eat the scripted packet).
  if (t1.disrupted == 0) EXPECT_GT(t1.stats.drops, t1.rounds.size());
}

TEST_P(PdesStochasticTest, StatsMatchSequentialKernel) {
  const StochOutcome seq = run_stochastic(GetParam(), 77, 0, 0);
  const StochOutcome par = run_stochastic(GetParam(), 77, 2, 4);
  ASSERT_FALSE(seq.rounds.empty());
  EXPECT_EQ(seq.disrupted, par.disrupted);
  ASSERT_EQ(seq.rounds.size(), par.rounds.size());
  for (std::size_t r = 0; r < seq.rounds.size(); ++r) {
    expect_rounds_identical(seq.rounds[r], par.rounds[r], "seq vs parallel");
  }
  expect_stats_identical(seq.stats, par.stats, "seq vs parallel");
  EXPECT_EQ(seq.end_time, par.end_time);
  if (seq.disrupted == 0) EXPECT_GT(seq.stats.drops, seq.rounds.size());
}

INSTANTIATE_TEST_SUITE_P(StochasticLoss, PdesStochasticTest,
                         ::testing::Values(Stoch::kRandomDrop,
                                           Stoch::kGilbertElliott,
                                           Stoch::kBurstPlan));

// --- the fault-injection acceptance scenario under PDES --------------------

struct FaultOutcome {
  fault::CheckerReport report;
  std::size_t disrupted_rounds = 0;
  std::vector<trace::Event> events;
  net::NetworkStats stats;
};

// The partition_recovery_test scenario (N=100 random tree, G=40, partition
// at t=30, heal at t=90, six loss rounds) on the chosen kernel.
FaultOutcome run_partition_heal(std::uint64_t seed, unsigned kernel_threads,
                                std::uint32_t kernel_regions) {
  util::Rng rng(seed);
  net::Topology topo = topo::make_random_tree(100, rng);
  std::vector<net::NodeId> all(100);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<net::NodeId>(i);
  }
  rng.shuffle(all);
  std::vector<net::NodeId> members(all.begin(), all.begin() + 40);
  std::sort(members.begin(), members.end());
  const net::NodeId source = members[rng.index(members.size())];

  std::vector<net::NodeId> island;
  fault::FaultPlan plan = harness::partition_heal_plan(
      topo, source, /*t_down=*/30.0, /*t_heal=*/90.0, rng, &island);

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.backoff_factor = 3.0;
  cfg.adaptive.enabled = true;
  harness::SimSession::Options opts{cfg, seed, /*group=*/1};
  opts.kernel_threads = kernel_threads;
  opts.kernel_regions = kernel_regions;
  harness::SimSession session(std::move(topo), members, opts);

  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  session.set_tracer(&tracer);

  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  // Injector events are global-queue events: under the parallel kernel they
  // must emit via the control lane to join the deterministic merge.
  injector.set_tracer(session.control_tracer());
  injector.arm();

  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  spec.page = PageId{static_cast<SourceId>(source), 0};
  FaultOutcome out;
  for (int r = 0; r < 6; ++r) {
    try {
      harness::run_loss_round(session, spec, static_cast<SeqNo>(r * 2));
    } catch (const std::exception&) {
      ++out.disrupted_rounds;  // the partition ate the round — expected
    }
  }

  fault::CheckerOptions copts;
  copts.deadline = 200.0;
  out.report = fault::RecoveryInvariantChecker(copts).check(
      capture.events(), injector.disruption_windows(), session.queue().now());
  out.events = capture.events();
  out.stats = session.network_stats();
  return out;
}

TEST(PdesPartitionRecoveryTest, InvariantsHoldUnderParallelKernel) {
  const FaultOutcome out = run_partition_heal(7, /*kernel_threads=*/2,
                                              /*kernel_regions=*/4);
  EXPECT_TRUE(out.report.passed) << out.report.summary();
  EXPECT_TRUE(out.report.unrecovered.empty()) << out.report.summary();
  EXPECT_EQ(out.report.storm_violations, 0u);
  EXPECT_GT(out.report.losses, 0u);
  EXPECT_GT(out.report.recovered, 0u);
}

TEST(PdesPartitionRecoveryTest, BitIdenticalAcrossKernelThreadCounts) {
  const FaultOutcome t1 = run_partition_heal(7, 1, 4);
  const FaultOutcome t2 = run_partition_heal(7, 2, 4);
  const FaultOutcome t8 = run_partition_heal(7, 8, 4);
  EXPECT_EQ(t1.disrupted_rounds, t2.disrupted_rounds);
  EXPECT_EQ(t1.disrupted_rounds, t8.disrupted_rounds);
  EXPECT_EQ(t1.report.losses, t2.report.losses);
  EXPECT_EQ(t1.report.losses, t8.report.losses);
  EXPECT_EQ(t1.report.recovered, t2.report.recovered);
  EXPECT_EQ(t1.report.recovered, t8.report.recovered);
  expect_stats_identical(t1.stats, t2.stats, "threads 1 vs 2");
  expect_stats_identical(t1.stats, t8.stats, "threads 1 vs 8");
  expect_traces_identical(t1.events, t2.events, "threads 1 vs 2");
  expect_traces_identical(t1.events, t8.events, "threads 1 vs 8");
  EXPECT_FALSE(t1.events.empty());
}

TEST(PdesPartitionRecoveryTest, InvariantCountsMatchSequentialKernel) {
  const FaultOutcome seq = run_partition_heal(1995, 0, 0);
  const FaultOutcome par = run_partition_heal(1995, 2, 4);
  EXPECT_EQ(seq.report.passed, par.report.passed);
  EXPECT_EQ(seq.report.losses, par.report.losses);
  EXPECT_EQ(seq.report.recovered, par.report.recovered);
  EXPECT_EQ(seq.report.storm_violations, par.report.storm_violations);
  EXPECT_EQ(seq.disrupted_rounds, par.disrupted_rounds);
  expect_stats_identical(seq.stats, par.stats, "seq vs parallel");
}

// --- region-count invariance of the partitioner role -----------------------

TEST(PdesSessionTest, RegionCountIsPureFunctionOfTopology) {
  // The same topology with the same kernel_regions request yields the same
  // region map regardless of thread count (SimSession never feeds the
  // thread count into the partitioner).
  const auto make = [](unsigned threads) {
    util::Rng rng(3);
    net::Topology topo = topo::make_random_tree(150, rng);
    harness::SimSession::Options opts{SrmConfig{}, 3, 1};
    opts.kernel_threads = threads;
    opts.kernel_regions = 5;
    return harness::SimSession(std::move(topo), {10, 20, 30}, opts);
  };
  auto a = make(1);
  auto b = make(8);
  EXPECT_EQ(a.region_map().count, b.region_map().count);
  EXPECT_EQ(a.region_map().of, b.region_map().of);
  EXPECT_EQ(a.region_map().lookahead, b.region_map().lookahead);
}

TEST(PdesSessionTest, SequentialSessionHasTrivialRegionMap) {
  util::Rng rng(3);
  net::Topology topo = topo::make_random_tree(50, rng);
  harness::SimSession session(std::move(topo), {1, 2, 3}, {SrmConfig{}, 3, 1});
  EXPECT_EQ(session.kernel(), nullptr);
  EXPECT_EQ(session.network_count(), 1u);
  EXPECT_EQ(session.region_map().count, 1u);
}

TEST(PdesSessionTest, MembershipChurnWorksUnderParallelKernel) {
  util::Rng rng(11);
  net::Topology topo = topo::make_random_tree(120, rng);
  harness::SimSession::Options opts{SrmConfig{}, 11, 1};
  opts.kernel_threads = 2;
  opts.kernel_regions = 3;
  harness::SimSession session(std::move(topo), {5, 15, 25, 35}, opts);
  session.run();
  session.add_member(60);
  EXPECT_TRUE(session.has_member(60));
  session.run();
  session.remove_member(15, /*graceful=*/true);
  EXPECT_FALSE(session.has_member(15));
  session.run();
  EXPECT_EQ(session.member_count(), 4u);
}

}  // namespace
}  // namespace srm
