#include "harness/loss_round.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace srm::harness {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig fixed_cfg(std::size_t group) {
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(group);
  return cfg;
}

TEST(LossRoundTest, AllAffectedMembersRecover) {
  SimSession s(topo::make_bounded_degree_tree(40, 4), all_nodes(40),
               {fixed_cfg(40), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{1, 5};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_GT(r.affected, 0u);
  EXPECT_EQ(r.recovered, r.affected);
  EXPECT_GE(r.requests, 1u);
  EXPECT_GE(r.repairs, 1u);
  EXPECT_GT(r.max_delay_seconds, 0.0);
  EXPECT_GT(r.last_member_delay_rtt, 0.0);
}

TEST(LossRoundTest, UnaffectedMembersUntouched) {
  SimSession s(topo::make_chain(6), all_nodes(6), {fixed_cfg(6), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{4, 5};
  spec.page = PageId{0, 0};
  run_loss_round(s, spec, 0);
  for (net::NodeId v = 1; v <= 4; ++v) {
    EXPECT_EQ(s.agent_at(v).metrics().losses_detected, 0u) << v;
    EXPECT_EQ(s.agent_at(v).metrics().requests_sent, 0u) << v;
  }
}

TEST(LossRoundTest, SequencedRoundsShareSession) {
  SimSession s(topo::make_chain(5), all_nodes(5), {fixed_cfg(5), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{2, 3};
  spec.page = PageId{0, 0};
  for (int round = 0; round < 5; ++round) {
    const auto r = run_loss_round(s, spec, round * 2);
    EXPECT_EQ(r.affected, 2u) << round;
    EXPECT_EQ(r.recovered, 2u) << round;
  }
  EXPECT_EQ(s.agent_at(4).metrics().recoveries, 5u);
}

TEST(LossRoundTest, WrongSequenceThrows) {
  SimSession s(topo::make_chain(3), all_nodes(3), {fixed_cfg(3), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{1, 2};
  spec.page = PageId{0, 0};
  // First round consumes seqs 0 and 1; asking for seq 0 again must fail.
  run_loss_round(s, spec, 0);
  EXPECT_THROW(run_loss_round(s, spec, 0), std::logic_error);
}

TEST(LossRoundTest, ClosestRequestDelayPopulated) {
  SimSession s(topo::make_chain(6), all_nodes(6), {fixed_cfg(6), 7, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{2, 3};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_TRUE(r.closest_request_delay_valid);
  EXPECT_GE(r.closest_request_delay_rtt, 0.0);
}

TEST(LossRoundTest, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    SimSession s(topo::make_bounded_degree_tree(30, 4), all_nodes(30),
                 {fixed_cfg(30), seed, 1});
    RoundSpec spec;
    spec.source_node = 0;
    spec.congested = DirectedLink{0, 1};
    spec.page = PageId{0, 0};
    return run_loss_round(s, spec, 0);
  };
  const auto a = run_once(11);
  const auto b = run_once(11);
  const auto c = run_once(12);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_DOUBLE_EQ(a.max_delay_seconds, b.max_delay_seconds);
  // A different seed should (almost surely) differ somewhere.
  EXPECT_TRUE(a.requests != c.requests || a.repairs != c.repairs ||
              a.max_delay_seconds != c.max_delay_seconds);
}

TEST(LossRoundTest, LinkTransmissionsCounted) {
  SimSession s(topo::make_chain(4), all_nodes(4), {fixed_cfg(4), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{2, 3};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_GT(r.link_transmissions, 0u);
}

}  // namespace
}  // namespace srm::harness
