#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/builders.h"

namespace srm::harness {
namespace {

TEST(MulticastTreeLinksTest, ChainCoversPathOnly) {
  auto topo = topo::make_chain(6);
  net::Routing r(topo);
  const auto links = multicast_tree_links(r, 0, {0, 3});
  EXPECT_EQ(links.size(), 3u);  // (0,1), (1,2), (2,3)
  for (const auto& l : links) {
    EXPECT_EQ(l.to, l.from + 1);  // oriented downstream
  }
}

TEST(MulticastTreeLinksTest, SharedPrefixNotDuplicated) {
  auto topo = topo::make_bounded_degree_tree(13, 4);
  net::Routing r(topo);
  // Members 5 and 6 share parent 1: links (0,1), (1,5), (1,6).
  const auto links = multicast_tree_links(r, 0, {5, 6});
  EXPECT_EQ(links.size(), 3u);
}

TEST(MulticastTreeLinksTest, SourceAsOnlyMemberIsEmpty) {
  auto topo = topo::make_chain(3);
  net::Routing r(topo);
  EXPECT_TRUE(multicast_tree_links(r, 1, {1}).empty());
}

TEST(ChooseCongestedLinkTest, AlwaysOnTree) {
  util::Rng rng(5);
  auto topo = topo::make_bounded_degree_tree(40, 4);
  net::Routing r(topo);
  const std::vector<net::NodeId> members{3, 7, 20, 39};
  const auto all = multicast_tree_links(r, 3, members);
  std::set<std::pair<net::NodeId, net::NodeId>> valid;
  for (const auto& l : all) valid.emplace(l.from, l.to);
  for (int i = 0; i < 50; ++i) {
    const auto picked = choose_congested_link(r, 3, members, rng);
    EXPECT_TRUE(valid.count({picked.from, picked.to}));
  }
}

TEST(LinkAdjacentToSourceTest, FirstHop) {
  auto topo = topo::make_chain(5);
  net::Routing r(topo);
  const auto l = link_adjacent_to_source(r, 1, {4});
  EXPECT_EQ(l.from, 1u);
  EXPECT_EQ(l.to, 2u);
}

TEST(AffectedMembersTest, DownstreamOnly) {
  auto topo = topo::make_chain(6);
  net::Routing r(topo);
  const std::vector<net::NodeId> members{0, 1, 2, 3, 4, 5};
  const auto aff = affected_members(r, 0, DirectedLink{2, 3}, members);
  EXPECT_EQ(aff, (std::vector<net::NodeId>{3, 4, 5}));
}

TEST(AffectedMembersTest, BranchIsolation) {
  auto topo = topo::make_bounded_degree_tree(13, 4);
  net::Routing r(topo);
  const std::vector<net::NodeId> members{5, 6, 8, 12};
  // Drop on (0,1): only the subtree under 1 (members 5, 6) is affected.
  const auto aff = affected_members(r, 0, DirectedLink{0, 1}, members);
  EXPECT_EQ(aff, (std::vector<net::NodeId>{5, 6}));
}

TEST(ChooseMembersTest, DistinctAndInRange) {
  util::Rng rng(9);
  const auto m = choose_members(100, 20, rng);
  EXPECT_EQ(m.size(), 20u);
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  std::set<net::NodeId> uniq(m.begin(), m.end());
  EXPECT_EQ(uniq.size(), 20u);
  EXPECT_LT(*uniq.rbegin(), 100u);
}

TEST(TtlReachTest, HopLimitedOnChain) {
  auto topo = topo::make_chain(10);
  const auto reach = ttl_reach(topo, 0, 3);
  EXPECT_EQ(reach, (std::vector<net::NodeId>{1, 2, 3}));
}

TEST(TtlReachTest, ThresholdRaisesRequiredTtl) {
  net::Topology topo(3);
  topo.add_link(0, 1, 1.0, 1);
  topo.add_link(1, 2, 1.0, 5);
  EXPECT_EQ(ttl_reach(topo, 0, 4), (std::vector<net::NodeId>{1}));
  // TTL 6: at node 1 the packet has TTL 5 >= threshold 5.
  EXPECT_EQ(ttl_reach(topo, 0, 6), (std::vector<net::NodeId>{1, 2}));
}

TEST(TtlReachTest, ZeroTtlReachesNothing) {
  auto topo = topo::make_chain(3);
  EXPECT_TRUE(ttl_reach(topo, 0, 0).empty());
}

TEST(MinTtlTest, AllAndAnyOnChain) {
  auto topo = topo::make_chain(8);
  EXPECT_EQ(min_ttl_to_reach_all(topo, 0, {3, 5}), 5);
  EXPECT_EQ(min_ttl_to_reach_any(topo, 0, {3, 5}), 3);
  EXPECT_EQ(min_ttl_to_reach_any(topo, 0, {0, 5}), 0);  // origin included
}

TEST(MinTtlTest, ConsistentWithReach) {
  util::Rng rng(13);
  auto topo = topo::make_bounded_degree_tree(60, 4);
  const std::vector<net::NodeId> targets{10, 33, 59};
  const int t = min_ttl_to_reach_all(topo, 5, targets);
  ASSERT_GT(t, 0);
  const auto reach = ttl_reach(topo, 5, t);
  for (net::NodeId v : targets) {
    EXPECT_TRUE(std::find(reach.begin(), reach.end(), v) != reach.end());
  }
  // One less TTL must miss at least one target.
  const auto reach_less = ttl_reach(topo, 5, t - 1);
  bool all_in = true;
  for (net::NodeId v : targets) {
    if (std::find(reach_less.begin(), reach_less.end(), v) ==
        reach_less.end()) {
      all_in = false;
    }
  }
  EXPECT_FALSE(all_in);
}

TEST(MinTtlTest, UnreachableReturnsMinusOne) {
  net::Topology topo(3);
  topo.add_link(0, 1);
  EXPECT_EQ(min_ttl_to_reach_all(topo, 0, {2}), -1);
  EXPECT_EQ(min_ttl_to_reach_any(topo, 0, {2}), -1);
}

}  // namespace
}  // namespace srm::harness
