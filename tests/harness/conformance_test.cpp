#include "harness/conformance.h"

#include <gtest/gtest.h>

#include <memory>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "net/drop_policy.h"
#include "topo/builders.h"

namespace srm::harness {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

// --- clean protocol runs produce zero violations -----------------------------

class CleanRunTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CleanRunTest, TreeLossRoundsAreConformant) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  auto topo = topo::make_bounded_degree_tree(150, 4);
  auto members = choose_members(150, 30, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(30);
  cfg.backoff_factor = 3.0;
  SimSession session(std::move(topo), members, {cfg, seed, 1});
  ConformanceChecker checker(session.network(), session.directory(),
                             cfg.holddown_multiplier);

  const net::NodeId source = members[0];
  RoundSpec round;
  round.source_node = source;
  round.congested = choose_congested_link(session.network().routing(), source,
                                          members, rng);
  round.page = PageId{static_cast<SourceId>(source), 0};
  for (int r = 0; r < 10; ++r) {
    run_loss_round(session, round, r * 2);
  }
  EXPECT_TRUE(checker.clean()) << checker.report();
  EXPECT_GT(checker.data_seen(), 0u);
  EXPECT_GT(checker.requests_seen(), 0u);
  EXPECT_GT(checker.repairs_seen(), 0u);
}

TEST_P(CleanRunTest, RandomLossStreamIsConformant) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed ^ 0xC0FFEE);
  auto topo = topo::make_random_tree(50, rng);
  auto members = choose_members(50, 20, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(20);
  cfg.backoff_factor = 3.0;
  SimSession session(std::move(topo), members, {cfg, seed, 1});
  ConformanceChecker checker(session.network(), session.directory(),
                             cfg.holddown_multiplier);
  session.network().set_drop_policy(std::make_shared<net::RandomDrop>(
      0.2, seed, [](const net::Packet& p) {
        return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
      }));
  const PageId page{static_cast<SourceId>(members[0]), 0};
  session.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  for (int i = 0; i < 25; ++i) {
    session.agent_at(members[0]).send_data(page, {static_cast<uint8_t>(i)});
    session.queue().run();
  }
  session.for_each_agent([&](SrmAgent& a) {
    a.send_session_message();
    session.queue().run();
  });
  EXPECT_TRUE(checker.clean()) << checker.report();
}

TEST_P(CleanRunTest, AdaptiveRoundsAreConformant) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed ^ 0xADA);
  auto topo = topo::make_bounded_degree_tree(200, 4);
  auto members = choose_members(200, 25, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(25);
  cfg.adaptive.enabled = true;
  cfg.backoff_factor = 3.0;
  SimSession session(std::move(topo), members, {cfg, seed, 1});
  ConformanceChecker checker(session.network(), session.directory(),
                             cfg.holddown_multiplier);
  const net::NodeId source = members[0];
  RoundSpec round;
  round.source_node = source;
  round.congested = choose_congested_link(session.network().routing(), source,
                                          members, rng);
  round.page = PageId{static_cast<SourceId>(source), 0};
  for (int r = 0; r < 25; ++r) run_loss_round(session, round, r * 2);
  EXPECT_TRUE(checker.clean()) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanRunTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ConformanceTest, TwoStepLocalRecoveryIsConformant) {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
  cfg.local_recovery.enabled = true;
  SimSession session(topo::make_chain(8), all_nodes(8), {cfg, 2, 1});
  ConformanceChecker checker(session.network(), session.directory(),
                             cfg.holddown_multiplier);
  session.agent_at(6).set_request_ttl_policy([](const DataName&) { return 2; });
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{5, 6};
  spec.page = PageId{0, 0};
  run_loss_round(session, spec, 0);
  EXPECT_TRUE(checker.clean()) << checker.report();
}

// --- deliberate misbehavior is caught ----------------------------------------

// A minimal hand-rolled sender used to inject rule-breaking traffic.
class RogueSender : public net::PacketSink {
 public:
  RogueSender(net::MulticastNetwork& net, net::NodeId node) : net_(&net) {
    net.attach(node, this);
    net.join(1, node);
    node_ = node;
  }
  void on_receive(const net::Packet&, const net::DeliveryInfo&) override {}
  void send(net::MessagePtr msg) {
    net::Packet p;
    p.group = 1;
    p.payload = std::move(msg);
    net_->multicast(node_, std::move(p));
  }

 private:
  net::MulticastNetwork* net_;
  net::NodeId node_;
};

struct RogueWorld {
  RogueWorld()
      : topo(topo::make_chain(3)),
        network(queue, topo),
        rogue(network, 0),
        listener(network, 2),
        checker(network, directory) {
    directory.bind(0, 0);
    directory.bind(2, 2);
    network.join(1, 2);
  }
  sim::EventQueue queue;
  net::Topology topo;
  net::MulticastNetwork network;
  RogueSender rogue;
  RogueSender listener;
  MemberDirectory directory;
  ConformanceChecker checker;
};

TEST(ConformanceViolationTest, DetectsNonMonotonicSequence) {
  RogueWorld w;
  const PageId page{0, 0};
  auto pay = std::make_shared<const Payload>(Payload{1});
  w.rogue.send(std::make_shared<DataMessage>(DataName{0, page, 5}, pay));
  w.rogue.send(std::make_shared<DataMessage>(DataName{0, page, 3}, pay));
  w.queue.run();
  ASSERT_EQ(w.checker.violations().size(), 1u);
  EXPECT_EQ(w.checker.violations()[0].rule, "sequencing");
}

TEST(ConformanceViolationTest, DetectsMutatedPayload) {
  RogueWorld w;
  const DataName name{0, PageId{0, 0}, 0};
  w.rogue.send(std::make_shared<DataMessage>(
      name, std::make_shared<const Payload>(Payload{1, 2, 3})));
  // Same name, different bytes — the corruption Sec. III-E warns about.
  w.rogue.send(std::make_shared<RepairMessage>(
      name, std::make_shared<const Payload>(Payload{9, 9, 9}), 0, 0, 0.0,
      net::kMaxTtl));
  w.queue.run();
  bool found = false;
  for (const auto& v : w.checker.violations()) {
    if (v.rule == "payload-consistency") found = true;
  }
  EXPECT_TRUE(found) << w.checker.report();
}

TEST(ConformanceViolationTest, DetectsRequestForHeldData) {
  RogueWorld w;
  const DataName name{0, PageId{0, 0}, 0};
  w.rogue.send(std::make_shared<DataMessage>(
      name, std::make_shared<const Payload>(Payload{1})));
  w.rogue.send(std::make_shared<RequestMessage>(name, 0, 1.0, net::kMaxTtl));
  w.queue.run();
  ASSERT_FALSE(w.checker.clean());
  EXPECT_EQ(w.checker.violations()[0].rule, "no-request-for-held-data");
}

TEST(ConformanceViolationTest, DetectsHolddownBreach) {
  RogueWorld w;
  const DataName name{2, PageId{2, 0}, 0};  // data originated by node 2
  auto pay = std::make_shared<const Payload>(Payload{1});
  // Node 0 answers twice in immediate succession; hold-down is
  // 3 * d(0, 2) = 6 seconds.
  w.rogue.send(std::make_shared<RepairMessage>(name, pay, 0, 2, 2.0,
                                               net::kMaxTtl));
  w.rogue.send(std::make_shared<RepairMessage>(name, pay, 0, 2, 2.0,
                                               net::kMaxTtl));
  w.queue.run();
  bool found = false;
  for (const auto& v : w.checker.violations()) {
    if (v.rule == "holddown") found = true;
  }
  EXPECT_TRUE(found) << w.checker.report();
}

TEST(ConformanceViolationTest, DetectsRequestAfterRepair) {
  RogueWorld w;
  const DataName name{0, PageId{0, 0}, 0};
  auto pay = std::make_shared<const Payload>(Payload{1});
  // Node 0 repairs; node 2 receives it, then rogue-requests it anyway.
  w.rogue.send(std::make_shared<RepairMessage>(name, pay, 0, 2, 0.0,
                                               net::kMaxTtl));
  w.queue.run();
  w.listener.send(std::make_shared<RequestMessage>(name, 2, 1.0,
                                                   net::kMaxTtl));
  w.queue.run();
  bool found = false;
  for (const auto& v : w.checker.violations()) {
    if (v.rule == "no-request-after-repair") found = true;
  }
  EXPECT_TRUE(found) << w.checker.report();
}

TEST(ConformanceTest, DetachRestoresObservers) {
  sim::EventQueue queue;
  auto topo = topo::make_chain(2);
  net::MulticastNetwork network(queue, topo);
  MemberDirectory directory;
  int prior_calls = 0;
  network.set_send_observer([&](net::NodeId, const net::Packet&) {
    ++prior_calls;
  });
  {
    ConformanceChecker checker(network, directory);
    RogueSender rogue(network, 0);
    rogue.send(std::make_shared<DataMessage>(DataName{0, PageId{0, 0}, 0},
                                             nullptr));
    queue.run();
    EXPECT_EQ(prior_calls, 1);  // chained through
    EXPECT_EQ(checker.data_seen(), 1u);
    network.detach(0);
  }
  // After the checker is gone, the original observer still works alone.
  RogueSender rogue2(network, 0);
  rogue2.send(std::make_shared<DataMessage>(DataName{0, PageId{0, 0}, 1},
                                            nullptr));
  queue.run();
  EXPECT_EQ(prior_calls, 2);
  network.detach(0);
}

}  // namespace
}  // namespace srm::harness
