// Failure-injection stress: random loss applied to EVERY packet type —
// data, requests, repairs, and session messages — across random worlds.
// SRM's design requires only best-effort delivery; with retransmitting
// session reports the invariant "eventual delivery of all data to all
// members" must survive control-plane loss too (the paper's Sec. VII-A:
// "members have to rely on retransmit timer algorithms to retransmit
// requests and repairs as needed").
#include <gtest/gtest.h>

#include <memory>

#include "harness/conformance.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

struct StressCase {
  std::uint64_t seed;
  double loss_rate;
  std::size_t nodes;
  std::size_t members;
};

class StressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressTest, ConvergesUnderOmnidirectionalLoss) {
  const StressCase& p = GetParam();
  util::Rng rng(p.seed);
  auto topo = topo::make_random_tree(p.nodes, rng);
  auto members = harness::choose_members(p.nodes, p.members, rng);

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(p.members);
  cfg.backoff_factor = 3.0;
  harness::SimSession session(std::move(topo), members, {cfg, p.seed, 1});
  harness::ConformanceChecker checker(session.network(), session.directory(),
                                      cfg.holddown_multiplier);

  // Loss on everything (no payload filter): data, requests, repairs,
  // session messages alike.
  session.network().set_drop_policy(std::make_shared<net::RandomDrop>(
      p.loss_rate, p.seed ^ 0x10552));

  const net::NodeId source = members[0];
  const PageId page{static_cast<SourceId>(source), 0};
  session.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  constexpr int kAdus = 10;
  for (int i = 0; i < kAdus; ++i) {
    session.agent_at(source).send_data(page, {static_cast<uint8_t>(i)});
    session.queue().run();
  }
  // Session reporting rounds keep revealing state until everyone converges
  // (session messages themselves may be lost; keep trying, bounded).  The
  // bound is generous: at 30% per-hop loss an isolated member whose nearest
  // holder is several hops away needs many repair attempts — e.g. 6 lossy
  // hops give each repair only a ~12% chance of arriving.
  bool converged = false;
  for (int round = 0; round < 150 && !converged; ++round) {
    session.for_each_agent([&](SrmAgent& a) {
      a.send_session_message();
      session.queue().run();
    });
    converged = true;
    for (net::NodeId m : members) {
      for (SeqNo q = 0; q < kAdus; ++q) {
        if (!session.agent_at(m).has_data(
                DataName{static_cast<SourceId>(source), page, q})) {
          converged = false;
        }
      }
    }
  }
  EXPECT_TRUE(converged) << "seed " << p.seed << " loss " << p.loss_rate;
  // Conformance must hold even under control-plane loss.
  EXPECT_TRUE(checker.clean()) << checker.report();
}

std::vector<StressCase> stress_cases() {
  std::vector<StressCase> cases;
  std::uint64_t seed = 1000;
  for (double loss : {0.05, 0.15, 0.3}) {
    for (int i = 0; i < 4; ++i) {
      cases.push_back(StressCase{seed++, loss, 60, 20});
    }
  }
  // A couple of denser/larger corners.
  cases.push_back(StressCase{2001, 0.2, 120, 60});
  cases.push_back(StressCase{2002, 0.1, 30, 30});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressTest, ::testing::ValuesIn(stress_cases()),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss_rate * 100)) +
             "_n" + std::to_string(info.param.nodes) + "_g" +
             std::to_string(info.param.members);
    });

}  // namespace
}  // namespace srm
