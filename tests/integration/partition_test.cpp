// Network partition and healing (Sec. III-D): "During a partition, members
// can continue to send data in the connected components of the partitions.
// After recovery all data will still have unique names and the repair
// mechanism will distribute any new state throughout the entire group."
//
// A partition is modelled as a drop policy black-holing every packet
// crossing one link; healing removes the policy.  Session messages after
// the heal reveal the state each side missed and the request/repair
// machinery redistributes it.
#include <gtest/gtest.h>

#include <memory>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

// Drops everything crossing the given undirected link.
class PartitionDrop final : public net::DropPolicy {
 public:
  PartitionDrop(net::NodeId a, net::NodeId b) : a_(a), b_(b) {}
  bool should_drop(const net::Packet&, const net::HopContext& hop) override {
    return (hop.from == a_ && hop.to == b_) ||
           (hop.from == b_ && hop.to == a_);
  }

 private:
  net::NodeId a_, b_;
};

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig cfg() {
  SrmConfig c;
  c.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  c.backoff_factor = 3.0;
  return c;
}

class PartitionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionTest, BothSidesConvergeAfterHeal) {
  const std::uint64_t seed = GetParam();
  harness::SimSession s(topo::make_chain(8), all_nodes(8), {cfg(), seed, 1});
  const PageId page_left{1, 0};   // member 1 sends on the left side
  const PageId page_right{6, 0};  // member 6 sends on the right side
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page_left); });

  // Pre-partition traffic everyone sees.
  s.agent_at(1).send_data(page_left, {0});
  s.agent_at(6).send_data(page_right, {0});
  s.queue().run();

  // Partition between 3 and 4.
  s.network().set_drop_policy(std::make_shared<PartitionDrop>(3, 4));
  for (int i = 1; i <= 4; ++i) {
    s.agent_at(1).send_data(page_left, {static_cast<uint8_t>(i)});
    s.agent_at(6).send_data(page_right, {static_cast<uint8_t>(i)});
    s.queue().run();
  }
  // During the partition: each side has its own data, not the other's.
  EXPECT_TRUE(s.agent_at(2).has_data(DataName{1, page_left, 4}));
  EXPECT_FALSE(s.agent_at(2).has_data(DataName{6, page_right, 4}));
  EXPECT_TRUE(s.agent_at(5).has_data(DataName{6, page_right, 4}));
  EXPECT_FALSE(s.agent_at(5).has_data(DataName{1, page_left, 4}));

  // Note: members on each side abandoned recovery of the other side's data
  // only if they ever learned of it; requests crossing the partition were
  // all black-holed, so some recovery state may have been abandoned.  The
  // heal must still converge because session messages re-reveal the state.
  s.network().set_drop_policy(nullptr);

  // Session messages for each page, a few rounds each way.
  for (const PageId& page : {page_left, page_right}) {
    s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
    for (int round = 0; round < 4; ++round) {
      s.for_each_agent([&](SrmAgent& a) {
        a.send_session_message();
        s.queue().run();
      });
    }
  }

  for (net::NodeId m = 0; m < 8; ++m) {
    for (SeqNo q = 0; q <= 4; ++q) {
      EXPECT_TRUE(s.agent_at(m).has_data(DataName{1, page_left, q}))
          << "member " << m << " left seq " << q;
      EXPECT_TRUE(s.agent_at(m).has_data(DataName{6, page_right, q}))
          << "member " << m << " right seq " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionTest,
                         ::testing::Values(1u, 7u, 23u, 99u));

TEST(PartitionTest, DepartedMemberDataStillRepairable) {
  // A member sends data and leaves; SRM does not distinguish departure from
  // partition, and any member holding the data can still answer requests.
  harness::SimSession s(topo::make_chain(5), {0, 1, 2, 3}, {cfg(), 5, 1});
  const PageId page{0, 0};
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  s.agent_at(0).send_data(page, {42});
  s.queue().run();
  s.agent_at(0).stop();  // the source departs

  // A late joiner at node 4 still recovers the departed member's data.
  SrmConfig late_cfg = cfg();
  SrmAgent late(s.network(), s.directory(), 4, 4, 1, late_cfg,
                util::Rng(55));
  late.start();
  late.set_current_page(page);
  s.agent_at(3).send_session_message();
  s.queue().run();
  EXPECT_TRUE(late.has_data(DataName{0, page, 0}));
  late.stop();
}

}  // namespace
}  // namespace srm
