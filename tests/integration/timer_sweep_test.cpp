// Property tests over the timer-parameter space: whatever (C1, C2, D1, D2)
// and backoff factor are configured, the protocol invariants must hold on a
// loss-recovery round:
//   - every affected member recovers,
//   - at least one request and one repair are sent,
//   - request/repair counts are bounded by the obvious worst cases,
//   - unaffected members send nothing,
//   - the run is deterministic given the seed.
#include <gtest/gtest.h>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"

namespace srm {
namespace {

struct SweepCase {
  double c1, c2, d1, d2;
  double backoff;
  bool ignore_backoff;
};

class TimerSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TimerSweepTest, InvariantsHoldOnTreeRound) {
  const SweepCase& p = GetParam();
  util::Rng rng(101);
  auto topo = topo::make_bounded_degree_tree(120, 4);
  auto members = harness::choose_members(120, 30, rng);
  SrmConfig cfg;
  cfg.timers = TimerParams{p.c1, p.c2, p.d1, p.d2};
  cfg.backoff_factor = p.backoff;
  cfg.ignore_backoff_heuristic = p.ignore_backoff;
  harness::SimSession session(std::move(topo), members, {cfg, 101, 1});

  const net::NodeId source = members[0];
  const auto congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  harness::RoundSpec round;
  round.source_node = source;
  round.congested = congested;
  round.page = PageId{static_cast<SourceId>(source), 0};
  const auto r = harness::run_loss_round(session, round, 0);

  EXPECT_GT(r.affected, 0u);
  EXPECT_EQ(r.recovered, r.affected);
  EXPECT_GE(r.requests, 1u);
  EXPECT_GE(r.repairs, 1u);
  // Worst case: every affected member requests on every backoff iteration,
  // every member answers each request once.
  const std::size_t max_requests =
      r.affected * static_cast<std::size_t>(cfg.max_request_backoffs + 1);
  EXPECT_LE(r.requests, max_requests);
  EXPECT_LE(r.repairs, members.size() * r.requests);
  // No member abandoned recovery.
  for (net::NodeId m : members) {
    EXPECT_EQ(session.agent_at(m).metrics().recovery_abandoned, 0u) << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, TimerSweepTest,
    ::testing::Values(
        // The paper's fixed settings and neighbors.
        SweepCase{2.0, 2.0, 1.5, 1.5, 2.0, true},
        SweepCase{2.0, 2.0, 1.5, 1.5, 3.0, true},
        SweepCase{2.0, 2.0, 1.5, 1.5, 3.0, false},
        // Deterministic corner (zero widths).
        SweepCase{1.0, 0.0, 1.0, 0.0, 3.0, true},
        // Zero starts (pure randomization).
        SweepCase{0.0, 2.0, 0.0, 2.0, 3.0, true},
        SweepCase{0.0, 50.0, 0.0, 50.0, 3.0, true},
        // Wide spreads.
        SweepCase{2.0, 100.0, 2.0, 100.0, 2.0, true},
        SweepCase{0.5, 1.0, 0.5, 1.0, 3.0, true},
        // Large starts (slow but must still work).
        SweepCase{10.0, 5.0, 10.0, 5.0, 2.0, true},
        // Tiny everything: maximal duplication, still correct.
        SweepCase{0.1, 0.1, 0.1, 0.1, 3.0, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const auto& p = info.param;
      auto f = [](double v) {
        std::string s = std::to_string(v);
        for (auto& c : s) {
          if (c == '.' || c == '-') c = '_';
        }
        return s.substr(0, 4);
      };
      return "C" + f(p.c1) + "_" + f(p.c2) + "_D" + f(p.d1) + "_" + f(p.d2) +
             "_b" + f(p.backoff) + (p.ignore_backoff ? "_ib" : "_nib");
    });

// Determinism across re-runs for a sample of the grid.
TEST(TimerSweepDeterminismTest, IdenticalSeedsIdenticalRounds) {
  for (const double c2 : {0.0, 2.0, 20.0}) {
    auto run = [&](std::uint64_t seed) {
      util::Rng rng(seed);
      auto topo = topo::make_bounded_degree_tree(80, 4);
      auto members = harness::choose_members(80, 20, rng);
      SrmConfig cfg;
      cfg.timers = TimerParams{2.0, c2, 1.0, 1.0};
      harness::SimSession session(std::move(topo), members, {cfg, seed, 1});
      const net::NodeId source = members[0];
      harness::RoundSpec round;
      round.source_node = source;
      round.congested = harness::choose_congested_link(
          session.network().routing(), source, members, rng);
      round.page = PageId{static_cast<SourceId>(source), 0};
      return harness::run_loss_round(session, round, 0);
    };
    const auto a = run(500), b = run(500);
    EXPECT_EQ(a.requests, b.requests) << c2;
    EXPECT_EQ(a.repairs, b.repairs) << c2;
    EXPECT_DOUBLE_EQ(a.max_delay_seconds, b.max_delay_seconds) << c2;
    EXPECT_EQ(a.request_times, b.request_times) << c2;
  }
}

}  // namespace
}  // namespace srm
