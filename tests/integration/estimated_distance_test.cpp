// Recovery on session-estimated distances (Sec. III-A): the full protocol
// must behave the same whether timers use the routing oracle or distances
// the members learned from session-message timestamp exchanges, because on
// symmetric paths the estimates are exact.
#include <gtest/gtest.h>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"

namespace srm {
namespace {

class EstimatedDistanceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EstimatedDistanceTest, RecoveryIdenticalToOracleAfterWarmup) {
  const std::uint64_t seed = GetParam();
  auto run = [&](DistanceMode mode) {
    util::Rng rng(seed);
    auto topo = topo::make_random_tree(50, rng);
    auto members = harness::choose_members(50, 20, rng);
    SrmConfig cfg;
    cfg.timers = paper_fixed_params(20);
    cfg.backoff_factor = 3.0;
    cfg.distance_mode = mode;
    harness::SimSession session(std::move(topo), members, {cfg, seed, 1});
    // Warm-up: two full session rounds so every pair has exchanged echoes.
    for (int r = 0; r < 2; ++r) {
      session.for_each_agent([&](SrmAgent& a) {
        a.send_session_message();
        session.queue().run();
      });
    }
    const net::NodeId source = members[0];
    harness::RoundSpec round;
    round.source_node = source;
    round.congested = harness::choose_congested_link(
        session.network().routing(), source, members, rng);
    round.page = PageId{static_cast<SourceId>(source), 0};
    return harness::run_loss_round(session, round, 0);
  };

  const auto oracle = run(DistanceMode::kOracle);
  const auto estimated = run(DistanceMode::kEstimated);
  // Same RNG draws + exact distance estimates => identical protocol
  // behavior.  Delays may differ in the last ulp: the estimate is computed
  // as (t2 - t1 - delta)/2 rather than read off the routing table.
  EXPECT_EQ(oracle.requests, estimated.requests);
  EXPECT_EQ(oracle.repairs, estimated.repairs);
  EXPECT_EQ(oracle.recovered, estimated.recovered);
  EXPECT_NEAR(oracle.max_delay_seconds, estimated.max_delay_seconds,
              1e-9 * oracle.max_delay_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatedDistanceTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(EstimatedDistanceTest, ColdStartStillRecovers) {
  // With no warm-up, estimates fall back to default_distance; recovery is
  // less efficient (weaker suppression) but must still complete.
  util::Rng rng(21);
  auto topo = topo::make_random_tree(40, rng);
  auto members = harness::choose_members(40, 15, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(15);
  cfg.backoff_factor = 3.0;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.default_distance = 2.0;
  harness::SimSession session(std::move(topo), members, {cfg, 21, 1});
  const net::NodeId source = members[0];
  harness::RoundSpec round;
  round.source_node = source;
  round.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  round.page = PageId{static_cast<SourceId>(source), 0};
  const auto r = harness::run_loss_round(session, round, 0);
  EXPECT_EQ(r.recovered, r.affected);
}

}  // namespace
}  // namespace srm
