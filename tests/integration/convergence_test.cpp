// End-to-end convergence properties, parameterized across topology families
// and seeds: whatever the topology and loss pattern, SRM's one guarantee —
// eventual delivery of all data to all members (Sec. III) — must hold, with
// session messages covering tail losses.
#include <gtest/gtest.h>

#include <memory>

#include "harness/scenario.h"
#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

enum class TopoKind { kChain, kStar, kBoundedTree, kRandomTree, kRandomGraph,
                      kTreeOfLans };

std::string kind_name(TopoKind k) {
  switch (k) {
    case TopoKind::kChain: return "Chain";
    case TopoKind::kStar: return "Star";
    case TopoKind::kBoundedTree: return "BoundedTree";
    case TopoKind::kRandomTree: return "RandomTree";
    case TopoKind::kRandomGraph: return "RandomGraph";
    case TopoKind::kTreeOfLans: return "TreeOfLans";
  }
  return "?";
}

struct ConvergenceCase {
  TopoKind kind;
  std::uint64_t seed;
  double loss_rate;
};

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {
 protected:
  // Builds (topology, member nodes) for the parameterized kind.
  static std::pair<net::Topology, std::vector<net::NodeId>> build(
      TopoKind kind, util::Rng& rng) {
    switch (kind) {
      case TopoKind::kChain: {
        auto t = topo::make_chain(12);
        return {std::move(t), all(12)};
      }
      case TopoKind::kStar: {
        auto s = topo::make_star(15);
        return {std::move(s.topo), s.leaves};
      }
      case TopoKind::kBoundedTree: {
        auto t = topo::make_bounded_degree_tree(60, 4);
        return {std::move(t), harness::choose_members(60, 20, rng)};
      }
      case TopoKind::kRandomTree: {
        auto t = topo::make_random_tree(40, rng);
        return {std::move(t), harness::choose_members(40, 15, rng)};
      }
      case TopoKind::kRandomGraph: {
        auto t = topo::make_random_graph(40, 60, rng);
        return {std::move(t), harness::choose_members(40, 15, rng)};
      }
      case TopoKind::kTreeOfLans: {
        auto tl = topo::make_tree_of_lans(8, 3, 3);
        std::vector<net::NodeId> members = tl.workstations;
        return {std::move(tl.topo), std::move(members)};
      }
    }
    throw std::logic_error("unreachable");
  }

  static std::vector<net::NodeId> all(std::size_t n) {
    std::vector<net::NodeId> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
    return v;
  }
};

TEST_P(ConvergenceTest, AllDataReachesAllMembersUnderRandomLoss) {
  const auto& param = GetParam();
  util::Rng rng(param.seed);
  auto [topo, members] = build(param.kind, rng);

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.backoff_factor = 3.0;
  harness::SimSession session(std::move(topo), members,
                              {cfg, param.seed, 1});

  // Random loss on data packets only (requests/repairs get through, as in
  // the paper's Sec. V methodology).
  session.network().set_drop_policy(std::make_shared<net::RandomDrop>(
      param.loss_rate, param.seed ^ 0xABCD,
      [](const net::Packet& p) {
        return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
      }));

  // Two senders interleave ADUs on their own pages.
  const net::NodeId sender_a = members.front();
  const net::NodeId sender_b = members.back();
  const PageId page_a{static_cast<SourceId>(sender_a), 0};
  const PageId page_b{static_cast<SourceId>(sender_b), 0};
  session.for_each_agent([&](SrmAgent& a) { a.set_current_page(page_a); });
  constexpr int kAdus = 15;
  for (int i = 0; i < kAdus; ++i) {
    session.agent_at(sender_a).send_data(page_a, {static_cast<uint8_t>(i)});
    session.agent_at(sender_b).send_data(page_b, {static_cast<uint8_t>(i)});
    session.queue().run();
  }

  // Tail losses need session messages; run a few reporting rounds per page.
  for (const PageId& page : {page_a, page_b}) {
    session.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
    for (int round = 0; round < 3; ++round) {
      session.for_each_agent([&](SrmAgent& a) {
        a.send_session_message();
        session.queue().run();
      });
    }
  }

  for (net::NodeId m : members) {
    const SrmAgent& agent = session.agent_at(m);
    EXPECT_EQ(agent.metrics().recovery_abandoned, 0u);
    for (SeqNo q = 0; q < kAdus; ++q) {
      EXPECT_TRUE(agent.has_data(DataName{
          static_cast<SourceId>(sender_a), page_a, q}))
          << kind_name(param.kind) << " member " << m << " seq " << q;
      EXPECT_TRUE(agent.has_data(DataName{
          static_cast<SourceId>(sender_b), page_b, q}))
          << kind_name(param.kind) << " member " << m << " seq " << q;
    }
  }
}

std::vector<ConvergenceCase> make_cases() {
  std::vector<ConvergenceCase> cases;
  for (TopoKind kind : {TopoKind::kChain, TopoKind::kStar,
                        TopoKind::kBoundedTree, TopoKind::kRandomTree,
                        TopoKind::kRandomGraph, TopoKind::kTreeOfLans}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      for (double loss : {0.1, 0.3}) {
        cases.push_back(ConvergenceCase{kind, seed, loss});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, ConvergenceTest, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) {
      return kind_name(info.param.kind) + "_seed" +
             std::to_string(info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss_rate * 100));
    });

}  // namespace
}  // namespace srm
