// SimTransport: the pass-through backend must preserve the simulator's
// delivery semantics exactly and add only the receive-filter interposer.
#include "transport/sim_transport.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm::transport {
namespace {

struct Capture final : net::PacketSink {
  std::vector<net::Packet> packets;
  std::vector<net::DeliveryInfo> infos;
  void on_receive(const net::Packet& packet,
                  const net::DeliveryInfo& info) override {
    packets.push_back(packet);
    infos.push_back(info);
  }
};

net::Packet make_data(net::NodeId source, SeqNo seq) {
  net::Packet p;
  p.source = source;
  p.group = 1;
  p.payload = std::make_shared<DataMessage>(
      DataName{/*source=*/0, PageId{0, 1}, seq}, nullptr);
  return p;
}

TEST(SimTransport, DeliversThroughNetworkWithOracleMetadata) {
  const topo::Star star = topo::make_star(2, /*link_delay=*/0.5);
  sim::EventQueue queue;
  net::MulticastNetwork network(queue, star.topo);

  SimTransport sender(network);
  SimTransport receiver(network);
  Capture sink;
  sender.attach(star.leaves[0], nullptr);
  receiver.attach(star.leaves[1], &sink);
  sender.join(1, star.leaves[0]);
  receiver.join(1, star.leaves[1]);

  sender.multicast(star.leaves[0], make_data(star.leaves[0], 0));
  queue.run();

  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.infos[0].receiver, star.leaves[1]);
  EXPECT_DOUBLE_EQ(sink.infos[0].path_delay, 1.0);  // two 0.5 s hops
  EXPECT_EQ(sink.infos[0].hops, 2);
  // The sim backend exposes the topology oracle.
  EXPECT_DOUBLE_EQ(sender.try_distance(star.leaves[0], star.leaves[1]), 1.0);
  EXPECT_EQ(sender.topology_version(), network.topology().version());
  EXPECT_STREQ(sender.name(), "sim");
}

TEST(SimTransport, ReceiveFilterDropsMatchingPackets) {
  const topo::Star star = topo::make_star(2, 0.1);
  sim::EventQueue queue;
  net::MulticastNetwork network(queue, star.topo);

  SimTransport sender(network);
  SimTransport receiver(network);
  Capture sink;
  sender.attach(star.leaves[0], nullptr);
  receiver.attach(star.leaves[1], &sink);
  sender.join(1, star.leaves[0]);
  receiver.join(1, star.leaves[1]);

  receiver.set_receive_filter(
      [](const net::Packet& packet, const net::DeliveryInfo&) {
        const auto& msg = static_cast<const DataMessage&>(*packet.payload);
        return msg.name().seq == 0;  // drop only seq 0
      });

  sender.multicast(star.leaves[0], make_data(star.leaves[0], 0));
  sender.multicast(star.leaves[0], make_data(star.leaves[0], 1));
  queue.run();

  ASSERT_EQ(sink.packets.size(), 1u);
  const auto& got = static_cast<const DataMessage&>(*sink.packets[0].payload);
  EXPECT_EQ(got.name().seq, 1u);
  EXPECT_EQ(receiver.filtered_drops(), 1u);
  EXPECT_EQ(sender.filtered_drops(), 0u);  // filter is per-endpoint
}

TEST(SimTransport, DetachStopsDelivery) {
  const topo::Star star = topo::make_star(2, 0.1);
  sim::EventQueue queue;
  net::MulticastNetwork network(queue, star.topo);

  SimTransport sender(network);
  SimTransport receiver(network);
  Capture sink;
  sender.attach(star.leaves[0], nullptr);
  receiver.attach(star.leaves[1], &sink);
  sender.join(1, star.leaves[0]);
  receiver.join(1, star.leaves[1]);

  receiver.leave(1, star.leaves[1]);
  receiver.detach(star.leaves[1]);
  sender.multicast(star.leaves[0], make_data(star.leaves[0], 0));
  queue.run();
  EXPECT_TRUE(sink.packets.empty());
}

}  // namespace
}  // namespace srm::transport
