// UdpTransport: real UDP multicast on loopback.  Every test gates on
// UdpTransport::available() so environments without multicast support skip
// instead of failing.
#include "transport/udp_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/packet.h"
#include "srm/messages.h"

namespace srm::transport {
namespace {

#define REQUIRE_UDP()                                             \
  do {                                                            \
    if (!UdpTransport::available())                               \
      GTEST_SKIP() << "loopback multicast unavailable";           \
  } while (0)

struct Capture final : net::PacketSink {
  std::vector<net::Packet> packets;
  std::vector<net::DeliveryInfo> infos;
  void on_receive(const net::Packet& packet,
                  const net::DeliveryInfo& info) override {
    packets.push_back(packet);
    infos.push_back(info);
  }
};

net::Packet make_data(SeqNo seq) {
  net::Packet p;
  p.group = 1;
  p.payload = std::make_shared<DataMessage>(
      DataName{/*source=*/0, PageId{0, 1}, seq},
      std::make_shared<const Payload>(Payload{9, 8, 7}));
  return p;
}

// Scratch port away from the suite default so concurrent tests don't cross.
UdpOptions test_options(std::uint16_t port_offset) {
  UdpOptions options;
  options.port = static_cast<std::uint16_t>(22000 + port_offset);
  return options;
}

TEST(UdpTransport, RoundTripsBetweenEndpointsOnOneSocket) {
  REQUIRE_UDP();
  UdpTransport transport(test_options(1));
  Capture a, b;
  transport.attach(0, &a);
  transport.attach(1, &b);
  transport.join(1, 0);
  transport.join(1, 1);

  transport.multicast(0, make_data(5));
  ASSERT_TRUE(transport.run_until_idle(0.05, 2.0));

  // The sender's own loopback copy is suppressed; the peer sees the frame.
  EXPECT_TRUE(a.packets.empty());
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(b.packets[0].source, 0u);
  EXPECT_EQ(b.infos[0].receiver, 1u);
  const auto& msg = static_cast<const DataMessage&>(*b.packets[0].payload);
  EXPECT_EQ(msg.name().seq, 5u);
  EXPECT_GE(transport.stats().frames_sent, 1u);
  EXPECT_GE(transport.stats().self_suppressed, 1u);
}

TEST(UdpTransport, TwoTransportsInterop) {
  REQUIRE_UDP();
  UdpTransport t1(test_options(2));
  UdpTransport t2(test_options(2));  // same port: the two sockets peer
  Capture sender_side, sink;
  t1.attach(0, &sender_side);
  t1.join(1, 0);
  t2.attach(1, &sink);
  t2.join(1, 1);

  t1.multicast(0, make_data(3));
  bool seen = false;
  for (int i = 0; i < 200 && !seen; ++i) {
    t1.poll_once(0.005);
    t2.poll_once(0.005);
    seen = !sink.packets.empty();
  }
  ASSERT_TRUE(seen);
  EXPECT_EQ(sink.infos[0].receiver, 1u);
}

TEST(UdpTransport, GroupScopingFiltersForeignGroups) {
  REQUIRE_UDP();
  UdpTransport transport(test_options(3));
  Capture a, b;
  transport.attach(0, &a);
  transport.attach(1, &b);
  transport.join(1, 0);
  transport.join(2, 1);  // b listens on a different group

  auto packet = make_data(0);
  packet.group = 1;
  transport.multicast(0, packet);
  transport.run_until_idle(0.05, 1.0);
  EXPECT_TRUE(b.packets.empty());
}

TEST(UdpTransport, ReceiveFilterAndTimerService) {
  REQUIRE_UDP();
  UdpTransport transport(test_options(4));
  Capture a, b;
  transport.attach(0, &a);
  transport.attach(1, &b);
  transport.join(1, 0);
  transport.join(1, 1);
  transport.set_receive_filter(
      [](const net::Packet& packet, const net::DeliveryInfo& info) {
        const auto& msg = static_cast<const DataMessage&>(*packet.payload);
        return info.receiver == 1 && msg.name().seq == 0;
      });

  int fired = 0;
  transport.queue().schedule_at(0.05, [&] { ++fired; });
  transport.multicast(0, make_data(0));  // filtered at member 1
  transport.multicast(0, make_data(1));  // delivered
  transport.run_for(0.2);

  EXPECT_EQ(fired, 1);  // monotonic-clock timer fired
  ASSERT_EQ(b.packets.size(), 1u);
  const auto& msg = static_cast<const DataMessage&>(*b.packets[0].payload);
  EXPECT_EQ(msg.name().seq, 1u);
  EXPECT_EQ(transport.stats().filtered_drops, 1u);
  EXPECT_GE(transport.elapsed(), 0.2);
}

TEST(UdpTransport, NoOracle) {
  REQUIRE_UDP();
  UdpTransport transport(test_options(5));
  EXPECT_TRUE(transport.try_distance(0, 1) ==
              std::numeric_limits<double>::infinity());
  EXPECT_EQ(transport.topology_version(), 0u);
  EXPECT_STREQ(transport.name(), "udp");
}

TEST(UdpTransport, RejectsBadOptions) {
  UdpOptions bad;
  bad.interface_address = "not-an-ip";
  EXPECT_THROW(UdpTransport{bad}, TransportError);
  UdpOptions zero = test_options(6);
  zero.poll_granularity = 0.0;
  EXPECT_THROW(UdpTransport{zero}, TransportError);
}

}  // namespace
}  // namespace srm::transport
