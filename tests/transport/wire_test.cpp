// Wire codec round-trip and defensive-decode tests for the UDP backend's
// frame format (src/transport/wire.h).
#include "transport/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "srm/messages.h"
#include "srm/names.h"

namespace srm::transport {
namespace {

net::Packet base_packet(net::MessagePtr payload) {
  net::Packet p;
  p.source = 7;
  p.group = 1;
  p.ttl = 63;
  p.scope = net::Scope::kGlobal;
  p.payload = std::move(payload);
  return p;
}

// Encodes, decodes, and returns the decoded packet (asserting success).
net::Packet round_trip(const net::Packet& in) {
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(encode_frame(in, frame));
  DecodePools pools;
  net::Packet out;
  EXPECT_TRUE(decode_frame(frame.data(), frame.size(), pools, out));
  EXPECT_EQ(out.source, in.source);
  EXPECT_EQ(out.group, in.group);
  EXPECT_EQ(out.ttl, in.ttl);
  EXPECT_EQ(out.scope, in.scope);
  EXPECT_NE(out.payload, nullptr);
  EXPECT_EQ(out.payload->trace_kind(), in.payload->trace_kind());
  return out;
}

TEST(WireCodec, RoundTripsData) {
  const DataName name{/*source=*/3, PageId{3, 2}, /*seq=*/41};
  auto payload = std::make_shared<const Payload>(Payload{1, 2, 3, 0xFF});
  const auto in = base_packet(std::make_shared<DataMessage>(name, payload));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const DataMessage&>(*out.payload);
  EXPECT_EQ(msg.name(), name);
  ASSERT_NE(msg.payload(), nullptr);
  EXPECT_EQ(*msg.payload(), *payload);
}

TEST(WireCodec, RoundTripsDataWithoutPayloadBytes) {
  const DataName name{3, PageId{3, 2}, 0};
  const auto in =
      base_packet(std::make_shared<DataMessage>(name, nullptr));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const DataMessage&>(*out.payload);
  EXPECT_EQ(msg.name(), name);
  ASSERT_NE(msg.payload(), nullptr);  // decoder materializes an empty payload
  EXPECT_TRUE(msg.payload()->empty());
}

TEST(WireCodec, RoundTripsRequest) {
  const DataName name{9, PageId{9, 1}, 5};
  const auto in = base_packet(
      std::make_shared<RequestMessage>(name, /*requestor=*/4, 0.125, 31));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const RequestMessage&>(*out.payload);
  EXPECT_EQ(msg.name(), name);
  EXPECT_EQ(msg.requestor(), 4u);
  EXPECT_DOUBLE_EQ(msg.requestor_dist_to_source(), 0.125);
  EXPECT_EQ(msg.initial_ttl(), 31);
}

TEST(WireCodec, RoundTripsRepair) {
  const DataName name{2, PageId{2, 7}, 12};
  auto payload = std::make_shared<const Payload>(Payload(100, 0xAB));
  const auto in = base_packet(std::make_shared<RepairMessage>(
      name, payload, /*responder=*/6, /*first_requestor=*/4, 0.5, 15,
      /*local_step_one=*/true));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const RepairMessage&>(*out.payload);
  EXPECT_EQ(msg.name(), name);
  EXPECT_EQ(msg.responder(), 6u);
  EXPECT_EQ(msg.first_requestor(), 4u);
  EXPECT_DOUBLE_EQ(msg.responder_dist_to_requestor(), 0.5);
  EXPECT_EQ(msg.initial_ttl(), 15);
  EXPECT_TRUE(msg.local_step_one());
  ASSERT_NE(msg.payload(), nullptr);
  EXPECT_EQ(*msg.payload(), *payload);
}

TEST(WireCodec, RoundTripsSession) {
  SessionMessage::StateReport state;
  state.insert_or_assign(StreamKey{1, PageId{1, 1}}, SeqNo{17});
  state.insert_or_assign(StreamKey{2, PageId{2, 1}}, SeqNo{3});
  SessionMessage::Echoes echoes;
  echoes.insert_or_assign(SourceId{2}, SessionMessage::Echo{1.5, 0.25});
  SessionMessage::AreaDigests digests{{/*area=*/1, /*live=*/4, /*max_seq=*/9}};
  const auto in = base_packet(std::make_shared<SessionMessage>(
      /*sender=*/5, /*timestamp=*/2.75, state, echoes, digests));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const SessionMessage&>(*out.payload);
  EXPECT_EQ(msg.sender(), 5u);
  EXPECT_DOUBLE_EQ(msg.sender_timestamp(), 2.75);
  ASSERT_EQ(msg.state().size(), 2u);
  EXPECT_EQ(msg.state().at(StreamKey{1, PageId{1, 1}}), 17u);
  ASSERT_EQ(msg.echoes().size(), 1u);
  EXPECT_EQ(msg.echoes().at(2), (SessionMessage::Echo{1.5, 0.25}));
  ASSERT_EQ(msg.digests().size(), 1u);
  EXPECT_EQ(msg.digests()[0], (SessionMessage::AreaDigest{1, 4, 9}));
}

TEST(WireCodec, RoundTripsPageRequestBothForms) {
  for (const auto& page :
       {std::optional<PageId>{}, std::optional<PageId>{PageId{3, 4}}}) {
    const auto in =
        base_packet(std::make_shared<PageRequestMessage>(/*requestor=*/8, page));
    const auto out = round_trip(in);
    const auto& msg = static_cast<const PageRequestMessage&>(*out.payload);
    EXPECT_EQ(msg.requestor(), 8u);
    EXPECT_EQ(msg.page(), page);
  }
}

TEST(WireCodec, RoundTripsPageReply) {
  SessionMessage::StateReport state;
  state.insert_or_assign(StreamKey{1, PageId{1, 2}}, SeqNo{30});
  std::vector<PageId> pages{{1, 1}, {1, 2}};
  const auto in = base_packet(std::make_shared<PageReplyMessage>(
      /*responder=*/2, PageId{1, 2}, state, pages));
  const auto out = round_trip(in);
  const auto& msg = static_cast<const PageReplyMessage&>(*out.payload);
  EXPECT_EQ(msg.responder(), 2u);
  ASSERT_TRUE(msg.page().has_value());
  EXPECT_EQ(*msg.page(), (PageId{1, 2}));
  EXPECT_EQ(msg.state().at(StreamKey{1, PageId{1, 2}}), 30u);
  EXPECT_EQ(msg.known_pages(), pages);
}

TEST(WireCodec, PreservesScopeAndTtl) {
  auto in = base_packet(std::make_shared<PageRequestMessage>(1, std::nullopt));
  in.scope = net::Scope::kAdmin;
  in.ttl = 2;
  round_trip(in);
}

TEST(WireCodec, RejectsNonSrmPayload) {
  struct Foreign final : net::Message {
    std::string describe() const override { return "foreign"; }
  };
  auto in = base_packet(std::make_shared<Foreign>());
  std::vector<std::uint8_t> frame;
  EXPECT_FALSE(encode_frame(in, frame));
}

TEST(WireCodec, RejectsMalformedFrames) {
  const DataName name{3, PageId{3, 2}, 41};
  auto payload = std::make_shared<const Payload>(Payload{1, 2, 3});
  const auto in = base_packet(std::make_shared<DataMessage>(name, payload));
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_frame(in, frame));

  DecodePools pools;
  net::Packet out;
  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_frame(frame.data(), len, pools, out)) << len;
  }
  // Trailing garbage is rejected (full-consumption rule).
  auto padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(decode_frame(padded.data(), padded.size(), pools, out));
  // Bad magic / version / kind.
  auto bad = frame;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_frame(bad.data(), bad.size(), pools, out));
  bad = frame;
  bad[4] = 99;  // version
  EXPECT_FALSE(decode_frame(bad.data(), bad.size(), pools, out));
  bad = frame;
  bad[5] = 77;  // kind
  EXPECT_FALSE(decode_frame(bad.data(), bad.size(), pools, out));
}

TEST(WireCodec, RejectsOversizedCounts) {
  // A SESSION frame whose state count claims more entries than the frame
  // could hold must be rejected before any allocation.
  const auto in = base_packet(std::make_shared<SessionMessage>(
      5, 0.0, SessionMessage::StateReport{}, SessionMessage::Echoes{}));
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_frame(in, frame));
  // state count is the first u32 after sender(u32) + timestamp(f64).
  const std::size_t count_off = 20 + 4 + 8;
  ASSERT_LT(count_off + 4, frame.size() + 4);
  auto bad = frame;
  bad.resize(count_off + 4);
  for (int i = 0; i < 4; ++i) bad[count_off + i] = 0xFF;
  DecodePools pools;
  net::Packet out;
  EXPECT_FALSE(decode_frame(bad.data(), bad.size(), pools, out));
}

TEST(WireCodec, ReusesPooledMessages) {
  const DataName name{9, PageId{9, 1}, 5};
  const auto in = base_packet(
      std::make_shared<RequestMessage>(name, 4, 0.125, 31));
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_frame(in, frame));
  DecodePools pools;
  const net::Message* first = nullptr;
  {
    net::Packet out;
    ASSERT_TRUE(decode_frame(frame.data(), frame.size(), pools, out));
    first = out.payload.get();
  }  // releases the message back to the pool
  net::Packet out;
  ASSERT_TRUE(decode_frame(frame.data(), frame.size(), pools, out));
  EXPECT_EQ(out.payload.get(), first);  // same object, rebound
}

}  // namespace
}  // namespace srm::transport
