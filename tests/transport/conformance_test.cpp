// Backend conformance: the scripted loss scenarios must produce the same
// per-loss recovery story on the sim and UDP backends (modulo wall-clock
// timing), and the sim-side stories must have the structure each scenario
// was built to exercise.
#include "transport/conformance.h"

#include <gtest/gtest.h>

#include "transport/udp_transport.h"

namespace srm::transport {
namespace {

const Scenario& find_scenario(const std::vector<Scenario>& all,
                              const std::string& name) {
  for (const auto& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "scenario not registered: " << name;
  static Scenario dummy;
  return dummy;
}

TEST(Conformance, RegistersAtLeastThreeScenarios) {
  EXPECT_GE(conformance_scenarios().size(), 3u);
}

TEST(Conformance, SimRunsAreDeterministic) {
  for (const auto& scenario : conformance_scenarios()) {
    const auto a = run_scenario_sim(scenario);
    const auto b = run_scenario_sim(scenario);
    EXPECT_EQ(diff_results(a, b), "") << scenario.name;
  }
}

TEST(Conformance, CleanLossStory) {
  const auto all = conformance_scenarios();
  const auto result = run_scenario_sim(find_scenario(all, "clean-loss"));
  ASSERT_EQ(result.stories.size(), 1u);
  const auto& story = result.stories[0];
  EXPECT_EQ(story.detections, 1u);
  EXPECT_EQ(story.requests_sent, 1u);
  EXPECT_EQ(story.request_backoffs, 0u);
  EXPECT_EQ(story.repairs_sent, 1u);
  EXPECT_EQ(story.recoveries, 1u);
  EXPECT_EQ(story.abandoned, 0u);
  EXPECT_EQ(story.first_detector, 1u);
  EXPECT_EQ(story.first_responder, 0u);
  EXPECT_TRUE(result.all_recovered);
  EXPECT_EQ(result.scripted_drops_fired, 1u);
}

TEST(Conformance, LostRequestForcesBackoff) {
  const auto all = conformance_scenarios();
  const auto result = run_scenario_sim(find_scenario(all, "lost-request"));
  ASSERT_EQ(result.stories.size(), 1u);
  const auto& story = result.stories[0];
  // The first request was eaten, so the requestor's own timer refired and
  // sent again (own re-sends are req_send milestones; kSrmReqBackoff is
  // reserved for suppression-heard requests).
  EXPECT_GE(story.requests_sent, 2u);
  std::size_t req_sends = 0;
  for (const auto& [name, actor] : story.milestones) {
    if (name == "req_send") ++req_sends;
  }
  EXPECT_GE(req_sends, 2u);
  EXPECT_EQ(story.recoveries, 1u);
  EXPECT_TRUE(result.all_recovered);
}

TEST(Conformance, LostRepairDrawsSecondRepair) {
  const auto all = conformance_scenarios();
  const auto result = run_scenario_sim(find_scenario(all, "lost-repair"));
  ASSERT_EQ(result.stories.size(), 1u);
  const auto& story = result.stories[0];
  EXPECT_GE(story.repairs_sent, 2u);  // first repair was eaten
  EXPECT_EQ(story.recoveries, 1u);
  EXPECT_TRUE(result.all_recovered);
}

TEST(Conformance, SuppressionScenarioRecovers) {
  const auto all = conformance_scenarios();
  const auto result =
      run_scenario_sim(find_scenario(all, "repair-suppression"));
  ASSERT_EQ(result.stories.size(), 1u);
  const auto& story = result.stories[0];
  // Two holders race; exactly one repair reaches the wire and the loser is
  // either suppressed pre-send or held down.
  EXPECT_EQ(story.detections, 1u);
  EXPECT_EQ(story.recoveries, 1u);
  EXPECT_GE(story.repairs_sent, 1u);
  EXPECT_TRUE(result.all_recovered);
}

// The acceptance bar: per-loss recovery stories match across backends on
// every registered scenario.  One scenario per TEST so a flaky environment
// pinpoints which script diverged.
class CrossBackend : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossBackend, StoriesMatch) {
  if (!UdpTransport::available()) {
    GTEST_SKIP() << "loopback multicast unavailable";
  }
  const auto all = conformance_scenarios();
  ASSERT_LT(GetParam(), all.size());
  const Scenario& scenario = all[GetParam()];
  const auto sim_result = run_scenario_sim(scenario);
  const auto udp_result = run_scenario_udp(scenario);
  EXPECT_EQ(diff_results(sim_result, udp_result), "")
      << "scenario: " << scenario.name;
  EXPECT_TRUE(sim_result.all_recovered) << scenario.name;
  EXPECT_TRUE(udp_result.all_recovered) << scenario.name;
}

std::string scenario_test_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* const kNames[] = {"clean_loss", "lost_request",
                                       "lost_repair", "repair_suppression"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, CrossBackend,
                         ::testing::Range<std::size_t>(0, 4),
                         scenario_test_name);

}  // namespace
}  // namespace srm::transport
