#include "wb/page.h"

#include <gtest/gtest.h>

namespace srm::wb {
namespace {

DataName name_of(SourceId s, SeqNo q) { return DataName{s, PageId{1, 0}, q}; }

DrawOp line_at(double t) {
  DrawOp op;
  op.type = OpType::kLine;
  op.timestamp = t;
  return op;
}

TEST(PageTest, ApplyIsIdempotent) {
  Page p(PageId{1, 0});
  EXPECT_TRUE(p.apply(name_of(1, 0), line_at(1.0)));
  EXPECT_FALSE(p.apply(name_of(1, 0), line_at(1.0)));
  EXPECT_EQ(p.op_count(), 1u);
}

TEST(PageTest, VisibleOpsSortedByTimestamp) {
  Page p(PageId{1, 0});
  p.apply(name_of(1, 0), line_at(3.0));
  p.apply(name_of(1, 1), line_at(1.0));
  p.apply(name_of(2, 0), line_at(2.0));
  const auto vis = p.visible_ops();
  ASSERT_EQ(vis.size(), 3u);
  EXPECT_DOUBLE_EQ(vis[0].second.timestamp, 1.0);
  EXPECT_DOUBLE_EQ(vis[1].second.timestamp, 2.0);
  EXPECT_DOUBLE_EQ(vis[2].second.timestamp, 3.0);
}

TEST(PageTest, TimestampTiesBrokenByName) {
  Page p(PageId{1, 0});
  p.apply(name_of(2, 0), line_at(1.0));
  p.apply(name_of(1, 0), line_at(1.0));
  const auto vis = p.visible_ops();
  ASSERT_EQ(vis.size(), 2u);
  EXPECT_LT(vis[0].first, vis[1].first);
}

TEST(PageTest, DeleteHidesTarget) {
  Page p(PageId{1, 0});
  p.apply(name_of(1, 0), line_at(1.0));
  DrawOp del;
  del.type = OpType::kDelete;
  del.target = name_of(1, 0);
  p.apply(name_of(1, 1), del);
  EXPECT_EQ(p.visible_count(), 0u);
  EXPECT_TRUE(p.is_deleted(name_of(1, 0)));
  EXPECT_EQ(p.op_count(), 2u);  // history retained for repairs
}

TEST(PageTest, DeleteBeforeTargetPatchesAfterwards) {
  // The delete arrives first; when the target finally shows up it must be
  // immediately hidden (Sec. II-C "patched after the fact").
  Page p(PageId{1, 0});
  DrawOp del;
  del.type = OpType::kDelete;
  del.target = name_of(1, 0);
  p.apply(name_of(1, 1), del);
  EXPECT_EQ(p.visible_count(), 0u);
  p.apply(name_of(1, 0), line_at(1.0));
  EXPECT_EQ(p.visible_count(), 0u);
  EXPECT_TRUE(p.contains(name_of(1, 0)));
}

TEST(PageTest, DeleteOpsAreNotVisible) {
  Page p(PageId{1, 0});
  DrawOp del;
  del.type = OpType::kDelete;
  del.target = name_of(9, 9);
  p.apply(name_of(1, 0), del);
  EXPECT_EQ(p.visible_count(), 0u);
}

TEST(PageTest, ArrivalOrderIrrelevantForFinalState) {
  // Apply the same ops in two different orders; the rendered result and
  // metadata must match exactly (the idempotence/ordering contract that
  // lets SRM deliver without ordering guarantees).
  std::vector<std::pair<DataName, DrawOp>> ops;
  for (SeqNo q = 0; q < 6; ++q) {
    ops.emplace_back(name_of(1, q), line_at(6.0 - static_cast<double>(q)));
  }
  DrawOp del;
  del.type = OpType::kDelete;
  del.target = name_of(1, 2);
  ops.emplace_back(name_of(1, 6), del);

  Page forward(PageId{1, 0});
  for (const auto& [n, o] : ops) forward.apply(n, o);
  Page backward(PageId{1, 0});
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    backward.apply(it->first, it->second);
  }
  const auto a = forward.visible_ops();
  const auto b = backward.visible_ops();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);
  }
  EXPECT_EQ(a.size(), 5u);  // 6 lines minus 1 deleted
}

TEST(PageTest, FindReturnsStoredOp) {
  Page p(PageId{1, 0});
  const DrawOp op = line_at(5.0);
  p.apply(name_of(3, 7), op);
  const auto found = p.find(name_of(3, 7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, op);
  EXPECT_FALSE(p.find(name_of(3, 8)).has_value());
}

}  // namespace
}  // namespace srm::wb
