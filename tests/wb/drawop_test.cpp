#include "wb/drawop.h"

#include <gtest/gtest.h>

namespace srm::wb {
namespace {

DrawOp sample_line() {
  DrawOp op;
  op.type = OpType::kLine;
  op.x1 = 1.5;
  op.y1 = -2.25;
  op.x2 = 100.0;
  op.y2 = 200.5;
  op.color = Color{10, 20, 30};
  op.timestamp = 42.125;
  return op;
}

TEST(DrawOpCodecTest, RoundTripLine) {
  const DrawOp op = sample_line();
  const auto decoded = decode(encode(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, op);
}

TEST(DrawOpCodecTest, RoundTripText) {
  DrawOp op = sample_line();
  op.type = OpType::kText;
  op.text = "hello whiteboard \xF0\x9F\x96\x8A";
  const auto decoded = decode(encode(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->text, op.text);
}

TEST(DrawOpCodecTest, RoundTripDeleteTarget) {
  DrawOp op;
  op.type = OpType::kDelete;
  op.target = DataName{7, PageId{7, 3}, 99};
  const auto decoded = decode(encode(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->target, op.target);
}

TEST(DrawOpCodecTest, RoundTripAllTypes) {
  for (OpType t : {OpType::kLine, OpType::kRect, OpType::kCircle,
                   OpType::kText, OpType::kDelete}) {
    DrawOp op = sample_line();
    op.type = t;
    const auto decoded = decode(encode(op));
    ASSERT_TRUE(decoded.has_value()) << to_string(t);
    EXPECT_EQ(decoded->type, t);
  }
}

TEST(DrawOpCodecTest, RejectsEmpty) {
  EXPECT_FALSE(decode(Payload{}).has_value());
}

TEST(DrawOpCodecTest, RejectsBadMagic) {
  Payload p = encode(sample_line());
  p[0] ^= 0xFF;
  EXPECT_FALSE(decode(p).has_value());
}

TEST(DrawOpCodecTest, RejectsBadVersion) {
  Payload p = encode(sample_line());
  p[1] = 99;
  EXPECT_FALSE(decode(p).has_value());
}

TEST(DrawOpCodecTest, RejectsBadType) {
  Payload p = encode(sample_line());
  p[2] = 200;
  EXPECT_FALSE(decode(p).has_value());
}

TEST(DrawOpCodecTest, RejectsTruncation) {
  const Payload full = encode(sample_line());
  for (std::size_t len = 0; len < full.size(); ++len) {
    Payload cut(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode(cut).has_value()) << "length " << len;
  }
}

TEST(DrawOpCodecTest, RejectsTrailingGarbage) {
  Payload p = encode(sample_line());
  p.push_back(0x00);
  EXPECT_FALSE(decode(p).has_value());
}

TEST(DrawOpCodecTest, RejectsOversizedTextLength) {
  DrawOp op = sample_line();
  op.type = OpType::kText;
  op.text = "abc";
  Payload p = encode(op);
  // The text length field sits after 3 + 4*8 + 3 + 8 = 46 bytes; corrupt it
  // to claim more bytes than exist.
  p[46] = 0xFF;
  p[47] = 0xFF;
  EXPECT_FALSE(decode(p).has_value());
}

TEST(DrawOpTest, TypeNames) {
  EXPECT_EQ(to_string(OpType::kLine), "line");
  EXPECT_EQ(to_string(OpType::kDelete), "delete");
}

}  // namespace
}  // namespace srm::wb
