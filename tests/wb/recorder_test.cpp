#include "wb/recorder.h"

#include <gtest/gtest.h>

#include "harness/session.h"
#include "topo/builders.h"

namespace srm::wb {
namespace {

SrmConfig cfg() {
  SrmConfig c;
  c.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  return c;
}

DrawOp line(double x1, double ts) {
  DrawOp op;
  op.type = OpType::kLine;
  op.x1 = x1;
  op.timestamp = ts;
  return op;
}

TEST(RecorderTest, CapturesLocalAndRemoteOps) {
  harness::SimSession s(topo::make_chain(2), {0, 1}, {cfg(), 1, 1});
  Whiteboard b0(s.agent_at(0)), b1(s.agent_at(1));
  Recorder rec(b1);
  const PageId page = b0.create_page();
  b1.view_page(page);
  b0.draw(page, line(1, 1.0));
  s.queue().run();
  b1.draw(page, line(2, 2.0));
  s.queue().run();
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.recording()[0].op.x1, 1.0);
  EXPECT_DOUBLE_EQ(rec.recording()[1].op.x1, 2.0);
}

TEST(RecorderTest, TimestampsAreArrivalTimes) {
  harness::SimSession s(topo::make_chain(3), {0, 2}, {cfg(), 2, 1});
  Whiteboard b0(s.agent_at(0)), b2(s.agent_at(2));
  Recorder rec(b2);
  const PageId page = b0.create_page();
  b2.view_page(page);
  b0.draw(page, line(1, 1.0));
  s.queue().run_until(10.0);
  s.queue().schedule_after(0.0, [&] { b0.draw(page, line(2, 2.0)); });
  s.queue().run();
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.recording()[0].at, 2.0);   // 2 hops from node 0
  EXPECT_DOUBLE_EQ(rec.recording()[1].at, 12.0);
  EXPECT_DOUBLE_EQ(rec.duration(), 10.0);
}

TEST(RecorderTest, StopFreezesTheLog) {
  harness::SimSession s(topo::make_chain(2), {0, 1}, {cfg(), 3, 1});
  Whiteboard b0(s.agent_at(0)), b1(s.agent_at(1));
  Recorder rec(b1);
  const PageId page = b0.create_page();
  b1.view_page(page);
  b0.draw(page, line(1, 1.0));
  s.queue().run();
  rec.stop();
  b0.draw(page, line(2, 2.0));
  s.queue().run();
  EXPECT_EQ(rec.size(), 1u);
}

TEST(RecorderTest, ReplayReproducesThePicture) {
  // Record a session on one network, replay it into a completely separate
  // session, and compare the rendered pictures.
  harness::SimSession s1(topo::make_chain(2), {0, 1}, {cfg(), 4, 1});
  Whiteboard src(s1.agent_at(0)), observer(s1.agent_at(1));
  Recorder rec(observer);
  const PageId page = src.create_page();
  observer.view_page(page);
  const DataName a = src.draw(page, line(1, 1.0));
  src.draw(page, line(2, 2.0));
  src.erase(page, a);  // deletes must survive the replay renaming
  s1.queue().run();
  rec.stop();
  ASSERT_EQ(observer.page(page).visible_count(), 1u);

  harness::SimSession s2(topo::make_chain(2), {0, 1}, {cfg(), 5, 1});
  Whiteboard replayer(s2.agent_at(0)), audience(s2.agent_at(1));
  replayer.view_page(page);
  audience.view_page(page);
  rec.replay_into(replayer, s2.queue());
  s2.queue().run();
  EXPECT_EQ(replayer.page(page).visible_count(), 1u);
  EXPECT_EQ(audience.page(page).visible_count(), 1u);
  EXPECT_DOUBLE_EQ(audience.page(page).visible_ops()[0].second.x1, 2.0);
}

TEST(RecorderTest, ReplayPreservesSpacing) {
  harness::SimSession s1(topo::make_chain(2), {0, 1}, {cfg(), 6, 1});
  Whiteboard src(s1.agent_at(0)), observer(s1.agent_at(1));
  Recorder rec(observer);
  const PageId page = src.create_page();
  observer.view_page(page);
  src.draw(page, line(1, 1.0));
  s1.queue().run_until(5.0);
  s1.queue().schedule_after(0.0, [&] { src.draw(page, line(2, 2.0)); });
  s1.queue().run();
  rec.stop();

  harness::SimSession s2(topo::make_chain(2), {0, 1}, {cfg(), 7, 1});
  Whiteboard replayer(s2.agent_at(0));
  std::vector<double> times;
  s2.network().set_send_observer([&](net::NodeId, const net::Packet&) {
    times.push_back(s2.queue().now());
  });
  rec.replay_into(replayer, s2.queue(), /*time_scale=*/2.0);
  s2.queue().run();
  ASSERT_EQ(times.size(), 2u);
  // Original spacing was 5s; at half speed the replay spaces them 10s.
  EXPECT_DOUBLE_EQ(times[1] - times[0], 10.0);
}

TEST(RecorderTest, SnapshotRebuildsOffline) {
  harness::SimSession s(topo::make_chain(2), {0, 1}, {cfg(), 8, 1});
  Whiteboard b0(s.agent_at(0)), b1(s.agent_at(1));
  Recorder rec(b1);
  const PageId page = b0.create_page();
  b1.view_page(page);
  const DataName a = b0.draw(page, line(1, 1.0));
  b0.draw(page, line(2, 2.0));
  b0.erase(page, a);
  s.queue().run();
  const Page snap = rec.snapshot(page);
  EXPECT_EQ(snap.visible_count(), 1u);
  EXPECT_DOUBLE_EQ(snap.visible_ops()[0].second.x1, 2.0);
}

}  // namespace
}  // namespace srm::wb
