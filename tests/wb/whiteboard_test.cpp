// Integration tests: whiteboards on SRM agents over the simulated network,
// converging under loss, reordering, and late joins.
#include "wb/whiteboard.h"

#include <gtest/gtest.h>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm::wb {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig wb_config() {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  return cfg;
}

DrawOp line(double x1, double y1, double x2, double y2, double ts) {
  DrawOp op;
  op.type = OpType::kLine;
  op.x1 = x1;
  op.y1 = y1;
  op.x2 = x2;
  op.y2 = y2;
  op.timestamp = ts;
  return op;
}

bool pages_equal(const Page& a, const Page& b) {
  const auto va = a.visible_ops();
  const auto vb = b.visible_ops();
  if (va.size() != vb.size()) return false;
  for (std::size_t i = 0; i < va.size(); ++i) {
    if (va[i].first != vb[i].first || !(va[i].second == vb[i].second)) {
      return false;
    }
  }
  return true;
}

TEST(WhiteboardTest, DrawPropagatesToAllMembers) {
  harness::SimSession s(topo::make_chain(4), all_nodes(4), {wb_config(), 1, 1});
  std::vector<std::unique_ptr<Whiteboard>> boards;
  for (std::size_t i = 0; i < 4; ++i) {
    boards.push_back(std::make_unique<Whiteboard>(s.agent(i)));
  }
  const PageId page = boards[0]->create_page();
  for (auto& b : boards) b->view_page(page);
  boards[0]->draw(page, line(0, 0, 1, 1, 1.0));
  boards[0]->draw(page, line(1, 1, 2, 2, 2.0));
  s.queue().run();
  for (auto& b : boards) {
    ASSERT_NE(b->find_page(page), nullptr);
    EXPECT_EQ(b->find_page(page)->visible_count(), 2u);
  }
}

TEST(WhiteboardTest, AnyMemberCanCreateAndDraw) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {wb_config(), 2, 1});
  Whiteboard b0(s.agent(0)), b1(s.agent(1)), b2(s.agent(2));
  const PageId p1 = b1.create_page();
  b0.view_page(p1);
  b2.view_page(p1);
  b1.draw(p1, line(0, 0, 1, 0, 1.0));
  b2.draw(p1, line(0, 1, 1, 1, 2.0));  // drawing on someone else's page
  s.queue().run();
  EXPECT_EQ(b0.page(p1).visible_count(), 2u);
  EXPECT_EQ(p1.creator, s.agent(1).id());
}

TEST(WhiteboardTest, EraseHidesRemotely) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {wb_config(), 3, 1});
  Whiteboard b0(s.agent(0)), b2(s.agent(2));
  const PageId page = b0.create_page();
  b2.view_page(page);
  const DataName target = b0.draw(page, line(0, 0, 1, 1, 1.0));
  s.queue().run();
  EXPECT_EQ(b2.page(page).visible_count(), 1u);
  b0.erase(page, target);
  s.queue().run();
  EXPECT_EQ(b2.page(page).visible_count(), 0u);
  EXPECT_EQ(b0.page(page).visible_count(), 0u);
}

TEST(WhiteboardTest, ConvergesDespitePacketLoss) {
  harness::SimSession s(topo::make_chain(5), all_nodes(5), {wb_config(), 4, 1});
  std::vector<std::unique_ptr<Whiteboard>> boards;
  for (std::size_t i = 0; i < 5; ++i) {
    boards.push_back(std::make_unique<Whiteboard>(s.agent(i)));
  }
  const PageId page = boards[0]->create_page();
  for (auto& b : boards) b->view_page(page);

  // 20% random loss on data packets everywhere.
  s.network().set_drop_policy(std::make_shared<net::RandomDrop>(
      0.2, 99, [](const net::Packet& p) {
        return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
      }));
  for (int i = 0; i < 20; ++i) {
    boards[0]->draw(page, line(i, 0, i + 1, 1, i));
  }
  s.queue().run();
  s.network().set_drop_policy(nullptr);
  // A post-loss session round lets members recover tail losses.
  for (auto& b : boards) {
    b->agent().send_session_message();
    s.queue().run();
  }
  for (std::size_t i = 1; i < boards.size(); ++i) {
    EXPECT_TRUE(pages_equal(boards[0]->page(page), boards[i]->page(page)))
        << "board " << i;
    EXPECT_EQ(boards[i]->page(page).visible_count(), 20u) << i;
  }
}

TEST(WhiteboardTest, LateJoinerFetchesHistoryViaRepairs) {
  harness::SimSession s(topo::make_chain(4), {0, 1, 2}, {wb_config(), 5, 1});
  Whiteboard b0(s.agent_at(0));
  const PageId page = b0.create_page();
  for (int i = 0; i < 8; ++i) b0.draw(page, line(i, i, i + 1, i + 1, i));
  s.queue().run();

  SrmAgent late(s.network(), s.directory(), 3, 3, 1, wb_config(),
                util::Rng(31));
  late.start();
  Whiteboard blate(late);
  blate.view_page(page);
  // A session message from an existing member announces the page state.
  s.agent_at(2).set_current_page(page);
  s.agent_at(2).send_session_message();
  s.queue().run();
  EXPECT_TRUE(pages_equal(b0.page(page), blate.page(page)));
  EXPECT_EQ(blate.page(page).visible_count(), 8u);
  late.stop();
}

TEST(WhiteboardTest, CorruptPayloadRefused) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {wb_config(), 6, 1});
  Whiteboard b1(s.agent(1));
  const PageId page{0, 0};
  b1.view_page(page);
  // Member 0 sends garbage bytes directly through its agent.
  s.agent(0).send_data(page, Payload{0xDE, 0xAD, 0xBE, 0xEF});
  s.queue().run();
  EXPECT_EQ(b1.corrupt_payloads(), 1u);
  EXPECT_EQ(b1.page(page).op_count(), 0u);
}

TEST(WhiteboardTest, ListenerNotifiedOncePerOp) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {wb_config(), 7, 1});
  Whiteboard b0(s.agent(0)), b1(s.agent(1));
  const PageId page = b0.create_page();
  b1.view_page(page);
  int notified = 0;
  b1.set_listener([&](const PageId&, const DataName&, const DrawOp&) {
    ++notified;
  });
  b0.draw(page, line(0, 0, 1, 1, 1.0));
  b0.draw(page, line(0, 0, 2, 2, 2.0));
  s.queue().run();
  EXPECT_EQ(notified, 2);
}

TEST(WhiteboardTest, MultiplePagesIndependent) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {wb_config(), 8, 1});
  Whiteboard b0(s.agent(0)), b1(s.agent(1));
  const PageId pa = b0.create_page();
  const PageId pb = b0.create_page();
  EXPECT_NE(pa, pb);
  b0.draw(pa, line(0, 0, 1, 1, 1.0));
  b0.draw(pb, line(0, 0, 2, 2, 1.0));
  b0.draw(pb, line(0, 0, 3, 3, 2.0));
  s.queue().run();
  EXPECT_EQ(b1.page(pa).visible_count(), 1u);
  EXPECT_EQ(b1.page(pb).visible_count(), 2u);
  ASSERT_EQ(b1.pages().size(), 2u);
}


TEST(WhiteboardTest, BrowseDiscoversAndFetchesOldPages) {
  // The full browsing flow of Sec. III-A: a late joiner lists the session's
  // pages, then views one; the page request pulls all of its drawops.
  harness::SimSession s(topo::make_chain(4), {0, 1, 2}, {wb_config(), 9, 1});
  Whiteboard b0(s.agent_at(0));
  const PageId old_page = b0.create_page();
  for (int i = 0; i < 4; ++i) b0.draw(old_page, line(i, 0, i, 1, i));
  const PageId new_page = b0.create_page();
  b0.draw(new_page, line(9, 9, 10, 10, 1.0));
  s.queue().run();

  SrmAgent late(s.network(), s.directory(), 3, 3, 1, wb_config(),
                util::Rng(71));
  late.start();
  Whiteboard blate(late);
  blate.browse();
  s.queue().run();
  ASSERT_EQ(blate.pages().size(), 2u);  // both pages discovered

  blate.view_page(old_page);  // triggers the page-state fetch
  s.queue().run();
  EXPECT_TRUE(pages_equal(b0.page(old_page), blate.page(old_page)));
  EXPECT_EQ(blate.page(old_page).visible_count(), 4u);
  late.stop();
}

}  // namespace
}  // namespace srm::wb
