#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace srm::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, EqualTimesFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(2.0, [&] {
    q.schedule_after(3.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, RejectsPastAndNegative) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_after(-0.1, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, RejectsEmptyFunction) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, std::function<void()>{}),
               std::invalid_argument);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(3.0, [&] { fired.push_back(3.0); });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending_events(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, StopHaltsRun) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    q.schedule_at(i, [&] {
      ++count;
      if (count == 2) q.stop();
    });
  }
  q.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending_events(), 3u);
}

TEST(EventQueueTest, RunStepsLimitsExecution) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    q.schedule_at(i, [&] { ++count; });
  }
  EXPECT_EQ(q.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.schedule_after(1.0, recurse);
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(q.now(), 49.0);
}

TEST(EventQueueTest, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.schedule_at(6.0, [] {});
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, CancelledEventsNotCounted) {
  EventQueue q;
  EventHandle h = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  h.cancel();
  EXPECT_EQ(q.run(), 1u);
}

}  // namespace
}  // namespace srm::sim
