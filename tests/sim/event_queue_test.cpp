#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace srm::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, EqualTimesFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(2.0, [&] {
    q.schedule_after(3.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, RejectsPastAndNegative) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_after(-0.1, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, RejectsEmptyFunction) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, std::function<void()>{}),
               std::invalid_argument);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule_at(1.0, [] {});
  q.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(3.0, [&] { fired.push_back(3.0); });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending_events(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, StopHaltsRun) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    q.schedule_at(i, [&] {
      ++count;
      if (count == 2) q.stop();
    });
  }
  q.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending_events(), 3u);
}

TEST(EventQueueTest, RunStepsLimitsExecution) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    q.schedule_at(i, [&] { ++count; });
  }
  EXPECT_EQ(q.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.schedule_after(1.0, recurse);
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_DOUBLE_EQ(q.now(), 49.0);
}

TEST(EventQueueTest, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.schedule_at(6.0, [] {});
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, ResetCancelsOutstandingHandles) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule_at(5.0, [&] { ran = true; });
  ASSERT_TRUE(h.pending());
  q.reset();
  // A handle that survived reset must read as cancelled, not pending forever.
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(q.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, ResetThenReuseIsClean) {
  EventQueue q;
  std::vector<EventHandle> stale;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      stale.push_back(q.schedule_at(static_cast<double>(i), [] {}));
    }
    q.reset();
  }
  for (const EventHandle& h : stale) EXPECT_FALSE(h.pending());
  // The queue is fully usable after repeated resets: FIFO order intact.
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.run(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, StaleHandleCannotTouchRecycledSlot) {
  EventQueue q;
  EventHandle first = q.schedule_at(1.0, [] {});
  ASSERT_TRUE(first.cancel());
  // The next schedule recycles the same storage; the stale handle must not
  // see — let alone cancel — the new event.
  bool ran = false;
  EventHandle second = q.schedule_at(2.0, [&] { ran = true; });
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(first.cancel());
  EXPECT_TRUE(second.pending());
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelHeavyInterleavings) {
  // SRM-style timer churn: schedule, suppress, back off (reschedule), fire.
  EventQueue q;
  constexpr int kTimers = 500;
  std::vector<EventHandle> handles(kTimers);
  std::vector<int> fired;
  for (int i = 0; i < kTimers; ++i) {
    handles[i] = q.schedule_at(static_cast<double>(i % 7) + 1.0,
                               [&fired, i] { fired.push_back(i); });
  }
  int expected = 0;
  for (int i = 0; i < kTimers; ++i) {
    if (i % 3 == 0) {
      ++expected;  // left alone: fires at original time
    } else if (i % 3 == 1) {
      // Suppressed, then re-armed later (back-off): fires exactly once.
      EXPECT_TRUE(handles[i].cancel());
      handles[i] = q.schedule_at(50.0 + static_cast<double>(i % 5),
                                 [&fired, i] { fired.push_back(i); });
      ++expected;
    } else {
      EXPECT_TRUE(handles[i].cancel());  // suppressed for good
      EXPECT_FALSE(handles[i].cancel());
    }
  }
  EXPECT_EQ(q.run(), static_cast<std::size_t>(expected));
  EXPECT_EQ(fired.size(), static_cast<std::size_t>(expected));
  for (const EventHandle& h : handles) EXPECT_FALSE(h.pending());
}

TEST(EventQueueTest, PendingEventsExcludesCancelled) {
  EventQueue q;
  EventHandle a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending_events(), 2u);
  a.cancel();
  EXPECT_EQ(q.pending_events(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.run(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool ran = false;
  EventHandle head = q.schedule_at(1.0, [] { FAIL() << "cancelled event ran"; });
  q.schedule_at(2.0, [&] { ran = true; });
  head.cancel();
  EXPECT_EQ(q.run_until(5.0), 1u);
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueTest, CancelFromInsideEvent) {
  EventQueue q;
  EventHandle victim;
  q.schedule_at(1.0, [&] { EXPECT_TRUE(victim.cancel()); });
  victim = q.schedule_at(2.0, [] { FAIL() << "suppressed event ran"; });
  EXPECT_EQ(q.run(), 1u);
}

TEST(EventQueueTest, CancelledEventsNotCounted) {
  EventQueue q;
  EventHandle h = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  h.cancel();
  EXPECT_EQ(q.run(), 1u);
}

}  // namespace
}  // namespace srm::sim
