#include "sim/timer.h"

#include <gtest/gtest.h>

#include <memory>

namespace srm::sim {
namespace {

TEST(TimerTest, FiresOnce) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  t.schedule_in(2.0);
  EXPECT_TRUE(t.pending());
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(TimerTest, RescheduleReplacesPending) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  t.schedule_in(2.0);
  t.schedule_in(5.0);  // supersedes the first
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(TimerTest, CancelStopsExpiry) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] { ++fired; });
  t.schedule_in(1.0);
  t.cancel();
  q.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, ExpiryTimeAndRemaining) {
  EventQueue q;
  Timer t(q, [] {});
  t.schedule_in(4.0);
  EXPECT_DOUBLE_EQ(t.expiry_time(), 4.0);
  EXPECT_DOUBLE_EQ(t.remaining(), 4.0);
  q.run_until(1.0);
  EXPECT_DOUBLE_EQ(t.remaining(), 3.0);
}

TEST(TimerTest, RemainingZeroWhenIdle) {
  EventQueue q;
  Timer t(q, [] {});
  EXPECT_DOUBLE_EQ(t.remaining(), 0.0);
}

TEST(TimerTest, DestructorCancels) {
  EventQueue q;
  int fired = 0;
  {
    Timer t(q, [&] { ++fired; });
    t.schedule_in(1.0);
  }
  q.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, SafeToDestroyFromOwnCallback) {
  // Protocol state machines erase their own state (and its timer) on final
  // expiry; the Timer contract allows destruction from inside the callback.
  EventQueue q;
  auto holder = std::make_shared<std::unique_ptr<Timer>>();
  int fired = 0;
  *holder = std::make_unique<Timer>(q, [&fired, holder] {
    ++fired;
    holder->reset();  // destroys the Timer that is currently firing
  });
  (*holder)->schedule_in(1.0);
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(holder->get(), nullptr);
}

TEST(TimerTest, RestartFromCallback) {
  EventQueue q;
  int fired = 0;
  Timer t(q, [&] {
    if (++fired < 3) t.schedule_in(1.0);
  });
  t.schedule_in(1.0);
  q.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(LocalClockTest, AppliesOffset) {
  EventQueue q;
  LocalClock c(q, 100.0);
  EXPECT_DOUBLE_EQ(c.now(), 100.0);
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_DOUBLE_EQ(c.now(), 105.0);
  EXPECT_DOUBLE_EQ(c.offset(), 100.0);
}

}  // namespace
}  // namespace srm::sim
