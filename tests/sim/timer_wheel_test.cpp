// Tests for the batched timer wheel (ARCHITECTURE.md §12): bucket
// quantization, heap-occupancy batching, deterministic service order, and
// lazy cancellation via cancel_all.
#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace srm::sim {
namespace {

struct Serviced {
  Time t;
  std::uint64_t item;
  friend bool operator==(const Serviced&, const Serviced&) = default;
};

TEST(BatchTimerWheelTest, RoundsUpToBucketBoundaryAndBatches) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel wheel(q, /*bucket_width=*/1.0,
                        [&](std::uint64_t item) { log.push_back({q.now(), item}); });

  // Three items landing inside (1, 2] share one bucket — and one heap entry.
  wheel.schedule(0, 7, 1.2);
  wheel.schedule(0, 3, 1.9);
  wheel.schedule(0, 5, 2.0);
  EXPECT_EQ(wheel.pending_buckets(), 1u);
  EXPECT_EQ(wheel.pending_items(), 3u);
  EXPECT_EQ(q.pending_events(), 1u);

  q.run();
  // One firing at the boundary, items in ascending order.
  const std::vector<Serviced> want{{2.0, 3}, {2.0, 5}, {2.0, 7}};
  EXPECT_EQ(log, want);
  EXPECT_EQ(wheel.pending_buckets(), 0u);
  EXPECT_EQ(wheel.pending_items(), 0u);
}

TEST(BatchTimerWheelTest, LanesGetSeparateBuckets) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  BatchTimerWheel wheel(q, 1.0,
                        [&](std::uint64_t item) { order.push_back(item); });
  wheel.schedule(/*lane=*/1, 10, 0.5);
  wheel.schedule(/*lane=*/0, 20, 0.5);
  EXPECT_EQ(wheel.pending_buckets(), 2u);
  q.run();
  // Same boundary, FIFO by heap insertion: lane 1 was scheduled first.
  const std::vector<std::uint64_t> want{10, 20};
  EXPECT_EQ(order, want);
}

TEST(BatchTimerWheelTest, ServiceMayRescheduleIntoNextBucket) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel* wp = nullptr;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t item) {
    log.push_back({q.now(), item});
    if (q.now() < 3.5) wp->schedule(0, item, q.now() + 1.0);
  });
  wp = &wheel;
  wheel.schedule(0, 42, 0.5);
  q.run();
  const std::vector<Serviced> want{{1.0, 42}, {2.0, 42}, {3.0, 42}, {4.0, 42}};
  EXPECT_EQ(log, want);
}

TEST(BatchTimerWheelTest, NeverFiresEarlyAndClampsToNow) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel wheel(q, 2.0,
                        [&](std::uint64_t item) { log.push_back({q.now(), item}); });
  q.schedule_at(3.0, [&] {
    wheel.schedule(0, 1, 0.5);  // in the past: clamped to now, next boundary
  });
  q.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].item, 1u);
  EXPECT_GE(log[0].t, 3.0);
  EXPECT_EQ(log[0].t, 4.0);  // next multiple of 2.0 at/after 3.0
}

TEST(BatchTimerWheelTest, CancelAllDropsEverything) {
  EventQueue q;
  std::size_t fired = 0;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t) { ++fired; });
  for (std::uint64_t i = 0; i < 10; ++i) wheel.schedule(0, i, 1.0 + 0.1 * i);
  EXPECT_GT(wheel.pending_items(), 0u);
  wheel.cancel_all();
  EXPECT_EQ(wheel.pending_buckets(), 0u);
  EXPECT_EQ(wheel.pending_items(), 0u);
  q.run();
  EXPECT_EQ(fired, 0u);
}

TEST(BatchTimerWheelTest, OccupancyBoundedByBucketsNotItems) {
  EventQueue q;
  std::size_t fired = 0;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t) { ++fired; });
  // 1000 items spread over 4 bucket widths on one lane: at most 5 heap
  // entries, never 1000.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    wheel.schedule(0, i, 0.004 * static_cast<double>(i));
  }
  EXPECT_EQ(wheel.pending_items(), 1000u);
  EXPECT_LE(wheel.pending_buckets(), 5u);
  EXPECT_LE(q.pending_events(), 5u);
  q.run();
  EXPECT_EQ(fired, 1000u);
}

// The lazy-cancellation contract the hierarchy layer depends on: the wheel
// never removes an item, so a caller that reschedules encodes an epoch in
// the item and ignores stale firings in its service callback.  Both the
// stale and the fresh item must be serviced (the wheel's view), and epoch
// filtering alone must yield exactly one effective firing (the caller's
// view) — including when the reschedule lands in the *same* bucket as the
// stale entry.
TEST(BatchTimerWheelTest, EpochStampLazyCancelAfterReschedule) {
  EventQueue q;
  // item = (id << 32) | epoch, mirroring the session layer's encoding.
  constexpr std::uint64_t kId = 9;
  std::uint32_t current_epoch = 0;
  std::vector<Serviced> serviced;
  std::vector<Serviced> effective;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t item) {
    serviced.push_back({q.now(), item});
    if (static_cast<std::uint32_t>(item) == current_epoch) {
      effective.push_back({q.now(), item});
    }
  });

  // Epoch 0 scheduled for the t=1 bucket, then "cancelled" by bumping the
  // epoch and rescheduling into the t=3 bucket.
  wheel.schedule(0, (kId << 32) | 0, 0.5);
  current_epoch = 1;
  wheel.schedule(0, (kId << 32) | 1, 2.5);
  EXPECT_EQ(wheel.pending_items(), 2u);  // the stale item is still queued

  q.run();
  ASSERT_EQ(serviced.size(), 2u);  // wheel fires both, caller filters
  EXPECT_EQ(serviced[0].t, 1.0);
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective[0].t, 3.0);
  EXPECT_EQ(static_cast<std::uint32_t>(effective[0].item), 1u);

  // Same dance with both epochs landing in one bucket: service order is
  // ascending item order, and only the fresh epoch survives the filter.
  serviced.clear();
  effective.clear();
  current_epoch = 2;
  wheel.schedule(0, (kId << 32) | 2, 4.2);
  current_epoch = 3;
  wheel.schedule(0, (kId << 32) | 3, 4.8);  // same (lane, bucket) as epoch 2
  EXPECT_EQ(wheel.pending_buckets(), 1u);
  q.run();
  ASSERT_EQ(serviced.size(), 2u);
  EXPECT_EQ(serviced[0].t, 5.0);
  EXPECT_EQ(serviced[1].t, 5.0);
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(static_cast<std::uint32_t>(effective[0].item), 3u);
}

// Bucket reuse across reporting rounds at different area counts: the
// hierarchy layer re-partitions and comes back with more (or fewer) lanes,
// and a (lane, bucket) key that already fired must be freshly insertable.
// Heap occupancy tracks the lane count of the current round, not the member
// count and not the history of past rounds.
TEST(BatchTimerWheelTest, BucketReuseAcrossAreaCounts) {
  EventQueue q;
  std::size_t fired = 0;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t) { ++fired; });

  const std::size_t kMembers = 300;
  // Round 1: 4 areas, members round-robined onto area lanes, one common
  // reporting boundary.
  for (std::uint64_t m = 0; m < kMembers; ++m) {
    wheel.schedule(static_cast<std::uint32_t>(m % 4), m, 0.7);
  }
  EXPECT_EQ(wheel.pending_items(), kMembers);
  EXPECT_EQ(wheel.pending_buckets(), 4u);
  EXPECT_EQ(q.pending_events(), 4u);
  q.run();
  EXPECT_EQ(fired, kMembers);
  EXPECT_EQ(wheel.pending_buckets(), 0u);

  // Round 2: the partition grew to 10 areas; lane 0..3 keys (same bucket
  // arithmetic as round 1 modulo width) are reused after having fired.
  fired = 0;
  for (std::uint64_t m = 0; m < kMembers; ++m) {
    wheel.schedule(static_cast<std::uint32_t>(m % 10), m, q.now() + 0.7);
  }
  EXPECT_EQ(wheel.pending_buckets(), 10u);
  EXPECT_EQ(q.pending_events(), 10u);
  q.run();
  EXPECT_EQ(fired, kMembers);

  // Round 3: shrink to one area; occupancy follows the live lane count.
  fired = 0;
  for (std::uint64_t m = 0; m < kMembers; ++m) {
    wheel.schedule(0, m, q.now() + 0.7);
  }
  EXPECT_EQ(wheel.pending_buckets(), 1u);
  EXPECT_EQ(q.pending_events(), 1u);
  q.run();
  EXPECT_EQ(fired, kMembers);
  EXPECT_EQ(wheel.pending_items(), 0u);
}

}  // namespace
}  // namespace srm::sim
