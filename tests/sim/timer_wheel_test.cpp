// Tests for the batched timer wheel (ARCHITECTURE.md §12): bucket
// quantization, heap-occupancy batching, deterministic service order, and
// lazy cancellation via cancel_all.
#include "sim/timer_wheel.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace srm::sim {
namespace {

struct Serviced {
  Time t;
  std::uint64_t item;
  friend bool operator==(const Serviced&, const Serviced&) = default;
};

TEST(BatchTimerWheelTest, RoundsUpToBucketBoundaryAndBatches) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel wheel(q, /*bucket_width=*/1.0,
                        [&](std::uint64_t item) { log.push_back({q.now(), item}); });

  // Three items landing inside (1, 2] share one bucket — and one heap entry.
  wheel.schedule(0, 7, 1.2);
  wheel.schedule(0, 3, 1.9);
  wheel.schedule(0, 5, 2.0);
  EXPECT_EQ(wheel.pending_buckets(), 1u);
  EXPECT_EQ(wheel.pending_items(), 3u);
  EXPECT_EQ(q.pending_events(), 1u);

  q.run();
  // One firing at the boundary, items in ascending order.
  const std::vector<Serviced> want{{2.0, 3}, {2.0, 5}, {2.0, 7}};
  EXPECT_EQ(log, want);
  EXPECT_EQ(wheel.pending_buckets(), 0u);
  EXPECT_EQ(wheel.pending_items(), 0u);
}

TEST(BatchTimerWheelTest, LanesGetSeparateBuckets) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  BatchTimerWheel wheel(q, 1.0,
                        [&](std::uint64_t item) { order.push_back(item); });
  wheel.schedule(/*lane=*/1, 10, 0.5);
  wheel.schedule(/*lane=*/0, 20, 0.5);
  EXPECT_EQ(wheel.pending_buckets(), 2u);
  q.run();
  // Same boundary, FIFO by heap insertion: lane 1 was scheduled first.
  const std::vector<std::uint64_t> want{10, 20};
  EXPECT_EQ(order, want);
}

TEST(BatchTimerWheelTest, ServiceMayRescheduleIntoNextBucket) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel* wp = nullptr;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t item) {
    log.push_back({q.now(), item});
    if (q.now() < 3.5) wp->schedule(0, item, q.now() + 1.0);
  });
  wp = &wheel;
  wheel.schedule(0, 42, 0.5);
  q.run();
  const std::vector<Serviced> want{{1.0, 42}, {2.0, 42}, {3.0, 42}, {4.0, 42}};
  EXPECT_EQ(log, want);
}

TEST(BatchTimerWheelTest, NeverFiresEarlyAndClampsToNow) {
  EventQueue q;
  std::vector<Serviced> log;
  BatchTimerWheel wheel(q, 2.0,
                        [&](std::uint64_t item) { log.push_back({q.now(), item}); });
  q.schedule_at(3.0, [&] {
    wheel.schedule(0, 1, 0.5);  // in the past: clamped to now, next boundary
  });
  q.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].item, 1u);
  EXPECT_GE(log[0].t, 3.0);
  EXPECT_EQ(log[0].t, 4.0);  // next multiple of 2.0 at/after 3.0
}

TEST(BatchTimerWheelTest, CancelAllDropsEverything) {
  EventQueue q;
  std::size_t fired = 0;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t) { ++fired; });
  for (std::uint64_t i = 0; i < 10; ++i) wheel.schedule(0, i, 1.0 + 0.1 * i);
  EXPECT_GT(wheel.pending_items(), 0u);
  wheel.cancel_all();
  EXPECT_EQ(wheel.pending_buckets(), 0u);
  EXPECT_EQ(wheel.pending_items(), 0u);
  q.run();
  EXPECT_EQ(fired, 0u);
}

TEST(BatchTimerWheelTest, OccupancyBoundedByBucketsNotItems) {
  EventQueue q;
  std::size_t fired = 0;
  BatchTimerWheel wheel(q, 1.0, [&](std::uint64_t) { ++fired; });
  // 1000 items spread over 4 bucket widths on one lane: at most 5 heap
  // entries, never 1000.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    wheel.schedule(0, i, 0.004 * static_cast<double>(i));
  }
  EXPECT_EQ(wheel.pending_items(), 1000u);
  EXPECT_LE(wheel.pending_buckets(), 5u);
  EXPECT_LE(q.pending_events(), 5u);
  q.run();
  EXPECT_EQ(fired, 1000u);
}

}  // namespace
}  // namespace srm::sim
