#include "sim/pdes.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

namespace srm::sim {
namespace {

// A deterministic log shared by all regions: every entry is tagged with the
// (virtual time, region) that produced it and the log is sorted afterwards,
// so assertions never depend on worker interleaving.
struct Log {
  std::mutex mu;
  std::vector<std::pair<double, int>> entries;
  void add(double t, int tag) {
    const std::lock_guard<std::mutex> lock(mu);
    entries.emplace_back(t, tag);
  }
  std::vector<std::pair<double, int>> sorted() {
    const std::lock_guard<std::mutex> lock(mu);
    auto copy = entries;
    std::sort(copy.begin(), copy.end());
    return copy;
  }
};

TEST(PdesKernelTest, RejectsBadConstruction) {
  EXPECT_THROW(ParallelKernel(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParallelKernel(2, 0.0), std::invalid_argument);
  EXPECT_THROW(ParallelKernel(2, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(ParallelKernel(1, 0.0));  // single region: no lookahead need
  EXPECT_NO_THROW(ParallelKernel(4, 0.5));
}

TEST(PdesKernelTest, RunsRegionEventsToCompletion) {
  ParallelKernel k(3, 1.0);
  std::atomic<int> fired{0};
  for (std::size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < 5; ++i) {
      k.region_queue(r).schedule_at(static_cast<double>(i), [&] { ++fired; });
    }
  }
  const auto stats = k.run(2);
  EXPECT_EQ(fired.load(), 15);
  EXPECT_EQ(stats.region_events, 15u);
  EXPECT_EQ(stats.global_events, 0u);
  EXPECT_DOUBLE_EQ(k.now(), 4.0);
}

TEST(PdesKernelTest, GlobalEventsSerializeAgainstRegions) {
  // A global event at t must observe every region advanced exactly to t and
  // run before any region event at the same t.
  ParallelKernel k(2, 0.5);
  Log log;
  k.region_queue(0).schedule_at(1.0, [&] { log.add(1.0, 10); });
  k.region_queue(1).schedule_at(3.0, [&] { log.add(3.0, 11); });
  k.global_queue().schedule_at(2.0, [&] {
    EXPECT_DOUBLE_EQ(k.region_queue(0).now(), 2.0);
    EXPECT_DOUBLE_EQ(k.region_queue(1).now(), 2.0);
    log.add(2.0, 100);
  });
  // Global and region event at the same time: global first.
  k.region_queue(0).schedule_at(4.0, [&] { log.add(4.0, 12); });
  k.global_queue().schedule_at(4.0, [&] { log.add(4.0, 99); });
  k.run(2);
  const auto got = log.sorted();
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], (std::pair<double, int>{1.0, 10}));
  EXPECT_EQ(got[1], (std::pair<double, int>{2.0, 100}));
  EXPECT_EQ(got[2], (std::pair<double, int>{3.0, 11}));
  // The tag sort at t=4 puts 12 before 99, but the *execution* order is
  // global-first; assert it via a flag instead.
  EXPECT_EQ(got[3].first, 4.0);
  EXPECT_EQ(got[4].first, 4.0);
}

TEST(PdesKernelTest, GlobalRunsBeforeRegionAtSameTime) {
  ParallelKernel k(2, 1.0);
  bool global_ran = false;
  bool region_saw_global = false;
  k.global_queue().schedule_at(1.0, [&] { global_ran = true; });
  k.region_queue(0).schedule_at(1.0, [&] { region_saw_global = global_ran; });
  k.run(2);
  EXPECT_TRUE(region_saw_global);
}

TEST(PdesKernelTest, PostRespectsLookaheadAndDeliversInOrder) {
  // Messages from two source regions into one destination must drain in
  // (time, source lane, seq) order regardless of posting interleaving.
  ParallelKernel k(3, 1.0);
  std::vector<int> order;  // only region 2 writes: single-writer, no lock
  k.region_queue(0).schedule_at(0.5, [&] {
    k.post(0, 2, k.region_queue(0).now() + 1.0, [&] { order.push_back(1); });
    k.post(0, 2, k.region_queue(0).now() + 1.0, [&] { order.push_back(2); });
  });
  k.region_queue(1).schedule_at(0.25, [&] {
    k.post(1, 2, 1.5, [&] { order.push_back(3); });
  });
  k.run(3);
  // All three arrive at t=1.5: region 0's two (in posting order) then
  // region 1's — lane order breaks the time tie.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(PdesKernelTest, DrainHookRunsAfterMailboxDelivery) {
  ParallelKernel k(2, 1.0);
  int scheduled_before_hook = 0;
  int hook_calls = 0;
  k.set_drain_hook(1, [&] {
    ++hook_calls;
    scheduled_before_hook = static_cast<int>(k.region_queue(1).pending_events());
  });
  k.region_queue(0).schedule_at(0.0, [&] {
    k.post(0, 1, 2.0, [] {});
  });
  k.run(1);
  EXPECT_GE(hook_calls, 1);
  EXPECT_GE(scheduled_before_hook, 0);
  EXPECT_EQ(k.total_stats().messages, 1u);
}

TEST(PdesKernelTest, DeterministicAcrossThreadCounts) {
  // A fixed event graph with cross-region chatter produces the same
  // execution log for 1, 2, 4 and 8 workers.
  const auto run_with = [](unsigned threads) {
    ParallelKernel k(4, 0.5);
    Log log;
    for (std::size_t r = 0; r < 4; ++r) {
      const int base = static_cast<int>(r) * 1000;
      k.region_queue(r).schedule_at(0.1 * (1.0 + static_cast<double>(r)),
                                    [&k, &log, r, base] {
        log.add(k.region_queue(r).now(), base);
        const std::size_t to = (r + 1) % 4;
        k.post(r, to, k.region_queue(r).now() + 0.5,
               [&k, &log, to, base] {
                 log.add(k.region_queue(to).now(), base + 1);
               });
      });
    }
    k.global_queue().schedule_at(0.35, [&log] { log.add(0.35, -1); });
    k.run(threads);
    return log.sorted();
  };
  const auto one = run_with(1);
  const auto two = run_with(2);
  const auto four = run_with(4);
  const auto eight = run_with(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  ASSERT_EQ(one.size(), 9u);
}

TEST(PdesKernelTest, BoundedRunStopsAtTimeLimit) {
  ParallelKernel k(2, 1.0);
  std::atomic<int> fired{0};
  k.region_queue(0).schedule_at(1.0, [&] { ++fired; });
  k.region_queue(0).schedule_at(5.0, [&] { ++fired; });
  k.region_queue(1).schedule_at(2.0, [&] { ++fired; });
  k.run(2, /*t_end=*/2.0);
  // Events at exactly t_end run (run_until parity); later ones stay queued.
  EXPECT_EQ(fired.load(), 2);
  EXPECT_DOUBLE_EQ(k.now(), 2.0);
  k.run(2);
  EXPECT_EQ(fired.load(), 3);
}

TEST(PdesKernelTest, NowIsMaxOverClocksAndIdleRunIsSafe) {
  ParallelKernel k(2, 1.0);
  EXPECT_DOUBLE_EQ(k.now(), 0.0);
  const auto stats = k.run(2);  // nothing scheduled
  EXPECT_EQ(stats.region_events + stats.global_events, 0u);
  k.region_queue(1).schedule_at(3.0, [] {});
  k.run(2);
  EXPECT_DOUBLE_EQ(k.now(), 3.0);
  EXPECT_DOUBLE_EQ(k.region_queue(0).now(), 3.0);  // advanced at run end
}

TEST(PdesKernelTest, SingleRegionNeedsNoLookahead) {
  // regions == 1 with lookahead 0 degenerates to a sequential run plus the
  // global queue.
  ParallelKernel k(1, 0.0);
  std::vector<int> order;
  k.region_queue(0).schedule_at(1.0, [&] { order.push_back(1); });
  k.global_queue().schedule_at(2.0, [&] { order.push_back(2); });
  k.region_queue(0).schedule_at(3.0, [&] { order.push_back(3); });
  k.run(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(PdesKernelTest, SetRegionDistancesValidatesShapeAndBound) {
  ParallelKernel k(2, 1.0);
  // Not 2x2.
  EXPECT_THROW(k.set_region_distances({{0.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(k.set_region_distances({{0.0}, {2.0}}), std::invalid_argument);
  // Off-diagonal below the uniform lookahead: the matrix claims mail can
  // outrun the partition's own cut bound.
  EXPECT_THROW(k.set_region_distances({{0.0, 0.5}, {2.0, 0.0}}),
               std::invalid_argument);
  EXPECT_NO_THROW(k.set_region_distances({{0.0, 2.0}, {3.0, 0.0}}));
}

TEST(PdesKernelTest, DistanceMatrixWidensWindows) {
  // Two regions whose true separation (5) is far above the uniform
  // lookahead (1): with the matrix installed the same event ladder
  // completes in far fewer barrier rounds, with identical results.
  const auto run_with = [](bool matrix, unsigned threads) {
    ParallelKernel k(2, 1.0);
    if (matrix) k.set_region_distances({{0.0, 5.0}, {5.0, 0.0}});
    std::atomic<int> fired{0};
    for (std::size_t r = 0; r < 2; ++r) {
      for (int i = 0; i < 10; ++i) {
        k.region_queue(r).schedule_at(static_cast<double>(i), [&] { ++fired; });
      }
    }
    const auto stats = k.run(threads);
    EXPECT_EQ(fired.load(), 20);
    return stats;
  };
  const auto uniform = run_with(false, 2);
  const auto paired = run_with(true, 2);
  EXPECT_EQ(uniform.region_events, paired.region_events);
  EXPECT_LT(paired.windows, uniform.windows);
  // floors (0,0) -> window 5 runs t in [0,5), floors (5,5) -> window 10.
  EXPECT_EQ(paired.windows, 2u);
  // Window shapes are a pure function of the floors: thread count changes
  // neither the round count nor the events-per-round split.
  const auto paired1 = run_with(true, 1);
  EXPECT_EQ(paired1.windows, paired.windows);
  EXPECT_EQ(paired1.messages, paired.messages);
}

TEST(PdesKernelTest, SelfEchoDoesNotOutrunLoneActiveRegion) {
  // Regression: only region 0 has queued events, so no peer floor bounds
  // its window — but its own mail wakes region 1, whose reply must not
  // land in region 0's past.  The self-echo term (floor + min round trip)
  // caps the window; without it this run throws "time in the past".
  const auto run_with = [](unsigned threads) {
    ParallelKernel k(2, 1.0);
    Log log;
    for (int i = 0; i <= 10; ++i) {
      const double t = static_cast<double>(i);
      k.region_queue(0).schedule_at(t, [&log, &k, t] {
        log.add(t, 0);
        if (t == 0.0) {
          k.post(0, 1, 1.0, [&log, &k] {
            log.add(k.region_queue(1).now(), 1);
            k.post(1, 0, k.region_queue(1).now() + 1.0, [&log, &k] {
              log.add(k.region_queue(0).now(), 2);
            });
          });
        }
      });
    }
    k.run(threads);
    return log.sorted();
  };
  const auto one = run_with(1);
  ASSERT_EQ(one.size(), 13u);
  EXPECT_EQ(one[1], (std::pair<double, int>{1.0, 0}));
  EXPECT_EQ(one[2], (std::pair<double, int>{1.0, 1}));  // echo out at t=1
  EXPECT_EQ(one[3], (std::pair<double, int>{2.0, 0}));
  EXPECT_EQ(one[4], (std::pair<double, int>{2.0, 2}));  // echo back at t=2
  EXPECT_EQ(run_with(2), one);
}

TEST(PdesEventQueueTest, RunBeforeStopsStrictlyBeforeBound) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule_at(1.0, [&] { fired.push_back(1.0); });
  q.schedule_at(2.0, [&] { fired.push_back(2.0); });
  q.schedule_at(3.0, [&] { fired.push_back(3.0); });
  EXPECT_EQ(q.run_before(2.0), 1u);  // strictly before: t=2 stays
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_EQ(q.run_before(3.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PdesEventQueueTest, NextEventTimeAndAdvance) {
  EventQueue q;
  EXPECT_TRUE(std::isinf(q.next_event_time()));
  q.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_event_time(), 5.0);
  q.advance_to(4.0);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
  q.advance_to(1.0);  // backwards: no-op
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
  EXPECT_THROW(q.advance_to(6.0), std::logic_error);
  q.run();
  EXPECT_TRUE(std::isinf(q.next_event_time()));
}

TEST(PdesEventQueueTest, NextEventTimePrunesCancelledTimers) {
  EventQueue q;
  auto handle = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  handle.cancel();
  EXPECT_DOUBLE_EQ(q.next_event_time(), 2.0);
}

}  // namespace
}  // namespace srm::sim
