// Behavioral tests of the SRM request/repair machinery against the paper's
// Section III-B semantics and the Section IV analyses for chains and stars.
#include <gtest/gtest.h>

#include <memory>

#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "trace/timeline.h"
#include "trace/trace.h"

namespace srm {
namespace {

using harness::DirectedLink;
using harness::RoundSpec;
using harness::SimSession;
using harness::run_loss_round;

SrmConfig deterministic_chain_config() {
  // Sec. IV-A: C1 = D1 = 1, C2 = D2 = 0 makes timers deterministic.
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
  return cfg;
}

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

// --- basic data path ---------------------------------------------------------

TEST(AgentDataTest, DataReachesAllMembers) {
  SimSession s(topo::make_chain(4), all_nodes(4), {SrmConfig{}, 1, 1});
  const DataName name = s.agent(0).send_data(PageId{0, 0}, {1, 2, 3});
  s.queue().run();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.agent(i).has_data(name)) << i;
  }
  const Payload* p = s.agent(3).find_data(name);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (Payload{1, 2, 3}));
}

TEST(AgentDataTest, SequenceNumbersIncreasePerPage) {
  SimSession s(topo::make_chain(2), all_nodes(2), {SrmConfig{}, 1, 1});
  const PageId p0{0, 0}, p1{0, 1};
  EXPECT_EQ(s.agent(0).send_data(p0, {}).seq, 0u);
  EXPECT_EQ(s.agent(0).send_data(p0, {}).seq, 1u);
  EXPECT_EQ(s.agent(0).send_data(p1, {}).seq, 0u);  // per-page numbering
}

TEST(AgentDataTest, AppHookSeesDeliveries) {
  SimSession s(topo::make_chain(3), all_nodes(3), {SrmConfig{}, 1, 1});
  int deliveries = 0;
  bool repair_flag = true;
  SrmAgent::AppHooks hooks;
  hooks.on_data = [&](const DataName&, const Payload&, bool via_repair) {
    ++deliveries;
    repair_flag = via_repair;
  };
  s.agent(2).set_app_hooks(std::move(hooks));
  s.agent(0).send_data(PageId{0, 0}, {9});
  s.queue().run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_FALSE(repair_flag);
}

TEST(AgentDataTest, DuplicateDeliveryIgnored) {
  SimSession s(topo::make_chain(2), all_nodes(2), {SrmConfig{}, 1, 1});
  int deliveries = 0;
  SrmAgent::AppHooks hooks;
  hooks.on_data = [&](const DataName&, const Payload&, bool) { ++deliveries; };
  s.agent(1).set_app_hooks(std::move(hooks));
  s.agent(0).send_data(PageId{0, 0}, {1});
  s.queue().run();
  // Seed the same ADU again through the network: no second app delivery.
  s.agent(0).send_data(PageId{0, 0}, {2});
  s.queue().run();
  EXPECT_EQ(deliveries, 2);  // two distinct ADUs, one delivery each
}

TEST(AgentDataTest, SeedDataSuppressesHistoryRequests) {
  SimSession s(topo::make_chain(3), all_nodes(3), {SrmConfig{}, 1, 1});
  const PageId page{0, 0};
  // Agents 1, 2 already have seqs 0..2 of member 0's stream.
  for (SeqNo q = 0; q < 3; ++q) {
    const DataName n{0, page, q};
    s.agent(0).seed_data(n, {});
    s.agent(1).seed_data(n, {});
    s.agent(2).seed_data(n, {});
  }
  const DataName next = s.agent(0).send_data(page, {});
  EXPECT_EQ(next.seq, 3u);  // seeding advanced the sender's own counter
  s.queue().run();
  EXPECT_EQ(s.agent(1).metrics().losses_detected, 0u);
  EXPECT_EQ(s.agent(2).metrics().requests_sent, 0u);
}

// --- chain: deterministic suppression (Sec. IV-A) ----------------------------

TEST(ChainRecoveryTest, ExactlyOneRequestAndOneRepair) {
  // Chain of 8; source node 0; drop on link (3,4).  With C1=D1=1, C2=D2=0
  // there must be exactly one request (from node 4) and one repair (from
  // node 3): deterministic suppression.  Asserted on the recovery timeline
  // reconstructed from the structured trace, not just aggregate counters.
  SimSession s(topo::make_chain(8), all_nodes(8),
               {deterministic_chain_config(), 1, 1});
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));
  s.set_tracer(&tracer);
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{3, 4};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(r.affected, 4u);   // nodes 4..7
  EXPECT_EQ(r.recovered, 4u);

  const auto timeline = trace::RecoveryTimeline::fold(sink.events());
  ASSERT_EQ(timeline.stories().size(), 1u);
  const trace::RecoveryStory& story = timeline.stories()[0];
  EXPECT_EQ(story.adu, (trace::AduKey{0, 0, 0, 0}));
  EXPECT_EQ(story.requests_sent, 1u);
  EXPECT_EQ(story.repairs_sent, 1u);
  // The request came from node 4 and the repair from node 3.
  EXPECT_EQ(story.first_requestor, 4u);
  EXPECT_EQ(story.first_responder, 3u);
  EXPECT_EQ(story.detections, 4u);
  EXPECT_EQ(story.recoveries, 4u);
  // Timeline totals agree with the aggregate counters.
  EXPECT_EQ(timeline.total_requests(), r.requests);
  EXPECT_EQ(timeline.total_repairs(), r.repairs);
}

TEST(ChainRecoveryTest, DelayAlgebraMatchesSectionIVA) {
  // Paper timeline (distance 1 per link, loss detected at node A=right of
  // congested link at time t): A sends request at t + d(A,S);
  // B (=left of link) repairs at +2 after receiving; farthest node delay
  // follows from link distances.  Verify the final recovery delay for the
  // farthest node is below its unicast bound (2 RTT) and that recovery
  // delay < 1 RTT for the node adjacent to the failure.
  SimSession s(topo::make_chain(10), all_nodes(10),
               {deterministic_chain_config(), 3, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{4, 5};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(r.requests, 1u);
  EXPECT_EQ(r.repairs, 1u);
  // Node 5 is adjacent to the failure: both request and repair are local,
  // so its recovery delay is far below its own RTT to the source.
  const auto& m5 = s.agent_at(5).metrics();
  ASSERT_EQ(m5.recovery_delay_rtt.count(), 1u);
  EXPECT_LT(m5.recovery_delay_rtt.values()[0], 1.0);
  // The last member's delay (in its own RTT units) beats TCP-style 2 RTT.
  EXPECT_LT(r.last_member_delay_rtt, 2.0);
}

TEST(ChainRecoveryTest, RequestTimingIsDistanceScaled) {
  // Node A at distance d from the source sets its request timer to exactly
  // C1 * d with C2 = 0; nodes further away are suppressed before expiry.
  // The trace exposes the timer delays and the deterministic suppression
  // order directly, so assert on those.
  SimSession s(topo::make_chain(6), all_nodes(6),
               {deterministic_chain_config(), 1, 1});
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));
  s.set_tracer(&tracer);
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{1, 2};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);

  const auto timeline = trace::RecoveryTimeline::fold(sink.events());
  ASSERT_EQ(timeline.stories().size(), 1u);
  const trace::RecoveryStory& story = timeline.stories()[0];
  EXPECT_EQ(story.requests_sent, 1u);
  EXPECT_EQ(story.first_requestor, 2u);  // closest affected member wins
  EXPECT_EQ(timeline.total_requests(), r.requests);

  // Every affected member armed a request timer of exactly C1 * d (C2 = 0,
  // no backoff yet), where d is its chain distance to the source.
  std::size_t timers_seen = 0;
  for (const trace::StoryEntry& entry : story.entries) {
    if (entry.type != trace::EventType::kSrmReqTimerSet || entry.arg != 0) {
      continue;
    }
    ++timers_seen;
    EXPECT_DOUBLE_EQ(entry.x, static_cast<double>(entry.actor));
  }
  EXPECT_EQ(timers_seen, 4u);  // nodes 2..5

  // Request suppression (the req_backoff events) runs outward from the
  // requestor, in deterministic nearest-first order.  (suppression_order
  // itself also carries rep_suppress actors, so filter by type here.)
  std::vector<std::uint64_t> backoff_order;
  for (const trace::StoryEntry& entry : story.entries) {
    if (entry.type == trace::EventType::kSrmReqBackoff) {
      backoff_order.push_back(entry.actor);
    }
  }
  EXPECT_EQ(backoff_order, (std::vector<std::uint64_t>{3, 4, 5}));
}

// --- star: probabilistic suppression (Sec. IV-B) -----------------------------

TEST(StarRecoveryTest, LargeC2KeepsDuplicatesLow) {
  // G = 30 leaves, source is leaf 0, drop adjacent to the source: all other
  // members detect simultaneously.  With C1=0 and large C2 the expected
  // number of requests ~ 1 + sqrt(2G/C2) stays small.
  auto star = topo::make_star(30);
  SrmConfig cfg;
  cfg.timers = TimerParams{0.0, 60.0, 0.0, 60.0};
  SimSession s(std::move(star.topo), star.leaves, {cfg, 5, 1});
  RoundSpec spec;
  spec.source_node = star.leaves[0];
  spec.congested = DirectedLink{star.leaves[0], star.center};
  spec.page = PageId{static_cast<SourceId>(star.leaves[0]), 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(r.affected, 29u);
  EXPECT_EQ(r.recovered, 29u);
  EXPECT_LE(r.requests, 5u);  // E ~ 2; generous bound for one seed
  EXPECT_GE(r.requests, 1u);
}

TEST(StarRecoveryTest, TinyC2CausesImplosion) {
  // With C2 = 0.1 nearly every member's timer fires before the first
  // request reaches it: the NACK implosion SRM's randomization prevents.
  auto star = topo::make_star(30);
  SrmConfig cfg;
  cfg.timers = TimerParams{0.0, 0.1, 0.0, 60.0};
  SimSession s(std::move(star.topo), star.leaves, {cfg, 5, 1});
  RoundSpec spec;
  spec.source_node = star.leaves[0];
  spec.congested = DirectedLink{star.leaves[0], star.center};
  spec.page = PageId{static_cast<SourceId>(star.leaves[0]), 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_GE(r.requests, 20u);
  EXPECT_EQ(r.recovered, 29u);  // still recovers despite the implosion
}

TEST(StarRecoveryTest, OnlySourceAnswersWhenOnlySourceHasData) {
  // Drop adjacent to the source: every other member misses the packet, so
  // the sole possible responder is the source itself.
  auto star = topo::make_star(10);
  SrmConfig cfg;
  cfg.timers = TimerParams{0.0, 20.0, 0.0, 20.0};
  SimSession s(std::move(star.topo), star.leaves, {cfg, 9, 1});
  RoundSpec spec;
  spec.source_node = star.leaves[0];
  spec.congested = DirectedLink{star.leaves[0], star.center};
  spec.page = PageId{static_cast<SourceId>(star.leaves[0]), 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(s.agent_at(star.leaves[0]).metrics().repairs_sent, r.repairs);
  EXPECT_GE(r.repairs, 1u);
}

// --- backoff, suppression details -------------------------------------------

TEST(BackoffTest, LoneLossBacksOffUntilRepair) {
  // Drop on a leaf link: a single member misses the packet.  Its first
  // request may go unanswered only if requests are dropped; here the repair
  // arrives, and the member must not send a second request while waiting
  // (backed-off timer cancelled on repair).
  SimSession s(topo::make_chain(4), all_nodes(4),
               {deterministic_chain_config(), 2, 1});
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{2, 3};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(s.agent_at(3).metrics().requests_sent, 1u);
  EXPECT_EQ(r.recovered, 1u);
  EXPECT_FALSE(s.agent_at(3).request_pending(DataName{0, spec.page, 0}));
}

TEST(BackoffTest, RequestRetriesWhenRequestsAreLost) {
  // Drop the data packet AND the first request: the requester must back off
  // and retransmit, and recovery must still complete.
  SimSession s(topo::make_chain(4), all_nodes(4),
               {deterministic_chain_config(), 2, 1});
  auto& net = s.network();
  auto composite = std::make_shared<net::CompositeDrop>();
  // Second policy: drop the first REQUEST crossing (3->2).
  composite->add(std::make_shared<net::ScriptedLinkDrop>(
      3, 2, [](const net::Packet& p) {
        return dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr;
      }));
  // First: drop DATA seq 0 on (2,3).
  composite->add(std::make_shared<net::ScriptedLinkDrop>(
      2, 3, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  net.set_drop_policy(composite);

  SrmAgent& src = s.agent_at(0);
  const PageId page{0, 0};
  src.send_data(page, {});
  s.queue().schedule_after(1.0, [&] { src.send_data(page, {}); });
  s.queue().run();

  EXPECT_EQ(s.agent_at(3).metrics().requests_sent, 2u);  // retry happened
  EXPECT_TRUE(s.agent_at(3).has_data(DataName{0, page, 0}));
  net.set_drop_policy(nullptr);
}

TEST(BackoffTest, BackoffFactorThreeSpreadsRetries) {
  SrmConfig cfg = deterministic_chain_config();
  cfg.backoff_factor = 3.0;
  SimSession s(topo::make_chain(3), all_nodes(3), {cfg, 2, 1});
  // Drop DATA seq 0 on (1,2) and black-hole every request from node 2, so
  // the requester keeps retrying until it abandons.
  auto composite = std::make_shared<net::CompositeDrop>();
  composite->add(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  composite->add(std::make_shared<net::ScriptedLinkDrop>(
      2, 1,
      [](const net::Packet& p) {
        return dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr;
      },
      /*max_drops=*/1000));
  s.network().set_drop_policy(composite);
  const PageId page{0, 0};
  s.agent_at(0).send_data(page, {});
  s.queue().schedule_after(1.0, [&] { s.agent_at(0).send_data(page, {}); });
  s.queue().run();
  // max_request_backoffs = 16 caps the retries; recovery is abandoned.
  EXPECT_EQ(s.agent_at(2).metrics().recovery_abandoned, 1u);
  EXPECT_GT(s.agent_at(2).metrics().requests_sent, 5u);
  s.network().set_drop_policy(nullptr);
}

TEST(HolddownTest, DuplicateRequestDoesNotRetriggerRepair) {
  // After answering a request, a member ignores further requests for the
  // same data for 3 * d_S seconds (Sec. III-B).
  SrmConfig cfg = deterministic_chain_config();
  SimSession s(topo::make_chain(3), all_nodes(3), {cfg, 2, 1});
  const PageId page{0, 0};
  // Seed: only node 1 has the data besides the source.
  const DataName name{0, page, 0};
  s.agent_at(0).seed_data(name, {});
  s.agent_at(1).seed_data(name, {});

  // Node 2 learns of the data (via a session report) and requests it.
  s.agent_at(1).set_current_page(page);
  s.agent_at(1).send_session_message();
  s.queue().run();
  EXPECT_TRUE(s.agent_at(2).has_data(name));
  const auto repairs_after_first = s.agent_at(1).metrics().repairs_sent;
  EXPECT_EQ(repairs_after_first, 1u);
}

// --- request reveals data existence (Sec. III-B) ------------------------------

TEST(RequestRevealsDataTest, ThirdPartySetsSuppressedTimer) {
  // A request overheard for unknown data makes the member join the recovery
  // in the backed-off state rather than requesting immediately.
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  SimSession s(topo::make_chain(3), all_nodes(3), {cfg, 4, 1});
  const PageId page{0, 0};
  const DataName name{0, page, 0};
  // Only the source (node 0) has the data; nodes 1 and 2 never saw it.
  s.agent_at(0).seed_data(name, {});
  // Node 2 hears about it from a session message and requests; node 1
  // overhears the request en route.
  s.agent_at(0).set_current_page(page);
  s.agent_at(0).send_session_message();
  s.queue().run();
  EXPECT_TRUE(s.agent_at(1).has_data(name));
  EXPECT_TRUE(s.agent_at(2).has_data(name));
  // The repair satisfied both members; at most one of them requested.
  EXPECT_LE(s.agent_at(1).metrics().requests_sent +
                s.agent_at(2).metrics().requests_sent,
            2u);
  EXPECT_EQ(s.agent_at(1).metrics().recoveries +
                s.agent_at(2).metrics().recoveries,
            2u);
}

// --- session-message-driven tail-loss detection ------------------------------

TEST(TailLossTest, SessionMessageDetectsLastPacketLoss) {
  // The last packet of a burst is dropped; no subsequent data reveals the
  // gap, so only a session message can (Sec. III-A).
  SimSession s(topo::make_chain(3), all_nodes(3),
               {deterministic_chain_config(), 2, 1});
  const PageId page{0, 0};
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  // Drop DATA seq 0 on (1,2); send only that one packet.
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        return dynamic_cast<const DataMessage*>(p.payload.get()) != nullptr;
      }));
  s.agent_at(0).send_data(page, {});
  s.queue().run();
  EXPECT_FALSE(s.agent_at(2).has_data(DataName{0, page, 0}));
  s.network().set_drop_policy(nullptr);
  // Node 1's session message announces seq 0; node 2 detects and recovers.
  s.agent_at(1).send_session_message();
  s.queue().run();
  EXPECT_TRUE(s.agent_at(2).has_data(DataName{0, page, 0}));
  EXPECT_EQ(s.agent_at(2).metrics().losses_detected, 1u);
}

// --- late joiner --------------------------------------------------------------

TEST(LateJoinerTest, RecoversFullHistory) {
  // A member that joins after 5 ADUs were sent learns the state from a
  // session message and pulls the entire back history via requests.
  SimSession s(topo::make_chain(4), {0, 1, 2}, {deterministic_chain_config(), 6, 1});
  const PageId page{0, 0};
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  for (int i = 0; i < 5; ++i) s.agent_at(0).send_data(page, {});
  s.queue().run();

  // Node 3 joins late.
  SrmConfig cfg = deterministic_chain_config();
  MemberDirectory& dir = s.directory();
  SrmAgent late(s.network(), dir, 3, 3, 1, cfg, util::Rng(99));
  late.start();
  late.set_current_page(page);
  s.agent_at(2).send_session_message();
  s.queue().run();
  for (SeqNo q = 0; q < 5; ++q) {
    EXPECT_TRUE(late.has_data(DataName{0, page, q})) << q;
  }
  EXPECT_EQ(late.metrics().recoveries, 5u);
  late.stop();
}

// --- local recovery: two-step TTL-scoped repairs ------------------------------

TEST(LocalRecoveryTest, TwoStepRepairCoversRequestScope) {
  // Chain 0..7, drop on (5,6): nodes 6,7 share the loss.  Node 6 requests
  // with TTL 2 (enough to reach holder node 5 and co-loser node 7).
  SrmConfig cfg = deterministic_chain_config();
  cfg.local_recovery.enabled = true;
  cfg.local_recovery.two_step = true;
  SimSession s(topo::make_chain(8), all_nodes(8), {cfg, 2, 1});
  s.agent_at(6).set_request_ttl_policy([](const DataName&) { return 2; });
  // Keep other affected members quiet so the scoped request is the only one:
  // node 7 hears 6's request (TTL 2 reaches it) and suppresses.
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{5, 6};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(r.recovered, 2u);
  // Two-step: step 1 from node 5 (TTL 2), step 2 re-multicast by node 6.
  EXPECT_EQ(r.repairs, 2u);
  // The repairs never reached nodes 0..3 (scoped), so the repair
  // neighborhood is much smaller than the session.
  EXPECT_LE(r.members_reached_by_repair, 5u);
  EXPECT_TRUE(s.agent_at(7).has_data(DataName{0, spec.page, 0}));
}

TEST(LocalRecoveryTest, OneStepRepairOvercovers) {
  SrmConfig cfg = deterministic_chain_config();
  cfg.local_recovery.enabled = true;
  cfg.local_recovery.two_step = false;
  SimSession s(topo::make_chain(8), all_nodes(8), {cfg, 2, 1});
  s.agent_at(6).set_request_ttl_policy([](const DataName&) { return 2; });
  RoundSpec spec;
  spec.source_node = 0;
  spec.congested = DirectedLink{5, 6};
  spec.page = PageId{0, 0};
  const auto r = run_loss_round(s, spec, 0);
  EXPECT_EQ(r.recovered, 2u);
  EXPECT_EQ(r.repairs, 1u);  // single repair at TTL request+hops
  // One-step repair TTL = 2 + 1 hops = 3 from node 5: reaches 2..7 side.
  EXPECT_GE(r.members_reached_by_repair, 4u);
}

TEST(LocalRecoveryTest, AdminScopeConfinesRecovery) {
  // Two admin regions split at the tree root; recovery inside one region
  // never leaks requests into the other.
  auto topo = topo::make_bounded_degree_tree(13, 4);
  topo::assign_subtree_regions(topo, 0);
  SrmConfig cfg = deterministic_chain_config();
  SimSession s(std::move(topo), all_nodes(13), {cfg, 3, 1});
  s.for_each_agent([](SrmAgent& a) { a.set_use_admin_scope(true); });

  const PageId page{1, 0};
  const DataName name{1, page, 0};
  // Node 1 (region of subtree 1) holds data; node 5 (child of 1, same
  // region) is missing it and requests with admin scope.
  s.agent_at(1).seed_data(name, {});
  std::size_t requests_heard_outside = 0;
  s.network().set_delivery_observer(
      [&](const net::Packet& p, const net::DeliveryInfo& info) {
        if (dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr &&
            s.topology().admin_region(info.receiver) !=
                s.topology().admin_region(1)) {
          ++requests_heard_outside;
        }
      });
  s.agent_at(1).set_current_page(page);
  s.agent_at(1).send_session_message();
  s.queue().run();
  // Members of node 1's subtree (5, 6, 7) recovered; no request escaped.
  EXPECT_TRUE(s.agent_at(5).has_data(name));
  EXPECT_EQ(requests_heard_outside, 0u);
  s.network().set_delivery_observer(nullptr);
}

// --- adaptive integration ------------------------------------------------------

TEST(AdaptiveIntegrationTest, RepeatedRoundsReduceDuplicates) {
  // A sparse session on a big tree with fixed timers produces duplicate
  // requests/repairs; with the adaptive algorithm enabled the per-round
  // totals must fall to ~1 request and ~1 repair within 40 rounds.
  util::Rng rng(12);
  auto topo = topo::make_bounded_degree_tree(200, 4);
  auto members = harness::choose_members(200, 30, rng);
  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.adaptive.enabled = true;
  cfg.backoff_factor = 3.0;
  SimSession s(std::move(topo), members, {cfg, 12, 1});

  const net::NodeId source = members[0];
  const auto congested = harness::choose_congested_link(
      s.network().routing(), source, members, rng);
  RoundSpec spec;
  spec.source_node = source;
  spec.congested = congested;
  spec.page = PageId{static_cast<SourceId>(source), 0};

  std::size_t late_requests = 0, late_repairs = 0, late_rounds = 0;
  for (int round = 0; round < 60; ++round) {
    auto drop_rearm = spec;  // sequence numbers advance by 2 per round
    const auto r = run_loss_round(s, drop_rearm, /*seq=*/round * 2);
    ASSERT_EQ(r.recovered, r.affected);
    if (round >= 40) {
      late_requests += r.requests;
      late_repairs += r.repairs;
      ++late_rounds;
    }
  }
  // "Steady state" (paper Fig. 13): ~1-2 requests and repairs per loss.
  // The bound is loose because one 20-round window of one seed is noisy.
  EXPECT_LE(static_cast<double>(late_requests) / late_rounds, 2.5);
  EXPECT_LE(static_cast<double>(late_repairs) / late_rounds, 2.5);
}

}  // namespace
}  // namespace srm
