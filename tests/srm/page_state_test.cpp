// Tests for the page-state recovery protocol (Sec. III-A): page requests,
// suppressible page replies, list-of-pages discovery, and the follow-on
// data recovery they trigger.
#include <gtest/gtest.h>

#include <memory>

#include "harness/session.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig cfg() {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  return cfg;
}

TEST(PageStateTest, PageRequestRecoversWholePage) {
  harness::SimSession s(topo::make_chain(4), all_nodes(4), {cfg(), 1, 1});
  const PageId page{0, 7};
  // History exists only at members 0-2 (member 3 was "browsing elsewhere":
  // seed everyone but node 3).
  for (SeqNo q = 0; q < 5; ++q) {
    const DataName n{0, page, q};
    for (net::NodeId m = 0; m < 3; ++m) {
      s.agent_at(m).seed_data(n, {static_cast<uint8_t>(q)});
    }
  }
  // Member 3 knows the page exists (say, from an old session message) and
  // asks for its state.
  s.agent_at(3).request_page_state(page);
  s.queue().run();
  for (SeqNo q = 0; q < 5; ++q) {
    EXPECT_TRUE(s.agent_at(3).has_data(DataName{0, page, q})) << q;
  }
  EXPECT_EQ(s.agent_at(3).metrics().recoveries, 5u);
}

TEST(PageStateTest, RepliesAreSuppressed) {
  // All of members 0..3 can answer; the reply timers must collapse to few
  // (usually one) actual replies.
  harness::SimSession s(topo::make_chain(6), all_nodes(6), {cfg(), 2, 1});
  const PageId page{0, 1};
  for (net::NodeId m = 0; m < 5; ++m) {
    s.agent_at(m).seed_data(DataName{0, page, 0}, {1});
  }
  std::size_t replies = 0;
  s.network().set_send_observer([&](net::NodeId, const net::Packet& p) {
    if (dynamic_cast<const PageReplyMessage*>(p.payload.get())) ++replies;
  });
  s.agent_at(5).request_page_state(page);
  s.queue().run();
  EXPECT_GE(replies, 1u);
  EXPECT_LE(replies, 2u);
  EXPECT_TRUE(s.agent_at(5).has_data(DataName{0, page, 0}));
}

TEST(PageStateTest, MembersWithoutStateStaySilent) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {cfg(), 3, 1});
  const PageId page{9, 9};  // nobody has ever heard of it
  std::size_t replies = 0;
  s.network().set_send_observer([&](net::NodeId, const net::Packet& p) {
    if (dynamic_cast<const PageReplyMessage*>(p.payload.get())) ++replies;
  });
  s.agent_at(0).request_page_state(page);
  s.queue().run();
  EXPECT_EQ(replies, 0u);
}

TEST(PageStateTest, ListRequestDiscoversPages) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {cfg(), 4, 1});
  const PageId pa{0, 0}, pb{1, 3};
  s.agent_at(0).seed_data(DataName{0, pa, 0}, {1});
  s.agent_at(0).seed_data(DataName{1, pb, 0}, {2});

  std::vector<PageId> learned;
  SrmAgent::AppHooks hooks;
  hooks.on_page_list = [&](const std::vector<PageId>& pages) {
    learned = pages;
  };
  s.agent_at(2).set_app_hooks(std::move(hooks));
  s.agent_at(2).request_page_state(std::nullopt);
  s.queue().run();
  ASSERT_EQ(learned.size(), 2u);
  EXPECT_EQ(learned[0], pa);
  EXPECT_EQ(learned[1], pb);
  // The agent itself remembers them too.
  EXPECT_EQ(s.agent_at(2).known_pages().size(), 2u);
}

TEST(PageStateTest, LateJoinerBrowsesFullHistory) {
  // The complete late-join flow the paper sketches: ask for the page list,
  // then pull each page's state, and end up with every ADU.
  harness::SimSession s(topo::make_chain(4), {0, 1, 2}, {cfg(), 5, 1});
  const PageId p0{0, 0}, p1{0, 1};
  for (int i = 0; i < 3; ++i) s.agent_at(0).send_data(p0, {1});
  for (int i = 0; i < 2; ++i) s.agent_at(0).send_data(p1, {2});
  s.queue().run();

  SrmAgent late(s.network(), s.directory(), 3, 3, 1, cfg(), util::Rng(77));
  late.start();
  std::vector<PageId> pages;
  SrmAgent::AppHooks hooks;
  hooks.on_page_list = [&](const std::vector<PageId>& p) { pages = p; };
  late.set_app_hooks(std::move(hooks));
  late.request_page_state(std::nullopt);
  s.queue().run();
  ASSERT_EQ(pages.size(), 2u);
  for (const PageId& p : pages) {
    late.request_page_state(p);
    s.queue().run();
  }
  for (SeqNo q = 0; q < 3; ++q) {
    EXPECT_TRUE(late.has_data(DataName{0, p0, q})) << q;
  }
  for (SeqNo q = 0; q < 2; ++q) {
    EXPECT_TRUE(late.has_data(DataName{0, p1, q})) << q;
  }
  late.stop();
}

TEST(PageStateTest, KnownPagesTracksAllEvidence) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 6, 1});
  EXPECT_TRUE(s.agent_at(1).known_pages().empty());
  s.agent_at(0).send_data(PageId{0, 4}, {1});
  s.queue().run();
  const auto pages = s.agent_at(1).known_pages();
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], (PageId{0, 4}));
}

}  // namespace
}  // namespace srm
