// GF(256) arithmetic core and the generation erasure code built on it:
// field identities, Cauchy submatrix invertibility (the property the
// decoder relies on), and encode/decode round trips over exhaustive and
// seeded-random erasure patterns for every K in [1..4].
#include "srm/fec/block_code.h"
#include "srm/fec/gf256.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace srm::fec {
namespace {

TEST(Gf256Test, TablesAreConsistent) {
  const auto& exp = gf_exp_table();
  const auto& log = gf_log_table();
  // alpha^0 = 1 and the wrap-around slot spares the mod-255 in gf_mul.
  EXPECT_EQ(exp[0], 1);
  EXPECT_EQ(exp[255], exp[0]);
  // log is the left inverse of exp over the 255-element cyclic group.
  for (int i = 0; i < 255; ++i) {
    EXPECT_EQ(log[exp[i]], i) << "i=" << i;
  }
  // Every nonzero byte appears exactly once in exp[0..254] (alpha = 2 is a
  // generator of the multiplicative group).
  std::vector<int> seen(256, 0);
  for (int i = 0; i < 255; ++i) ++seen[exp[i]];
  EXPECT_EQ(seen[0], 0);
  for (int v = 1; v < 256; ++v) EXPECT_EQ(seen[v], 1) << "value " << v;
}

TEST(Gf256Test, MultiplicationIdentities) {
  for (int a = 0; a < 256; ++a) {
    const auto byte = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(byte, 0), 0);
    EXPECT_EQ(gf_mul(0, byte), 0);
    EXPECT_EQ(gf_mul(byte, 1), byte);
    EXPECT_EQ(gf_mul(1, byte), byte);
  }
  // Commutativity and associativity on a sample grid.
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      const auto ab = gf_mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b));
      const auto ba = gf_mul(static_cast<std::uint8_t>(b),
                             static_cast<std::uint8_t>(a));
      EXPECT_EQ(ab, ba);
      for (int c = 1; c < 256; c += 31) {
        EXPECT_EQ(gf_mul(ab, static_cast<std::uint8_t>(c)),
                  gf_mul(static_cast<std::uint8_t>(a),
                         gf_mul(static_cast<std::uint8_t>(b),
                                static_cast<std::uint8_t>(c))));
      }
    }
  }
}

TEST(Gf256Test, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto byte = static_cast<std::uint8_t>(a);
    const auto inv = gf_inv(byte);
    EXPECT_EQ(gf_mul(byte, inv), 1) << "a=" << a;
    EXPECT_EQ(gf_div(byte, byte), 1);
    EXPECT_EQ(gf_div(0, byte), 0);
  }
  EXPECT_THROW(gf_inv(0), std::domain_error);
  EXPECT_THROW(gf_div(1, 0), std::domain_error);
}

TEST(Gf256Test, MulAddMatchesScalarMultiply) {
  std::mt19937 rng(99);
  std::vector<std::uint8_t> src(64), dst(64), expected(64);
  for (int trial = 0; trial < 32; ++trial) {
    const auto c = static_cast<std::uint8_t>(rng() & 0xFF);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<std::uint8_t>(rng() & 0xFF);
      dst[i] = static_cast<std::uint8_t>(rng() & 0xFF);
      expected[i] = static_cast<std::uint8_t>(dst[i] ^ gf_mul(c, src[i]));
    }
    gf_mul_add(c, src.data(), dst.data(), dst.size());
    EXPECT_EQ(dst, expected) << "c=" << int(c);
  }
}

TEST(Gf256Test, CauchyCoefficientsAreNonzeroAndDistinctPerColumn) {
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < kMaxParityRows; ++j) {
      EXPECT_NE(cauchy_coeff(j, i), 0);
      for (std::size_t j2 = j + 1; j2 < kMaxParityRows; ++j2) {
        EXPECT_NE(cauchy_coeff(j, i), cauchy_coeff(j2, i))
            << "column " << i << " rows " << j << "," << j2;
      }
    }
  }
}

TEST(Gf256Test, SolveRejectsSingularSystems) {
  // Two identical rows: rank 1, no unique solution.
  std::vector<std::vector<std::uint8_t>> a{{3, 5}, {3, 5}};
  std::vector<std::vector<std::uint8_t>> b{{1}, {2}};
  EXPECT_FALSE(gf_solve(a, b, 1));
}

// ---------------------------------------------------------------------------
// Block code round trips
// ---------------------------------------------------------------------------

Symbol make_symbol(std::mt19937& rng, std::size_t len) {
  Symbol s(len);
  for (auto& b : s) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return s;
}

// Erases `erased` (bitmask over data indices), decodes with the parity
// subset selected by `parity_mask`, and verifies every erased symbol comes
// back zero-padded to the generation width.
void expect_round_trip(const std::vector<Symbol>& data,
                       const std::vector<Symbol>& parities,
                       std::uint8_t scheme, unsigned erased,
                       unsigned parity_mask) {
  const std::size_t width = padded_len(data);
  std::vector<const Symbol*> present(data.size(), nullptr);
  std::size_t erasures = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (erased & (1u << i)) {
      ++erasures;
    } else {
      present[i] = &data[i];
    }
  }
  std::vector<std::pair<std::size_t, Symbol>> surviving;
  for (std::size_t j = 0; j < parities.size(); ++j) {
    if (parity_mask & (1u << j)) surviving.emplace_back(j, parities[j]);
  }
  ASSERT_GE(surviving.size(), erasures);
  const auto recovered = decode(scheme, present, surviving, width);
  ASSERT_EQ(recovered.size(), erasures)
      << "erased=" << erased << " parities=" << parity_mask;
  for (const auto& [idx, symbol] : recovered) {
    ASSERT_TRUE(erased & (1u << idx));
    Symbol expected = data[idx];
    expected.resize(width, 0);
    EXPECT_EQ(symbol, expected) << "index " << idx;
  }
}

TEST(BlockCodeTest, SchemeSelection) {
  EXPECT_EQ(scheme_for(1), kSchemeXor);
  EXPECT_EQ(scheme_for(2), kSchemeGf256);
  EXPECT_EQ(scheme_for(4), kSchemeGf256);
}

TEST(BlockCodeTest, EncodeValidatesArguments) {
  std::mt19937 rng(1);
  const std::vector<Symbol> data{make_symbol(rng, 4)};
  EXPECT_THROW(encode(data, 0), std::domain_error);
  EXPECT_THROW(encode(data, kMaxParity + 1), std::domain_error);
  EXPECT_THROW(encode({}, 1), std::domain_error);
}

TEST(BlockCodeTest, XorParityMatchesManualXor) {
  std::mt19937 rng(2);
  const std::vector<Symbol> data{make_symbol(rng, 5), make_symbol(rng, 3),
                                 make_symbol(rng, 5)};
  const auto parities = encode(data, 1);
  ASSERT_EQ(parities.size(), 1u);
  Symbol expected(padded_len(data), 0);
  for (const Symbol& s : data) {
    for (std::size_t b = 0; b < s.size(); ++b) expected[b] ^= s[b];
  }
  EXPECT_EQ(parities[0], expected);
}

// The decisive structural property: for every n <= 6, every K, every
// erasure pattern of size e <= K, and EVERY choice of e surviving
// parities, the decode succeeds.  This is exactly "every square submatrix
// of the Cauchy matrix is invertible" exercised end to end.
TEST(BlockCodeTest, ExhaustiveErasurePatternsAllParitySubsets) {
  std::mt19937 rng(3);
  for (std::size_t n = 1; n <= 6; ++n) {
    std::vector<Symbol> data;
    for (std::size_t i = 0; i < n; ++i) {
      data.push_back(make_symbol(rng, 1 + (rng() % 9)));
    }
    for (std::size_t k = 1; k <= kMaxParity; ++k) {
      const std::uint8_t scheme = scheme_for(k);
      const auto parities = encode(data, k);
      ASSERT_EQ(parities.size(), k);
      for (unsigned erased = 0; erased < (1u << n); ++erased) {
        const auto e =
            static_cast<std::size_t>(__builtin_popcount(erased));
        if (e == 0 || e > k) continue;
        for (unsigned pm = 0; pm < (1u << k); ++pm) {
          if (static_cast<std::size_t>(__builtin_popcount(pm)) != e) continue;
          expect_round_trip(data, parities, scheme, erased, pm);
        }
      }
    }
  }
}

TEST(BlockCodeTest, SeededRandomRoundTripsAllK) {
  std::mt19937 rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + (rng() % 12);
    const std::size_t k = 1 + (rng() % kMaxParity);
    std::vector<Symbol> data;
    for (std::size_t i = 0; i < n; ++i) {
      data.push_back(make_symbol(rng, rng() % 40));  // empty symbols legal
    }
    const auto parities = encode(data, k);
    // Erase a random e <= min(k, n) subset.
    const std::size_t e = std::min(n, 1 + (rng() % k));
    unsigned erased = 0;
    while (static_cast<std::size_t>(__builtin_popcount(erased)) < e) {
      erased |= 1u << (rng() % n);
    }
    // Survive a random superset of e parities.
    unsigned pm = 0;
    while (static_cast<std::size_t>(__builtin_popcount(pm)) < e) {
      pm |= 1u << (rng() % k);
    }
    expect_round_trip(data, parities, scheme_for(k), erased, pm);
  }
}

TEST(BlockCodeTest, DecodeFailsGracefullyOnBadInput) {
  std::mt19937 rng(4);
  const std::vector<Symbol> data{make_symbol(rng, 4), make_symbol(rng, 4)};
  const auto parities = encode(data, 2);
  const std::size_t width = padded_len(data);
  // More erasures than surviving parities.
  EXPECT_TRUE(decode(kSchemeGf256, {nullptr, nullptr},
                     {{0, parities[0]}}, width)
                  .empty());
  // Parity body of the wrong width.
  Symbol short_body(width - 1, 0);
  EXPECT_TRUE(decode(kSchemeGf256, {nullptr, &data[1]}, {{0, short_body}},
                     width)
                  .empty());
  // Parity row index out of range.
  EXPECT_TRUE(decode(kSchemeGf256, {nullptr, &data[1]},
                     {{kMaxParityRows, parities[0]}}, width)
                  .empty());
  // No erasures: nothing to do, nothing returned.
  EXPECT_TRUE(decode(kSchemeGf256, {&data[0], &data[1]}, {{0, parities[0]}},
                     width)
                  .empty());
}

}  // namespace
}  // namespace srm::fec
