// Tests for parity-based (FEC) local repair layered over SRM.
#include "srm/parity.h"

#include <gtest/gtest.h>

#include <map>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm::parity {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig cfg() {
  SrmConfig c;
  c.timers = TimerParams{2.0, 2.0, 1.0, 1.0};
  c.backoff_factor = 3.0;
  return c;
}

TEST(ParityFramingTest, DataRoundTrip) {
  const Payload app{1, 2, 3, 4, 5};
  const Payload frame = ParitySession::frame_data(app);
  EXPECT_FALSE(ParitySession::is_parity_frame(frame));
  const auto back = ParitySession::unframe_data(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, app);
}

TEST(ParityFramingTest, EmptyPayloadRoundTrip) {
  const auto back = ParitySession::unframe_data(ParitySession::frame_data({}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(ParityFramingTest, RejectsGarbage) {
  EXPECT_FALSE(ParitySession::unframe_data({}).has_value());
  EXPECT_FALSE(ParitySession::unframe_data({0xFF, 0x00}).has_value());
}

TEST(ParitySessionTest, EmitsParityEveryKthSend) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 1, 1});
  ParitySession tx(s.agent_at(0), /*k=*/3);
  const PageId page{0, 0};
  std::size_t data_seen = 0, parity_seen = 0;
  s.network().set_send_observer([&](net::NodeId, const net::Packet& p) {
    const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
    if (d == nullptr) return;
    if (ParitySession::is_parity_frame(*d->payload())) {
      ++parity_seen;
    } else {
      ++data_seen;
    }
  });
  for (int i = 0; i < 7; ++i) tx.send(page, {static_cast<uint8_t>(i)});
  s.queue().run();
  EXPECT_EQ(data_seen, 7u);
  EXPECT_EQ(parity_seen, 2u);  // after sends 3 and 6
  EXPECT_EQ(tx.stats().parity_sent, 2u);
}

TEST(ParitySessionTest, ReceiverSeesOnlyAppPayloads) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 2, 1});
  ParitySession tx(s.agent_at(0), 2);
  ParitySession rx(s.agent_at(1), 2);
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  const PageId page{0, 0};
  for (int i = 0; i < 4; ++i) tx.send(page, {static_cast<uint8_t>(10 + i)});
  s.queue().run();
  // Seqs 0,1 data; 2 parity; 3,4 data; 5 parity.  Handler sees 4 payloads.
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered.at(0), (Payload{10}));
  EXPECT_EQ(delivered.at(4), (Payload{13}));
  EXPECT_EQ(delivered.count(2), 0u);  // parity seq invisible to the app
}

TEST(ParitySessionTest, SingleLossReconstructedWithoutRequest) {
  // Drop one data ADU of a block on the only link: the receiver must
  // rebuild it from the parity with ZERO requests or repairs.
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 3, 1});
  ParitySession tx(s.agent_at(0), 3);
  ParitySession rx(s.agent_at(1), 3);
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  const PageId page{0, 0};
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      0, 1, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 1;
      }));
  tx.send(page, {0xA0});
  tx.send(page, {0xA1, 0xA1, 0xA1});  // dropped (longer than its peers)
  tx.send(page, {0xA2});              // completes block -> parity (seq 3)
  s.queue().run();
  EXPECT_EQ(rx.stats().reconstructions, 1u);
  ASSERT_EQ(delivered.count(1), 1u);
  EXPECT_EQ(delivered.at(1), (Payload{0xA1, 0xA1, 0xA1}));
  EXPECT_EQ(s.agent_at(1).metrics().requests_sent, 0u);
  EXPECT_EQ(s.agent_at(0).metrics().repairs_sent, 0u);
  // The reconstruction also counts as a completed recovery.
  EXPECT_EQ(s.agent_at(1).metrics().recoveries, 1u);
}

TEST(ParitySessionTest, ReconstructedDataAnswersOthersRequests) {
  // Member 1 reconstructs the loss from parity; member 2 (who missed both
  // the data AND the parity) recovers via an SRM repair that member 1 can
  // answer from its reconstructed copy.
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {cfg(), 4, 1});
  ParitySession tx(s.agent_at(0), 2);
  ParitySession rx1(s.agent_at(1), 2);
  ParitySession rx2(s.agent_at(2), 2);
  const PageId page{0, 0};
  auto drops = std::make_shared<net::CompositeDrop>();
  // Seq 1 dropped for everyone downstream of (0,1).
  drops->add(std::make_shared<net::ScriptedLinkDrop>(
      0, 1, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 1;
      }));
  // The parity (seq 2) additionally dropped on (1,2).
  drops->add(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 2;
      }));
  s.network().set_drop_policy(drops);
  tx.send(page, {0x01});
  tx.send(page, {0x02});  // block of 2 -> parity at seq 2
  // One more block so member 2 detects the gap from subsequent traffic.
  tx.send(page, {0x03});
  tx.send(page, {0x04});
  s.queue().run();
  EXPECT_EQ(rx1.stats().reconstructions, 1u);
  EXPECT_TRUE(s.agent_at(2).has_data(DataName{0, page, 1}));
  EXPECT_GE(s.agent_at(2).metrics().recoveries, 1u);
}

TEST(ParitySessionTest, DoubleLossFallsThroughToSrm) {
  // Two data ADUs of one block dropped: the parity alone cannot
  // reconstruct, so SRM requests must fire.  Once SRM has repaired one of
  // the two, the block is back to a single hole and the parity rebuilds
  // the other locally — the schemes compose.
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 5, 1});
  ParitySession tx(s.agent_at(0), 3);
  ParitySession rx(s.agent_at(1), 3);
  const PageId page{0, 0};
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      0, 1,
      [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && (d->name().seq == 0 || d->name().seq == 1);
      },
      /*max_drops=*/2));
  tx.send(page, {0x01});
  tx.send(page, {0x02});
  tx.send(page, {0x03});
  s.queue().run();
  EXPECT_LE(rx.stats().reconstructions, 1u);
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 1}));
  EXPECT_GE(s.agent_at(1).metrics().requests_sent, 1u);
}

TEST(ParitySessionTest, LostParityIsHarmless) {
  // Only the parity ADU is dropped; no data is missing, and the receiver
  // must not request the parity eagerly... it does request it (it is a
  // normal ADU revealed by the next block), and SRM repairs it — but the
  // application stream is complete either way.
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 6, 1});
  ParitySession tx(s.agent_at(0), 2);
  ParitySession rx(s.agent_at(1), 2);
  std::size_t app_payloads = 0;
  rx.set_data_handler([&](const DataName&, const Payload&, bool) {
    ++app_payloads;
  });
  const PageId page{0, 0};
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      0, 1, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 2;  // the first parity
      }));
  for (int i = 0; i < 4; ++i) tx.send(page, {static_cast<uint8_t>(i)});
  s.queue().run();
  EXPECT_EQ(app_payloads, 4u);
  EXPECT_EQ(rx.stats().reconstructions, 0u);
}

}  // namespace
}  // namespace srm::parity
