// The agent's send policy: token-bucket pacing and the wb priority order
// (current-page recovery > new data > old-page recovery), Sec. III-E.
#include <gtest/gtest.h>

#include "harness/session.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

TEST(SendPolicyTest, TokenBucketPacesData) {
  // 1032-byte ADUs (32 B header + 1000 B payload) at 1032 B/s with a
  // 2064 B bucket: two go out at t=0, then one per second.
  SrmConfig cfg;
  cfg.rate_limit.enabled = true;
  cfg.rate_limit.tokens_per_second = 1032.0;
  cfg.rate_limit.bucket_depth = 2064.0;
  harness::SimSession s(topo::make_chain(2), {0, 1}, {cfg, 1, 1});

  std::vector<double> send_times;
  s.network().set_send_observer([&](net::NodeId, const net::Packet&) {
    send_times.push_back(s.queue().now());
  });
  const PageId page{0, 0};
  for (int i = 0; i < 5; ++i) {
    s.agent_at(0).send_data(page, Payload(1000, 0x11));
  }
  s.queue().run();

  ASSERT_EQ(send_times.size(), 5u);
  EXPECT_DOUBLE_EQ(send_times[0], 0.0);
  EXPECT_DOUBLE_EQ(send_times[1], 0.0);
  EXPECT_NEAR(send_times[2], 1.0, 1e-9);
  EXPECT_NEAR(send_times[3], 2.0, 1e-9);
  EXPECT_NEAR(send_times[4], 3.0, 1e-9);
}

TEST(SendPolicyTest, ReceiverStillGetsEverything) {
  SrmConfig cfg;
  cfg.rate_limit.enabled = true;
  cfg.rate_limit.tokens_per_second = 2000.0;
  cfg.rate_limit.bucket_depth = 1100.0;
  harness::SimSession s(topo::make_chain(3), {0, 1, 2}, {cfg, 2, 1});
  const PageId page{0, 0};
  for (int i = 0; i < 10; ++i) {
    s.agent_at(0).send_data(page, Payload(1000, 0x22));
  }
  s.queue().run();
  for (SeqNo q = 0; q < 10; ++q) {
    EXPECT_TRUE(s.agent_at(2).has_data(DataName{0, page, q})) << q;
  }
}

TEST(SendPolicyTest, CurrentPageRepairBeatsQueuedData) {
  // Saturate the bucket with new data, then trigger a repair for the
  // current page: the repair must jump the queue.
  SrmConfig cfg;
  cfg.timers = TimerParams{0.1, 0.1, 0.1, 0.1};
  cfg.rate_limit.enabled = true;
  cfg.rate_limit.tokens_per_second = 1032.0;
  cfg.rate_limit.bucket_depth = 1032.0;
  harness::SimSession s(topo::make_chain(2), {0, 1}, {cfg, 3, 1});
  const PageId page{0, 0};
  s.agent_at(0).set_current_page(page);
  s.agent_at(1).set_current_page(page);

  // Seed an ADU that node 1 does not have, then make node 1 request it
  // while node 0's queue is full of new data.
  const DataName missing{0, page, 0};
  s.agent_at(0).seed_data(missing, Payload(1000, 0x33));

  std::vector<std::string> sends;
  s.network().set_send_observer([&](net::NodeId from, const net::Packet& p) {
    if (from == 0) sends.push_back(p.payload->describe().substr(0, 4));
  });

  // Fill node 0's queue: bucket holds one packet, the rest queue up.
  for (int i = 1; i <= 4; ++i) {
    s.agent_at(0).send_data(page, Payload(1000, 0x44));
  }
  // Node 1 learns of seq 0 and requests it.
  s.agent_at(0).send_session_message();
  s.queue().run();

  // The repair for the current page must have been sent before the tail of
  // the queued new data.
  auto repair_pos = std::find(sends.begin(), sends.end(), "REPA");
  ASSERT_NE(repair_pos, sends.end());
  const auto after_repair =
      std::count(repair_pos, sends.end(), std::string("DATA"));
  EXPECT_GT(after_repair, 0)
      << "repair should overtake at least some queued data";
  EXPECT_TRUE(s.agent_at(1).has_data(missing));
}

}  // namespace
}  // namespace srm
