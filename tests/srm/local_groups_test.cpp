// Tests for local recovery via separate multicast groups (Sec. VII-B.2).
#include "srm/local_groups.h"

#include <gtest/gtest.h>

#include <memory>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

constexpr net::GroupId kRecoveryBase = 1000;

SrmConfig cfg() {
  SrmConfig c;
  c.timers = TimerParams{1.0, 1.0, 1.0, 1.0};
  c.backoff_factor = 3.0;
  return c;
}

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

// A tail-circuit world: backbone chain 0..5, with members 4 and 5 behind a
// persistently lossy link (3,4).  Member 3 holds the data (upstream of the
// loss), so it is the natural repairer for the neighborhood.
struct TailWorld {
  explicit TailWorld(std::uint64_t seed)
      : session(topo::make_chain(6), all_nodes(6), {cfg(), seed, 1}) {
    for (net::NodeId n = 0; n < 6; ++n) {
      LocalGroupConfig lg;
      lg.losses_to_trigger = 3;
      lg.invite_ttl = 3;
      managers.push_back(std::make_unique<LocalGroupManager>(
          session.agent_at(n), lg, kRecoveryBase));
    }
  }
  harness::SimSession session;
  std::vector<std::unique_ptr<LocalGroupManager>> managers;
};

// Drops every 3rd data packet on (3,4), modelling persistent congestion.
class EveryThirdDrop final : public net::DropPolicy {
 public:
  bool should_drop(const net::Packet& p, const net::HopContext& hop) override {
    if (hop.from != 3 || hop.to != 4) return false;
    if (dynamic_cast<const DataMessage*>(p.payload.get()) == nullptr) {
      return false;
    }
    return ++count_ % 3 == 1;
  }

 private:
  int count_ = 0;
};

TEST(LocalGroupTest, RepeatedLossesCreateRecoveryGroup) {
  TailWorld w(7);
  w.session.network().set_drop_policy(std::make_shared<EveryThirdDrop>());
  const PageId page{0, 0};
  for (int i = 0; i < 12; ++i) {
    w.session.agent_at(0).send_data(page, {static_cast<uint8_t>(i)});
    w.session.queue().run();
  }
  const StreamKey stream{0, page};
  // Member 4 (first behind the lossy link) triggered a group...
  EXPECT_TRUE(w.managers[4]->in_recovery_group(stream) ||
              w.managers[5]->in_recovery_group(stream));
  std::size_t invites = 0, joins = 0;
  for (const auto& m : w.managers) {
    invites += m->invites_sent();
    joins += m->groups_joined();
  }
  EXPECT_GE(invites, 1u);
  EXPECT_GE(joins, 1u);  // at least the fellow loser or the repairer joined
  // ...and everything was still fully recovered.
  for (net::NodeId n = 1; n < 6; ++n) {
    for (SeqNo q = 0; q < 12; ++q) {
      EXPECT_TRUE(w.session.agent_at(n).has_data(DataName{0, page, q}))
          << n << " " << q;
    }
  }
}

TEST(LocalGroupTest, RecoveryTrafficConfinedToGroup) {
  TailWorld w(8);
  w.session.network().set_drop_policy(std::make_shared<EveryThirdDrop>());
  const PageId page{0, 0};
  // Warm up until the group exists.
  int sent = 0;
  const StreamKey stream{0, page};
  while (sent < 30 && !w.managers[4]->in_recovery_group(stream)) {
    w.session.agent_at(0).send_data(page, {static_cast<uint8_t>(sent++)});
    w.session.queue().run();
  }
  ASSERT_TRUE(w.managers[4]->in_recovery_group(stream));

  // From now on, count recovery traffic reaching far members (0 and 1).
  std::size_t far_recovery_deliveries = 0;
  w.session.network().set_delivery_observer(
      [&](const net::Packet& p, const net::DeliveryInfo& info) {
        const bool recovery =
            dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr ||
            dynamic_cast<const RepairMessage*>(p.payload.get()) != nullptr;
        if (recovery && info.receiver <= 1) ++far_recovery_deliveries;
      });
  for (int i = 0; i < 12; ++i) {
    w.session.agent_at(0).send_data(page, {static_cast<uint8_t>(sent + i)});
    w.session.queue().run();
  }
  // Requests for the lossy stream now ride the recovery group, whose
  // membership is {4, 5, 3}; members 0 and 1 hear none of it.
  EXPECT_EQ(far_recovery_deliveries, 0u);
  // And losses keep being repaired.
  for (SeqNo q = 0; q < static_cast<SeqNo>(sent + 12); ++q) {
    EXPECT_TRUE(w.session.agent_at(5).has_data(DataName{0, page, q})) << q;
  }
}

TEST(LocalGroupTest, InviteIgnoredByUnrelatedMembers) {
  TailWorld w(9);
  w.session.network().set_drop_policy(std::make_shared<EveryThirdDrop>());
  const PageId page{0, 0};
  for (int i = 0; i < 12; ++i) {
    w.session.agent_at(0).send_data(page, {static_cast<uint8_t>(i)});
    w.session.queue().run();
  }
  // Member 0 (the source, far upstream, no shared losses) must not have
  // joined anyone's recovery group as a loser.
  EXPECT_FALSE(w.managers[0]->in_recovery_group(StreamKey{0, page}));
}

TEST(LocalGroupTest, EscalationStillReachesTheWholeSession) {
  // If the recovery group lacks a member with the data, the backed-off
  // request escalates to the session group and recovery still completes.
  TailWorld w(10);
  const PageId page{0, 0};
  // Manually wire members 4 and 5 into a recovery group containing no
  // repairer, then lose a packet for them.
  w.session.agent_at(4).join_extra_group(kRecoveryBase + 99);
  w.session.agent_at(5).join_extra_group(kRecoveryBase + 99);
  w.session.agent_at(4).set_request_group_policy(
      [](const DataName&) { return kRecoveryBase + 99; });
  w.session.agent_at(5).set_request_group_policy(
      [](const DataName&) { return kRecoveryBase + 99; });
  w.session.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      3, 4, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  w.session.agent_at(0).send_data(page, {1});
  w.session.queue().schedule_after(
      1.0, [&] { w.session.agent_at(0).send_data(page, {2}); });
  w.session.queue().run();
  EXPECT_TRUE(w.session.agent_at(4).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(w.session.agent_at(5).has_data(DataName{0, page, 0}));
}

}  // namespace
}  // namespace srm
