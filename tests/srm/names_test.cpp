#include "srm/names.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace srm {
namespace {

TEST(NamesTest, EqualityAndOrdering) {
  const DataName a{1, PageId{1, 0}, 5};
  const DataName b{1, PageId{1, 0}, 5};
  const DataName c{1, PageId{1, 0}, 6};
  const DataName d{2, PageId{1, 0}, 5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
}

TEST(NamesTest, PageIdentityIncludesCreator) {
  const PageId p1{1, 0};
  const PageId p2{2, 0};
  EXPECT_NE(p1, p2);  // same number, different creator: different page
}

TEST(NamesTest, HashDistinguishesFields) {
  std::unordered_set<DataName> set;
  for (SourceId s = 0; s < 10; ++s) {
    for (SeqNo q = 0; q < 10; ++q) {
      set.insert(DataName{s, PageId{s, 0}, q});
    }
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(NamesTest, StreamKeyGroupsBySourceAndPage) {
  const DataName a{1, PageId{9, 2}, 5};
  const DataName b{1, PageId{9, 2}, 77};
  const DataName c{1, PageId{9, 3}, 5};
  EXPECT_EQ(stream_of(a), stream_of(b));
  EXPECT_NE(stream_of(a), stream_of(c));
}

TEST(NamesTest, ToStringIsReadable) {
  const DataName n{3, PageId{3, 1}, 42};
  EXPECT_EQ(to_string(n), "3:3/p1:42");
  EXPECT_EQ(to_string(PageId{7, 2}), "7/p2");
}

TEST(NamesTest, StreamKeyHashUsable) {
  std::unordered_set<StreamKey> set;
  set.insert(StreamKey{1, PageId{1, 0}});
  set.insert(StreamKey{1, PageId{1, 1}});
  set.insert(StreamKey{2, PageId{1, 0}});
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace srm
