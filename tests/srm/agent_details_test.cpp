// Fine-grained timing and bookkeeping tests for SrmAgent: exact timer
// values in deterministic configurations, hold-down windows, the
// ignore-backoff heuristic, advertised-max semantics, metrics, and the
// member directory.
#include <gtest/gtest.h>

#include <memory>

#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig det_cfg() {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
  return cfg;
}

// Captures (time, description) of every send.
struct SendLog {
  explicit SendLog(harness::SimSession& s) : session(&s) {
    s.network().set_send_observer([this](net::NodeId from,
                                         const net::Packet& p) {
      entries.push_back({session->queue().now(), from,
                         p.payload->describe()});
    });
  }
  struct Entry {
    double t;
    net::NodeId from;
    std::string what;
  };
  harness::SimSession* session;
  std::vector<Entry> entries;

  const Entry* find(const std::string& prefix, std::size_t nth = 0) const {
    std::size_t seen = 0;
    for (const auto& e : entries) {
      if (e.what.rfind(prefix, 0) == 0 && seen++ == nth) return &e;
    }
    return nullptr;
  }
};

TEST(AgentTimingTest, DeterministicRequestAndRepairInstants) {
  // Chain 0-1-2-3, drop on (1,2), source 0 sends at t=0 and t=1.
  // Node 2: detects at t=3 (seq1 arrives 1+2), request timer C1*d = 2,
  //   request at t=5.  Node 1 receives it at t=6, repair timer D1*d(1,2)=1,
  //   repair at t=7, reaching node 2 at t=8 and node 3 at t=9.
  harness::SimSession s(topo::make_chain(4), all_nodes(4), {det_cfg(), 1, 1});
  SendLog log(s);
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  const PageId page{0, 0};
  s.agent_at(0).send_data(page, {1});
  s.queue().schedule_after(1.0, [&] { s.agent_at(0).send_data(page, {2}); });
  s.queue().run();

  const auto* req = log.find("REQUEST");
  ASSERT_NE(req, nullptr);
  EXPECT_DOUBLE_EQ(req->t, 5.0);
  EXPECT_EQ(req->from, 2u);
  const auto* rep = log.find("REPAIR");
  ASSERT_NE(rep, nullptr);
  EXPECT_DOUBLE_EQ(rep->t, 7.0);
  EXPECT_EQ(rep->from, 1u);

  // Recovery delays: node 2 detected at 3, repaired at 8 (delay 5, RTT 4);
  // node 3 detected at 4, repaired at 9 (delay 5, RTT 6).
  const auto& m2 = s.agent_at(2).metrics();
  ASSERT_EQ(m2.recovery_delay_seconds.count(), 1u);
  EXPECT_DOUBLE_EQ(m2.recovery_delay_seconds.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(m2.recovery_delay_rtt.values()[0], 5.0 / 4.0);
  const auto& m3 = s.agent_at(3).metrics();
  EXPECT_DOUBLE_EQ(m3.recovery_delay_seconds.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(m3.recovery_delay_rtt.values()[0], 5.0 / 6.0);
}

TEST(AgentTimingTest, RequestDelayMetricNormalizedByRtt) {
  harness::SimSession s(topo::make_chain(4), all_nodes(4), {det_cfg(), 1, 1});
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  const PageId page{0, 0};
  s.agent_at(0).send_data(page, {1});
  s.queue().schedule_after(1.0, [&] { s.agent_at(0).send_data(page, {2}); });
  s.queue().run();
  // Node 2 sent its own request after exactly C1*d = 2s; its RTT is 4.
  const auto& m2 = s.agent_at(2).metrics();
  ASSERT_EQ(m2.request_delay_rtt.count(), 1u);
  EXPECT_DOUBLE_EQ(m2.request_delay_rtt.values()[0], 0.5);
  // Node 3's timer (3s) was reset by node 2's request arriving 1s after it
  // was sent, i.e. 3s after node 3 set its timer at detection... node 3
  // detects at t=4, sets timer for t=7; the request (t=5) arrives t=6:
  // delay 2s over RTT 6.
  const auto& m3 = s.agent_at(3).metrics();
  ASSERT_EQ(m3.request_delay_rtt.count(), 1u);
  EXPECT_DOUBLE_EQ(m3.request_delay_rtt.values()[0], 2.0 / 6.0);
}

TEST(AgentHolddownTest, WindowScalesWithDistanceToSource) {
  // After answering, node 1 ignores duplicate requests for 3*d(1, source)
  // = 3 seconds (d = 1).  A forged duplicate inside the window triggers
  // nothing; one after the window triggers a second repair.
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {det_cfg(), 4, 1});
  const PageId page{0, 0};
  const DataName name{0, page, 0};
  s.agent_at(0).seed_data(name, {7});
  s.agent_at(1).seed_data(name, {7});

  SendLog log(s);
  // Node 2 requests (via session message from node 1), gets the repair.
  s.agent_at(1).set_current_page(page);
  s.agent_at(1).send_session_message();
  s.queue().run();
  const std::size_t repairs_before = s.agent_at(1).metrics().repairs_sent;
  ASSERT_GE(repairs_before, 1u);

  // Duplicate request injected well after the hold-down expired: answered.
  s.queue().schedule_after(100.0, [&] {
    net::Packet p;
    p.group = 1;
    p.payload = std::make_shared<RequestMessage>(name, 2, 1.0, net::kMaxTtl);
    s.network().multicast(2, std::move(p));
  });
  s.queue().run();
  EXPECT_EQ(s.agent_at(1).metrics().repairs_sent +
                s.agent_at(0).metrics().repairs_sent,
            repairs_before + 1);
}

TEST(AgentIgnoreBackoffTest, SameIterationDuplicatesDoNotCascade) {
  // Two members miss the same packet and both request near-simultaneously.
  // With the heuristic, hearing the other's request inside the ignore
  // window must not push the backed-off timer further out.
  for (bool heuristic : {true, false}) {
    auto star = topo::make_star(4);
    SrmConfig cfg;
    cfg.timers = TimerParams{1.0, 0.1, 1.0, 5.0};
    cfg.ignore_backoff_heuristic = heuristic;
    harness::SimSession s(star.topo, star.leaves, {cfg, 6, 1});
    s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
        star.leaves[0], star.center, [](const net::Packet& p) {
          const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
          return d != nullptr && d->name().seq == 0;
        }));
    const PageId page{static_cast<SourceId>(star.leaves[0]), 0};
    s.agent_at(star.leaves[0]).send_data(page, {1});
    s.queue().schedule_after(
        1.0, [&] { s.agent_at(star.leaves[0]).send_data(page, {2}); });
    s.queue().run();
    // Either way everyone recovers; the heuristic affects only dynamics.
    for (std::size_t i = 1; i < star.leaves.size(); ++i) {
      EXPECT_TRUE(s.agent_at(star.leaves[i]).has_data(DataName{
          static_cast<SourceId>(star.leaves[0]), page, 0}))
          << "heuristic=" << heuristic;
    }
  }
}

TEST(AgentStateTest, AdvertisedMaxTracksAllEvidence) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {det_cfg(), 2, 1});
  const PageId page{0, 0};
  const StreamKey stream{0, page};
  EXPECT_FALSE(s.agent_at(1).advertised_max(stream).has_value());
  s.agent_at(0).send_data(page, {});
  s.queue().run();
  EXPECT_EQ(s.agent_at(1).advertised_max(stream), SeqNo{0});
  s.agent_at(0).send_data(page, {});
  s.agent_at(0).send_data(page, {});
  s.queue().run();
  EXPECT_EQ(s.agent_at(1).advertised_max(stream), SeqNo{2});
}

TEST(AgentStateTest, FindDataReturnsStoredBytes) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {det_cfg(), 2, 1});
  const PageId page{0, 0};
  const DataName n = s.agent_at(0).send_data(page, {5, 6, 7});
  s.queue().run();
  const Payload* p = s.agent_at(1).find_data(n);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (Payload{5, 6, 7}));
  EXPECT_EQ(s.agent_at(1).find_data(DataName{0, page, 99}), nullptr);
}

TEST(AgentStateTest, SupplyDataCancelsPendingRequest) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {det_cfg(), 3, 1});
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  const PageId page{0, 0};
  const DataName missing{0, page, 0};
  s.agent_at(0).send_data(page, {1});
  s.agent_at(0).send_data(page, {2});
  // Run only until node 2 has detected the loss (t=2) but not yet
  // requested (its timer fires at t=4; run_until is inclusive).
  s.queue().run_until(3.5);
  ASSERT_TRUE(s.agent_at(2).request_pending(missing));
  s.agent_at(2).supply_data(missing, {1});
  EXPECT_FALSE(s.agent_at(2).request_pending(missing));
  EXPECT_TRUE(s.agent_at(2).has_data(missing));
  EXPECT_EQ(s.agent_at(2).metrics().recoveries, 1u);
  s.queue().run();
  EXPECT_EQ(s.agent_at(2).metrics().requests_sent, 0u);
}

TEST(MemberDirectoryTest, BindLookupUnbind) {
  MemberDirectory dir;
  dir.bind(10, 3);
  dir.bind(20, 5);
  EXPECT_EQ(dir.node_of(10), 3u);
  EXPECT_EQ(dir.source_at(5), std::optional<SourceId>(20));
  EXPECT_EQ(dir.members(), (std::vector<SourceId>{10, 20}));
  dir.unbind(10);
  EXPECT_THROW(dir.node_of(10), std::out_of_range);
  EXPECT_FALSE(dir.source_at(3).has_value());
  dir.unbind(10);  // double unbind is a no-op
}

TEST(MemberDirectoryTest, RebindMovesNode) {
  // A member quits and rejoins from a different host, keeping its
  // persistent Source-ID (Sec. II-C).
  MemberDirectory dir;
  dir.bind(7, 1);
  dir.bind(7, 4);
  EXPECT_EQ(dir.node_of(7), 4u);
}

TEST(AgentLifecycleTest, StopCancelsOutstandingTimers) {
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {det_cfg(), 9, 1});
  s.network().set_drop_policy(std::make_shared<net::ScriptedLinkDrop>(
      1, 2, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      }));
  const PageId page{0, 0};
  s.agent_at(0).send_data(page, {1});
  s.agent_at(0).send_data(page, {2});
  s.queue().run_until(3.5);  // node 2 has a pending request timer
  ASSERT_TRUE(s.agent_at(2).request_pending(DataName{0, page, 0}));
  s.agent_at(2).stop();
  s.queue().run();  // must not fire the cancelled timer or crash
  EXPECT_EQ(s.agent_at(2).metrics().requests_sent, 0u);
}

}  // namespace
}  // namespace srm
