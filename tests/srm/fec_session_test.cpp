// FecSession: generation framing, local reconstruction with zero control
// traffic, the loss-adaptive parity budget end to end, parallel-kernel
// trace determinism, and the Gilbert-Elliott burst integration
// (ARCHITECTURE.md §11).
#include "srm/fec/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/session.h"
#include "net/drop_policy.h"
#include "srm/config.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace srm::fec {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig cfg() {
  SrmConfig c;
  c.timers = TimerParams{2.0, 2.0, 1.0, 1.0};
  c.backoff_factor = 3.0;
  return c;
}

FecConfig fec_cfg(std::size_t generation_size, std::size_t initial_k) {
  FecConfig f;
  f.enabled = true;
  f.generation_size = generation_size;
  f.initial_k = initial_k;
  return f;
}

// Drops DataMessages whose seq is in `seqs` on the directed link from->to.
std::shared_ptr<net::ScriptedLinkDrop> drop_seqs(net::NodeId from,
                                                 net::NodeId to,
                                                 std::vector<SeqNo> seqs) {
  const std::size_t max_drops = seqs.size();
  return std::make_shared<net::ScriptedLinkDrop>(
      from, to,
      [seqs = std::move(seqs)](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && std::find(seqs.begin(), seqs.end(),
                                         d->name().seq) != seqs.end();
      },
      max_drops);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(FecFramingTest, DataRoundTrip) {
  const Payload app{9, 8, 7};
  const Payload frame = FecSession::frame_data(/*gen=*/5, /*idx=*/2, app);
  const auto back = FecSession::parse_data(frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->gen, 5u);
  EXPECT_EQ(back->idx, 2u);
  EXPECT_EQ(back->payload, app);
  // Empty payload is legal.
  const auto empty = FecSession::parse_data(FecSession::frame_data(0, 0, {}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->payload.empty());
}

TEST(FecFramingTest, ParityRoundTrip) {
  ParityFrame pf;
  pf.scheme = kSchemeGf256;
  pf.j = 1;
  pf.k = 3;
  pf.gen = 42;
  pf.n = 7;
  pf.base_seq = 1234567890123ULL;
  pf.padded_len = 5;
  pf.body = {1, 2, 3, 4, 5};
  const auto back = FecSession::parse_parity(FecSession::frame_parity(pf));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scheme, pf.scheme);
  EXPECT_EQ(back->j, pf.j);
  EXPECT_EQ(back->k, pf.k);
  EXPECT_EQ(back->gen, pf.gen);
  EXPECT_EQ(back->n, pf.n);
  EXPECT_EQ(back->base_seq, pf.base_seq);
  EXPECT_EQ(back->padded_len, pf.padded_len);
  EXPECT_EQ(back->body, pf.body);
}

TEST(FecFramingTest, RejectsMalformedFrames) {
  EXPECT_FALSE(FecSession::parse_data({}).has_value());
  EXPECT_FALSE(FecSession::parse_data({0xFF, 1, 2}).has_value());
  // Truncated data frame (len field says 4, only 2 bytes follow).
  Payload truncated = FecSession::frame_data(0, 0, {1, 2, 3, 4});
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(FecSession::parse_data(truncated).has_value());

  EXPECT_FALSE(FecSession::parse_parity({}).has_value());
  ParityFrame pf;
  pf.k = 2;
  pf.n = 1;
  pf.padded_len = 1;
  pf.body = {0};
  pf.j = 2;  // j >= k
  EXPECT_FALSE(FecSession::parse_parity(FecSession::frame_parity(pf)));
  pf.j = 0;
  pf.k = static_cast<std::uint8_t>(kMaxParity + 1);
  EXPECT_FALSE(FecSession::parse_parity(FecSession::frame_parity(pf)));
  pf.k = 2;
  Payload bad_len = FecSession::frame_parity(pf);
  bad_len.push_back(0);  // body longer than padded_len
  EXPECT_FALSE(FecSession::parse_parity(bad_len).has_value());
}

// ---------------------------------------------------------------------------
// Delivery and reconstruction
// ---------------------------------------------------------------------------

TEST(FecSessionTest, DeliversAppPayloadsAndHidesParity) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 1, 1});
  FecSession tx(s.agent_at(0), fec_cfg(2, 1));
  FecSession rx(s.agent_at(1), fec_cfg(2, 1));
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  const PageId page{0, 0};
  for (int i = 0; i < 4; ++i) {
    tx.send(page, {static_cast<std::uint8_t>(10 + i)});
  }
  s.queue().run();
  // Seqs 0,1 data; 2 parity; 3,4 data; 5 parity.
  EXPECT_EQ(tx.stats().parity_sent, 2u);
  EXPECT_EQ(tx.stats().generations_sealed, 2u);
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered.at(0), (Payload{10}));
  EXPECT_EQ(delivered.at(1), (Payload{11}));
  EXPECT_EQ(delivered.at(3), (Payload{12}));
  EXPECT_EQ(delivered.at(4), (Payload{13}));
  EXPECT_EQ(delivered.count(2), 0u);  // parity invisible to the app
}

TEST(FecSessionTest, ForeignPayloadsPassThroughUnframed) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 2, 1});
  FecSession rx(s.agent_at(1), fec_cfg(2, 1));
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  // A sender without the FEC wrapper (or harness-seeded traffic).
  s.agent_at(0).send_data(PageId{0, 0}, Payload{0x01, 0x02});
  s.queue().run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.at(0), (Payload{0x01, 0x02}));
}

TEST(FecSessionTest, XorReconstructionWithZeroControlTraffic) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 3, 1});
  FecSession tx(s.agent_at(0), fec_cfg(2, 1));
  FecSession rx(s.agent_at(1), fec_cfg(2, 1));
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  const PageId page{0, 0};
  s.network().set_drop_policy(drop_seqs(0, 1, {1}));
  tx.send(page, {0xA0});
  tx.send(page, {0xA1, 0xA1, 0xA1});  // dropped; longer than its peer
  s.queue().run();
  EXPECT_EQ(rx.stats().reconstructions, 1u);
  ASSERT_EQ(delivered.count(1), 1u);
  EXPECT_EQ(delivered.at(1), (Payload{0xA1, 0xA1, 0xA1}));
  EXPECT_EQ(s.agent_at(1).metrics().requests_sent, 0u);
  EXPECT_EQ(s.agent_at(0).metrics().repairs_sent, 0u);
  EXPECT_EQ(s.agent_at(1).metrics().recoveries, 1u);
  EXPECT_EQ(s.agent_at(1).metrics().fec_reconstructions, 1u);
}

TEST(FecSessionTest, TwoErasuresRepairedByGf256Parities) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 4, 1});
  FecSession tx(s.agent_at(0), fec_cfg(3, 2));
  FecSession rx(s.agent_at(1), fec_cfg(3, 2));
  std::map<SeqNo, Payload> delivered;
  rx.set_data_handler([&](const DataName& n, const Payload& p, bool) {
    delivered[n.seq] = p;
  });
  const PageId page{0, 0};
  // Gen 0: seqs 0,1,2 data; 3,4 parity (scheme 1).  Drop two data ADUs —
  // beyond what one XOR parity could ever repair.
  s.network().set_drop_policy(drop_seqs(0, 1, {0, 2}));
  tx.send(page, {0xB0, 0xB0});
  tx.send(page, {0xB1});
  tx.send(page, {0xB2, 0xB2, 0xB2});
  s.queue().run();
  EXPECT_EQ(rx.stats().reconstructions, 2u);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered.at(0), (Payload{0xB0, 0xB0}));
  EXPECT_EQ(delivered.at(2), (Payload{0xB2, 0xB2, 0xB2}));
  EXPECT_EQ(s.agent_at(1).metrics().requests_sent, 0u);
}

TEST(FecSessionTest, OneParityStreamRepairsDistinctLossesAtDistinctReceivers) {
  // The FEC headline: node 1 misses seq 0, node 2 misses seqs 0 AND 1, and
  // the same multicast parity pair repairs both — different erasures at
  // different receivers, no requests, no repairs.
  harness::SimSession s(topo::make_chain(3), all_nodes(3), {cfg(), 5, 1});
  FecSession tx(s.agent_at(0), fec_cfg(2, 2));
  FecSession rx1(s.agent_at(1), fec_cfg(2, 2));
  FecSession rx2(s.agent_at(2), fec_cfg(2, 2));
  const PageId page{0, 0};
  auto drops = std::make_shared<net::CompositeDrop>();
  drops->add(drop_seqs(0, 1, {0}));  // 1 and 2 lose seq 0
  drops->add(drop_seqs(1, 2, {1}));  // 2 additionally loses seq 1
  s.network().set_drop_policy(drops);
  tx.send(page, {0xC0});
  tx.send(page, {0xC1, 0xC1});  // seals: parities at seqs 2 and 3
  s.queue().run();
  EXPECT_EQ(rx1.stats().reconstructions, 1u);
  EXPECT_EQ(rx2.stats().reconstructions, 2u);
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(s.agent_at(2).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(s.agent_at(2).has_data(DataName{0, page, 1}));
  for (std::size_t i = 0; i < s.member_count(); ++i) {
    EXPECT_EQ(s.agent(i).metrics().requests_sent, 0u) << "member " << i;
    EXPECT_EQ(s.agent(i).metrics().repairs_sent, 0u) << "member " << i;
  }
}

TEST(FecSessionTest, GenerationWithAllDataLostAnchorsAtBaseSeq) {
  // The receiver sees ONLY the two parity frames; base_seq carried on the
  // parity lets it name and supply both reconstructed ADUs.
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 6, 1});
  FecSession tx(s.agent_at(0), fec_cfg(2, 2));
  FecSession rx(s.agent_at(1), fec_cfg(2, 2));
  const PageId page{0, 0};
  s.network().set_drop_policy(drop_seqs(0, 1, {0, 1}));
  tx.send(page, {0xD0});
  tx.send(page, {0xD1});
  s.queue().run();
  EXPECT_EQ(rx.stats().reconstructions, 2u);
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 1}));
  EXPECT_EQ(s.agent_at(1).metrics().requests_sent, 0u);
}

TEST(FecSessionTest, FallsThroughToSrmWhenErasuresExceedParity) {
  // Two erasures, one XOR parity: the code cannot cover it, SRM requests
  // fire, and once SRM has repaired one ADU the parity finishes the other
  // — the schemes compose exactly as parity.h's did.
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 7, 1});
  FecSession tx(s.agent_at(0), fec_cfg(3, 1));
  FecSession rx(s.agent_at(1), fec_cfg(3, 1));
  const PageId page{0, 0};
  s.network().set_drop_policy(drop_seqs(0, 1, {0, 1}));
  tx.send(page, {0x01});
  tx.send(page, {0x02});
  tx.send(page, {0x03});
  s.queue().run();
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 0}));
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 1}));
  EXPECT_GE(s.agent_at(1).metrics().requests_sent, 1u);
  EXPECT_LE(rx.stats().reconstructions, 1u);
}

TEST(FecSessionTest, FlushSealsShortGeneration) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 8, 1});
  FecSession tx(s.agent_at(0), fec_cfg(4, 1));
  FecSession rx(s.agent_at(1), fec_cfg(4, 1));
  const PageId page{0, 0};
  s.network().set_drop_policy(drop_seqs(0, 1, {0}));
  tx.send(page, {0xE0, 0xE1});
  tx.flush(page);  // n = 1 generation: the parity alone rebuilds the ADU
  s.queue().run();
  EXPECT_EQ(tx.stats().generations_sealed, 1u);
  EXPECT_EQ(tx.stats().parity_sent, 1u);
  EXPECT_EQ(rx.stats().reconstructions, 1u);
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 0}));
  // flush() with nothing pending is a no-op.
  tx.flush(page);
  EXPECT_EQ(tx.stats().generations_sealed, 1u);
}

// ---------------------------------------------------------------------------
// Adaptive budget, end to end
// ---------------------------------------------------------------------------

TEST(FecSessionTest, RequestsHeardRaiseTheParityBudget) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 9, 1});
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));
  tracer.set_sink(&sink);
  s.set_tracer(&tracer);
  FecConfig fc = fec_cfg(2, /*initial_k=*/0);  // quiet link: no parity
  FecSession tx(s.agent_at(0), fc);
  FecSession rx(s.agent_at(1), fc);
  const PageId page{0, 0};
  s.network().set_drop_policy(drop_seqs(0, 1, {1}));
  // Gen 0 (unprotected, K == 0): seq 1 is lost; the receiver can only use
  // SRM, whose request the sender hears — that is the loss evidence.
  tx.send(page, {0x10});
  tx.send(page, {0x11});
  // Gen 1's first ADU reveals the gap to the receiver; its request arrives
  // at the sender well before the second ADU seals the generation, so the
  // seal sees the evidence and re-arms K to 1.
  s.queue().schedule_after(50.0, [&] { tx.send(page, {0x12}); });
  s.queue().schedule_after(90.0, [&] { tx.send(page, {0x13}); });
  s.queue().run();
  EXPECT_EQ(tx.stats().parity_sent, 0u);  // both gens sealed at K == 0
  EXPECT_EQ(tx.stats().budget_raises, 1u);
  EXPECT_EQ(tx.current_k(page), 1u);
  EXPECT_GE(s.agent_at(1).metrics().requests_sent, 1u);  // SRM did the work
  std::size_t raises = 0;
  for (const auto& e : sink.events()) {
    if (e.type == trace::EventType::kSrmFecBudgetRaise) {
      ++raises;
      EXPECT_EQ(e.e, 1u);          // k_new
      EXPECT_EQ(e.x, 0.0);         // k_old
      EXPECT_GE(e.y, 1.0);         // evidence count
      EXPECT_EQ(e.actor, 0u);      // the sender
    }
  }
  EXPECT_EQ(raises, 1u);
}

TEST(FecSessionTest, QuietGenerationsDecayTheBudgetToZero) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 10, 1});
  FecConfig fc = fec_cfg(2, /*initial_k=*/2);
  fc.decay_after_quiet = 1;
  FecSession tx(s.agent_at(0), fc);
  FecSession rx(s.agent_at(1), fc);
  const PageId page{0, 0};
  for (int i = 0; i < 6; ++i) {
    tx.send(page, {static_cast<std::uint8_t>(i)});
  }
  s.queue().run();
  // Gen 0 at K=2, gen 1 at K=1, gen 2 at K=0: 3 parities total.
  EXPECT_EQ(tx.stats().parity_sent, 3u);
  EXPECT_EQ(tx.stats().budget_decays, 2u);
  EXPECT_EQ(tx.current_k(page), 0u);
}

// ---------------------------------------------------------------------------
// Parallel-kernel determinism
// ---------------------------------------------------------------------------

std::vector<trace::Event> run_traced_fec(unsigned kernel_threads) {
  harness::SimSession s(topo::make_chain(4), all_nodes(4),
                        {cfg(), 11, 1, kernel_threads, /*kernel_regions=*/2});
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_mask(trace::kMaskAll);
  tracer.set_sink(&sink);
  s.set_tracer(&tracer);
  std::vector<std::unique_ptr<FecSession>> sessions;
  for (net::NodeId n : s.member_nodes()) {
    sessions.push_back(
        std::make_unique<FecSession>(s.agent_at(n), fec_cfg(2, 2)));
  }
  const PageId page{0, 0};
  auto drops = std::make_shared<net::CompositeDrop>();
  drops->add(drop_seqs(0, 1, {0}));
  drops->add(drop_seqs(2, 3, {1}));
  s.network().set_drop_policy(drops);
  sessions[0]->send(page, {0x21});
  sessions[0]->send(page, {0x22, 0x23});
  s.run();
  return sink.events();
}

TEST(FecSessionTest, TracesBitIdenticalAcrossKernelThreads) {
  const auto reference = run_traced_fec(1);
  ASSERT_FALSE(reference.empty());
  // The run must actually exercise the FEC paths being checked.
  EXPECT_TRUE(std::any_of(reference.begin(), reference.end(),
                          [](const trace::Event& e) {
                            return e.type ==
                                   trace::EventType::kSrmFecReconstruct;
                          }));
  for (unsigned threads : {2u, 8u}) {
    const auto events = run_traced_fec(threads);
    ASSERT_EQ(events.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i], reference[i])
          << "event " << i << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault-plan integration
// ---------------------------------------------------------------------------

TEST(FecSessionTest, BurstEpochFloorsBudgetAndCheckerPasses) {
  harness::SimSession s(topo::make_chain(2), all_nodes(2), {cfg(), 12, 1});
  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  tracer.set_sink(&sink);
  s.set_tracer(&tracer);

  FecConfig fc = fec_cfg(2, /*initial_k=*/1);
  fc.decay_after_quiet = 1;
  FecSession tx(s.agent_at(0), fc);
  FecSession rx(s.agent_at(1), fc);
  const PageId page{0, 0};

  // The plan's epoch markers drive the budget; the loss probabilities are
  // zero so the damage below is fully scripted (deterministic).
  net::GilbertElliottDrop::Params ge;
  ge.loss_good = 0.0;
  ge.loss_bad = 0.0;
  fault::FaultPlan plan;
  plan.burst_on(5.0, ge);
  plan.burst_off(40.0);
  fault::FaultInjector injector(s.queue(), s.mutable_topology(), s.network(),
                                std::move(plan), util::Rng(12));
  injector.set_tracer(s.control_tracer());
  injector.set_epoch_observer(
      [&](bool active, const net::GilbertElliottDrop::Params&) {
        tx.set_burst_epoch(active);
        rx.set_burst_epoch(active);
      });
  injector.arm();

  // A consecutive two-ADU loss: exactly the burst pattern K == 1 XOR parity
  // cannot repair, and exactly what the epoch floor (K = 2) covers.
  s.network().set_drop_policy(drop_seqs(0, 1, {3, 4}));

  // t=1 (pre-burst): gen 0 seals at K=1, then decays to 0 (quiet).
  s.queue().schedule_after(1.0, [&] {
    tx.send(page, {0x30});
    tx.send(page, {0x31});
  });
  // t=10 (burst active): the epoch floored K to 2, so gen 1 carries two
  // GF(256) parities (seqs 5,6) that repair the scripted double loss.
  s.queue().schedule_after(10.0, [&] {
    EXPECT_TRUE(tx.burst_epoch_active());
    EXPECT_EQ(tx.current_k(page), 2u);
    tx.send(page, {0x32});
    tx.send(page, {0x33});
  });
  // t=50/60 (post-burst, quiet): K decays 2 -> 1 -> 0.
  s.queue().schedule_after(50.0, [&] {
    tx.send(page, {0x34});
    tx.send(page, {0x35});
  });
  s.queue().schedule_after(60.0, [&] {
    tx.send(page, {0x36});
    tx.send(page, {0x37});
  });
  s.queue().run();

  EXPECT_EQ(rx.stats().reconstructions, 2u);
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 3}));
  EXPECT_TRUE(s.agent_at(1).has_data(DataName{0, page, 4}));
  EXPECT_EQ(s.agent_at(1).metrics().requests_sent, 0u);
  EXPECT_EQ(tx.current_k(page), 0u);
  EXPECT_FALSE(tx.burst_epoch_active());
  EXPECT_GE(tx.stats().budget_decays, 3u);  // pre-burst + two post-burst

  // Every loss in the trace recovered within the checker's deadline, with
  // zero request/repair traffic for the burst generation.
  const auto report = fault::RecoveryInvariantChecker().check(
      sink.events(), injector.disruption_windows(), s.now());
  EXPECT_TRUE(report.passed) << report.summary();
  // The trace shows the whole story: epoch markers and FEC reconstructions.
  bool saw_burst_on = false, saw_reconstruct = false;
  for (const auto& e : sink.events()) {
    saw_burst_on |= e.type == trace::EventType::kFaultBurstOn;
    saw_reconstruct |= e.type == trace::EventType::kSrmFecReconstruct;
  }
  EXPECT_TRUE(saw_burst_on);
  EXPECT_TRUE(saw_reconstruct);
}

}  // namespace
}  // namespace srm::fec
