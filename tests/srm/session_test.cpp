#include "srm/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "topo/builders.h"
#include "harness/session.h"
#include "util/rng.h"

namespace srm {
namespace {

// --- DistanceEstimator algebra, directly -----------------------------------

TEST(DistanceEstimatorTest, TwoWayExchangeYieldsOneWayDelay) {
  sim::EventQueue q;
  // Hosts with wildly different clock offsets; true one-way delay is 3s.
  sim::LocalClock clock_a(q, 500.0);
  sim::LocalClock clock_b(q, -200.0);
  DistanceEstimator est_a(clock_a);
  DistanceEstimator est_b(clock_b);
  const SourceId A = 1, B = 2;

  // t = 0: A sends a session packet stamped with its clock.
  SessionMessage from_a(A, clock_a.now(), {}, {});
  // t = 3: B receives it.
  q.schedule_at(3.0, [&] { est_b.on_session_message(from_a, B); });
  // t = 10: B replies, echoing A's timestamp with its 7s hold time.
  std::shared_ptr<SessionMessage> from_b;
  q.schedule_at(10.0, [&] {
    from_b = std::make_shared<SessionMessage>(B, clock_b.now(),
                                              SessionMessage::StateReport{},
                                              est_b.build_echoes());
  });
  // t = 13: A receives the reply and can now estimate d = (13 - 0 - 7)/2 = 3.
  q.schedule_at(13.0, [&] { est_a.on_session_message(*from_b, A); });
  q.run();
  ASSERT_EQ(from_b->echoes().count(A), 1u);
  EXPECT_DOUBLE_EQ(from_b->echoes().at(A).hold_time, 7.0);

  const auto d = est_a.distance(B);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 3.0, 1e-9);
}

TEST(DistanceEstimatorTest, NoEstimateBeforeEcho) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  SessionMessage msg(2, 0.0, {}, {});
  est.on_session_message(msg, 1);
  EXPECT_FALSE(est.distance(2).has_value());
  EXPECT_EQ(est.peers_heard(), 1u);
}

TEST(DistanceEstimatorTest, NegativeArtifactsClampToZero) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  // Echo claims a hold time larger than the elapsed time: clamp, not negative.
  SessionMessage::Echoes echoes;
  echoes[1] = SessionMessage::Echo{0.0, 50.0};
  q.schedule_at(10.0, [&] {
    SessionMessage msg(2, 0.0, {}, echoes);
    est.on_session_message(msg, 1);
  });
  q.run();
  ASSERT_TRUE(est.distance(2).has_value());
  EXPECT_GE(*est.distance(2), 0.0);
}

TEST(DistanceEstimatorTest, EstimatesIndependentOfClockSkew) {
  // Run the identical two-way exchange under wildly different clock offsets;
  // the NTP-lite algebra (Sec. III-A) cancels offsets, so the estimate must
  // not move.
  const auto estimate_with_offsets = [](double offset_a, double offset_b) {
    sim::EventQueue q;
    sim::LocalClock clock_a(q, offset_a);
    sim::LocalClock clock_b(q, offset_b);
    DistanceEstimator est_a(clock_a);
    DistanceEstimator est_b(clock_b);
    SessionMessage from_a(1, clock_a.now(), {}, {});
    q.schedule_at(2.5, [&] { est_b.on_session_message(from_a, 2); });
    std::shared_ptr<SessionMessage> from_b;
    q.schedule_at(9.0, [&] {
      from_b = std::make_shared<SessionMessage>(
          2, clock_b.now(), SessionMessage::StateReport{}, est_b.build_echoes());
    });
    q.schedule_at(11.5, [&] { est_a.on_session_message(*from_b, 1); });
    q.run();
    return est_a.distance(2);
  };
  const auto plain = estimate_with_offsets(0.0, 0.0);
  const auto skewed = estimate_with_offsets(1.0e6, -3141.5);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(skewed.has_value());
  EXPECT_DOUBLE_EQ(*plain, *skewed);
  EXPECT_NEAR(*plain, 2.5, 1e-9);
}

TEST(DistanceEstimatorTest, EchoRotationWindowsRotateAndStaySorted) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  // Hear five peers (deliberately out of id order).
  for (SourceId peer : {30u, 10u, 50u, 20u, 40u}) {
    SessionMessage msg(peer, 0.0, {}, {});
    est.on_session_message(msg, 1);
  }
  ASSERT_EQ(est.peers_heard(), 5u);

  const auto keys_of = [](const SessionMessage::Echoes& e) {
    std::vector<SourceId> keys;
    for (const auto& [peer, echo] : e) keys.push_back(peer);
    return keys;
  };
  // K = 0 (the default) echoes everyone, in ascending id order.
  EXPECT_EQ(keys_of(est.build_echoes()),
            (std::vector<SourceId>{10, 20, 30, 40, 50}));
  // K = 2 walks a rotating window over the heard list; each table is still
  // sorted (the wrapped half is emitted first) and four builds cover every
  // peer at least once.
  EXPECT_EQ(keys_of(est.build_echoes(2)), (std::vector<SourceId>{10, 20}));
  EXPECT_EQ(keys_of(est.build_echoes(2)), (std::vector<SourceId>{30, 40}));
  EXPECT_EQ(keys_of(est.build_echoes(2)), (std::vector<SourceId>{10, 50}));
  EXPECT_EQ(keys_of(est.build_echoes(2)), (std::vector<SourceId>{20, 30}));
  // A cap at or above the heard count degenerates to echo-everyone.
  EXPECT_EQ(keys_of(est.build_echoes(9)),
            (std::vector<SourceId>{10, 20, 30, 40, 50}));
}

TEST(DistanceEstimatorTest, MatchesMapBasedReferenceOnRecordedExchange) {
  // Reference implementation: the std::map-based estimator this PR replaced,
  // transcribed directly.  Replay one recorded randomized exchange through
  // both and require identical observable state.
  struct RefEstimator {
    struct Peer {
      double timestamp = 0.0;
      double arrival = 0.0;
    };
    std::map<SourceId, Peer> peers;
    std::map<SourceId, double> estimates;

    void on_session_message(const SessionMessage& msg, SourceId self,
                            double now) {
      Peer& p = peers[msg.sender()];
      p.timestamp = msg.sender_timestamp();
      p.arrival = now;
      const auto echo = msg.echoes().find(self);
      if (echo != msg.echoes().end()) {
        const double rtt =
            now - echo->second.peer_timestamp - echo->second.hold_time;
        estimates[msg.sender()] = std::max(0.0, rtt / 2.0);
      }
    }
    std::map<SourceId, SessionMessage::Echo> build_echoes(double now) const {
      std::map<SourceId, SessionMessage::Echo> out;
      for (const auto& [id, p] : peers) {
        out[id] = SessionMessage::Echo{p.timestamp, now - p.arrival};
      }
      return out;
    }
  };

  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  RefEstimator ref;
  const SourceId self = 5;
  util::Rng rng(99);

  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.uniform(0.01, 2.0);
    const auto sender = static_cast<SourceId>(rng.index(12));
    const double sender_ts = rng.uniform(0.0, 50.0);
    SessionMessage::Echoes echoes;
    if (rng.index(3) != 0) {
      // Echo for us, sometimes with a pathological hold time to exercise
      // the clamp in both implementations.
      echoes[self] = SessionMessage::Echo{rng.uniform(0.0, t),
                                          rng.uniform(0.0, t + 10.0)};
    }
    q.schedule_at(t, [&est, &ref, &q, sender, sender_ts, echoes] {
      SessionMessage msg(sender, sender_ts, {}, echoes);
      est.on_session_message(msg, self);
      ref.on_session_message(msg, self, q.now());
    });
  }
  const double t_end = t + 1.0;
  q.schedule_at(t_end, [&] {
    // Per-peer estimates match the reference exactly (bit-for-bit).
    for (SourceId peer = 0; peer < 12; ++peer) {
      const auto got = est.distance(peer);
      const auto want = ref.estimates.find(peer);
      if (want == ref.estimates.end()) {
        EXPECT_FALSE(got.has_value()) << "peer " << peer;
      } else {
        ASSERT_TRUE(got.has_value()) << "peer " << peer;
        EXPECT_DOUBLE_EQ(*got, want->second) << "peer " << peer;
      }
    }
    // The echo table we would send next matches entry-for-entry, in the
    // same iteration order.
    const auto ref_echoes = ref.build_echoes(q.now());
    const auto flat_echoes = est.build_echoes();
    ASSERT_EQ(flat_echoes.size(), ref_echoes.size());
    auto fit = flat_echoes.begin();
    for (const auto& [peer, echo] : ref_echoes) {
      EXPECT_EQ(fit->first, peer);
      EXPECT_DOUBLE_EQ(fit->second.peer_timestamp, echo.peer_timestamp);
      EXPECT_DOUBLE_EQ(fit->second.hold_time, echo.hold_time);
      ++fit;
    }
  });
  q.run();
  EXPECT_EQ(est.peers_heard(), ref.peers.size());
}

// --- End-to-end: agents exchanging real session messages --------------------

TEST(SessionIntegrationTest, EstimatesConvergeToOracleOnChain) {
  SrmConfig cfg;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.session.enabled = false;  // messages sent manually below

  auto topo = topo::make_chain(5);
  harness::SimSession s(std::move(topo), {0, 1, 2, 3, 4},
                        {cfg, /*seed=*/7, /*group=*/1});

  // Two full rounds of session messages so everyone has echoed everyone.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < s.member_count(); ++i) {
      s.agent(i).send_session_message();
      s.queue().run();
    }
  }

  for (std::size_t i = 0; i < s.member_count(); ++i) {
    for (std::size_t j = 0; j < s.member_count(); ++j) {
      if (i == j) continue;
      const double est = s.agent(i).distance_to(s.agent(j).id());
      const double oracle =
          s.network().distance(s.agent(i).node(), s.agent(j).node());
      EXPECT_NEAR(est, oracle, 1e-9) << i << " -> " << j;
    }
  }
}

TEST(SessionIntegrationTest, EchoRotationStillConvergesToOracle) {
  // With echoes capped at 2 peers per session message, full coverage takes
  // more rounds, but every pair still converges to the oracle distance.
  SrmConfig cfg;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.session.enabled = false;  // messages sent manually below
  cfg.session.echo_rotation = 2;

  auto topo = topo::make_chain(5);
  harness::SimSession s(std::move(topo), {0, 1, 2, 3, 4},
                        {cfg, /*seed=*/7, /*group=*/1});

  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = 0; i < s.member_count(); ++i) {
      s.agent(i).send_session_message();
      s.queue().run();
    }
  }

  for (std::size_t i = 0; i < s.member_count(); ++i) {
    for (std::size_t j = 0; j < s.member_count(); ++j) {
      if (i == j) continue;
      const double est = s.agent(i).distance_to(s.agent(j).id());
      const double oracle =
          s.network().distance(s.agent(i).node(), s.agent(j).node());
      EXPECT_NEAR(est, oracle, 1e-9) << i << " -> " << j;
    }
  }
}

TEST(SessionIntegrationTest, UnknownPeerFallsBackToDefault) {
  SrmConfig cfg;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.default_distance = 42.0;
  auto topo = topo::make_chain(3);
  harness::SimSession s(std::move(topo), {0, 2}, {cfg, 7, 1});
  EXPECT_DOUBLE_EQ(s.agent(0).distance_to(s.agent(1).id()), 42.0);
}

TEST(SessionIntegrationTest, SessionMessagesAnnounceStreamState) {
  SrmConfig cfg;
  auto topo = topo::make_chain(3);
  harness::SimSession s(std::move(topo), {0, 1, 2}, {cfg, 7, 1});

  const PageId page{0, 0};
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  s.agent(0).send_data(page, {1});
  s.queue().run();

  // Member 1 reports the stream in its session message; all members already
  // have the data so no new requests should result.
  s.agent(1).send_session_message();
  s.queue().run();
  const auto max0 = s.agent(2).advertised_max(StreamKey{0, page});
  ASSERT_TRUE(max0.has_value());
  EXPECT_EQ(*max0, 0u);
}

// --- Session scheduling (vat-style scaling) ---------------------------------

TEST(SessionSchedulerTest, IntervalScalesWithGroupSize) {
  SessionConfig cfg;
  cfg.bandwidth_fraction = 0.05;
  cfg.data_bandwidth_bytes = 8000.0;  // 400 B/s session budget
  cfg.min_interval = 0.0;
  SessionScheduler sched(cfg, util::Rng(1));
  const double small = sched.mean_interval(10, 100);
  const double large = sched.mean_interval(100, 100);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
  // 100 members * 100 B / 400 B/s = 25 s between reports.
  EXPECT_NEAR(large, 25.0, 1e-9);
}

TEST(SessionSchedulerTest, MinIntervalFloors) {
  SessionConfig cfg;
  cfg.min_interval = 5.0;
  SessionScheduler sched(cfg, util::Rng(1));
  EXPECT_GE(sched.mean_interval(1, 1), 5.0);
}

TEST(SessionSchedulerTest, JitterStaysWithinBand) {
  SessionConfig cfg;
  cfg.min_interval = 0.0;
  cfg.jitter = 0.5;
  SessionScheduler sched(cfg, util::Rng(1));
  const double mean = sched.mean_interval(50, 100);
  for (int i = 0; i < 200; ++i) {
    const double iv = sched.next_interval(50, 100);
    EXPECT_GE(iv, 0.5 * mean - 1e-9);
    EXPECT_LE(iv, 1.5 * mean + 1e-9);
  }
}

TEST(SessionSchedulerTest, AggregateBandwidthIndependentOfGroupSize) {
  // G members each reporting every G*B/(f*W) seconds produce f*W total.
  SessionConfig cfg;
  cfg.min_interval = 0.0;
  SessionScheduler sched(cfg, util::Rng(1));
  for (std::size_t g : {5u, 50u, 500u}) {
    const double per_member_rate = 100.0 / sched.mean_interval(g, 100);
    const double aggregate = per_member_rate * static_cast<double>(g);
    EXPECT_NEAR(aggregate, 0.05 * 8000.0, 1e-6);
  }
}

}  // namespace
}  // namespace srm
