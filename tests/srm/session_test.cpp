#include "srm/session.h"

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "harness/session.h"

namespace srm {
namespace {

// --- DistanceEstimator algebra, directly -----------------------------------

TEST(DistanceEstimatorTest, TwoWayExchangeYieldsOneWayDelay) {
  sim::EventQueue q;
  // Hosts with wildly different clock offsets; true one-way delay is 3s.
  sim::LocalClock clock_a(q, 500.0);
  sim::LocalClock clock_b(q, -200.0);
  DistanceEstimator est_a(clock_a);
  DistanceEstimator est_b(clock_b);
  const SourceId A = 1, B = 2;

  // t = 0: A sends a session packet stamped with its clock.
  SessionMessage from_a(A, clock_a.now(), {}, {});
  // t = 3: B receives it.
  q.schedule_at(3.0, [&] { est_b.on_session_message(from_a, B); });
  // t = 10: B replies, echoing A's timestamp with its 7s hold time.
  std::shared_ptr<SessionMessage> from_b;
  q.schedule_at(10.0, [&] {
    from_b = std::make_shared<SessionMessage>(B, clock_b.now(),
                                              SessionMessage::StateReport{},
                                              est_b.build_echoes());
  });
  // t = 13: A receives the reply and can now estimate d = (13 - 0 - 7)/2 = 3.
  q.schedule_at(13.0, [&] { est_a.on_session_message(*from_b, A); });
  q.run();
  ASSERT_EQ(from_b->echoes().count(A), 1u);
  EXPECT_DOUBLE_EQ(from_b->echoes().at(A).hold_time, 7.0);

  const auto d = est_a.distance(B);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 3.0, 1e-9);
}

TEST(DistanceEstimatorTest, NoEstimateBeforeEcho) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  SessionMessage msg(2, 0.0, {}, {});
  est.on_session_message(msg, 1);
  EXPECT_FALSE(est.distance(2).has_value());
  EXPECT_EQ(est.peers_heard(), 1u);
}

TEST(DistanceEstimatorTest, NegativeArtifactsClampToZero) {
  sim::EventQueue q;
  sim::LocalClock clock(q, 0.0);
  DistanceEstimator est(clock);
  // Echo claims a hold time larger than the elapsed time: clamp, not negative.
  std::map<SourceId, SessionMessage::Echo> echoes;
  echoes[1] = SessionMessage::Echo{0.0, 50.0};
  q.schedule_at(10.0, [&] {
    SessionMessage msg(2, 0.0, {}, echoes);
    est.on_session_message(msg, 1);
  });
  q.run();
  ASSERT_TRUE(est.distance(2).has_value());
  EXPECT_GE(*est.distance(2), 0.0);
}

// --- End-to-end: agents exchanging real session messages --------------------

TEST(SessionIntegrationTest, EstimatesConvergeToOracleOnChain) {
  SrmConfig cfg;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.session.enabled = false;  // messages sent manually below

  auto topo = topo::make_chain(5);
  harness::SimSession s(std::move(topo), {0, 1, 2, 3, 4},
                        {cfg, /*seed=*/7, /*group=*/1});

  // Two full rounds of session messages so everyone has echoed everyone.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < s.member_count(); ++i) {
      s.agent(i).send_session_message();
      s.queue().run();
    }
  }

  for (std::size_t i = 0; i < s.member_count(); ++i) {
    for (std::size_t j = 0; j < s.member_count(); ++j) {
      if (i == j) continue;
      const double est = s.agent(i).distance_to(s.agent(j).id());
      const double oracle =
          s.network().distance(s.agent(i).node(), s.agent(j).node());
      EXPECT_NEAR(est, oracle, 1e-9) << i << " -> " << j;
    }
  }
}

TEST(SessionIntegrationTest, UnknownPeerFallsBackToDefault) {
  SrmConfig cfg;
  cfg.distance_mode = DistanceMode::kEstimated;
  cfg.default_distance = 42.0;
  auto topo = topo::make_chain(3);
  harness::SimSession s(std::move(topo), {0, 2}, {cfg, 7, 1});
  EXPECT_DOUBLE_EQ(s.agent(0).distance_to(s.agent(1).id()), 42.0);
}

TEST(SessionIntegrationTest, SessionMessagesAnnounceStreamState) {
  SrmConfig cfg;
  auto topo = topo::make_chain(3);
  harness::SimSession s(std::move(topo), {0, 1, 2}, {cfg, 7, 1});

  const PageId page{0, 0};
  s.for_each_agent([&](SrmAgent& a) { a.set_current_page(page); });
  s.agent(0).send_data(page, {1});
  s.queue().run();

  // Member 1 reports the stream in its session message; all members already
  // have the data so no new requests should result.
  s.agent(1).send_session_message();
  s.queue().run();
  const auto max0 = s.agent(2).advertised_max(StreamKey{0, page});
  ASSERT_TRUE(max0.has_value());
  EXPECT_EQ(*max0, 0u);
}

// --- Session scheduling (vat-style scaling) ---------------------------------

TEST(SessionSchedulerTest, IntervalScalesWithGroupSize) {
  SessionConfig cfg;
  cfg.bandwidth_fraction = 0.05;
  cfg.data_bandwidth_bytes = 8000.0;  // 400 B/s session budget
  cfg.min_interval = 0.0;
  SessionScheduler sched(cfg, util::Rng(1));
  const double small = sched.mean_interval(10, 100);
  const double large = sched.mean_interval(100, 100);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
  // 100 members * 100 B / 400 B/s = 25 s between reports.
  EXPECT_NEAR(large, 25.0, 1e-9);
}

TEST(SessionSchedulerTest, MinIntervalFloors) {
  SessionConfig cfg;
  cfg.min_interval = 5.0;
  SessionScheduler sched(cfg, util::Rng(1));
  EXPECT_GE(sched.mean_interval(1, 1), 5.0);
}

TEST(SessionSchedulerTest, JitterStaysWithinBand) {
  SessionConfig cfg;
  cfg.min_interval = 0.0;
  cfg.jitter = 0.5;
  SessionScheduler sched(cfg, util::Rng(1));
  const double mean = sched.mean_interval(50, 100);
  for (int i = 0; i < 200; ++i) {
    const double iv = sched.next_interval(50, 100);
    EXPECT_GE(iv, 0.5 * mean - 1e-9);
    EXPECT_LE(iv, 1.5 * mean + 1e-9);
  }
}

TEST(SessionSchedulerTest, AggregateBandwidthIndependentOfGroupSize) {
  // G members each reporting every G*B/(f*W) seconds produce f*W total.
  SessionConfig cfg;
  cfg.min_interval = 0.0;
  SessionScheduler sched(cfg, util::Rng(1));
  for (std::size_t g : {5u, 50u, 500u}) {
    const double per_member_rate = 100.0 / sched.mean_interval(g, 100);
    const double aggregate = per_member_rate * static_cast<double>(g);
    EXPECT_NEAR(aggregate, 0.05 * 8000.0, 1e-6);
  }
}

}  // namespace
}  // namespace srm
