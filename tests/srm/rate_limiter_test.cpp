#include "srm/rate_limiter.h"

#include <gtest/gtest.h>

namespace srm {
namespace {

RateLimitConfig cfg(double rate, double depth) {
  RateLimitConfig c;
  c.enabled = true;
  c.tokens_per_second = rate;
  c.bucket_depth = depth;
  return c;
}

TEST(RateLimiterTest, StartsFull) {
  RateLimiter rl(cfg(100.0, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(rl.tokens(0.0), 500.0);
  EXPECT_TRUE(rl.try_consume(500.0, 0.0));
  EXPECT_FALSE(rl.try_consume(1.0, 0.0));
}

TEST(RateLimiterTest, RefillsAtRate) {
  RateLimiter rl(cfg(100.0, 500.0), 0.0);
  ASSERT_TRUE(rl.try_consume(500.0, 0.0));
  EXPECT_FALSE(rl.try_consume(100.0, 0.5));  // only 50 back
  EXPECT_TRUE(rl.try_consume(100.0, 1.0));   // 100 back by t=1
}

TEST(RateLimiterTest, CapsAtDepth) {
  RateLimiter rl(cfg(100.0, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(rl.tokens(100.0), 500.0);  // never exceeds depth
}

TEST(RateLimiterTest, DelayUntilAvailable) {
  RateLimiter rl(cfg(100.0, 500.0), 0.0);
  ASSERT_TRUE(rl.try_consume(500.0, 0.0));
  EXPECT_DOUBLE_EQ(rl.delay_until_available(200.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(rl.delay_until_available(200.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(rl.delay_until_available(200.0, 2.0), 0.0);
}

TEST(RateLimiterTest, OversizedSendAdmittedAtFullBucket) {
  RateLimiter rl(cfg(100.0, 500.0), 0.0);
  ASSERT_TRUE(rl.try_consume(500.0, 0.0));
  // A 10000-byte send can never accumulate 10000 tokens; it is admitted
  // when the bucket fills (depth / rate = 5 s away).
  EXPECT_DOUBLE_EQ(rl.delay_until_available(10000.0, 0.0), 5.0);
}

TEST(RateLimiterTest, TimeNeverRunsBackward) {
  RateLimiter rl(cfg(100.0, 500.0), 10.0);
  ASSERT_TRUE(rl.try_consume(500.0, 10.0));
  // A query with an older timestamp must not un-refill or crash.
  EXPECT_FALSE(rl.try_consume(1.0, 5.0));
  EXPECT_TRUE(rl.try_consume(100.0, 11.0));
}

}  // namespace
}  // namespace srm
