// Tests for hierarchical session messages (Sec. IX-A; ARCHITECTURE.md §12):
// the session-level coordinator, leaderless election, area digests, timer-
// wheel batching, and representative-crash healing under the parallel
// kernel.
#include "srm/session_hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "harness/session.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "trace/trace.h"

namespace srm {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

// Manual-attach world: a flat SimSession plus one coordinator the test
// wires itself, so area assignment is explicit.
struct HierWorld {
  HierWorld(net::Topology topo, std::vector<net::NodeId> members,
            HierarchyConfig hcfg, std::uint32_t areas, std::uint64_t seed)
      : session(std::move(topo), std::move(members), {SrmConfig{}, seed, 1}),
        hierarchy(session.directory(), hcfg, areas, seed) {}

  void attach_all(const std::vector<std::uint32_t>& area_of_member) {
    std::size_t i = 0;
    session.for_each_agent(
        [&](SrmAgent& a) { hierarchy.attach(a, area_of_member[i++]); });
    hierarchy.start();
  }

  harness::SimSession session;
  SessionHierarchy hierarchy;
};

// Two clusters of 4 members each, joined by a long path of non-member
// routers.  local_ttl = 3 covers a cluster but not the far one.
net::Topology two_cluster_topo() {
  net::Topology topo(0);
  for (int i = 0; i < 16; ++i) topo.add_node();
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  topo.add_link(3, 8);
  topo.add_link(8, 9);
  topo.add_link(9, 10);
  topo.add_link(10, 11);
  topo.add_link(11, 4);
  topo.add_link(4, 5);
  topo.add_link(5, 6);
  topo.add_link(6, 7);
  return topo;
}

TEST(SessionHierarchyTest, LowestIdBecomesLocalRepresentative) {
  HierarchyConfig hcfg;
  hcfg.enabled = true;
  hcfg.local_ttl = 3;
  hcfg.report_interval = 5.0;
  HierWorld w(two_cluster_topo(), {0, 1, 2, 3, 4, 5, 6, 7}, hcfg,
              /*areas=*/2, /*seed=*/3);
  w.attach_all({0, 0, 0, 0, 1, 1, 1, 1});

  w.session.queue().run_until(100.0);
  // Cluster A (members 0..3): representative 0.  Cluster B (4..7): rep 4.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.hierarchy.representative_of(w.session.agent_at(i)), 0u) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(w.hierarchy.representative_of(w.session.agent_at(i)), 4u) << i;
  }
  EXPECT_TRUE(w.hierarchy.is_representative(w.session.agent_at(0)));
  EXPECT_FALSE(w.hierarchy.is_representative(w.session.agent_at(1)));
  EXPECT_TRUE(w.hierarchy.is_representative(w.session.agent_at(4)));
}

TEST(SessionHierarchyTest, OnlyRepresentativesReportGlobally) {
  auto topo = topo::make_chain(6);
  HierarchyConfig hcfg;
  hcfg.enabled = true;
  hcfg.local_ttl = 10;  // one area: everyone local to everyone
  hcfg.report_interval = 5.0;
  HierWorld w(std::move(topo), all_nodes(6), hcfg, /*areas=*/1, /*seed=*/4);
  w.attach_all({0, 0, 0, 0, 0, 0});
  w.session.queue().run_until(100.0);
  EXPECT_GT(w.hierarchy.global_reports_sent(w.session.agent_at(0)), 0u);
  std::uint64_t locals = 0;
  std::uint64_t globals = 0;
  for (int i = 0; i < 6; ++i) {
    locals += w.hierarchy.local_reports_sent(w.session.agent_at(i));
    globals += w.hierarchy.global_reports_sent(w.session.agent_at(i));
    if (i == 0) continue;
    // Non-representatives may have sent an early global report before they
    // first heard member 0, but must settle to local-only.
    EXPECT_GT(w.hierarchy.local_reports_sent(w.session.agent_at(i)), 0u) << i;
    EXPECT_LE(w.hierarchy.global_reports_sent(w.session.agent_at(i)), 3u) << i;
  }
  // Session-wide totals agree with the per-member counters.
  EXPECT_EQ(w.hierarchy.local_reports_sent(), locals);
  EXPECT_EQ(w.hierarchy.global_reports_sent(), globals);
}

TEST(SessionHierarchyTest, RepresentativeFailureHealsByStaleness) {
  auto topo = topo::make_chain(4);
  HierarchyConfig hcfg;
  hcfg.enabled = true;
  hcfg.local_ttl = 10;
  hcfg.report_interval = 5.0;
  HierWorld w(std::move(topo), all_nodes(4), hcfg, /*areas=*/1, /*seed=*/5);
  w.attach_all({0, 0, 0, 0});
  w.session.queue().run_until(60.0);
  EXPECT_EQ(w.hierarchy.representative_of(w.session.agent_at(1)), 0u);

  // Member 0 crashes; after the staleness horizon member 1 takes over.
  w.hierarchy.detach(w.session.agent_at(0));
  w.session.agent_at(0).stop();
  w.session.queue().run_until(60.0 + hcfg.staleness_intervals *
                                         hcfg.report_interval +
                                     2 * hcfg.report_interval);
  EXPECT_EQ(w.hierarchy.representative_of(w.session.agent_at(1)), 1u);
  EXPECT_TRUE(w.hierarchy.is_representative(w.session.agent_at(1)));
  EXPECT_EQ(w.hierarchy.representative_of(w.session.agent_at(3)), 1u);
}

TEST(SessionHierarchyTest, AreaDigestsDriveGroupSizeEstimate) {
  HierarchyConfig hcfg;
  hcfg.enabled = true;
  hcfg.local_ttl = 3;
  hcfg.report_interval = 5.0;
  HierWorld w(two_cluster_topo(), {0, 1, 2, 3, 4, 5, 6, 7}, hcfg,
              /*areas=*/2, /*seed=*/7);
  w.attach_all({0, 0, 0, 0, 1, 1, 1, 1});
  w.session.queue().run_until(100.0);
  // Every member sees 4 live locals (itself included) and learns the other
  // cluster's 4 from its representative's digest — never tracking remote
  // members individually.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(w.hierarchy.estimated_group_size(w.session.agent_at(i)), 8u)
        << i;
    EXPECT_EQ(w.hierarchy.live_local_peers(w.session.agent_at(i)), 3u) << i;
  }
}

TEST(SessionHierarchyTest, WheelOccupancyGrowsWithAreasNotMembers) {
  // One LAN, 64 members: the event heap must hold O(buckets) wheel entries,
  // not one per member.
  auto tl = topo::make_tree_of_lans(1, 2, 64);
  HierarchyConfig hcfg;
  hcfg.enabled = true;
  hcfg.local_ttl = 2;
  hcfg.report_interval = 10.0;
  hcfg.wheel_buckets = 8;
  HierWorld w(std::move(tl.topo), tl.workstations, hcfg, /*areas=*/1,
              /*seed=*/9);
  std::vector<std::uint32_t> areas(64, 0);
  w.attach_all(areas);

  // After start(): every member has a pending report but the initial
  // stagger spans one interval, so at most wheel_buckets+1 heap entries.
  EXPECT_EQ(w.hierarchy.pending_wheel_items(), 64u);
  EXPECT_LE(w.hierarchy.pending_wheel_buckets(), hcfg.wheel_buckets + 1);

  // Steady state: intervals spread over [0.5, 1.5] x interval, still
  // bounded by the bucket count of that window, independent of G.
  w.session.queue().run_until(100.0);
  EXPECT_EQ(w.hierarchy.pending_wheel_items(), 64u);
  EXPECT_LE(w.hierarchy.pending_wheel_buckets(),
            2 * hcfg.wheel_buckets + 2);
}

TEST(SessionHierarchyTest, ReducesWideAreaSessionTraffic) {
  // A tree of LANs: 5 routers, 6 workstations each.  Compare wide-area
  // (backbone) session-message deliveries, flat vs hierarchy-mode
  // SimSession, over the same duration and per-member reporting rate.
  auto count_backbone_session_crossings = [](bool hierarchical,
                                             std::uint64_t seed) {
    auto tl = topo::make_tree_of_lans(5, 3, 6);
    SrmConfig cfg;
    if (hierarchical) {
      cfg.hierarchy.enabled = true;
      cfg.hierarchy.local_ttl = 2;  // host -> router -> sibling host
      cfg.hierarchy.report_interval = 5.0;
      cfg.hierarchy.areas = 5;
    }
    harness::SimSession session(std::move(tl.topo), tl.workstations,
                                {cfg, seed, 1});
    std::uint64_t backbone_crossings = 0;
    session.network().set_delivery_observer(
        [&](const net::Packet& p, const net::DeliveryInfo& info) {
          if (dynamic_cast<const SessionMessage*>(p.payload.get()) &&
              info.hops > 2) {
            ++backbone_crossings;
          }
        });
    if (hierarchical) {
      session.run_until(200.0);
    } else {
      // Flat: everyone reports globally at the same mean interval.
      util::Rng rng(seed);
      for (int round = 0; round < 40; ++round) {
        session.for_each_agent([&](SrmAgent& a) {
          session.queue().schedule_after(
              5.0 * round + rng.uniform(0.0, 5.0),
              [&a] { a.send_session_message(); });
        });
      }
      session.queue().run_until(200.0);
    }
    return backbone_crossings;
  };

  const auto flat = count_backbone_session_crossings(false, 11);
  const auto hier = count_backbone_session_crossings(true, 11);
  EXPECT_LT(hier, flat / 3)
      << "hierarchy should cut wide-area session traffic several-fold";
}

// --- representative crash under FaultPlan + parallel kernel ---------------

bool events_equal(const trace::Event& a, const trace::Event& b) {
  return a.type == b.type && a.t == b.t && a.actor == b.actor && a.a == b.a &&
         a.b == b.b && a.c == b.c && a.d == b.d && a.e == b.e && a.x == b.x &&
         a.y == b.y;
}

struct CrashOutcome {
  SourceId rep_before = 0;
  SourceId rep_after = 0;
  SourceId expected_after = 0;
  net::NodeId probe = 0;  // surviving member the reps were queried from
  std::vector<trace::Event> events;
};

// Warm up a hierarchy-mode session on a tree of LANs, crash the area-0
// representative via a FaultPlan at t=60, and run one staleness horizon
// plus scheduling slack past the crash.
CrashOutcome run_rep_crash(std::uint64_t seed, unsigned kernel_threads) {
  auto tl = topo::make_tree_of_lans(4, 3, 6);
  SrmConfig cfg;
  cfg.hierarchy.enabled = true;
  cfg.hierarchy.local_ttl = 2;
  cfg.hierarchy.report_interval = 5.0;
  cfg.hierarchy.areas = 4;
  harness::SimSession::Options opts{cfg, seed, /*group=*/1};
  opts.kernel_threads = kernel_threads;
  opts.kernel_regions = 4;
  harness::SimSession session(std::move(tl.topo), tl.workstations, opts);

  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kNet));
  session.set_tracer(&tracer);

  session.run_until(40.0);

  CrashOutcome out;
  // The victim: current representative of workstation[0]'s area (the
  // smallest live Source-ID there) — a pure function of the topology, so
  // identical for every seed and thread count.
  SrmAgent& first = session.agent_at(tl.workstations.front());
  const SourceId victim = session.hierarchy()->representative_of(first);
  out.rep_before = victim;
  const std::uint32_t area = session.hierarchy()->area_of(first);
  // Expected successor: next-smallest member of the same area.
  out.expected_after = victim;
  for (net::NodeId n : tl.workstations) {
    if (session.area_map().of[n] != area) continue;
    const auto id = static_cast<SourceId>(n);
    if (id > victim &&
        (out.expected_after == victim || id < out.expected_after)) {
      out.expected_after = id;
    }
    if (out.probe == 0 && id != victim) out.probe = n;
  }

  fault::FaultPlan plan;
  plan.crash(60.0, static_cast<net::NodeId>(victim));
  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  injector.set_tracer(session.control_tracer());
  injector.arm();

  // One staleness horizon (3 x 5s) past the crash, plus slack for the last
  // pre-crash report to age out: the survivors must have re-elected.
  session.run_until(60.0 + 3.0 * 5.0 + 3.0);
  out.rep_after =
      session.hierarchy()->representative_of(session.agent_at(out.probe));
  out.events = capture.events();
  return out;
}

TEST(SessionHierarchyTest, RepresentativeCrashHealsDeterministically) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const CrashOutcome base = run_rep_crash(seed, 1);
    EXPECT_NE(base.rep_before, base.expected_after) << "seed " << seed;
    EXPECT_EQ(base.rep_after, base.expected_after)
        << "seed " << seed << ": survivors must re-elect the next-lowest "
        << "live member within one staleness interval of the crash";
    for (const unsigned threads : {2u, 8u}) {
      const CrashOutcome other = run_rep_crash(seed, threads);
      EXPECT_EQ(other.rep_before, base.rep_before);
      EXPECT_EQ(other.rep_after, base.rep_after);
      ASSERT_EQ(other.events.size(), base.events.size())
          << "seed " << seed << " threads " << threads;
      for (std::size_t i = 0; i < base.events.size(); ++i) {
        ASSERT_TRUE(events_equal(base.events[i], other.events[i]))
            << "seed " << seed << " threads " << threads
            << ": first trace divergence at event " << i;
      }
    }
  }
}

}  // namespace
}  // namespace srm
