// Tests for hierarchical session messages (Sec. IX-A).
#include "srm/session_hierarchy.h"

#include <gtest/gtest.h>

#include <memory>

#include "harness/session.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

struct HierWorld {
  HierWorld(net::Topology topo, std::vector<net::NodeId> members,
            HierarchyConfig hcfg, std::uint64_t seed)
      : session(std::move(topo), std::move(members), {SrmConfig{}, seed, 1}) {
    util::Rng rng(seed ^ 0x5E55);
    session.for_each_agent([&](SrmAgent& a) {
      hierarchies.push_back(
          std::make_unique<SessionHierarchy>(a, hcfg, rng.fork()));
      hierarchies.back()->start();
    });
  }
  harness::SimSession session;
  std::vector<std::unique_ptr<SessionHierarchy>> hierarchies;
};

TEST(SessionHierarchyTest, LowestIdBecomesLocalRepresentative) {
  // Two clusters of 4 members each, joined by a long path of non-member
  // routers.  local_ttl = 3 covers a cluster but not the far one.
  net::Topology topo(0);
  for (int i = 0; i < 16; ++i) topo.add_node();
  // Cluster A: 0-1-2-3 around hub? simple chain 0-1-2-3.
  topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(2, 3);
  // Long path 3-8-9-10-11-4 through routers 8..11.
  topo.add_link(3, 8);
  topo.add_link(8, 9);
  topo.add_link(9, 10);
  topo.add_link(10, 11);
  topo.add_link(11, 4);
  // Cluster B: 4-5-6-7.
  topo.add_link(4, 5);
  topo.add_link(5, 6);
  topo.add_link(6, 7);

  HierarchyConfig hcfg;
  hcfg.local_ttl = 3;
  hcfg.report_interval = 5.0;
  HierWorld w(std::move(topo), {0, 1, 2, 3, 4, 5, 6, 7}, hcfg, 3);

  w.session.queue().run_until(100.0);
  // Cluster A (members 0..3): representative 0.  Cluster B (4..7): rep 4.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(w.hierarchies[i]->representative(), 0u) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(w.hierarchies[i]->representative(), 4u) << i;
  }
  EXPECT_TRUE(w.hierarchies[0]->is_representative());
  EXPECT_FALSE(w.hierarchies[1]->is_representative());
  EXPECT_TRUE(w.hierarchies[4]->is_representative());
}

TEST(SessionHierarchyTest, OnlyRepresentativesReportGlobally) {
  auto topo = topo::make_chain(6);
  HierarchyConfig hcfg;
  hcfg.local_ttl = 10;  // one area: everyone local to everyone
  hcfg.report_interval = 5.0;
  HierWorld w(std::move(topo), all_nodes(6), hcfg, 4);
  w.session.queue().run_until(100.0);
  EXPECT_GT(w.hierarchies[0]->global_reports_sent(), 0u);
  for (int i = 1; i < 6; ++i) {
    // Non-representatives may have sent an early global report before they
    // first heard member 0, but must settle to local-only.
    EXPECT_GT(w.hierarchies[i]->local_reports_sent(), 0u) << i;
    EXPECT_LE(w.hierarchies[i]->global_reports_sent(), 3u) << i;
  }
}

TEST(SessionHierarchyTest, RepresentativeFailureHealsByStaleness) {
  auto topo = topo::make_chain(4);
  HierarchyConfig hcfg;
  hcfg.local_ttl = 10;
  hcfg.report_interval = 5.0;
  HierWorld w(std::move(topo), all_nodes(4), hcfg, 5);
  w.session.queue().run_until(60.0);
  EXPECT_EQ(w.hierarchies[1]->representative(), 0u);

  // Member 0 leaves; after the staleness horizon member 1 takes over.
  w.hierarchies[0]->stop();
  w.session.agent_at(0).stop();
  w.session.queue().run_until(60.0 + 4 * hcfg.staleness_intervals *
                                         hcfg.report_interval);
  EXPECT_EQ(w.hierarchies[1]->representative(), 1u);
  EXPECT_TRUE(w.hierarchies[1]->is_representative());
  EXPECT_EQ(w.hierarchies[3]->representative(), 1u);
}

TEST(SessionHierarchyTest, ReducesWideAreaSessionTraffic) {
  // A tree of LANs: 5 routers, 6 workstations each.  Compare wide-area
  // (backbone) session-message link crossings, flat vs hierarchical, over
  // the same simulated duration and per-member reporting rate.
  auto count_backbone_session_crossings = [](bool hierarchical,
                                             std::uint64_t seed) {
    auto tl = topo::make_tree_of_lans(5, 3, 6);
    const std::size_t routers = tl.routers.size();
    std::vector<net::NodeId> members = tl.workstations;
    harness::SimSession session(std::move(tl.topo), members,
                                {SrmConfig{}, seed, 1});
    std::vector<std::unique_ptr<SessionHierarchy>> hier;
    util::Rng rng(seed);
    HierarchyConfig hcfg;
    hcfg.local_ttl = 2;  // workstation -> router -> sibling workstation
    hcfg.report_interval = 5.0;

    std::uint64_t backbone_crossings = 0;
    // Count deliveries of session messages that crossed >2 hops (i.e. left
    // the LAN neighborhood).
    session.network().set_delivery_observer(
        [&](const net::Packet& p, const net::DeliveryInfo& info) {
          if (dynamic_cast<const SessionMessage*>(p.payload.get()) &&
              info.hops > 2) {
            ++backbone_crossings;
          }
        });

    if (hierarchical) {
      session.for_each_agent([&](SrmAgent& a) {
        hier.push_back(
            std::make_unique<SessionHierarchy>(a, hcfg, rng.fork()));
        hier.back()->start();
      });
      session.queue().run_until(200.0);
    } else {
      // Flat: everyone reports globally at the same mean interval.
      for (int round = 0; round < 40; ++round) {
        session.for_each_agent([&](SrmAgent& a) {
          session.queue().schedule_after(
              5.0 * round + rng.uniform(0.0, 5.0),
              [&a] { a.send_session_message(); });
        });
      }
      session.queue().run_until(200.0);
    }
    (void)routers;
    return backbone_crossings;
  };

  const auto flat = count_backbone_session_crossings(false, 11);
  const auto hier = count_backbone_session_crossings(true, 11);
  EXPECT_LT(hier, flat / 3)
      << "hierarchy should cut wide-area session traffic several-fold";
}

}  // namespace
}  // namespace srm
