// Tests for the sender-based unicast-NACK baseline (Sec. II-A strawman),
// including the ACK/NACK implosion SRM exists to prevent.
#include "srm/baseline.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/drop_policy.h"
#include "srm/messages.h"
#include "topo/builders.h"

namespace srm::baseline {
namespace {

class BaselineWorld {
 public:
  BaselineWorld(net::Topology topo, const std::vector<net::NodeId>& members,
                NackConfig config, std::uint64_t seed = 1)
      : topo_(std::move(topo)), network_(queue_, topo_), rng_(seed) {
    for (net::NodeId n : members) {
      auto agent = std::make_unique<NackAgent>(
          network_, directory_, n, static_cast<SourceId>(n), 1, config,
          rng_.fork());
      agent->start();
      by_node_[n] = agent.get();
      agents_.push_back(std::move(agent));
    }
  }

  NackAgent& at(net::NodeId n) { return *by_node_.at(n); }
  sim::EventQueue& queue() { return queue_; }
  net::MulticastNetwork& network() { return network_; }

 private:
  sim::EventQueue queue_;
  net::Topology topo_;
  net::MulticastNetwork network_;
  MemberDirectory directory_;
  util::Rng rng_;
  std::vector<std::unique_ptr<NackAgent>> agents_;
  std::map<net::NodeId, NackAgent*> by_node_;
};

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

std::shared_ptr<net::ScriptedLinkDrop> drop_seq0(net::NodeId from,
                                                 net::NodeId to) {
  return std::make_shared<net::ScriptedLinkDrop>(
      from, to, [](const net::Packet& p) {
        const auto* d = dynamic_cast<const DataMessage*>(p.payload.get());
        return d != nullptr && d->name().seq == 0;
      });
}

TEST(NackBaselineTest, LosslessDeliveryNeedsNoNacks) {
  BaselineWorld w(topo::make_chain(5), all_nodes(5), NackConfig{});
  const PageId page{0, 0};
  w.at(0).send_data(page, {1});
  w.queue().run();
  for (net::NodeId n = 1; n < 5; ++n) {
    EXPECT_TRUE(w.at(n).has_data(DataName{0, page, 0}));
    EXPECT_EQ(w.at(n).stats().nacks_sent, 0u);
  }
}

TEST(NackBaselineTest, GapTriggersImmediateNackAndUnicastRepair) {
  BaselineWorld w(topo::make_chain(4), all_nodes(4), NackConfig{});
  w.network().set_drop_policy(drop_seq0(2, 3));
  const PageId page{0, 0};
  w.at(0).send_data(page, {1});
  w.queue().schedule_after(1.0, [&] { w.at(0).send_data(page, {2}); });
  w.queue().run();
  EXPECT_TRUE(w.at(3).has_data(DataName{0, page, 0}));
  EXPECT_EQ(w.at(3).stats().nacks_sent, 1u);
  EXPECT_EQ(w.at(0).stats().nacks_received, 1u);
  EXPECT_EQ(w.at(0).stats().retransmissions, 1u);
  EXPECT_EQ(w.at(3).stats().recoveries, 1u);
}

TEST(NackBaselineTest, SharedLossImplodesAtSource) {
  // A star with the drop adjacent to the source: every other member NACKs,
  // and with unicast repairs the source retransmits once PER member.
  auto star = topo::make_star(20);
  BaselineWorld w(std::move(star.topo), star.leaves, NackConfig{});
  w.network().set_drop_policy(drop_seq0(star.leaves[0], star.center));
  const PageId page{static_cast<SourceId>(star.leaves[0]), 0};
  w.at(star.leaves[0]).send_data(page, {1});
  w.queue().schedule_after(1.0,
                           [&] { w.at(star.leaves[0]).send_data(page, {2}); });
  w.queue().run();
  EXPECT_EQ(w.at(star.leaves[0]).stats().nacks_received, 19u);  // implosion
  EXPECT_EQ(w.at(star.leaves[0]).stats().retransmissions, 19u);
  for (std::size_t i = 1; i < star.leaves.size(); ++i) {
    EXPECT_TRUE(w.at(star.leaves[i]).has_data(DataName{
        static_cast<SourceId>(star.leaves[0]), page, 0}));
  }
}

TEST(NackBaselineTest, MulticastRepairModeDampsRetransmissions) {
  auto star = topo::make_star(20);
  NackConfig cfg;
  cfg.repair_mode = RepairMode::kMulticast;
  BaselineWorld w(std::move(star.topo), star.leaves, cfg);
  w.network().set_drop_policy(drop_seq0(star.leaves[0], star.center));
  const PageId page{static_cast<SourceId>(star.leaves[0]), 0};
  w.at(star.leaves[0]).send_data(page, {1});
  w.queue().schedule_after(1.0,
                           [&] { w.at(star.leaves[0]).send_data(page, {2}); });
  w.queue().run();
  // Still 19 NACKs (the implosion is at the source's inbound side)...
  EXPECT_EQ(w.at(star.leaves[0]).stats().nacks_received, 19u);
  // ...but a single multicast retransmission answers them all.
  EXPECT_EQ(w.at(star.leaves[0]).stats().retransmissions, 1u);
}

TEST(NackBaselineTest, NackLossTriggersBackoffRetry) {
  // Drop the data AND the first NACK; the receiver's retransmit timer must
  // re-NACK and eventually recover.
  BaselineWorld w(topo::make_chain(3), all_nodes(3), NackConfig{});
  auto composite = std::make_shared<net::CompositeDrop>();
  composite->add(drop_seq0(1, 2));
  composite->add(std::make_shared<net::ScriptedLinkDrop>(
      2, 1, [](const net::Packet& p) {
        return dynamic_cast<const NackMessage*>(p.payload.get()) != nullptr;
      }));
  w.network().set_drop_policy(composite);
  const PageId page{0, 0};
  w.at(0).send_data(page, {1});
  w.queue().schedule_after(1.0, [&] { w.at(0).send_data(page, {2}); });
  w.queue().run();
  EXPECT_TRUE(w.at(2).has_data(DataName{0, page, 0}));
  EXPECT_EQ(w.at(2).stats().nacks_sent, 2u);
}

TEST(NackBaselineTest, RecoveryDelayAtLeastOneRtt) {
  // Unicast NACK + unicast repair is inherently >= 1 RTT to the source —
  // the bound SRM's nearby repairs beat (Sec. IV-A).
  BaselineWorld w(topo::make_chain(8), all_nodes(8), NackConfig{});
  w.network().set_drop_policy(drop_seq0(3, 4));
  const PageId page{0, 0};
  w.at(0).send_data(page, {1});
  w.queue().schedule_after(1.0, [&] { w.at(0).send_data(page, {2}); });
  w.queue().run();
  for (net::NodeId n = 4; n < 8; ++n) {
    const auto& s = w.at(n).stats();
    ASSERT_EQ(s.recovery_delay_rtt.count(), 1u) << n;
    EXPECT_GE(s.recovery_delay_rtt.values()[0], 1.0) << n;
  }
}

}  // namespace
}  // namespace srm::baseline
