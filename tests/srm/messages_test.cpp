#include "srm/messages.h"

#include <gtest/gtest.h>

namespace srm {
namespace {

TEST(MessagesTest, DataDescribeAndSize) {
  auto payload = std::make_shared<const Payload>(Payload(100, 0x42));
  DataMessage m(DataName{3, PageId{3, 1}, 7}, payload);
  EXPECT_EQ(m.describe(), "DATA 3:3/p1:7");
  EXPECT_EQ(m.size_bytes(), 132u);  // 32 header + 100 payload
  EXPECT_EQ(m.payload(), payload);
}

TEST(MessagesTest, DataWithNullPayload) {
  DataMessage m(DataName{1, PageId{1, 0}, 0}, nullptr);
  EXPECT_EQ(m.size_bytes(), 32u);
}

TEST(MessagesTest, RequestCarriesDistanceAndTtl) {
  RequestMessage m(DataName{2, PageId{2, 0}, 9}, /*requestor=*/5,
                   /*dist=*/12.5, /*ttl=*/31);
  EXPECT_EQ(m.requestor(), 5u);
  EXPECT_DOUBLE_EQ(m.requestor_dist_to_source(), 12.5);
  EXPECT_EQ(m.initial_ttl(), 31);
  EXPECT_NE(m.describe().find("REQUEST"), std::string::npos);
  EXPECT_NE(m.describe().find("by 5"), std::string::npos);
}

TEST(MessagesTest, RepairCarriesTwoStepFields) {
  auto payload = std::make_shared<const Payload>(Payload{1});
  RepairMessage m(DataName{1, PageId{1, 0}, 3}, payload, /*responder=*/8,
                  /*first_requestor=*/4, /*dist=*/2.0, /*ttl=*/6,
                  /*local_step_one=*/true);
  EXPECT_EQ(m.responder(), 8u);
  EXPECT_EQ(m.first_requestor(), 4u);
  EXPECT_TRUE(m.local_step_one());
  EXPECT_EQ(m.initial_ttl(), 6);
  EXPECT_DOUBLE_EQ(m.responder_dist_to_requestor(), 2.0);
}

TEST(MessagesTest, SessionStateAndEchoes) {
  SessionMessage::StateReport state;
  state[StreamKey{1, PageId{1, 0}}] = 42;
  SessionMessage::Echoes echoes;
  echoes[7] = SessionMessage::Echo{10.0, 3.0};
  SessionMessage m(/*sender=*/9, /*timestamp=*/123.0, state, echoes);
  EXPECT_EQ(m.sender(), 9u);
  EXPECT_DOUBLE_EQ(m.sender_timestamp(), 123.0);
  EXPECT_EQ(m.state().at(StreamKey{1, PageId{1, 0}}), 42u);
  EXPECT_DOUBLE_EQ(m.echoes().at(7).peer_timestamp, 10.0);
  EXPECT_DOUBLE_EQ(m.echoes().at(7).hold_time, 3.0);
}

TEST(MessagesTest, SessionSizeGrowsWithContent) {
  SessionMessage empty(1, 0.0, {}, {});
  SessionMessage::StateReport state;
  for (SourceId s = 0; s < 10; ++s) state[StreamKey{s, PageId{s, 0}}] = s;
  SessionMessage full(1, 0.0, state, {});
  EXPECT_GT(full.size_bytes(), empty.size_bytes());
}

TEST(MessagesTest, PolymorphicDispatchViaBasePointer) {
  // The network stores MessagePtr (shared_ptr<const Message>); agents
  // dispatch with dynamic_cast.  Verify each type round-trips.
  std::vector<net::MessagePtr> msgs;
  msgs.push_back(std::make_shared<DataMessage>(DataName{}, nullptr));
  msgs.push_back(std::make_shared<RequestMessage>(DataName{}, 0, 0.0, 1));
  msgs.push_back(
      std::make_shared<RepairMessage>(DataName{}, nullptr, 0, 0, 0.0, 1));
  msgs.push_back(std::make_shared<SessionMessage>(
      0, 0.0, SessionMessage::StateReport{}, SessionMessage::Echoes{}));
  EXPECT_NE(dynamic_cast<const DataMessage*>(msgs[0].get()), nullptr);
  EXPECT_EQ(dynamic_cast<const DataMessage*>(msgs[1].get()), nullptr);
  EXPECT_NE(dynamic_cast<const RequestMessage*>(msgs[1].get()), nullptr);
  EXPECT_NE(dynamic_cast<const RepairMessage*>(msgs[2].get()), nullptr);
  EXPECT_NE(dynamic_cast<const SessionMessage*>(msgs[3].get()), nullptr);
}

}  // namespace
}  // namespace srm
