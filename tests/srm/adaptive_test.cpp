#include "srm/adaptive.h"

#include <gtest/gtest.h>

namespace srm {
namespace {

AdaptiveParams params() {
  AdaptiveParams p;
  p.enabled = true;
  return p;
}

AdaptiveTuner::Bounds bounds() { return {0.5, 2.0, 1.0, 200.0}; }

TEST(AdaptiveTunerTest, StartsAtInitialValues) {
  AdaptiveTuner t(params(), bounds(), 2.0, 2.0);
  EXPECT_DOUBLE_EQ(t.start(), 2.0);
  EXPECT_DOUBLE_EQ(t.width(), 2.0);
}

TEST(AdaptiveTunerTest, InitialValuesNotClamped) {
  // Fixed-parameter configurations may sit outside the adaptive bounds
  // (e.g. C2 = 0 for a deterministic chain); bounds bind adaptation only.
  AdaptiveTuner t(params(), bounds(), 100.0, 0.1);
  EXPECT_DOUBLE_EQ(t.start(), 100.0);
  EXPECT_DOUBLE_EQ(t.width(), 0.1);
  t.end_period(5);
  t.adapt_on_timer_set(false);  // first adaptation pulls into bounds
  EXPECT_DOUBLE_EQ(t.start(), 2.0);
  EXPECT_DOUBLE_EQ(t.width(), 1.0);
}

TEST(AdaptiveTunerTest, NoAdaptationWithoutHistory) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.adapt_on_timer_set(false);
  EXPECT_DOUBLE_EQ(t.start(), 1.0);
  EXPECT_DOUBLE_EQ(t.width(), 2.0);
}

TEST(AdaptiveTunerTest, TooManyDuplicatesWidensInterval) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.end_period(5);  // ave_dups = 5 >= target 1
  t.adapt_on_timer_set(false);
  EXPECT_DOUBLE_EQ(t.start(), 1.1);   // +0.1
  EXPECT_DOUBLE_EQ(t.width(), 2.5);   // +0.5
}

TEST(AdaptiveTunerTest, HighDelayLowDupsShrinksWidth) {
  AdaptiveTuner t(params(), bounds(), 1.0, 10.0);
  t.end_period(0);       // no duplicates
  t.record_delay(3.0);   // delay 3 RTT > target 1
  t.adapt_on_timer_set(false);
  EXPECT_DOUBLE_EQ(t.width(), 9.5);  // -0.5
  // Start also shrinks because duplicates are well under target.
  EXPECT_DOUBLE_EQ(t.start(), 0.95);
}

TEST(AdaptiveTunerTest, StartShrinkRequiresSenderOrLowDups) {
  AdaptiveTuner t(params(), bounds(), 1.0, 10.0);
  // ave_dups around 0.8: below the duplicate target but not "already small".
  t.end_period(1);
  t.end_period(1);
  t.end_period(0);
  t.record_delay(3.0);
  const double dups = t.ave_dups();
  ASSERT_LT(dups, 0.9);
  ASSERT_GT(dups, 0.25);
  t.adapt_on_timer_set(/*was_recent_sender=*/false);
  EXPECT_DOUBLE_EQ(t.start(), 1.0);  // not a sender, dups not tiny: no shrink
  t.adapt_on_timer_set(/*was_recent_sender=*/true);
  EXPECT_DOUBLE_EQ(t.start(), 0.95);  // sender may shrink
}

TEST(AdaptiveTunerTest, NoChangeWhenWithinTargets) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.end_period(0);
  t.record_delay(0.5);  // under the delay target
  t.adapt_on_timer_set(false);
  EXPECT_DOUBLE_EQ(t.start(), 1.0);
  EXPECT_DOUBLE_EQ(t.width(), 2.0);
}

TEST(AdaptiveTunerTest, OnSentShrinksStart) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.on_sent();
  EXPECT_DOUBLE_EQ(t.start(), 0.95);
}

TEST(AdaptiveTunerTest, OnSentRespectsLowerBound) {
  AdaptiveTuner t(params(), bounds(), 0.52, 2.0);
  t.on_sent();
  EXPECT_DOUBLE_EQ(t.start(), 0.5);
  t.on_sent();
  EXPECT_DOUBLE_EQ(t.start(), 0.5);
}

TEST(AdaptiveTunerTest, DuplicateFromFartherShrinksStart) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.on_duplicate_from_farther(1.0, 2.0);  // 2 > 1.5 * 1
  EXPECT_DOUBLE_EQ(t.start(), 0.95);
}

TEST(AdaptiveTunerTest, DuplicateFromNearbyDoesNothing) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.on_duplicate_from_farther(1.0, 1.2);  // 1.2 < 1.5
  EXPECT_DOUBLE_EQ(t.start(), 1.0);
}

TEST(AdaptiveTunerTest, WidthNeverExceedsMax) {
  AdaptiveTuner t(params(), bounds(), 2.0, 199.8);
  t.end_period(10);
  t.adapt_on_timer_set(false);
  EXPECT_DOUBLE_EQ(t.width(), 200.0);
  EXPECT_DOUBLE_EQ(t.start(), 2.0);  // already at start_max
}

TEST(AdaptiveTunerTest, EwmaAveragesHistory) {
  AdaptiveTuner t(params(), bounds(), 1.0, 2.0);
  t.end_period(4);
  EXPECT_DOUBLE_EQ(t.ave_dups(), 4.0);  // first sample seeds
  t.end_period(0);
  EXPECT_DOUBLE_EQ(t.ave_dups(), 3.0);  // 0.75*4 + 0.25*0
}

TEST(AdaptiveTunerTest, RepeatedCongestionConvergesUpThenRecovers) {
  // Sustained duplicates push the interval up; once duplicates stop and
  // delay is high, the interval comes back down.
  AdaptiveTuner t(params(), bounds(), 0.5, 1.0);
  for (int i = 0; i < 30; ++i) {
    t.end_period(5);
    t.adapt_on_timer_set(false);
  }
  const double widened = t.width();
  EXPECT_GT(widened, 10.0);
  for (int i = 0; i < 200; ++i) {
    t.end_period(0);
    t.record_delay(5.0);
    t.adapt_on_timer_set(true);
  }
  EXPECT_LT(t.width(), widened / 2);
}

}  // namespace
}  // namespace srm
