// ParityBudgetController: the deterministic hysteresis machine that picks
// K per generation.  Everything here is count-based — the tests drive seal
// points by hand and assert the exact K sequence, which is the property
// that keeps --pdes-verify bit-identical with --fec on.
#include "srm/fec/budget.h"

#include <gtest/gtest.h>

namespace srm::fec {
namespace {

BudgetConfig cfg() {
  BudgetConfig c;
  c.max_k = 4;
  c.initial_k = 1;
  c.raise_threshold = 2;
  c.decay_after_quiet = 3;
  c.burst_floor = 2;
  return c;
}

TEST(ParityBudgetTest, StartsAtInitialK) {
  EXPECT_EQ(ParityBudgetController(cfg()).current_k(), 1u);
  BudgetConfig c = cfg();
  c.initial_k = 0;
  EXPECT_EQ(ParityBudgetController(c).current_k(), 0u);
}

TEST(ParityBudgetTest, EvidenceAtThresholdRaisesByOne) {
  ParityBudgetController b(cfg());
  b.note_loss_evidence(2);  // == raise_threshold
  EXPECT_EQ(b.on_generation_sealed(), 2u);
  EXPECT_EQ(b.current_k(), 2u);
  // Below threshold: no raise, but the evidence still clears the quiet
  // streak (a lossy generation is not a quiet one).
  b.note_loss_evidence(1);
  EXPECT_EQ(b.on_generation_sealed(), 2u);
}

TEST(ParityBudgetTest, RaiseClampsAtMaxK) {
  ParityBudgetController b(cfg());
  for (int i = 0; i < 10; ++i) {
    b.note_loss_evidence(5);
    b.on_generation_sealed();
  }
  EXPECT_EQ(b.current_k(), 4u);
}

TEST(ParityBudgetTest, EvidenceIsPerGeneration) {
  ParityBudgetController b(cfg());
  b.note_loss_evidence(1);
  EXPECT_EQ(b.evidence_pending(), 1u);
  b.on_generation_sealed();
  EXPECT_EQ(b.evidence_pending(), 0u);  // does not carry over
  b.note_loss_evidence(1);
  EXPECT_EQ(b.on_generation_sealed(), 1u);  // 1 < threshold both times
}

TEST(ParityBudgetTest, DecaysToZeroOnQuietLinks) {
  BudgetConfig c = cfg();
  c.initial_k = 2;
  ParityBudgetController b(c);
  // decay_after_quiet = 3: two quiet seals keep K, the third decays it.
  EXPECT_EQ(b.on_generation_sealed(), 2u);
  EXPECT_EQ(b.on_generation_sealed(), 2u);
  EXPECT_EQ(b.on_generation_sealed(), 1u);
  EXPECT_EQ(b.on_generation_sealed(), 1u);
  EXPECT_EQ(b.on_generation_sealed(), 1u);
  EXPECT_EQ(b.on_generation_sealed(), 0u);  // all the way to "no parity"
  // And it stays there: quiet links pay zero FEC overhead.
  EXPECT_EQ(b.on_generation_sealed(), 0u);
  EXPECT_EQ(b.on_generation_sealed(), 0u);
}

TEST(ParityBudgetTest, AnyEvidenceRearmsFromZero) {
  BudgetConfig c = cfg();
  c.initial_k = 0;
  ParityBudgetController b(c);
  // A single piece of evidence (below raise_threshold) steps 0 -> 1: a
  // quiet link that just lost something re-arms the cheap XOR tier.
  b.note_loss_evidence(1);
  EXPECT_EQ(b.on_generation_sealed(), 1u);
}

TEST(ParityBudgetTest, EvidenceClearsQuietStreak) {
  BudgetConfig c = cfg();
  c.initial_k = 1;
  c.decay_after_quiet = 2;
  ParityBudgetController b(c);
  EXPECT_EQ(b.on_generation_sealed(), 1u);  // quiet 1/2
  b.note_loss_evidence(1);                  // resets the streak
  EXPECT_EQ(b.on_generation_sealed(), 1u);
  EXPECT_EQ(b.on_generation_sealed(), 1u);  // quiet 1/2 again
  EXPECT_EQ(b.on_generation_sealed(), 0u);  // quiet 2/2 -> decay
}

TEST(ParityBudgetTest, BurstEpochFloorsImmediately) {
  BudgetConfig c = cfg();
  c.initial_k = 0;
  ParityBudgetController b(c);
  b.set_burst_epoch(true);
  // The next generation already needs the protection, before any seal.
  EXPECT_EQ(b.current_k(), 2u);
  EXPECT_TRUE(b.burst_epoch_active());
}

TEST(ParityBudgetTest, DecayClampsAtBurstFloorDuringEpoch) {
  BudgetConfig c = cfg();
  c.initial_k = 4;
  c.decay_after_quiet = 1;
  ParityBudgetController b(c);
  b.set_burst_epoch(true);
  EXPECT_EQ(b.on_generation_sealed(), 3u);
  EXPECT_EQ(b.on_generation_sealed(), 2u);
  EXPECT_EQ(b.on_generation_sealed(), 2u);  // floored at burst_floor
  EXPECT_EQ(b.on_generation_sealed(), 2u);
  // Epoch ends: the quiet-decay path resumes down to zero.
  b.set_burst_epoch(false);
  EXPECT_EQ(b.on_generation_sealed(), 1u);
  EXPECT_EQ(b.on_generation_sealed(), 0u);
}

TEST(ParityBudgetTest, BurstFloorClampedToMaxK) {
  BudgetConfig c = cfg();
  c.max_k = 1;
  c.burst_floor = 3;
  ParityBudgetController b(c);
  b.set_burst_epoch(true);
  EXPECT_EQ(b.current_k(), 1u);
  b.note_loss_evidence(10);
  EXPECT_EQ(b.on_generation_sealed(), 1u);  // raises clamp to max_k too
}

TEST(ParityBudgetTest, RaisesStillWorkDuringBurst) {
  ParityBudgetController b(cfg());
  b.set_burst_epoch(true);  // floors to 2
  b.note_loss_evidence(2);
  EXPECT_EQ(b.on_generation_sealed(), 3u);
  b.note_loss_evidence(2);
  EXPECT_EQ(b.on_generation_sealed(), 4u);
}

}  // namespace
}  // namespace srm::fec
