// Same FaultPlan + seed must give bit-identical traces: across repeated
// runs in one process, and across ReplicationRunner thread counts (trial
// construction is serial; only execution is fanned out).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "harness/loss_round.h"
#include "harness/replication.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/trace.h"

namespace srm {
namespace {

constexpr std::uint32_t kMask =
    static_cast<std::uint32_t>(trace::Category::kSrm) |
    static_cast<std::uint32_t>(trace::Category::kFault);

// One full fault scenario: random tree, partition/heal + crash/rejoin churn,
// four loss-recovery rounds.  Returns every captured trace event.
std::vector<trace::Event> run_scenario(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology topo = topo::make_random_tree(40, rng);
  std::vector<net::NodeId> members;
  for (net::NodeId n = 0; n < 40; n += 3) members.push_back(n);
  const net::NodeId source = members[rng.index(members.size())];

  fault::FaultPlan plan =
      harness::partition_heal_plan(topo, source, 20.0, 60.0, rng);
  plan.merge(harness::churn_plan(members, source, /*cycles=*/3,
                                 /*t_begin=*/10.0, /*t_end=*/150.0,
                                 /*downtime=*/30.0, /*crash=*/true, rng));

  SrmConfig cfg;
  cfg.backoff_factor = 3.0;
  cfg.adaptive.enabled = true;
  harness::SimSession session(std::move(topo), members, {cfg, seed, 1});
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(kMask);
  session.set_tracer(&tracer);

  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  injector.set_tracer(&tracer);
  injector.arm();

  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  spec.page = PageId{static_cast<SourceId>(source), 0};
  for (int r = 0; r < 4; ++r) {
    try {
      harness::run_loss_round(session, spec, r * 2);
    } catch (const std::exception&) {
      // A fault made the round unrunnable — still part of the scenario.
    }
  }
  return capture.events();
}

TEST(FaultDeterminismTest, SameSeedSameTrace) {
  const auto first = run_scenario(1234);
  const auto second = run_scenario(1234);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultDeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_scenario(1), run_scenario(2));
}

TEST(FaultDeterminismTest, TraceIdenticalAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  const auto run_batch = [&](unsigned threads) {
    const harness::ReplicationRunner runner(threads);
    return runner.map<std::vector<trace::Event>>(
        seeds.size(),
        [&seeds](std::size_t i) { return run_scenario(seeds[i]); });
  };
  const auto serial = run_batch(1);
  const auto parallel = run_batch(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "trial " << i;
  }
}

}  // namespace
}  // namespace srm
