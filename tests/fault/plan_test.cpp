#include "fault/plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace srm::fault {
namespace {

TEST(FaultPlanTest, BuildersRecordEvents) {
  FaultPlan plan;
  plan.link_down(10.0, 3)
      .link_up(20.0, 3)
      .partition(30.0, {5, 6, 7})
      .heal(45.0, 0)
      .leave(12.0, 4)
      .crash(13.0, 9)
      .join(25.0, 11)
      .rejoin(40.0, 9)
      .burst_on(50.0, {})
      .burst_off(80.0);
  EXPECT_EQ(plan.size(), 10u);
  EXPECT_EQ(plan.partition_count(), 1u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, SortedOrdersByTimeStably) {
  FaultPlan plan;
  plan.link_down(20.0, 1);
  plan.link_down(10.0, 2);
  plan.link_up(10.0, 3);  // same time as above: insertion order preserved
  const auto sorted = plan.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].link, 2u);
  EXPECT_EQ(sorted[1].link, 3u);
  EXPECT_EQ(sorted[2].link, 1u);
}

TEST(FaultPlanTest, PartitionOrdinalsSurviveSorting) {
  FaultPlan plan;
  plan.partition(50.0, {1});  // ordinal 0, but fires second
  plan.partition(5.0, {2});   // ordinal 1, fires first
  plan.heal(60.0, 0);
  const auto sorted = plan.sorted();
  EXPECT_EQ(sorted[0].partition_ordinal, 1u);
  EXPECT_EQ(sorted[1].partition_ordinal, 0u);
}

TEST(FaultPlanTest, ValidatesOnPush) {
  FaultPlan plan;
  EXPECT_THROW(plan.link_down(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(plan.partition(1.0, {}), std::invalid_argument);
  // heal must refer to a partition already in the plan.
  EXPECT_THROW(plan.heal(2.0, 0), std::invalid_argument);
  plan.partition(1.0, {3});
  EXPECT_NO_THROW(plan.heal(2.0, 0));
  EXPECT_THROW(plan.heal(3.0, 1), std::invalid_argument);
}

TEST(FaultPlanTest, TextRoundTrip) {
  FaultPlan plan;
  plan.link_down(10.5, 3);
  plan.partition(30.0, {5, 6, 7});
  plan.heal(45.0, 0);
  plan.crash(13.0, 9);
  net::GilbertElliottDrop::Params burst;
  burst.p_good_bad = 0.05;
  burst.p_bad_good = 0.25;
  burst.loss_bad = 0.9;
  plan.burst_on(50.0, burst);
  plan.burst_off(80.0);

  const FaultPlan parsed = FaultPlan::parse_text(plan.to_text());
  EXPECT_EQ(parsed.events(), plan.events());
  EXPECT_EQ(parsed.partition_count(), plan.partition_count());
}

TEST(FaultPlanTest, ParseAcceptsCommentsAndBlankLines) {
  const FaultPlan plan = FaultPlan::parse_text(
      "# a comment\n"
      "\n"
      "link_down 10 3   # trailing comment\n"
      "  link_up 20 3\n");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(plan.events()[1].kind, FaultEvent::Kind::kLinkUp);
}

TEST(FaultPlanTest, ParseRejectsBadInputWithLineNumbers) {
  const auto expect_bad = [](const std::string& text,
                             const std::string& fragment) {
    try {
      FaultPlan::parse_text(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_bad("frobnicate 1 2\n", "unknown keyword");
  expect_bad("link_down\n", "missing event time");
  expect_bad("link_down -1 0\n", "negative event time");
  expect_bad("link_down 1 0 junk\n", "trailing input");
  expect_bad("partition 1\n", "partition needs");
  expect_bad("heal 1 0\n", "not yet in the plan");
  expect_bad("burst_on 1 0.5\n", "burst_on needs");
  expect_bad("burst_on 1 1.5 0.5 0.5\n", "outside [0,1]");
  expect_bad("\nlink_down\n", "line 2");
}

TEST(FaultPlanTest, MergeRenumbersPartitions) {
  FaultPlan a;
  a.partition(10.0, {1});
  a.heal(20.0, 0);
  FaultPlan b;
  b.partition(30.0, {2});
  b.heal(40.0, 0);
  a.merge(b);
  EXPECT_EQ(a.partition_count(), 2u);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.events()[2].partition_ordinal, 1u);  // b's partition renumbered
  EXPECT_EQ(a.events()[3].partition_ordinal, 1u);  // ... and its heal follows
  EXPECT_NO_THROW(a.heal(50.0, 1));
}

TEST(FaultPlanTest, SelfMergeDuplicatesEvents) {
  FaultPlan plan;
  plan.partition(10.0, {1});
  plan.heal(20.0, 0);
  plan.merge(plan);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.partition_count(), 2u);
  EXPECT_EQ(plan.events()[3].partition_ordinal, 1u);
}

}  // namespace
}  // namespace srm::fault
