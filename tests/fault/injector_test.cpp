#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fault/plan.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "topo/builders.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace srm::fault {
namespace {

class TestMessage : public net::Message {
 public:
  std::string describe() const override { return "TEST"; }
};

class Recorder : public net::PacketSink {
 public:
  void on_receive(const net::Packet&, const net::DeliveryInfo&) override {
    ++received;
  }
  int received = 0;
};

net::Packet make_packet(net::GroupId g) {
  net::Packet p;
  p.group = g;
  p.payload = std::make_shared<TestMessage>();
  return p;
}

// Chain 0-1-2-...; link i connects nodes (i, i+1) with delay 1 s; every node
// is a group-1 member with a counting sink.
class InjectorTest : public ::testing::Test {
 protected:
  void build_chain(std::size_t n) {
    topo_ = std::make_unique<net::Topology>(topo::make_chain(n));
    net_ = std::make_unique<net::MulticastNetwork>(queue_, *topo_);
    for (net::NodeId v = 0; v < n; ++v) {
      sinks_.push_back(std::make_unique<Recorder>());
      net_->attach(v, sinks_.back().get());
      net_->join(1, v);
    }
  }

  FaultInjector make_injector(FaultPlan plan) {
    return FaultInjector(queue_, *topo_, *net_, std::move(plan),
                         util::Rng(99));
  }

  sim::EventQueue queue_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<net::MulticastNetwork> net_;
  std::vector<std::unique_ptr<Recorder>> sinks_;
};

TEST_F(InjectorTest, LinkDownStopsDeliveryAndLinkUpRestores) {
  build_chain(4);
  FaultPlan plan;
  plan.link_down(10.0, 2);  // severs node 3
  plan.link_up(20.0, 2);
  auto injector = make_injector(std::move(plan));
  injector.arm();

  int received_while_down = -1;
  queue_.schedule_at(12.0, [this] { net_->multicast(0, make_packet(1)); });
  queue_.schedule_at(19.0, [&, this] {
    received_while_down = sinks_[3]->received;
    EXPECT_FALSE(topo_->link_up(2));
    EXPECT_THROW(net_->distance(0, 3), std::runtime_error);
    EXPECT_DOUBLE_EQ(net_->distance(0, 2), 2.0);  // near side still routed
  });
  queue_.schedule_at(25.0, [this] { net_->multicast(0, make_packet(1)); });
  queue_.run();

  EXPECT_EQ(received_while_down, 0);
  EXPECT_EQ(sinks_[2]->received, 2);  // near side got both multicasts
  EXPECT_EQ(sinks_[3]->received, 1);  // far side only after the repair
  EXPECT_EQ(injector.stats().links_taken_down, 1u);
  EXPECT_EQ(injector.stats().links_brought_up, 1u);
}

TEST_F(InjectorTest, InFlightDeliveriesAcrossDownLinkAreInvalidated) {
  build_chain(5);
  FaultPlan plan;
  plan.link_down(1.5, 2);  // while the t=0 multicast is mid-flight
  auto injector = make_injector(std::move(plan));
  injector.arm();

  net_->multicast(0, make_packet(1));  // deliveries due at t = 1, 2, 3, 4
  queue_.run();

  EXPECT_EQ(sinks_[1]->received, 1);
  EXPECT_EQ(sinks_[2]->received, 1);  // path does not cross the down link
  EXPECT_EQ(sinks_[3]->received, 0);  // was in flight across it
  EXPECT_EQ(sinks_[4]->received, 0);
  EXPECT_EQ(net_->stats().in_flight_invalidated, 2u);
}

TEST_F(InjectorTest, PartitionCutsIslandAndHealRestores) {
  build_chain(6);
  FaultPlan plan;
  plan.partition(10.0, {4, 5});  // boundary: link 3 (nodes 3-4)
  plan.heal(30.0, 0);
  auto injector = make_injector(std::move(plan));
  injector.arm();

  queue_.schedule_at(15.0, [this] {
    EXPECT_FALSE(topo_->link_up(3));
    EXPECT_TRUE(topo_->link_up(4));  // intra-island link untouched
    net_->multicast(0, make_packet(1));
    net_->multicast(5, make_packet(1));  // island keeps working internally
  });
  queue_.schedule_at(28.0, [this] {
    EXPECT_EQ(sinks_[3]->received, 1);
    EXPECT_EQ(sinks_[4]->received, 1);  // from node 5, not node 0
    EXPECT_EQ(sinks_[5]->received, 0);
  });
  queue_.schedule_at(35.0, [this] { net_->multicast(0, make_packet(1)); });
  queue_.run();

  EXPECT_EQ(sinks_[5]->received, 1);  // reachable again after the heal
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
}

TEST_F(InjectorTest, HealRestoresOnlyTheCut) {
  build_chain(6);
  FaultPlan plan;
  plan.link_down(5.0, 4);        // nodes 4-5, down before the partition
  plan.partition(10.0, {4, 5});  // cut is just link 3 — link 4 already down
  plan.heal(20.0, 0);
  auto injector = make_injector(std::move(plan));
  injector.arm();
  queue_.run();

  EXPECT_TRUE(topo_->link_up(3));   // healed
  EXPECT_FALSE(topo_->link_up(4));  // still down: it was not part of the cut
  EXPECT_EQ(injector.stats().links_taken_down, 2u);
  EXPECT_EQ(injector.stats().links_brought_up, 1u);
}

TEST_F(InjectorTest, MembershipEventsDelegateToHooks) {
  build_chain(3);
  FaultPlan plan;
  plan.join(1.0, 2);
  plan.leave(2.0, 1);
  plan.crash(3.0, 0);
  plan.rejoin(4.0, 0);
  auto injector = make_injector(std::move(plan));

  std::vector<std::pair<net::NodeId, int>> calls;  // (node, kind)
  MembershipHooks hooks;
  hooks.join = [&](net::NodeId n) { calls.emplace_back(n, 0); };
  hooks.leave = [&](net::NodeId n, bool graceful) {
    calls.emplace_back(n, graceful ? 1 : 2);
  };
  injector.set_membership_hooks(std::move(hooks));
  injector.arm();
  queue_.run();

  const std::vector<std::pair<net::NodeId, int>> want{
      {2, 0}, {1, 1}, {0, 2}, {0, 0}};
  EXPECT_EQ(calls, want);
  EXPECT_EQ(injector.stats().joins, 2u);
  EXPECT_EQ(injector.stats().leaves, 1u);
  EXPECT_EQ(injector.stats().crashes, 1u);
}

TEST_F(InjectorTest, MissingHooksMakeMembershipEventsNoOps) {
  build_chain(2);
  FaultPlan plan;
  plan.join(1.0, 0);
  plan.crash(2.0, 1);
  auto injector = make_injector(std::move(plan));
  injector.arm();
  EXPECT_NO_THROW(queue_.run());
}

TEST_F(InjectorTest, BurstEpochInstallsAndRemovesFaultDropPolicy) {
  build_chain(2);
  FaultPlan plan;
  net::GilbertElliottDrop::Params burst;
  burst.p_good_bad = 1.0;  // bad after the first consulted hop
  burst.p_bad_good = 0.0;
  burst.loss_bad = 1.0;
  plan.burst_on(1.0, burst);
  plan.burst_off(10.0);
  auto injector = make_injector(std::move(plan));
  injector.arm();

  queue_.schedule_at(2.0, [this] {
    EXPECT_NE(net_->fault_drop_policy(), nullptr);
    // With p_good_bad = 1 the time-slotted chain is bad from slot 1 on, so
    // both multicasts at t=2.0 land in the bad state and drop.
    net_->multicast(0, make_packet(1));
    net_->multicast(0, make_packet(1));
  });
  queue_.schedule_at(12.0, [this] {
    EXPECT_EQ(net_->fault_drop_policy(), nullptr);
    net_->multicast(0, make_packet(1));
  });
  queue_.run();

  EXPECT_EQ(sinks_[1]->received, 1);  // two burst losses, one clean delivery
  EXPECT_EQ(net_->stats().drops, 2u);
  EXPECT_EQ(injector.stats().burst_epochs, 1u);
}

TEST_F(InjectorTest, DisruptionWindowsTrackOverlappingFaults) {
  build_chain(6);
  FaultPlan plan;
  plan.link_down(10.0, 0);
  plan.partition(12.0, {5});  // overlaps the link outage
  plan.link_up(20.0, 0);
  plan.heal(25.0, 0);
  plan.link_down(40.0, 1);  // never repaired
  auto injector = make_injector(std::move(plan));
  injector.arm();
  queue_.run();

  const auto& windows = injector.disruption_windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].start, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 25.0);
  EXPECT_DOUBLE_EQ(windows[1].start, 40.0);
  EXPECT_TRUE(std::isinf(windows[1].end));
}

TEST_F(InjectorTest, RedundantLinkEventsAreIgnored) {
  build_chain(3);
  FaultPlan plan;
  plan.link_up(1.0, 0);    // already up
  plan.link_down(2.0, 0);
  plan.link_down(3.0, 0);  // already down
  plan.link_up(4.0, 0);
  auto injector = make_injector(std::move(plan));
  injector.arm();
  queue_.run();

  EXPECT_TRUE(topo_->link_up(0));
  EXPECT_EQ(injector.stats().links_taken_down, 1u);
  EXPECT_EQ(injector.stats().links_brought_up, 1u);
  const auto& windows = injector.disruption_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].start, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 4.0);
}

TEST_F(InjectorTest, EmitsFaultTraceEvents) {
  build_chain(4);
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kFault));

  FaultPlan plan;
  plan.link_down(1.0, 2);
  plan.link_up(2.0, 2);
  plan.partition(3.0, {3});
  plan.heal(4.0, 0);
  plan.crash(5.0, 3);
  plan.rejoin(6.0, 3);
  plan.burst_on(7.0, {});
  plan.burst_off(8.0);
  auto injector = make_injector(std::move(plan));
  injector.set_tracer(&tracer);
  injector.arm();
  queue_.run();

  std::vector<trace::EventType> types;
  for (const trace::Event& ev : capture.events()) types.push_back(ev.type);
  const std::vector<trace::EventType> want{
      trace::EventType::kFaultLinkDown, trace::EventType::kFaultLinkUp,
      trace::EventType::kFaultPartition, trace::EventType::kFaultHeal,
      trace::EventType::kFaultCrash,     trace::EventType::kFaultRejoin,
      trace::EventType::kFaultBurstOn,   trace::EventType::kFaultBurstOff};
  // The partition/heal pair also emits link down/up events for the cut.
  std::vector<trace::EventType> filtered;
  for (trace::EventType t : types) {
    if (filtered.size() < want.size() && t == want[filtered.size()]) {
      filtered.push_back(t);
    }
  }
  EXPECT_EQ(filtered, want);
  EXPECT_GE(capture.events().size(), want.size());
}

TEST_F(InjectorTest, SameTimeCutEventsFormOneEditGroup) {
  build_chain(8);
  // Warm every source's tree so the post-fault queries below are repairs.
  for (net::NodeId v = 0; v < 8; ++v) net_->routing().spt(v);
  const auto builds_before = net_->routing().stats().full_builds;

  FaultPlan plan;
  plan.link_down(10.0, 6);       // severs node 7
  plan.partition(10.0, {0, 1});  // same instant: cuts link 1 (nodes 1-2)
  auto injector = make_injector(std::move(plan));
  injector.arm();
  queue_.run();

  EXPECT_FALSE(topo_->link_up(6));
  EXPECT_FALSE(topo_->link_up(1));
  EXPECT_EQ(injector.stats().links_taken_down, 2u);

  // Both cuts land in one journal delta batch: bringing a cached tree up to
  // date costs one repair pass, not one rebuild per downed link.
  net_->routing().spt(0);
  EXPECT_EQ(net_->routing().stats().repairs, 1u);
  EXPECT_EQ(net_->routing().stats().full_builds, builds_before);
}

TEST_F(InjectorTest, PartitionInvalidatesInFlightAgainstPreFailureTrees) {
  build_chain(6);
  FaultPlan plan;
  plan.partition(1.5, {3, 4, 5});  // cut = link 2, while t=0 packet flies
  auto injector = make_injector(std::move(plan));
  injector.arm();

  net_->multicast(0, make_packet(1));  // deliveries due at t = 1..5
  queue_.run();

  EXPECT_EQ(sinks_[1]->received, 1);
  EXPECT_EQ(sinks_[2]->received, 1);
  EXPECT_EQ(sinks_[3]->received, 0);  // in flight across the cut
  EXPECT_EQ(sinks_[4]->received, 0);
  EXPECT_EQ(sinks_[5]->received, 0);
  EXPECT_EQ(net_->stats().in_flight_invalidated, 3u);
}

TEST_F(InjectorTest, RejectsMismatchedTopology) {
  build_chain(3);
  net::Topology other = topo::make_chain(3);
  EXPECT_THROW(FaultInjector(queue_, other, *net_, FaultPlan{},
                             util::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace srm::fault
