#include "fault/checker.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "trace/trace.h"

namespace srm::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

trace::Event ev(trace::EventType type, double t, std::uint64_t actor,
                std::uint64_t seq = 0) {
  trace::Event e;
  e.type = type;
  e.t = t;
  e.actor = actor;
  e.a = 1;  // ADU name: source 1, page (1, 0), seq in d
  e.b = 1;
  e.c = 0;
  e.d = seq;
  return e;
}

CheckerOptions opts(double deadline = 100.0) {
  CheckerOptions o;
  o.deadline = deadline;
  return o;
}

TEST(CheckerTest, EmptyTracePasses) {
  const auto report = RecoveryInvariantChecker().check({}, {}, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.losses, 0u);
}

TEST(CheckerTest, RecoveredInTimePassesAndRecordsLatency) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
      ev(trace::EventType::kSrmRecovered, 14.5, 2),
  };
  const auto report = RecoveryInvariantChecker(opts()).check(events, {}, 100.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.losses, 1u);
  EXPECT_EQ(report.recovered, 1u);
  ASSERT_EQ(report.recovery_latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(report.recovery_latencies[0], 4.5);
}

TEST(CheckerTest, UnrecoveredPastDeadlineFails) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.unrecovered.size(), 1u);
  EXPECT_EQ(report.unrecovered[0].member, 2u);
  EXPECT_DOUBLE_EQ(report.unrecovered[0].deadline_at, 60.0);
  EXPECT_FALSE(report.unrecovered[0].abandoned);
}

TEST(CheckerTest, AbandonedLossIsFlagged) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
      ev(trace::EventType::kSrmAbandoned, 20.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  ASSERT_EQ(report.unrecovered.size(), 1u);
  EXPECT_TRUE(report.unrecovered[0].abandoned);
}

TEST(CheckerTest, DeadlineBeyondTraceIsPendingNotViolation) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(100.0)).check(events, {}, 50.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.pending_past_trace, 1u);
}

TEST(CheckerTest, DepartedMemberIsExempt) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
      ev(trace::EventType::kFaultCrash, 20.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.exempt_departed, 1u);
}

TEST(CheckerTest, DepartureBeforeLossDoesNotExempt) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kFaultLeave, 5.0, 2),
      ev(trace::EventType::kSrmLoss, 10.0, 2),  // rejoined and lost again
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.exempt_departed, 0u);
}

TEST(CheckerTest, OverlappingWindowExtendsDeadline) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
      ev(trace::EventType::kSrmRecovered, 115.0, 2),  // late vs. base deadline
  };
  const std::vector<FaultInjector::Window> windows{{15.0, 100.0}};
  // Base deadline 10 + 20 = 30, but the window [15, 100] overlaps it, so the
  // effective deadline is 100 + 20 = 120 and the recovery at 115 is in time.
  const auto report =
      RecoveryInvariantChecker(opts(20.0)).check(events, windows, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.recovered, 1u);
}

TEST(CheckerTest, ClosedWindowBeforeLossDoesNotExtend) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
  };
  const std::vector<FaultInjector::Window> windows{{1.0, 5.0}};
  const auto report =
      RecoveryInvariantChecker(opts(20.0)).check(events, windows, 1000.0);
  EXPECT_FALSE(report.passed);
  ASSERT_EQ(report.unrecovered.size(), 1u);
  EXPECT_DOUBLE_EQ(report.unrecovered[0].deadline_at, 30.0);
}

TEST(CheckerTest, UnhealedDisruptionExemptsOverlappingLosses) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
  };
  const std::vector<FaultInjector::Window> windows{{5.0, kInf}};
  const auto report =
      RecoveryInvariantChecker(opts(20.0)).check(events, windows, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.exempt_unhealed, 1u);
}

TEST(CheckerTest, RedetectionRestartsTheClock) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
      ev(trace::EventType::kSrmLoss, 500.0, 2),  // same ADU, detected again
      ev(trace::EventType::kSrmRecovered, 510.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.losses, 1u);  // one (member, ADU) pair
  ASSERT_EQ(report.recovery_latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(report.recovery_latencies[0], 10.0);
}

TEST(CheckerTest, DistinctAdusAndMembersAreSeparateLosses) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2, /*seq=*/0),
      ev(trace::EventType::kSrmLoss, 10.0, 2, /*seq=*/1),
      ev(trace::EventType::kSrmLoss, 10.0, 3, /*seq=*/0),
      ev(trace::EventType::kSrmRecovered, 20.0, 2, /*seq=*/0),
      ev(trace::EventType::kSrmRecovered, 20.0, 2, /*seq=*/1),
      ev(trace::EventType::kSrmRecovered, 20.0, 3, /*seq=*/0),
  };
  const auto report = RecoveryInvariantChecker(opts()).check(events, {}, 100.0);
  EXPECT_EQ(report.losses, 3u);
  EXPECT_EQ(report.recovered, 3u);
  EXPECT_TRUE(report.passed);
}

TEST(CheckerTest, StormViolationWhenBudgetExceeded) {
  CheckerOptions o;
  o.storm_window = 1.0;
  o.storm_budget = 10;
  std::vector<trace::Event> events;
  for (int i = 0; i < 12; ++i) {
    events.push_back(
        ev(trace::EventType::kSrmReqSend, 50.0 + i * 0.01, 2));
  }
  const auto report = RecoveryInvariantChecker(o).check(events, {}, 100.0);
  EXPECT_FALSE(report.passed);
  EXPECT_GT(report.storm_violations, 0u);
  EXPECT_EQ(report.worst_window_count, 12u);
  EXPECT_DOUBLE_EQ(report.worst_window_start, 50.0);
}

TEST(CheckerTest, SpreadOutSendsAreNotAStorm) {
  CheckerOptions o;
  o.storm_window = 1.0;
  o.storm_budget = 10;
  std::vector<trace::Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(ev(trace::EventType::kSrmRepSend, i * 2.0, 2));
  }
  const auto report = RecoveryInvariantChecker(o).check(events, {}, 1000.0);
  EXPECT_TRUE(report.passed);
  EXPECT_EQ(report.storm_violations, 0u);
  EXPECT_EQ(report.worst_window_count, 1u);
}

TEST(CheckerTest, AdaptationRequiredAfterDisruptionWithLosses) {
  CheckerOptions o;
  o.require_adaptation = true;
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 30.0, 2),
      ev(trace::EventType::kSrmRecovered, 35.0, 2),
  };
  const std::vector<FaultInjector::Window> windows{{10.0, 20.0}};
  const auto no_adapt = RecoveryInvariantChecker(o).check(events, windows,
                                                          1000.0);
  EXPECT_FALSE(no_adapt.passed);
  EXPECT_EQ(no_adapt.adaptation_failures, 1u);

  std::vector<trace::Event> with_adapt = events;
  with_adapt.push_back(ev(trace::EventType::kSrmAdaptReq, 32.0, 2));
  const auto adapted = RecoveryInvariantChecker(o).check(with_adapt, windows,
                                                         1000.0);
  EXPECT_TRUE(adapted.passed);
  EXPECT_EQ(adapted.adaptation_failures, 0u);
}

TEST(CheckerTest, SummaryMentionsVerdictAndViolations) {
  const std::vector<trace::Event> events{
      ev(trace::EventType::kSrmLoss, 10.0, 2),
  };
  const auto report =
      RecoveryInvariantChecker(opts(50.0)).check(events, {}, 1000.0);
  const std::string s = report.summary();
  EXPECT_NE(s.find("FAIL"), std::string::npos);
  EXPECT_NE(s.find("member 2"), std::string::npos);
  const auto ok = RecoveryInvariantChecker(opts()).check({}, {}, 1.0);
  EXPECT_NE(ok.summary().find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace srm::fault
