#include "harness/fault_scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "harness/session.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace srm::harness {
namespace {

SimSession make_session(std::size_t nodes, std::vector<net::NodeId> members,
                        std::uint64_t seed = 5) {
  SrmConfig cfg;
  return SimSession(topo::make_chain(nodes), std::move(members),
                    {cfg, seed, /*group=*/1});
}

TEST(SimSessionMembershipTest, AddAndRemoveMembersKeepIndexConsistent) {
  SimSession s = make_session(6, {0, 2, 4});
  EXPECT_TRUE(s.has_member(2));
  EXPECT_FALSE(s.has_member(3));

  s.add_member(3);
  EXPECT_TRUE(s.has_member(3));
  EXPECT_EQ(s.member_count(), 4u);
  EXPECT_EQ(&s.agent_at(3), &s.agent_at(3));

  s.remove_member(2, /*graceful=*/true);
  EXPECT_FALSE(s.has_member(2));
  EXPECT_EQ(s.member_count(), 3u);
  // Members added after the erase point are still addressable.
  EXPECT_NO_THROW(s.agent_at(0));
  EXPECT_NO_THROW(s.agent_at(3));
  EXPECT_NO_THROW(s.agent_at(4));
  EXPECT_THROW(s.agent_at(2), std::out_of_range);

  EXPECT_THROW(s.add_member(3), std::logic_error);  // duplicate
  EXPECT_THROW(s.remove_member(2), std::out_of_range);
}

TEST(MembershipHooksTest, JoinAndLeaveAreIdempotent) {
  SimSession s = make_session(4, {0, 1});
  fault::MembershipHooks hooks = membership_hooks(s);
  hooks.join(2);
  EXPECT_TRUE(s.has_member(2));
  hooks.join(2);  // already present: no-op, no throw
  EXPECT_EQ(s.member_count(), 3u);
  hooks.leave(2, false);
  EXPECT_FALSE(s.has_member(2));
  hooks.leave(2, false);  // already gone: no-op
  EXPECT_EQ(s.member_count(), 2u);
}

TEST(PartitionHealPlanTest, IslandExcludesRootAndPlanHasOnePartition) {
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const net::Topology topo = topo::make_random_tree(30, rng);
    std::vector<net::NodeId> island;
    const fault::FaultPlan plan =
        partition_heal_plan(topo, /*root=*/0, 10.0, 20.0, rng, &island);
    EXPECT_EQ(plan.partition_count(), 1u);
    EXPECT_EQ(plan.size(), 2u);
    ASSERT_FALSE(island.empty());
    EXPECT_EQ(std::find(island.begin(), island.end(), 0), island.end())
        << "root must stay on the surviving side";
  }
}

TEST(ChurnPlanTest, SparesTheKeptMemberAndPairsRejoins) {
  util::Rng rng(3);
  const std::vector<net::NodeId> members{1, 2, 3, 4, 5};
  const fault::FaultPlan plan = churn_plan(members, /*keep=*/3, /*cycles=*/8,
                                           10.0, 100.0, /*downtime=*/5.0,
                                           /*crash=*/true, rng);
  ASSERT_EQ(plan.size(), 16u);  // crash + rejoin per cycle
  for (std::size_t i = 0; i < plan.size(); i += 2) {
    const auto& crash = plan.events()[i];
    const auto& rejoin = plan.events()[i + 1];
    EXPECT_EQ(crash.kind, fault::FaultEvent::Kind::kCrash);
    EXPECT_EQ(rejoin.kind, fault::FaultEvent::Kind::kRejoin);
    EXPECT_EQ(crash.node, rejoin.node);
    EXPECT_NE(crash.node, 3u);
    EXPECT_DOUBLE_EQ(rejoin.at, crash.at + 5.0);
    EXPECT_GE(crash.at, 10.0);
    EXPECT_LT(crash.at, 100.0);
  }
}

TEST(ChurnPlanTest, RejectsEmptyPool) {
  util::Rng rng(1);
  EXPECT_THROW(churn_plan({7}, /*keep=*/7, 1, 0.0, 1.0, 0.5, false, rng),
               std::invalid_argument);
}

TEST(LinkFlapPlanTest, AlternatesDownUpAtThePeriod) {
  const fault::FaultPlan plan =
      link_flap_plan(/*link=*/2, /*flaps=*/3, /*t_begin=*/10.0,
                     /*period=*/20.0, /*downtime=*/4.0);
  ASSERT_EQ(plan.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& down = plan.events()[2 * i];
    const auto& up = plan.events()[2 * i + 1];
    EXPECT_EQ(down.kind, fault::FaultEvent::Kind::kLinkDown);
    EXPECT_EQ(up.kind, fault::FaultEvent::Kind::kLinkUp);
    EXPECT_DOUBLE_EQ(down.at, 10.0 + 20.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(up.at, down.at + 4.0);
  }
  EXPECT_THROW(link_flap_plan(0, 1, 0.0, 1.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace srm::harness
