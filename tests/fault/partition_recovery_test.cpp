// Acceptance scenario for the fault subsystem (ISSUE 4): on a random tree
// with N=100 nodes and G=40 members, a partition/heal round trip must leave
// zero unrecovered ADUs at surviving members — the paper's Sec. III-D claim
// that members "continue to send data in the connected components" and the
// repair machinery redistributes everything after the heal.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/checker.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "harness/fault_scenarios.h"
#include "harness/loss_round.h"
#include "harness/scenario.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/trace.h"

namespace srm {
namespace {

struct Outcome {
  fault::CheckerReport report;
  std::size_t island_members = 0;
  std::size_t disrupted_rounds = 0;
};

Outcome run_partition_heal(std::uint64_t seed) {
  util::Rng rng(seed);
  net::Topology topo = topo::make_random_tree(100, rng);
  std::vector<net::NodeId> all(100);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<net::NodeId>(i);
  }
  rng.shuffle(all);
  std::vector<net::NodeId> members(all.begin(), all.begin() + 40);
  std::sort(members.begin(), members.end());
  const net::NodeId source = members[rng.index(members.size())];

  std::vector<net::NodeId> island;
  fault::FaultPlan plan = harness::partition_heal_plan(
      topo, source, /*t_down=*/30.0, /*t_heal=*/90.0, rng, &island);

  SrmConfig cfg;
  cfg.timers = paper_fixed_params(members.size());
  cfg.backoff_factor = 3.0;
  cfg.adaptive.enabled = true;
  harness::SimSession session(std::move(topo), members, {cfg, seed, 1});
  trace::VectorSink capture;
  trace::Tracer tracer;
  tracer.set_sink(&capture);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm) |
                  static_cast<std::uint32_t>(trace::Category::kFault));
  session.set_tracer(&tracer);

  fault::FaultInjector injector(session.queue(), session.mutable_topology(),
                                session.network(), std::move(plan),
                                session.rng().fork());
  injector.set_membership_hooks(harness::membership_hooks(session));
  injector.set_tracer(&tracer);
  injector.arm();

  harness::RoundSpec spec;
  spec.source_node = source;
  spec.congested = harness::choose_congested_link(
      session.network().routing(), source, members, rng);
  spec.page = PageId{static_cast<SourceId>(source), 0};
  Outcome out;
  for (int r = 0; r < 6; ++r) {
    try {
      harness::run_loss_round(session, spec, r * 2);
    } catch (const std::exception&) {
      ++out.disrupted_rounds;  // the partition ate the round — expected
    }
  }

  fault::CheckerOptions copts;
  copts.deadline = 200.0;
  out.report = fault::RecoveryInvariantChecker(copts).check(
      capture.events(), injector.disruption_windows(), session.queue().now());
  for (net::NodeId n : island) {
    if (session.has_member(n)) ++out.island_members;
  }
  return out;
}

class PartitionRecoveryTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PartitionRecoveryTest, ZeroUnrecoveredAtSurvivingMembers) {
  const Outcome out = run_partition_heal(GetParam());
  EXPECT_TRUE(out.report.passed) << out.report.summary();
  EXPECT_TRUE(out.report.unrecovered.empty()) << out.report.summary();
  EXPECT_EQ(out.report.storm_violations, 0u);
  // The scenario has to have exercised recovery to mean anything.
  EXPECT_GT(out.report.losses, 0u);
  EXPECT_GT(out.report.recovered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionRecoveryTest,
                         ::testing::Values(7u, 1995u, 20260806u));

}  // namespace
}  // namespace srm
