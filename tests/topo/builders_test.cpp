#include "topo/builders.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/routing.h"

namespace srm::topo {
namespace {

using net::NodeId;
using net::Topology;

TEST(ChainTest, StructureAndConnectivity) {
  Topology t = make_chain(10);
  EXPECT_EQ(t.node_count(), 10u);
  EXPECT_EQ(t.link_count(), 9u);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(5), 2u);
  EXPECT_EQ(t.degree(9), 1u);
}

TEST(ChainTest, SingleNode) {
  Topology t = make_chain(1);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(ChainTest, RejectsEmpty) { EXPECT_THROW(make_chain(0), std::invalid_argument); }

TEST(StarTest, CenterConnectsAllLeaves) {
  Star s = make_star(8);
  EXPECT_EQ(s.topo.node_count(), 9u);
  EXPECT_EQ(s.topo.link_count(), 8u);
  EXPECT_EQ(s.topo.degree(s.center), 8u);
  EXPECT_EQ(s.leaves.size(), 8u);
  for (NodeId leaf : s.leaves) {
    EXPECT_EQ(s.topo.degree(leaf), 1u);
    EXPECT_NE(leaf, s.center);
  }
}

TEST(StarTest, LeafToLeafDistanceIsTwo) {
  Star s = make_star(5);
  net::Routing r(s.topo);
  EXPECT_DOUBLE_EQ(r.distance(s.leaves[0], s.leaves[4]), 2.0);
}

TEST(BoundedDegreeTreeTest, ExactNodeCountAndDegreeBound) {
  for (std::size_t n : {1u, 2u, 5u, 100u, 1000u}) {
    Topology t = make_bounded_degree_tree(n, 4);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.link_count(), n - 1);
    EXPECT_TRUE(t.connected());
    for (NodeId v = 0; v < n; ++v) EXPECT_LE(t.degree(v), 4u);
  }
}

TEST(BoundedDegreeTreeTest, InteriorNodesSaturate) {
  // In a large degree-4 tree, the root should reach degree 4 and early
  // interior nodes should have degree 4 (3 children + parent).
  Topology t = make_bounded_degree_tree(500, 4);
  EXPECT_EQ(t.degree(0), 4u);
  EXPECT_EQ(t.degree(1), 4u);
}

TEST(BoundedDegreeTreeTest, BfsNumberingIsBalanced) {
  // Node ids are assigned in BFS order, so depth is monotone in id.
  Topology t = make_bounded_degree_tree(85, 4);
  net::Routing r(t);
  int prev_depth = 0;
  for (NodeId v = 0; v < t.node_count(); ++v) {
    const int d = r.hop_count(0, v);
    EXPECT_GE(d, prev_depth);
    prev_depth = std::max(prev_depth, d);
  }
  // 1 + 4 + 4*3 + 4*9 + 4*27/... : depth of node 84 in a degree-4 tree
  EXPECT_EQ(r.hop_count(0, 84), 4);
}

TEST(BoundedDegreeTreeTest, RejectsDegreeBelowTwo) {
  EXPECT_THROW(make_bounded_degree_tree(5, 1), std::invalid_argument);
}

TEST(RandomTreeTest, IsSpanningTree) {
  util::Rng rng(7);
  for (std::size_t n : {2u, 3u, 10u, 200u}) {
    Topology t = make_random_tree(n, rng);
    EXPECT_EQ(t.node_count(), n);
    EXPECT_EQ(t.link_count(), n - 1);
    EXPECT_TRUE(t.connected());
  }
}

TEST(RandomTreeTest, DegreeDistributionMostlySmall) {
  // Palmer: P(deg <= 4) -> ~0.98 for large random labeled trees.
  util::Rng rng(11);
  std::size_t small_degree = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Topology t = make_random_tree(300, rng);
    for (NodeId v = 0; v < t.node_count(); ++v) {
      ++total;
      if (t.degree(v) <= 4) ++small_degree;
    }
  }
  EXPECT_GT(static_cast<double>(small_degree) / total, 0.95);
}

TEST(RandomTreeTest, DifferentSeedsDifferentTrees) {
  util::Rng r1(1), r2(2);
  Topology a = make_random_tree(50, r1);
  Topology b = make_random_tree(50, r2);
  bool differ = false;
  for (std::size_t i = 0; i < a.link_count() && !differ; ++i) {
    if (a.link(static_cast<net::LinkId>(i)).a !=
            b.link(static_cast<net::LinkId>(i)).a ||
        a.link(static_cast<net::LinkId>(i)).b !=
            b.link(static_cast<net::LinkId>(i)).b) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(RandomGraphTest, ExactEdgeCountConnected) {
  util::Rng rng(3);
  Topology t = make_random_graph(100, 150, rng);
  EXPECT_EQ(t.node_count(), 100u);
  EXPECT_EQ(t.link_count(), 150u);
  EXPECT_TRUE(t.connected());
}

TEST(RandomGraphTest, MinimumEdgesIsTree) {
  util::Rng rng(3);
  Topology t = make_random_graph(20, 19, rng);
  EXPECT_EQ(t.link_count(), 19u);
  EXPECT_TRUE(t.connected());
}

TEST(RandomGraphTest, RejectsOutOfRangeEdgeCounts) {
  util::Rng rng(3);
  EXPECT_THROW(make_random_graph(10, 8, rng), std::invalid_argument);
  EXPECT_THROW(make_random_graph(10, 46, rng), std::invalid_argument);
}

TEST(TreeOfLansTest, StructureMatchesSpec) {
  TreeOfLans tl = make_tree_of_lans(10, 4, 5);
  EXPECT_EQ(tl.routers.size(), 10u);
  EXPECT_EQ(tl.workstations.size(), 50u);
  EXPECT_EQ(tl.topo.node_count(), 60u);
  EXPECT_TRUE(tl.topo.connected());
  // Workstations are leaves.
  for (NodeId w : tl.workstations) EXPECT_EQ(tl.topo.degree(w), 1u);
}

TEST(TreeOfLansTest, LanLinksAreFast) {
  TreeOfLans tl = make_tree_of_lans(4, 3, 2, /*backbone=*/1.0, /*lan=*/0.1);
  net::Routing r(tl.topo);
  // Workstation to its own router: 0.1; to a neighbor router: 1.1.
  EXPECT_NEAR(r.distance(tl.workstations[0], tl.routers[0]), 0.1, 1e-12);
}

TEST(AssignSubtreeRegionsTest, PartitionsByRootChild) {
  Topology t = make_bounded_degree_tree(13, 4);  // root + 4 subtrees
  assign_subtree_regions(t, 0);
  EXPECT_EQ(t.admin_region(0), 0u);
  // Children of the root get distinct regions.
  std::map<std::uint32_t, int> region_count;
  for (NodeId v = 1; v < t.node_count(); ++v) {
    EXPECT_NE(t.admin_region(v), 0u);
    ++region_count[t.admin_region(v)];
  }
  EXPECT_EQ(region_count.size(), 4u);
  // Nodes in the same subtree share a region: node 1's children are 5,6,7.
  EXPECT_EQ(t.admin_region(5), t.admin_region(1));
  EXPECT_NE(t.admin_region(5), t.admin_region(2));
}

}  // namespace
}  // namespace srm::topo
