#include <gtest/gtest.h>

#include "net/routing.h"
#include "topo/builders.h"

namespace srm::topo {
namespace {

using net::NodeId;

TEST(RingTest, StructureAndShortestPaths) {
  net::Topology t = make_ring(8);
  EXPECT_EQ(t.node_count(), 8u);
  EXPECT_EQ(t.link_count(), 8u);
  EXPECT_TRUE(t.connected());
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(t.degree(v), 2u);
  net::Routing r(t);
  // Shortest way round: 3 hops to node 3, 3 hops to node 5 (other way).
  EXPECT_DOUBLE_EQ(r.distance(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(r.distance(0, 5), 3.0);
  EXPECT_DOUBLE_EQ(r.distance(0, 4), 4.0);  // antipode
}

TEST(RingTest, RejectsTooSmall) {
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(DumbbellTest, StructureAndBottleneck) {
  Dumbbell d = make_dumbbell(4, /*bottleneck_hops=*/2, /*bneck_delay=*/5.0,
                             /*access=*/1.0);
  EXPECT_EQ(d.left_hosts.size(), 4u);
  EXPECT_EQ(d.right_hosts.size(), 4u);
  EXPECT_TRUE(d.topo.connected());
  net::Routing r(d.topo);
  // Same side: host-router-host = 2.
  EXPECT_DOUBLE_EQ(r.distance(d.left_hosts[0], d.left_hosts[1]), 2.0);
  // Cross side: 1 + 2*5 + 1 = 12.
  EXPECT_DOUBLE_EQ(r.distance(d.left_hosts[0], d.right_hosts[0]), 12.0);
  EXPECT_EQ(r.hop_count(d.left_hosts[0], d.right_hosts[0]), 4);
}

TEST(DumbbellTest, SingleHopBottleneck) {
  Dumbbell d = make_dumbbell(2);
  net::Routing r(d.topo);
  EXPECT_DOUBLE_EQ(r.distance(d.left_router, d.right_router), 5.0);
  EXPECT_EQ(r.hop_count(d.left_router, d.right_router), 1);
}

TEST(DumbbellTest, RejectsBadArgs) {
  EXPECT_THROW(make_dumbbell(0), std::invalid_argument);
  EXPECT_THROW(make_dumbbell(2, 0), std::invalid_argument);
}

TEST(TransitStubTest, StructureCounts) {
  util::Rng rng(5);
  TransitStub ts = make_transit_stub(4, 2, 5, rng);
  EXPECT_EQ(ts.transit_nodes.size(), 4u);
  EXPECT_EQ(ts.stub_nodes.size(), 4u * 2u * 5u);
  EXPECT_EQ(ts.topo.node_count(), 4u + 40u);
  EXPECT_TRUE(ts.topo.connected());
}

TEST(TransitStubTest, BackboneSlowerThanStubs) {
  util::Rng rng(7);
  TransitStub ts = make_transit_stub(4, 1, 4, rng, /*transit=*/10.0,
                                     /*stub=*/1.0);
  net::Routing r(ts.topo);
  // Within one stub domain: cheap.  Across the backbone: dominated by
  // transit-delay links.
  const double intra = r.distance(ts.stub_nodes[0], ts.stub_nodes[3]);
  const double inter = r.distance(ts.stub_nodes[0], ts.stub_nodes.back());
  EXPECT_LT(intra, 8.0);
  EXPECT_GT(inter, 10.0);
}

TEST(TransitStubTest, DeterministicGivenRngState) {
  util::Rng a(9), b(9);
  TransitStub x = make_transit_stub(3, 2, 6, a);
  TransitStub y = make_transit_stub(3, 2, 6, b);
  ASSERT_EQ(x.topo.link_count(), y.topo.link_count());
  for (std::size_t i = 0; i < x.topo.link_count(); ++i) {
    EXPECT_EQ(x.topo.link(static_cast<net::LinkId>(i)).a,
              y.topo.link(static_cast<net::LinkId>(i)).a);
    EXPECT_EQ(x.topo.link(static_cast<net::LinkId>(i)).b,
              y.topo.link(static_cast<net::LinkId>(i)).b);
  }
}

TEST(TransitStubTest, RejectsBadArgs) {
  util::Rng rng(1);
  EXPECT_THROW(make_transit_stub(2, 1, 4, rng), std::invalid_argument);
  EXPECT_THROW(make_transit_stub(3, 1, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace srm::topo
