// Workload suite: every generator is deterministic from its seed, every
// workload passes the recovery invariant checker under the sim backend, and
// the scripts actually exercise what their names promise.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace srm::workload {
namespace {

TEST(WorkloadGenerators, RegistryCoversAllFour) {
  const auto names = workload_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    const WorkloadSpec spec = make_workload(name, 8, 1);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.actions.empty()) << name;
    // Actions are time-sorted.
    for (std::size_t i = 1; i < spec.actions.size(); ++i) {
      EXPECT_LE(spec.actions[i - 1].at, spec.actions[i].at) << name;
    }
  }
  EXPECT_THROW(make_workload("nope", 8, 1), std::invalid_argument);
}

TEST(WorkloadGenerators, FlashCrowdJoinsLate) {
  const WorkloadSpec spec = make_flash_crowd(12, 3);
  std::size_t joins = 0, probes = 0;
  for (const auto& a : spec.actions) {
    if (a.kind == Action::Kind::kJoin) {
      ++joins;
      EXPECT_GE(a.at, 3.0);  // the crowd arrives after the history exists
    }
    if (a.kind == Action::Kind::kPageProbe) ++probes;
  }
  EXPECT_EQ(joins, spec.peak_members - spec.initial_members);
  EXPECT_EQ(probes, joins);
}

TEST(WorkloadGenerators, ConferenceRotatesSpeakers) {
  const WorkloadSpec spec = make_conference(10, 3);
  std::set<std::uint32_t> speakers;
  for (const auto& a : spec.actions) {
    if (a.kind == Action::Kind::kSend) speakers.insert(a.member);
  }
  EXPECT_GE(speakers.size(), 2u);
}

TEST(WorkloadGenerators, DiurnalChurns) {
  const WorkloadSpec spec = make_diurnal(12, 3);
  std::size_t joins = 0, departs = 0;
  for (const auto& a : spec.actions) {
    if (a.kind == Action::Kind::kJoin) ++joins;
    if (a.kind == Action::Kind::kLeave || a.kind == Action::Kind::kCrash) {
      ++departs;
    }
  }
  EXPECT_EQ(joins, spec.peak_members - spec.initial_members);
  EXPECT_EQ(departs, joins);
}

TEST(WorkloadGenerators, RepairStormDropsCorrelated) {
  const WorkloadSpec spec = make_repair_storm(11, 3);
  std::size_t drops = 0;
  for (const auto& a : spec.actions) {
    if (a.kind == Action::Kind::kDropOnce) ++drops;
  }
  // 6 bursts x 60% of 10 receivers.
  EXPECT_EQ(drops, 6u * 6u);
}

class WorkloadSim : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSim, PassesCheckerAndIsDeterministic) {
  const WorkloadSpec spec = make_workload(GetParam(), /*members=*/10,
                                          /*seed=*/42);
  const WorkloadResult a = run_workload_sim(spec);
  EXPECT_TRUE(a.passed) << a.checker.summary();
  EXPECT_GT(a.data_sent, 0u);
  EXPECT_GT(a.losses, 0u) << "workload produced no recovery work";
  EXPECT_GT(a.recoveries, 0u);

  // Same spec, fresh world: bit-identical story digest.
  const WorkloadResult b = run_workload_sim(spec);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.scripted_drops, b.scripted_drops);
  EXPECT_DOUBLE_EQ(a.recovery_p99, b.recovery_p99);

  // A different seed reshuffles the script.
  const WorkloadResult c =
      run_workload_sim(make_workload(GetParam(), 10, 43));
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSim,
                         ::testing::Values("flash-crowd", "conference",
                                           "diurnal", "repair-storm"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace srm::workload
