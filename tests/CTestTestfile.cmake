# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/util_test[1]_include.cmake")
include("/root/repo/tests/sim_test[1]_include.cmake")
include("/root/repo/tests/net_test[1]_include.cmake")
include("/root/repo/tests/topo_test[1]_include.cmake")
include("/root/repo/tests/srm_test[1]_include.cmake")
include("/root/repo/tests/harness_test[1]_include.cmake")
include("/root/repo/tests/wb_test[1]_include.cmake")
include("/root/repo/tests/integration_test[1]_include.cmake")
