// RecoveryTimeline tests: folding a live capture into per-loss stories,
// agreement with the aggregate AgentMetrics counters, lossless analysis
// after a JSONL round-trip, and bit-identical timelines across
// ReplicationRunner thread counts.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/loss_round.h"
#include "harness/replication.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/timeline.h"
#include "trace/trace.h"

namespace srm::trace {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig deterministic_config() {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
  return cfg;
}

struct TracedRound {
  harness::RoundResult result;
  std::vector<Event> events;
  std::size_t requests_metric = 0;
  std::size_t repairs_metric = 0;
};

// The Sec. IV-A chain scenario: source 0, drop on (3,4), deterministic
// timers, so node 4 requests and node 3 repairs, exactly once each.
TracedRound run_chain_round(std::uint64_t seed) {
  TracedRound out;
  VectorSink sink;
  Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(Category::kSrm));
  harness::SimSession s(topo::make_chain(8), all_nodes(8),
                        {deterministic_config(), seed, 1});
  s.set_tracer(&tracer);
  harness::RoundSpec spec;
  spec.source_node = 0;
  spec.congested = harness::DirectedLink{3, 4};
  spec.page = PageId{0, 0};
  out.result = harness::run_loss_round(s, spec, 0);
  s.for_each_agent([&](SrmAgent& a) {
    out.requests_metric += a.metrics().requests_sent;
    out.repairs_metric += a.metrics().repairs_sent;
  });
  out.events = sink.events();
  return out;
}

TEST(RecoveryTimelineTest, ChainRoundFoldsIntoOneStory) {
  const TracedRound round = run_chain_round(1);
  const RecoveryTimeline timeline = RecoveryTimeline::fold(round.events);

  // One dropped ADU -> one recovery story.
  ASSERT_EQ(timeline.stories().size(), 1u);
  const RecoveryStory& story = timeline.stories()[0];
  EXPECT_EQ(story.adu, (AduKey{0, 0, 0, 0}));

  // Nodes 4..7 detected the loss; node 4 (closest to the congested link)
  // both detected and requested first; node 3 answered.
  EXPECT_EQ(story.detections, 4u);
  EXPECT_EQ(story.first_detector, 4u);
  EXPECT_EQ(story.requests_sent, 1u);
  EXPECT_EQ(story.first_requestor, 4u);
  EXPECT_EQ(story.repairs_sent, 1u);
  EXPECT_EQ(story.first_responder, 3u);
  EXPECT_EQ(story.duplicate_requests(), 0u);
  EXPECT_EQ(story.duplicate_repairs(), 0u);
  EXPECT_EQ(story.recoveries, 4u);
  EXPECT_EQ(story.abandoned, 0u);

  // Milestones are ordered: detect <= first request < first repair <= done.
  EXPECT_LE(story.first_detect_time, story.first_request_time);
  EXPECT_LT(story.first_request_time, story.first_repair_time);
  EXPECT_LE(story.first_repair_time, story.last_recovery_time);
}

TEST(RecoveryTimelineTest, TotalsMatchAggregateMetrics) {
  const TracedRound round = run_chain_round(1);
  const RecoveryTimeline timeline = RecoveryTimeline::fold(round.events);
  // The timeline reconstruction and the aggregate counters must agree —
  // both with each other and with the round result.
  EXPECT_EQ(timeline.total_requests(), round.requests_metric);
  EXPECT_EQ(timeline.total_repairs(), round.repairs_metric);
  EXPECT_EQ(timeline.total_requests(), round.result.requests);
  EXPECT_EQ(timeline.total_repairs(), round.result.repairs);
}

TEST(RecoveryTimelineTest, JsonlRoundTripFoldsIdentically) {
  const TracedRound round = run_chain_round(1);
  std::ostringstream out;
  JsonlSink sink(out);
  for (const Event& e : round.events) sink.on_event(e);
  std::istringstream in(out.str());
  const std::vector<Event> reread = read_jsonl(in);
  ASSERT_EQ(reread, round.events);
  EXPECT_EQ(RecoveryTimeline::fold(reread).summary(),
            RecoveryTimeline::fold(round.events).summary());
}

TEST(RecoveryTimelineTest, SuppressionOrderIsDeterministic) {
  // Same seed -> byte-identical summary, including the suppression order.
  const std::string a =
      RecoveryTimeline::fold(run_chain_round(7).events).summary();
  const std::string b =
      RecoveryTimeline::fold(run_chain_round(7).events).summary();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(RecoveryTimelineTest, FindAndMissingKeys) {
  const TracedRound round = run_chain_round(1);
  const RecoveryTimeline timeline = RecoveryTimeline::fold(round.events);
  EXPECT_NE(timeline.find(AduKey{0, 0, 0, 0}), nullptr);
  EXPECT_EQ(timeline.find(AduKey{0, 0, 0, 99}), nullptr);
}

TEST(RecoveryTimelineTest, TimelineBitIdenticalAcrossThreadCounts) {
  // Each replication owns its session + tracer + sink, so the folded
  // summaries must be identical whether the batch runs on 1 thread or 4.
  const auto run_batch = [](unsigned threads) {
    harness::ReplicationRunner runner(threads);
    return runner.map<std::string>(6, [](std::size_t i) {
      return RecoveryTimeline::fold(
                 run_chain_round(static_cast<std::uint64_t>(i) + 1).events)
          .summary();
    });
  };
  const std::vector<std::string> serial = run_batch(1);
  const std::vector<std::string> parallel = run_batch(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "replication " << i;
  }
}

}  // namespace
}  // namespace srm::trace
