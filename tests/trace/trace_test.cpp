// Core tracing-layer tests: schema integrity, mask parsing, the
// zero-emission guarantee when disabled, category filtering, and lossless
// JSONL / binary round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/loss_round.h"
#include "harness/session.h"
#include "topo/builders.h"
#include "trace/trace.h"

namespace srm::trace {
namespace {

std::vector<net::NodeId> all_nodes(std::size_t n) {
  std::vector<net::NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<net::NodeId>(i);
  return v;
}

SrmConfig deterministic_config() {
  SrmConfig cfg;
  cfg.timers = TimerParams{1.0, 0.0, 1.0, 0.0};
  return cfg;
}

harness::RoundResult run_traced_chain_round(Tracer& tracer) {
  harness::SimSession s(topo::make_chain(8), all_nodes(8),
                        {deterministic_config(), 1, 1});
  s.set_tracer(&tracer);
  harness::RoundSpec spec;
  spec.source_node = 0;
  spec.congested = harness::DirectedLink{3, 4};
  spec.page = PageId{0, 0};
  return harness::run_loss_round(s, spec, 0);
}

// One synthetic event per type, with every slot populated so round-trips
// exercise all fields (unused slots are dropped by JSONL by design; they are
// zeroed here so Event equality still holds after a JSONL round-trip).
std::vector<Event> sample_events() {
  std::vector<Event> events;
  std::uint64_t n = 1;
  for (const EventSpec& spec : all_specs()) {
    Event e;
    e.type = spec.type;
    e.t = 0.125 * static_cast<double>(n);
    e.actor = 100 + n;
    if (spec.a != nullptr) e.a = n + 1;
    if (spec.b != nullptr) e.b = n + 2;
    if (spec.c != nullptr) e.c = n + 3;
    if (spec.d != nullptr) e.d = n + 4;
    if (spec.e != nullptr) e.e = n + 5;
    if (spec.x != nullptr) e.x = 0.1 + static_cast<double>(n) / 3.0;
    if (spec.y != nullptr) e.y = 1e-9 * static_cast<double>(n);
    events.push_back(e);
    ++n;
  }
  return events;
}

// --- schema ------------------------------------------------------------------

TEST(TraceSchemaTest, EveryTypeHasASpecAndRoundTripsByName) {
  ASSERT_FALSE(all_specs().empty());
  for (const EventSpec& spec : all_specs()) {
    const EventSpec& by_type = spec_of(spec.type);
    EXPECT_STREQ(by_type.name, spec.name);
    const EventSpec* by_name = spec_by_name(spec.name);
    ASSERT_NE(by_name, nullptr) << spec.name;
    EXPECT_EQ(by_name->type, spec.type);
    EXPECT_EQ(category_of(spec.type), spec.category);
  }
}

TEST(TraceSchemaTest, UnknownLookupsFailCleanly) {
  EXPECT_THROW(spec_of(static_cast<EventType>(9999)), std::out_of_range);
  EXPECT_EQ(spec_by_name("no_such_event"), nullptr);
}

// --- masks -------------------------------------------------------------------

TEST(TraceMaskTest, ParseAndFormat) {
  EXPECT_EQ(parse_mask("none"), kMaskNone);
  EXPECT_EQ(parse_mask(""), kMaskNone);
  EXPECT_EQ(parse_mask("all"), kMaskAll);
  EXPECT_EQ(parse_mask("srm"), static_cast<std::uint32_t>(Category::kSrm));
  EXPECT_EQ(parse_mask("sim,net"),
            static_cast<std::uint32_t>(Category::kSim) |
                static_cast<std::uint32_t>(Category::kNet));
  EXPECT_EQ(parse_mask("net+srm"),
            static_cast<std::uint32_t>(Category::kNet) |
                static_cast<std::uint32_t>(Category::kSrm));
  EXPECT_EQ(parse_mask("fault"),
            static_cast<std::uint32_t>(Category::kFault));
  EXPECT_EQ(parse_mask("15"), kMaskAll);
  EXPECT_THROW(parse_mask("bogus"), std::invalid_argument);

  EXPECT_EQ(format_mask(kMaskNone), "none");
  EXPECT_EQ(format_mask(kMaskAll), "sim,net,srm,fault");
  EXPECT_EQ(format_mask(parse_mask("srm")), "srm");
  EXPECT_EQ(parse_mask(format_mask(parse_mask("sim,srm"))),
            parse_mask("sim,srm"));
}

// --- tracer gating -----------------------------------------------------------

TEST(TracerTest, DisabledMaskEmitsNothing) {
  // Full instrumented loss round with a sink attached but the mask zero:
  // the sink must see no events at all.
  VectorSink sink;
  Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(kMaskNone);
  const auto r = run_traced_chain_round(tracer);
  EXPECT_EQ(r.recovered, r.affected);  // the round itself worked
  EXPECT_TRUE(sink.events().empty());
}

TEST(TracerTest, MaskSelectsCategories) {
  VectorSink sink;
  Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(Category::kSrm));
  run_traced_chain_round(tracer);
  ASSERT_FALSE(sink.events().empty());
  for (const Event& e : sink.events()) {
    EXPECT_EQ(category_of(e.type), Category::kSrm);
  }

  sink.clear();
  tracer.set_mask(kMaskAll);
  run_traced_chain_round(tracer);
  bool saw_sim = false, saw_net = false, saw_srm = false;
  for (const Event& e : sink.events()) {
    switch (category_of(e.type)) {
      case Category::kSim: saw_sim = true; break;
      case Category::kNet: saw_net = true; break;
      case Category::kSrm: saw_srm = true; break;
    }
  }
  EXPECT_TRUE(saw_sim);
  EXPECT_TRUE(saw_net);
  EXPECT_TRUE(saw_srm);
}

TEST(TracerTest, NullTracerIsImmutableAndDisabled) {
  Tracer& null = Tracer::null();
  EXPECT_FALSE(null.wants(Category::kSim));
  EXPECT_FALSE(null.wants(Category::kNet));
  EXPECT_FALSE(null.wants(Category::kSrm));
  EXPECT_THROW(null.set_mask(kMaskAll), std::logic_error);
  VectorSink sink;
  EXPECT_THROW(null.set_sink(&sink), std::logic_error);
}

// --- backends ----------------------------------------------------------------

TEST(TraceBackendTest, JsonlRoundTripsEveryEventType) {
  const std::vector<Event> events = sample_events();
  std::ostringstream out;
  JsonlSink sink(out);
  for (const Event& e : events) sink.on_event(e);
  std::istringstream in(out.str());
  EXPECT_EQ(read_jsonl(in), events);
}

TEST(TraceBackendTest, BinaryRoundTripsEveryEventType) {
  const std::vector<Event> events = sample_events();
  std::ostringstream out(std::ios::binary);
  BinarySink sink(out);
  for (const Event& e : events) sink.on_event(e);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_EQ(read_binary(in), events);
}

TEST(TraceBackendTest, JsonlLinesNameOnlySchemaFields) {
  Event e;
  e.type = EventType::kSrmReqSend;
  e.t = 3.25;
  e.actor = 4;
  e.d = 7;
  e.e = 255;
  const std::string line = JsonlSink::to_line(e);
  EXPECT_NE(line.find("\"ev\":\"req_send\""), std::string::npos);
  EXPECT_NE(line.find("\"cat\":\"srm\""), std::string::npos);
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"ttl\":255"), std::string::npos);
  // kSrmReqSend has no y slot; no spurious fields appear.
  EXPECT_EQ(line.find("\"y\":"), std::string::npos);
}

TEST(TraceBackendTest, ReadersRejectMalformedInput) {
  std::istringstream bad_json("{\"t\":1,\"ev\":\"no_such_event\"}\n");
  EXPECT_THROW(read_jsonl(bad_json), std::runtime_error);
  std::istringstream bad_magic("NOTSRM\x01\x00");
  EXPECT_THROW(read_binary(bad_magic), std::runtime_error);
}

}  // namespace
}  // namespace srm::trace
