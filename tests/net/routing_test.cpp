#include "net/routing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/builders.h"
#include "util/rng.h"

namespace srm::net {
namespace {

TEST(RoutingTest, ChainDistancesAreHopCounts) {
  Topology t = topo::make_chain(5);
  Routing r(t);
  EXPECT_DOUBLE_EQ(r.distance(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(r.distance(2, 2), 0.0);
  EXPECT_EQ(r.hop_count(0, 4), 4);
}

TEST(RoutingTest, DistanceIsSymmetric) {
  util::Rng rng(5);
  Topology t = topo::make_random_tree(40, rng);
  Routing r(t);
  for (NodeId a = 0; a < 40; a += 7) {
    for (NodeId b = 0; b < 40; b += 5) {
      EXPECT_DOUBLE_EQ(r.distance(a, b), r.distance(b, a));
    }
  }
}

TEST(RoutingTest, WeightedShortestPathPreferred) {
  // 0 -10- 1, 0 -1- 2 -1- 1: the two-hop path is shorter.
  Topology t(3);
  t.add_link(0, 1, 10.0);
  t.add_link(0, 2, 1.0);
  t.add_link(2, 1, 1.0);
  Routing r(t);
  EXPECT_DOUBLE_EQ(r.distance(0, 1), 2.0);
  EXPECT_EQ(r.hop_count(0, 1), 2);
  const auto p = r.path(0, 1);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 2u);
}

TEST(RoutingTest, TieBreakPrefersFewerHops) {
  // Two equal-delay routes 0->3: direct (delay 2) vs via 1,2 (1+0.5+0.5).
  Topology t(4);
  t.add_link(0, 3, 2.0);
  t.add_link(0, 1, 1.0);
  t.add_link(1, 2, 0.5);
  t.add_link(2, 3, 0.5);
  Routing r(t);
  EXPECT_DOUBLE_EQ(r.distance(0, 3), 2.0);
  EXPECT_EQ(r.hop_count(0, 3), 1);
}

TEST(RoutingTest, SptChildrenPartitionTree) {
  Topology t = topo::make_bounded_degree_tree(15, 3);
  Routing r(t);
  const Spt& spt = r.spt(0);
  std::size_t edge_count = 0;
  for (NodeId v = 0; v < t.node_count(); ++v) {
    edge_count += spt.children[v].size();
  }
  EXPECT_EQ(edge_count, t.node_count() - 1);  // spanning tree
  EXPECT_EQ(spt.parent[0], 0u);               // root parents itself
}

TEST(RoutingTest, PathEndpoints) {
  Topology t = topo::make_chain(6);
  Routing r(t);
  const auto p = r.path(1, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 4u);
  EXPECT_EQ(p[1], 2u);
  EXPECT_EQ(p[2], 3u);
}

TEST(RoutingTest, PathToSelf) {
  Topology t = topo::make_chain(3);
  Routing r(t);
  const auto p = r.path(1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1u);
}

TEST(RoutingTest, UnreachableThrows) {
  Topology t(3);
  t.add_link(0, 1);
  Routing r(t);
  EXPECT_THROW(r.distance(0, 2), std::runtime_error);
  EXPECT_THROW(r.path(0, 2), std::runtime_error);
}

TEST(RoutingTest, DeterministicAcrossCalls) {
  util::Rng rng(17);
  Topology t = topo::make_random_graph(30, 45, rng);
  Routing r1(t), r2(t);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_DOUBLE_EQ(r1.distance(0, v), r2.distance(0, v));
    EXPECT_EQ(r1.spt(0).parent[v], r2.spt(0).parent[v]);
  }
}

TEST(RoutingTest, JournalRepairPicksUpAddedLink) {
  Topology t(3);
  t.add_link(0, 1, 5.0);
  t.add_link(1, 2, 5.0);
  Routing r(t);
  r.set_verify(true);  // cross-check the repair against a fresh Dijkstra
  EXPECT_DOUBLE_EQ(r.distance(0, 2), 10.0);
  t.add_link(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(r.distance(0, 2), 1.0);
  EXPECT_EQ(r.stats().repairs, 1u);
  EXPECT_EQ(r.stats().verified, 1u);
}

TEST(RoutingTest, TryDistanceReadsUnreachableAsInfinity) {
  Topology t(3);
  t.add_link(0, 1);
  const LinkId cut = t.add_link(1, 2);
  Routing r(t);
  EXPECT_DOUBLE_EQ(r.try_distance(0, 2), 2.0);
  EXPECT_EQ(r.try_hop_count(0, 2), 2);
  t.set_link_up(cut, false);
  EXPECT_TRUE(std::isinf(r.try_distance(0, 2)));
  EXPECT_EQ(r.try_hop_count(0, 2), -1);
  t.set_link_up(cut, true);
  EXPECT_DOUBLE_EQ(r.try_distance(0, 2), 2.0);
}

TEST(RoutingTest, VersionStampInvalidatesAutomatically) {
  // No explicit invalidate(): the cache revalidates against
  // Topology::version() on every spt() call.
  Topology t(3);
  t.add_link(0, 1, 5.0);
  const LinkId shortcut = t.add_link(1, 2, 5.0);
  Routing r(t);
  EXPECT_DOUBLE_EQ(r.distance(0, 2), 10.0);
  t.add_link(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(r.distance(0, 2), 1.0);
  t.set_link_up(shortcut, false);
  EXPECT_DOUBLE_EQ(r.distance(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(r.distance(1, 2), 6.0);  // rerouted around the down link
  t.set_link_up(shortcut, true);
  EXPECT_DOUBLE_EQ(r.distance(1, 2), 5.0);
}

TEST(RoutingTest, DownLinkPartitionsUnreachable) {
  Topology t(3);
  t.add_link(0, 1);
  const LinkId cut = t.add_link(1, 2);
  Routing r(t);
  EXPECT_EQ(r.hop_count(0, 2), 2);
  t.set_link_up(cut, false);
  EXPECT_THROW(r.distance(0, 2), std::runtime_error);
  EXPECT_THROW(r.path(0, 2), std::runtime_error);
  t.set_link_up(cut, true);
  EXPECT_EQ(r.hop_count(0, 2), 2);
}

TEST(RoutingTest, TriangleInequalityHolds) {
  util::Rng rng(23);
  Topology t = topo::make_random_graph(25, 40, rng);
  Routing r(t);
  for (NodeId a = 0; a < 25; a += 3) {
    for (NodeId b = 0; b < 25; b += 4) {
      for (NodeId c = 0; c < 25; c += 5) {
        EXPECT_LE(r.distance(a, c),
                  r.distance(a, b) + r.distance(b, c) + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace srm::net
