// Randomized equivalence tests for incremental SPT repair: after any
// sequence of link down/up/add dynamics, a repaired tree must be
// bit-identical to a fresh Dijkstra over the same topology — dist, hops,
// parent, parent_link, and children order alike.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/routing.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace srm::net {
namespace {

void expect_identical(const Spt& repaired, const Spt& fresh,
                      const std::string& context) {
  ASSERT_EQ(repaired.root, fresh.root) << context;
  ASSERT_EQ(repaired.dist.size(), fresh.dist.size()) << context;
  for (NodeId v = 0; v < fresh.dist.size(); ++v) {
    SCOPED_TRACE(context + ", node " + std::to_string(v));
    // Exact equality on purpose: the repair contract is bit-identical
    // trees (infinity == infinity holds under IEEE comparison).
    EXPECT_EQ(repaired.dist[v], fresh.dist[v]);
    EXPECT_EQ(repaired.hops[v], fresh.hops[v]);
    EXPECT_EQ(repaired.parent[v], fresh.parent[v]);
    EXPECT_EQ(repaired.parent_link[v], fresh.parent_link[v]);
    EXPECT_EQ(repaired.children[v], fresh.children[v]);
  }
}

// Compares every source's repaired tree against a Routing built fresh on
// the current topology (its first query is always a full Dijkstra).
void expect_all_sources_identical(Routing& cached, const Topology& topo,
                                  const std::string& context) {
  Routing fresh(topo);
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    expect_identical(cached.spt(src), fresh.spt(src),
                     context + ", source " + std::to_string(src));
  }
}

std::vector<LinkId> up_links(const Topology& topo) {
  std::vector<LinkId> ids;
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    if (topo.link_up(id)) ids.push_back(id);
  }
  return ids;
}

std::vector<LinkId> down_links(const Topology& topo) {
  std::vector<LinkId> ids;
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    if (!topo.link_up(id)) ids.push_back(id);
  }
  return ids;
}

// Applies `steps` random batches of link dynamics to `topo`, repairing all
// cached trees after each batch and checking them against fresh Dijkstras.
void churn_and_check(Topology& topo, util::Rng& rng, int steps,
                     const std::string& label) {
  Routing r(topo);
  r.set_verify(true);  // belt and braces: internal cross-check too
  for (NodeId src = 0; src < topo.node_count(); ++src) r.spt(src);

  for (int step = 0; step < steps; ++step) {
    // A batch of 1-4 mutations: mostly downs/ups, occasionally a new link.
    const int mutations = 1 + static_cast<int>(rng.index(4));
    for (int m = 0; m < mutations; ++m) {
      const double coin = rng.uniform(0.0, 1.0);
      if (coin < 0.45) {
        const auto ups = up_links(topo);
        if (!ups.empty()) {
          topo.set_link_up(ups[rng.index(ups.size())], false);
        }
      } else if (coin < 0.9) {
        const auto downs = down_links(topo);
        if (!downs.empty()) {
          topo.set_link_up(downs[rng.index(downs.size())], true);
        }
      } else {
        const auto a = static_cast<NodeId>(rng.index(topo.node_count()));
        const auto b = static_cast<NodeId>(rng.index(topo.node_count()));
        if (a != b) {
          try {
            topo.add_link(a, b, 0.5 + rng.uniform(0.0, 3.0));
          } catch (const std::invalid_argument&) {
            // duplicate link; skip
          }
        }
      }
    }
    expect_all_sources_identical(r, topo,
                                 label + ", step " + std::to_string(step));
  }
  EXPECT_GT(r.stats().repairs, 0u) << label;
}

TEST(RoutingRepairTest, RandomTreeChurnMatchesFreshDijkstra) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    util::Rng rng(seed);
    Topology topo = topo::make_random_tree(24, rng);
    churn_and_check(topo, rng, 12, "tree seed " + std::to_string(seed));
  }
}

TEST(RoutingRepairTest, RandomGraphChurnMatchesFreshDijkstra) {
  for (const std::uint64_t seed : {5u, 29u, 123u}) {
    util::Rng rng(seed);
    Topology topo = topo::make_random_graph(20, 34, rng);
    churn_and_check(topo, rng, 12, "graph seed " + std::to_string(seed));
  }
}

TEST(RoutingRepairTest, GrowingTopologyMatchesFreshDijkstra) {
  util::Rng rng(7);
  Topology topo = topo::make_random_tree(10, rng);
  Routing r(topo);
  r.set_verify(true);
  for (NodeId src = 0; src < topo.node_count(); ++src) r.spt(src);
  for (int step = 0; step < 8; ++step) {
    const NodeId fresh_node = topo.add_node();
    const auto anchor = static_cast<NodeId>(rng.index(fresh_node));
    topo.add_link(anchor, fresh_node, 1.0 + rng.uniform(0.0, 2.0));
    expect_all_sources_identical(r, topo, "grow step " + std::to_string(step));
  }
  EXPECT_GT(r.stats().repairs, 0u);
}

TEST(RoutingRepairTest, PartitionHealRoundTripRestoresOriginalTrees) {
  util::Rng rng(41);
  Topology topo = topo::make_random_tree(30, rng);
  Routing r(topo);
  r.set_verify(true);

  std::vector<Spt> original;
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    original.push_back(r.spt(src));
  }

  // Cut an island {0..9} off: every up link with one endpoint inside.
  std::vector<LinkId> cut;
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    const Link& l = topo.link(id);
    if (!l.up) continue;
    if ((l.a < 10) != (l.b < 10)) cut.push_back(id);
  }
  ASSERT_FALSE(cut.empty());
  for (LinkId id : cut) topo.set_link_up(id, false);
  expect_all_sources_identical(r, topo, "partitioned");

  for (LinkId id : cut) topo.set_link_up(id, true);
  Routing fresh(topo);
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    expect_identical(r.spt(src), original[src],
                     "healed vs original, source " + std::to_string(src));
    expect_identical(r.spt(src), fresh.spt(src),
                     "healed vs fresh, source " + std::to_string(src));
  }
  EXPECT_GT(r.stats().repairs, 0u);
}

TEST(RoutingRepairTest, ThresholdZeroForcesFullRebuild) {
  util::Rng rng(11);
  Topology topo = topo::make_random_graph(12, 20, rng);
  Routing r(topo);
  r.set_repair_threshold(0);
  r.spt(0);
  const auto ups = up_links(topo);
  topo.set_link_up(ups.front(), false);
  r.spt(0);
  EXPECT_EQ(r.stats().repairs, 0u);
  EXPECT_EQ(r.stats().fallback_threshold, 1u);
  EXPECT_EQ(r.stats().full_builds, 2u);
}

TEST(RoutingRepairTest, TruncatedJournalForcesFullRebuild) {
  util::Rng rng(13);
  Topology topo = topo::make_random_graph(12, 20, rng);
  topo.set_journal_capacity(2);
  Routing r(topo);
  r.spt(0);
  const auto ups = up_links(topo);
  for (int i = 0; i < 3; ++i) {
    topo.set_link_up(ups[static_cast<std::size_t>(i)], false);
  }
  const Spt& repaired = r.spt(0);
  Routing fresh(topo);
  expect_identical(repaired, fresh.spt(0), "after truncation");
  EXPECT_EQ(r.stats().repairs, 0u);
  EXPECT_EQ(r.stats().fallback_truncated, 1u);
}

TEST(RoutingRepairTest, RepairDisabledMatchesLegacyBehavior) {
  util::Rng rng(19);
  Topology topo = topo::make_random_tree(15, rng);
  Routing r(topo);
  r.set_repair_enabled(false);
  r.spt(0);
  topo.set_link_up(0, false);
  Routing fresh(topo);
  expect_identical(r.spt(0), fresh.spt(0), "repair disabled");
  EXPECT_EQ(r.stats().repairs, 0u);
}

}  // namespace
}  // namespace srm::net
