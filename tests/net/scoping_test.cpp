// Interactions between the scoping mechanisms: TTL limits, link thresholds,
// administrative regions, drop policies, and multiple groups — each prunes
// the delivery tree independently and the composition must behave.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "net/network.h"
#include "topo/builders.h"

namespace srm::net {
namespace {

class CountingSink : public PacketSink {
 public:
  void on_receive(const Packet&, const DeliveryInfo& info) override {
    ++count;
    last = info;
  }
  int count = 0;
  DeliveryInfo last;
};

class ScopingTest : public ::testing::Test {
 protected:
  void build(Topology topo) {
    topo_ = std::make_unique<Topology>(std::move(topo));
    net_ = std::make_unique<MulticastNetwork>(queue_, *topo_);
    sinks_.resize(topo_->node_count());
    for (NodeId v = 0; v < topo_->node_count(); ++v) {
      net_->attach(v, &sinks_[v]);
    }
  }
  class Msg : public Message {
   public:
    std::string describe() const override { return "m"; }
  };
  Packet packet(GroupId g, int ttl = kMaxTtl,
                Scope scope = Scope::kGlobal) {
    Packet p;
    p.group = g;
    p.ttl = ttl;
    p.scope = scope;
    p.payload = std::make_shared<Msg>();
    return p;
  }
  sim::EventQueue queue_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<MulticastNetwork> net_;
  std::deque<CountingSink> sinks_;
};

TEST_F(ScopingTest, TtlAndAdminScopeComposeAsIntersection) {
  // Chain of 6 in two admin regions split at link (2,3).  A TTL-4,
  // admin-scoped packet from node 0 reaches only nodes within BOTH 4 hops
  // AND region 0 (nodes 1, 2).
  auto topo = topo::make_chain(6);
  for (NodeId v = 0; v < 3; ++v) topo.set_admin_region(v, 0);
  for (NodeId v = 3; v < 6; ++v) topo.set_admin_region(v, 1);
  build(std::move(topo));
  for (NodeId v = 0; v < 6; ++v) net_->join(1, v);
  net_->multicast(0, packet(1, /*ttl=*/4, Scope::kAdmin));
  queue_.run();
  EXPECT_EQ(sinks_[1].count, 1);
  EXPECT_EQ(sinks_[2].count, 1);
  for (NodeId v = 3; v < 6; ++v) EXPECT_EQ(sinks_[v].count, 0) << v;
}

TEST_F(ScopingTest, ThresholdInsideTtlRange) {
  // Threshold-3 link at (1,2): TTL 5 crosses it (4 >= 3 at node 1), but a
  // TTL-3 packet cannot (2 < 3 at node 1), even though 3 hops of plain TTL
  // would reach node 3.
  Topology topo(4);
  topo.add_link(0, 1, 1.0, 1);
  topo.add_link(1, 2, 1.0, 3);
  topo.add_link(2, 3, 1.0, 1);
  build(std::move(topo));
  for (NodeId v = 0; v < 4; ++v) net_->join(1, v);
  net_->multicast(0, packet(1, /*ttl=*/3));
  queue_.run();
  EXPECT_EQ(sinks_[1].count, 1);
  EXPECT_EQ(sinks_[2].count, 0);
  net_->multicast(0, packet(1, /*ttl=*/5));
  queue_.run();
  EXPECT_EQ(sinks_[2].count, 1);
  EXPECT_EQ(sinks_[3].count, 1);
}

TEST_F(ScopingTest, MultipleGroupsOneSink) {
  // One sink per node receives traffic for every group the node joined,
  // with the packet's group field distinguishing them.
  build(topo::make_chain(3));
  net_->join(1, 2);
  net_->join(2, 2);
  net_->multicast(0, packet(1));
  net_->multicast(0, packet(2));
  net_->multicast(0, packet(3));  // not joined
  queue_.run();
  EXPECT_EQ(sinks_[2].count, 2);
}

TEST_F(ScopingTest, SenderNeedNotBeMember) {
  // IP multicast model: senders transmit to the group without joining it.
  build(topo::make_chain(3));
  net_->join(1, 2);
  net_->multicast(0, packet(1));
  queue_.run();
  EXPECT_EQ(sinks_[2].count, 1);
  EXPECT_EQ(sinks_[0].count, 0);
}

TEST_F(ScopingTest, DropPolicySeesOnlyTraversedHops) {
  // With TTL already pruning the distal subtree, the drop policy must not
  // be consulted for hops that are never attempted.
  build(topo::make_chain(5));
  for (NodeId v = 0; v < 5; ++v) net_->join(1, v);
  struct Counting : DropPolicy {
    int consulted = 0;
    bool should_drop(const Packet&, const HopContext&) override {
      ++consulted;
      return false;
    }
  };
  auto policy = std::make_shared<Counting>();
  net_->set_drop_policy(policy);
  net_->multicast(0, packet(1, /*ttl=*/2));
  queue_.run();
  EXPECT_EQ(policy->consulted, 2);  // hops 0-1 and 1-2 only
}

TEST_F(ScopingTest, RemainingTtlReported) {
  build(topo::make_chain(4));
  net_->join(1, 3);
  net_->multicast(0, packet(1, /*ttl=*/7));
  queue_.run();
  ASSERT_EQ(sinks_[3].count, 1);
  EXPECT_EQ(sinks_[3].last.remaining_ttl, 4);
  EXPECT_EQ(sinks_[3].last.hops, 3);
}

TEST_F(ScopingTest, AdminScopeOnUnicastToo) {
  auto topo = topo::make_chain(3);
  topo.set_admin_region(0, 0);
  topo.set_admin_region(1, 0);
  topo.set_admin_region(2, 1);
  build(std::move(topo));
  Packet p = packet(1, kMaxTtl, Scope::kAdmin);
  net_->unicast(0, 2, std::move(p));
  queue_.run();
  EXPECT_EQ(sinks_[2].count, 0);  // blocked at the region boundary
  Packet q = packet(1, kMaxTtl, Scope::kGlobal);
  net_->unicast(0, 2, std::move(q));
  queue_.run();
  EXPECT_EQ(sinks_[2].count, 1);
}

}  // namespace
}  // namespace srm::net
