#include "net/network.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "topo/builders.h"

namespace srm::net {
namespace {

class TestMessage : public Message {
 public:
  explicit TestMessage(int tag = 0) : tag_(tag) {}
  int tag() const { return tag_; }
  std::string describe() const override { return "TEST"; }

 private:
  int tag_;
};

// Records every delivery.
class Recorder : public PacketSink {
 public:
  struct Rx {
    Packet packet;
    DeliveryInfo info;
    double at;
  };
  explicit Recorder(sim::EventQueue& q) : queue_(&q) {}
  void on_receive(const Packet& p, const DeliveryInfo& i) override {
    received.push_back(Rx{p, i, queue_->now()});
  }
  std::vector<Rx> received;

 private:
  sim::EventQueue* queue_;
};

Packet make_packet(GroupId g, int ttl = kMaxTtl) {
  Packet p;
  p.group = g;
  p.ttl = ttl;
  p.payload = std::make_shared<TestMessage>();
  return p;
}

class NetworkTest : public ::testing::Test {
 protected:
  void build_chain(std::size_t n) {
    topo_ = std::make_unique<Topology>(topo::make_chain(n));
    net_ = std::make_unique<MulticastNetwork>(queue_, *topo_);
    for (NodeId v = 0; v < n; ++v) {
      sinks_.push_back(std::make_unique<Recorder>(queue_));
      net_->attach(v, sinks_.back().get());
    }
  }
  sim::EventQueue queue_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<MulticastNetwork> net_;
  std::vector<std::unique_ptr<Recorder>> sinks_;
};

TEST_F(NetworkTest, MulticastReachesAllMembersExceptSender) {
  build_chain(5);
  for (NodeId v = 0; v < 5; ++v) net_->join(1, v);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_TRUE(sinks_[0]->received.empty());  // no loopback
  for (NodeId v = 1; v < 5; ++v) {
    ASSERT_EQ(sinks_[v]->received.size(), 1u) << "node " << v;
    EXPECT_DOUBLE_EQ(sinks_[v]->received[0].info.path_delay,
                     static_cast<double>(v));
    EXPECT_EQ(sinks_[v]->received[0].info.hops, static_cast<int>(v));
  }
}

TEST_F(NetworkTest, NonMembersDoNotReceive) {
  build_chain(4);
  net_->join(1, 0);
  net_->join(1, 3);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_TRUE(sinks_[1]->received.empty());
  EXPECT_TRUE(sinks_[2]->received.empty());
  EXPECT_EQ(sinks_[3]->received.size(), 1u);
}

TEST_F(NetworkTest, GroupsAreIsolated) {
  build_chain(3);
  net_->join(1, 1);
  net_->join(2, 2);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_EQ(sinks_[1]->received.size(), 1u);
  EXPECT_TRUE(sinks_[2]->received.empty());
}

TEST_F(NetworkTest, LeaveStopsDelivery) {
  build_chain(3);
  net_->join(1, 2);
  net_->leave(1, 2);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_TRUE(sinks_[2]->received.empty());
}

TEST_F(NetworkTest, MembershipQueries) {
  build_chain(3);
  net_->join(9, 1);
  net_->join(9, 0);
  EXPECT_TRUE(net_->is_member(9, 1));
  EXPECT_FALSE(net_->is_member(9, 2));
  EXPECT_EQ(net_->members(9), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(net_->members(77).empty());
}

TEST_F(NetworkTest, TtlLimitsReach) {
  build_chain(6);
  for (NodeId v = 0; v < 6; ++v) net_->join(1, v);
  net_->multicast(0, make_packet(1, /*ttl=*/2));
  queue_.run();
  EXPECT_EQ(sinks_[1]->received.size(), 1u);
  EXPECT_EQ(sinks_[2]->received.size(), 1u);
  EXPECT_TRUE(sinks_[3]->received.empty());
  EXPECT_EQ(sinks_[2]->received[0].info.remaining_ttl, 0);
}

TEST_F(NetworkTest, LinkThresholdBlocksLowTtl) {
  // Chain 0-1-2 where link (1,2) has threshold 10.
  topo_ = std::make_unique<Topology>(3);
  topo_->add_link(0, 1, 1.0, 1);
  topo_->add_link(1, 2, 1.0, 10);
  net_ = std::make_unique<MulticastNetwork>(queue_, *topo_);
  for (NodeId v = 0; v < 3; ++v) {
    sinks_.push_back(std::make_unique<Recorder>(queue_));
    net_->attach(v, sinks_.back().get());
    net_->join(1, v);
  }
  net_->multicast(0, make_packet(1, /*ttl=*/5));
  queue_.run();
  EXPECT_EQ(sinks_[1]->received.size(), 1u);
  EXPECT_TRUE(sinks_[2]->received.empty());  // 5 - 1 hop = 4 < threshold 10

  net_->multicast(0, make_packet(1, /*ttl=*/11));
  queue_.run();
  EXPECT_EQ(sinks_[2]->received.size(), 1u);  // 11 - 1 = 10 >= 10
}

TEST_F(NetworkTest, AdminScopeConfinedToRegion) {
  build_chain(4);
  topo_->set_admin_region(0, 1);
  topo_->set_admin_region(1, 1);
  topo_->set_admin_region(2, 2);
  topo_->set_admin_region(3, 2);
  for (NodeId v = 0; v < 4; ++v) net_->join(1, v);
  Packet p = make_packet(1);
  p.scope = Scope::kAdmin;
  net_->multicast(0, p);
  queue_.run();
  EXPECT_EQ(sinks_[1]->received.size(), 1u);
  EXPECT_TRUE(sinks_[2]->received.empty());
  EXPECT_TRUE(sinks_[3]->received.empty());
}

TEST_F(NetworkTest, DropPrunesSubtree) {
  build_chain(5);
  for (NodeId v = 0; v < 5; ++v) net_->join(1, v);
  auto drop = std::make_shared<ScriptedLinkDrop>(
      2, 3, [](const Packet&) { return true; });
  net_->set_drop_policy(drop);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_EQ(sinks_[1]->received.size(), 1u);
  EXPECT_EQ(sinks_[2]->received.size(), 1u);
  EXPECT_TRUE(sinks_[3]->received.empty());
  EXPECT_TRUE(sinks_[4]->received.empty());  // pruned below the drop
  EXPECT_EQ(net_->stats().drops, 1u);
}

TEST_F(NetworkTest, UnicastFollowsShortestPath) {
  build_chain(4);
  net_->multicast(0, make_packet(1));  // no members: no deliveries
  net_->unicast(0, 3, make_packet(1));
  queue_.run();
  ASSERT_EQ(sinks_[3]->received.size(), 1u);
  EXPECT_DOUBLE_EQ(sinks_[3]->received[0].info.path_delay, 3.0);
  EXPECT_EQ(net_->stats().unicasts_sent, 1u);
}

TEST_F(NetworkTest, UnicastSubjectToDrops) {
  build_chain(4);
  auto drop = std::make_shared<ScriptedLinkDrop>(
      1, 2, [](const Packet&) { return true; });
  net_->set_drop_policy(drop);
  net_->unicast(0, 3, make_packet(1));
  queue_.run();
  EXPECT_TRUE(sinks_[3]->received.empty());
}

TEST_F(NetworkTest, DeliveryTimingMatchesLinkDelays) {
  topo_ = std::make_unique<Topology>(3);
  topo_->add_link(0, 1, 1.5);
  topo_->add_link(1, 2, 2.5);
  net_ = std::make_unique<MulticastNetwork>(queue_, *topo_);
  for (NodeId v = 0; v < 3; ++v) {
    sinks_.push_back(std::make_unique<Recorder>(queue_));
    net_->attach(v, sinks_.back().get());
    net_->join(1, v);
  }
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_DOUBLE_EQ(sinks_[1]->received[0].at, 1.5);
  EXPECT_DOUBLE_EQ(sinks_[2]->received[0].at, 4.0);
}

TEST_F(NetworkTest, MembershipChangeInvalidatesPrunedTree) {
  build_chain(4);
  net_->join(1, 1);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_TRUE(sinks_[3]->received.empty());
  net_->join(1, 3);  // membership change must rebuild the pruned tree
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_EQ(sinks_[3]->received.size(), 1u);
}

TEST_F(NetworkTest, JoinLeaveMidRunInvalidatesPrunedTree) {
  // Membership changes from *inside* scheduled events (agents joining and
  // leaving while traffic is in flight) must invalidate the cached
  // traversal for subsequent multicasts.
  build_chain(5);
  net_->join(1, 2);
  net_->join(1, 4);
  net_->multicast(0, make_packet(1));  // caches the (0, 1) traversal
  queue_.schedule_at(10.0, [&] {
    net_->leave(1, 4);
    net_->join(1, 3);
    net_->multicast(0, make_packet(1));
  });
  queue_.run();
  EXPECT_EQ(sinks_[2]->received.size(), 2u);
  EXPECT_EQ(sinks_[3]->received.size(), 1u);  // joined mid-run
  EXPECT_EQ(sinks_[4]->received.size(), 1u);  // left mid-run
}

TEST_F(NetworkTest, RejoinAfterLeaveRestoresDelivery) {
  build_chain(3);
  net_->join(1, 2);
  net_->leave(1, 2);
  net_->join(1, 2);
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_EQ(sinks_[2]->received.size(), 1u);
  EXPECT_EQ(net_->members(1), (std::vector<NodeId>{2}));
}

TEST_F(NetworkTest, MembersStaySortedUnderChurn) {
  build_chain(6);
  for (NodeId v : {5u, 1u, 3u, 0u, 4u, 2u}) net_->join(1, v);
  EXPECT_EQ(net_->members(1), (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
  net_->leave(1, 3);
  net_->leave(1, 0);
  EXPECT_EQ(net_->members(1), (std::vector<NodeId>{1, 2, 4, 5}));
  net_->join(1, 3);
  EXPECT_EQ(net_->members(1), (std::vector<NodeId>{1, 2, 3, 4, 5}));
  // Duplicate join / spurious leave are no-ops.
  net_->join(1, 3);
  net_->leave(1, 0);
  EXPECT_EQ(net_->members(1), (std::vector<NodeId>{1, 2, 3, 4, 5}));
}

TEST_F(NetworkTest, OneMulticastSharesOnePacketAcrossReceivers) {
  build_chain(4);
  for (NodeId v = 0; v < 4; ++v) net_->join(1, v);
  net_->multicast(0, make_packet(1));
  queue_.run();
  // All receivers observe the same immutable payload instance.
  const Message* payload = sinks_[1]->received[0].packet.payload.get();
  EXPECT_EQ(sinks_[2]->received[0].packet.payload.get(), payload);
  EXPECT_EQ(sinks_[3]->received[0].packet.payload.get(), payload);
}

TEST_F(NetworkTest, ObserversSeeTraffic) {
  build_chain(3);
  net_->join(1, 2);
  int sends = 0, deliveries = 0;
  net_->set_send_observer([&](NodeId, const Packet&) { ++sends; });
  net_->set_delivery_observer(
      [&](const Packet&, const DeliveryInfo&) { ++deliveries; });
  net_->multicast(0, make_packet(1));
  queue_.run();
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(deliveries, 1);
}

TEST_F(NetworkTest, StatsCountLinkTransmissions) {
  build_chain(5);
  net_->join(1, 4);
  net_->reset_stats();
  net_->multicast(0, make_packet(1));
  queue_.run();
  // Only the path 0->4 is traversed (member-pruned tree): 4 link hops.
  EXPECT_EQ(net_->stats().link_transmissions, 4u);
  EXPECT_EQ(net_->stats().deliveries, 1u);
}

TEST_F(NetworkTest, AttachRejectsDuplicates) {
  build_chain(2);
  Recorder extra(queue_);
  EXPECT_THROW(net_->attach(0, &extra), std::logic_error);
  net_->detach(0);
  net_->attach(0, &extra);  // now fine
}

}  // namespace
}  // namespace srm::net
