#include "net/drop_policy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "srm/messages.h"

namespace srm::net {
namespace {

class Tagged : public Message {
 public:
  explicit Tagged(int tag) : tag_(tag) {}
  int tag() const { return tag_; }
  std::string describe() const override { return "tagged"; }

 private:
  int tag_;
};

Packet packet_with_tag(int tag) {
  Packet p;
  p.payload = std::make_shared<Tagged>(tag);
  return p;
}

bool tag_is(const Packet& p, int tag) {
  const auto* t = dynamic_cast<const Tagged*>(p.payload.get());
  return t != nullptr && t->tag() == tag;
}

TEST(NoDropTest, NeverDrops) {
  NoDrop nd;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(nd.should_drop(packet_with_tag(i), HopContext{0, 1, 2}));
  }
}

TEST(ScriptedLinkDropTest, DropsOnlyMatchingLinkDirection) {
  ScriptedLinkDrop d(1, 2, [](const Packet& p) { return tag_is(p, 7); });
  // Wrong direction: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(7), HopContext{0, 2, 1}));
  // Wrong link: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(7), HopContext{0, 3, 4}));
  // Wrong payload: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(8), HopContext{0, 1, 2}));
  // Match: dropped.
  EXPECT_TRUE(d.should_drop(packet_with_tag(7), HopContext{0, 1, 2}));
  EXPECT_EQ(d.drops_so_far(), 1u);
}

TEST(ScriptedLinkDropTest, HonorsMaxDrops) {
  ScriptedLinkDrop d(0, 1, [](const Packet&) { return true; },
                     /*max_drops=*/2);
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_EQ(d.drops_so_far(), 2u);
}

TEST(ScriptedLinkDropTest, RearmResets) {
  ScriptedLinkDrop d(0, 1, [](const Packet&) { return true; });
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  d.rearm();
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
}

TEST(ScriptedLinkDropTest, RejectsNullPredicate) {
  EXPECT_THROW(ScriptedLinkDrop(0, 1, nullptr), std::invalid_argument);
}

TEST(RandomDropTest, RateZeroNeverDrops) {
  RandomDrop d(0.0, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1, i}));
  }
}

TEST(RandomDropTest, RateOneAlwaysDrops) {
  RandomDrop d(1.0, 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1, i}));
  }
}

TEST(RandomDropTest, ApproximatesRate) {
  RandomDrop d(0.3, 42);
  int drops = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (d.should_drop(packet_with_tag(0), HopContext{0, 0, 1, i})) ++drops;
  }
  EXPECT_NEAR(drops / 10000.0, 0.3, 0.03);
}

TEST(RandomDropTest, DecisionIsPureFunctionOfKey) {
  // The verdict for (seed, edge, ordinal) does not depend on consult order
  // or on what other hops were consulted — the PDES-safety property.
  RandomDrop a(0.5, 7);
  RandomDrop b(0.5, 7);
  // a consults ordinals ascending; b descending, interleaved with noise on
  // another link.
  std::vector<bool> fwd;
  for (std::uint64_t i = 0; i < 200; ++i) {
    fwd.push_back(a.should_drop(packet_with_tag(0), HopContext{3, 0, 1, i}));
  }
  for (std::uint64_t i = 200; i-- > 0;) {
    b.should_drop(packet_with_tag(0), HopContext{9, 5, 6, i});
    EXPECT_EQ(b.should_drop(packet_with_tag(0), HopContext{3, 0, 1, i}),
              fwd[i]);
  }
}

TEST(RandomDropTest, DirectionsAndLinksAreIndependentStreams) {
  RandomDrop d(0.5, 11);
  int forward = 0, reverse = 0, other = 0;
  for (std::uint64_t i = 0; i < 400; ++i) {
    if (d.should_drop(packet_with_tag(0), HopContext{2, 0, 1, i})) ++forward;
    if (d.should_drop(packet_with_tag(0), HopContext{2, 1, 0, i})) ++reverse;
    if (d.should_drop(packet_with_tag(0), HopContext{3, 0, 1, i})) ++other;
  }
  // All three see the same ordinals but draw from distinct streams; at rate
  // 0.5 over 400 trials identical streams would match exactly, independent
  // ones differ with overwhelming probability.
  EXPECT_NE(forward, 0);
  EXPECT_NE(forward, 400);
  EXPECT_TRUE(forward != reverse || forward != other);
}

TEST(RandomDropTest, RestrictToLimitsLink) {
  RandomDrop d(1.0, 1);
  d.restrict_to(3, 4);
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 4, 3}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 3, 4}));
}

TEST(RandomDropTest, PredicateFilters) {
  RandomDrop d(1.0, 1, [](const Packet& p) { return tag_is(p, 5); });
  EXPECT_FALSE(d.should_drop(packet_with_tag(4), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(5), HopContext{0, 0, 1}));
}

TEST(RandomDropTest, RejectsBadRate) {
  EXPECT_THROW(RandomDrop(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(RandomDrop(1.1, 1), std::invalid_argument);
}

TEST(CompositeDropTest, DropsIfAnyPolicyDrops) {
  CompositeDrop c;
  c.add(std::make_shared<NoDrop>());
  c.add(std::make_shared<ScriptedLinkDrop>(0, 1,
                                           [](const Packet&) { return true; }));
  EXPECT_TRUE(c.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(c.should_drop(packet_with_tag(0), HopContext{0, 1, 0}));
}

TEST(CompositeDropTest, AllPoliciesConsulted) {
  CompositeDrop c;
  auto a = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  auto b = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  c.add(a);
  c.add(b);
  c.should_drop(packet_with_tag(0), HopContext{0, 0, 1});
  // Both stateful policies advanced even though the first already dropped.
  EXPECT_EQ(a->drops_so_far(), 1u);
  EXPECT_EQ(b->drops_so_far(), 1u);
}

TEST(CompositeDropTest, RejectsNull) {
  CompositeDrop c;
  EXPECT_THROW(c.add(nullptr), std::invalid_argument);
}

// ---- request/repair loss (Sec. VII-A: requests and repairs themselves can
// be lost; the timers must re-expire and retry) ------------------------------

Packet request_packet() {
  Packet p;
  p.payload = std::make_shared<RequestMessage>(
      DataName{1, PageId{1, 0}, 0}, /*requestor=*/2, /*dist=*/1.0,
      /*initial_ttl=*/kMaxTtl);
  return p;
}

Packet repair_packet() {
  Packet p;
  p.payload = std::make_shared<RepairMessage>(
      DataName{1, PageId{1, 0}, 0}, std::make_shared<Payload>(Payload{0xAB}),
      /*responder=*/3, /*first_requestor=*/2, /*dist=*/1.0,
      /*initial_ttl=*/kMaxTtl);
  return p;
}

TEST(ScriptedLinkDropTest, DropsRequestsNotRepairs) {
  ScriptedLinkDrop d(0, 1, [](const Packet& p) {
    return dynamic_cast<const RequestMessage*>(p.payload.get()) != nullptr;
  });
  EXPECT_FALSE(d.should_drop(repair_packet(), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(request_packet(), HopContext{0, 0, 1}));
}

TEST(ScriptedLinkDropTest, RepairDropExhaustsMaxDrops) {
  ScriptedLinkDrop d(
      0, 1,
      [](const Packet& p) {
        return dynamic_cast<const RepairMessage*>(p.payload.get()) != nullptr;
      },
      /*max_drops=*/2);
  EXPECT_FALSE(d.should_drop(request_packet(), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(repair_packet(), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(repair_packet(), HopContext{0, 0, 1}));
  // Budget exhausted: the third repair gets through.
  EXPECT_FALSE(d.should_drop(repair_packet(), HopContext{0, 0, 1}));
  EXPECT_EQ(d.drops_so_far(), 2u);
}

// ---- Gilbert-Elliott bursty loss -------------------------------------------

TEST(GilbertElliottDropTest, GoodStateWithZeroLossNeverDrops) {
  GilbertElliottDrop::Params p;
  p.p_good_bad = 0.0;  // never leaves the good state
  p.loss_good = 0.0;
  GilbertElliottDrop d(p, 1);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(d.should_drop(packet_with_tag(0),
                               HopContext{0, 0, 1, i, 0.1 * i}));
  }
  EXPECT_FALSE(d.in_bad_state(0, 100.0));
}

TEST(GilbertElliottDropTest, EntersBadStateAndDropsEverything) {
  GilbertElliottDrop::Params p;
  p.p_good_bad = 1.0;  // flip to bad after the first slot
  p.p_bad_good = 0.0;  // and stay there
  p.loss_bad = 1.0;
  GilbertElliottDrop d(p, 1);
  // Slot 0 is always good (loss_good = 0); every later slot is bad.
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1, 0, 0.0}));
  EXPECT_FALSE(d.in_bad_state(0, 0.0));
  EXPECT_TRUE(d.in_bad_state(0, p.slot_dt));
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(d.should_drop(packet_with_tag(0),
                              HopContext{0, 0, 1, i, i * p.slot_dt}));
  }
}

TEST(GilbertElliottDropTest, StationaryLossRateMatchesTheory) {
  // Stationary P(bad) = p_gb / (p_gb + p_bg) = 0.1 / 0.4 = 0.25; with
  // loss_bad = 1 and loss_good = 0 the long-run drop rate equals it.
  GilbertElliottDrop::Params p;
  p.p_good_bad = 0.1;
  p.p_bad_good = 0.3;
  GilbertElliottDrop d(p, 42);
  const int hops = 20000;  // one hop per chain slot
  int drops = 0;
  for (std::uint64_t i = 0; i < hops; ++i) {
    if (d.should_drop(packet_with_tag(0),
                      HopContext{0, 0, 1, i, i * p.slot_dt})) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / hops, 0.25, 0.03);
}

TEST(GilbertElliottDropTest, MeanBurstLengthMatchesTheory) {
  // Loss bursts are the bad-state sojourns: geometric with mean 1/p_bg
  // slots (sampled with one hop per slot).
  GilbertElliottDrop::Params p;
  p.p_good_bad = 0.05;
  p.p_bad_good = 0.3;
  GilbertElliottDrop d(p, 7);
  int bursts = 0;
  int burst_hops = 0;
  int run = 0;
  for (std::uint64_t i = 0; i < 200000; ++i) {
    if (d.should_drop(packet_with_tag(0),
                      HopContext{0, 0, 1, i, i * p.slot_dt})) {
      ++run;
    } else if (run > 0) {
      ++bursts;
      burst_hops += run;
      run = 0;
    }
  }
  ASSERT_GT(bursts, 100);
  EXPECT_NEAR(static_cast<double>(burst_hops) / bursts, 1.0 / 0.3, 0.3);
}

TEST(GilbertElliottDropTest, ChainIsPureFunctionOfTime) {
  // Querying the chain out of order (even backwards) returns the same
  // states as a fresh policy queried forwards: the per-link chain is a
  // pure function of (seed, link, slot), not of consultation history.
  GilbertElliottDrop::Params p;
  p.p_good_bad = 0.2;
  p.p_bad_good = 0.2;
  GilbertElliottDrop fwd(p, 9);
  GilbertElliottDrop scattered(p, 9);
  std::vector<bool> states;
  for (std::uint64_t k = 0; k < 300; ++k) {
    states.push_back(fwd.in_bad_state(0, k * p.slot_dt));
  }
  for (std::uint64_t k = 300; k-- > 0;) {
    scattered.in_bad_state(1, (k * 7 % 300) * p.slot_dt);  // noise, link 1
    EXPECT_EQ(scattered.in_bad_state(0, k * p.slot_dt), states[k]);
  }
}

TEST(GilbertElliottDropTest, LinksHaveIndependentChains) {
  GilbertElliottDrop::Params p;
  p.p_good_bad = 0.3;
  p.p_bad_good = 0.3;
  GilbertElliottDrop d(p, 13);
  bool differ = false;
  for (std::uint64_t k = 1; k < 200 && !differ; ++k) {
    differ = d.in_bad_state(0, k * p.slot_dt) != d.in_bad_state(1, k * p.slot_dt);
  }
  EXPECT_TRUE(differ);
}

TEST(GilbertElliottDropTest, RestrictToLeavesOtherLinksUntouched) {
  GilbertElliottDrop::Params p;
  p.p_good_bad = 1.0;
  p.loss_bad = 1.0;
  GilbertElliottDrop d(p, 1);
  d.restrict_to(3, 4);
  // Hops elsewhere are never dropped, deep into the bad state or not.
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(d.should_drop(packet_with_tag(0),
                               HopContext{0, 0, 1, i, i * p.slot_dt}));
  }
  EXPECT_EQ(d.drops_so_far(), 0u);
}

TEST(GilbertElliottDropTest, RejectsBadParams) {
  GilbertElliottDrop::Params p;
  p.p_good_bad = 1.5;
  EXPECT_THROW(GilbertElliottDrop(p, 1), std::invalid_argument);
  p = {};
  p.loss_bad = -0.1;
  EXPECT_THROW(GilbertElliottDrop(p, 1), std::invalid_argument);
  p = {};
  p.slot_dt = 0.0;
  EXPECT_THROW(GilbertElliottDrop(p, 1), std::invalid_argument);
}

// ---- first-match composition ------------------------------------------------

TEST(CompositeDropPolicyTest, FirstMatchShortCircuits) {
  CompositeDropPolicy c;
  auto first = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  auto second = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  c.add(first);
  c.add(second);
  EXPECT_TRUE(c.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  // Unlike CompositeDrop, the second policy was never consulted.
  EXPECT_EQ(first->drops_so_far(), 1u);
  EXPECT_EQ(second->drops_so_far(), 0u);
}

TEST(CompositeDropPolicyTest, FallsThroughWhenEarlierPoliciesPass) {
  CompositeDropPolicy c;
  c.add(std::make_shared<ScriptedLinkDrop>(5, 6,
                                           [](const Packet&) { return true; }));
  auto second = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  c.add(second);
  EXPECT_TRUE(c.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_EQ(second->drops_so_far(), 1u);
}

TEST(CompositeDropPolicyTest, EmptyNeverDropsAndRejectsNull) {
  CompositeDropPolicy c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_THROW(c.add(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace srm::net
