#include "net/drop_policy.h"

#include <gtest/gtest.h>

#include <memory>

namespace srm::net {
namespace {

class Tagged : public Message {
 public:
  explicit Tagged(int tag) : tag_(tag) {}
  int tag() const { return tag_; }
  std::string describe() const override { return "tagged"; }

 private:
  int tag_;
};

Packet packet_with_tag(int tag) {
  Packet p;
  p.payload = std::make_shared<Tagged>(tag);
  return p;
}

bool tag_is(const Packet& p, int tag) {
  const auto* t = dynamic_cast<const Tagged*>(p.payload.get());
  return t != nullptr && t->tag() == tag;
}

TEST(NoDropTest, NeverDrops) {
  NoDrop nd;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(nd.should_drop(packet_with_tag(i), HopContext{0, 1, 2}));
  }
}

TEST(ScriptedLinkDropTest, DropsOnlyMatchingLinkDirection) {
  ScriptedLinkDrop d(1, 2, [](const Packet& p) { return tag_is(p, 7); });
  // Wrong direction: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(7), HopContext{0, 2, 1}));
  // Wrong link: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(7), HopContext{0, 3, 4}));
  // Wrong payload: not dropped.
  EXPECT_FALSE(d.should_drop(packet_with_tag(8), HopContext{0, 1, 2}));
  // Match: dropped.
  EXPECT_TRUE(d.should_drop(packet_with_tag(7), HopContext{0, 1, 2}));
  EXPECT_EQ(d.drops_so_far(), 1u);
}

TEST(ScriptedLinkDropTest, HonorsMaxDrops) {
  ScriptedLinkDrop d(0, 1, [](const Packet&) { return true; },
                     /*max_drops=*/2);
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_EQ(d.drops_so_far(), 2u);
}

TEST(ScriptedLinkDropTest, RearmResets) {
  ScriptedLinkDrop d(0, 1, [](const Packet&) { return true; });
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  d.rearm();
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
}

TEST(ScriptedLinkDropTest, RejectsNullPredicate) {
  EXPECT_THROW(ScriptedLinkDrop(0, 1, nullptr), std::invalid_argument);
}

TEST(RandomDropTest, RateZeroNeverDrops) {
  RandomDrop d(0.0, util::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  }
}

TEST(RandomDropTest, RateOneAlwaysDrops) {
  RandomDrop d(1.0, util::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  }
}

TEST(RandomDropTest, ApproximatesRate) {
  RandomDrop d(0.3, util::Rng(42));
  int drops = 0;
  for (int i = 0; i < 10000; ++i) {
    if (d.should_drop(packet_with_tag(0), HopContext{0, 0, 1})) ++drops;
  }
  EXPECT_NEAR(drops / 10000.0, 0.3, 0.03);
}

TEST(RandomDropTest, RestrictToLimitsLink) {
  RandomDrop d(1.0, util::Rng(1));
  d.restrict_to(3, 4);
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(d.should_drop(packet_with_tag(0), HopContext{0, 4, 3}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(0), HopContext{0, 3, 4}));
}

TEST(RandomDropTest, PredicateFilters) {
  RandomDrop d(1.0, util::Rng(1), [](const Packet& p) { return tag_is(p, 5); });
  EXPECT_FALSE(d.should_drop(packet_with_tag(4), HopContext{0, 0, 1}));
  EXPECT_TRUE(d.should_drop(packet_with_tag(5), HopContext{0, 0, 1}));
}

TEST(RandomDropTest, RejectsBadRate) {
  EXPECT_THROW(RandomDrop(-0.1, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(RandomDrop(1.1, util::Rng(1)), std::invalid_argument);
}

TEST(CompositeDropTest, DropsIfAnyPolicyDrops) {
  CompositeDrop c;
  c.add(std::make_shared<NoDrop>());
  c.add(std::make_shared<ScriptedLinkDrop>(0, 1,
                                           [](const Packet&) { return true; }));
  EXPECT_TRUE(c.should_drop(packet_with_tag(0), HopContext{0, 0, 1}));
  EXPECT_FALSE(c.should_drop(packet_with_tag(0), HopContext{0, 1, 0}));
}

TEST(CompositeDropTest, AllPoliciesConsulted) {
  CompositeDrop c;
  auto a = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  auto b = std::make_shared<ScriptedLinkDrop>(
      0, 1, [](const Packet&) { return true; });
  c.add(a);
  c.add(b);
  c.should_drop(packet_with_tag(0), HopContext{0, 0, 1});
  // Both stateful policies advanced even though the first already dropped.
  EXPECT_EQ(a->drops_so_far(), 1u);
  EXPECT_EQ(b->drops_so_far(), 1u);
}

TEST(CompositeDropTest, RejectsNull) {
  CompositeDrop c;
  EXPECT_THROW(c.add(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace srm::net
