#include "net/region_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "topo/builders.h"
#include "util/rng.h"

namespace srm::net {
namespace {

// Minimum delay over all links whose endpoints land in different regions.
double cut_lookahead(const Topology& topo, const RegionMap& map) {
  double min_delay = std::numeric_limits<double>::infinity();
  for (const auto& link : topo.links()) {
    if (map.region_of(link.a) != map.region_of(link.b)) {
      min_delay = std::min(min_delay, link.delay);
    }
  }
  return min_delay;
}

TEST(PdesRegionMapTest, SingleRegionWhenTargetIsOne) {
  const auto topo = topo::make_bounded_degree_tree(50, 3);
  const RegionMap map = partition_regions(topo, 1);
  EXPECT_EQ(map.count, 1u);
  EXPECT_TRUE(std::isinf(map.lookahead));
  for (NodeId n = 0; n < 50; ++n) EXPECT_EQ(map.region_of(n), 0u);
}

TEST(PdesRegionMapTest, CoversEveryNodeExactlyOnce) {
  const auto topo = topo::make_bounded_degree_tree(500, 4);
  const RegionMap map = partition_regions(topo, 6);
  ASSERT_EQ(map.of.size(), topo.node_count());
  std::set<std::uint32_t> used;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    ASSERT_LT(map.region_of(n), map.count);
    used.insert(map.region_of(n));
  }
  // Dense renumbering: regions 0..count-1 all non-empty.
  EXPECT_EQ(used.size(), map.count);
}

TEST(PdesRegionMapTest, LookaheadIsMinCutDelayAndPositive) {
  util::Rng rng(42);
  const auto topo = topo::make_random_graph(300, 450, rng);
  const RegionMap map = partition_regions(topo, 4);
  if (map.count == 1) {
    EXPECT_TRUE(std::isinf(map.lookahead));
    return;
  }
  EXPECT_GT(map.lookahead, 0.0);
  EXPECT_DOUBLE_EQ(map.lookahead, cut_lookahead(topo, map));
}

TEST(PdesRegionMapTest, DeterministicForSameTopology) {
  const auto topo = topo::make_bounded_degree_tree(400, 4);
  const RegionMap a = partition_regions(topo, 5);
  const RegionMap b = partition_regions(topo, 5);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.of, b.of);
  EXPECT_EQ(a.lookahead, b.lookahead);
}

TEST(PdesRegionMapTest, RegionsAreReasonablyBalanced) {
  const auto topo = topo::make_bounded_degree_tree(1024, 4);
  const RegionMap map = partition_regions(topo, 8);
  ASSERT_GE(map.count, 2u);
  std::vector<std::size_t> sizes(map.count, 0);
  for (NodeId n = 0; n < topo.node_count(); ++n) ++sizes[map.region_of(n)];
  const std::size_t biggest = *std::max_element(sizes.begin(), sizes.end());
  // The growth cap is ceil(n / seeds); allow slack for leftover attachment.
  EXPECT_LE(biggest, 2 * (topo.node_count() / map.count + 1));
}

TEST(PdesRegionMapTest, TinyTopologyDegeneratesToOneRegion) {
  const auto topo = topo::make_chain(1);
  const RegionMap map = partition_regions(topo, 4);
  EXPECT_EQ(map.count, 1u);
}

TEST(PdesRegionMapTest, DisconnectedComponentsAllAssigned) {
  // Two isolated cliques: every node still lands in a valid region.
  Topology topo(6);
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  topo.add_link(3, 4, 1.0);
  topo.add_link(4, 5, 1.0);
  const RegionMap map = partition_regions(topo, 2);
  for (NodeId n = 0; n < 6; ++n) ASSERT_LT(map.region_of(n), map.count);
}

}  // namespace
}  // namespace srm::net
