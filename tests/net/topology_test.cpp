#include "net/topology.h"

#include <gtest/gtest.h>

namespace srm::net {
namespace {

TEST(TopologyTest, StartsWithIsolatedNodes) {
  Topology t(3);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(TopologyTest, AddNodeReturnsSequentialIds) {
  Topology t;
  EXPECT_EQ(t.add_node(), 0u);
  EXPECT_EQ(t.add_node(), 1u);
  EXPECT_EQ(t.node_count(), 2u);
}

TEST(TopologyTest, AddLinkIsBidirectional) {
  Topology t(2);
  const LinkId id = t.add_link(0, 1, 2.5, 3);
  EXPECT_EQ(t.link_count(), 1u);
  ASSERT_EQ(t.neighbors(0).size(), 1u);
  ASSERT_EQ(t.neighbors(1).size(), 1u);
  EXPECT_EQ(t.neighbors(0)[0].peer, 1u);
  EXPECT_EQ(t.neighbors(1)[0].peer, 0u);
  EXPECT_DOUBLE_EQ(t.neighbors(0)[0].delay, 2.5);
  EXPECT_EQ(t.neighbors(0)[0].threshold, 3);
  EXPECT_EQ(t.link(id).a, 0u);
  EXPECT_EQ(t.link(id).b, 1u);
}

TEST(TopologyTest, RejectsBadLinks) {
  Topology t(2);
  EXPECT_THROW(t.add_link(0, 0), std::invalid_argument);      // self loop
  EXPECT_THROW(t.add_link(0, 5), std::out_of_range);          // bad node
  EXPECT_THROW(t.add_link(0, 1, -1.0), std::invalid_argument);  // bad delay
  EXPECT_THROW(t.add_link(0, 1, 1.0, 0), std::invalid_argument);  // threshold
  t.add_link(0, 1);
  EXPECT_THROW(t.add_link(1, 0), std::invalid_argument);  // duplicate
}

TEST(TopologyTest, LinkBetweenFindsLink) {
  Topology t(3);
  t.add_link(0, 1);
  const LinkId id = t.add_link(1, 2);
  EXPECT_EQ(t.link_between(1, 2), id);
  EXPECT_EQ(t.link_between(2, 1), id);
  EXPECT_THROW(t.link_between(0, 2), std::invalid_argument);
}

TEST(TopologyTest, AdminRegionsDefaultZero) {
  Topology t(2);
  EXPECT_EQ(t.admin_region(0), 0u);
  t.set_admin_region(1, 7);
  EXPECT_EQ(t.admin_region(1), 7u);
}

TEST(TopologyTest, ConnectivityDetection) {
  Topology t(4);
  EXPECT_FALSE(t.connected());
  t.add_link(0, 1);
  t.add_link(2, 3);
  EXPECT_FALSE(t.connected());
  t.add_link(1, 2);
  EXPECT_TRUE(t.connected());
}

TEST(TopologyTest, EmptyTopologyIsConnected) {
  Topology t;
  EXPECT_TRUE(t.connected());
}

TEST(TopologyTest, DegreeCountsIncidentLinks) {
  Topology t(4);
  t.add_link(0, 1);
  t.add_link(0, 2);
  t.add_link(0, 3);
  EXPECT_EQ(t.degree(0), 3u);
  EXPECT_EQ(t.degree(1), 1u);
}

TEST(TopologyTest, JournalRecordsEveryStructuralMutation) {
  Topology t(2);
  const std::uint64_t v0 = t.version();
  const LinkId l = t.add_link(0, 1);
  const NodeId n = t.add_node();
  const LinkId l2 = t.add_link(1, n);
  t.set_link_up(l, false);
  t.set_link_up(l, true);

  std::vector<TopoEdit> edits;
  ASSERT_TRUE(t.journal_since(v0, edits));
  ASSERT_EQ(edits.size(), 5u);
  EXPECT_EQ(edits[0].kind, TopoEdit::Kind::kLinkAdded);
  EXPECT_EQ(edits[0].link, l);
  EXPECT_EQ(edits[1].kind, TopoEdit::Kind::kNodeAdded);
  EXPECT_EQ(edits[1].node, n);
  EXPECT_EQ(edits[2].kind, TopoEdit::Kind::kLinkAdded);
  EXPECT_EQ(edits[2].link, l2);
  EXPECT_EQ(edits[3].kind, TopoEdit::Kind::kLinkDown);
  EXPECT_EQ(edits[3].link, l);
  EXPECT_EQ(edits[4].kind, TopoEdit::Kind::kLinkUp);
  EXPECT_EQ(edits[4].link, l);
  // Entries carry consecutive version stamps ending at the current version.
  for (std::size_t i = 0; i < edits.size(); ++i) {
    EXPECT_EQ(edits[i].version, v0 + i + 1);
  }
  EXPECT_EQ(edits.back().version, t.version());
}

TEST(TopologyTest, JournalSinceCurrentVersionIsEmptyDelta) {
  Topology t(2);
  t.add_link(0, 1);
  std::vector<TopoEdit> edits{TopoEdit{}};  // stale content must be cleared
  ASSERT_TRUE(t.journal_since(t.version(), edits));
  EXPECT_TRUE(edits.empty());
}

TEST(TopologyTest, JournalTruncatesAtCapacity) {
  Topology t(2);
  t.set_journal_capacity(3);
  const LinkId l = t.add_link(0, 1);
  const std::uint64_t mid = t.version();
  t.set_link_up(l, false);
  t.set_link_up(l, true);
  t.set_link_up(l, false);
  t.set_link_up(l, true);  // 4 toggles: the first has been evicted

  std::vector<TopoEdit> edits;
  EXPECT_FALSE(t.journal_since(mid, edits));      // reaches back too far
  ASSERT_TRUE(t.journal_since(mid + 1, edits));   // oldest retained edit
  EXPECT_EQ(edits.size(), 3u);
}

TEST(TopologyTest, JournalCapacityZeroDisablesJournaling) {
  Topology t(2);
  t.set_journal_capacity(0);
  const std::uint64_t v0 = t.version();
  t.add_link(0, 1);
  std::vector<TopoEdit> edits;
  EXPECT_FALSE(t.journal_since(v0, edits));
  EXPECT_TRUE(t.journal_since(t.version(), edits));  // empty delta still ok
}

TEST(TopologyTest, JournalRejectsFutureVersion) {
  Topology t(2);
  std::vector<TopoEdit> edits;
  EXPECT_FALSE(t.journal_since(t.version() + 1, edits));
}

}  // namespace
}  // namespace srm::net
