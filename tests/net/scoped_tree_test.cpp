// The TTL-scoped delivery-tree fast path (set_scoped_tree_cache;
// ARCHITECTURE.md §12): on tree topologies every TTL-limited multicast must
// deliver to exactly the receivers — with exactly the delays, hop counts
// and arrival order — that the full canonical-tree walk produces, while
// never materializing nodes beyond the TTL radius.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace srm::net {
namespace {

class TestMessage : public Message {
 public:
  std::string describe() const override { return "SCOPED-TEST"; }
};

struct Rx {
  NodeId receiver;
  double at;
  double path_delay;
  int hops;
  int remaining_ttl;
  friend bool operator==(const Rx&, const Rx&) = default;
};

class Recorder : public PacketSink {
 public:
  explicit Recorder(sim::EventQueue& q, std::vector<Rx>& log, NodeId self)
      : queue_(&q), log_(&log), self_(self) {}
  void on_receive(const Packet&, const DeliveryInfo& i) override {
    log_->push_back(
        Rx{self_, queue_->now(), i.path_delay, i.hops, i.remaining_ttl});
  }

 private:
  sim::EventQueue* queue_;
  std::vector<Rx>* log_;
  NodeId self_;
};

// Runs the same TTL-sweep of multicasts over `topo` twice — full walk vs
// scoped cache, in independently built worlds so caches cannot leak — and
// requires identical delivery logs.
void expect_sweep_identical(const Topology& topo,
                            const std::vector<NodeId>& members,
                            const std::vector<NodeId>& roots,
                            const std::vector<int>& ttls) {
  auto run = [&](bool scoped) {
    sim::EventQueue queue;
    MulticastNetwork net(queue, topo);
    net.set_scoped_tree_cache(scoped);
    std::vector<Rx> log;
    std::vector<std::unique_ptr<Recorder>> sinks;
    for (NodeId m : members) {
      sinks.push_back(std::make_unique<Recorder>(queue, log, m));
      net.attach(m, sinks.back().get());
      net.join(1, m);
    }
    for (NodeId root : roots) {
      for (int ttl : ttls) {
        Packet p;
        p.group = 1;
        p.ttl = ttl;
        p.payload = std::make_shared<TestMessage>();
        net.multicast(root, p);
        queue.run();
      }
    }
    return log;
  };
  const std::vector<Rx> full = run(false);
  const std::vector<Rx> fast = run(true);
  ASSERT_EQ(full.size(), fast.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], fast[i]) << "delivery " << i << " diverged";
  }
}

TEST(ScopedTreeTest, MatchesFullWalkOnTreeOfLans) {
  // Non-uniform delays (backbone 1.0, LAN 0.1) on a tree: paths are unique,
  // so the scoped tree must reproduce the canonical walk exactly.
  auto tl = topo::make_tree_of_lans(5, 3, 4);
  std::vector<NodeId> roots{tl.workstations.front(), tl.workstations.back(),
                            tl.workstations[tl.workstations.size() / 2]};
  expect_sweep_identical(tl.topo, tl.workstations, roots, {1, 2, 3, 4, 8});
}

TEST(ScopedTreeTest, MatchesFullWalkOnRandomTree) {
  util::Rng rng(17);
  Topology topo = topo::make_random_tree(60, rng);
  std::vector<NodeId> members;
  for (NodeId n = 0; n < 60; n += 3) members.push_back(n);
  expect_sweep_identical(topo, members, {members[0], members[5], members[10]},
                         {1, 2, 3, 5, 9});
}

TEST(ScopedTreeTest, MatchesFullWalkOnUniformDelayRing) {
  // A ring has redundant paths but uniform delays, where min-delay and
  // min-hop orders agree — the other regime the fast path guarantees.
  Topology topo = topo::make_ring(12);
  std::vector<NodeId> members;
  for (NodeId n = 0; n < 12; ++n) members.push_back(n);
  expect_sweep_identical(topo, members, {0, 5}, {1, 2, 3, 6});
}

TEST(ScopedTreeTest, CacheRevalidatesOnMembershipChange) {
  auto tl = topo::make_tree_of_lans(3, 2, 3);
  sim::EventQueue queue;
  MulticastNetwork net(queue, tl.topo);
  net.set_scoped_tree_cache(true);
  std::vector<Rx> log;
  std::vector<std::unique_ptr<Recorder>> sinks;
  for (NodeId m : tl.workstations) {
    sinks.push_back(std::make_unique<Recorder>(queue, log, m));
    net.attach(m, sinks.back().get());
    net.join(1, m);
  }
  const NodeId root = tl.workstations.front();
  auto send = [&](int ttl) {
    Packet p;
    p.group = 1;
    p.ttl = ttl;
    p.payload = std::make_shared<TestMessage>();
    net.multicast(root, p);
    queue.run();
  };
  send(2);
  const std::size_t first = log.size();
  EXPECT_GT(first, 0u);
  // A sibling leaves the group: the cached scoped tree must be rebuilt and
  // stop delivering to it.
  const NodeId sibling = tl.workstations[1];
  net.leave(1, sibling);
  log.clear();
  send(2);
  for (const Rx& rx : log) EXPECT_NE(rx.receiver, sibling);
  EXPECT_EQ(log.size(), first - 1);
}

TEST(ScopedTreeTest, FullTtlStillUsesCanonicalTree) {
  // TTL = kMaxTtl bypasses the scoped path entirely; stats must show no
  // behavioural change when the cache is on but every send is full-scope.
  auto tl = topo::make_tree_of_lans(3, 2, 3);
  auto run = [&](bool scoped) {
    sim::EventQueue queue;
    MulticastNetwork net(queue, tl.topo);
    net.set_scoped_tree_cache(scoped);
    std::vector<Rx> log;
    std::vector<std::unique_ptr<Recorder>> sinks;
    for (NodeId m : tl.workstations) {
      sinks.push_back(std::make_unique<Recorder>(queue, log, m));
      net.attach(m, sinks.back().get());
      net.join(1, m);
    }
    Packet p;
    p.group = 1;
    p.payload = std::make_shared<TestMessage>();
    net.multicast(tl.workstations.front(), p);
    queue.run();
    return std::make_pair(log, net.stats().ttl_prunes);
  };
  const auto [full_log, full_prunes] = run(false);
  const auto [fast_log, fast_prunes] = run(true);
  ASSERT_EQ(full_log.size(), fast_log.size());
  for (std::size_t i = 0; i < full_log.size(); ++i) {
    EXPECT_EQ(full_log[i], fast_log[i]);
  }
  EXPECT_EQ(full_prunes, fast_prunes);
}

}  // namespace
}  // namespace srm::net
