#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace srm::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, AdjacentSeedsUncorrelatedInUniform) {
  // splitmix64 expansion should decorrelate seeds 0 and 1.
  Rng a(0), b(1);
  double corr_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = a.uniform(0, 1);
    const double y = b.uniform(0, 1);
    if (std::abs(x - y) < 0.01) ++corr_hits;
  }
  EXPECT_LT(corr_hits, 60);  // ~2% expected for independent streams
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformDegenerateIntervalReturnsLo) {
  Rng r(7);
  EXPECT_DOUBLE_EQ(r.uniform(3.0, 3.0), 3.0);
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng r(7);
  EXPECT_THROW(r.uniform(5.0, 2.0), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng r(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng r(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng r(9);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng r(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = r.sample_without_replacement(20, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (std::size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng r(13);
  const auto s = r.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, SampleRejectsOverdraw) {
  Rng r(13);
  EXPECT_THROW(r.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Parent and child should produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, IndexStaysInRange) {
  Rng r(17);
  for (int i = 0; i < 500; ++i) EXPECT_LT(r.index(7), 7u);
  EXPECT_THROW(r.index(0), std::invalid_argument);
}

TEST(KeyedDrawTest, DeterministicAndKeySensitive) {
  // Stateless draws: same key -> same value, any key component change ->
  // (almost surely) a different one.  This is what lets the hierarchical
  // session layer draw jitter without a shared RNG stream (ARCHITECTURE.md
  // §12 determinism argument).
  EXPECT_EQ(keyed_u64(1, 2, 3, 4), keyed_u64(1, 2, 3, 4));
  EXPECT_NE(keyed_u64(1, 2, 3, 4), keyed_u64(1, 2, 3, 5));
  EXPECT_NE(keyed_u64(1, 2, 3, 4), keyed_u64(1, 2, 4, 4));
  EXPECT_NE(keyed_u64(1, 2, 3, 4), keyed_u64(1, 3, 3, 4));
  EXPECT_NE(keyed_u64(1, 2, 3, 4), keyed_u64(2, 2, 3, 4));
}

TEST(KeyedDrawTest, UnitIsInHalfOpenIntervalAndRoughlyUniform) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const double u = keyed_unit(7, 1, i, i * 31);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4096.0, 0.5, 0.02);
}

TEST(KeyedDrawTest, SaltedStreamsAreIndependent) {
  // The stochastic drop policies carve independent streams out of one seed
  // by salting the first key component (kSaltRandomDrop / kSaltGeLoss /
  // kSaltGeTransition in net/drop_policy.cpp).  Walking one component with
  // the others fixed must give per-salt streams that look pairwise
  // independent: XORing paired draws should flip about half the 64 bits.
  const int n = 2048;
  long long diff_bits = 0;
  int collisions = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t a = keyed_u64(99, 1, i, 7);
    const std::uint64_t b = keyed_u64(99, 2, i, 7);
    if (a == b) ++collisions;
    std::uint64_t x = a ^ b;
    while (x != 0) {
      x &= x - 1;
      ++diff_bits;
    }
  }
  EXPECT_EQ(collisions, 0);
  const double mean_bits = static_cast<double>(diff_bits) / n;
  EXPECT_NEAR(mean_bits, 32.0, 1.0);  // ~N(32, 4): 1.0 is ~11 sigma of mean
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

}  // namespace
}  // namespace srm::util
