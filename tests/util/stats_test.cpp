#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace srm::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SamplesTest, QuantilesOfKnownSet) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.lower_quartile(), 2.0);
  EXPECT_DOUBLE_EQ(s.upper_quartile(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SamplesTest, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(SamplesTest, InsertionOrderPreservedAfterQuantile) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  s.add(3.0);
  (void)s.median();  // triggers sorting of the internal cache only
  ASSERT_EQ(s.values().size(), 3u);
  EXPECT_DOUBLE_EQ(s.values()[0], 5.0);
  EXPECT_DOUBLE_EQ(s.values()[1], 1.0);
  EXPECT_DOUBLE_EQ(s.values()[2], 3.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.values().back(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SamplesTest, EmptyQuantileThrows) {
  Samples s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(SamplesTest, OutOfRangeQuantileThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SamplesTest, MeanMatches) {
  Samples s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(EwmaTest, FirstSampleSeedsAverage) {
  Ewma e(0.25);
  EXPECT_FALSE(e.seeded());
  e.update(8.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

TEST(EwmaTest, ConvergesGeometrically) {
  Ewma e(0.25);
  e.update(0.0);
  e.update(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.0);  // 0.75*0 + 0.25*4
  e.update(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 1.75);
}

TEST(EwmaTest, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(EwmaTest, ResetUnseeds) {
  Ewma e(0.5);
  e.update(10.0);
  e.reset(0.0);
  EXPECT_FALSE(e.seeded());
  e.update(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(SummaryTest, SummarizeEmpty) {
  Samples s;
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.count, 0u);
}

TEST(SummaryTest, SummarizeFiveNumber) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 100.0}) s.add(x);
  const Summary sum = summarize(s);
  EXPECT_EQ(sum.count, 5u);
  EXPECT_DOUBLE_EQ(sum.median, 3.0);
  EXPECT_DOUBLE_EQ(sum.q1, 2.0);
  EXPECT_DOUBLE_EQ(sum.q3, 4.0);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 100.0);
  EXPECT_DOUBLE_EQ(sum.mean, 22.0);
}

}  // namespace
}  // namespace srm::util
