#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.h"

namespace srm::util {
namespace {

TEST(FlatMapTest, StartsEmpty) {
  FlatMap<int, double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), m.end());
  EXPECT_EQ(m.count(1), 0u);
}

TEST(FlatMapTest, AscendingAppendAndLookup) {
  FlatMap<int, std::string> m;
  m[1] = "a";
  m[3] = "b";
  m[7] = "c";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(1), "a");
  EXPECT_EQ(m.at(3), "b");
  EXPECT_EQ(m.at(7), "c");
  EXPECT_EQ(m.count(3), 1u);
  EXPECT_EQ(m.find(2), m.end());
  EXPECT_THROW(m.at(2), std::out_of_range);
}

TEST(FlatMapTest, OutOfOrderInsertKeepsSortedOrder) {
  FlatMap<int, int> m;
  m[5] = 50;
  m[1] = 10;
  m[3] = 30;
  m[4] = 40;
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 4, 5}));
  EXPECT_EQ(m.at(1), 10);
  EXPECT_EQ(m.at(4), 40);
}

TEST(FlatMapTest, OperatorBracketAssignsExisting) {
  FlatMap<int, int> m;
  m[2] = 20;
  m[2] = 21;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(2), 21);
  m.insert_or_assign(2, 22);
  EXPECT_EQ(m.at(2), 22);
}

TEST(FlatMapTest, IterationOrderMatchesStdMap) {
  // The protocol relies on session tables iterating exactly like the
  // std::map they replaced; drive both with the same random key stream.
  FlatMap<unsigned, unsigned> flat;
  std::map<unsigned, unsigned> ref;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const auto key = static_cast<unsigned>(rng.index(200));
    const auto value = static_cast<unsigned>(i);
    flat[key] = value;
    ref[key] = value;
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

TEST(FlatMapTest, EqualityComparesContents) {
  FlatMap<int, int> a;
  FlatMap<int, int> b;
  a[1] = 10;
  a[2] = 20;
  b[1] = 10;
  EXPECT_NE(a, b);
  b[2] = 20;
  EXPECT_EQ(a, b);
}

TEST(FlatMapTest, ClearKeepsCapacitySwapStealsStorage) {
  FlatMap<int, int> a;
  for (int i = 0; i < 16; ++i) a[i] = i;
  a.clear();
  EXPECT_TRUE(a.empty());
  FlatMap<int, int> b;
  b[9] = 90;
  a.swap(b);
  EXPECT_TRUE(b.empty());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.at(9), 90);
}

}  // namespace
}  // namespace srm::util
