#include "util/perf_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace srm::util {
namespace {

class PerfJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "perf_json_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_file(const std::string& text) {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }

  std::string path_;
};

TEST_F(PerfJsonTest, RoundTripsNumbersAndStrings) {
  PerfJson json(path_, "micro_kernel");
  json.set("ns_per_event", 231.5);
  json.set("host", "ci");
  ASSERT_TRUE(json.save());

  const auto sections = PerfJson::load(path_);
  ASSERT_EQ(sections.size(), 1u);
  const auto& metrics = sections.at("micro_kernel");
  EXPECT_EQ(metrics.at("ns_per_event"), "231.5");
  EXPECT_EQ(metrics.at("host"), "\"ci\"");
}

TEST_F(PerfJsonTest, SaveMergesWithOtherSections) {
  {
    PerfJson a(path_, "fig3_random_trees");
    a.set("wall_seconds", 1.25);
    a.set("threads", 4.0);
    ASSERT_TRUE(a.save());
  }
  {
    PerfJson b(path_, "micro_kernel");
    b.set("ns_per_event", 200.0);
    ASSERT_TRUE(b.save());
  }
  const auto sections = PerfJson::load(path_);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections.at("fig3_random_trees").at("wall_seconds"), "1.25");
  EXPECT_EQ(sections.at("fig3_random_trees").at("threads"), "4");
  EXPECT_EQ(sections.at("micro_kernel").at("ns_per_event"), "200");
}

TEST_F(PerfJsonTest, RewritingASectionReplacesOnlyThatSection) {
  {
    PerfJson a(path_, "fig3_random_trees");
    a.set("wall_seconds", 9.0);
    a.set("stale_key", 1.0);
    ASSERT_TRUE(a.save());
    PerfJson b(path_, "micro_kernel");
    b.set("ns_per_event", 300.0);
    ASSERT_TRUE(b.save());
  }
  PerfJson again(path_, "fig3_random_trees");
  again.set("wall_seconds", 2.0);
  ASSERT_TRUE(again.save());

  const auto sections = PerfJson::load(path_);
  EXPECT_EQ(sections.at("fig3_random_trees").at("wall_seconds"), "2");
  EXPECT_EQ(sections.at("fig3_random_trees").count("stale_key"), 0u);
  EXPECT_EQ(sections.at("micro_kernel").at("ns_per_event"), "300");
}

TEST_F(PerfJsonTest, MissingFileLoadsEmptyAndSavesFresh) {
  EXPECT_TRUE(PerfJson::load(path_).empty());
  PerfJson json(path_, "s");
  json.set("k", 1.0);
  EXPECT_TRUE(json.save());
  EXPECT_EQ(PerfJson::load(path_).at("s").at("k"), "1");
}

TEST_F(PerfJsonTest, CorruptFileIsTreatedAsEmpty) {
  write_file("{\"unterminated\": {");
  EXPECT_TRUE(PerfJson::load(path_).empty());
  // A save over a corrupt file starts fresh rather than failing.
  PerfJson json(path_, "s");
  json.set("k", 2.0);
  ASSERT_TRUE(json.save());
  EXPECT_EQ(PerfJson::load(path_).at("s").at("k"), "2");
}

TEST_F(PerfJsonTest, QuotesAndEscapesInKeys) {
  PerfJson json(path_, "sec\"tion");
  json.set("ke\\y", "va\"lue");
  ASSERT_TRUE(json.save());
  const auto sections = PerfJson::load(path_);
  ASSERT_EQ(sections.count("sec\"tion"), 1u);
  EXPECT_EQ(sections.at("sec\"tion").at("ke\\y"), "\"va\"lue\"");
}

}  // namespace
}  // namespace srm::util
