#include "util/flags.h"

#include <gtest/gtest.h>

namespace srm::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = parse({"--seed=99", "--trials=5"});
  EXPECT_EQ(f.get_seed(1), 99u);
  EXPECT_EQ(f.get_int("trials", 0), 5);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = parse({"--name", "value"});
  EXPECT_EQ(f.get_string("name", ""), "value");
}

TEST(FlagsTest, BareBoolean) {
  const Flags f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_EQ(f.get_string("s", "d"), "d");
  EXPECT_EQ(f.get_seed(7), 7u);
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = parse({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.25);
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = parse({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(FlagsTest, HasDetectsPresence) {
  const Flags f = parse({"--x=1"});
  EXPECT_TRUE(f.has("x"));
  EXPECT_FALSE(f.has("y"));
}

}  // namespace
}  // namespace srm::util
