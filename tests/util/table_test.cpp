#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace srm::util {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.to_string();
  // Every line should have the same position for the second column.
  std::istringstream is(out);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_EQ(l1.size(), l3.size());
  EXPECT_EQ(l3.size(), l4.size());
  EXPECT_NE(out.find("long_header"), std::string::npos);
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 3");
  EXPECT_NE(os.str().find("Figure 3"), std::string::npos);
}

}  // namespace
}  // namespace srm::util
