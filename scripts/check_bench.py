#!/usr/bin/env python3
"""Benchmark regression gate, run by CI.

Compares a freshly measured perf JSON (the two-level section -> metric ->
value format written by util::PerfJson) against the baseline committed in
the repository (BENCH_kernel.json, BENCH_session.json, BENCH_fault.json,
BENCH_workload.json, ...) and fails when any metric regresses by more than
the tolerance (default 20%).  The recovery-latency percentiles in
BENCH_fault.json and BENCH_workload.json are virtual-time (``*_us``) and
therefore machine-independent: any drift is a behavioral change, not
measurement noise.  (scripts/check_bench_test.py pins this module's
skip/direction/section rules.)

Direction is inferred from the metric name:
  * ``*_per_second``           -- higher is better
  * ``*_ns_per_*``, ``*_us``   -- lower is better
Bookkeeping keys (threads, replications, rounds, regions) are skipped, as
are ``*wall_seconds`` keys (machine-dependent wall clock, recorded for
information only) and metrics present on only one side (new benchmarks,
retired benchmarks, or a filtered smoke run that captured a subset).

A section named in ``--sections`` that exists in the current run but not
in the baseline is *baseline-establishing*: its metrics are recorded, a
note is printed, and nothing is gated — committing the current JSON makes
it the baseline.  A requested section present in neither file is an error
(almost certainly a typo in the CI config).

Direction is also section-aware: the ``pdes_kernel`` and ``pdes_stochastic``
sections' throughput keys (``*_per_second``, ``speedup*``) depend on the CI
runner's core count and are skipped, while their deterministic keys
(``events_total`` implicitly, ``*_us`` explicitly) stay gated — the
parallel kernel promises event-order equivalence, with or without keyed
stochastic loss, so those must not drift at all.

Usage:
  scripts/check_bench.py --baseline BENCH_kernel.json --current /tmp/k.json
  scripts/check_bench.py --baseline B.json --current C.json \
      --sections micro_kernel,session_scaling --tolerance 0.25

Exits non-zero with a report on any regression beyond tolerance.
"""

import argparse
import json
import pathlib
import sys

SKIP_KEYS = {"threads", "replications", "rounds", "regions"}

# Sections whose throughput keys scale with the runner's thread count, not
# with code quality: only their deterministic (virtual-time) keys are gated.
THREAD_SCALED_SECTIONS = {"pdes_kernel", "pdes_stochastic"}


def direction(key, section=""):
    """'up' if larger values are better, 'down' if smaller, None to skip."""
    if key in SKIP_KEYS or key.endswith("wall_seconds"):
        return None  # wall clock is machine-dependent: informational only
    if section in THREAD_SCALED_SECTIONS and (
        key.endswith("_per_second") or key.startswith("speedup")
    ):
        return None  # events/sec at N threads depends on the machine's cores
    if key.endswith("_per_second"):
        return "up"
    if "_ns_per_" in key or key.endswith("_us"):
        return "down"
    return None


def load(path):
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object of sections")
    return data


def compare(baseline, current, sections, tolerance):
    regressions = []
    errors = []
    notes = []
    compared = 0
    section_names = sections or sorted(set(baseline) & set(current))
    for section in section_names:
        if section not in baseline and section not in current:
            # Only reachable via --sections: a name in neither file is a
            # typo or a retired benchmark, not a baseline-establishing run.
            errors.append(
                f"  section '{section}' present in neither file (typo?)"
            )
            continue
        if section not in baseline:
            # A brand-new benchmark: nothing to gate against yet.  The
            # current run's numbers become the baseline once committed.
            notes.append(
                f"  {section}: baseline-establishing "
                f"({len(current[section])} metrics recorded, not gated)"
            )
            continue
        if section not in current:
            notes.append(
                f"  {section}: absent from current run (not measured, "
                f"skipped)"
            )
            continue
        base_metrics = baseline[section]
        cur_metrics = current[section]
        for key in sorted(set(base_metrics) & set(cur_metrics)):
            sense = direction(key, section)
            if sense is None:
                continue
            base = float(base_metrics[key])
            cur = float(cur_metrics[key])
            if base <= 0:
                continue
            compared += 1
            change = cur / base - 1.0
            regressed = (sense == "up" and change < -tolerance) or (
                sense == "down" and change > tolerance
            )
            if regressed:
                regressions.append(
                    f"  {section}.{key}: {base:g} -> {cur:g} "
                    f"({change:+.1%}, {'higher' if sense == 'up' else 'lower'}"
                    f" is better, tolerance {tolerance:.0%})"
                )
    return regressions, compared, notes, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed perf JSON to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly measured perf JSON")
    parser.add_argument("--sections", default="",
                        help="comma-separated section filter "
                             "(default: sections present in both files)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args()

    for path in (args.baseline, args.current):
        if not pathlib.Path(path).is_file():
            print(f"check_bench: missing file {path}", file=sys.stderr)
            return 1

    sections = [s for s in args.sections.split(",") if s]
    regressions, compared, notes, errors = compare(
        load(args.baseline), load(args.current), sections, args.tolerance
    )
    for line in notes:
        print(f"check_bench: note:{line}")
    if errors:
        print("check_bench: bad --sections request:", file=sys.stderr)
        for line in errors:
            print(line, file=sys.stderr)
        return 1
    if regressions:
        print("check_bench: regressions beyond tolerance:", file=sys.stderr)
        for line in regressions:
            print(line, file=sys.stderr)
        return 1
    if compared == 0:
        print("check_bench: warning: no comparable metrics found",
              file=sys.stderr)
    else:
        print(f"check_bench: OK ({compared} metrics within "
              f"{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
