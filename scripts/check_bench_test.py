#!/usr/bin/env python3
"""Self-test for scripts/check_bench.py's gating logic.

The regression gate guards every committed BENCH_*.json (kernel, session,
fault, fec, routing, workload), so its skip/direction/section rules are
themselves load-bearing: a typo that silently skipped ``*_us`` keys would
disable the whole virtual-time gate.  These tests pin the behavior down:

  * direction inference (``*_per_second`` up, ``*_us``/``*_ns_per_*`` down,
    bookkeeping and wall-clock keys skipped, thread-scaled sections gating
    only their deterministic keys),
  * regression detection in both directions with the tolerance applied,
  * section handling: baseline-establishing runs, sections absent from the
    current run, and the section-in-neither-file error.

Written pytest-style (plain ``test_*`` functions with asserts) but
self-contained: ``python3 scripts/check_bench_test.py`` runs them all and
exits non-zero on the first failure, so CI needs no pytest install.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_bench  # noqa: E402


# --- direction inference ----------------------------------------------------

def test_direction_per_second_is_up():
    assert check_bench.direction("replications_per_second") == "up"


def test_direction_virtual_time_is_down():
    assert check_bench.direction("recovery_p99_us") == "down"
    assert check_bench.direction("event_ns_per_op") == "down"


def test_direction_skips_bookkeeping_keys():
    for key in ("threads", "replications", "rounds", "regions"):
        assert check_bench.direction(key) is None


def test_direction_skips_wall_clock():
    assert check_bench.direction("wall_seconds") is None
    assert check_bench.direction("sweep_wall_seconds") is None


def test_direction_skips_plain_counters():
    # Counters like `losses` carry no better/worse sense; they are recorded
    # for diffing, never gated.
    assert check_bench.direction("losses") is None


def test_thread_scaled_section_skips_throughput_keeps_virtual_time():
    for section in ("pdes_kernel", "pdes_stochastic"):
        assert section in check_bench.THREAD_SCALED_SECTIONS
        assert check_bench.direction("events_per_second", section) is None
        assert check_bench.direction("speedup_4_threads", section) is None
        assert check_bench.direction("merge_p99_us", section) == "down"
    # The same keys gate normally outside the thread-scaled sections.
    assert check_bench.direction("events_per_second", "workload_suite") == "up"


# --- regression detection ---------------------------------------------------

def _compare(baseline, current, sections=(), tolerance=0.20):
    return check_bench.compare(baseline, current, list(sections), tolerance)


def test_lower_is_better_regression_detected():
    regressions, compared, notes, errors = _compare(
        {"s": {"recovery_p50_us": 100.0}}, {"s": {"recovery_p50_us": 130.0}}
    )
    assert compared == 1
    assert len(regressions) == 1 and "recovery_p50_us" in regressions[0]
    assert not notes and not errors


def test_higher_is_better_regression_detected():
    regressions, _, _, _ = _compare(
        {"s": {"ops_per_second": 100.0}}, {"s": {"ops_per_second": 70.0}}
    )
    assert len(regressions) == 1


def test_improvement_and_within_tolerance_pass():
    regressions, compared, _, _ = _compare(
        {"s": {"recovery_p50_us": 100.0, "ops_per_second": 50.0}},
        {"s": {"recovery_p50_us": 115.0, "ops_per_second": 60.0}},
    )
    assert compared == 2
    assert regressions == []


def test_tolerance_is_respected():
    baseline = {"s": {"recovery_p50_us": 100.0}}
    current = {"s": {"recovery_p50_us": 130.0}}
    assert _compare(baseline, current, tolerance=0.20)[0]
    assert not _compare(baseline, current, tolerance=0.50)[0]


def test_one_sided_metrics_are_skipped():
    # A metric present in only one file (new or retired benchmark) is not
    # compared at all.
    regressions, compared, _, _ = _compare(
        {"s": {"old_us": 10.0}}, {"s": {"new_us": 99999.0}}
    )
    assert compared == 0
    assert regressions == []


# --- section handling -------------------------------------------------------

def test_baseline_establishing_section_notes_not_gates():
    regressions, compared, notes, errors = _compare(
        {}, {"workload_suite": {"flash_crowd_recovery_p99_us": 1e6}},
        sections=["workload_suite"],
    )
    assert regressions == [] and compared == 0 and errors == []
    assert len(notes) == 1 and "baseline-establishing" in notes[0]


def test_section_absent_from_current_run_is_skipped():
    regressions, compared, notes, errors = _compare(
        {"workload_suite": {"flash_crowd_recovery_p99_us": 1e6}}, {},
        sections=["workload_suite"],
    )
    assert regressions == [] and compared == 0 and errors == []
    assert len(notes) == 1 and "absent from current run" in notes[0]


def test_section_in_neither_file_is_an_error():
    _, _, _, errors = _compare({}, {}, sections=["wrokload_suite"])
    assert len(errors) == 1 and "neither file" in errors[0]


def test_unfiltered_compare_uses_section_intersection():
    # Without --sections only sections present in both files are compared,
    # so a baseline-establishing section needs the explicit filter to be
    # noticed at all.
    regressions, compared, notes, errors = _compare(
        {"a": {"x_us": 10.0}},
        {"a": {"x_us": 10.0}, "b": {"y_us": 1.0}},
    )
    assert compared == 1
    assert regressions == [] and notes == [] and errors == []


def main():
    tests = sorted(
        (name, fn) for name, fn in globals().items()
        if name.startswith("test_") and callable(fn)
    )
    for name, fn in tests:
        try:
            fn()
        except AssertionError:
            print(f"check_bench_test: FAIL {name}", file=sys.stderr)
            raise
        print(f"check_bench_test: ok {name}")
    print(f"check_bench_test: {len(tests)} tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
