#!/usr/bin/env python3
"""Docs consistency checks, run by CI.

1. Markdown link validity: every relative link target in the top-level
   *.md files must exist in the repository.
2. srmsim flag table: every flag printed by `srmsim --help` must appear in
   README.md's "## srmsim flags" table, and vice versa — the two are
   mirrors (the authoritative table is kUsage in examples/srmsim.cpp).
3. ARCHITECTURE.md section references: every "ARCHITECTURE.md §N" citation
   in the markdown files and in src/ and examples/ sources must name a
   section header that actually exists ("## N. ...").

Usage: scripts/check_docs.py [--srmsim PATH_TO_SRMSIM_BINARY]
Exits non-zero with a report on any failure.
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

MD_FILES = sorted(REPO.glob("*.md"))

# [text](target) — excluding images and in-page anchors.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def check_links():
    errors = []
    for md in MD_FILES:
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            if target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (md.parent / rel).exists():
                errors.append(f"{md.name}: broken relative link -> {target}")
    return errors


def flags_in(text):
    return set(FLAG_RE.findall(text))


def check_srmsim_flags(srmsim):
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    m = re.search(r"^## srmsim flags\n(.*?)(?=^## )", readme,
                  re.MULTILINE | re.DOTALL)
    if not m:
        return ['README.md: missing "## srmsim flags" section']
    readme_flags = flags_in(m.group(1))

    try:
        help_text = subprocess.run(
            [srmsim, "--help"], capture_output=True, text=True, timeout=60,
            check=True).stdout
    except (OSError, subprocess.SubprocessError) as exc:
        return [f"could not run {srmsim} --help: {exc}"]
    help_flags = flags_in(help_text)

    errors = []
    for flag in sorted(help_flags - readme_flags):
        errors.append(f"README.md srmsim table is missing {flag} "
                      "(printed by srmsim --help)")
    for flag in sorted(readme_flags - help_flags):
        errors.append(f"README.md srmsim table lists {flag}, "
                      "which srmsim --help does not print")
    return errors


SECTION_REF_RE = re.compile(r"ARCHITECTURE\.md\s+§(\d+)")
SECTION_HEADER_RE = re.compile(r"^## (\d+)\.", re.MULTILINE)


def check_section_refs():
    arch = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
    sections = set(SECTION_HEADER_RE.findall(arch))
    sources = list(MD_FILES)
    for root in ("src", "examples", "bench", "tests"):
        sources += sorted((REPO / root).rglob("*.h"))
        sources += sorted((REPO / root).rglob("*.cpp"))
    errors = []
    for path in sources:
        text = path.read_text(encoding="utf-8")
        for num in SECTION_REF_RE.findall(text):
            if num not in sections:
                rel = path.relative_to(REPO)
                errors.append(f"{rel}: cites ARCHITECTURE.md §{num}, "
                              f"which has no matching '## {num}.' header")
    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--srmsim", default=None,
                        help="path to the built srmsim binary; skips the "
                             "flag-table check if omitted")
    args = parser.parse_args()

    errors = check_links()
    errors += check_section_refs()
    if args.srmsim:
        errors += check_srmsim_flags(args.srmsim)

    if errors:
        print("docs check FAILED:")
        for e in errors:
            print(f"  {e}")
        return 1
    checked = ", ".join(md.name for md in MD_FILES)
    print(f"docs check OK ({checked}"
          f"{'; srmsim flag table' if args.srmsim else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
