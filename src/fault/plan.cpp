#include "fault/plan.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace srm::fault {

namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

[[noreturn]] void bad_line(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: line " +
                              std::to_string(line_no) + ": " + why);
}

}  // namespace

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown:
      return "link_down";
    case FaultEvent::Kind::kLinkUp:
      return "link_up";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kJoin:
      return "join";
    case FaultEvent::Kind::kLeave:
      return "leave";
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRejoin:
      return "rejoin";
    case FaultEvent::Kind::kBurstOn:
      return "burst_on";
    case FaultEvent::Kind::kBurstOff:
      return "burst_off";
  }
  return "?";
}

FaultPlan& FaultPlan::push(FaultEvent event) {
  if (event.at < 0.0) {
    throw std::invalid_argument("FaultPlan: negative event time");
  }
  if (event.kind == FaultEvent::Kind::kPartition) {
    if (event.island.empty()) {
      throw std::invalid_argument("FaultPlan: empty partition island");
    }
    // A partition carries its own ordinal (plan order), so heal events keep
    // referring to the right cut even after sorting by time.
    event.partition_ordinal = partitions_;
    ++partitions_;
  }
  if (event.kind == FaultEvent::Kind::kHeal &&
      event.partition_ordinal >= partitions_) {
    throw std::invalid_argument(
        "FaultPlan: heal refers to a partition not yet in the plan");
  }
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::link_down(double at, net::LinkId link) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkDown;
  e.at = at;
  e.link = link;
  return push(std::move(e));
}

FaultPlan& FaultPlan::link_up(double at, net::LinkId link) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkUp;
  e.at = at;
  e.link = link;
  return push(std::move(e));
}

FaultPlan& FaultPlan::partition(double at, std::vector<net::NodeId> island) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.at = at;
  e.island = std::move(island);
  return push(std::move(e));
}

FaultPlan& FaultPlan::heal(double at, std::size_t partition_ordinal) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kHeal;
  e.at = at;
  e.partition_ordinal = partition_ordinal;
  return push(std::move(e));
}

FaultPlan& FaultPlan::join(double at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kJoin;
  e.at = at;
  e.node = node;
  return push(std::move(e));
}

FaultPlan& FaultPlan::leave(double at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLeave;
  e.at = at;
  e.node = node;
  return push(std::move(e));
}

FaultPlan& FaultPlan::crash(double at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrash;
  e.at = at;
  e.node = node;
  return push(std::move(e));
}

FaultPlan& FaultPlan::rejoin(double at, net::NodeId node) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kRejoin;
  e.at = at;
  e.node = node;
  return push(std::move(e));
}

FaultPlan& FaultPlan::burst_on(double at,
                               net::GilbertElliottDrop::Params params) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBurstOn;
  e.at = at;
  e.burst = params;
  return push(std::move(e));
}

FaultPlan& FaultPlan::burst_off(double at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBurstOff;
  e.at = at;
  return push(std::move(e));
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  const std::size_t offset = partitions_;
  const std::vector<FaultEvent> src = other.events_;  // self-merge safe
  for (FaultEvent e : src) {
    if (e.kind == FaultEvent::Kind::kPartition) {
      e.partition_ordinal = partitions_++;
    } else if (e.kind == FaultEvent::Kind::kHeal) {
      e.partition_ordinal += offset;
    }
    events_.push_back(std::move(e));
  }
  return *this;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank or comment-only line

    double at = 0.0;
    if (!(fields >> at)) bad_line(line_no, "missing event time");
    if (at < 0.0) bad_line(line_no, "negative event time");

    const auto read_u64 = [&](const char* what) {
      std::uint64_t v = 0;
      if (!(fields >> v)) bad_line(line_no, std::string("missing ") + what);
      return v;
    };
    const auto expect_end = [&] {
      std::string extra;
      if (fields >> extra) bad_line(line_no, "trailing input '" + extra + "'");
    };

    if (keyword == "link_down" || keyword == "link_up") {
      const auto link = static_cast<net::LinkId>(read_u64("link id"));
      expect_end();
      if (keyword == "link_down") {
        plan.link_down(at, link);
      } else {
        plan.link_up(at, link);
      }
    } else if (keyword == "partition") {
      std::vector<net::NodeId> island;
      std::uint64_t node = 0;
      while (fields >> node) island.push_back(static_cast<net::NodeId>(node));
      if (island.empty()) bad_line(line_no, "partition needs >= 1 node");
      plan.partition(at, std::move(island));
    } else if (keyword == "heal") {
      const std::size_t ordinal = read_u64("partition ordinal");
      expect_end();
      if (ordinal >= plan.partition_count()) {
        bad_line(line_no, "heal refers to a partition not yet in the plan");
      }
      plan.heal(at, ordinal);
    } else if (keyword == "join" || keyword == "leave" ||
               keyword == "crash" || keyword == "rejoin") {
      const auto node = static_cast<net::NodeId>(read_u64("node id"));
      expect_end();
      if (keyword == "join") {
        plan.join(at, node);
      } else if (keyword == "leave") {
        plan.leave(at, node);
      } else if (keyword == "crash") {
        plan.crash(at, node);
      } else {
        plan.rejoin(at, node);
      }
    } else if (keyword == "burst_on") {
      net::GilbertElliottDrop::Params p;
      if (!(fields >> p.p_good_bad >> p.p_bad_good >> p.loss_bad)) {
        bad_line(line_no, "burst_on needs p_gb p_bg loss_bad [loss_good]");
      }
      if (!(fields >> p.loss_good)) p.loss_good = 0.0;
      expect_end();
      const auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
      if (!in_unit(p.p_good_bad) || !in_unit(p.p_bad_good) ||
          !in_unit(p.loss_bad) || !in_unit(p.loss_good)) {
        bad_line(line_no, "burst_on probability outside [0,1]");
      }
      plan.burst_on(at, p);
    } else if (keyword == "burst_off") {
      expect_end();
      plan.burst_off(at);
    } else {
      bad_line(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::string FaultPlan::to_text() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += kind_name(e.kind);
    out += ' ';
    append_double(out, e.at);
    switch (e.kind) {
      case FaultEvent::Kind::kLinkDown:
      case FaultEvent::Kind::kLinkUp:
        out += ' ';
        out += std::to_string(e.link);
        break;
      case FaultEvent::Kind::kPartition:
        for (net::NodeId n : e.island) {
          out += ' ';
          out += std::to_string(n);
        }
        break;
      case FaultEvent::Kind::kHeal:
        out += ' ';
        out += std::to_string(e.partition_ordinal);
        break;
      case FaultEvent::Kind::kJoin:
      case FaultEvent::Kind::kLeave:
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kRejoin:
        out += ' ';
        out += std::to_string(e.node);
        break;
      case FaultEvent::Kind::kBurstOn:
        for (double v : {e.burst.p_good_bad, e.burst.p_bad_good,
                         e.burst.loss_bad, e.burst.loss_good}) {
          out += ' ';
          append_double(out, v);
        }
        break;
      case FaultEvent::Kind::kBurstOff:
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace srm::fault
