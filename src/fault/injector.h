// FaultInjector: executes a FaultPlan against a live simulated world.
//
// The injector schedules every plan event on the simulation event queue and,
// when each fires, mutates the world in a fixed order that keeps the
// simulation consistent:
//
//   link down:  invalidate in-flight deliveries crossing the link (they were
//               routed over the pre-failure trees), then take the link down;
//               routing repairs its cached trees from the topology's edit
//               journal (or recomputes) lazily, and the pruned delivery
//               trees and oracle distances revalidate via
//               Topology::version().
//   link up:    bring the link back; caches revalidate the same way.
//   partition:  take down every up link with exactly one endpoint in the
//               island, remembering the cut so heal() can restore exactly
//               those links (links already down are not part of the cut).
//
// Plan events that fire at the same instant are applied as one group, and
// within a group every contiguous run of link-cutting events (link downs
// and partitions) is applied in two phases: first the in-flight deliveries
// of *every* cut link are invalidated against the pre-failure trees, then
// the links are taken down back to back.  That keeps the whole run one
// topology edit group — a partition cutting dozens of links costs the
// routing layer a single repair pass on the next query instead of one
// rebuild per link, and in-flight invalidation consults the trees the
// packets were actually routed over rather than trees partially rebuilt
// mid-cut.
//   heal:       bring the remembered cut back up.
//   join/leave/crash/rejoin:  delegated to MembershipHooks — the injector
//               deliberately knows nothing about agents; the harness wires
//               hooks that construct/stop SrmAgents (leave is graceful,
//               crash is silent, join and rejoin are identical at this
//               layer).
//   burst_on:   install a keyed GilbertElliottDrop in the network's fault
//               drop-policy slot (separate from the experiment's scripted
//               policy slot), seeded by (base seed, epoch ordinal);
//               burst_off clears it.
//
// Every applied event emits a fault-category trace event, which is how the
// RecoveryInvariantChecker (fault/checker.h) learns where the disruption
// windows lie.  Determinism: the plan is sorted by (time, plan order), burst
// policies are seeded by (base seed, epoch ordinal) rather than a consumed
// stream, and cut links are computed in link-id order.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "fault/plan.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/event_queue.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace srm::fault {

// Callbacks into whatever owns the session members (the harness).  The
// injector calls join for kJoin/kRejoin and leave for kLeave (graceful=true)
// and kCrash (graceful=false).  Unset hooks make membership events no-ops.
struct MembershipHooks {
  std::function<void(net::NodeId)> join;
  std::function<void(net::NodeId, bool graceful)> leave;
};

class FaultInjector {
 public:
  struct Stats {
    std::uint64_t links_taken_down = 0;   // incl. partition cuts
    std::uint64_t links_brought_up = 0;   // incl. heals
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t joins = 0;              // incl. rejoins
    std::uint64_t leaves = 0;
    std::uint64_t crashes = 0;
    std::uint64_t burst_epochs = 0;
  };

  // One connectivity-disruption interval: from the first fault opening a
  // disruption (link down / partition / burst on) until the last one closes
  // (end stays +infinity for disruptions never repaired).
  struct Window {
    double start = 0.0;
    double end = std::numeric_limits<double>::infinity();
  };

  // `topology` must be the same object `network` forwards over.  The rng is
  // collapsed to a single base seed at construction; each burst epoch's
  // GilbertElliottDrop is seeded by keyed_u64(base, epoch ordinal), so fault
  // plans replay bit-identically regardless of how epochs interleave with
  // other events (no shared stream to consume in order).  Everything else in
  // the injector is deterministic replay of the plan.
  FaultInjector(sim::EventQueue& queue, net::Topology& topology,
                net::MulticastNetwork& network, FaultPlan plan,
                util::Rng rng);

  void set_membership_hooks(MembershipHooks hooks) {
    hooks_ = std::move(hooks);
  }
  // Observes Gilbert-Elliott burst epochs as they are applied (burst_on ->
  // active=true with the epoch's parameters, burst_off -> active=false).
  // The FEC layer uses this to floor its parity budget during bursts
  // (ARCHITECTURE.md §11); deterministic because plan application runs on
  // the serialized event queue in plan order.
  using EpochObserver =
      std::function<void(bool active, const net::GilbertElliottDrop::Params&)>;
  void set_epoch_observer(EpochObserver observer) {
    epoch_observer_ = std::move(observer);
  }
  // Never pass nullptr; &trace::Tracer::null() detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Schedules every plan event on the queue.  Call once, before running the
  // simulation (all event times must be >= queue.now()).
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const Stats& stats() const { return stats_; }
  // Closed and still-open disruption windows, in start order.  Stable once
  // the simulation has run past the last plan event.
  const std::vector<Window>& disruption_windows() const { return windows_; }

 private:
  void apply_group(const std::vector<FaultEvent>& events);
  void apply(const FaultEvent& event);
  // Two-phase application of events[begin, end): all link-cutting events,
  // invalidated together against the pre-failure trees before any link goes
  // down (one topology edit group per run).
  void apply_cut_run(const std::vector<FaultEvent>& events, std::size_t begin,
                     std::size_t end);
  // Takes one link down (stats + disruption window); callers are
  // responsible for having invalidated in-flight deliveries first.
  void down_link(net::LinkId link);
  void bring_link_up(net::LinkId link);
  void open_disruption();
  void close_disruption();
  void emit(trace::EventType type, std::uint64_t actor, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0, double x = 0.0,
            double y = 0.0);

  sim::EventQueue* queue_;
  net::Topology* topo_;
  net::MulticastNetwork* network_;
  FaultPlan plan_;
  std::uint64_t burst_seed_;     // base seed for per-epoch keyed GE seeds
  std::uint64_t burst_ordinal_ = 0;  // burst_on events applied so far
  MembershipHooks hooks_;
  EpochObserver epoch_observer_;
  trace::Tracer* tracer_ = &trace::Tracer::null();
  Stats stats_;

  bool armed_ = false;
  std::vector<std::vector<net::LinkId>> cuts_;  // per partition ordinal
  bool burst_active_ = false;
  // Disruption-window bookkeeping: a window is open while any disruption
  // (down link, unhealed partition, burst epoch) is active.
  int active_disruptions_ = 0;
  std::vector<Window> windows_;
};

}  // namespace srm::fault
