// RecoveryInvariantChecker: asserts SRM's recovery guarantees over a trace.
//
// The paper's core robustness claim is that loss recovery keeps working
// through network dynamics: "as long as one member has a copy of the data,
// it is available to the group" and the protocol adapts rather than
// collapsing under churn (Sec. III, VII-A).  This checker folds a structured
// trace (trace/trace.h) — srm-category recovery events plus fault-category
// disruption events — into a pass/fail report over three invariants:
//
//   1. Eventual repair: every loss detected at a member that survives to the
//      end of the trace is recovered within `deadline` seconds — where the
//      clock pauses across disruption windows (an open partition cannot be
//      recovered across; the deadline restarts when the last overlapping
//      window closes).  Losses at members that crash or leave before their
//      deadline are exempt, as are losses whose (extended) deadline falls
//      beyond the end of the trace (run longer to judge them).
//   2. No repair storms: the total rate of request + repair transmissions
//      never exceeds `storm_budget` packets in any `storm_window`-second
//      sliding window.
//   3. Continued adaptation (optional): after each disruption window with
//      subsequent losses, the adaptive timer machinery keeps producing
//      parameter updates (at least one adapt_req/adapt_rep event).
//
// The checker is pure analysis: feed it the events captured by any sink
// (VectorSink live, or read_jsonl/read_binary from a file) plus the
// injector's disruption windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "trace/trace.h"

namespace srm::fault {

struct CheckerOptions {
  // Seconds allowed between loss detection and recovery, measured outside
  // disruption windows as described above.
  double deadline = 100.0;
  // Sliding-window budget for invariant 2.
  double storm_window = 1.0;
  std::size_t storm_budget = 200;
  // Invariant 3 (off by default: scenarios with adaptation disabled or no
  // post-fault losses would fail vacuously).
  bool require_adaptation = false;
};

// One invariant-1 violation.
struct UnrecoveredLoss {
  std::uint64_t member = 0;  // SourceId of the detecting member
  std::uint64_t source = 0;  // ADU name (src, page creator/number, seq)
  std::uint64_t page_creator = 0;
  std::uint64_t page_number = 0;
  std::uint64_t seq = 0;
  double detected_at = 0.0;
  double deadline_at = 0.0;  // effective (window-extended) deadline
  bool abandoned = false;    // the agent gave up (vs. silently pending)
};

struct CheckerReport {
  bool passed = false;

  // Invariant 1 accounting.
  std::size_t losses = 0;                 // detections considered
  std::size_t recovered = 0;
  std::size_t exempt_departed = 0;        // member crashed/left first
  std::size_t exempt_unhealed = 0;        // disruption never closed
  std::size_t pending_past_trace = 0;     // deadline beyond end of trace
  std::vector<UnrecoveredLoss> unrecovered;

  // Invariant 2 accounting.
  std::size_t storm_violations = 0;       // windows over budget
  std::size_t worst_window_count = 0;     // max sends in any window
  double worst_window_start = 0.0;

  // Invariant 3 accounting.
  std::size_t adaptation_failures = 0;    // epochs with losses but no update

  // Per-recovery latencies (detection -> recovered, seconds), in trace
  // order.  Bench harnesses take percentiles of this.
  std::vector<double> recovery_latencies;

  // Multi-line human-readable summary.
  std::string summary() const;
};

class RecoveryInvariantChecker {
 public:
  explicit RecoveryInvariantChecker(CheckerOptions options = {})
      : options_(options) {}

  // Analyzes a complete trace.  `windows` are the injector's disruption
  // windows (pass {} when no faults were injected); `end_of_trace` is the
  // virtual time the simulation ran to (used to classify losses whose
  // deadline lies beyond the observed trace).
  CheckerReport check(const std::vector<trace::Event>& events,
                      const std::vector<FaultInjector::Window>& windows,
                      double end_of_trace) const;

  const CheckerOptions& options() const { return options_; }

 private:
  CheckerOptions options_;
};

}  // namespace srm::fault
