#include "fault/injector.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace srm::fault {

FaultInjector::FaultInjector(sim::EventQueue& queue, net::Topology& topology,
                             net::MulticastNetwork& network, FaultPlan plan,
                             util::Rng rng)
    : queue_(&queue),
      topo_(&topology),
      network_(&network),
      plan_(std::move(plan)),
      burst_seed_(rng.next_u64()),
      cuts_(plan_.partition_count()) {
  if (&network.topology() != &topology) {
    throw std::invalid_argument(
        "FaultInjector: network is not built on this topology");
  }
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
  armed_ = true;
  const double now = queue_->now();
  // Events that fire at the same instant are scheduled as one group, so a
  // partition plus same-time link churn becomes one topology edit group
  // (see apply_cut_run).  The plan was scheduled in sorted order before
  // this change, so grouping preserves the relative order of fault events
  // against every other same-time simulation event.
  const std::vector<FaultEvent> sorted = plan_.sorted();
  for (std::size_t i = 0; i < sorted.size();) {
    const double at = std::max(sorted[i].at, now);
    std::vector<FaultEvent> group;
    for (; i < sorted.size() && std::max(sorted[i].at, now) == at; ++i) {
      group.push_back(sorted[i]);
    }
    queue_->schedule_at(
        at, [this, group = std::move(group)] { apply_group(group); });
  }
}

void FaultInjector::apply_group(const std::vector<FaultEvent>& events) {
  const auto cuts_links = [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kLinkDown ||
           e.kind == FaultEvent::Kind::kPartition;
  };
  for (std::size_t i = 0; i < events.size();) {
    if (!cuts_links(events[i])) {
      apply(events[i]);
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < events.size() && cuts_links(events[j])) ++j;
    apply_cut_run(events, i, j);
    i = j;
  }
}

void FaultInjector::emit(trace::EventType type, std::uint64_t actor,
                         std::uint64_t a, std::uint64_t b, std::uint64_t c,
                         double x, double y) {
  if (!tracer_->wants(trace::Category::kFault)) return;
  trace::Event ev;
  ev.type = type;
  ev.t = queue_->now();
  ev.actor = actor;
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.x = x;
  ev.y = y;
  tracer_->emit(ev);
}

void FaultInjector::open_disruption() {
  if (active_disruptions_++ == 0) {
    Window w;
    w.start = queue_->now();
    windows_.push_back(w);
  }
}

void FaultInjector::close_disruption() {
  if (--active_disruptions_ == 0) windows_.back().end = queue_->now();
}

void FaultInjector::down_link(net::LinkId link) {
  topo_->set_link_up(link, false);
  ++stats_.links_taken_down;
  open_disruption();
}

void FaultInjector::apply_cut_run(const std::vector<FaultEvent>& events,
                                  std::size_t begin, std::size_t end) {
  // Phase 1: resolve each event's link list against the pre-run topology
  // (treating links earlier events in the run will cut as already down) and
  // invalidate every affected in-flight delivery while the cached trees
  // still describe the pre-failure routes.
  std::vector<std::vector<net::LinkId>> downs(end - begin);
  std::vector<char> pending(topo_->link_count(), 0);
  for (std::size_t k = begin; k < end; ++k) {
    const FaultEvent& event = events[k];
    std::vector<net::LinkId>& list = downs[k - begin];
    if (event.kind == FaultEvent::Kind::kLinkDown) {
      if (topo_->link_up(event.link) && !pending[event.link]) {
        list.push_back(event.link);
      }
    } else {  // kPartition
      // The cut: every up link with exactly one endpoint in the island,
      // collected in link-id order (determinism).
      std::vector<bool> in_island(topo_->node_count(), false);
      for (net::NodeId n : event.island) in_island.at(n) = true;
      const auto& links = topo_->links();
      for (net::LinkId id = 0; id < links.size(); ++id) {
        if (!links[id].up || pending[id]) continue;
        if (in_island[links[id].a] != in_island[links[id].b]) {
          list.push_back(id);
        }
      }
      cuts_.at(event.partition_ordinal) = list;
    }
    for (net::LinkId id : list) {
      network_->invalidate_in_flight(id);
      pending[id] = 1;
    }
  }

  // Phase 2: mutate and narrate in event order.  All set_link_up calls land
  // back to back, so the routing layer sees one journal delta batch.
  for (std::size_t k = begin; k < end; ++k) {
    const FaultEvent& event = events[k];
    for (net::LinkId id : downs[k - begin]) down_link(id);
    if (event.kind == FaultEvent::Kind::kLinkDown) {
      const net::Link& l = topo_->link(event.link);
      emit(trace::EventType::kFaultLinkDown, 0, event.link, l.a, l.b);
    } else {
      ++stats_.partitions;
      emit(trace::EventType::kFaultPartition, 0, event.partition_ordinal,
           downs[k - begin].size());
    }
  }
}

void FaultInjector::bring_link_up(net::LinkId link) {
  if (topo_->link_up(link)) return;  // already up
  topo_->set_link_up(link, true);
  ++stats_.links_brought_up;
  close_disruption();
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEvent::Kind::kLinkDown:
    case FaultEvent::Kind::kPartition:
      // Link-cutting events always route through apply_cut_run so their
      // in-flight invalidation stays ahead of every topology mutation.
      apply_cut_run(std::vector<FaultEvent>{event}, 0, 1);
      break;
    case FaultEvent::Kind::kLinkUp: {
      const net::Link& l = topo_->link(event.link);
      bring_link_up(event.link);
      emit(trace::EventType::kFaultLinkUp, 0, event.link, l.a, l.b);
      break;
    }
    case FaultEvent::Kind::kHeal: {
      const std::vector<net::LinkId>& cut = cuts_.at(event.partition_ordinal);
      for (net::LinkId id : cut) bring_link_up(id);
      ++stats_.heals;
      emit(trace::EventType::kFaultHeal, 0, event.partition_ordinal,
           cut.size());
      break;
    }
    case FaultEvent::Kind::kJoin:
    case FaultEvent::Kind::kRejoin: {
      if (hooks_.join) hooks_.join(event.node);
      ++stats_.joins;
      emit(event.kind == FaultEvent::Kind::kJoin
               ? trace::EventType::kFaultJoin
               : trace::EventType::kFaultRejoin,
           event.node);
      break;
    }
    case FaultEvent::Kind::kLeave: {
      if (hooks_.leave) hooks_.leave(event.node, /*graceful=*/true);
      ++stats_.leaves;
      emit(trace::EventType::kFaultLeave, event.node);
      break;
    }
    case FaultEvent::Kind::kCrash: {
      if (hooks_.leave) hooks_.leave(event.node, /*graceful=*/false);
      ++stats_.crashes;
      emit(trace::EventType::kFaultCrash, event.node);
      break;
    }
    case FaultEvent::Kind::kBurstOn: {
      // Epoch seeds are keyed by the burst ordinal (deterministic: plan
      // application is serialized on the event queue in plan order), not
      // forked off a shared stream — an epoch's loss pattern is a pure
      // function of (base seed, ordinal) no matter what else ran before it.
      network_->set_fault_drop_policy(
          std::make_shared<net::GilbertElliottDrop>(
              event.burst,
              util::keyed_u64(burst_seed_, burst_ordinal_++, 0, 0)));
      if (!burst_active_) {
        burst_active_ = true;
        open_disruption();
      }
      ++stats_.burst_epochs;
      if (epoch_observer_) epoch_observer_(true, event.burst);
      emit(trace::EventType::kFaultBurstOn, 0,
           static_cast<std::uint64_t>(event.burst.loss_good * 1e6),
           static_cast<std::uint64_t>(event.burst.loss_bad * 1e6), 0,
           event.burst.p_good_bad, event.burst.p_bad_good);
      break;
    }
    case FaultEvent::Kind::kBurstOff: {
      if (burst_active_) {
        network_->set_fault_drop_policy(nullptr);
        burst_active_ = false;
        close_disruption();
        if (epoch_observer_) epoch_observer_(false, {});
      }
      emit(trace::EventType::kFaultBurstOff, 0);
      break;
    }
  }
}

}  // namespace srm::fault
