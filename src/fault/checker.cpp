#include "fault/checker.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

namespace srm::fault {

namespace {

// (member, ADU name) — the unit invariant 1 is judged on.
using LossKey = std::array<std::uint64_t, 5>;

struct LossRecord {
  double detected_at = 0.0;
  bool recovered = false;
  double recovered_at = 0.0;
  bool abandoned = false;
};

std::string format_seconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

CheckerReport RecoveryInvariantChecker::check(
    const std::vector<trace::Event>& events,
    const std::vector<FaultInjector::Window>& windows,
    double end_of_trace) const {
  CheckerReport report;

  // ---- fold the trace ------------------------------------------------------
  // std::map keys losses in (member, ADU) order so the report's violation
  // list is deterministic regardless of hash seeding.
  std::map<LossKey, LossRecord> losses;
  std::unordered_map<std::uint64_t, std::vector<double>> departures;
  std::vector<double> send_times;   // request + repair transmissions
  std::vector<double> adapt_times;  // adaptive-parameter updates

  for (const trace::Event& ev : events) {
    switch (ev.type) {
      case trace::EventType::kSrmLoss: {
        LossRecord& rec = losses[{ev.actor, ev.a, ev.b, ev.c, ev.d}];
        rec.detected_at = ev.t;  // re-detection restarts the clock
        rec.recovered = false;
        rec.abandoned = false;
        break;
      }
      case trace::EventType::kSrmRecovered: {
        LossRecord& rec = losses[{ev.actor, ev.a, ev.b, ev.c, ev.d}];
        rec.recovered = true;
        rec.recovered_at = ev.t;
        rec.abandoned = false;
        break;
      }
      case trace::EventType::kSrmAbandoned:
        losses[{ev.actor, ev.a, ev.b, ev.c, ev.d}].abandoned = true;
        break;
      case trace::EventType::kSrmReqSend:
      case trace::EventType::kSrmRepSend:
        send_times.push_back(ev.t);
        break;
      case trace::EventType::kSrmAdaptReq:
      case trace::EventType::kSrmAdaptRep:
        adapt_times.push_back(ev.t);
        break;
      case trace::EventType::kFaultCrash:
      case trace::EventType::kFaultLeave:
        departures[ev.actor].push_back(ev.t);
        break;
      default:
        break;
    }
  }

  // ---- invariant 1: eventual repair ---------------------------------------
  std::vector<FaultInjector::Window> sorted_windows = windows;
  std::sort(sorted_windows.begin(), sorted_windows.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });

  // Effective deadline for a loss detected at t: the base deadline, pushed
  // past every overlapping disruption window (one forward pass suffices —
  // extending the deadline only pulls in windows with later starts).
  const auto effective_deadline = [&](double detected_at,
                                      bool* unhealed) -> double {
    double eff = detected_at + options_.deadline;
    *unhealed = false;
    for (const FaultInjector::Window& w : sorted_windows) {
      if (w.start >= eff) break;
      if (w.end <= detected_at) continue;  // closed before the loss
      if (std::isinf(w.end)) {
        *unhealed = true;
        return eff;
      }
      eff = std::max(eff, w.end + options_.deadline);
    }
    return eff;
  };

  const auto departed_after = [&](std::uint64_t member, double t) {
    const auto it = departures.find(member);
    if (it == departures.end()) return false;
    for (double d : it->second) {
      if (d >= t) return true;
    }
    return false;
  };

  for (const auto& [key, rec] : losses) {
    ++report.losses;
    if (rec.recovered) {
      ++report.recovered;
      report.recovery_latencies.push_back(rec.recovered_at - rec.detected_at);
    }
    bool unhealed = false;
    const double eff = effective_deadline(rec.detected_at, &unhealed);
    if (rec.recovered && rec.recovered_at <= eff) continue;  // in time
    if (!rec.recovered && departed_after(key[0], rec.detected_at)) {
      ++report.exempt_departed;
      continue;
    }
    if (unhealed) {
      ++report.exempt_unhealed;
      continue;
    }
    if (eff > end_of_trace) {
      ++report.pending_past_trace;
      continue;
    }
    UnrecoveredLoss v;
    v.member = key[0];
    v.source = key[1];
    v.page_creator = key[2];
    v.page_number = key[3];
    v.seq = key[4];
    v.detected_at = rec.detected_at;
    v.deadline_at = eff;
    v.abandoned = rec.abandoned;
    report.unrecovered.push_back(v);
  }

  // ---- invariant 2: no repair storms --------------------------------------
  std::sort(send_times.begin(), send_times.end());
  std::size_t j = 0;
  for (std::size_t i = 0; i < send_times.size(); ++i) {
    if (j < i) j = i;
    while (j < send_times.size() &&
           send_times[j] < send_times[i] + options_.storm_window) {
      ++j;
    }
    const std::size_t count = j - i;
    if (count > report.worst_window_count) {
      report.worst_window_count = count;
      report.worst_window_start = send_times[i];
    }
    if (count > options_.storm_budget) ++report.storm_violations;
  }

  // ---- invariant 3: continued adaptation ----------------------------------
  if (options_.require_adaptation) {
    std::sort(adapt_times.begin(), adapt_times.end());
    for (const FaultInjector::Window& w : sorted_windows) {
      bool losses_after = false;
      for (const auto& [key, rec] : losses) {
        if (rec.detected_at > w.start) {
          losses_after = true;
          break;
        }
      }
      if (!losses_after) continue;
      const bool adapted =
          std::upper_bound(adapt_times.begin(), adapt_times.end(), w.start) !=
          adapt_times.end();
      if (!adapted) ++report.adaptation_failures;
    }
  }

  report.passed = report.unrecovered.empty() &&
                  report.storm_violations == 0 &&
                  report.adaptation_failures == 0;
  return report;
}

std::string CheckerReport::summary() const {
  std::string out;
  out += passed ? "recovery invariants: PASS\n" : "recovery invariants: FAIL\n";
  out += "  losses detected:      " + std::to_string(losses) + "\n";
  out += "  recovered:            " + std::to_string(recovered) + "\n";
  out += "  exempt (departed):    " + std::to_string(exempt_departed) + "\n";
  out += "  exempt (unhealed):    " + std::to_string(exempt_unhealed) + "\n";
  out += "  pending past trace:   " + std::to_string(pending_past_trace) +
         "\n";
  out += "  unrecovered:          " + std::to_string(unrecovered.size()) +
         "\n";
  for (const UnrecoveredLoss& v : unrecovered) {
    out += "    member " + std::to_string(v.member) + " adu(" +
           std::to_string(v.source) + "," + std::to_string(v.page_creator) +
           "," + std::to_string(v.page_number) + "," + std::to_string(v.seq) +
           ") detected " + format_seconds(v.detected_at) + "s deadline " +
           format_seconds(v.deadline_at) + "s" +
           (v.abandoned ? " [abandoned]" : "") + "\n";
  }
  out += "  storm violations:     " + std::to_string(storm_violations) +
         " (worst window " + std::to_string(worst_window_count) +
         " sends at " + format_seconds(worst_window_start) + "s)\n";
  out += "  adaptation failures:  " + std::to_string(adaptation_failures) +
         "\n";
  return out;
}

}  // namespace srm::fault
