// FaultPlan: a deterministic, seedable schedule of network-dynamics events.
//
// The paper's robustness claims — SRM "does not depend on any particular
// member being up" and recovers from "partitioned networks, where members
// on each side of the partition continue" (Sec. III-D) — are exactly the
// scenarios a FaultPlan scripts: link failures and repairs, scripted
// partitions and heals, member join/leave/crash/rejoin churn, and bursty
// (Gilbert-Elliott) loss epochs.  A plan is pure data; the FaultInjector
// (fault/injector.h) schedules it on the simulation event queue.
//
// Plans round-trip through a line-oriented text format (one event per line,
// '#' comments), so scenarios can live in files next to experiments and be
// passed to `srmsim --faults <file>`:
//
//   # seconds  arguments
//   link_down  10.0  3            # take link 3 down
//   link_up    20.0  3            # bring it back
//   partition  30.0  5 6 7        # cut nodes {5,6,7} off from the rest
//   heal       45.0  0            # undo partition #0 (0-based, in plan order)
//   leave      12.0  4            # member at node 4 departs gracefully
//   crash      13.0  9            # member at node 9 dies silently
//   join       25.0  11           # a (new or returning) member at node 11
//   rejoin     40.0  9            # the crashed member comes back
//   burst_on   50.0  0.05 0.25 1.0 0.0   # GE: p_gb p_bg loss_bad [loss_good]
//   burst_off  80.0
//
// Events may appear in any order in the file; the injector sorts by time
// (ties broken by file order) before scheduling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/drop_policy.h"
#include "net/topology.h"

namespace srm::fault {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kPartition,
    kHeal,
    kJoin,
    kLeave,
    kCrash,
    kRejoin,
    kBurstOn,
    kBurstOff,
  };

  Kind kind = Kind::kLinkDown;
  double at = 0.0;  // virtual time (seconds)

  net::LinkId link = 0;                // kLinkDown / kLinkUp
  std::vector<net::NodeId> island;     // kPartition: nodes cut off
  std::size_t partition_ordinal = 0;   // kHeal: which partition (plan order)
  net::NodeId node = 0;                // membership events
  net::GilbertElliottDrop::Params burst;  // kBurstOn

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Human-readable keyword for a kind ("link_down", "partition", ...).
const char* kind_name(FaultEvent::Kind kind);

class FaultPlan {
 public:
  // Fluent builders, all times in seconds of virtual time.
  FaultPlan& link_down(double at, net::LinkId link);
  FaultPlan& link_up(double at, net::LinkId link);
  // Cuts every up link with exactly one endpoint in `island` at time `at`.
  // Returns this plan; the partition's ordinal (for heal()) is the number
  // of partition events added before it.
  FaultPlan& partition(double at, std::vector<net::NodeId> island);
  FaultPlan& heal(double at, std::size_t partition_ordinal);
  FaultPlan& join(double at, net::NodeId node);
  FaultPlan& leave(double at, net::NodeId node);
  FaultPlan& crash(double at, net::NodeId node);
  FaultPlan& rejoin(double at, net::NodeId node);
  FaultPlan& burst_on(double at, net::GilbertElliottDrop::Params params);
  FaultPlan& burst_off(double at);

  // Appends every event of `other`, renumbering its partitions (and the
  // heals that reference them) after this plan's — so independently built
  // plans (e.g. a partition/heal round trip and a churn schedule) compose.
  FaultPlan& merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  // Number of partition events in the plan (valid heal ordinals are
  // [0, partition_count)).
  std::size_t partition_count() const { return partitions_; }

  // Events sorted by (time, insertion order) — the order the injector
  // schedules them in.
  std::vector<FaultEvent> sorted() const;

  // Text round-trip (the format documented at the top of this header).
  // parse throws std::invalid_argument with a line number on bad input.
  static FaultPlan parse(std::istream& in);
  static FaultPlan parse_text(const std::string& text);
  std::string to_text() const;

 private:
  FaultPlan& push(FaultEvent event);

  std::vector<FaultEvent> events_;
  std::size_t partitions_ = 0;
};

}  // namespace srm::fault
