#include "transport/wire.h"

#include <cstring>
#include <optional>
#include <utility>

namespace srm::transport {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(&out) { out_->clear(); }

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void bytes(const std::uint8_t* p, std::size_t n) {
    out_->insert(out_->end(), p, p + n);
  }
  std::size_t size() const { return out_->size(); }

 private:
  // Canonical little-endian: emit bytes low-to-high regardless of host
  // order (loopback peers are same-host today, but the frame is a format).
  template <typename T>
  void fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return fail();
    v = *p_++;
    return true;
  }
  bool u16(std::uint16_t& v) { return fixed(v); }
  bool u32(std::uint32_t& v) { return fixed(v); }
  bool u64(std::uint64_t& v) { return fixed(v); }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
  bool bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) return fail();
    std::memcpy(dst, p_, n);
    p_ += n;
    return true;
  }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool ok() const { return ok_; }
  bool done() const { return ok_ && p_ == end_; }

 private:
  template <typename T>
  bool fixed(T& v) {
    if (remaining() < sizeof(T)) return fail();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    }
    v = static_cast<T>(acc);
    p_ += sizeof(T);
    return true;
  }
  bool fail() {
    ok_ = false;
    return false;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Shared sub-records
// ---------------------------------------------------------------------------

void put_name(Writer& w, const DataName& n) {
  w.u32(n.source);
  w.u32(n.page.creator);
  w.u32(n.page.number);
  w.u64(n.seq);
}

bool get_name(Reader& r, DataName& n) {
  return r.u32(n.source) && r.u32(n.page.creator) && r.u32(n.page.number) &&
         r.u64(n.seq);
}

void put_page(Writer& w, const PageId& p) {
  w.u32(p.creator);
  w.u32(p.number);
}

bool get_page(Reader& r, PageId& p) {
  return r.u32(p.creator) && r.u32(p.number);
}

void put_opt_page(Writer& w, const std::optional<PageId>& p) {
  w.u8(p ? 1 : 0);
  put_page(w, p.value_or(PageId{}));
}

bool get_opt_page(Reader& r, std::optional<PageId>& out) {
  std::uint8_t has = 0;
  PageId page;
  if (!r.u8(has) || !get_page(r, page)) return false;
  if (has > 1) return false;
  out = has != 0 ? std::optional<PageId>(page) : std::nullopt;
  return true;
}

void put_payload(Writer& w, const PayloadPtr& p) {
  const std::size_t n = p ? p->size() : 0;
  w.u32(static_cast<std::uint32_t>(n));
  if (n > 0) w.bytes(p->data(), n);
}

bool get_payload(Reader& r, PayloadPtr& out) {
  std::uint32_t n = 0;
  if (!r.u32(n) || r.remaining() < n) return false;
  auto payload = std::make_shared<Payload>(n);
  if (n > 0 && !r.bytes(payload->data(), n)) return false;
  out = std::move(payload);
  return true;
}

void put_state(Writer& w, const SessionMessage::StateReport& state) {
  w.u32(static_cast<std::uint32_t>(state.size()));
  for (const auto& [stream, seq] : state) {
    w.u32(stream.source);
    put_page(w, stream.page);
    w.u64(seq);
  }
}

bool get_state(Reader& r, SessionMessage::StateReport& out) {
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  // Each entry is 20 bytes; bound before reserving so a hostile count field
  // cannot force a huge allocation.
  if (r.remaining() < static_cast<std::size_t>(n) * 20) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    StreamKey stream;
    SeqNo seq = 0;
    if (!r.u32(stream.source) || !get_page(r, stream.page) || !r.u64(seq)) {
      return false;
    }
    out.insert_or_assign(stream, seq);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// encode_frame
// ---------------------------------------------------------------------------

bool encode_frame(const net::Packet& packet, std::vector<std::uint8_t>& out) {
  const net::Message* msg = packet.payload.get();
  if (msg == nullptr) return false;
  const std::uint32_t kind = msg->trace_kind();
  if (kind < 1 || kind > 6) return false;

  Writer w(out);
  w.u32(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(packet.scope));
  w.u8(0);
  w.u32(packet.source);
  w.u32(packet.group);
  w.u16(static_cast<std::uint16_t>(packet.ttl));
  w.u16(0);

  switch (kind) {
    case 1: {
      const auto& m = static_cast<const DataMessage&>(*msg);
      put_name(w, m.name());
      put_payload(w, m.payload());
      break;
    }
    case 2: {
      const auto& m = static_cast<const RequestMessage&>(*msg);
      put_name(w, m.name());
      w.u32(m.requestor());
      w.f64(m.requestor_dist_to_source());
      w.u32(static_cast<std::uint32_t>(m.initial_ttl()));
      break;
    }
    case 3: {
      const auto& m = static_cast<const RepairMessage&>(*msg);
      put_name(w, m.name());
      w.u32(m.responder());
      w.u32(m.first_requestor());
      w.f64(m.responder_dist_to_requestor());
      w.u32(static_cast<std::uint32_t>(m.initial_ttl()));
      w.u8(m.local_step_one() ? 1 : 0);
      put_payload(w, m.payload());
      break;
    }
    case 4: {
      const auto& m = static_cast<const SessionMessage&>(*msg);
      w.u32(m.sender());
      w.f64(m.sender_timestamp());
      put_state(w, m.state());
      w.u32(static_cast<std::uint32_t>(m.echoes().size()));
      for (const auto& [peer, echo] : m.echoes()) {
        w.u32(peer);
        w.f64(echo.peer_timestamp);
        w.f64(echo.hold_time);
      }
      w.u32(static_cast<std::uint32_t>(m.digests().size()));
      for (const auto& d : m.digests()) {
        w.u32(d.area);
        w.u32(d.live_members);
        w.u64(d.max_seq);
      }
      break;
    }
    case 5: {
      const auto& m = static_cast<const PageRequestMessage&>(*msg);
      w.u32(m.requestor());
      put_opt_page(w, m.page());
      break;
    }
    case 6: {
      const auto& m = static_cast<const PageReplyMessage&>(*msg);
      w.u32(m.responder());
      put_opt_page(w, m.page());
      put_state(w, m.state());
      w.u32(static_cast<std::uint32_t>(m.known_pages().size()));
      for (const auto& p : m.known_pages()) put_page(w, p);
      break;
    }
    default:
      return false;
  }
  return w.size() <= kMaxFrameBytes;
}

// ---------------------------------------------------------------------------
// decode_frame
// ---------------------------------------------------------------------------

bool decode_frame(const std::uint8_t* data, std::size_t len,
                  DecodePools& pools, net::Packet& out) {
  if (len > kMaxFrameBytes) return false;
  Reader r(data, len);
  std::uint32_t magic = 0, source = 0, group = 0;
  std::uint8_t version = 0, kind = 0, scope = 0, pad8 = 0;
  std::uint16_t ttl = 0, pad16 = 0;
  if (!r.u32(magic) || !r.u8(version) || !r.u8(kind) || !r.u8(scope) ||
      !r.u8(pad8) || !r.u32(source) || !r.u32(group) || !r.u16(ttl) ||
      !r.u16(pad16)) {
    return false;
  }
  if (magic != kWireMagic || version != kWireVersion || scope > 1) return false;

  net::MessagePtr payload;
  switch (kind) {
    case 1: {
      DataName name;
      PayloadPtr bytes;
      if (!get_name(r, name) || !get_payload(r, bytes)) return false;
      payload = std::make_shared<DataMessage>(name, std::move(bytes));
      break;
    }
    case 2: {
      DataName name;
      std::uint32_t requestor = 0, initial_ttl = 0;
      double dist = 0.0;
      if (!get_name(r, name) || !r.u32(requestor) || !r.f64(dist) ||
          !r.u32(initial_ttl) || initial_ttl > net::kMaxTtl) {
        return false;
      }
      payload = pools.requests.acquire(name, requestor, dist,
                                       static_cast<int>(initial_ttl));
      break;
    }
    case 3: {
      DataName name;
      std::uint32_t responder = 0, first_requestor = 0, initial_ttl = 0;
      double dist = 0.0;
      std::uint8_t step_one = 0;
      PayloadPtr bytes;
      if (!get_name(r, name) || !r.u32(responder) || !r.u32(first_requestor) ||
          !r.f64(dist) || !r.u32(initial_ttl) || !r.u8(step_one) ||
          !get_payload(r, bytes) || initial_ttl > net::kMaxTtl ||
          step_one > 1) {
        return false;
      }
      payload = pools.repairs.acquire(name, std::move(bytes), responder,
                                      first_requestor, dist,
                                      static_cast<int>(initial_ttl),
                                      step_one != 0);
      break;
    }
    case 4: {
      std::uint32_t sender = 0, n_echo = 0, n_digest = 0;
      double timestamp = 0.0;
      if (!r.u32(sender) || !r.f64(timestamp) ||
          !get_state(r, pools.state_scratch) || !r.u32(n_echo) ||
          r.remaining() < static_cast<std::size_t>(n_echo) * 20) {
        return false;
      }
      pools.echo_scratch.clear();
      pools.echo_scratch.reserve(n_echo);
      for (std::uint32_t i = 0; i < n_echo; ++i) {
        std::uint32_t peer = 0;
        SessionMessage::Echo echo;
        if (!r.u32(peer) || !r.f64(echo.peer_timestamp) ||
            !r.f64(echo.hold_time)) {
          return false;
        }
        pools.echo_scratch.insert_or_assign(peer, echo);
      }
      if (!r.u32(n_digest) ||
          r.remaining() < static_cast<std::size_t>(n_digest) * 16) {
        return false;
      }
      pools.digest_scratch.clear();
      pools.digest_scratch.reserve(n_digest);
      for (std::uint32_t i = 0; i < n_digest; ++i) {
        SessionMessage::AreaDigest d;
        if (!r.u32(d.area) || !r.u32(d.live_members) || !r.u64(d.max_seq)) {
          return false;
        }
        pools.digest_scratch.push_back(d);
      }
      payload = pools.sessions.acquire(
          sender, timestamp, std::move(pools.state_scratch),
          std::move(pools.echo_scratch), std::move(pools.digest_scratch));
      break;
    }
    case 5: {
      std::uint32_t requestor = 0;
      std::optional<PageId> page;
      if (!r.u32(requestor) || !get_opt_page(r, page)) return false;
      payload = std::make_shared<PageRequestMessage>(requestor, page);
      break;
    }
    case 6: {
      std::uint32_t responder = 0, n_pages = 0;
      std::optional<PageId> page;
      SessionMessage::StateReport state;
      if (!r.u32(responder) || !get_opt_page(r, page) || !get_state(r, state) ||
          !r.u32(n_pages) ||
          r.remaining() < static_cast<std::size_t>(n_pages) * 8) {
        return false;
      }
      std::vector<PageId> pages;
      pages.reserve(n_pages);
      for (std::uint32_t i = 0; i < n_pages; ++i) {
        PageId p;
        if (!get_page(r, p)) return false;
        pages.push_back(p);
      }
      payload = std::make_shared<PageReplyMessage>(responder, page,
                                                   std::move(state),
                                                   std::move(pages));
      break;
    }
    default:
      return false;
  }

  if (!r.done()) return false;  // trailing bytes = malformed frame
  out.source = source;
  out.group = group;
  out.ttl = static_cast<int>(ttl);
  out.scope = static_cast<net::Scope>(scope);
  out.payload = std::move(payload);
  return true;
}

}  // namespace srm::transport
