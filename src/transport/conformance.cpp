#include "transport/conformance.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "net/network.h"
#include "sim/event_queue.h"
#include "srm/agent.h"
#include "srm/config.h"
#include "srm/messages.h"
#include "topo/builders.h"
#include "trace/trace.h"
#include "transport/sim_transport.h"
#include "transport/udp_transport.h"
#include "util/rng.h"

namespace srm::transport {

namespace {

constexpr net::GroupId kGroup = 1;
constexpr PageId kPage{0, 1};

// Both backends run the identical protocol configuration.  Session messages
// are off and the sim runner opts out of its distance oracle, so every
// distance is default_distance on both sides and the per-member RNG streams
// (seeded seed*1000+ordinal) produce identical timer draws.  C2 = 0 keeps
// the request side deterministic; D2 comes from the scenario (the
// suppression race wants a randomized repair window).
SrmConfig scenario_config(const Scenario& scenario) {
  SrmConfig config;
  config.timers.c1 = 2.0;
  config.timers.c2 = 0.0;
  config.timers.d1 = 1.0;
  config.timers.d2 = scenario.d2;
  config.backoff_factor = 3.0;
  config.distance_mode = DistanceMode::kEstimated;
  config.default_distance = 0.05;  // decision spacing >> UDP jitter (~2 ms)
  config.session.enabled = false;
  return config;
}

util::Rng member_rng(const Scenario& scenario, std::uint32_t ordinal) {
  return util::Rng(scenario.seed * 1000 + ordinal);
}

// Shared receive-side drop script: counts down each rule as it fires.
class DropScript {
 public:
  explicit DropScript(const std::vector<ScriptedDrop>& drops) {
    for (const auto& d : drops) rules_.push_back({d, 0});
  }

  bool should_drop(std::uint32_t member, const net::Packet& packet) {
    if (!packet.payload) return false;
    const std::uint32_t kind = packet.payload->trace_kind();
    SeqNo seq = 0;
    switch (kind) {
      case 1:
        seq = static_cast<const DataMessage&>(*packet.payload).name().seq;
        break;
      case 2:
        seq = static_cast<const RequestMessage&>(*packet.payload).name().seq;
        break;
      case 3:
        seq = static_cast<const RepairMessage&>(*packet.payload).name().seq;
        break;
      default:
        return false;
    }
    for (auto& [rule, fired] : rules_) {
      if (rule.at_member == member && rule.kind == kind && rule.seq == seq &&
          fired < rule.count) {
        ++fired;
        ++total_fired_;
        return true;
      }
    }
    return false;
  }

  std::size_t total_fired() const { return total_fired_; }

 private:
  std::vector<std::pair<ScriptedDrop, std::size_t>> rules_;
  std::size_t total_fired_ = 0;
};

const char* milestone_name(trace::EventType type) {
  switch (type) {
    case trace::EventType::kSrmLoss:
      return "loss";
    case trace::EventType::kSrmReqSend:
      return "req_send";
    case trace::EventType::kSrmRepSend:
      return "rep_send";
    // kSrmRepSuppress is intentionally NOT a milestone: a holder's
    // suppression and the requestor's recovery are both reactions to the
    // same repair multicast at *different* members, so their relative order
    // is genuinely concurrent — it depends on delivery order, which no
    // backend guarantees.  The suppression count is still compared via the
    // repair_suppressions field.
    case trace::EventType::kSrmRecovered:
      return "recovered";
    case trace::EventType::kSrmAbandoned:
      return "abandoned";
    default:
      return nullptr;
  }
}

ScenarioResult fold_result(const std::vector<trace::Event>& events,
                           std::size_t scripted_drops) {
  ScenarioResult result;
  result.scripted_drops_fired = scripted_drops;
  const auto timeline = trace::RecoveryTimeline::fold(events);
  bool all_recovered = !timeline.stories().empty();
  for (const auto& story : timeline.stories()) {
    StoryFingerprint fp;
    fp.adu = story.adu;
    fp.detections = story.detections;
    fp.requests_sent = story.requests_sent;
    fp.request_backoffs = story.request_backoffs;
    fp.repairs_sent = story.repairs_sent;
    fp.repair_suppressions = story.repair_suppressions;
    fp.recoveries = story.recoveries;
    fp.abandoned = story.abandoned;
    fp.first_detector = story.first_detector;
    fp.first_requestor = story.first_requestor;
    fp.first_responder = story.first_responder;
    for (const auto& entry : story.entries) {
      if (const char* name = milestone_name(entry.type)) {
        fp.milestones.emplace_back(name, entry.actor);
      }
    }
    if (story.recoveries < story.detections || story.abandoned > 0) {
      all_recovered = false;
    }
    result.stories.push_back(std::move(fp));
  }
  std::sort(result.stories.begin(), result.stories.end(),
            [](const StoryFingerprint& a, const StoryFingerprint& b) {
              return a.adu < b.adu;
            });
  result.all_recovered = all_recovered;
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Canonical scenarios
// ---------------------------------------------------------------------------

std::vector<Scenario> conformance_scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "clean-loss";
    s.description =
        "one receiver misses DATA seq 0; exactly one request, one repair";
    s.members = 2;
    s.seed = 7;
    s.drops = {{/*at_member=*/1, /*kind=*/1, /*seq=*/0, /*count=*/1}};
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lost-request";
    s.description =
        "the first REQUEST is lost at the source; the requestor's backoff "
        "timer fires and the second request is answered";
    s.members = 2;
    s.seed = 11;
    s.drops = {{1, 1, 0, 1},   // receiver misses DATA seq 0
               {0, 2, 0, 1}};  // source misses the first REQUEST for it
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "lost-repair";
    s.description =
        "the first REPAIR is lost at the requestor; the re-request arrives "
        "after the responder's holddown and draws a second repair";
    s.members = 2;
    s.seed = 13;
    s.drops = {{1, 1, 0, 1},   // receiver misses DATA seq 0
               {1, 3, 0, 1}};  // ...and the first REPAIR for it
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "repair-suppression";
    s.description =
        "two holders race to answer one request; the later timer is "
        "suppressed by the earlier holder's repair";
    s.members = 3;
    s.seed = 5;  // chosen so the two repair draws are well separated
    s.d2 = 1.0;
    s.drops = {{1, 1, 0, 1}};  // only member 1 misses DATA seq 0
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Backend runners
// ---------------------------------------------------------------------------

ScenarioResult run_scenario_sim(const Scenario& scenario) {
  const topo::Star star = topo::make_star(scenario.members, 0.001);
  sim::EventQueue queue;
  net::MulticastNetwork network(queue, star.topo);
  MemberDirectory directory;
  const SrmConfig config = scenario_config(scenario);

  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));

  DropScript script(scenario.drops);
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<SrmAgent>> agents;
  for (std::uint32_t i = 0; i < scenario.members; ++i) {
    auto transport = std::make_unique<SimTransport>(network);
    transport->set_receive_filter(
        [&script, i](const net::Packet& packet, const net::DeliveryInfo&) {
          return script.should_drop(i, packet);
        });
    auto agent = std::make_unique<SrmAgent>(
        *transport, directory, star.leaves[i], /*id=*/i, kGroup, config,
        member_rng(scenario, i));
    agent->set_tracer(&tracer);
    agent->start();
    transports.push_back(std::move(transport));
    agents.push_back(std::move(agent));
  }

  for (std::size_t k = 0; k < scenario.sends; ++k) {
    queue.schedule_at(
        scenario.first_send + scenario.send_gap * static_cast<double>(k),
        [&agents, k] {
          agents[0]->send_data(kPage,
                               Payload{static_cast<std::uint8_t>(k), 0xAB});
        });
  }
  queue.run_until(scenario.end_time());

  for (auto& agent : agents) agent->stop();
  return fold_result(sink.events(), script.total_fired());
}

ScenarioResult run_scenario_udp(const Scenario& scenario) {
  UdpTransport transport;
  MemberDirectory directory;
  const SrmConfig config = scenario_config(scenario);

  trace::VectorSink sink;
  trace::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.set_mask(static_cast<std::uint32_t>(trace::Category::kSrm));

  DropScript script(scenario.drops);
  // One shared filter: on the UDP bus member ordinals are the node ids, so
  // the delivery's receiver field selects the rule — the same predicate the
  // sim runner applies per-agent.
  transport.set_receive_filter(
      [&script](const net::Packet& packet, const net::DeliveryInfo& info) {
        return script.should_drop(info.receiver, packet);
      });

  std::vector<std::unique_ptr<SrmAgent>> agents;
  for (std::uint32_t i = 0; i < scenario.members; ++i) {
    auto agent = std::make_unique<SrmAgent>(transport, directory, /*node=*/i,
                                            /*id=*/i, kGroup, config,
                                            member_rng(scenario, i));
    agent->set_tracer(&tracer);
    agent->start();
    agents.push_back(std::move(agent));
  }

  for (std::size_t k = 0; k < scenario.sends; ++k) {
    transport.queue().schedule_at(
        scenario.first_send + scenario.send_gap * static_cast<double>(k),
        [&agents, k] {
          agents[0]->send_data(kPage,
                               Payload{static_cast<std::uint8_t>(k), 0xAB});
        });
  }
  transport.run_for(scenario.end_time());

  for (auto& agent : agents) agent->stop();
  return fold_result(sink.events(), script.total_fired());
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

std::string to_string(const StoryFingerprint& fp) {
  std::ostringstream os;
  os << trace::to_string(fp.adu) << ": det=" << fp.detections
     << " req=" << fp.requests_sent << " backoff=" << fp.request_backoffs
     << " rep=" << fp.repairs_sent << " suppress=" << fp.repair_suppressions
     << " recovered=" << fp.recoveries << " abandoned=" << fp.abandoned
     << " first[det=" << fp.first_detector << " req=" << fp.first_requestor
     << " rep=" << fp.first_responder << "] [";
  for (std::size_t i = 0; i < fp.milestones.size(); ++i) {
    if (i > 0) os << " ";
    os << fp.milestones[i].first << "@" << fp.milestones[i].second;
  }
  os << "]";
  return os.str();
}

std::string diff_results(const ScenarioResult& sim_result,
                         const ScenarioResult& udp_result) {
  std::ostringstream os;
  if (sim_result.stories.size() != udp_result.stories.size()) {
    os << "story count differs: sim=" << sim_result.stories.size()
       << " udp=" << udp_result.stories.size();
    return os.str();
  }
  for (std::size_t i = 0; i < sim_result.stories.size(); ++i) {
    const auto& a = sim_result.stories[i];
    const auto& b = udp_result.stories[i];
    if (!(a == b)) {
      os << "story " << i << " differs:\n  sim: " << to_string(a)
         << "\n  udp: " << to_string(b);
      return os.str();
    }
  }
  if (sim_result.scripted_drops_fired != udp_result.scripted_drops_fired) {
    os << "scripted drop count differs: sim="
       << sim_result.scripted_drops_fired
       << " udp=" << udp_result.scripted_drops_fired;
    return os.str();
  }
  return "";
}

}  // namespace srm::transport
