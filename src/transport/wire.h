// Wire framing for SRM messages over a real datagram transport
// (ARCHITECTURE.md §13).  The simulator passes typed srm::Message objects
// by pointer; UdpTransport needs real bytes.  One frame = one UDP datagram:
//
//   offset  field
//   ------  --------------------------------------------------------------
//   0       u32  magic 0x53524D46 ("SRMF")
//   4       u8   version (kWireVersion)
//   5       u8   kind (srm trace_kind: 1=DATA .. 6=PAGE-REPLY)
//   6       u8   scope (net::Scope)
//   7       u8   reserved (0)
//   8       u32  source node id
//   12      u32  group id
//   16      u16  ttl
//   18      u16  reserved (0)
//   20      kind-specific body (see wire.cpp)
//
// All integers little-endian; doubles are IEEE-754 bit patterns.  Decoding
// is defensive: any truncated, oversized or unknown frame is rejected
// (decode returns false) rather than trusted — the socket is a public
// input.  Decoded REQUEST/REPAIR/SESSION messages come from
// net::MessagePool freelists (DecodePools), so a steady receive stream
// settles into zero per-datagram message allocations, mirroring the
// send-side pooling in srm::SrmAgent.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "srm/messages.h"

namespace srm::transport {

inline constexpr std::uint32_t kWireMagic = 0x53524D46u;  // "SRMF"
inline constexpr std::uint8_t kWireVersion = 1;
// One frame must fit one UDP datagram with headroom for UDP/IP headers.
inline constexpr std::size_t kMaxFrameBytes = 60000;

// Per-transport receive-side message freelists (the pool contract requires
// rebind(); DATA and the page messages are constructed fresh — they carry
// shared payload/vector state that deliveries keep referencing).
struct DecodePools {
  net::MessagePool<RequestMessage> requests;
  net::MessagePool<RepairMessage> repairs;
  net::MessagePool<SessionMessage> sessions;
  // Scratch tables the next session message is rebuilt into; capacity
  // circulates between these and pooled messages via rebind's swap.
  SessionMessage::StateReport state_scratch;
  SessionMessage::Echoes echo_scratch;
  SessionMessage::AreaDigests digest_scratch;
};

// Serializes `packet` (source/group/ttl/scope + typed SRM payload) into
// `out` (cleared first; capacity retained).  Returns false when the payload
// is not one of the six SRM message types or the frame would exceed
// kMaxFrameBytes.
bool encode_frame(const net::Packet& packet, std::vector<std::uint8_t>& out);

// Parses one datagram back into a packet.  On success `out.payload` holds a
// freshly decoded message (pooled where possible) and header fields are
// restored; on failure `out` is untouched and false is returned.
bool decode_frame(const std::uint8_t* data, std::size_t len,
                  DecodePools& pools, net::Packet& out);

}  // namespace srm::transport
