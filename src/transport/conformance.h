// Cross-backend conformance (ARCHITECTURE.md §13): the same scripted loss
// scenario runs once over SimTransport and once over UdpTransport, both
// traces fold through trace::RecoveryTimeline, and the per-loss recovery
// stories are compared as timing-free fingerprints — every milestone
// (detection, request, backoff, repair, suppression, recovery) with its
// actor and multiplicity must match; only wall-clock times may differ.
//
// Why this is a fair determinism bar: both backends construct agents with
// identical per-member RNG streams, session messages disabled and
// DistanceMode::kEstimated, so every timer draw is the same number of
// seconds on both sides (distance is config.default_distance everywhere —
// the UDP backend has no oracle, and the sim runner opts out of its own).
// The scenarios are built so consecutive decision points are separated by
// O(default_distance) = tens of milliseconds, far above the UDP backend's
// worst-case timer/delivery jitter (poll granularity, ~2 ms), so the
// milestone *order* is invariant even though absolute times are not.
// Scripted loss is injected on the receive side through the shared
// Transport receive-filter hook, which has identical semantics on both
// backends by construction.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "srm/names.h"
#include "trace/timeline.h"

namespace srm::transport {

// One scripted receive-side drop rule: the first `count` messages of `kind`
// naming ADU seq `seq` that arrive at member ordinal `at_member` are
// dropped.  Kinds use the srm trace_kind values (1=DATA, 2=REQUEST,
// 3=REPAIR).
struct ScriptedDrop {
  std::uint32_t at_member = 0;
  std::uint32_t kind = 1;
  SeqNo seq = 0;
  std::size_t count = 1;
};

// A scripted loss scenario.  Member ordinals double as SourceIds (and as
// node ids on the UDP backend); member 0 is the data source and sends ADUs
// seq 0..sends-1 on one page, send_gap seconds apart, starting at
// first_send.
struct Scenario {
  std::string name;
  std::string description;
  std::size_t members = 2;
  std::uint64_t seed = 1;
  std::size_t sends = 2;
  double first_send = 0.25;
  double send_gap = 0.12;
  // Repair-timer width D2 (0 = deterministic repair delay; >0 enables the
  // holder suppression race, decided by the shared RNG draws).
  double d2 = 0.0;
  std::vector<ScriptedDrop> drops;
  // Post-last-send horizon, seconds (virtual on sim, wall on UDP).
  double settle = 2.0;

  double end_time() const {
    return first_send + send_gap * static_cast<double>(sends) + settle;
  }
};

// The canonical scripted loss scenarios the acceptance criteria reference:
// clean single loss, lost first request (requestor backoff), lost repair
// (responder holddown + re-request), and a repair-suppression race between
// two holders.
std::vector<Scenario> conformance_scenarios();

// Timing-free digest of one recovery story.
struct StoryFingerprint {
  trace::AduKey adu;
  std::size_t detections = 0;
  std::size_t requests_sent = 0;
  std::size_t request_backoffs = 0;
  std::size_t repairs_sent = 0;
  std::size_t repair_suppressions = 0;
  std::size_t recoveries = 0;
  std::size_t abandoned = 0;
  std::uint64_t first_detector = 0;
  std::uint64_t first_requestor = 0;
  std::uint64_t first_responder = 0;
  // Ordered (milestone, actor) pairs for the order-sensitive event types:
  // "loss", "req_send", "rep_send", "recovered", "abandoned".  Repair
  // suppressions are compared by count only (see repair_suppressions):
  // a holder's suppression and the requestor's recovery react to the same
  // repair multicast at different members, so their order is concurrent.
  std::vector<std::pair<std::string, std::uint64_t>> milestones;

  friend bool operator==(const StoryFingerprint&,
                         const StoryFingerprint&) = default;
};

std::string to_string(const StoryFingerprint& fp);

struct ScenarioResult {
  std::vector<StoryFingerprint> stories;  // sorted by ADU key
  std::size_t scripted_drops_fired = 0;   // receive-filter hits
  bool all_recovered = false;             // every story closed, none abandoned
};

// Runs the scenario on the simulator backend (star topology, one leaf per
// member, explicit per-agent SimTransport).  Deterministic.
ScenarioResult run_scenario_sim(const Scenario& scenario);

// Runs the scenario over real UDP multicast on loopback (one shared
// UdpTransport bus).  Throws TransportError when the environment lacks
// loopback multicast; gate with UdpTransport::available().
ScenarioResult run_scenario_udp(const Scenario& scenario);

// Empty when the results agree story-for-story; otherwise a readable
// description of the first difference.
std::string diff_results(const ScenarioResult& sim_result,
                         const ScenarioResult& udp_result);

}  // namespace srm::transport
