#include "transport/transport.h"

namespace srm::transport {

Transport::~Transport() = default;

}  // namespace srm::transport
