// Transport: the seam between the SRM protocol machine and whatever moves
// its packets (ARCHITECTURE.md §13).  srm::SrmAgent (and everything layered
// on it — FecSession, SessionHierarchy, the whiteboard) speaks only this
// interface; the backend decides whether "the network" is the discrete-event
// simulator (SimTransport, src/transport/sim_transport.h) or a real UDP
// multicast socket on loopback (UdpTransport, src/transport/udp_transport.h).
//
// The contract mirrors what the agent actually needs from
// net::MulticastNetwork:
//
//   * a timer/clock service — a sim::EventQueue whose now() is the backend's
//     time base.  SimTransport hands out the simulation queue (virtual
//     time); UdpTransport owns a private queue slaved to the monotonic
//     clock (seconds since construction), so sim::Timer / sim::LocalClock
//     and every timer the agent builds run unchanged over real sockets;
//   * endpoint lifecycle — attach/detach a PacketSink for a node, and
//     join/leave multicast groups on its behalf;
//   * framed sends — multicast(from, packet) with TTL and admin scope;
//   * a ground-truth distance oracle — try_distance() returns the one-way
//     delay when the backend knows it (the simulator's routing tables) and
//     +infinity when it does not (real sockets), which sends the agent to
//     its session-message estimator or config.default_distance, exactly the
//     position a real deployment is in;
//   * a receive filter — scripted receive-side loss, interposed between the
//     backend and the sink with identical semantics on every backend.  The
//     conformance harness and the workload suite use it to inject the same
//     loss pattern under sim and UDP.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/event_queue.h"

namespace srm::transport {

// Scripted receive-side loss: return true to drop the packet before the
// attached sink sees it.  Runs after decode on UdpTransport and in place of
// direct delivery on SimTransport, so a filter keyed on message kind and
// ADU sequence behaves identically on both backends.
using ReceiveFilter =
    std::function<bool(const net::Packet&, const net::DeliveryInfo&)>;

class Transport {
 public:
  virtual ~Transport();

  // Timer/clock service.  The queue's now() is the backend time base; all
  // agent timers (sim::Timer), clocks (sim::LocalClock) and scheduled
  // actions run against it.
  virtual sim::EventQueue& queue() = 0;
  virtual const sim::EventQueue& queue() const = 0;

  // Endpoint lifecycle.  Backends follow the validate-then-acquire idiom:
  // all preconditions are checked (and, for UDP, all sockets acquired)
  // before any transport state mutates, and teardown releases in reverse
  // order of acquisition.
  virtual void attach(net::NodeId node, net::PacketSink* sink) = 0;
  virtual void detach(net::NodeId node) = 0;
  virtual void join(net::GroupId group, net::NodeId node) = 0;
  virtual void leave(net::GroupId group, net::NodeId node) = 0;

  // Sends one framed SRM message to every member of packet.group (except
  // the sender).  packet.source is stamped with `from`.
  virtual void multicast(net::NodeId from, net::Packet packet) = 0;

  // Ground-truth one-way delay from `from` to `to`, or +infinity when the
  // backend has no oracle (UdpTransport always; the simulator when the
  // nodes are disconnected).  Agents in DistanceMode::kOracle cache the
  // result keyed on topology_version().
  virtual double try_distance(net::NodeId from, net::NodeId to) const = 0;

  // Bumped whenever ground-truth distances may have changed (topology
  // mutations under fault plans).  Constant 0 on backends without an
  // oracle.
  virtual std::uint64_t topology_version() const = 0;

  // Installs (or clears, with nullptr-like empty function) the scripted
  // receive-side drop filter for every endpoint on this transport.
  virtual void set_receive_filter(ReceiveFilter filter) = 0;

  // Stable backend name ("sim", "udp") for diagnostics and trace labels.
  virtual const char* name() const = 0;
};

}  // namespace srm::transport
