// UdpTransport: the Transport backend over real UDP multicast on the
// loopback interface (ARCHITECTURE.md §13).
//
// One instance owns one datagram socket and hosts any number of endpoints
// (agents attach by node id, exactly as on the simulator backend).  Group
// id g maps to the administratively scoped multicast address 239.255.G1.G0
// (G1G0 = g mod 2^16); every transport in every process binds the same UDP
// port with SO_REUSEADDR/SO_REUSEPORT and joins the group, so frames a
// member multicasts loop back through the kernel to every joined socket on
// the host.  Self-delivery is filtered by the frame's source node id —
// delivery to the sending endpoint is suppressed, to all others allowed,
// which reproduces IP-multicast semantics for co-located endpoints.
//
// Construction follows the validate-then-acquire lifecycle: options are
// validated first (cheap checks), then the socket is created and fully
// configured (bind, multicast interface, loopback, TTL) before any object
// state becomes observable; a failure at any step throws TransportError
// with nothing half-acquired, and teardown releases in reverse order.
//
// Time: the transport owns a private sim::EventQueue slaved to the
// monotonic clock — virtual time = seconds since construction.  run_for()
// alternately fires due timers (queue().run_until(elapsed())) and sleeps in
// poll(2) until the next timer deadline or a datagram arrives, so the
// agents' sim::Timer machinery runs unchanged over real sockets with
// timer-firing latency bounded by poll wake-up (sub-millisecond when
// sockets are active, <= poll_granularity when idle).
//
// There is no distance oracle: try_distance() returns +infinity and
// topology_version() is constant 0, so agents fall back to session-message
// estimation or config.default_distance — the same information a real
// deployment has.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/event_queue.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace srm::transport {

class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct UdpOptions {
  // Interface carrying the multicast traffic.  Loopback keeps the suite
  // self-contained; any interface address works.
  std::string interface_address = "127.0.0.1";
  // UDP port shared by all transports of one session.  0 derives a port
  // from the process id (stable within a process, disjoint across
  // concurrent CI jobs).
  std::uint16_t port = 0;
  // Upper bound on one poll(2) sleep; bounds timer-firing latency while the
  // socket is idle.
  double poll_granularity = 0.002;
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(UdpOptions options = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // True when this environment supports the full loopback-multicast path:
  // probes by opening a transport on a scratch port and round-tripping one
  // frame between two endpoints.  Tests and CI smokes gate on this instead
  // of failing in containers without multicast support.
  static bool available();

  // --- Transport ----------------------------------------------------------
  sim::EventQueue& queue() override { return queue_; }
  const sim::EventQueue& queue() const override { return queue_; }
  void attach(net::NodeId node, net::PacketSink* sink) override;
  void detach(net::NodeId node) override;
  void join(net::GroupId group, net::NodeId node) override;
  void leave(net::GroupId group, net::NodeId node) override;
  void multicast(net::NodeId from, net::Packet packet) override;
  double try_distance(net::NodeId, net::NodeId) const override;
  std::uint64_t topology_version() const override { return 0; }
  void set_receive_filter(ReceiveFilter filter) override {
    filter_ = std::move(filter);
  }
  const char* name() const override { return "udp"; }

  // --- event loop ---------------------------------------------------------

  // Seconds since construction on the monotonic clock (the queue time base).
  double elapsed() const;

  // Fires due timers, waits for datagrams or the next timer deadline (at
  // most max_wait seconds, clamped to poll_granularity), drains and
  // delivers everything readable, fires newly due timers.
  void poll_once(double max_wait);

  // Drives poll_once until `wall_seconds` have elapsed.
  void run_for(double wall_seconds);

  // Drives the loop until no datagram arrives and no timer fires for
  // `idle_seconds` in a row (or until max_wall elapses; returns false on
  // that timeout).  Lets scenario runners stop as soon as recovery quiesces.
  bool run_until_idle(double idle_seconds, double max_wall);

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t deliveries = 0;       // sink deliveries after fan-out
    std::uint64_t self_suppressed = 0;  // sender's own loopback copy
    std::uint64_t filtered_drops = 0;   // scripted receive-filter drops
    std::uint64_t decode_errors = 0;    // malformed/foreign datagrams
    std::uint64_t send_errors = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint16_t port() const { return port_; }

 private:
  struct GroupState {
    std::vector<net::NodeId> members;  // locally joined endpoints, sorted
    bool membership_acquired = false;  // IP_ADD_MEMBERSHIP held
  };

  void acquire_membership(net::GroupId group, GroupState& state);
  void release_membership(net::GroupId group, GroupState& state);
  void deliver(const std::uint8_t* data, std::size_t len);
  void drain_socket();

  UdpOptions options_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint32_t interface_ip_ = 0;  // network byte order
  std::chrono::steady_clock::time_point epoch_;

  sim::EventQueue queue_;
  std::unordered_map<net::NodeId, net::PacketSink*> sinks_;
  std::unordered_map<net::GroupId, GroupState> groups_;
  ReceiveFilter filter_;
  DecodePools pools_;
  std::vector<std::uint8_t> recv_buf_;
  std::vector<std::uint8_t> send_buf_;
  std::vector<net::NodeId> fanout_scratch_;
  Stats stats_;
};

}  // namespace srm::transport
