#include "transport/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "srm/messages.h"

namespace srm::transport {

namespace {

constexpr std::size_t kRecvBufBytes = 65536;

std::uint16_t derive_port() {
  // Stable within a process (co-located transports share the bus), disjoint
  // across concurrent jobs on the same host.
  return static_cast<std::uint16_t>(21000 + (::getpid() % 20000));
}

sockaddr_in group_sockaddr(net::GroupId group, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Administratively scoped block 239.255/16; the low 16 bits of the group
  // id pick the host part.
  const std::uint32_t host = (239u << 24) | (255u << 16) | (group & 0xFFFFu);
  addr.sin_addr.s_addr = htonl(host);
  return addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError("UdpTransport: " + what + ": " +
                       std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction: validate, then acquire
// ---------------------------------------------------------------------------

UdpTransport::UdpTransport(UdpOptions options)
    : options_(std::move(options)), recv_buf_(kRecvBufBytes) {
  // -- validate (cheap checks before any resource is touched) --------------
  if (options_.poll_granularity <= 0.0) {
    throw TransportError("UdpTransport: poll_granularity must be positive");
  }
  in_addr iface{};
  if (::inet_pton(AF_INET, options_.interface_address.c_str(), &iface) != 1) {
    throw TransportError("UdpTransport: bad interface address '" +
                         options_.interface_address + "'");
  }
  const std::uint16_t port = options_.port != 0 ? options_.port : derive_port();

  // -- acquire (socket, then every socket option, then the binding; any
  //    failure closes the fd and leaves the object unconstructed) ----------
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket");
  try {
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
      throw_errno("SO_REUSEADDR");
    }
#ifdef SO_REUSEPORT
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
      throw_errno("SO_REUSEPORT");
    }
#endif
    sockaddr_in bind_addr{};
    bind_addr.sin_family = AF_INET;
    bind_addr.sin_port = htons(port);
    bind_addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&bind_addr),
               sizeof bind_addr) < 0) {
      throw_errno("bind");
    }
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_IF, &iface, sizeof iface) <
        0) {
      throw_errno("IP_MULTICAST_IF");
    }
    const unsigned char loop = 1;
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof loop) <
        0) {
      throw_errno("IP_MULTICAST_LOOP");
    }
    const unsigned char ttl = 1;  // never leaves the host/LAN
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof ttl) < 0) {
      throw_errno("IP_MULTICAST_TTL");
    }
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
      throw_errno("O_NONBLOCK");
    }
  } catch (...) {
    ::close(fd);
    throw;
  }

  // -- commit ---------------------------------------------------------------
  fd_ = fd;
  port_ = port;
  interface_ip_ = iface.s_addr;
  epoch_ = std::chrono::steady_clock::now();
}

UdpTransport::~UdpTransport() {
  // Teardown in reverse order of acquisition: memberships, then the socket.
  for (auto& [group, state] : groups_) {
    if (state.membership_acquired) release_membership(group, state);
  }
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::available() {
  // One real round-trip proves the whole path: socket setup, membership on
  // the loopback interface, kernel loopback of a multicast datagram, and
  // decode.  Cached: the answer cannot change within a process.
  static const bool ok = [] {
    struct Probe final : net::PacketSink {
      bool got = false;
      void on_receive(const net::Packet&, const net::DeliveryInfo&) override {
        got = true;
      }
    };
    try {
      UdpOptions options;
      options.port = static_cast<std::uint16_t>(20000 + (::getpid() % 999));
      UdpTransport t(options);
      Probe sender, receiver;
      t.attach(0, &sender);
      t.attach(1, &receiver);
      t.join(65534, 0);
      t.join(65534, 1);
      net::Packet packet;
      packet.group = 65534;
      packet.payload = std::make_shared<DataMessage>(
          DataName{0, PageId{0, 0}, 0}, std::make_shared<Payload>());
      t.multicast(0, std::move(packet));
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
      while (!receiver.got && std::chrono::steady_clock::now() < deadline) {
        t.poll_once(0.05);
      }
      return receiver.got;
    } catch (const TransportError&) {
      return false;
    }
  }();
  return ok;
}

// ---------------------------------------------------------------------------
// Endpoints and groups
// ---------------------------------------------------------------------------

void UdpTransport::attach(net::NodeId node, net::PacketSink* sink) {
  if (sink == nullptr) {
    throw TransportError("UdpTransport: attach with null sink");
  }
  sinks_[node] = sink;
}

void UdpTransport::detach(net::NodeId node) { sinks_.erase(node); }

void UdpTransport::join(net::GroupId group, net::NodeId node) {
  GroupState& state = groups_[group];
  if (!state.membership_acquired) acquire_membership(group, state);
  const auto it =
      std::lower_bound(state.members.begin(), state.members.end(), node);
  if (it == state.members.end() || *it != node) state.members.insert(it, node);
}

void UdpTransport::leave(net::GroupId group, net::NodeId node) {
  const auto git = groups_.find(group);
  if (git == groups_.end()) return;
  GroupState& state = git->second;
  const auto it =
      std::lower_bound(state.members.begin(), state.members.end(), node);
  if (it != state.members.end() && *it == node) state.members.erase(it);
  if (state.members.empty()) {
    if (state.membership_acquired) release_membership(group, state);
    groups_.erase(git);
  }
}

void UdpTransport::acquire_membership(net::GroupId group, GroupState& state) {
  ip_mreq mreq{};
  mreq.imr_multiaddr = group_sockaddr(group, port_).sin_addr;
  mreq.imr_interface.s_addr = interface_ip_;
  if (::setsockopt(fd_, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof mreq) <
      0) {
    throw_errno("IP_ADD_MEMBERSHIP (multicast unavailable on " +
                options_.interface_address + ")");
  }
  state.membership_acquired = true;
}

void UdpTransport::release_membership(net::GroupId group, GroupState& state) {
  ip_mreq mreq{};
  mreq.imr_multiaddr = group_sockaddr(group, port_).sin_addr;
  mreq.imr_interface.s_addr = interface_ip_;
  ::setsockopt(fd_, IPPROTO_IP, IP_DROP_MEMBERSHIP, &mreq, sizeof mreq);
  state.membership_acquired = false;
}

// ---------------------------------------------------------------------------
// Send / receive
// ---------------------------------------------------------------------------

void UdpTransport::multicast(net::NodeId from, net::Packet packet) {
  packet.source = from;
  if (!encode_frame(packet, send_buf_)) {
    ++stats_.send_errors;
    return;
  }
  const sockaddr_in dst = group_sockaddr(packet.group, port_);
  const ssize_t n =
      ::sendto(fd_, send_buf_.data(), send_buf_.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
  if (n < 0 || static_cast<std::size_t>(n) != send_buf_.size()) {
    ++stats_.send_errors;
    return;
  }
  ++stats_.frames_sent;
}

double UdpTransport::try_distance(net::NodeId, net::NodeId) const {
  return std::numeric_limits<double>::infinity();
}

void UdpTransport::deliver(const std::uint8_t* data, std::size_t len) {
  net::Packet packet;
  if (!decode_frame(data, len, pools_, packet)) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.frames_received;
  const auto git = groups_.find(packet.group);
  if (git == groups_.end()) return;  // stale membership (late datagram)
  // One hop from the sender: the loopback fabric is a star.
  net::DeliveryInfo info;
  info.path_delay = 0.0;
  info.hops = 1;
  info.remaining_ttl = std::max(packet.ttl - 1, 0);
  // Fan out over a scratch copy: a sink may join/leave/detach from inside
  // on_receive (agents stop, workloads churn members).
  fanout_scratch_ = git->second.members;
  for (const net::NodeId node : fanout_scratch_) {
    if (node == packet.source) {
      ++stats_.self_suppressed;
      continue;
    }
    const auto sit = sinks_.find(node);
    if (sit == sinks_.end()) continue;
    info.receiver = node;
    if (filter_ && filter_(packet, info)) {
      ++stats_.filtered_drops;
      continue;
    }
    ++stats_.deliveries;
    sit->second->on_receive(packet, info);
  }
}

void UdpTransport::drain_socket() {
  while (true) {
    const ssize_t n = ::recv(fd_, recv_buf_.data(), recv_buf_.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient socket error; keep the loop alive
    }
    deliver(recv_buf_.data(), static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

double UdpTransport::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void UdpTransport::poll_once(double max_wait) {
  // Fire everything already due; run_until also advances now() so newly
  // scheduled relative timers are anchored at wall time.
  queue_.run_until(elapsed());

  double wait = std::clamp(max_wait, 0.0, options_.poll_granularity);
  const double next = queue_.next_event_time();
  if (next < std::numeric_limits<double>::infinity()) {
    wait = std::clamp(next - elapsed(), 0.0, wait);
  }
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int timeout_ms =
      static_cast<int>(std::ceil(wait * 1000.0));
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc > 0 && (pfd.revents & POLLIN) != 0) drain_socket();
  queue_.run_until(elapsed());
}

void UdpTransport::run_for(double wall_seconds) {
  const auto deadline =
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(elapsed() + wall_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    poll_once(options_.poll_granularity);
  }
  queue_.run_until(elapsed());
}

bool UdpTransport::run_until_idle(double idle_seconds, double max_wall) {
  const double start = elapsed();
  double last_activity = start;
  Stats before = stats_;
  std::size_t events_before = queue_.pending_events();
  while (elapsed() - start < max_wall) {
    const double next = queue_.next_event_time();
    poll_once(options_.poll_granularity);
    const bool socket_activity =
        stats_.frames_received != before.frames_received;
    const bool timer_activity =
        next <= elapsed() || queue_.pending_events() != events_before;
    if (socket_activity || timer_activity) {
      last_activity = elapsed();
      before = stats_;
      events_before = queue_.pending_events();
    } else if (elapsed() - last_activity >= idle_seconds) {
      return true;
    }
  }
  return false;
}

}  // namespace srm::transport
