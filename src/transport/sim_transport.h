// SimTransport: the Transport backend over the discrete-event simulator
// (ARCHITECTURE.md §13).  One instance fronts one endpoint (the agent that
// owns it); it forwards every call to the shared net::MulticastNetwork
// unchanged and interposes itself as the node's net::PacketSink so the
// scripted receive filter sees packets before the agent does.
//
// With no filter installed this is a pure pass-through — no RNG draws, no
// event reordering, no extra allocations on the delivery path — which is
// what keeps sim-backend figure outputs bit-identical to the pre-transport
// code (the conformance argument in ARCHITECTURE.md §13 leans on this).
#pragma once

#include <cstdint>

#include "net/network.h"
#include "transport/transport.h"

namespace srm::transport {

class SimTransport final : public Transport, public net::PacketSink {
 public:
  explicit SimTransport(net::MulticastNetwork& network) : network_(&network) {}

  sim::EventQueue& queue() override { return network_->queue(); }
  const sim::EventQueue& queue() const override { return network_->queue(); }

  void attach(net::NodeId node, net::PacketSink* sink) override {
    sink_ = sink;
    node_ = node;
    network_->attach(node, this);
  }

  void detach(net::NodeId node) override {
    network_->detach(node);
    sink_ = nullptr;
  }

  void join(net::GroupId group, net::NodeId node) override {
    network_->join(group, node);
  }

  void leave(net::GroupId group, net::NodeId node) override {
    network_->leave(group, node);
  }

  void multicast(net::NodeId from, net::Packet packet) override {
    network_->multicast(from, std::move(packet));
  }

  double try_distance(net::NodeId from, net::NodeId to) const override {
    return network_->try_distance(from, to);
  }

  std::uint64_t topology_version() const override {
    return network_->topology().version();
  }

  void set_receive_filter(ReceiveFilter filter) override {
    filter_ = std::move(filter);
  }

  const char* name() const override { return "sim"; }

  // Packets the filter swallowed (scripted receive-side loss).
  std::uint64_t filtered_drops() const { return filtered_drops_; }

  net::MulticastNetwork& network() { return *network_; }

  // net::PacketSink — the network delivers here; we apply the scripted
  // filter and hand through to the agent.
  void on_receive(const net::Packet& packet,
                  const net::DeliveryInfo& info) override {
    if (filter_ && filter_(packet, info)) {
      ++filtered_drops_;
      return;
    }
    if (sink_ != nullptr) sink_->on_receive(packet, info);
  }

 private:
  net::MulticastNetwork* network_;
  net::PacketSink* sink_ = nullptr;
  net::NodeId node_ = net::kInvalidNode;
  ReceiveFilter filter_;
  std::uint64_t filtered_drops_ = 0;
};

}  // namespace srm::transport
