#include "wb/page.h"

#include <algorithm>

namespace srm::wb {

bool Page::apply(const DataName& name, const DrawOp& op) {
  // Idempotence: the name always refers to the same data, so a duplicate
  // apply cannot change anything.
  if (!ops_.emplace(name, op).second) return false;
  if (op.type == OpType::kDelete) {
    // The target may not have arrived yet ("patched after the fact"):
    // record the deletion unconditionally.
    deleted_.insert(op.target);
  }
  return true;
}

std::optional<DrawOp> Page::find(const DataName& name) const {
  const auto it = ops_.find(name);
  if (it == ops_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<DataName, DrawOp>> Page::visible_ops() const {
  std::vector<std::pair<DataName, DrawOp>> out;
  for (const auto& [name, op] : ops_) {
    if (op.type == OpType::kDelete) continue;
    if (deleted_.count(name)) continue;
    out.emplace_back(name, op);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.timestamp != b.second.timestamp) {
      return a.second.timestamp < b.second.timestamp;
    }
    return a.first < b.first;  // deterministic tie-break by name
  });
  return out;
}

std::size_t Page::visible_count() const { return visible_ops().size(); }

}  // namespace srm::wb
