#include "wb/whiteboard.h"

#include <algorithm>

namespace srm::wb {

Whiteboard::Whiteboard(SrmAgent& agent) : agent_(&agent) {
  SrmAgent::AppHooks hooks;
  hooks.on_data = [this](const DataName& name, const Payload& payload,
                         bool via_repair) {
    on_data(name, payload, via_repair);
  };
  hooks.on_page_list = [this](const std::vector<PageId>& discovered) {
    for (const PageId& p : discovered) pages_.try_emplace(p, p);
  };
  agent_->set_app_hooks(std::move(hooks));
}

PageId Whiteboard::create_page() {
  const PageId id{agent_->id(), next_page_number_++};
  pages_.try_emplace(id, id);
  view_page(id);
  return id;
}

void Whiteboard::view_page(const PageId& page) {
  const auto [it, inserted] = pages_.try_emplace(page, page);
  agent_->set_current_page(page);
  // Browsing to a page we have no content for: ask the group for its
  // state; the replies drive normal SRM recovery of the drawops.
  if (it->second.op_count() == 0 && page.creator != agent_->id()) {
    agent_->request_page_state(page);
  }
}

void Whiteboard::browse() { agent_->request_page_state(std::nullopt); }

DataName Whiteboard::draw(const PageId& page_id, const DrawOp& op) {
  const DataName name = agent_->send_data(page_id, encode(op));
  // Local echo: our own sends do not loop back through the network.
  page(page_id).apply(name, op);
  if (listener_) listener_(page_id, name, op);
  return name;
}

DataName Whiteboard::erase(const PageId& page_id, const DataName& target) {
  DrawOp del;
  del.type = OpType::kDelete;
  del.target = target;
  return draw(page_id, del);
}

std::vector<PageId> Whiteboard::pages() const {
  std::vector<PageId> out;
  out.reserve(pages_.size());
  for (const auto& [id, p] : pages_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

const Page* Whiteboard::find_page(const PageId& id) const {
  const auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : &it->second;
}

Page& Whiteboard::page(const PageId& id) {
  return pages_.try_emplace(id, id).first->second;
}

void Whiteboard::on_data(const DataName& name, const Payload& payload,
                         bool via_repair) {
  (void)via_repair;
  const auto op = decode(payload);
  if (!op) {
    // Refuse to apply corrupt data rather than spreading it (Sec. III-E).
    ++corrupt_;
    return;
  }
  Page& p = page(name.page);
  if (p.apply(name, *op) && listener_) listener_(name.page, name, *op);
}

}  // namespace srm::wb
