// A whiteboard page: the set of drawops applied to it, with wb's
// consistency rules (Sec. II-C):
//   - a name always refers to the same data; drawops are idempotent,
//   - out-of-order drawops are ordered by (timestamp, name) on render,
//   - deletes reference an earlier drawop by name and are patched after the
//     fact if the delete arrives before its target.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "srm/names.h"
#include "wb/drawop.h"

namespace srm::wb {

class Page {
 public:
  explicit Page(PageId id) : id_(id) {}

  const PageId& id() const { return id_; }

  // Applies one named drawop.  Re-applying the same name is a no-op
  // (idempotence).  Returns true if the op changed page state.
  bool apply(const DataName& name, const DrawOp& op);

  // All drawops ever applied (including deleted ones), by name.
  std::size_t op_count() const { return ops_.size(); }
  bool contains(const DataName& name) const { return ops_.count(name) > 0; }
  std::optional<DrawOp> find(const DataName& name) const;

  // The ops currently visible (not deleted), sorted by (timestamp, name) so
  // that every member renders the same picture regardless of arrival order.
  std::vector<std::pair<DataName, DrawOp>> visible_ops() const;

  // Number of visible (non-delete, non-deleted) ops.
  std::size_t visible_count() const;

  // True if `name` was deleted (possibly before its target ever arrived).
  bool is_deleted(const DataName& name) const {
    return deleted_.count(name) > 0;
  }

 private:
  PageId id_;
  std::map<DataName, DrawOp> ops_;  // ordered for deterministic iteration
  std::set<DataName> deleted_;      // targets of delete ops (maybe pending)
};

}  // namespace srm::wb
