// Drawing operations ("drawops") — wb's application data units (Sec. II-C).
//
// Each member drawing on the whiteboard produces a stream of drawops that
// are timestamped and sequence-numbered relative to the sender.  Drawops are
// idempotent and rendered immediately on receipt; out-of-order arrivals are
// sorted by timestamp.  Non-idempotent operations (delete) reference an
// earlier drawop by name and are "patched after the fact, when the missing
// data arrives".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "srm/messages.h"
#include "srm/names.h"

namespace srm::wb {

enum class OpType : std::uint8_t {
  kLine = 1,
  kRect = 2,
  kCircle = 3,
  kText = 4,
  kDelete = 5,  // removes the drawop named by `target`
};

struct Color {
  std::uint8_t r = 0, g = 0, b = 0;
  friend bool operator==(const Color&, const Color&) = default;
};

struct DrawOp {
  OpType type = OpType::kLine;
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;  // geometry (center+radius for circle)
  Color color;
  std::string text;          // for kText
  double timestamp = 0;      // sender clock at creation (render ordering)
  DataName target;           // for kDelete: the drawop to remove

  friend bool operator==(const DrawOp&, const DrawOp&) = default;
};

// Binary codec for shipping drawops through SRM payloads.  The encoding is
// self-contained and versioned so stored payloads stay decodable.
Payload encode(const DrawOp& op);

// Returns nullopt on malformed input (wrong magic/version or truncation);
// a corrupt payload must never crash the whiteboard (Sec. III-E discusses
// corrupt data spreading "like a virus" — we at least refuse to apply it).
std::optional<DrawOp> decode(const Payload& bytes);

std::string to_string(OpType t);

}  // namespace srm::wb
