#include "wb/drawop.h"

#include <cstring>

namespace srm::wb {

namespace {

constexpr std::uint8_t kMagic = 0xDB;
constexpr std::uint8_t kVersion = 1;

void put_u8(Payload& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Payload& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(Payload& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_f64(Payload& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

class Reader {
 public:
  explicit Reader(const Payload& bytes) : bytes_(&bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_->size()) return false;
    v = (*bytes_)[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_->size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_->size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& v) {
    std::uint32_t len;
    if (!u32(len)) return false;
    if (pos_ + len > bytes_->size()) return false;
    v.assign(reinterpret_cast<const char*>(bytes_->data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return pos_ == bytes_->size(); }

 private:
  const Payload* bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

Payload encode(const DrawOp& op) {
  Payload out;
  out.reserve(80 + op.text.size());
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(op.type));
  put_f64(out, op.x1);
  put_f64(out, op.y1);
  put_f64(out, op.x2);
  put_f64(out, op.y2);
  put_u8(out, op.color.r);
  put_u8(out, op.color.g);
  put_u8(out, op.color.b);
  put_f64(out, op.timestamp);
  put_u32(out, static_cast<std::uint32_t>(op.text.size()));
  out.insert(out.end(), op.text.begin(), op.text.end());
  put_u32(out, op.target.source);
  put_u32(out, op.target.page.creator);
  put_u32(out, op.target.page.number);
  put_u64(out, op.target.seq);
  return out;
}

std::optional<DrawOp> decode(const Payload& bytes) {
  Reader r(bytes);
  std::uint8_t magic, version, type;
  if (!r.u8(magic) || magic != kMagic) return std::nullopt;
  if (!r.u8(version) || version != kVersion) return std::nullopt;
  if (!r.u8(type) || type < 1 ||
      type > static_cast<std::uint8_t>(OpType::kDelete)) {
    return std::nullopt;
  }
  DrawOp op;
  op.type = static_cast<OpType>(type);
  if (!r.f64(op.x1) || !r.f64(op.y1) || !r.f64(op.x2) || !r.f64(op.y2)) {
    return std::nullopt;
  }
  if (!r.u8(op.color.r) || !r.u8(op.color.g) || !r.u8(op.color.b)) {
    return std::nullopt;
  }
  if (!r.f64(op.timestamp)) return std::nullopt;
  if (!r.str(op.text)) return std::nullopt;
  std::uint32_t page_creator, page_number;
  if (!r.u32(op.target.source) || !r.u32(page_creator) ||
      !r.u32(page_number) || !r.u64(op.target.seq)) {
    return std::nullopt;
  }
  op.target.page = PageId{page_creator, page_number};
  if (!r.exhausted()) return std::nullopt;  // trailing garbage: reject
  return op;
}

std::string to_string(OpType t) {
  switch (t) {
    case OpType::kLine:
      return "line";
    case OpType::kRect:
      return "rect";
    case OpType::kCircle:
      return "circle";
    case OpType::kText:
      return "text";
    case OpType::kDelete:
      return "delete";
  }
  return "unknown";
}

}  // namespace srm::wb
