// Session recording and playback — the "generic recording and playback
// tools" role of the toolkit the paper sketches in Sec. IX-D.
//
// A Recorder subscribes to a whiteboard and logs every applied drawop with
// the virtual time it arrived.  A recording can be replayed into any other
// whiteboard (live, re-multicasting each drawop on the same schedule) or
// applied instantly to rebuild the final picture.  Because ADU names are
// persistent and ops idempotent, replaying into a session that already saw
// some of the traffic is harmless.
#pragma once

#include <vector>

#include "sim/event_queue.h"
#include "wb/whiteboard.h"

namespace srm::wb {

struct RecordedOp {
  sim::Time at = 0.0;  // virtual time the op was applied locally
  PageId page;
  DataName name;
  DrawOp op;
};

class Recorder {
 public:
  // Starts recording immediately.  The recorder replaces the whiteboard's
  // listener; a previously installed listener keeps being invoked.
  explicit Recorder(Whiteboard& board);

  void stop();  // detaches; the recording stays available

  const std::vector<RecordedOp>& recording() const { return log_; }
  std::size_t size() const { return log_.size(); }
  // Duration from first to last recorded op (0 for < 2 ops).
  sim::Time duration() const;

  // Replays the recording into `target` as fresh drawops authored by the
  // target's member, on the original page, preserving inter-op spacing
  // scaled by `time_scale` (2.0 = half speed).  Delete ops whose target
  // was renamed by the replay are re-targeted accordingly.
  void replay_into(Whiteboard& target, sim::EventQueue& queue,
                   double time_scale = 1.0) const;

  // Applies the recording instantly to a local page model (no
  // transmission): rebuilds the final picture for offline inspection.
  Page snapshot(const PageId& page) const;

 private:
  Whiteboard* board_;
  Whiteboard::DrawOpListener previous_;
  std::vector<RecordedOp> log_;
  bool recording_ = true;
};

}  // namespace srm::wb
