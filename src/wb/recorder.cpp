#include "wb/recorder.h"

#include <map>
#include <memory>

namespace srm::wb {

Recorder::Recorder(Whiteboard& board) : board_(&board) {
  // There is no listener getter on Whiteboard by design (one listener);
  // recorders chain manually through set_listener's replacement.
  previous_ = nullptr;
  board_->set_listener([this](const PageId& page, const DataName& name,
                              const DrawOp& op) {
    if (recording_) {
      log_.push_back(RecordedOp{board_->agent().queue().now(), page, name, op});
    }
    if (previous_) previous_(page, name, op);
  });
}

void Recorder::stop() { recording_ = false; }

sim::Time Recorder::duration() const {
  if (log_.size() < 2) return 0.0;
  return log_.back().at - log_.front().at;
}

void Recorder::replay_into(Whiteboard& target, sim::EventQueue& queue,
                           double time_scale) const {
  if (log_.empty()) return;
  const sim::Time t0 = log_.front().at;
  // Names are re-authored by the target member; deletes that referenced a
  // recorded op must point at its replayed name.  The mapping is built as
  // the replay proceeds (recordings are time-ordered, and a delete always
  // follows its target in wb).
  auto renames = std::make_shared<std::map<DataName, DataName>>();
  for (const RecordedOp& rec : log_) {
    const sim::Time delay = (rec.at - t0) * time_scale;
    queue.schedule_after(delay, [&target, rec, renames] {
      DrawOp op = rec.op;
      if (op.type == OpType::kDelete) {
        const auto it = renames->find(op.target);
        if (it != renames->end()) op.target = it->second;
      }
      const DataName fresh = target.draw(rec.page, op);
      (*renames)[rec.name] = fresh;
    });
  }
}

Page Recorder::snapshot(const PageId& page) const {
  Page out(page);
  for (const RecordedOp& rec : log_) {
    if (rec.page == page) out.apply(rec.name, rec.op);
  }
  return out;
}

}  // namespace srm::wb
