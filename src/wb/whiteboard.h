// The wb application over the SRM framework (Sec. II-C, III-E).
//
// Whiteboard supplies the four application-specific pieces the framework
// asks for (Sec. II-B): a namespace (pages of drawops), participation in
// the bandwidth policy (the agent's token bucket), send priorities (current
// page recovery > new data > old pages, via the agent's priority bands),
// and delivery semantics (idempotent drawops, timestamp-ordered rendering).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "srm/agent.h"
#include "wb/drawop.h"
#include "wb/page.h"

namespace srm::wb {

class Whiteboard {
 public:
  // Attaches to an SrmAgent.  The whiteboard installs itself as the agent's
  // application hooks; one agent serves one whiteboard.
  explicit Whiteboard(SrmAgent& agent);

  // Creates a new page owned by this member and switches to it.
  PageId create_page();

  // Switches the page being viewed (affects session reporting and repair
  // priorities via the agent).  If this member has no drawops for the page
  // yet, a page request fetches its state from the group (Sec. III-A).
  void view_page(const PageId& page);
  const PageId& current_page() const { return agent_->current_page(); }

  // Asks the group which pages exist (late-join browsing); discovered pages
  // appear in pages() once replies arrive.
  void browse();

  // Draws on a page: encodes and multicasts the drawop, applies it locally.
  // Returns the drawop's persistent name.
  DataName draw(const PageId& page, const DrawOp& op);

  // Deletes a previously drawn op (Sec. II-C: changes are effected by new
  // drawops, never by mutating existing names).
  DataName erase(const PageId& page, const DataName& target);

  // Pages known to this member (locally created or learned from the group).
  std::vector<PageId> pages() const;
  const Page* find_page(const PageId& id) const;
  Page& page(const PageId& id);

  // Invoked whenever a drawop (own or remote, original or repaired) is
  // applied to a page.
  using DrawOpListener =
      std::function<void(const PageId&, const DataName&, const DrawOp&)>;
  void set_listener(DrawOpListener listener) {
    listener_ = std::move(listener);
  }

  SrmAgent& agent() { return *agent_; }

  // Count of malformed payloads refused (integrity guard, Sec. III-E).
  std::size_t corrupt_payloads() const { return corrupt_; }

 private:
  void on_data(const DataName& name, const Payload& payload, bool via_repair);

  SrmAgent* agent_;
  std::unordered_map<PageId, Page> pages_;
  std::uint32_t next_page_number_ = 0;
  DrawOpListener listener_;
  std::size_t corrupt_ = 0;
};

}  // namespace srm::wb
