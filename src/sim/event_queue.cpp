#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace srm::sim {

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(slot_, generation_);
}

bool EventHandle::cancel() {
  return queue_ != nullptr && queue_->handle_cancel(slot_, generation_);
}

bool EventQueue::handle_pending(std::uint32_t index,
                                std::uint32_t generation) const {
  if (index >= slot_count_) return false;
  const Slot& s = slot(index);
  return s.live && s.generation == generation;
}

bool EventQueue::handle_cancel(std::uint32_t index, std::uint32_t generation) {
  if (!handle_pending(index, generation)) return false;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimCancel;
    ev.t = now_;
    ev.a = index;
    ev.b = generation;
    tracer_->emit(ev);
  }
  release_slot(index);
  --live_;
  // The heap entry stays behind as a tombstone; its generation no longer
  // matches the slot's, so prune_top()/pop skip it lazily.
  return true;
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  if ((slot_count_ & (kSlabSize - 1)) == 0) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.live = false;
  ++s.generation;       // invalidates outstanding handles and heap tombstones
  s.fn = nullptr;       // destroy the closure (and anything it keeps alive)
  free_slots_.push_back(index);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_top() {
  const std::size_t n = heap_.size() - 1;
  heap_[0] = heap_[n];
  heap_.pop_back();
  if (n > 1) sift_down(0);
}

EventHandle EventQueue::schedule_at(Time t, std::function<void()> fn) {
  return schedule_at_seq(t, next_seq_++, std::move(fn));
}

EventHandle EventQueue::schedule_at_seq(Time t, std::uint64_t seq,
                                        std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty function");
  }
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.live = true;
  heap_.push_back(HeapEntry{t, seq, index, s.generation});
  sift_up(heap_.size() - 1);
  ++live_;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimSchedule;
    ev.t = now_;
    ev.a = index;
    ev.b = s.generation;
    ev.x = t;
    tracer_->emit(ev);
  }
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_after(Time dt, std::function<void()> fn) {
  if (dt < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_after: negative delay");
  }
  return schedule_at(now_ + dt, std::move(fn));
}

bool EventQueue::prune_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& s = slot(top.slot);
    if (s.live && s.generation == top.generation) return true;
    pop_top();
  }
  return false;
}

void EventQueue::run_top() {
  const HeapEntry top = heap_.front();
  pop_top();
  now_ = top.when;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimFire;
    ev.t = now_;
    ev.a = top.slot;
    ev.b = top.generation;
    tracer_->emit(ev);
  }
  // Move the closure out and release the slot before running, so the event
  // body can schedule new events (possibly reusing this very slot).
  std::function<void()> fn = std::move(slot(top.slot).fn);
  release_slot(top.slot);
  --live_;
  ++executed_total_;
  fn();
}

bool EventQueue::pop_and_run_one() {
  if (!prune_top()) return false;
  run_top();
  return true;
}

std::size_t EventQueue::run() {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && pop_and_run_one()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time t_end) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && prune_top() && heap_.front().when <= t_end) {
    run_top();
    ++executed;
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run_before(Time t_end) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && prune_top() && heap_.front().when < t_end) {
    run_top();
    ++executed;
  }
  return executed;
}

Time EventQueue::next_event_time() {
  if (!prune_top()) return std::numeric_limits<Time>::infinity();
  return heap_.front().when;
}

void EventQueue::advance_to(Time t) {
  if (t <= now_) return;
  if (prune_top() && heap_.front().when < t) {
    throw std::logic_error(
        "EventQueue::advance_to: pending event earlier than target time");
  }
  now_ = t;
}

std::size_t EventQueue::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && executed < max_events && pop_and_run_one()) ++executed;
  return executed;
}

void EventQueue::reset() {
  // Release every still-live slot so outstanding handles report
  // pending() == false (their stored generation no longer matches).
  for (const HeapEntry& e : heap_) {
    Slot& s = slot(e.slot);
    if (s.live && s.generation == e.generation) release_slot(e.slot);
  }
  heap_.clear();
  live_ = 0;
  now_ = 0.0;
  next_seq_ = 0;
  stopped_ = false;
}

}  // namespace srm::sim
