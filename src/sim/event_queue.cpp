#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace srm::sim {

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  state_->cancelled = true;
  return true;
}

EventHandle EventQueue::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty function");
  }
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{t, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

EventHandle EventQueue::schedule_after(Time dt, std::function<void()> fn) {
  if (dt < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_after: negative delay");
  }
  return schedule_at(now_ + dt, std::move(fn));
}

bool EventQueue::pop_and_run_one() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the event is copied out, then popped.
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;
    now_ = ev.when;
    ev.state->fired = true;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run() {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && pop_and_run_one()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time t_end) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= t_end) {
    if (pop_and_run_one()) ++executed;
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && executed < max_events && pop_and_run_one()) ++executed;
  return executed;
}

void EventQueue::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  next_seq_ = 0;
  stopped_ = false;
}

}  // namespace srm::sim
