#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace srm::sim {

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(slot_, generation_);
}

bool EventHandle::cancel() {
  return queue_ != nullptr && queue_->handle_cancel(slot_, generation_);
}

bool EventQueue::handle_pending(std::uint32_t index,
                                std::uint32_t generation) const {
  if (index >= slot_count_) return false;
  const Slot& s = slot(index);
  return s.live && s.generation == generation;
}

bool EventQueue::handle_cancel(std::uint32_t index, std::uint32_t generation) {
  if (!handle_pending(index, generation)) return false;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimCancel;
    ev.t = now_;
    ev.a = index;
    ev.b = generation;
    tracer_->emit(ev);
  }
  release_slot(index);
  --live_;
  // The heap entry stays behind as a tombstone; its generation no longer
  // matches the slot's, so prune_top()/pop skip it lazily.
  return true;
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  if ((slot_count_ & (kSlabSize - 1)) == 0) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.live = false;
  ++s.generation;       // invalidates outstanding handles and heap tombstones
  s.fn = nullptr;       // destroy the closure (and anything it keeps alive)
  free_slots_.push_back(index);
}

EventHandle EventQueue::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("EventQueue::schedule_at: empty function");
  }
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.live = true;
  heap_.push_back(HeapEntry{t, next_seq_++, index, s.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimSchedule;
    ev.t = now_;
    ev.a = index;
    ev.b = s.generation;
    ev.x = t;
    tracer_->emit(ev);
  }
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_after(Time dt, std::function<void()> fn) {
  if (dt < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_after: negative delay");
  }
  return schedule_at(now_ + dt, std::move(fn));
}

bool EventQueue::prune_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& s = slot(top.slot);
    if (s.live && s.generation == top.generation) return true;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  return false;
}

bool EventQueue::pop_and_run_one() {
  if (!prune_top()) return false;
  const HeapEntry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  now_ = top.when;
  if (tracer_->wants(trace::Category::kSim)) {
    trace::Event ev;
    ev.type = trace::EventType::kSimFire;
    ev.t = now_;
    ev.a = top.slot;
    ev.b = top.generation;
    tracer_->emit(ev);
  }
  // Move the closure out and release the slot before running, so the event
  // body can schedule new events (possibly reusing this very slot).
  std::function<void()> fn = std::move(slot(top.slot).fn);
  release_slot(top.slot);
  --live_;
  ++executed_total_;
  fn();
  return true;
}

std::size_t EventQueue::run() {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && pop_and_run_one()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(Time t_end) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && prune_top() && heap_.front().when <= t_end) {
    if (pop_and_run_one()) ++executed;
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t EventQueue::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t executed = 0;
  while (!stopped_ && executed < max_events && pop_and_run_one()) ++executed;
  return executed;
}

void EventQueue::reset() {
  // Release every still-live slot so outstanding handles report
  // pending() == false (their stored generation no longer matches).
  for (const HeapEntry& e : heap_) {
    Slot& s = slot(e.slot);
    if (s.live && s.generation == e.generation) release_slot(e.slot);
  }
  heap_.clear();
  live_ = 0;
  now_ = 0.0;
  next_seq_ = 0;
  stopped_ = false;
}

}  // namespace srm::sim
