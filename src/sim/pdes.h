// Conservative parallel discrete-event kernel (region-partitioned PDES).
//
// One giant scenario is split into R regions, each owning a private
// EventQueue; worker threads execute regions concurrently inside safe
// windows derived from a lookahead bound, and cross-region effects travel
// through single-writer mailboxes that are drained in a deterministic
// (time, source region, post order) order between windows.  The result is
// bit-identical for every worker count: threads only decide *who* executes
// a region's window, never *what* executes or in which order.
//
// Protocol (conservative with per-region asynchronous windows — a
// null-message-style lower-bound exchange evaluated at each barrier):
//   floors F_s = region s's next event time;  m_g = next global event time
//   window W_r = min(m_g,
//                    min over s != r of F_s + D(s, r),
//                    F_r + RT_r)   where RT_r = min over s != r of
//                                             D(r, s) + D(s, r)
//   1. drain mailboxes + per-region drain hooks (deterministic merge)
//   2. if the global queue holds the earliest event, line every region
//      clock up to it and run the global events serially (a "global phase":
//      topology mutation, fault injection, harness control — anything that
//      must see a quiescent world)
//   3. otherwise run every region's events with timestamp < W_r in parallel
//      — each region gets its *own* bound, so a region far (in delay) from
//      the laggard may run deep ahead instead of idling at a global window
//   4. barrier; repeat until every queue is empty
//
// D(s, r) is a lower bound on the timestamp increment of any region-s to
// region-r message: by default the uniform `lookahead`, or the per-pair
// matrix installed by set_region_distances() (the metric closure of
// min cut-link delays over the static topology, so multi-hop relays are
// bounded too).  Safety argument: every future message into r originates
// from (a) a region event not yet executed — some region s at time >= F_s,
// arriving stamped >= F_s + D(s, r) >= W_r (for the network layer this
// holds structurally: any path into another region crosses the
// inter-region cut, and floating-point addition of non-negative delays is
// monotone); (b) a global event at >= m_g >= W_r; or (c) an *echo* of r's
// own window — an event of r at t >= F_r whose mail wakes a peer whose
// consequent mail returns, stamped >= t + D(r, s) + D(s, r) >= F_r + RT_r
// >= W_r (relays through more regions are no earlier, by the triangle
// inequality of the metric closure; echoes spanning later barriers are
// covered by (a), since the intermediate mail raises those barriers'
// floors).  So nothing can arrive inside the window being executed and
// intra-window execution needs no synchronization at all.  Progress: the
// globally-earliest region's window strictly exceeds its floor (D > 0,
// RT > 0, and m_g > its floor on the window branch), so every round
// executes at least one event.
//
// Determinism rules (the "merged statistics stay bit-identical" argument):
//   - every region queue orders its events by (time, region-local seq), and
//     region-local execution is single-threaded, so a region is a
//     deterministic function of its inputs;
//   - windows are pure functions of the barrier-snapshot floors and the
//     static distance matrix, computed by the coordinator alone — worker
//     count never changes any W_r, only who executes each region;
//   - mailbox drains sort by (time, source region, per-source post counter),
//     all deterministic, and allocate destination seqs in that order;
//   - global phases run before region events carrying the same timestamp
//     (global events are scheduled by setup/fault code whose sequential-
//     kernel seqs predate the run, so this matches the common case);
//   - worker assignment is invisible: a region's window is executed by
//     exactly one worker, and windows are separated by barriers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "sim/event_queue.h"

namespace srm::sim {

class ParallelKernel {
 public:
  // Lane index used by post() for messages originating in a global phase
  // (no lookahead requirement; they are drained before the next window).
  static constexpr std::size_t kGlobalRegion =
      std::numeric_limits<std::size_t>::max();

  struct RunStats {
    std::uint64_t region_events = 0;  // events executed inside windows
    std::uint64_t global_events = 0;  // events executed in global phases
    std::uint64_t windows = 0;        // parallel windows executed
    std::uint64_t global_phases = 0;  // serialized phases executed
    std::uint64_t messages = 0;       // cross-region mail drained
  };

  // `lookahead` is the minimum timestamp increment of any region-to-region
  // message (for topologies: the minimum inter-region link delay).  It must
  // be > 0 unless regions == 1; +infinity is fine (fully independent
  // regions).
  ParallelKernel(std::size_t regions, double lookahead);
  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;

  std::size_t region_count() const { return queues_.size(); }
  double lookahead() const { return lookahead_; }

  // Installs the per-pair lower-bound matrix D used by the asynchronous
  // windows: d[s][r] bounds from below the timestamp increment of any
  // region-s to region-r message (+infinity for pairs that never talk).
  // Must be region_count() x region_count() with every off-diagonal entry
  // >= lookahead (the uniform bound it refines).  Optional: without it
  // every pair falls back to `lookahead`.
  void set_region_distances(std::vector<std::vector<double>> d);

  EventQueue& region_queue(std::size_t r) { return *queues_.at(r); }
  // Serialized control queue: fault injection, harness round driving, and
  // any other event that must observe a quiescent world belongs here.
  EventQueue& global_queue() { return global_; }

  // Latest clock over all queues.  Meaningful between runs (run() lines
  // every clock up before returning).
  Time now() const;

  // Posts fn to execute in region `to`'s queue at absolute time `when`.
  // From a region event, `from` is the executing region and `when` must be
  // >= that region's clock + the pair's delay lower bound (asserted); from
  // a global phase pass kGlobalRegion, where any `when` >= the current
  // global time is legal.  Mail is delivered at the next barrier, so a
  // region posting to *itself* must stamp past its own current window
  // (region events that want same-window follow-ups should schedule_at on
  // their own queue directly instead).
  // At most one region executes at a time per `from`, so each (to, from)
  // lane has a single writer and posting is synchronization-free.
  void post(std::size_t from, std::size_t to, Time when,
            std::function<void()> fn);

  // Registers a hook called for region r on every drain pass (between
  // windows, with no region executing).  Subsystems with their own typed
  // cross-region payloads (the multicast network's remote delivery chains)
  // use this to merge and schedule them deterministically.
  void set_drain_hook(std::size_t r, std::function<void()> hook);

  // Runs until every queue is empty, or until the next event would be later
  // than t_end (events at exactly t_end still run; every clock is then
  // advanced to t_end, mirroring EventQueue::run_until).  `threads` is the
  // worker count: 1 executes regions serially on the calling thread, N > 1
  // spawns min(N, regions) workers.  The executed event sequence is
  // identical for every `threads` value.
  RunStats run(unsigned threads,
               Time t_end = std::numeric_limits<Time>::infinity());

  // Total events ever executed across all queues (global included).
  std::uint64_t executed_events() const;

  // Cumulative stats over every run() call.
  const RunStats& total_stats() const { return total_; }

 private:
  struct Mail {
    Time when;
    std::size_t from_lane;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  // Drains lanes + hooks for every region; returns messages drained.
  std::uint64_t drain_all();
  // Lower bound on the timestamp increment of from -> to mail.
  double min_delay(std::size_t from, std::size_t to) const {
    return (dist_.empty() || from == to) ? lookahead_ : dist_[from][to];
  }

  double lookahead_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  EventQueue global_;
  // dist_[s][r]: per-pair delay lower bound (empty = uniform lookahead_).
  std::vector<std::vector<double>> dist_;
  // lanes_[to][from]: pending mail, appended by `from`'s worker only.
  // The from dimension has region_count() + 1 entries; the last is the
  // global-phase lane.
  std::vector<std::vector<std::vector<Mail>>> lanes_;
  std::vector<std::uint64_t> lane_seq_;  // per source lane post counter
  std::vector<std::function<void()>> drain_hooks_;
  // Per-destination merge buffers, reused across drains so steady-state
  // drains never reallocate (capacity tracks each region's mail volume).
  std::vector<std::vector<Mail>> drain_scratch_;
  RunStats total_;
};

}  // namespace srm::sim
