// Discrete-event simulation kernel.
//
// The simulator advances a virtual clock from event to event; there is no
// relation to wall-clock time.  Time is measured in seconds of simulated
// time; the paper normalizes link delays to 1 "unit", which we represent as
// 1.0 second unless a scenario specifies otherwise.
//
// Events are closures scheduled at absolute times.  Scheduling returns an
// EventHandle that can cancel the event (used for SRM's suppressible
// request/repair timers).  Events at equal times fire in scheduling order
// (FIFO tie-break), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace srm::sim {

using Time = double;  // seconds of virtual time

// Handle to a scheduled event.  Default-constructed handles are inert.
// Cancelling an already-fired or already-cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;
  // Cancels the event if still pending; returns true if it was pending.
  bool cancel();

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  // Schedules fn at absolute virtual time t (must be >= now()).
  EventHandle schedule_at(Time t, std::function<void()> fn);
  // Schedules fn after dt seconds of virtual time (dt >= 0).
  EventHandle schedule_after(Time dt, std::function<void()> fn);

  // Runs events until the queue is empty or stop() is called.
  // Returns the number of events executed.
  std::size_t run();
  // Runs events with timestamp <= t_end, then sets now() to t_end.
  std::size_t run_until(Time t_end);
  // Runs at most max_events events.
  std::size_t run_steps(std::size_t max_events);

  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  // Clears all pending events (they are treated as cancelled) and resets the
  // clock to zero.  Used between independent simulation rounds.
  void reset();

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_one();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace srm::sim
