// Discrete-event simulation kernel.
//
// The simulator advances a virtual clock from event to event; there is no
// relation to wall-clock time.  Time is measured in seconds of simulated
// time; the paper normalizes link delays to 1 "unit", which we represent as
// 1.0 second unless a scenario specifies otherwise.
//
// Events are closures scheduled at absolute times.  Scheduling returns an
// EventHandle that can cancel the event (used for SRM's suppressible
// request/repair timers).  Events at equal times fire in scheduling order
// (FIFO tie-break), which keeps runs deterministic.
//
// Implementation: events live in a slab-allocated pool of stable Slots
// (closure storage is reused across events, so a schedule/cancel/reschedule
// cycle costs no heap churn beyond what the closure itself needs).  The
// ready queue is a binary heap of small POD entries.  Handles are
// generation-stamped (queue pointer, slot index, generation): cancellation
// marks the slot free and bumps its generation, so stale handles — including
// every handle outstanding across reset() — become inert without any
// shared-ownership bookkeeping.  A handle must not be used after its
// EventQueue has been destroyed (in practice handles are owned by agents
// that the queue outlives, e.g. inside a SimSession).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trace/trace.h"

namespace srm::sim {

using Time = double;  // seconds of virtual time

class EventQueue;

// Handle to a scheduled event.  Default-constructed handles are inert.
// Cancelling an already-fired or already-cancelled event is a no-op.
// Copies share the underlying event: cancelling through one copy makes
// every copy report pending() == false.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;
  // Cancels the event if still pending; returns true if it was pending.
  bool cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time now() const { return now_; }

  // Schedules fn at absolute virtual time t (must be >= now()).
  EventHandle schedule_at(Time t, std::function<void()> fn);
  // Schedules fn after dt seconds of virtual time (dt >= 0).
  EventHandle schedule_after(Time dt, std::function<void()> fn);

  // Reserves n consecutive FIFO tie-break sequence numbers and returns the
  // first.  Together with schedule_at_seq this lets a caller fix the
  // tie-break order of a batch of future events up front and insert each
  // entry lazily (the network's per-multicast delivery chains): pop order
  // is the strict total order (when, seq) either way, so a lazily inserted
  // entry fires exactly when the eagerly scheduled one would have.
  std::uint64_t allocate_seqs(std::uint64_t n) {
    const std::uint64_t first = next_seq_;
    next_seq_ += n;
    return first;
  }
  // Schedules fn at time t (>= now()) with a sequence number previously
  // reserved via allocate_seqs().  Each reserved seq may be used at most
  // once; reusing one breaks the queue's strict ordering.
  EventHandle schedule_at_seq(Time t, std::uint64_t seq,
                              std::function<void()> fn);

  // Runs events until the queue is empty or stop() is called.
  // Returns the number of events executed.
  std::size_t run();
  // Runs events with timestamp <= t_end, then sets now() to t_end.
  std::size_t run_until(Time t_end);
  // Runs events with timestamp strictly < t_end and leaves now() at the
  // last executed event (NOT t_end).  This is the conservative-PDES window
  // primitive: a region executes its safe window [floor, t_end) without
  // claiming to have reached t_end, so the merged end-of-run clock equals
  // the last event time the sequential kernel would report.
  std::size_t run_before(Time t_end);
  // Runs at most max_events events.
  std::size_t run_steps(std::size_t max_events);

  // Timestamp of the earliest pending event, or +infinity when empty.
  // Lazily prunes cancelled tombstones off the heap top.
  Time next_event_time();

  // Moves the clock forward to t (no-op if now() >= t) without executing
  // anything.  Requires that no pending event is earlier than t; used by the
  // PDES coordinator to line region clocks up before a serialized global
  // phase and at end of run.
  void advance_to(Time t);

  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  bool empty() const { return live_ == 0; }
  std::size_t pending_events() const { return live_; }

  // Total events executed over the queue's lifetime (not reset by reset());
  // benches use this for events/s accounting.
  std::uint64_t executed_events() const { return executed_total_; }

  // Clears all pending events (they are treated as cancelled: outstanding
  // EventHandles report pending() == false) and resets the clock to zero.
  // Used between independent simulation rounds.
  void reset();

  // Structured tracing (sim category: sched/fire/cancel with slot+generation
  // handle ids).  Never pass nullptr; pass &trace::Tracer::null() to detach.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

 private:
  friend class EventHandle;

  // Closure storage.  Slots live in fixed-size slabs so they never move;
  // a slot's generation is bumped every time it is released, which
  // invalidates any handle (and any stale heap entry) still pointing at it.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 0;
    bool live = false;  // scheduled and not yet fired/cancelled
  };
  static constexpr std::uint32_t kSlabBits = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  // Heap entries are small PODs: sifting moves 24 bytes, never a closure.
  // The heap is 4-ary rather than binary: half the sift depth, and the four
  // children of a node share a cache line pair, which matters when a burst
  // of multicast deliveries holds tens of thousands of pending events.
  // Pop order is the strict total order (when, seq) either way, so the
  // simulation executes identically regardless of heap arity.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  Slot& slot(std::uint32_t index) {
    return slabs_[index >> kSlabBits][index & (kSlabSize - 1)];
  }
  const Slot& slot(std::uint32_t index) const {
    return slabs_[index >> kSlabBits][index & (kSlabSize - 1)];
  }
  bool handle_pending(std::uint32_t index, std::uint32_t generation) const;
  bool handle_cancel(std::uint32_t index, std::uint32_t generation);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  // Removes the top heap entry (live or tombstone) and restores heap order.
  void pop_top();

  // Drops cancelled entries off the top; returns false if no live event.
  bool prune_top();
  // Fires the top event; requires prune_top() to have returned true.
  void run_top();
  bool pop_and_run_one();

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t slot_count_ = 0;  // slots ever allocated (all slabs)
  std::size_t live_ = 0;          // scheduled minus cancelled/fired
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_total_ = 0;
  bool stopped_ = false;
  trace::Tracer* tracer_ = &trace::Tracer::null();
};

}  // namespace srm::sim
