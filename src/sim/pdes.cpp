#include "sim/pdes.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace srm::sim {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();
}  // namespace

ParallelKernel::ParallelKernel(std::size_t regions, double lookahead)
    : lookahead_(lookahead) {
  if (regions == 0) {
    throw std::invalid_argument("ParallelKernel: need at least one region");
  }
  if (regions > 1 && !(lookahead > 0.0)) {
    throw std::invalid_argument(
        "ParallelKernel: multi-region kernel requires positive lookahead");
  }
  // One region has no cross-region constraint: an unbounded window keeps
  // the main loop from spinning on W == region floor when lookahead == 0.
  if (regions == 1) lookahead_ = kInf;
  queues_.reserve(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    queues_.push_back(std::make_unique<EventQueue>());
  }
  lanes_.assign(regions, std::vector<std::vector<Mail>>(regions + 1));
  lane_seq_.assign(regions + 1, 0);
  drain_hooks_.assign(regions, {});
  drain_scratch_.resize(regions);
}

void ParallelKernel::set_region_distances(std::vector<std::vector<double>> d) {
  const std::size_t regions = queues_.size();
  if (d.size() != regions) {
    throw std::invalid_argument(
        "ParallelKernel::set_region_distances: matrix is not RxR");
  }
  for (std::size_t s = 0; s < regions; ++s) {
    if (d[s].size() != regions) {
      throw std::invalid_argument(
          "ParallelKernel::set_region_distances: matrix is not RxR");
    }
    for (std::size_t r = 0; r < regions; ++r) {
      // An off-diagonal entry below the uniform lookahead would claim mail
      // can arrive faster than the partition's own cut bound — a wiring bug.
      if (s != r && !(d[s][r] >= lookahead_) && regions > 1) {
        throw std::invalid_argument(
            "ParallelKernel::set_region_distances: entry below lookahead");
      }
    }
  }
  dist_ = std::move(d);
}

Time ParallelKernel::now() const {
  Time t = global_.now();
  for (const auto& q : queues_) t = std::max(t, q->now());
  return t;
}

void ParallelKernel::post(std::size_t from, std::size_t to, Time when,
                          std::function<void()> fn) {
  const std::size_t lane = (from == kGlobalRegion) ? queues_.size() : from;
  assert(to < queues_.size());
  assert(lane <= queues_.size());
  // The conservative-safety contract: a region may only reach another
  // region at least its pair lower bound into the future.  (Floating-point
  // addition of non-negative delays is monotone, so path-delay sums that
  // include an inter-region link satisfy this exactly, not just
  // approximately.)
  assert(from == kGlobalRegion ||
         when >= queues_[from]->now() + min_delay(from, to));
  lanes_[to][lane].push_back(Mail{when, lane, lane_seq_[lane]++, std::move(fn)});
}

void ParallelKernel::set_drain_hook(std::size_t r, std::function<void()> hook) {
  drain_hooks_.at(r) = std::move(hook);
}

std::uint64_t ParallelKernel::drain_all() {
  std::uint64_t drained = 0;
  for (std::size_t to = 0; to < queues_.size(); ++to) {
    std::vector<Mail>& scratch = drain_scratch_[to];
    scratch.clear();  // keeps capacity: steady state never reallocates
    std::size_t incoming = 0;
    for (const std::vector<Mail>& lane : lanes_[to]) incoming += lane.size();
    if (incoming != 0) {
      scratch.reserve(incoming);
      for (std::vector<Mail>& lane : lanes_[to]) {
        for (Mail& m : lane) scratch.push_back(std::move(m));
        lane.clear();
      }
      // Deterministic merge order: (arrival time, source lane, post order).
      // Destination seqs are allocated in this order, so the region's
      // execution is independent of which worker produced each message.
      std::sort(scratch.begin(), scratch.end(),
                [](const Mail& a, const Mail& b) {
                  if (a.when != b.when) return a.when < b.when;
                  if (a.from_lane != b.from_lane) return a.from_lane < b.from_lane;
                  return a.seq < b.seq;
                });
      for (Mail& m : scratch) {
        queues_[to]->schedule_at(m.when, std::move(m.fn));
        ++drained;
      }
      scratch.clear();
    }
    if (drain_hooks_[to]) drain_hooks_[to]();
  }
  return drained;
}

std::uint64_t ParallelKernel::executed_events() const {
  std::uint64_t n = global_.executed_events();
  for (const std::unique_ptr<EventQueue>& q : queues_) {
    n += q->executed_events();
  }
  return n;
}

ParallelKernel::RunStats ParallelKernel::run(unsigned threads, Time t_end) {
  RunStats stats;
  const std::size_t region_count = queues_.size();
  const unsigned workers = std::min<unsigned>(
      std::max(threads, 1u), static_cast<unsigned>(region_count));

  // Worker pool for this run.  Coordination is a round counter published
  // under `mu`: workers sleep until the round advances, claim regions off
  // the shared atomic cursor, execute each claimed region's window on the
  // calling worker's thread, and the last one out signals the coordinator.
  // All queue state crosses threads only through `mu`, which gives the
  // happens-before edges ThreadSanitizer (and the hardware) need.  The
  // per-region window bounds in `win` are written by the coordinator alone,
  // strictly before the round advances (same mutex), so workers read them
  // race-free without holding the lock.
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t round = 0;
  std::vector<Time> win(region_count, 0.0);
  std::atomic<std::size_t> next_region{0};
  std::atomic<std::uint64_t> window_events{0};
  unsigned active = 0;
  bool shutdown = false;
  std::vector<std::thread> pool;

  if (workers > 1) {
    pool.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      pool.emplace_back([&] {
        std::uint64_t seen = 0;
        for (;;) {
          {
            std::unique_lock<std::mutex> lk(mu);
            cv_work.wait(lk, [&] { return shutdown || round != seen; });
            if (shutdown) return;
            seen = round;
          }
          std::uint64_t n = 0;
          for (;;) {
            const std::size_t r =
                next_region.fetch_add(1, std::memory_order_relaxed);
            if (r >= region_count) break;
            n += queues_[r]->run_before(win[r]);
          }
          window_events.fetch_add(n, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lk(mu);
            if (--active == 0) cv_done.notify_one();
          }
        }
      });
    }
  }

  auto run_windows = [&]() -> std::uint64_t {
    if (workers <= 1) {
      std::uint64_t n = 0;
      for (std::size_t r = 0; r < region_count; ++r) {
        n += queues_[r]->run_before(win[r]);
      }
      return n;
    }
    window_events.store(0, std::memory_order_relaxed);
    next_region.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu);
      active = workers;
      ++round;
    }
    cv_work.notify_all();
    {
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return active == 0; });
    }
    return window_events.load(std::memory_order_relaxed);
  };

  // Any coordinator-side throw (a drain hook surfacing a scheduling bug,
  // say) must still join the pool: a joinable std::thread destructor calls
  // std::terminate and would eat the real diagnostic.
  auto stop_pool = [&] {
    if (pool.empty()) return;
    {
      std::lock_guard<std::mutex> lk(mu);
      shutdown = true;
    }
    cv_work.notify_all();
    for (std::thread& t : pool) t.join();
    pool.clear();
  };

  // Minimum round-trip bound per region: the earliest time an echo of
  // region r's own execution (mail out, remote handling, mail back —
  // possibly relayed, which the metric closure makes no shorter) can
  // return.  Bounds how far r may run past its own floor in one round;
  // the mail it emits only lands at the next barrier, where the floors
  // pick it up.
  std::vector<double> rt(region_count, kInf);
  for (std::size_t r = 0; r < region_count; ++r) {
    for (std::size_t s = 0; s < region_count; ++s) {
      if (s == r) continue;
      rt[r] = std::min(rt[r], min_delay(r, s) + min_delay(s, r));
    }
  }

  std::vector<Time> floors(region_count, kInf);
  try {
  for (;;) {
    stats.messages += drain_all();
    Time m_r = kInf;
    for (std::size_t r = 0; r < region_count; ++r) {
      floors[r] = queues_[r]->next_event_time();
      m_r = std::min(m_r, floors[r]);
    }
    const Time m_g = global_.next_event_time();
    const Time floor = std::min(m_r, m_g);
    if (floor == kInf || floor > t_end) break;
    if (m_g <= m_r) {
      // Serialized global phase: ties go to the global queue, so control
      // events (fault cuts, harness round drivers) always observe region
      // state strictly before timestamp m_g, and every region clock reads
      // m_g while they execute.
      for (const std::unique_ptr<EventQueue>& q : queues_) {
        q->advance_to(m_g);
      }
      stats.global_events += global_.run_until(m_g);
      ++stats.global_phases;
      continue;  // global events may have posted mail: drain before windows
    }
    // Asynchronous windows: each region is bounded only by the floors of
    // regions that can actually reach it (plus the global queue), not by
    // the global minimum — a pure function of the barrier snapshot, so
    // every worker count executes the same round sequence.
    for (std::size_t r = 0; r < region_count; ++r) {
      Time w = m_g;
      for (std::size_t s = 0; s < region_count; ++s) {
        if (s == r || floors[s] == kInf) continue;
        w = std::min(w, floors[s] + min_delay(s, r));
      }
      // Self-echo bound: r's own events from floors[r] onward can wake a
      // peer whose reply lands back here no earlier than floors[r] + rt[r].
      // Without it, a region whose peers are all idle would run unbounded
      // and then receive that reply in its past.
      if (floors[r] != kInf) w = std::min(w, floors[r] + rt[r]);
      if (w > t_end) {
        // Include events at exactly t_end, nothing later (run_until parity).
        w = std::nextafter(t_end, kInf);
      }
      win[r] = w;
    }
    stats.region_events += run_windows();
    ++stats.windows;
  }
  } catch (...) {
    stop_pool();
    throw;
  }

  stop_pool();

  // Line every clock up so now() reports what the sequential kernel would:
  // the last executed event time, or t_end for a bounded run.
  Time end = now();
  if (std::isfinite(t_end)) end = std::max(end, t_end);
  if (std::isfinite(end)) {
    for (const std::unique_ptr<EventQueue>& q : queues_) q->advance_to(end);
    global_.advance_to(end);
  }

  total_.region_events += stats.region_events;
  total_.global_events += stats.global_events;
  total_.windows += stats.windows;
  total_.global_phases += stats.global_phases;
  total_.messages += stats.messages;
  return stats;
}

}  // namespace srm::sim
