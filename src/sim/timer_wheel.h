// Batched timer wheel on top of the 4-ary event heap (ARCHITECTURE.md §12).
//
// A session of G members reporting on a common interval used to cost G live
// heap entries (one sim::Timer each).  The wheel quantizes expiries into
// fixed-width buckets and keeps ONE heap entry per (lane, bucket) pair —
// lanes are caller-defined batching domains (the hierarchical session layer
// uses one lane per local area) — so the heap's live-entry count scales
// with lanes x buckets-per-interval, not with members.  When a bucket
// fires, every item scheduled into it is serviced back-to-back in ascending
// item order, which is also what makes the service sequence a pure function
// of the schedule calls rather than of heap internals.
//
// Items are opaque 64-bit values; callers that need lazy cancellation
// encode a generation/epoch in the item and ignore stale ones in the
// service callback (the wheel never searches buckets to remove an item).
// Service callbacks may re-schedule, including into the bucket boundary
// that is currently firing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace srm::sim {

class BatchTimerWheel {
 public:
  using Service = std::function<void(std::uint64_t item)>;

  // Expiries are rounded UP to the next multiple of `bucket_width` (an item
  // never fires early).  `service` is invoked once per item when its bucket
  // fires; it may call schedule().
  BatchTimerWheel(EventQueue& queue, Time bucket_width, Service service);
  ~BatchTimerWheel();

  BatchTimerWheel(const BatchTimerWheel&) = delete;
  BatchTimerWheel& operator=(const BatchTimerWheel&) = delete;

  // Schedules `item` on `lane` to be serviced at the first bucket boundary
  // >= max(at, now).  The first item landing in a (lane, bucket) pair costs
  // one heap insertion; every further item is a vector push.
  void schedule(std::uint32_t lane, std::uint64_t item, Time at);

  // Cancels every pending bucket (all scheduled items are dropped).
  void cancel_all();

  // Live heap entries this wheel accounts for — the "heap occupancy grows
  // with areas, not members" evidence the scaling bench records.
  std::size_t pending_buckets() const { return buckets_.size(); }
  std::size_t pending_items() const { return pending_items_; }

 private:
  // (bucket index, lane): ordered so iteration (tests, introspection) is
  // deterministic; lookup is once per schedule() on a cold (lane, bucket).
  using Key = std::pair<std::uint64_t, std::uint32_t>;

  struct Bucket {
    EventHandle handle;
    std::vector<std::uint64_t> items;
  };

  void fire(Key key);

  EventQueue* queue_;
  Time width_;
  Service service_;
  std::map<Key, Bucket> buckets_;
  std::size_t pending_items_ = 0;
  std::vector<std::uint64_t> fire_scratch_;  // reused across fires
};

}  // namespace srm::sim
