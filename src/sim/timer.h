// A restartable one-shot timer bound to an EventQueue.
//
// SRM's request and repair timers are set, suppressed (cancelled), backed
// off (rescheduled), and re-armed many times per loss-recovery round; Timer
// wraps that lifecycle so protocol code never juggles raw EventHandles.
#pragma once

#include <functional>
#include <utility>

#include "sim/event_queue.h"

namespace srm::sim {

class Timer {
 public:
  // The callback runs on expiry.  The Timer must outlive any pending expiry;
  // owners cancel in their destructor (Timer's own destructor also cancels).
  Timer(EventQueue& queue, std::function<void()> on_expire)
      : queue_(&queue), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  // (Re)schedules the timer to fire dt seconds from now.  Any pending expiry
  // is cancelled first.
  void schedule_in(Time dt) {
    cancel();
    expiry_ = queue_->now() + dt;
    // The callback is copied into the event, so the Timer itself may be
    // destroyed from inside the callback (e.g. a protocol state machine
    // erasing its own state on final expiry).
    handle_ = queue_->schedule_at(expiry_, on_expire_);
  }

  void cancel() { handle_.cancel(); }

  bool pending() const { return handle_.pending(); }

  // Absolute virtual time of the pending expiry; meaningful only if
  // pending() is true (otherwise it is the last scheduled expiry).
  Time expiry_time() const { return expiry_; }

  // Time remaining until expiry; 0 if not pending.
  Time remaining() const {
    return pending() ? expiry_ - queue_->now() : 0.0;
  }

 private:
  EventQueue* queue_;
  std::function<void()> on_expire_;
  EventHandle handle_;
  Time expiry_ = 0.0;
};

// A per-host virtual clock with a constant offset from simulation time.
// SRM's session-message distance estimation (Sec. III-A) must work without
// synchronized clocks; giving each host a distinct offset exercises that.
class LocalClock {
 public:
  LocalClock(const EventQueue& queue, Time offset)
      : queue_(&queue), offset_(offset) {}

  // The host's reading of "now": simulation time plus this host's skew.
  Time now() const { return queue_->now() + offset_; }
  Time offset() const { return offset_; }

 private:
  const EventQueue* queue_;
  Time offset_;
};

}  // namespace srm::sim
