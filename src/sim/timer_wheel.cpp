#include "sim/timer_wheel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace srm::sim {

BatchTimerWheel::BatchTimerWheel(EventQueue& queue, Time bucket_width,
                                 Service service)
    : queue_(&queue), width_(bucket_width), service_(std::move(service)) {
  if (!(bucket_width > 0.0)) {
    throw std::invalid_argument("BatchTimerWheel: bucket_width must be > 0");
  }
}

BatchTimerWheel::~BatchTimerWheel() { cancel_all(); }

void BatchTimerWheel::schedule(std::uint32_t lane, std::uint64_t item,
                               Time at) {
  const Time now = queue_->now();
  if (at < now) at = now;
  auto index = static_cast<std::uint64_t>(std::ceil(at / width_));
  // Guard the float boundary: ceil can land one bucket short when at/width_
  // is a hair above an integer that rounds down on division.
  while (static_cast<Time>(index) * width_ < at) ++index;
  // A boundary in the past (at == now on an exact boundary already fired
  // this instant) would violate schedule_at's t >= now contract.
  while (static_cast<Time>(index) * width_ < now) ++index;

  Bucket& bucket = buckets_[Key{index, lane}];
  if (bucket.items.empty()) {
    const Time fire_at = static_cast<Time>(index) * width_;
    bucket.handle = queue_->schedule_at(
        fire_at, [this, key = Key{index, lane}] { fire(key); });
  }
  bucket.items.push_back(item);
  ++pending_items_;
}

void BatchTimerWheel::cancel_all() {
  for (auto& [key, bucket] : buckets_) bucket.handle.cancel();
  buckets_.clear();
  pending_items_ = 0;
}

void BatchTimerWheel::fire(Key key) {
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  fire_scratch_.clear();
  fire_scratch_.swap(it->second.items);
  pending_items_ -= fire_scratch_.size();
  // Erase before servicing: callbacks may re-schedule into this same
  // (lane, bucket) key, which must then create a fresh heap entry.
  buckets_.erase(it);
  // Ascending item order: the service sequence depends only on what was
  // scheduled, not on schedule() call order within the bucket.
  std::sort(fire_scratch_.begin(), fire_scratch_.end());
  for (const std::uint64_t item : fire_scratch_) service_(item);
}

}  // namespace srm::sim
