// Per-agent protocol counters and the per-loss measurements the paper's
// figures are built from: requests/repairs per loss (the "duplicates" axes
// of Figs. 3-8 and 12-14) and per-member recovery delay normalized by the
// RTT to the source (the "delay" axes).  These are the aggregate view; the
// per-event view of the same facts is the srm trace category
// (trace/trace.h), and tests cross-check that the two agree
// (trace::RecoveryTimeline totals == summed AgentMetrics).
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "srm/names.h"
#include "util/stats.h"

namespace srm {

struct AgentMetrics {
  // Message counts (sent by this agent).
  std::uint64_t data_sent = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t repairs_sent = 0;
  std::uint64_t session_sent = 0;

  // Messages heard from others.
  std::uint64_t requests_heard = 0;
  std::uint64_t repairs_heard = 0;

  // Loss recovery.
  std::uint64_t losses_detected = 0;
  std::uint64_t recoveries = 0;            // losses repaired
  std::uint64_t recovery_abandoned = 0;    // gave up after max backoffs

  // Coded repair (srm/fec): parity ADUs this agent originated and losses it
  // reconstructed locally from parity instead of requesting.
  std::uint64_t fec_parity_sent = 0;
  std::uint64_t fec_reconstructions = 0;

  // Per-recovery delay: loss detection -> first repair received, in seconds
  // and in units of this member's RTT to the data's original source.
  util::Samples recovery_delay_seconds;
  util::Samples recovery_delay_rtt;

  // Request delay (Sec. VI): timer set -> first request sent by anyone,
  // in RTT units to the source of the missing data.
  util::Samples request_delay_rtt;
  // Repair delay: repair timer set -> first repair sent by anyone, in RTT
  // units to the requestor the timer was computed from.
  util::Samples repair_delay_rtt;

  // Duplicates observed within this member's own request/repair periods.
  std::uint64_t dup_requests_heard = 0;
  std::uint64_t dup_repairs_heard = 0;

  void clear() { *this = AgentMetrics{}; }
};

}  // namespace srm
