#include "srm/agent.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "transport/sim_transport.h"

namespace srm {

namespace {

// RTT used to normalize delays; distances can be zero (e.g. the data source
// itself), so normalization floors the denominator.
double rtt_of(double one_way_distance) {
  return std::max(2.0 * one_way_distance, 1e-9);
}

}  // namespace

// ---------------------------------------------------------------------------
// MemberDirectory
// ---------------------------------------------------------------------------

void MemberDirectory::bind(SourceId id, net::NodeId node) {
  to_node_[id] = node;
  to_source_[node] = id;
  index_.intern(id);
  ++version_;
}

void MemberDirectory::unbind(SourceId id) {
  const auto it = to_node_.find(id);
  if (it == to_node_.end()) return;
  to_source_.erase(it->second);
  to_node_.erase(it);
  ++version_;  // the dense index entry survives (Source-IDs are persistent)
}

net::NodeId MemberDirectory::node_of(SourceId id) const {
  const auto it = to_node_.find(id);
  if (it == to_node_.end()) {
    throw std::out_of_range("MemberDirectory::node_of: unknown source");
  }
  return it->second;
}

std::optional<SourceId> MemberDirectory::source_at(net::NodeId node) const {
  const auto it = to_source_.find(node);
  if (it == to_source_.end()) return std::nullopt;
  return it->second;
}

std::vector<SourceId> MemberDirectory::members() const {
  std::vector<SourceId> out;
  out.reserve(to_node_.size());
  for (const auto& [id, node] : to_node_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// SrmAgent: construction / lifecycle
// ---------------------------------------------------------------------------

SrmAgent::SrmAgent(net::MulticastNetwork& network, MemberDirectory& directory,
                   net::NodeId node, SourceId id, net::GroupId group,
                   const SrmConfig& config, util::Rng rng)
    : SrmAgent(std::make_unique<transport::SimTransport>(network), nullptr,
               directory, node, id, group, config, std::move(rng)) {}

SrmAgent::SrmAgent(transport::Transport& transport, MemberDirectory& directory,
                   net::NodeId node, SourceId id, net::GroupId group,
                   const SrmConfig& config, util::Rng rng)
    : SrmAgent(nullptr, &transport, directory, node, id, group, config,
               std::move(rng)) {}

SrmAgent::SrmAgent(std::unique_ptr<transport::Transport> owned,
                   transport::Transport* ext, MemberDirectory& directory,
                   net::NodeId node, SourceId id, net::GroupId group,
                   const SrmConfig& config, util::Rng rng)
    : owned_transport_(std::move(owned)),
      transport_(owned_transport_ ? owned_transport_.get() : ext),
      directory_(&directory),
      node_(node),
      id_(id),
      group_(group),
      config_(config),
      rng_(std::move(rng)),
      // Per-host clock skew: distance estimation must not depend on
      // synchronized clocks, so every host gets a different offset.
      clock_(transport_->queue(), rng_.uniform(0.0, 1000.0)),
      // Hierarchy mode gives each estimator a private member index: the
      // shared directory index interns every member of the session, so the
      // estimator's dense per-peer vectors would grow to the full group at
      // every agent — O(G^2) memory at G=50k.  A private index scales them
      // with the peers this member actually hears (its local area plus the
      // representatives; ARCHITECTURE.md §12).
      estimator_(clock_,
                 config.hierarchy.enabled ? nullptr : &directory.index()),
      session_scheduler_(config.session, rng_.fork()),
      request_tuner_(config.adaptive,
                     AdaptiveTuner::Bounds{config.adaptive.c1_min,
                                           config.adaptive.c1_max,
                                           config.adaptive.c2_min,
                                           config.adaptive.c2_max},
                     config.timers.c1, config.timers.c2),
      repair_tuner_(config.adaptive,
                    AdaptiveTuner::Bounds{config.adaptive.d1_min,
                                          config.adaptive.d1_max,
                                          config.adaptive.d2_min,
                                          config.adaptive.d2_max},
                    config.timers.d1, config.timers.d2),
      rate_limiter_(config.rate_limit, transport_->queue().now()) {
  session_timer_ = std::make_unique<sim::Timer>(
      transport_->queue(), [this] { send_session_message(); });
  send_queue_timer_ = std::make_unique<sim::Timer>(
      transport_->queue(), [this] { drain_send_queue(); });
  request_ttl_policy_ = [](const DataName&) { return net::kMaxTtl; };
  request_group_policy_ = [this](const DataName&) { return group_; };
}

SrmAgent::~SrmAgent() {
  if (started_) stop();
}

void SrmAgent::start() {
  if (started_) return;
  started_ = true;
  directory_->bind(id_, node_);
  transport_->attach(node_, this);
  transport_->join(group_, node_);
  if (config_.session.enabled) schedule_next_session_message();
}

void SrmAgent::stop() {
  if (!started_) return;
  started_ = false;
  session_timer_->cancel();
  send_queue_timer_->cancel();
  for (auto& [name, st] : requests_) {
    if (st.timer) st.timer->cancel();
  }
  for (auto& [name, st] : repairs_) {
    if (st.timer) st.timer->cancel();
  }
  for (auto& [key, st] : page_replies_) {
    if (st.timer) st.timer->cancel();
  }
  for (net::GroupId g : extra_groups_) transport_->leave(g, node_);
  extra_groups_.clear();
  transport_->leave(group_, node_);
  transport_->detach(node_);
  directory_->unbind(id_);
}

void SrmAgent::join_extra_group(net::GroupId g) {
  if (extra_groups_.insert(g).second) transport_->join(g, node_);
}

void SrmAgent::leave_extra_group(net::GroupId g) {
  if (extra_groups_.erase(g) > 0) transport_->leave(g, node_);
}

void SrmAgent::send_app_message(net::GroupId g, net::MessagePtr message,
                                int ttl) {
  net::Packet packet;
  packet.group = g;
  packet.ttl = ttl;
  packet.scope = use_admin_scope_ ? net::Scope::kAdmin : net::Scope::kGlobal;
  packet.payload = std::move(message);
  transport_->multicast(node_, std::move(packet));
}

// ---------------------------------------------------------------------------
// Application-facing API
// ---------------------------------------------------------------------------

DataName SrmAgent::send_data(const PageId& page, Payload payload) {
  const SeqNo seq = next_seq_[page]++;
  const DataName name{id_, page, seq};
  auto shared = std::make_shared<const Payload>(std::move(payload));
  store_[name] = shared;

  StreamState& s = streams_[stream_of(name)];
  s.any_known = true;
  s.advertised_max = std::max(s.advertised_max, seq);
  s.received[seq] = true;
  note_page(page);

  ++metrics_.data_sent;
  net::Packet packet;
  packet.group = group_;
  packet.ttl = net::kMaxTtl;
  packet.payload = std::make_shared<DataMessage>(name, shared);
  transmit(std::move(packet), Priority::kNewData);
  return name;
}

void SrmAgent::seed_data(const DataName& name, Payload payload) {
  store_[name] = std::make_shared<const Payload>(std::move(payload));
  StreamState& s = streams_[stream_of(name)];
  s.any_known = true;
  s.advertised_max = std::max(s.advertised_max, name.seq);
  s.received[name.seq] = true;
  note_page(name.page);
  if (name.source == id_) {
    SeqNo& next = next_seq_[name.page];
    next = std::max(next, name.seq + 1);
  }
}

void SrmAgent::supply_data(const DataName& name, Payload payload) {
  auto shared = std::make_shared<const Payload>(std::move(payload));
  if (requests_.count(name) > 0) {
    complete_recovery(name, shared);
  } else if (store_.count(name) == 0) {
    handle_data(name, shared, /*via_repair=*/true);
  }
}

bool SrmAgent::has_data(const DataName& name) const {
  return store_.count(name) > 0;
}

const Payload* SrmAgent::find_data(const DataName& name) const {
  const auto it = store_.find(name);
  return it == store_.end() ? nullptr : it->second.get();
}

std::optional<SeqNo> SrmAgent::advertised_max(const StreamKey& stream) const {
  const auto it = streams_.find(stream);
  if (it == streams_.end() || !it->second.any_known) return std::nullopt;
  return it->second.advertised_max;
}

double SrmAgent::distance_to(SourceId peer) const {
  if (peer == id_) return 0.0;
  if (config_.distance_mode == DistanceMode::kOracle) {
    const std::uint32_t idx = directory_->index().find(peer);
    if (idx == MemberIndex::kNoIndex) {
      return config_.default_distance;  // member never bound
    }
    // Dense per-peer cache: resolved distances are stable until membership
    // changes (bind/unbind bumps the directory version) or the topology
    // mutates (link dynamics bump the topology version).
    if (oracle_dist_version_ != directory_->version() ||
        oracle_topo_version_ != transport_->topology_version()) {
      oracle_dist_.clear();
      oracle_dist_version_ = directory_->version();
      oracle_topo_version_ = transport_->topology_version();
    }
    if (idx >= oracle_dist_.size()) {
      oracle_dist_.resize(directory_->index().size(), -1.0);
    }
    double& cached = oracle_dist_[idx];
    if (cached < 0.0) {
      try {
        // try_distance: a peer partitioned away reads as infinitely far,
        // which is routine under fault injection, not an error.
        const double d = transport_->try_distance(node_, directory_->node_of(peer));
        cached = std::isinf(d) ? config_.default_distance : d;
      } catch (const std::out_of_range&) {
        cached = config_.default_distance;  // member no longer bound
      }
    }
    return cached;
  }
  const auto est = estimator_.distance(peer);
  return est.value_or(config_.default_distance);
}

bool SrmAgent::request_pending(const DataName& name) const {
  const auto it = requests_.find(name);
  return it != requests_.end() && it->second.timer && it->second.timer->pending();
}

bool SrmAgent::repair_pending(const DataName& name) const {
  const auto it = repairs_.find(name);
  return it != repairs_.end() && it->second.timer && it->second.timer->pending();
}

// ---------------------------------------------------------------------------
// Receive dispatch
// ---------------------------------------------------------------------------

void SrmAgent::on_receive(const net::Packet& packet,
                          const net::DeliveryInfo& info) {
  if (const auto* data = dynamic_cast<const DataMessage*>(packet.payload.get())) {
    handle_data(data->name(), data->payload(), /*via_repair=*/false);
  } else if (const auto* req =
                 dynamic_cast<const RequestMessage*>(packet.payload.get())) {
    handle_request(*req, packet, info);
  } else if (const auto* rep =
                 dynamic_cast<const RepairMessage*>(packet.payload.get())) {
    handle_repair(*rep, packet, info);
  } else if (const auto* sess =
                 dynamic_cast<const SessionMessage*>(packet.payload.get())) {
    handle_session(*sess);
    if (hooks_.on_session_message) hooks_.on_session_message(*sess, info);
  } else if (const auto* preq = dynamic_cast<const PageRequestMessage*>(
                 packet.payload.get())) {
    handle_page_request(*preq);
  } else if (const auto* prep =
                 dynamic_cast<const PageReplyMessage*>(packet.payload.get())) {
    handle_page_reply(*prep);
  } else if (hooks_.on_unknown_message) {
    hooks_.on_unknown_message(packet, info);
  }
}

// ---------------------------------------------------------------------------
// Page-state recovery (Sec. III-A)
// ---------------------------------------------------------------------------

void SrmAgent::request_page_state(std::optional<PageId> page) {
  net::Packet packet;
  packet.group = group_;
  packet.ttl = net::kMaxTtl;
  packet.scope = use_admin_scope_ ? net::Scope::kAdmin : net::Scope::kGlobal;
  packet.payload = std::make_shared<PageRequestMessage>(id_, page);
  transmit(std::move(packet), page && *page == current_page_
                                  ? Priority::kCurrentPageRecovery
                                  : Priority::kOldPageRecovery);
}

std::vector<PageId> SrmAgent::known_pages() const {
  return std::vector<PageId>(known_pages_.begin(), known_pages_.end());
}

SessionMessage::StateReport SrmAgent::page_state(const PageId& page) const {
  SessionMessage::StateReport report;
  for (const auto& [stream, state] : streams_) {
    if (stream.page == page && state.any_known) {
      report[stream] = state.advertised_max;
    }
  }
  return report;
}

void SrmAgent::handle_page_request(const PageRequestMessage& msg) {
  if (msg.requestor() == id_) return;
  // Only members actually holding relevant state volunteer an answer.
  const PageId key = msg.page() ? *msg.page() : kPageListKey;
  if (msg.page()) {
    if (page_state(*msg.page()).empty()) return;
  } else if (known_pages_.empty()) {
    return;
  }
  auto [it, inserted] = page_replies_.try_emplace(key);
  PageReplyState& st = it->second;
  if (!inserted && st.timer && st.timer->pending()) return;  // scheduled
  st.requestor = msg.requestor();
  if (!st.timer) {
    st.timer = std::make_unique<sim::Timer>(
        transport_->queue(), [this, key] { on_page_reply_timer(key); });
  }
  // Same timer discipline as data repairs: randomized, distance-scaled,
  // suppressible (Sec. III-A: "almost identical to the repair
  // request/response protocol").
  const double d = distance_to(msg.requestor());
  st.timer->schedule_in(rng_.uniform(d1() * d, (d1() + d2()) * d));
}

void SrmAgent::on_page_reply_timer(const PageId& key) {
  const auto it = page_replies_.find(key);
  if (it == page_replies_.end()) return;
  const bool is_list = key == kPageListKey;
  auto reply = std::make_shared<PageReplyMessage>(
      id_, is_list ? std::optional<PageId>{} : std::optional<PageId>{key},
      is_list ? SessionMessage::StateReport{} : page_state(key),
      is_list ? known_pages() : std::vector<PageId>{});
  net::Packet packet;
  packet.group = group_;
  packet.ttl = net::kMaxTtl;
  packet.scope = use_admin_scope_ ? net::Scope::kAdmin : net::Scope::kGlobal;
  packet.payload = std::move(reply);
  transmit(std::move(packet), Priority::kOldPageRecovery);
}

void SrmAgent::handle_page_reply(const PageReplyMessage& msg) {
  // Suppression: someone else answered this page; cancel our own reply.
  const PageId key = msg.page() ? *msg.page() : kPageListKey;
  if (const auto it = page_replies_.find(key); it != page_replies_.end()) {
    if (it->second.timer) it->second.timer->cancel();
  }
  // The state report reveals the page's streams; normal loss detection and
  // recovery take over from here.
  for (const auto& [stream, max_seq] : msg.state()) {
    note_stream_advance(stream, max_seq);
  }
  if (!msg.page()) {
    for (const PageId& p : msg.known_pages()) note_page(p);
    if (hooks_.on_page_list) hooks_.on_page_list(msg.known_pages());
  }
}

// ---------------------------------------------------------------------------
// Data path and loss detection
// ---------------------------------------------------------------------------

void SrmAgent::handle_data(const DataName& name, const PayloadPtr& payload,
                           bool via_repair) {
  const bool is_new = store_.count(name) == 0;
  if (is_new) {
    store_[name] = payload;
    abandoned_.erase(name);  // the data showed up after all
    StreamState& s = streams_[stream_of(name)];
    s.received[name.seq] = true;
    // any_known / advertised_max maintained by note_stream_advance below.
  }
  note_stream_advance(stream_of(name), name.seq);
  if (is_new && hooks_.on_data) {
    static const Payload kEmpty;
    hooks_.on_data(name, payload ? *payload : kEmpty, via_repair);
  }
}

void SrmAgent::note_stream_advance(const StreamKey& stream, SeqNo seen_seq) {
  note_page(stream.page);
  if (stream.source == id_) return;  // we cannot miss our own data
  StreamState& s = streams_[stream];
  SeqNo scan_from = 0;
  if (s.any_known) {
    if (seen_seq <= s.advertised_max) return;  // nothing new revealed
    scan_from = s.advertised_max + 1;
  }
  s.any_known = true;
  s.advertised_max = std::max(s.advertised_max, seen_seq);
  // Every sequence number in [scan_from, seen_seq] is now known to exist;
  // any of them we neither hold nor are already recovering is a loss.
  for (SeqNo q = scan_from; q <= seen_seq; ++q) {
    if (s.received.count(q)) continue;
    const DataName missing{stream.source, stream.page, q};
    if (requests_.count(missing)) continue;
    detect_loss(missing, /*via_request=*/false);
  }
}

void SrmAgent::detect_loss(const DataName& name, bool via_request) {
  ++metrics_.losses_detected;
  if (hooks_.on_loss_detected) hooks_.on_loss_detected(name);
  const sim::Time now = transport_->queue().now();

  RequestState state;
  state.dist = distance_to(name.source);
  trace_adu(trace::EventType::kSrmLoss, name, via_request ? 1 : 0, 0.0,
            state.dist);
  state.detect_time = now;
  state.timer_set_time = now;
  state.timer = std::make_unique<sim::Timer>(
      transport_->queue(), [this, name] { on_request_timer_expired(name); });

  open_request_period(name);

  if (via_request) {
    // We learned of the loss from someone else's request: behave as if our
    // own (never-set) timer was suppressed once - schedule from the
    // backed-off interval and wait for the repair (Sec. III-B).
    state.backoffs = 1;
    state.delay_recorded = true;  // no timer of ours preceded the request
    note_request_observed(name, /*ours=*/false);
  }

  auto [it, inserted] = requests_.emplace(name, std::move(state));
  schedule_request_timer(it->second, name);
  if (via_request) {
    RequestState& st = it->second;
    st.ignore_backoff_until =
        now + (st.timer->expiry_time() - now) / 2.0;
  }
}

void SrmAgent::schedule_request_timer(RequestState& state,
                                      const DataName& name) {
  const double b = std::pow(config_.backoff_factor, state.backoffs);
  const double lo = b * c1() * state.dist;
  const double hi = b * (c1() + c2()) * state.dist;
  const double delay = rng_.uniform(lo, hi);
  state.timer->schedule_in(delay);
  trace_adu(trace::EventType::kSrmReqTimerSet, name,
            static_cast<std::uint64_t>(state.backoffs), delay, state.dist);
}

void SrmAgent::on_request_timer_expired(const DataName& name) {
  const auto it = requests_.find(name);
  if (it == requests_.end()) return;
  RequestState& st = it->second;
  const sim::Time now = transport_->queue().now();
  trace_adu(trace::EventType::kSrmReqFire, name,
            static_cast<std::uint64_t>(st.backoffs));

  if (!st.delay_recorded) {
    st.delay_recorded = true;
    const double d = (now - st.timer_set_time) / rtt_of(st.dist);
    metrics_.request_delay_rtt.add(d);
    if (config_.adaptive.enabled) request_tuner_.record_delay(d);
  }

  // Scope escalation (Sec. VII-B): once enough of our scoped requests have
  // gone unanswered, widen to global scope.  backoffs counts prior own
  // sends (and initial suppressions), so >= threshold means at least that
  // many unanswered requests preceded this one.
  const bool escalate = config_.escalate_scope_on_backoff &&
                        st.we_sent_request &&
                        st.backoffs >= config_.escalate_scope_after;

  // Send the request.
  ++metrics_.requests_sent;
  st.we_sent_request = true;
  note_request_observed(name, /*ours=*/true);
  if (config_.adaptive.enabled) request_tuner_.on_sent();
  const int ttl = escalate ? net::kMaxTtl : request_ttl_policy_(name);
  st.our_request_ttl = ttl;
  if (escalate) {
    trace_adu(trace::EventType::kSrmScopeEscalate, name,
              static_cast<std::uint64_t>(ttl));
  }
  trace_adu(trace::EventType::kSrmReqSend, name,
            static_cast<std::uint64_t>(ttl), escalate ? 1.0 : 0.0);
  net::Packet packet;
  packet.group = escalate ? group_ : request_group_policy_(name);
  packet.ttl = ttl;
  packet.scope = (use_admin_scope_ && !escalate) ? net::Scope::kAdmin
                                                 : net::Scope::kGlobal;
  packet.payload = request_pool_.acquire(name, id_, st.dist, ttl);
  transmit(std::move(packet), recovery_priority(name));

  // "...and doubles the request timer to wait for the repair."
  ++st.backoffs;
  if (st.backoffs > config_.max_request_backoffs) {
    ++metrics_.recovery_abandoned;
    trace_adu(trace::EventType::kSrmAbandoned, name);
    abandoned_.insert(name);
    if (hooks_.on_recovery_abandoned) hooks_.on_recovery_abandoned(name);
    requests_.erase(it);  // safe: Timer callbacks are copied into events
    return;
  }
  schedule_request_timer(st, name);
  st.ignore_backoff_until = now + (st.timer->expiry_time() - now) / 2.0;
}

void SrmAgent::backoff_request(const DataName& name, RequestState& state) {
  const sim::Time now = transport_->queue().now();
  // Footnote 1's heuristic: requests heard before the ignore-backoff time
  // belong to the same loss-recovery iteration and cause no further backoff.
  if (config_.ignore_backoff_heuristic &&
      now < state.ignore_backoff_until) {
    trace_adu(trace::EventType::kSrmReqBackoff, name,
              static_cast<std::uint64_t>(state.backoffs), /*ignored=*/1.0);
    return;
  }
  if (!state.delay_recorded) {
    // First reset: someone else's request went out before our timer fired.
    state.delay_recorded = true;
    const double d = (now - state.timer_set_time) / rtt_of(state.dist);
    metrics_.request_delay_rtt.add(d);
    if (config_.adaptive.enabled) request_tuner_.record_delay(d);
  }
  ++state.backoffs;
  trace_adu(trace::EventType::kSrmReqBackoff, name,
            static_cast<std::uint64_t>(state.backoffs), /*ignored=*/0.0);
  if (state.backoffs > config_.max_request_backoffs) return;  // keep waiting
  schedule_request_timer(state, name);
  state.ignore_backoff_until =
      now + (state.timer->expiry_time() - now) / 2.0;
}

void SrmAgent::complete_recovery(const DataName& name,
                                 const PayloadPtr& payload) {
  const auto it = requests_.find(name);
  if (it == requests_.end()) return;
  const sim::Time now = transport_->queue().now();
  const double delay = now - it->second.detect_time;
  ++metrics_.recoveries;
  trace_adu(trace::EventType::kSrmRecovered, name, 0, delay);
  metrics_.recovery_delay_seconds.add(delay);
  metrics_.recovery_delay_rtt.add(delay / rtt_of(it->second.dist));
  it->second.timer->cancel();
  requests_.erase(it);
  handle_data(name, payload, /*via_repair=*/true);
}

// ---------------------------------------------------------------------------
// Request handling (the receiving side)
// ---------------------------------------------------------------------------

void SrmAgent::handle_request(const RequestMessage& msg,
                              const net::Packet& packet,
                              const net::DeliveryInfo& info) {
  ++metrics_.requests_heard;
  const DataName& name = msg.name();
  trace_adu(trace::EventType::kSrmReqHear, name, msg.requestor());

  // Duplicate accounting continues for the whole request period, even after
  // the repair arrived and the request state is gone (Sec. VII-A).
  if (request_period_ && request_period_->name == name &&
      !requests_.count(name)) {
    note_request_observed(name, /*ours=*/false);
  }

  if (store_.count(name) > 0) {
    maybe_schedule_repair(name, msg, info, packet);
  } else if (const auto it = requests_.find(name); it != requests_.end()) {
    RequestState& st = it->second;
    note_request_observed(name, /*ours=*/false);
    if (config_.adaptive.enabled && st.we_sent_request) {
      request_tuner_.on_duplicate_from_farther(st.dist,
                                               msg.requestor_dist_to_source());
    }
    backoff_request(name, st);
  } else if (abandoned_.count(name) == 0) {
    // A request for data we did not know existed: the request itself is the
    // loss detection; join the recovery in the suppressed state.  Abandoned
    // ADUs are excluded or two members missing unrecoverable data would
    // resurrect each other's requests forever.
    (void)packet;
    detect_loss(name, /*via_request=*/true);
  }

  // The request also reveals stream extent beyond this one ADU.
  note_stream_advance(stream_of(name), name.seq);

  if (hooks_.on_request_heard) hooks_.on_request_heard(name, msg.requestor());
}

// ---------------------------------------------------------------------------
// Repair scheduling and handling
// ---------------------------------------------------------------------------

void SrmAgent::maybe_schedule_repair(const DataName& name,
                                     const RequestMessage& msg,
                                     const net::DeliveryInfo& info,
                                     const net::Packet& request_packet) {
  const sim::Time now = transport_->queue().now();
  auto [it, inserted] = repairs_.try_emplace(name);
  RepairState& rs = it->second;

  // Hold-down: ignore requests for 3*d_S seconds after sending or receiving
  // a repair for this data (Sec. III-B).
  if (!inserted && now < rs.holddown_until) return;
  if (!inserted && rs.timer && rs.timer->pending()) return;  // already set

  rs.dist = distance_to(msg.requestor());
  rs.dist_to_source =
      name.source == id_ ? rs.dist : distance_to(name.source);
  rs.requestor = msg.requestor();
  rs.request_ttl = msg.initial_ttl();
  rs.request_hops = info.hops;
  rs.request_scope = request_packet.scope;
  rs.request_group = request_packet.group;
  rs.timer_set_time = now;
  rs.delay_recorded = false;
  if (!rs.timer) {
    rs.timer = std::make_unique<sim::Timer>(
        transport_->queue(), [this, name] { on_repair_timer_expired(name); });
  }

  open_repair_period(name);

  const double lo = d1() * rs.dist;
  const double hi = (d1() + d2()) * rs.dist;
  const double delay = rng_.uniform(lo, hi);
  rs.timer->schedule_in(delay);
  trace_adu(trace::EventType::kSrmRepTimerSet, name, rs.requestor, delay,
            rs.dist);
}

void SrmAgent::on_repair_timer_expired(const DataName& name) {
  const auto it = repairs_.find(name);
  if (it == repairs_.end()) return;
  RepairState& rs = it->second;
  const auto data = store_.find(name);
  if (data == store_.end()) return;  // lost the data since scheduling
  const sim::Time now = transport_->queue().now();
  trace_adu(trace::EventType::kSrmRepFire, name);

  if (!rs.delay_recorded) {
    rs.delay_recorded = true;
    const double d = (now - rs.timer_set_time) / rtt_of(rs.dist_to_source);
    metrics_.repair_delay_rtt.add(d);
    if (config_.adaptive.enabled) repair_tuner_.record_delay(d);
  }

  ++metrics_.repairs_sent;
  note_repair_observed(name, /*ours=*/true);
  if (config_.adaptive.enabled) repair_tuner_.on_sent();

  // Local recovery scoping (Sec. VII-B.3).
  int ttl = net::kMaxTtl;
  bool step_one = false;
  if (config_.local_recovery.enabled && rs.request_ttl < net::kMaxTtl) {
    if (config_.local_recovery.two_step) {
      ttl = rs.request_ttl;  // step 1: reach the requestor
      step_one = true;
    } else {
      ttl = rs.request_ttl + rs.request_hops;  // one-step over-coverage
    }
  }

  trace_adu(trace::EventType::kSrmRepSend, name,
            static_cast<std::uint64_t>(ttl), step_one ? 1.0 : 0.0);
  net::Packet packet;
  // The repair answers on the group and with the scope the request used, so
  // recovery-group requests stay on the recovery group and an escalated
  // (global) request is answered globally even by admin-scoped members.
  packet.group = rs.request_group;
  packet.ttl = ttl;
  packet.scope = rs.request_scope;
  packet.payload =
      repair_pool_.acquire(name, data->second, id_, rs.requestor,
                           distance_to(rs.requestor), ttl, step_one);
  transmit(std::move(packet), recovery_priority(name));

  rs.holddown_until = now + config_.holddown_multiplier *
                                holddown_distance(name, rs.requestor);
}

double SrmAgent::holddown_distance(const DataName& name,
                                   SourceId requestor) const {
  // "host S is either the original source of the data or the source of the
  // first request": use the data's source when it is a live distinct member,
  // otherwise the requestor.
  if (name.source != id_) return distance_to(name.source);
  return distance_to(requestor);
}

void SrmAgent::handle_repair(const RepairMessage& msg,
                             const net::Packet& packet,
                             const net::DeliveryInfo& info) {
  (void)info;
  ++metrics_.repairs_heard;
  const DataName& name = msg.name();
  const sim::Time now = transport_->queue().now();
  trace_adu(trace::EventType::kSrmRepHear, name, msg.responder());

  // Repair-side suppression and hold-down.
  if (const auto it = repairs_.find(name); it != repairs_.end()) {
    RepairState& rs = it->second;
    note_repair_observed(name, /*ours=*/false);
    if (rs.timer && rs.timer->pending()) {
      if (!rs.delay_recorded) {
        rs.delay_recorded = true;
        const double d =
            (now - rs.timer_set_time) / rtt_of(rs.dist_to_source);
        metrics_.repair_delay_rtt.add(d);
        if (config_.adaptive.enabled) repair_tuner_.record_delay(d);
      }
      rs.timer->cancel();
      trace_adu(trace::EventType::kSrmRepSuppress, name, msg.responder());
    }
    rs.holddown_until = now + config_.holddown_multiplier *
                                  holddown_distance(name, msg.first_requestor());
  } else if (store_.count(name) > 0) {
    // We hold the data but had no repair scheduled; still enter hold-down so
    // a straggling duplicate request does not trigger a redundant repair.
    RepairState rs;
    rs.holddown_until = now + config_.holddown_multiplier *
                                  holddown_distance(name, msg.first_requestor());
    repairs_.emplace(name, std::move(rs));
  }

  // Request-side: the repair delivers the data.
  const int our_ttl = [&] {
    const auto it = requests_.find(name);
    return it == requests_.end() ? net::kMaxTtl : it->second.our_request_ttl;
  }();
  if (requests_.count(name) > 0) {
    complete_recovery(name, msg.payload());
  } else if (store_.count(name) == 0) {
    handle_data(name, msg.payload(), /*via_repair=*/true);
  }

  // Two-step local recovery: the named requestor re-multicasts the repair at
  // the TTL of its original request so everyone the request reached gets it.
  // Re-multicast at most once per ADU, and enter hold-down afterwards, so
  // duplicate step-one repairs do not fan out into duplicate step twos.
  if (msg.local_step_one() && msg.first_requestor() == id_ &&
      step_two_sent_.insert(name).second) {
    RepairState& rs = repairs_[name];
    rs.holddown_until = now + config_.holddown_multiplier *
                                  holddown_distance(name, msg.responder());
    ++metrics_.repairs_sent;
    trace_adu(trace::EventType::kSrmRepSend, name,
              static_cast<std::uint64_t>(our_ttl), /*step_one=*/0.0);
    net::Packet out;
    out.group = packet.group;  // stay on the group the recovery runs on
    out.ttl = our_ttl;
    out.payload = repair_pool_.acquire(name, msg.payload(), id_, id_, 0.0,
                                       our_ttl, /*local_step_one=*/false);
    transmit(std::move(out), recovery_priority(name));
  }
}

// ---------------------------------------------------------------------------
// Session messages
// ---------------------------------------------------------------------------

void SrmAgent::handle_session(const SessionMessage& msg) {
  estimator_.on_session_message(msg, id_);
  // A session report re-confirming an ADU we gave up on is fresh evidence
  // that a holder is still out there: re-arm the abandoned recovery.
  // (Without this, a recovery abandoned during heavy control-plane loss
  // would never be retried, breaking eventual delivery.)
  if (!abandoned_.empty()) {
    std::vector<DataName> rearm;
    for (const DataName& name : abandoned_) {
      const auto it = msg.state().find(stream_of(name));
      if (it != msg.state().end() && name.seq <= it->second) {
        rearm.push_back(name);
      }
    }
    for (const DataName& name : rearm) {
      abandoned_.erase(name);
      detect_loss(name, /*via_request=*/false);
    }
  }
  for (const auto& [stream, max_seq] : msg.state()) {
    note_stream_advance(stream, max_seq);
  }
}

void SrmAgent::build_state_report(SessionMessage::StateReport& out) const {
  // "Each member only reports the state of the page it is currently
  // viewing" (Sec. III-A).
  out.clear();
  for (const auto& [stream, state] : streams_) {
    if (stream.page == current_page_ && state.any_known) {
      out[stream] = state.advertised_max;
    }
  }
}

void SrmAgent::send_session_message(int ttl) {
  ++metrics_.session_sent;
  // Build into the scratch buffers, then hand them to a pooled message:
  // SessionMessage::rebind swaps, so a recycled message's capacity flows
  // back into the scratch and steady-state sends allocate nothing.
  build_state_report(state_scratch_);
  estimator_.build_echoes(echo_scratch_, config_.session.echo_rotation);
  auto msg = session_pool_.acquire(id_, clock_.now(),
                                   std::move(state_scratch_),
                                   std::move(echo_scratch_));
  send_session_packet(std::move(msg), ttl);
}

void SrmAgent::send_session_message(int ttl,
                                    SessionMessage::AreaDigests&& digests) {
  ++metrics_.session_sent;
  build_state_report(state_scratch_);
  estimator_.build_echoes(echo_scratch_, config_.session.echo_rotation);
  auto msg = session_pool_.acquire(id_, clock_.now(),
                                   std::move(state_scratch_),
                                   std::move(echo_scratch_),
                                   std::move(digests));
  send_session_packet(std::move(msg), ttl);
}

void SrmAgent::send_session_packet(net::MessagePtr msg, int ttl) {
  net::Packet packet;
  packet.group = group_;
  packet.ttl = ttl;
  packet.scope = use_admin_scope_ ? net::Scope::kAdmin : net::Scope::kGlobal;
  packet.payload = std::move(msg);
  // Session traffic has its own bandwidth budget (a fraction of the data
  // bandwidth); it does not compete through the data token bucket.
  transport_->multicast(node_, std::move(packet));
  if (config_.session.enabled && started_) schedule_next_session_message();
}

void SrmAgent::schedule_next_session_message() {
  const std::size_t group_size = estimator_.peers_heard() + 1;
  const std::size_t bytes = 24 + 20 * estimator_.peers_heard();
  session_timer_->schedule_in(
      session_scheduler_.next_interval(group_size, bytes));
}

// ---------------------------------------------------------------------------
// Period accounting for the adaptive algorithm
// ---------------------------------------------------------------------------

void SrmAgent::open_request_period(const DataName& name) {
  bool prev_we_sent = false;
  if (request_period_) {
    if (request_period_->name == name) return;  // already open for this loss
    const std::size_t dups = request_period_->observed > 0
                                 ? request_period_->observed - 1
                                 : 0;
    metrics_.dup_requests_heard += dups;
    prev_we_sent = request_period_->we_sent;
    if (config_.adaptive.enabled) request_tuner_.end_period(dups);
  }
  request_period_ = Period{name, 0, false};
  if (config_.adaptive.enabled) {
    request_tuner_.adapt_on_timer_set(prev_we_sent);
    if (tracer_->wants(trace::Category::kSrm)) {
      trace::Event ev;
      ev.type = trace::EventType::kSrmAdaptReq;
      ev.t = transport_->queue().now();
      ev.actor = id_;
      ev.x = c1();
      ev.y = c2();
      tracer_->emit(ev);
    }
  }
}

void SrmAgent::note_request_observed(const DataName& name, bool ours) {
  if (!request_period_ || request_period_->name != name) return;
  ++request_period_->observed;
  if (ours) request_period_->we_sent = true;
}

void SrmAgent::open_repair_period(const DataName& name) {
  bool prev_we_sent = false;
  if (repair_period_) {
    if (repair_period_->name == name) return;
    const std::size_t dups =
        repair_period_->observed > 0 ? repair_period_->observed - 1 : 0;
    metrics_.dup_repairs_heard += dups;
    prev_we_sent = repair_period_->we_sent;
    if (config_.adaptive.enabled) repair_tuner_.end_period(dups);
  }
  repair_period_ = Period{name, 0, false};
  if (config_.adaptive.enabled) {
    repair_tuner_.adapt_on_timer_set(prev_we_sent);
    if (tracer_->wants(trace::Category::kSrm)) {
      trace::Event ev;
      ev.type = trace::EventType::kSrmAdaptRep;
      ev.t = transport_->queue().now();
      ev.actor = id_;
      ev.x = d1();
      ev.y = d2();
      tracer_->emit(ev);
    }
  }
}

void SrmAgent::note_repair_observed(const DataName& name, bool ours) {
  if (!repair_period_ || repair_period_->name != name) return;
  ++repair_period_->observed;
  if (ours) repair_period_->we_sent = true;
}

// ---------------------------------------------------------------------------
// Transmission: priorities + token bucket (Sec. III-E)
// ---------------------------------------------------------------------------

SrmAgent::Priority SrmAgent::recovery_priority(const DataName& name) const {
  return name.page == current_page_ ? Priority::kCurrentPageRecovery
                                    : Priority::kOldPageRecovery;
}

void SrmAgent::transmit(net::Packet packet, Priority priority) {
  if (!config_.rate_limit.enabled) {
    transport_->multicast(node_, std::move(packet));
    return;
  }
  const double bytes =
      static_cast<double>(packet.payload ? packet.payload->size_bytes() : 0);
  const sim::Time now = transport_->queue().now();
  if (send_queue_.empty() && rate_limiter_.try_consume(bytes, now)) {
    transport_->multicast(node_, std::move(packet));
    return;
  }
  // Insert keeping the queue ordered by priority band, FIFO within a band.
  QueuedSend qs{std::move(packet), priority, send_seq_++};
  auto pos = std::find_if(send_queue_.begin(), send_queue_.end(),
                          [&](const QueuedSend& other) {
                            return static_cast<int>(other.priority) >
                                   static_cast<int>(priority);
                          });
  send_queue_.insert(pos, std::move(qs));
  if (!send_queue_timer_->pending()) {
    const double head_bytes = static_cast<double>(
        send_queue_.front().packet.payload
            ? send_queue_.front().packet.payload->size_bytes()
            : 0);
    send_queue_timer_->schedule_in(
        rate_limiter_.delay_until_available(head_bytes, now));
  }
}

void SrmAgent::drain_send_queue() {
  const sim::Time now = transport_->queue().now();
  while (!send_queue_.empty()) {
    const double bytes = static_cast<double>(
        send_queue_.front().packet.payload
            ? send_queue_.front().packet.payload->size_bytes()
            : 0);
    if (!rate_limiter_.try_consume(bytes, now)) {
      send_queue_timer_->schedule_in(
          rate_limiter_.delay_until_available(bytes, now));
      return;
    }
    net::Packet packet = std::move(send_queue_.front().packet);
    send_queue_.pop_front();
    transport_->multicast(node_, std::move(packet));
  }
}

}  // namespace srm
