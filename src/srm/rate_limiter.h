// Token-bucket rate limiter (Sec. III-E).
//
// The wb design enforces a per-session sender bandwidth limit with "a token
// bucket rate limiter to enforce this peak rate on transmissions".  Tokens
// are bytes; a send of b bytes is admitted when at least b tokens are
// available.  The limiter answers *when* the next send of a given size could
// go out, so the agent's send queue can schedule itself.
#pragma once

#include <algorithm>

#include "sim/event_queue.h"
#include "srm/config.h"

namespace srm {

class RateLimiter {
 public:
  RateLimiter(const RateLimitConfig& config, sim::Time now)
      : rate_(config.tokens_per_second),
        depth_(config.bucket_depth),
        tokens_(config.bucket_depth),
        last_refill_(now) {}

  // Attempts to consume `bytes` tokens at virtual time `now`.  A send
  // larger than the bucket depth is admitted once the bucket is full and
  // leaves the token count negative, so the deficit paces later sends
  // (otherwise an oversized packet could never be sent at all).
  bool try_consume(double bytes, sim::Time now) {
    refill(now);
    if (tokens_ < std::min(bytes, depth_)) return false;
    tokens_ -= bytes;
    return true;
  }

  // Seconds until a send of `bytes` could be admitted (0 if admissible now).
  // Sends larger than the bucket depth are admitted once the bucket fills.
  sim::Time delay_until_available(double bytes, sim::Time now) {
    refill(now);
    const double needed = std::min(bytes, depth_);
    if (tokens_ >= needed) return 0.0;
    return (needed - tokens_) / rate_;
  }

  double tokens(sim::Time now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(sim::Time now) {
    if (now > last_refill_) {
      tokens_ = std::min(depth_, tokens_ + rate_ * (now - last_refill_));
      last_refill_ = now;
    }
  }

  double rate_;
  double depth_;
  double tokens_;
  sim::Time last_refill_;
};

}  // namespace srm
