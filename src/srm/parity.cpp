#include "srm/parity.h"

#include <algorithm>
#include <stdexcept>

#include "srm/fec/gf256.h"

namespace srm::parity {

namespace {

void put_u32(Payload& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

std::optional<std::uint32_t> get_u32(const Payload& p, std::size_t at) {
  if (at + 4 > p.size()) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[at + i]) << (8 * i);
  }
  return v;
}

}  // namespace

ParitySession::ParitySession(SrmAgent& agent, std::size_t block_size)
    : agent_(&agent), k_(block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("ParitySession: block_size == 0");
  }
  SrmAgent::AppHooks hooks;
  hooks.on_data = [this](const DataName& name, const Payload& frame,
                         bool via_repair) {
    on_agent_data(name, frame, via_repair);
  };
  agent_->set_app_hooks(std::move(hooks));
}

Payload ParitySession::frame_data(const Payload& app_payload) {
  Payload frame;
  frame.reserve(5 + app_payload.size());
  frame.push_back(kDataTag);
  put_u32(frame, static_cast<std::uint32_t>(app_payload.size()));
  frame.insert(frame.end(), app_payload.begin(), app_payload.end());
  return frame;
}

std::optional<Payload> ParitySession::unframe_data(const Payload& frame) {
  if (frame.empty() || frame[0] != kDataTag) return std::nullopt;
  const auto len = get_u32(frame, 1);
  if (!len || 5 + *len != frame.size()) return std::nullopt;
  return Payload(frame.begin() + 5, frame.end());
}

bool ParitySession::is_parity_frame(const Payload& frame) {
  return !frame.empty() && frame[0] == kParityTag;
}

Payload ParitySession::xor_frames(const std::vector<const Payload*>& frames,
                                  std::size_t length) {
  // Scheme 0 of the block-FEC engine: every symbol folded in with
  // coefficient 1 (XOR), shorter frames implicitly zero-padded.
  Payload out(length, 0);
  for (const Payload* f : frames) {
    fec::gf_mul_add(1, f->data(), out.data(), std::min(length, f->size()));
  }
  return out;
}

DataName ParitySession::send(const PageId& page, Payload app_payload) {
  Payload frame = frame_data(app_payload);
  std::vector<Payload>& block = outgoing_[page];
  block.push_back(frame);
  const DataName name = agent_->send_data(page, std::move(frame));

  if (block.size() == k_) {
    // Emit the block's parity: XOR of the k data frames padded to the
    // longest, preceded by the parity tag and that padded length.
    std::size_t max_len = 0;
    std::vector<const Payload*> ptrs;
    ptrs.reserve(k_);
    for (const Payload& f : block) {
      max_len = std::max(max_len, f.size());
      ptrs.push_back(&f);
    }
    Payload parity;
    parity.reserve(5 + max_len);
    parity.push_back(kParityTag);
    put_u32(parity, static_cast<std::uint32_t>(max_len));
    const Payload x = xor_frames(ptrs, max_len);
    parity.insert(parity.end(), x.begin(), x.end());
    ++stats_.parity_sent;
    agent_->send_data(page, std::move(parity));
    block.clear();
  }
  return name;
}

void ParitySession::on_agent_data(const DataName& name, const Payload& frame,
                                  bool via_repair) {
  const std::uint64_t block = name.seq / (k_ + 1);
  const std::uint64_t pos = name.seq % (k_ + 1);

  // Record the frame in the block reassembly state (own sends do not loop
  // back through the agent hook, so this is receiver-side only).
  BlockState& st = blocks_[BlockKey{stream_of(name), block}];
  if (st.frames.empty()) st.frames.resize(k_ + 1);
  if (!st.frames[pos]) {
    st.frames[pos] = frame;
    ++st.present;
  }

  // Deliver data frames to the application; parity frames stay internal.
  if (pos < k_) {
    const auto app = unframe_data(frame);
    if (app && handler_) handler_(name, *app, via_repair);
  }

  try_reconstruct(stream_of(name), block);
}

void ParitySession::try_reconstruct(const StreamKey& stream,
                                    std::uint64_t block) {
  BlockState& st = blocks_[BlockKey{stream, block}];
  if (st.reconstructed || st.present != k_) return;
  // Exactly one of the k+1 ADUs is missing; if it is the parity itself
  // there is nothing to do (SRM will repair it if someone needs it).
  std::size_t missing = k_ + 1;
  for (std::size_t i = 0; i <= k_; ++i) {
    if (!st.frames[i]) {
      missing = i;
      break;
    }
  }
  if (missing == k_ + 1 || missing == k_) return;
  const Payload* parity = st.frames[k_] ? &*st.frames[k_] : nullptr;
  if (parity == nullptr) return;  // can't reconstruct without the parity

  // XOR parity body with the k-1 present data frames.
  const auto max_len = get_u32(*parity, 1);
  if (!max_len || parity->size() != 5 + *max_len) return;  // malformed
  std::vector<const Payload*> ptrs;
  Payload parity_body(parity->begin() + 5, parity->end());
  ptrs.push_back(&parity_body);
  for (std::size_t i = 0; i < k_; ++i) {
    if (i != missing && st.frames[i]) ptrs.push_back(&*st.frames[i]);
  }
  Payload frame = xor_frames(ptrs, *max_len);
  // Strip the XOR padding: the reconstructed frame is self-describing.
  const auto len = get_u32(frame, 1);
  if (frame.empty() || frame[0] != kDataTag || !len || 5 + *len > frame.size()) {
    ++stats_.unusable_blocks;
    return;  // corrupt reconstruction; leave it to SRM
  }
  frame.resize(5 + *len);

  st.frames[missing] = frame;
  ++st.present;
  st.reconstructed = true;
  ++stats_.reconstructions;

  const DataName missing_name{stream.source, stream.page,
                              block * (k_ + 1) + missing};
  // Feeding it back through the agent cancels any pending request, stores
  // the ADU for answering others, and re-enters on_agent_data to deliver
  // the application payload.
  agent_->supply_data(missing_name, std::move(frame));
}

}  // namespace srm::parity
