#include "srm/session_hierarchy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace srm {

namespace {

constexpr sim::Time kNeverHeard = -std::numeric_limits<sim::Time>::infinity();

std::uint64_t wheel_item(std::uint32_t epoch, std::uint32_t dense) {
  return (static_cast<std::uint64_t>(epoch) << 32) | dense;
}

}  // namespace

SessionHierarchy::SessionHierarchy(MemberDirectory& directory,
                                   const HierarchyConfig& config,
                                   std::uint32_t area_count,
                                   std::uint64_t seed)
    : directory_(&directory),
      config_(config),
      area_count_(std::max<std::uint32_t>(1, area_count)),
      seed_(seed) {
  areas_.resize(area_count_);
}

SessionHierarchy::~SessionHierarchy() {
  stop();
  // Unchain hooks so an agent outliving this object cannot call into it.
  for (const auto& m : members_) {
    if (m && m->attached && m->agent != nullptr) {
      m->agent->set_app_hooks(m->previous_hooks);
    }
  }
}

SessionHierarchy::Member& SessionHierarchy::ensure_member(SrmAgent& agent,
                                                          std::uint32_t area) {
  const std::uint32_t dense = directory_->index().intern(agent.id());
  if (dense >= members_.size()) members_.resize(dense + 1);
  if (!members_[dense]) {
    members_[dense] = std::make_unique<Member>();
    Member& m = *members_[dense];
    m.dense = dense;
    m.area = area;
    m.slot = static_cast<std::uint32_t>(areas_[area].member_dense.size());
    areas_[area].member_dense.push_back(dense);
    m.area_table.resize(area_count_);
  } else if (members_[dense]->area != area) {
    // Re-join into a different area: take a fresh slot there.  The old
    // slot stays allocated (slots are never recycled); peers' liveness for
    // it simply ages out.
    Member& m = *members_[dense];
    m.area = area;
    m.slot = static_cast<std::uint32_t>(areas_[area].member_dense.size());
    areas_[area].member_dense.push_back(dense);
    m.last_heard.clear();
    m.last_report_seq.clear();
  }
  return *members_[dense];
}

void SessionHierarchy::attach(SrmAgent& agent, std::uint32_t area) {
  if (area >= area_count_) {
    throw std::out_of_range("SessionHierarchy::attach: bad area");
  }
  Member& m = ensure_member(agent, area);
  if (m.attached) {
    throw std::logic_error("SessionHierarchy::attach: already attached");
  }
  m.agent = &agent;
  m.attached = true;
  ++m.epoch;  // invalidates any wheel item from a previous attachment
  m.previous_hooks = agent.app_hooks();
  SrmAgent::AppHooks hooks = m.previous_hooks;
  Member* mp = &m;
  hooks.on_session_message = [this, mp](const SessionMessage& msg,
                                        const net::DeliveryInfo& info) {
    on_session(*mp, msg, info);
    if (mp->previous_hooks.on_session_message) {
      mp->previous_hooks.on_session_message(msg, info);
    }
  };
  agent.set_app_hooks(std::move(hooks));
  wheel_for(agent.queue());  // create the queue's wheel while serialized
  if (running_) schedule_tick(m, /*initial=*/true);
}

void SessionHierarchy::detach(SrmAgent& agent) {
  const std::uint32_t dense = directory_->index().find(agent.id());
  if (dense == MemberIndex::kNoIndex || dense >= members_.size() ||
      !members_[dense] || !members_[dense]->attached) {
    throw std::out_of_range("SessionHierarchy::detach: not attached");
  }
  Member& m = *members_[dense];
  agent.set_app_hooks(m.previous_hooks);
  m.previous_hooks = SrmAgent::AppHooks{};
  m.attached = false;
  m.agent = nullptr;
  ++m.epoch;  // the pending wheel item (if any) goes stale
}

void SessionHierarchy::start() {
  if (running_) return;
  running_ = true;
  // Dense order: the schedule()-call sequence — and with it every queue's
  // event seq assignment — is a pure function of the membership.
  for (const auto& m : members_) {
    if (m && m->attached) schedule_tick(*m, /*initial=*/true);
  }
}

void SessionHierarchy::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& [queue, wheel] : wheels_) wheel->cancel_all();
}

sim::BatchTimerWheel& SessionHierarchy::wheel_for(sim::EventQueue& queue) {
  auto& slot = wheels_[&queue];
  if (!slot) {
    const sim::Time width =
        config_.report_interval /
        static_cast<double>(std::max<std::uint32_t>(1, config_.wheel_buckets));
    slot = std::make_unique<sim::BatchTimerWheel>(
        queue, width, [this](std::uint64_t item) { on_wheel_item(item); });
  }
  return *slot;
}

void SessionHierarchy::schedule_tick(Member& m, bool initial) {
  const double u = util::keyed_unit(seed_, m.area, m.slot, m.ordinal++);
  const sim::Time iv = config_.report_interval;
  // Initial reports stagger uniformly across one interval; steady-state
  // intervals are uniform in [1-jitter, 1+jitter] x mean (Sec. III-A's
  // desynchronization, with stateless keyed draws).
  const sim::Time dt =
      initial ? iv * u
              : iv * (1.0 - config_.jitter + 2.0 * config_.jitter * u);
  sim::EventQueue& queue = m.agent->queue();
  wheel_for(queue).schedule(m.area, wheel_item(m.epoch, m.dense),
                            queue.now() + dt);
}

void SessionHierarchy::on_wheel_item(std::uint64_t item) {
  const auto dense = static_cast<std::uint32_t>(item & 0xFFFFFFFFu);
  const auto epoch = static_cast<std::uint32_t>(item >> 32);
  if (dense >= members_.size() || !members_[dense]) return;
  Member& m = *members_[dense];
  // A stale epoch is a lazily-cancelled timer (the member detached, and
  // possibly re-attached, since this item was scheduled): drop it.
  if (!m.attached || m.epoch != epoch || !running_) return;
  tick(m);
}

void SessionHierarchy::on_session(Member& m, const SessionMessage& msg,
                                  const net::DeliveryInfo& info) {
  const sim::Time now = m.agent->queue().now();
  // Representatives' global reports carry area digests; fold them so this
  // member tracks every area's live count at O(areas) memory.
  if (!msg.digests().empty()) m.area_table.fold(msg.digests(), now);
  // A message that arrived with hop count within the local radius means the
  // sender is in our local area, whatever TTL it was sent with.
  if (info.hops > config_.local_ttl) return;
  const std::uint32_t sender = directory_->index().find(msg.sender());
  if (sender == MemberIndex::kNoIndex || sender >= members_.size() ||
      !members_[sender]) {
    return;  // not a hierarchy member (e.g. flat-session traffic)
  }
  const Member& s = *members_[sender];
  if (s.area != m.area || s.dense == m.dense) return;
  if (s.slot >= m.last_heard.size()) {
    const std::size_t size = areas_[m.area].member_dense.size();
    m.last_heard.resize(size, kNeverHeard);
    m.last_report_seq.resize(size, 0);
  }
  m.last_heard[s.slot] = now;
  ++m.last_report_seq[s.slot];
  m.heard_local = true;
}

SourceId SessionHierarchy::elect(const Member& m, sim::Time now) const {
  SourceId rep = directory_->index().source_at(m.dense);  // self: always live
  const sim::Time horizon = staleness_horizon();
  const AreaInfo& area = areas_[m.area];
  const std::size_t n =
      std::min(m.last_heard.size(), area.member_dense.size());
  for (std::size_t s = 0; s < n; ++s) {
    if (now - m.last_heard[s] > horizon) continue;
    const SourceId id = directory_->index().source_at(area.member_dense[s]);
    if (id < rep) rep = id;
  }
  return rep;
}

std::uint32_t SessionHierarchy::count_live(const Member& m, sim::Time now,
                                           SeqNo* max_seq_out) const {
  const sim::Time horizon = staleness_horizon();
  std::uint32_t live = 1;  // self
  SeqNo max_seq = m.local_sent + m.global_sent;
  const std::size_t n = m.last_heard.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (now - m.last_heard[s] > horizon) continue;
    ++live;
    max_seq = std::max(max_seq, m.last_report_seq[s]);
  }
  if (max_seq_out != nullptr) *max_seq_out = max_seq;
  return live;
}

void SessionHierarchy::tick(Member& m) {
  const sim::Time now = m.agent->queue().now();
  // Cold-start guard: before a member has heard any local peer, elect()
  // trivially names it representative — if everyone acted on that, the
  // first interval would be G global reports, an O(G^2) delivery flood
  // that also makes every member intern ~G distant peers.  A member
  // therefore claims the representative role only with evidence: it has
  // heard its area (and still has the smallest id), or a full interval
  // passed with nobody audible (the genuine singleton-area case,
  // ordinal >= 2 means this is not the first tick).  The guard reads
  // member-local state only, so it is deterministic under the parallel
  // kernel.
  const bool warmed = m.heard_local || m.ordinal >= 2;
  if (warmed && elect(m, now) == m.agent->id()) {
    SeqNo max_seq = 0;
    const std::uint32_t live = count_live(m, now, &max_seq);
    AreaLiveTable::build_digests(m.digest_scratch, m.area, live, max_seq);
    ++m.global_sent;
    ++total_global_;
    m.agent->send_session_message(net::kMaxTtl, std::move(m.digest_scratch));
  } else {
    ++m.local_sent;
    ++total_local_;
    m.agent->send_session_message(config_.local_ttl);
  }
  schedule_tick(m, /*initial=*/false);
}

const SessionHierarchy::Member* SessionHierarchy::member_of(
    const SrmAgent& agent) const {
  const std::uint32_t dense = directory_->index().find(agent.id());
  if (dense == MemberIndex::kNoIndex || dense >= members_.size() ||
      !members_[dense]) {
    return nullptr;
  }
  return members_[dense].get();
}

std::uint32_t SessionHierarchy::area_of(const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  if (m == nullptr) {
    throw std::out_of_range("SessionHierarchy::area_of: unknown member");
  }
  return m->area;
}

SourceId SessionHierarchy::representative_of(const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  if (m == nullptr) {
    throw std::out_of_range(
        "SessionHierarchy::representative_of: unknown member");
  }
  return elect(*m, agent.queue().now());
}

std::size_t SessionHierarchy::live_local_peers(const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  if (m == nullptr) return 0;
  return count_live(*m, agent.queue().now(), nullptr) - 1;
}

std::size_t SessionHierarchy::estimated_group_size(
    const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  if (m == nullptr) return 0;
  const sim::Time now = agent.queue().now();
  return count_live(*m, now, nullptr) +
         m->area_table.live_elsewhere(m->area, now, staleness_horizon());
}

std::uint64_t SessionHierarchy::global_reports_sent(
    const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  return m != nullptr ? m->global_sent : 0;
}

std::uint64_t SessionHierarchy::local_reports_sent(
    const SrmAgent& agent) const {
  const Member* m = member_of(agent);
  return m != nullptr ? m->local_sent : 0;
}

std::size_t SessionHierarchy::pending_wheel_buckets() const {
  std::size_t total = 0;
  for (const auto& [queue, wheel] : wheels_) total += wheel->pending_buckets();
  return total;
}

std::size_t SessionHierarchy::pending_wheel_items() const {
  std::size_t total = 0;
  for (const auto& [queue, wheel] : wheels_) total += wheel->pending_items();
  return total;
}

}  // namespace srm
