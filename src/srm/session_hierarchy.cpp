#include "srm/session_hierarchy.h"

namespace srm {

SessionHierarchy::SessionHierarchy(SrmAgent& agent, HierarchyConfig config,
                                   util::Rng rng)
    : agent_(&agent), config_(config), rng_(std::move(rng)) {
  previous_hooks_ = agent_->app_hooks();
  SrmAgent::AppHooks hooks = previous_hooks_;
  hooks.on_session_message = [this](const SessionMessage& msg,
                                    const net::DeliveryInfo& info) {
    on_session(msg, info);
    if (previous_hooks_.on_session_message) {
      previous_hooks_.on_session_message(msg, info);
    }
  };
  agent_->set_app_hooks(std::move(hooks));
  timer_ = std::make_unique<sim::Timer>(agent_->queue(), [this] { tick(); });
}

SessionHierarchy::~SessionHierarchy() { stop(); }

void SessionHierarchy::start() {
  if (running_) return;
  running_ = true;
  timer_->schedule_in(
      config_.report_interval * rng_.uniform(0.0, 1.0));  // desynchronize
}

void SessionHierarchy::stop() {
  running_ = false;
  if (timer_) timer_->cancel();
}

void SessionHierarchy::on_session(const SessionMessage& msg,
                                  const net::DeliveryInfo& info) {
  // A message that arrived with hop count within the local radius means the
  // sender is in our local area, whatever TTL it was sent with.
  if (info.hops <= config_.local_ttl) {
    local_heard_[msg.sender()] = agent_->queue().now();
  }
}

SourceId SessionHierarchy::representative() const {
  const sim::Time now = agent_->queue().now();
  SourceId rep = agent_->id();
  for (const auto& [peer, heard_at] : local_heard_) {
    if (now - heard_at <= staleness_horizon() && peer < rep) rep = peer;
  }
  return rep;
}

std::size_t SessionHierarchy::live_local_peers() const {
  const sim::Time now = agent_->queue().now();
  std::size_t live = 0;
  for (const auto& [peer, heard_at] : local_heard_) {
    if (now - heard_at <= staleness_horizon()) ++live;
  }
  return live;
}

void SessionHierarchy::tick() {
  if (!running_) return;
  if (is_representative()) {
    ++global_sent_;
    agent_->send_session_message(net::kMaxTtl);
  } else {
    ++local_sent_;
    agent_->send_session_message(config_.local_ttl);
  }
  timer_->schedule_in(config_.report_interval * rng_.uniform(0.5, 1.5));
}

}  // namespace srm
