// Adaptive adjustment of the request/repair timer parameters (Sec. VII-A,
// Figs. 9-11).
//
// Each member measures, over its own loss-recovery history,
//   ave_dup  - EWMA of the number of duplicate requests (repairs) seen per
//              request (repair) period, and
//   ave_delay- EWMA of the delay from setting the timer until a request
//              (repair) was sent by anyone, in units of the RTT to the
//              source of the missing data,
// and nudges (C1, C2) (respectively (D1, D2)):
//   - too many duplicates        -> widen:  start += 0.1, width += 0.5
//   - few duplicates, high delay -> shrink: width -= 0.5, and start -= 0.05
//     when shrinking the start is safe (we have been a requestor recently,
//     or duplicates are well under target)
// plus two deterministic-suppression encouragements: a member shrinks its
// start parameter after it sends a request, and when a duplicate request
// arrives from a member reporting a distance > 1.5x its own.  All values are
// clamped to the Fig. 11 bounds.  The exact pseudocode of Fig. 10 is not in
// the available text; this reconstruction uses the step sizes, thresholds
// and mechanisms the prose states, and is validated by reproducing the
// behavior of Figs. 13-14 (duplicates driven to ~1 within ~40 rounds).
#pragma once

#include "srm/config.h"
#include "util/stats.h"

namespace srm {

// One tuner instance adapts one (start, width) timer pair; an SRM agent owns
// two: one for request timers (C1, C2) and one for repair timers (D1, D2).
class AdaptiveTuner {
 public:
  struct Bounds {
    double start_min, start_max;
    double width_min, width_max;
  };

  AdaptiveTuner(const AdaptiveParams& params, Bounds bounds, double start,
                double width);

  // --- measurement hooks -------------------------------------------------

  // A period ended (a new loss/request arrived for different data): fold the
  // duplicate count for the finished period into the average.
  void end_period(std::size_t duplicates_in_period);

  // A timer resolved (expired locally, or was first reset/cleared because
  // someone else acted): record the delay from timer-set to action, in RTT
  // units of the relevant source.
  void record_delay(double delay_in_rtt);

  // --- adaptation hooks ---------------------------------------------------

  // General adaptation performed when a new timer is set (Fig. 10).
  // `was_recent_sender` is true if this member sent a request/repair in the
  // current or previous period.
  void adapt_on_timer_set(bool was_recent_sender);

  // Deterministic-suppression encouragement: we just sent a request/repair.
  void on_sent();

  // We sent a request and then heard a duplicate from a member reporting
  // `their_distance` vs our `our_distance` to the source: if they are
  // significantly farther, shrink our start so we keep firing first.
  void on_duplicate_from_farther(double our_distance, double their_distance);

  // --- current values -----------------------------------------------------

  double start() const { return start_; }   // C1 or D1
  double width() const { return width_; }   // C2 or D2
  double ave_dups() const { return ave_dups_.value(); }
  double ave_delay() const { return ave_delay_.value(); }

 private:
  void clamp();

  AdaptiveParams params_;
  Bounds bounds_;
  double start_;
  double width_;
  util::Ewma ave_dups_;
  util::Ewma ave_delay_;
};

}  // namespace srm
