// SRM wire messages (Sec. III).
//
// Four message types ride the multicast group:
//   DATA     - original transmission of an ADU
//   REQUEST  - repair request, naming the missing ADU (not addressed to any
//              particular sender; anyone holding the data may answer)
//   REPAIR   - retransmission of an ADU, from any member that has it
//   SESSION  - periodic state report + timestamps for distance estimation
//
// Requests carry the requestor's estimated distance to the data's source and
// repairs the responder's estimated distance to the requestor, which the
// adaptive algorithm uses to prefer nearby responders (Sec. VII-A).
// Requests/repairs also carry their initial TTL in a payload field so
// receivers can recover the sender's intended scope (Sec. VII-B.3).
//
// Each class reports a stable trace_kind() for the `kind` field of net-layer
// trace events: 1=DATA, 2=REQUEST, 3=REPAIR, 4=SESSION, 5=PAGE-REQUEST,
// 6=PAGE-REPLY (0 = non-SRM payload).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/event_queue.h"
#include "srm/names.h"
#include "util/flat_map.h"

namespace srm {

// Opaque application payload bytes.
using Payload = std::vector<std::uint8_t>;
using PayloadPtr = std::shared_ptr<const Payload>;

class DataMessage final : public net::Message {
 public:
  DataMessage(DataName name, PayloadPtr payload)
      : name_(name), payload_(std::move(payload)) {}

  const DataName& name() const { return name_; }
  const PayloadPtr& payload() const { return payload_; }

  std::string describe() const override { return "DATA " + to_string(name_); }
  std::size_t size_bytes() const override {
    return 32 + (payload_ ? payload_->size() : 0);
  }
  std::uint32_t trace_kind() const override { return 1; }

 private:
  DataName name_;
  PayloadPtr payload_;
};

class RequestMessage final : public net::Message {
 public:
  RequestMessage(DataName name, SourceId requestor,
                 double requestor_dist_to_source, int initial_ttl)
      : name_(name),
        requestor_(requestor),
        requestor_dist_to_source_(requestor_dist_to_source),
        initial_ttl_(initial_ttl) {}

  const DataName& name() const { return name_; }
  SourceId requestor() const { return requestor_; }
  // The requestor's estimated one-way delay to the source of the missing
  // data; consumed by the adaptive timer mechanism.
  double requestor_dist_to_source() const { return requestor_dist_to_source_; }
  int initial_ttl() const { return initial_ttl_; }

  // Recycles this message for a new request (net::MessagePool contract).
  void rebind(DataName name, SourceId requestor,
              double requestor_dist_to_source, int initial_ttl) {
    name_ = name;
    requestor_ = requestor;
    requestor_dist_to_source_ = requestor_dist_to_source;
    initial_ttl_ = initial_ttl;
  }

  std::string describe() const override {
    return "REQUEST " + to_string(name_) + " by " + std::to_string(requestor_);
  }
  std::size_t size_bytes() const override { return 48; }
  std::uint32_t trace_kind() const override { return 2; }

 private:
  DataName name_;
  SourceId requestor_;
  double requestor_dist_to_source_;
  int initial_ttl_;
};

class RepairMessage final : public net::Message {
 public:
  RepairMessage(DataName name, PayloadPtr payload, SourceId responder,
                SourceId first_requestor, double responder_dist_to_requestor,
                int initial_ttl, bool local_step_one = false)
      : name_(name),
        payload_(std::move(payload)),
        responder_(responder),
        first_requestor_(first_requestor),
        responder_dist_to_requestor_(responder_dist_to_requestor),
        initial_ttl_(initial_ttl),
        local_step_one_(local_step_one) {}

  const DataName& name() const { return name_; }
  const PayloadPtr& payload() const { return payload_; }
  SourceId responder() const { return responder_; }
  // For two-step local recovery: the member whose request triggered this
  // repair; that member re-multicasts the repair at the request's TTL.
  SourceId first_requestor() const { return first_requestor_; }
  double responder_dist_to_requestor() const {
    return responder_dist_to_requestor_;
  }
  int initial_ttl() const { return initial_ttl_; }
  // True for the first (responder -> requestor) step of a two-step local
  // repair; the requestor answers it with the second, full-scope step.
  bool local_step_one() const { return local_step_one_; }

  // Recycles this message for a new repair (net::MessagePool contract).
  void rebind(DataName name, PayloadPtr payload, SourceId responder,
              SourceId first_requestor, double responder_dist_to_requestor,
              int initial_ttl, bool local_step_one = false) {
    name_ = name;
    payload_ = std::move(payload);
    responder_ = responder;
    first_requestor_ = first_requestor;
    responder_dist_to_requestor_ = responder_dist_to_requestor;
    initial_ttl_ = initial_ttl;
    local_step_one_ = local_step_one;
  }

  std::string describe() const override {
    return "REPAIR " + to_string(name_) + " by " + std::to_string(responder_);
  }
  std::size_t size_bytes() const override {
    return 48 + (payload_ ? payload_->size() : 0);
  }
  std::uint32_t trace_kind() const override { return 3; }

 private:
  DataName name_;
  PayloadPtr payload_;
  SourceId responder_;
  SourceId first_requestor_;
  double responder_dist_to_requestor_;
  int initial_ttl_;
  bool local_step_one_;
};

class SessionMessage final : public net::Message {
 public:
  // State report: highest sequence number seen per active stream of the
  // page the sender is currently viewing (Sec. III-A).  Flat sorted vector:
  // built once per send, binary-searched on receive (see util/flat_map.h).
  using StateReport = util::FlatMap<StreamKey, SeqNo>;

  // Timestamp echo for NTP-lite distance estimation: "host B generates a
  // session packet marked with (t1, delta)" where t1 is the timestamp of the
  // last session packet B received from that peer and delta is how long B
  // held it before sending.
  struct Echo {
    sim::Time peer_timestamp = 0.0;  // t1, in the peer's clock
    sim::Time hold_time = 0.0;       // delta, receiver-side residence time

    friend bool operator==(const Echo&, const Echo&) = default;
  };

  // Echo table, sorted by peer Source-ID.
  using Echoes = util::FlatMap<SourceId, Echo>;

  // Hierarchical aggregation (Sec. IX-A; ARCHITECTURE.md §12): a
  // representative's global session message summarizes its local area so
  // every member can estimate the whole group's size without hearing every
  // member.  live_members counts local peers heard within the staleness
  // horizon; max_seq is the highest report ordinal observed in the area (a
  // freshness watermark).  Flat sessions leave the table empty, keeping the
  // wire format bit-identical to the pre-hierarchy tree.
  struct AreaDigest {
    std::uint32_t area = 0;
    std::uint32_t live_members = 0;
    SeqNo max_seq = 0;

    friend bool operator==(const AreaDigest&, const AreaDigest&) = default;
  };

  // Digest table, sorted by area id.
  using AreaDigests = std::vector<AreaDigest>;

  SessionMessage(SourceId sender, sim::Time sender_timestamp,
                 StateReport state, Echoes echoes, AreaDigests digests = {})
      : sender_(sender),
        sender_timestamp_(sender_timestamp),
        state_(std::move(state)),
        echoes_(std::move(echoes)),
        digests_(std::move(digests)) {}

  SourceId sender() const { return sender_; }
  // The sender's local clock when the message was sent (clocks need not be
  // synchronized across members).
  sim::Time sender_timestamp() const { return sender_timestamp_; }
  const StateReport& state() const { return state_; }
  const Echoes& echoes() const { return echoes_; }
  const AreaDigests& digests() const { return digests_; }

  // Recycles this message for a new send (net::MessagePool contract; only
  // called once no delivery references the object).  Swaps rather than
  // assigns the tables so the retiring message's vector capacity flows back
  // into the caller's scratch buffers: a session round settles into zero
  // steady-state allocation.
  void rebind(SourceId sender, sim::Time sender_timestamp, StateReport&& state,
              Echoes&& echoes) {
    sender_ = sender;
    sender_timestamp_ = sender_timestamp;
    state_.swap(state);
    echoes_.swap(echoes);
    digests_.clear();
  }

  // Digest-carrying variant (hierarchy representatives); the swap hands the
  // recycled message's digest capacity back to the caller's scratch too.
  void rebind(SourceId sender, sim::Time sender_timestamp, StateReport&& state,
              Echoes&& echoes, AreaDigests&& digests) {
    sender_ = sender;
    sender_timestamp_ = sender_timestamp;
    state_.swap(state);
    echoes_.swap(echoes);
    digests_.swap(digests);
  }

  std::string describe() const override {
    return "SESSION from " + std::to_string(sender_);
  }
  std::size_t size_bytes() const override {
    return 24 + 16 * state_.size() + 20 * echoes_.size() +
           12 * digests_.size();
  }
  std::uint32_t trace_kind() const override { return 4; }

 private:
  SourceId sender_;
  sim::Time sender_timestamp_;
  StateReport state_;
  Echoes echoes_;
  AreaDigests digests_;
};

// Page-state recovery (Sec. III-A): "A receiver browsing over previous
// pages may issue page requests to learn the sequence number state for that
// page.  If a receiver joins late, it may issue page requests to learn the
// existence of previous pages."  The reply protocol mirrors the data
// repair protocol: any member holding the state answers after a randomized,
// suppressible delay.
class PageRequestMessage final : public net::Message {
 public:
  // A nullopt page asks for the list of known pages instead of one page's
  // sequence state.
  PageRequestMessage(SourceId requestor, std::optional<PageId> page)
      : requestor_(requestor), page_(page) {}

  SourceId requestor() const { return requestor_; }
  const std::optional<PageId>& page() const { return page_; }

  std::string describe() const override {
    return page_ ? "PAGE-REQUEST " + to_string(*page_)
                 : "PAGE-REQUEST <list>";
  }
  std::size_t size_bytes() const override { return 32; }
  std::uint32_t trace_kind() const override { return 5; }

 private:
  SourceId requestor_;
  std::optional<PageId> page_;
};

class PageReplyMessage final : public net::Message {
 public:
  PageReplyMessage(SourceId responder, std::optional<PageId> page,
                   SessionMessage::StateReport state,
                   std::vector<PageId> known_pages)
      : responder_(responder),
        page_(page),
        state_(std::move(state)),
        known_pages_(std::move(known_pages)) {}

  SourceId responder() const { return responder_; }
  const std::optional<PageId>& page() const { return page_; }
  // Sequence-number state for the requested page (empty for list replies).
  const SessionMessage::StateReport& state() const { return state_; }
  // Pages this member knows of (for list replies).
  const std::vector<PageId>& known_pages() const { return known_pages_; }

  std::string describe() const override {
    return page_ ? "PAGE-REPLY " + to_string(*page_) : "PAGE-REPLY <list>";
  }
  std::size_t size_bytes() const override {
    return 32 + 16 * state_.size() + 8 * known_pages_.size();
  }
  std::uint32_t trace_kind() const override { return 6; }

 private:
  SourceId responder_;
  std::optional<PageId> page_;
  SessionMessage::StateReport state_;
  std::vector<PageId> known_pages_;
};

}  // namespace srm
