// XOR parity repair layered over SRM — the fixed-layout ancestor of the
// generation-framed block-FEC engine in srm/fec/ (ARCHITECTURE.md §11).
//
// This is the K==1, scheme-0 code of the coded-repair stack in its simplest
// possible framing: every (k+1)-th ADU of a stream is the XOR parity of the
// preceding k data ADUs, and block membership is implied by *sequence
// arithmetic* rather than carried in the frames.  A receiver holding any k
// of a block's k+1 ADUs reconstructs the missing one locally and feeds it
// back to the agent with supply_data(), which cancels the pending repair
// request — transient single losses inside a block are repaired with zero
// control traffic.  Losses the parity cannot cover (two or more ADUs of one
// block) fall through to SRM's normal request/repair machinery, and parity
// ADUs themselves are ordinary ADUs that SRM will repair if lost.
//
// Block layout on a stream with block size k (positional — every frame's
// role is derived from its seq, which is why this layer cannot change K
// mid-stream; contrast the explicit [gen, idx] framing of fec::FecSession,
// which carries the generation geometry on each parity frame precisely so
// the budget can adapt per generation):
//   seq b*(k+1) .. b*(k+1)+k-1   data ADUs of block b
//   seq b*(k+1)+k                parity ADU of block b
//
// Frame format (the application payload handed to SrmAgent):
//   data:   [kDataTag]  [u32 length] [bytes...]
//   parity: [kParityTag][u32 max-framed-length] [xor of padded data frames]
//
// The XOR math itself is the engine's scheme-0 path (fec::encode with K=1,
// i.e. gf256.h's gf_mul_add with coefficient 1); this wrapper keeps the
// legacy frame format byte-for-byte stable for existing streams and tests.
// New code should prefer fec::FecSession, which generalizes this layer to
// K in [0..4] parities per generation with a loss-adaptive budget.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "srm/agent.h"
#include "srm/messages.h"
#include "srm/names.h"

namespace srm::parity {

inline constexpr std::uint8_t kDataTag = 0xD0;
inline constexpr std::uint8_t kParityTag = 0xF0;

struct ParityStats {
  std::uint64_t parity_sent = 0;
  std::uint64_t reconstructions = 0;   // losses repaired locally
  std::uint64_t unusable_blocks = 0;   // >=2 ADUs of a block missing
};

class ParitySession {
 public:
  // block_size k >= 1: one parity ADU after every k data ADUs.
  ParitySession(SrmAgent& agent, std::size_t block_size);

  // Sends one application payload; transparently emits the block's parity
  // ADU after every k-th send.  Returns the data ADU's name.
  DataName send(const PageId& page, Payload app_payload);

  // Application-level delivery (unframed payloads, data ADUs only, in any
  // order).  Installed via the agent's AppHooks by the constructor.
  using DataHandler =
      std::function<void(const DataName&, const Payload&, bool via_repair)>;
  void set_data_handler(DataHandler handler) { handler_ = std::move(handler); }

  std::size_t block_size() const { return k_; }
  const ParityStats& stats() const { return stats_; }

  // Frame helpers, exposed for tests.
  static Payload frame_data(const Payload& app_payload);
  static std::optional<Payload> unframe_data(const Payload& frame);
  static bool is_parity_frame(const Payload& frame);

 private:
  struct BlockState {
    // Framed payloads by position in the block; index k holds the parity.
    std::vector<std::optional<Payload>> frames;
    std::size_t present = 0;
    bool reconstructed = false;
  };

  void on_agent_data(const DataName& name, const Payload& frame,
                     bool via_repair);
  void try_reconstruct(const StreamKey& stream, std::uint64_t block);
  static Payload xor_frames(const std::vector<const Payload*>& frames,
                            std::size_t length);

  SrmAgent* agent_;
  std::size_t k_;
  DataHandler handler_;

  // Sender side: framed data of the in-progress block per page.
  std::unordered_map<PageId, std::vector<Payload>> outgoing_;

  // Receiver side: per (stream, block index) reassembly state.
  struct BlockKey {
    StreamKey stream;
    std::uint64_t block;
    friend bool operator==(const BlockKey&, const BlockKey&) = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept {
      return std::hash<StreamKey>{}(k.stream) ^
             (std::hash<std::uint64_t>{}(k.block) * 0x9E3779B97F4A7C15ULL);
    }
  };
  std::unordered_map<BlockKey, BlockState, BlockKeyHash> blocks_;

  ParityStats stats_;
};

}  // namespace srm::parity
