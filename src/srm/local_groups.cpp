#include "srm/local_groups.h"

#include <algorithm>

namespace srm {

LocalGroupManager::LocalGroupManager(SrmAgent& agent, LocalGroupConfig config,
                                     net::GroupId group_base)
    : agent_(&agent), config_(config), group_base_(group_base) {
  // Install hooks, chaining to whatever the application already set.
  previous_hooks_ = agent_->app_hooks();
  SrmAgent::AppHooks hooks = previous_hooks_;
  hooks.on_loss_detected = [this](const DataName& n) {
    on_loss(n);
    if (previous_hooks_.on_loss_detected) previous_hooks_.on_loss_detected(n);
  };
  hooks.on_unknown_message = [this](const net::Packet& p,
                                    const net::DeliveryInfo& i) {
    on_message(p, i);
  };
  agent_->set_app_hooks(std::move(hooks));
  agent_->set_request_group_policy([this](const DataName& name) {
    const auto it = stream_groups_.find(stream_of(name));
    return it == stream_groups_.end() ? agent_->group() : it->second;
  });
}

net::GroupId LocalGroupManager::recovery_group_for(
    const StreamKey& stream) const {
  const auto it = stream_groups_.find(stream);
  if (it == stream_groups_.end()) {
    throw std::out_of_range("LocalGroupManager: no recovery group");
  }
  return it->second;
}

void LocalGroupManager::on_loss(const DataName& name) {
  recent_losses_.push_back(name);
  while (recent_losses_.size() > config_.fingerprint_size) {
    recent_losses_.pop_front();
  }
  const StreamKey stream = stream_of(name);
  if (stream_groups_.count(stream)) return;  // already using a group
  if (++loss_counts_[stream] >= config_.losses_to_trigger) {
    create_group(stream);
  }
}

void LocalGroupManager::create_group(const StreamKey& stream) {
  const net::GroupId group = group_base_ + agent_->id();
  agent_->join_extra_group(group);
  stream_groups_[stream] = group;
  loss_counts_[stream] = 0;

  std::vector<DataName> fingerprint(recent_losses_.begin(),
                                    recent_losses_.end());
  ++invites_sent_;
  // The invite goes out on the session group with limited TTL: only the
  // neighborhood that shares the lossy link (plus the nearest potential
  // repairers just upstream of it) should join.
  agent_->send_app_message(
      agent_->group(),
      std::make_shared<RecoveryInvite>(group, agent_->id(), stream,
                                       std::move(fingerprint)),
      config_.invite_ttl);
}

void LocalGroupManager::on_message(const net::Packet& packet,
                                   const net::DeliveryInfo& info) {
  if (const auto* invite =
          dynamic_cast<const RecoveryInvite*>(packet.payload.get())) {
    handle_invite(*invite, info);
    return;
  }
  if (previous_hooks_.on_unknown_message) {
    previous_hooks_.on_unknown_message(packet, info);
  }
}

void LocalGroupManager::handle_invite(const RecoveryInvite& invite,
                                      const net::DeliveryInfo& info) {
  if (invite.initiator() == agent_->id()) return;

  // Join as a fellow loser if our recent losses overlap the fingerprint,
  // or as a potential repairer if we hold the fingerprinted data (the
  // group "must include some member capable of sending repairs").
  std::size_t shared = 0, held = 0;
  for (const DataName& n : invite.fingerprint()) {
    if (std::find(recent_losses_.begin(), recent_losses_.end(), n) !=
        recent_losses_.end()) {
      ++shared;
    }
    if (agent_->has_data(n)) ++held;
  }
  const bool fellow_loser =
      !invite.fingerprint().empty() &&
      static_cast<double>(shared) >=
          config_.join_overlap *
              static_cast<double>(invite.fingerprint().size());
  // Only nearby holders volunteer as repairers — one repairer suffices, and
  // every extra member re-widens the neighborhood the group was created to
  // shrink.  Holders beyond half the invite radius stay out; if the group
  // ends up with no repairer at all, request-scope escalation still
  // recovers through the session group.
  const bool repairer =
      held > 0 && info.hops * 2 <= config_.invite_ttl;
  if (!fellow_loser && !repairer) return;

  agent_->join_extra_group(invite.recovery_group());
  ++groups_joined_;
  if (fellow_loser) {
    // Route our own future requests for this stream to the recovery group.
    stream_groups_.try_emplace(invite.stream(), invite.recovery_group());
  }
}

}  // namespace srm
