// SRM configuration: the request/repair timer parameters of Sec. III-B, the
// adaptive-algorithm parameters of Sec. VII-A (Figs. 10-11), and framework
// policy knobs (session messaging, local recovery, rate limiting).
#pragma once

#include <cmath>

#include "sim/event_queue.h"

namespace srm {

// Request timers are drawn from uniform [C1*d_S, (C1+C2)*d_S] where d_S is
// the estimated one-way delay to the source of the missing data; repair
// timers from uniform [D1*d_A, (D1+D2)*d_A] where d_A is the distance to the
// requestor (Sec. III-B).
struct TimerParams {
  double c1 = 2.0;
  double c2 = 2.0;
  double d1 = 1.0;
  double d2 = 1.0;
};

// The paper's fixed-parameter settings for the Sec. V simulations:
// C1 = C2 = 2, D1 = D2 = log10(G) for a session of G members.
inline TimerParams paper_fixed_params(std::size_t group_size) {
  TimerParams p;
  p.c1 = 2.0;
  p.c2 = 2.0;
  const double lg = std::log10(static_cast<double>(group_size));
  p.d1 = lg;
  p.d2 = lg;
  return p;
}

// Bounds and step sizes of the adaptive adjustment algorithm (Sec. VII-A).
// The +0.1/-0.05 steps for C1/D1 and +0.5/-0.5 steps for C2/D2, the
// one-duplicate threshold (AveDups), and the EWMA weight 1/4 are from the
// paper's text; the min/max clamps reconstruct its Fig. 11.
struct AdaptiveParams {
  bool enabled = false;

  double target_dups = 1.0;    // AveDups
  double target_delay = 1.0;   // AveDelay, in units of RTT to the source
  double ewma_weight = 0.25;   // weight of the newest sample

  double start_increase = 0.1;    // C1/D1 += on too many duplicates
  double start_decrease = 0.05;   // C1/D1 -= when shrinking is safe
  double width_increase = 0.5;    // C2/D2 += on too many duplicates
  double width_decrease = 0.5;    // C2/D2 -= when delay is too high

  // Bounds (reconstructing Fig. 11).  The start parameters stay in a tight
  // band: deterministic suppression needs them small, and letting D1 drift
  // upward delays every repair (re-triggering requestors' backed-off timers
  // and spiralling).  The width parameters carry the spread that controls
  // duplicates, so they range much higher.
  double c1_min = 0.5, c1_max = 2.0;
  double c2_min = 1.0, c2_max = 200.0;
  double d1_min = 0.5, d1_max = 2.0;
  double d2_min = 1.0, d2_max = 200.0;

  // "Significantly further from the source" ratio used by the deterministic
  // suppression encouragement: a duplicate request from a member reporting a
  // distance greater than 1.5x our own lets us shrink C1.
  double farther_ratio = 1.5;
};

// How agents obtain inter-member distances.
enum class DistanceMode {
  // Ground-truth one-way path delays from the routing layer.  Matches the
  // paper's simulations, which assume converged estimates.
  kOracle,
  // Estimates learned from session-message timestamps (Sec. III-A); falls
  // back to `default_distance` for members not yet heard from.
  kEstimated,
};

struct SessionConfig {
  bool enabled = false;
  // Fraction of the aggregate data bandwidth allotted to session messages
  // (the paper suggests 5%).
  double bandwidth_fraction = 0.05;
  // Aggregate session data bandwidth estimate, bytes/second, used with
  // bandwidth_fraction to derive the average reporting interval.
  double data_bandwidth_bytes = 8000.0;
  // Lower bound on the mean interval between a member's session messages.
  sim::Time min_interval = 1.0;
  // Randomization spread: each interval is uniform in [0.5, 1.5] x mean,
  // which avoids synchronization of session messages across members.
  double jitter = 0.5;
  // Echo rotation (the vat/RTCP behavior the paper adopts): cap the echo
  // table of each outgoing session message at this many peers, rotating
  // through the membership across messages so every peer is still echoed
  // once per ceil(G/K) messages.  Keeps session messages O(K) instead of
  // O(G) in very large groups at the cost of slower estimate convergence.
  // 0 (the default) echoes every heard peer — bit-identical to the
  // historical behavior.
  std::size_t echo_rotation = 0;
};

struct LocalRecoveryConfig {
  bool enabled = false;
  // Two-step repairs (Sec. VII-B.3): first a repair at the request's TTL to
  // reach the requestor, then the requestor re-multicasts at that same TTL.
  // When false, one-step repairs are sent with TTL = request TTL + hops.
  bool two_step = true;
};

// Coded repair (srm/fec; ARCHITECTURE.md §11): generation size and the
// adaptive parity-budget hysteresis.  The budget knobs mirror
// fec::BudgetConfig; FecSession copies them across so the whole FEC layer is
// configured from the one SrmConfig the harness already threads everywhere.
struct FecConfig {
  bool enabled = false;
  // Data ADUs per generation.  Small generations bound reconstruction
  // latency (a parity only helps once the generation seals); the default
  // matches the loss-round harness's two sends per round.
  std::size_t generation_size = 2;
  std::size_t max_k = 4;              // ceiling on parity ADUs (<= 4)
  std::size_t initial_k = 1;          // starting budget (XOR fast path)
  std::size_t raise_threshold = 2;    // evidence per generation to raise K
  std::size_t decay_after_quiet = 3;  // quiet generations before K decays
  std::size_t burst_floor = 2;        // min K during a Gilbert-Elliott burst
};

// Hierarchical session messages (Sec. IX-A; ARCHITECTURE.md §12): members
// report with TTL-limited scope, one representative per local area (the
// lowest live Source-ID) aggregates into global session messages carrying a
// per-area digest.  When enabled, the harness drives reporting through
// srm::SessionHierarchy (batched timer wheels, struct-of-arrays liveness
// state sharded per area) instead of the agent's flat session schedule, and
// each agent's DistanceEstimator switches to a private member index so its
// peer tables scale with the peers actually heard (its area plus the
// representatives), not with the whole group.
struct HierarchyConfig {
  bool enabled = false;
  // Scope of local session messages; must reach the representative.
  int local_ttl = 4;
  // Local-area count; 0 derives ~sqrt(member count) from the topology.
  std::uint32_t areas = 0;
  // Mean reporting interval (jittered below).
  sim::Time report_interval = 10.0;
  // A local peer not heard for this many intervals is presumed gone.
  double staleness_intervals = 3.0;
  // Each interval is uniform in [1-jitter, 1+jitter] x report_interval,
  // drawn statelessly keyed by (area, member slot, draw ordinal) so traces
  // stay bit-identical under the parallel kernel.
  double jitter = 0.5;
  // Timer-wheel buckets per report interval: expiries quantize to
  // report_interval / wheel_buckets, bounding live heap entries at
  // areas x wheel_buckets instead of one per member.
  std::uint32_t wheel_buckets = 8;
};

struct RateLimitConfig {
  bool enabled = false;
  double tokens_per_second = 1e9;  // token refill rate (bytes/second)
  double bucket_depth = 1e9;       // maximum burst (bytes)
};

struct SrmConfig {
  TimerParams timers;
  AdaptiveParams adaptive;
  SessionConfig session;
  LocalRecoveryConfig local_recovery;
  RateLimitConfig rate_limit;
  FecConfig fec;
  HierarchyConfig hierarchy;

  DistanceMode distance_mode = DistanceMode::kOracle;
  // Distance assumed for members we have no estimate for (kEstimated mode).
  double default_distance = 1.0;

  // Multiplicative request-timer backoff.  Sec. III-B describes doubling;
  // the adaptive simulations use 3 "so a single node that experiences a
  // packet loss" does not fire its backed-off timer before the repair
  // arrives (Sec. VII-A).
  double backoff_factor = 2.0;

  // The ignore-backoff heuristic of footnote 1: after backing off, ignore
  // further duplicate requests until halfway to the new expiry time.
  bool ignore_backoff_heuristic = true;

  // Hold-down: ignore requests for 3 * d_S seconds after sending or
  // receiving a repair for that data (Sec. III-B).
  double holddown_multiplier = 3.0;

  // Safety valve for pathological scenarios: a request that has backed off
  // this many times without a repair abandons recovery of that ADU.  An
  // abandoned ADU is not re-requested when further requests for it are
  // overheard (only actual arrival of the data clears the abandonment).
  int max_request_backoffs = 16;

  // Scope escalation (Sec. VII-B): when a locally-scoped request (TTL-
  // limited or admin-scoped) has gone unanswered through repeated backoffs,
  // subsequent requests for that ADU are sent with global scope.  The
  // threshold of two unanswered requests leaves room for the repair's
  // three-hop round trip (request + repair timer + repair) before widening.
  bool escalate_scope_on_backoff = true;
  int escalate_scope_after = 2;  // own unanswered requests before widening
};

}  // namespace srm
