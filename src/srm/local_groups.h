// Local recovery via separate multicast groups (Sec. VII-B.2).
//
// "The initial requestor creates a separate multicast group for local
// recovery and invites other nearby members to join that multicast group.
// The multicast group must include some member capable of sending repairs.
// This mechanism is appropriate when there is a stable loss neighborhood
// that results from a particular lossy link."
//
// LocalGroupManager watches the agent's losses to build a loss fingerprint
// (the names of the last few local losses, as the paper suggests session
// messages could carry).  When a member keeps losing packets from the same
// stream, it creates a recovery group and multicasts a TTL-limited
// invitation carrying its fingerprint.  Members whose own recent losses
// overlap the fingerprint join, as do nearby members holding the data
// (potential repairers).  From then on the manager routes requests for that
// stream to the recovery group; SRM's scope escalation still falls back to
// the session group if the recovery group cannot answer.
#pragma once

#include <deque>
#include <set>
#include <string>
#include <unordered_map>

#include "srm/agent.h"
#include "srm/messages.h"

namespace srm {

// Invitation to join a recovery group, multicast with limited TTL.
class RecoveryInvite final : public net::Message {
 public:
  RecoveryInvite(net::GroupId recovery_group, SourceId initiator,
                 StreamKey stream, std::vector<DataName> fingerprint)
      : recovery_group_(recovery_group),
        initiator_(initiator),
        stream_(stream),
        fingerprint_(std::move(fingerprint)) {}

  net::GroupId recovery_group() const { return recovery_group_; }
  SourceId initiator() const { return initiator_; }
  const StreamKey& stream() const { return stream_; }
  const std::vector<DataName>& fingerprint() const { return fingerprint_; }

  std::string describe() const override {
    return "INVITE group " + std::to_string(recovery_group_) + " by " +
           std::to_string(initiator_);
  }
  std::size_t size_bytes() const override {
    return 32 + 20 * fingerprint_.size();
  }

 private:
  net::GroupId recovery_group_;
  SourceId initiator_;
  StreamKey stream_;
  std::vector<DataName> fingerprint_;
};

struct LocalGroupConfig {
  // Number of losses on one stream within the window before the member
  // considers the loss neighborhood stable and creates a recovery group.
  std::size_t losses_to_trigger = 3;
  // Recent losses retained for the fingerprint.
  std::size_t fingerprint_size = 8;
  // Minimum overlap (fraction of the invite's fingerprint also seen
  // locally) for a member to join as a fellow loser.
  double join_overlap = 0.5;
  // TTL of the invitation (the local-recovery neighborhood radius).
  int invite_ttl = 8;
};

class LocalGroupManager {
 public:
  // Recovery group ids are derived from `group_base` + initiator id, so
  // independent initiators pick distinct groups without coordination.
  LocalGroupManager(SrmAgent& agent, LocalGroupConfig config,
                    net::GroupId group_base);

  // Chain this manager's hooks with an application's (the manager installs
  // itself into the agent's AppHooks; call this before setting app hooks or
  // use the returned previous hooks pattern below).
  // The manager preserves any hooks already installed.

  // True if this member routed `stream`'s requests to a recovery group.
  bool in_recovery_group(const StreamKey& stream) const {
    return stream_groups_.count(stream) > 0;
  }
  net::GroupId recovery_group_for(const StreamKey& stream) const;

  std::size_t invites_sent() const { return invites_sent_; }
  std::size_t groups_joined() const { return groups_joined_; }

 private:
  void on_loss(const DataName& name);
  void on_message(const net::Packet& packet, const net::DeliveryInfo& info);
  void handle_invite(const RecoveryInvite& invite,
                     const net::DeliveryInfo& info);
  void create_group(const StreamKey& stream);

  SrmAgent* agent_;
  LocalGroupConfig config_;
  net::GroupId group_base_;
  SrmAgent::AppHooks previous_hooks_;

  // Recent local losses, newest last, bounded by fingerprint_size.
  std::deque<DataName> recent_losses_;
  // Loss counts per stream since the last group creation for it.
  std::unordered_map<StreamKey, std::size_t> loss_counts_;
  // Streams whose recovery traffic moved to a dedicated group.
  std::unordered_map<StreamKey, net::GroupId> stream_groups_;

  std::size_t invites_sent_ = 0;
  std::size_t groups_joined_ = 0;
};

}  // namespace srm
