// Application Data Unit naming (Sec. II-C / III).
//
// SRM assumes all data has a unique, persistent name, independent of the
// sending host's transport state: a (Source-ID, Page-ID, sequence number)
// triple.  Source-IDs are persistent across application restarts; pages
// impose the hierarchy over the namespace that keeps session-message state
// bounded; sequence numbers are locally unique per (source, page) and have
// "sufficient precision to never wrap" (64-bit here).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace srm {

// Globally unique, persistent member identifier.
using SourceId = std::uint32_t;
inline constexpr SourceId kInvalidSource = 0xFFFFFFFFu;

using SeqNo = std::uint64_t;

// A page is named by its creator plus a creator-local page number, so page
// creation needs no coordination (Sec. II-C).
struct PageId {
  SourceId creator = kInvalidSource;
  std::uint32_t number = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;
};

// The unique persistent name of one ADU.
struct DataName {
  SourceId source = kInvalidSource;  // member that created the data
  PageId page;
  SeqNo seq = 0;

  friend bool operator==(const DataName&, const DataName&) = default;
  friend auto operator<=>(const DataName&, const DataName&) = default;
};

std::string to_string(const PageId& p);
std::string to_string(const DataName& n);

// Identifies the per-source, per-page stream a sequence number belongs to.
struct StreamKey {
  SourceId source = kInvalidSource;
  PageId page;

  friend bool operator==(const StreamKey&, const StreamKey&) = default;
  friend auto operator<=>(const StreamKey&, const StreamKey&) = default;
};

inline StreamKey stream_of(const DataName& n) {
  return StreamKey{n.source, n.page};
}

}  // namespace srm

template <>
struct std::hash<srm::PageId> {
  std::size_t operator()(const srm::PageId& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.creator) << 32) | p.number);
  }
};

template <>
struct std::hash<srm::StreamKey> {
  std::size_t operator()(const srm::StreamKey& k) const noexcept {
    const std::size_t h1 = std::hash<srm::SourceId>{}(k.source);
    const std::size_t h2 = std::hash<srm::PageId>{}(k.page);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6) + (h1 >> 2));
  }
};

template <>
struct std::hash<srm::DataName> {
  std::size_t operator()(const srm::DataName& n) const noexcept {
    const std::size_t h1 = std::hash<srm::StreamKey>{}(srm::stream_of(n));
    const std::size_t h2 = std::hash<srm::SeqNo>{}(n.seq);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6) + (h1 >> 2));
  }
};
