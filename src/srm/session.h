// Session messages: distance estimation and reporting-rate control
// (Sec. III-A).
//
// Each member periodically multicasts a session message carrying (a) its
// reception state (highest sequence number per active stream on the page it
// is viewing), and (b) timestamps that let every other member estimate its
// one-way distance to the sender without synchronized clocks, via a
// "highly simplified version of the NTP time synchronization algorithm":
//
//   A sends at A-clock t1.  B receives it and, delta seconds later (B-clock),
//   sends a session message echoing (t1, delta).  A receives that at A-clock
//   t2 and estimates  d(A,B) = (t2 - t1 - delta) / 2.
//
// The estimate assumes roughly symmetric paths (the paper's assumption).
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/timer.h"
#include "srm/config.h"
#include "srm/member_index.h"
#include "srm/messages.h"
#include "srm/names.h"
#include "util/rng.h"

namespace srm {

// Per-peer state lives in dense vectors indexed by a MemberIndex (normally
// the MemberDirectory's session-wide index, so every agent shares one
// interning table); a standalone estimator owns a private index.  Folding
// in a session message costs one hash lookup (the intern) and direct
// vector stores; the echo table for the next outgoing message is one
// linear walk of the heard list — no per-entry node allocations, which is
// what made large-group session rounds O(G^2) allocations before.
class DistanceEstimator {
 public:
  // `clock` is this member's (possibly skewed) local clock.  `index` is the
  // shared dense member index; nullptr constructs a private one.
  explicit DistanceEstimator(const sim::LocalClock& clock,
                             MemberIndex* index = nullptr)
      : clock_(&clock),
        owned_index_(index ? nullptr : std::make_unique<MemberIndex>()),
        index_(index ? index : owned_index_.get()) {}

  // Records the receipt of a session message from `peer`, and folds in any
  // echo addressed to us.
  void on_session_message(const SessionMessage& msg, SourceId self);

  // Fills `out` (cleared; capacity retained) with the echoes to embed in
  // our next outgoing session message: for every peer we have heard from,
  // (their last timestamp, how long we have held it), ascending Source-ID.
  //
  // `max_echoes` > 0 caps the table at that many peers, rotating through
  // the membership across successive calls (the vat/RTCP behavior the
  // paper adopts; SessionConfig::echo_rotation) so every peer is still
  // echoed once per ceil(G/K) messages.  0 echoes everyone.
  void build_echoes(SessionMessage::Echoes& out, std::size_t max_echoes = 0);

  // Convenience wrapper for tests and small sessions.
  SessionMessage::Echoes build_echoes(std::size_t max_echoes = 0) {
    SessionMessage::Echoes out;
    build_echoes(out, max_echoes);
    return out;
  }

  // Latest distance estimate to `peer` in seconds, if any exchange has
  // completed.
  std::optional<double> distance(SourceId peer) const;

  // Number of peers heard from (session-message based membership estimate).
  std::size_t peers_heard() const { return heard_.size(); }

 private:
  struct PeerSlot {
    sim::Time peer_timestamp = 0.0;  // sender clock value in their message
    sim::Time arrival = 0.0;         // our clock when it arrived
    double estimate = 0.0;
    bool heard = false;
    bool has_estimate = false;
  };

  const sim::LocalClock* clock_;
  std::unique_ptr<MemberIndex> owned_index_;  // when not sharing one
  MemberIndex* index_;
  std::vector<PeerSlot> slots_;  // dense member index -> peer state
  // Peers heard from, as (Source-ID, dense index) ascending by Source-ID:
  // one linear walk emits a sorted echo table.  Insertion is O(H) but only
  // on the first message from a new peer.
  std::vector<std::pair<SourceId, std::uint32_t>> heard_;
  std::size_t rotation_cursor_ = 0;  // next echo-rotation window start
};

// Per-area digest state for two-level reporting (Sec. IX-A;
// ARCHITECTURE.md §12).  Each member folds the AreaDigest tables heard in
// representatives' global session messages into dense per-area vectors
// (live count, freshness watermark, arrival stamp), giving it a whole-group
// size estimate at O(areas) memory — it never tracks remote members
// individually.  Also builds the digest table a representative embeds in
// its own global reports.
class AreaLiveTable {
 public:
  explicit AreaLiveTable(std::uint32_t areas = 0) { resize(areas); }

  void resize(std::uint32_t areas);
  std::uint32_t areas() const {
    return static_cast<std::uint32_t>(live_.size());
  }

  // Folds a received digest table; `now` stamps freshness.
  void fold(const SessionMessage::AreaDigests& digests, sim::Time now);

  // Sum of live_members over every area other than `self_area` whose digest
  // arrived within `horizon` of `now`.
  std::size_t live_elsewhere(std::uint32_t self_area, sim::Time now,
                             sim::Time horizon) const;

  // Fills `out` (cleared; capacity retained) with this member's own-area
  // digest.  Representatives summarize only the area they can observe
  // directly; every other area's digest reaches the group from that area's
  // own representative, so relaying would only add O(areas^2) fold work.
  static void build_digests(SessionMessage::AreaDigests& out,
                            std::uint32_t self_area, std::uint32_t self_live,
                            SeqNo self_max_seq);

 private:
  std::vector<std::uint32_t> live_;
  std::vector<SeqNo> max_seq_;
  std::vector<sim::Time> heard_;
  std::vector<std::uint8_t> has_;
};

// Schedules session messages at an average rate that scales inversely with
// the (estimated) group size, so the aggregate session-message bandwidth
// stays at a fixed small fraction of the data bandwidth regardless of how
// many members there are (the vat/RTCP algorithm the paper adopts).
class SessionScheduler {
 public:
  SessionScheduler(const SessionConfig& config, util::Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  // Mean interval between this member's session messages given the current
  // estimate of the group size: with G members sharing fraction f of
  // bandwidth B, each member reports every  G * avg_msg_bytes / (f * B)
  // seconds on average, floored at min_interval.
  sim::Time mean_interval(std::size_t group_size,
                          std::size_t message_bytes) const;

  // Next randomized interval: uniform in [1-jitter, 1+jitter] x mean.
  sim::Time next_interval(std::size_t group_size, std::size_t message_bytes);

 private:
  SessionConfig config_;
  util::Rng rng_;
};

}  // namespace srm
