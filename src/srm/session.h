// Session messages: distance estimation and reporting-rate control
// (Sec. III-A).
//
// Each member periodically multicasts a session message carrying (a) its
// reception state (highest sequence number per active stream on the page it
// is viewing), and (b) timestamps that let every other member estimate its
// one-way distance to the sender without synchronized clocks, via a
// "highly simplified version of the NTP time synchronization algorithm":
//
//   A sends at A-clock t1.  B receives it and, delta seconds later (B-clock),
//   sends a session message echoing (t1, delta).  A receives that at A-clock
//   t2 and estimates  d(A,B) = (t2 - t1 - delta) / 2.
//
// The estimate assumes roughly symmetric paths (the paper's assumption).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/timer.h"
#include "srm/config.h"
#include "srm/messages.h"
#include "srm/names.h"
#include "util/rng.h"

namespace srm {

class DistanceEstimator {
 public:
  // `clock` is this member's (possibly skewed) local clock.
  explicit DistanceEstimator(const sim::LocalClock& clock) : clock_(&clock) {}

  // Records the receipt of a session message from `peer`, and folds in any
  // echo addressed to us.
  void on_session_message(const SessionMessage& msg, SourceId self);

  // Echoes to embed in our next outgoing session message: for every peer we
  // have heard from, (their last timestamp, how long we have held it).
  std::map<SourceId, SessionMessage::Echo> build_echoes() const;

  // Latest distance estimate to `peer` in seconds, if any exchange has
  // completed.
  std::optional<double> distance(SourceId peer) const;

  // Number of peers heard from (session-message based membership estimate).
  std::size_t peers_heard() const { return last_heard_.size(); }

 private:
  struct PeerRecord {
    sim::Time peer_timestamp = 0.0;  // sender clock value in their message
    sim::Time arrival = 0.0;         // our clock when it arrived
  };

  const sim::LocalClock* clock_;
  std::unordered_map<SourceId, PeerRecord> last_heard_;
  std::unordered_map<SourceId, double> estimates_;
};

// Schedules session messages at an average rate that scales inversely with
// the (estimated) group size, so the aggregate session-message bandwidth
// stays at a fixed small fraction of the data bandwidth regardless of how
// many members there are (the vat/RTCP algorithm the paper adopts).
class SessionScheduler {
 public:
  SessionScheduler(const SessionConfig& config, util::Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  // Mean interval between this member's session messages given the current
  // estimate of the group size: with G members sharing fraction f of
  // bandwidth B, each member reports every  G * avg_msg_bytes / (f * B)
  // seconds on average, floored at min_interval.
  sim::Time mean_interval(std::size_t group_size,
                          std::size_t message_bytes) const;

  // Next randomized interval: uniform in [1-jitter, 1+jitter] x mean.
  sim::Time next_interval(std::size_t group_size, std::size_t message_bytes);

 private:
  SessionConfig config_;
  util::Rng rng_;
};

}  // namespace srm
