// FecSession: generation-framed coded repair over an SrmAgent
// (ARCHITECTURE.md §11; the block-FEC successor to srm/parity.h's
// fixed-XOR layout, per the Sec. VII-B FEC pointer).
//
// Like ParitySession this lives entirely *above* the agent in ALF fashion:
// the application's payloads are framed into *generations* of
// `generation_size` data ADUs followed by K parity ADUs, K chosen per
// generation by a ParityBudgetController (srm/fec/budget.h).  A receiver
// holding any N-e of a generation's N data ADUs plus any e of its parity
// ADUs reconstructs the e missing ADUs locally and feeds them back with
// supply_data() — zero control traffic, and one multicast parity answers
// *different* losses at different receivers.  Anything the code cannot
// cover falls through to SRM request/repair unchanged, and parity ADUs are
// themselves ordinary ADUs SRM will repair on demand.
//
// Frame format (the application payload handed to SrmAgent); all integers
// little-endian:
//
//   data:    [0xD2] [u32 gen] [u16 idx] [u32 len] [payload...]
//   parity:  [0xF2] [u8 scheme] [u8 j] [u8 k] [u32 gen] [u16 n]
//            [u64 base_seq] [u32 padded_len] [body: padded_len bytes]
//
// The coded symbol for data index i is its `[u32 len][payload]` suffix,
// zero-padded to the generation's longest symbol; parity bodies are coded
// over those symbols with scheme 0 (XOR, K == 1) or scheme 1 (GF(256),
// K in [2..4]) — see srm/fec/block_code.h.  Only parity frames carry n, k
// and base_seq: K is unknown until the generation seals, and carrying the
// geometry on every parity (rather than on data frames) lets flush() seal
// short generations and lets a receiver that lost *all* data frames still
// anchor the generation at base_seq.
//
// Loss-adaptive budget: requests heard for this sender's streams
// (AppHooks::on_request_heard) and RecoveryInvite fingerprints naming them
// (srm/local_groups.h) count as loss evidence; the fault layer's
// Gilbert-Elliott epochs (FaultInjector::set_epoch_observer) floor K during
// bursts.  Transitions fire only at generation seals and are emitted as
// kSrmFecBudgetRaise/Decay trace events, so they are deterministic and
// auditable: replicated and parallel-kernel runs see identical K sequences.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "srm/agent.h"
#include "srm/fec/block_code.h"
#include "srm/fec/budget.h"
#include "srm/names.h"

namespace srm::fec {

inline constexpr std::uint8_t kFecDataTag = 0xD2;
inline constexpr std::uint8_t kFecParityTag = 0xF2;

struct FecStats {
  std::uint64_t parity_sent = 0;       // parity ADUs originated
  std::uint64_t generations_sealed = 0;
  std::uint64_t reconstructions = 0;   // ADUs recovered locally
  std::uint64_t decode_failures = 0;   // malformed/inconsistent generations
  std::uint64_t budget_raises = 0;
  std::uint64_t budget_decays = 0;
};

// Parsed views of the two frame kinds, exposed for tests and the docs'
// frame-format table.
struct DataFrame {
  std::uint32_t gen = 0;
  std::uint16_t idx = 0;
  Payload payload;
};
struct ParityFrame {
  std::uint8_t scheme = kSchemeXor;
  std::uint8_t j = 0;          // parity row index in [0, k)
  std::uint8_t k = 1;          // parity count of the generation
  std::uint32_t gen = 0;
  std::uint16_t n = 0;         // data ADUs in the generation
  std::uint64_t base_seq = 0;  // seq of the generation's first data ADU
  std::uint32_t padded_len = 0;
  Payload body;                // coded symbol, padded_len bytes
};

class FecSession {
 public:
  // Installs itself into the agent's AppHooks, chaining (not replacing) any
  // hooks already present — install *after* LocalGroupManager so invites
  // are observed for loss evidence before the manager consumes them.
  // Destroy the session before (or together with) the agent; it does not
  // unhook itself.
  FecSession(SrmAgent& agent, const FecConfig& config);

  FecSession(const FecSession&) = delete;
  FecSession& operator=(const FecSession&) = delete;

  // Sends one application payload; transparently seals the generation
  // (emitting its parity ADUs) after every generation_size-th send.
  // Returns the data ADU's name.
  DataName send(const PageId& page, Payload app_payload);

  // Seals the in-progress generation of `page` early (n < generation_size),
  // so a sender going quiet does not strand an unprotected tail.
  void flush(const PageId& page);

  // Application-level delivery (unframed payloads, data ADUs only, in any
  // order).  Parity ADUs and frames of foreign layers stay internal.
  using DataHandler =
      std::function<void(const DataName&, const Payload&, bool via_repair)>;
  void set_data_handler(DataHandler handler) { handler_ = std::move(handler); }

  // Gilbert-Elliott burst-epoch signal (wire to
  // FaultInjector::set_epoch_observer); floors every stream's K while
  // active.
  void set_burst_epoch(bool active);

  const FecStats& stats() const { return stats_; }
  const FecConfig& config() const { return config_; }
  // Parity budget currently armed for `page` (next generation's K).
  std::size_t current_k(const PageId& page) const;
  bool burst_epoch_active() const { return burst_active_; }

  // Frame helpers, exposed for tests.
  static Payload frame_data(std::uint32_t gen, std::uint16_t idx,
                            const Payload& app_payload);
  static std::optional<DataFrame> parse_data(const Payload& frame);
  static Payload frame_parity(const ParityFrame& parity);
  static std::optional<ParityFrame> parse_parity(const Payload& frame);

 private:
  // ---- sender side: one in-progress generation per page ----
  struct Outgoing {
    std::uint32_t gen = 0;
    std::uint64_t base_seq = 0;          // seq of the gen's first data ADU
    std::vector<Symbol> symbols;         // [u32 len][payload] per data ADU
    ParityBudgetController budget;
    explicit Outgoing(const BudgetConfig& config) : budget(config) {}
  };

  // ---- receiver side: per (stream, gen) reassembly ----
  struct GenState {
    std::vector<std::optional<Symbol>> data;  // grown on demand
    std::vector<std::pair<std::size_t, Symbol>> parities;  // (j, body)
    std::uint16_t n = 0;          // 0 until a parity frame reveals it
    std::uint8_t scheme = kSchemeXor;
    std::uint64_t base_seq = 0;
    std::uint32_t padded_len = 0;
    bool geometry_known = false;  // n/base_seq/padded_len valid
    bool done = false;            // complete or reconstructed
  };
  struct GenKey {
    StreamKey stream;
    std::uint32_t gen = 0;
    friend bool operator==(const GenKey&, const GenKey&) = default;
  };
  struct GenKeyHash {
    std::size_t operator()(const GenKey& k) const noexcept {
      return std::hash<StreamKey>{}(k.stream) ^
             (std::hash<std::uint64_t>{}(k.gen) * 0x9E3779B97F4A7C15ULL);
    }
  };

  Outgoing& outgoing_for(const PageId& page);
  void seal_generation(const PageId& page, Outgoing& out);
  void advance_budget(const PageId& page, Outgoing& out);

  void on_agent_data(const DataName& name, const Payload& frame,
                     bool via_repair);
  void try_reconstruct(const StreamKey& stream, std::uint32_t gen);
  void note_evidence(const DataName& name, std::size_t count);

  BudgetConfig budget_config() const;
  void trace_fec(trace::EventType type, const StreamKey& stream, SeqNo seq,
                 std::uint64_t e, double x, double y);

  SrmAgent* agent_;
  FecConfig config_;
  DataHandler handler_;
  SrmAgent::AppHooks previous_hooks_;
  bool burst_active_ = false;

  std::unordered_map<PageId, Outgoing> outgoing_;
  std::unordered_map<GenKey, GenState, GenKeyHash> gens_;

  FecStats stats_;
};

}  // namespace srm::fec
