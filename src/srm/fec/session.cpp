#include "srm/fec/session.h"

#include <algorithm>
#include <stdexcept>

#include "srm/local_groups.h"
#include "trace/trace.h"

namespace srm::fec {

namespace {

constexpr std::size_t kDataHeader = 11;    // tag + gen + idx + len
constexpr std::size_t kParityHeader = 22;  // tag..padded_len

void put_u16(Payload& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
void put_u32(Payload& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
void put_u64(Payload& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

template <typename T>
std::optional<T> get_le(const Payload& p, std::size_t at) {
  if (at + sizeof(T) > p.size()) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<std::uint64_t>(p[at + i]) << (8 * i);
  }
  return static_cast<T>(v);
}

}  // namespace

FecSession::FecSession(SrmAgent& agent, const FecConfig& config)
    : agent_(&agent), config_(config) {
  if (config.generation_size == 0) {
    throw std::invalid_argument("FecSession: generation_size == 0");
  }
  if (config.max_k > kMaxParity) {
    throw std::invalid_argument("FecSession: max_k > 4");
  }
  previous_hooks_ = agent_->app_hooks();
  SrmAgent::AppHooks hooks = previous_hooks_;
  hooks.on_data = [this](const DataName& name, const Payload& frame,
                         bool via_repair) {
    on_agent_data(name, frame, via_repair);
  };
  hooks.on_request_heard = [this](const DataName& name, SourceId requestor) {
    if (name.source == agent_->id()) note_evidence(name, 1);
    if (previous_hooks_.on_request_heard) {
      previous_hooks_.on_request_heard(name, requestor);
    }
  };
  // Recovery invites carry the inviter's loss fingerprint (the names of its
  // recent losses); fingerprint entries naming a stream this member
  // originates are receivers that demonstrably missed our ADUs.  Install
  // this session AFTER LocalGroupManager: the manager's own hook consumes
  // invites without forwarding, so the evidence tap must sit in front.
  hooks.on_unknown_message = [this](const net::Packet& packet,
                                    const net::DeliveryInfo& info) {
    if (const auto* invite =
            dynamic_cast<const RecoveryInvite*>(packet.payload.get())) {
      for (const DataName& lost : invite->fingerprint()) {
        if (lost.source == agent_->id()) note_evidence(lost, 1);
      }
    }
    if (previous_hooks_.on_unknown_message) {
      previous_hooks_.on_unknown_message(packet, info);
    }
  };
  agent_->set_app_hooks(std::move(hooks));
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

Payload FecSession::frame_data(std::uint32_t gen, std::uint16_t idx,
                               const Payload& app_payload) {
  Payload frame;
  frame.reserve(kDataHeader + app_payload.size());
  frame.push_back(kFecDataTag);
  put_u32(frame, gen);
  put_u16(frame, idx);
  put_u32(frame, static_cast<std::uint32_t>(app_payload.size()));
  frame.insert(frame.end(), app_payload.begin(), app_payload.end());
  return frame;
}

std::optional<DataFrame> FecSession::parse_data(const Payload& frame) {
  if (frame.empty() || frame[0] != kFecDataTag) return std::nullopt;
  const auto gen = get_le<std::uint32_t>(frame, 1);
  const auto idx = get_le<std::uint16_t>(frame, 5);
  const auto len = get_le<std::uint32_t>(frame, 7);
  if (!gen || !idx || !len || kDataHeader + *len != frame.size()) {
    return std::nullopt;
  }
  DataFrame out;
  out.gen = *gen;
  out.idx = *idx;
  out.payload.assign(frame.begin() + kDataHeader, frame.end());
  return out;
}

Payload FecSession::frame_parity(const ParityFrame& parity) {
  Payload frame;
  frame.reserve(kParityHeader + parity.body.size());
  frame.push_back(kFecParityTag);
  frame.push_back(parity.scheme);
  frame.push_back(parity.j);
  frame.push_back(parity.k);
  put_u32(frame, parity.gen);
  put_u16(frame, parity.n);
  put_u64(frame, parity.base_seq);
  put_u32(frame, parity.padded_len);
  frame.insert(frame.end(), parity.body.begin(), parity.body.end());
  return frame;
}

std::optional<ParityFrame> FecSession::parse_parity(const Payload& frame) {
  if (frame.size() < kParityHeader || frame[0] != kFecParityTag) {
    return std::nullopt;
  }
  ParityFrame out;
  out.scheme = frame[1];
  out.j = frame[2];
  out.k = frame[3];
  out.gen = *get_le<std::uint32_t>(frame, 4);
  out.n = *get_le<std::uint16_t>(frame, 8);
  out.base_seq = *get_le<std::uint64_t>(frame, 10);
  out.padded_len = *get_le<std::uint32_t>(frame, 18);
  if (kParityHeader + out.padded_len != frame.size()) return std::nullopt;
  if (out.k == 0 || out.k > kMaxParity || out.j >= out.k || out.n == 0) {
    return std::nullopt;
  }
  out.body.assign(frame.begin() + kParityHeader, frame.end());
  return out;
}

// ---------------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------------

BudgetConfig FecSession::budget_config() const {
  BudgetConfig b;
  b.max_k = std::min(config_.max_k, kMaxParity);
  b.initial_k = std::min(config_.initial_k, b.max_k);
  b.raise_threshold = std::max<std::size_t>(1, config_.raise_threshold);
  b.decay_after_quiet = std::max<std::size_t>(1, config_.decay_after_quiet);
  b.burst_floor = std::min(config_.burst_floor, b.max_k);
  return b;
}

FecSession::Outgoing& FecSession::outgoing_for(const PageId& page) {
  auto [it, inserted] = outgoing_.try_emplace(page, budget_config());
  if (inserted && burst_active_) it->second.budget.set_burst_epoch(true);
  return it->second;
}

std::size_t FecSession::current_k(const PageId& page) const {
  const auto it = outgoing_.find(page);
  if (it != outgoing_.end()) return it->second.budget.current_k();
  return std::min(config_.initial_k, std::min(config_.max_k, kMaxParity));
}

DataName FecSession::send(const PageId& page, Payload app_payload) {
  Outgoing& out = outgoing_for(page);
  const auto idx = static_cast<std::uint16_t>(out.symbols.size());
  Payload frame = frame_data(out.gen, idx, app_payload);
  // The coded symbol is the frame's self-describing [u32 len][payload]
  // suffix, so a decoded symbol can be trimmed back to the exact frame.
  Symbol symbol(frame.begin() + 7, frame.end());
  const DataName name = agent_->send_data(page, std::move(frame));
  if (out.symbols.empty()) out.base_seq = name.seq;
  out.symbols.push_back(std::move(symbol));
  if (out.symbols.size() >= config_.generation_size) {
    seal_generation(page, out);
  }
  return name;
}

void FecSession::flush(const PageId& page) {
  const auto it = outgoing_.find(page);
  if (it == outgoing_.end() || it->second.symbols.empty()) return;
  seal_generation(page, it->second);
}

void FecSession::seal_generation(const PageId& page, Outgoing& out) {
  const std::size_t n = out.symbols.size();
  const std::size_t k = std::min(out.budget.current_k(), kMaxParity);
  if (k > 0) {
    const std::uint8_t scheme = scheme_for(k);
    const std::size_t width = padded_len(out.symbols);
    std::vector<Symbol> bodies = encode(out.symbols, k);
    for (std::size_t j = 0; j < k; ++j) {
      ParityFrame pf;
      pf.scheme = scheme;
      pf.j = static_cast<std::uint8_t>(j);
      pf.k = static_cast<std::uint8_t>(k);
      pf.gen = out.gen;
      pf.n = static_cast<std::uint16_t>(n);
      pf.base_seq = out.base_seq;
      pf.padded_len = static_cast<std::uint32_t>(width);
      pf.body = std::move(bodies[j]);
      const DataName pname = agent_->send_data(page, frame_parity(pf));
      ++stats_.parity_sent;
      ++agent_->metrics().fec_parity_sent;
      trace_fec(trace::EventType::kSrmFecParity,
                StreamKey{agent_->id(), page}, pname.seq, out.gen,
                static_cast<double>(scheme), static_cast<double>(k));
    }
  }
  ++stats_.generations_sealed;
  advance_budget(page, out);
  out.symbols.clear();
  ++out.gen;
}

void FecSession::advance_budget(const PageId& page, Outgoing& out) {
  const std::size_t k_old = out.budget.current_k();
  const std::size_t evidence = out.budget.evidence_pending();
  const std::size_t k_new = out.budget.on_generation_sealed();
  if (k_new == k_old) return;
  const StreamKey stream{agent_->id(), page};
  if (k_new > k_old) {
    ++stats_.budget_raises;
    trace_fec(trace::EventType::kSrmFecBudgetRaise, stream, 0, k_new,
              static_cast<double>(k_old), static_cast<double>(evidence));
  } else {
    ++stats_.budget_decays;
    trace_fec(trace::EventType::kSrmFecBudgetDecay, stream, 0, k_new,
              static_cast<double>(k_old),
              out.budget.burst_epoch_active() ? 1.0 : 0.0);
  }
}

void FecSession::note_evidence(const DataName& name, std::size_t count) {
  const auto it = outgoing_.find(name.page);
  if (it != outgoing_.end()) it->second.budget.note_loss_evidence(count);
}

void FecSession::set_burst_epoch(bool active) {
  burst_active_ = active;
  for (auto& [page, out] : outgoing_) out.budget.set_burst_epoch(active);
}

// ---------------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------------

void FecSession::on_agent_data(const DataName& name, const Payload& frame,
                               bool via_repair) {
  const StreamKey stream = stream_of(name);
  if (!frame.empty() && frame[0] == kFecDataTag) {
    const auto data = parse_data(frame);
    if (!data) return;  // malformed; leave recovery to SRM
    GenState& gs = gens_[GenKey{stream, data->gen}];
    if (gs.data.size() <= data->idx) gs.data.resize(data->idx + 1);
    if (!gs.data[data->idx]) {
      gs.data[data->idx] = Symbol(frame.begin() + 7, frame.end());
    }
    if (handler_) handler_(name, data->payload, via_repair);
    try_reconstruct(stream, data->gen);
    return;
  }
  if (!frame.empty() && frame[0] == kFecParityTag) {
    auto parity = parse_parity(frame);
    if (!parity) {
      ++stats_.decode_failures;
      return;
    }
    GenState& gs = gens_[GenKey{stream, parity->gen}];
    if (!gs.geometry_known) {
      gs.n = parity->n;
      gs.scheme = parity->scheme;
      gs.base_seq = parity->base_seq;
      gs.padded_len = parity->padded_len;
      gs.geometry_known = true;
      if (gs.data.size() < gs.n) gs.data.resize(gs.n);
    }
    bool have_row = false;
    for (const auto& [j, body] : gs.parities) have_row |= (j == parity->j);
    if (!have_row && parity->body.size() == gs.padded_len) {
      gs.parities.emplace_back(parity->j, std::move(parity->body));
    }
    try_reconstruct(stream, parity->gen);
    return;
  }
  // Not an FEC frame (e.g. payloads seeded by the harness before the FEC
  // wrapper existed): deliver as-is.
  if (handler_) handler_(name, frame, via_repair);
}

void FecSession::try_reconstruct(const StreamKey& stream, std::uint32_t gen) {
  const GenKey key{stream, gen};
  GenState& gs = gens_[key];
  if (gs.done || !gs.geometry_known) return;

  std::vector<const Symbol*> data(gs.n, nullptr);
  std::size_t missing = 0;
  for (std::size_t i = 0; i < gs.n; ++i) {
    if (i < gs.data.size() && gs.data[i]) {
      data[i] = &*gs.data[i];
    } else {
      ++missing;
    }
  }
  if (missing == 0) {
    gs.done = true;
    return;
  }
  if (missing > gs.parities.size()) return;  // not enough parity (yet)

  auto recovered = decode(gs.scheme, data, gs.parities, gs.padded_len);
  if (recovered.empty()) {
    ++stats_.decode_failures;
    return;
  }

  // Install everything before feeding the agent: supply_data re-enters
  // on_agent_data to deliver the application payload, and the generation
  // must already look complete by then.
  struct Recovered {
    DataName name;
    Payload frame;
  };
  std::vector<Recovered> supplies;
  supplies.reserve(recovered.size());
  for (auto& [idx, symbol] : recovered) {
    const auto len = get_le<std::uint32_t>(symbol, 0);
    if (!len || 4 + *len > symbol.size()) {
      ++stats_.decode_failures;
      return;  // corrupt reconstruction; leave the generation to SRM
    }
    symbol.resize(4 + *len);  // strip the code's zero padding
    Payload frame;
    frame.reserve(kDataHeader + *len);
    frame.push_back(kFecDataTag);
    put_u32(frame, gen);
    put_u16(frame, static_cast<std::uint16_t>(idx));
    frame.insert(frame.end(), symbol.begin(), symbol.end());
    const DataName name{stream.source, stream.page, gs.base_seq + idx};
    supplies.push_back(Recovered{name, std::move(frame)});
    gs.data[idx] = std::move(symbol);
  }
  gs.done = true;
  const auto erasures = supplies.size();
  stats_.reconstructions += erasures;
  agent_->metrics().fec_reconstructions += erasures;

  for (Recovered& r : supplies) {
    trace_fec(trace::EventType::kSrmFecReconstruct, stream, r.name.seq, gen,
              static_cast<double>(gs.scheme), static_cast<double>(erasures));
    // Feeding it back through the agent cancels any pending request, stores
    // the frame for answering others' requests (byte-identical to the
    // original), and re-enters on_agent_data to deliver the app payload.
    agent_->supply_data(r.name, std::move(r.frame));
  }
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

void FecSession::trace_fec(trace::EventType type, const StreamKey& stream,
                           SeqNo seq, std::uint64_t e, double x, double y) {
  trace::Tracer* tracer = agent_->tracer();
  if (!tracer->wants(trace::Category::kSrm)) return;
  trace::Event ev;
  ev.type = type;
  ev.t = agent_->queue().now();
  ev.actor = agent_->id();
  ev.a = stream.source;
  ev.b = stream.page.creator;
  ev.c = stream.page.number;
  ev.d = seq;
  ev.e = e;
  ev.x = x;
  ev.y = y;
  tracer->emit(ev);
}

}  // namespace srm::fec
