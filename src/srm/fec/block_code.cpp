#include "srm/fec/block_code.h"

#include <algorithm>
#include <stdexcept>

namespace srm::fec {
namespace {

// Both schemes are linear codes parity_j = sum_i c(j,i) * data_i; they only
// differ in the coefficient matrix (all-ones for XOR, Cauchy for GF(256)).
std::uint8_t coeff(std::uint8_t scheme, std::size_t j, std::size_t i) {
  return scheme == kSchemeXor ? std::uint8_t{1} : cauchy_coeff(j, i);
}

}  // namespace

std::uint8_t scheme_for(std::size_t k) {
  return k <= 1 ? kSchemeXor : kSchemeGf256;
}

std::size_t padded_len(const std::vector<Symbol>& data) {
  std::size_t width = 0;
  for (const Symbol& s : data) width = std::max(width, s.size());
  return width;
}

std::vector<Symbol> encode(const std::vector<Symbol>& data, std::size_t k) {
  if (k == 0 || k > kMaxParity) throw std::domain_error("encode: bad k");
  if (data.empty() || data.size() > kMaxDataColumns)
    throw std::domain_error("encode: bad n");
  const std::size_t width = padded_len(data);
  const std::uint8_t scheme = scheme_for(k);
  std::vector<Symbol> parities(k, Symbol(width, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < k; ++j)
      gf_mul_add(coeff(scheme, j, i), data[i].data(), parities[j].data(),
                 data[i].size());
  }
  return parities;
}

std::vector<std::pair<std::size_t, Symbol>> decode(
    std::uint8_t scheme, const std::vector<const Symbol*>& data,
    const std::vector<std::pair<std::size_t, Symbol>>& parities,
    std::size_t width) {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (data[i] == nullptr) missing.push_back(i);
  if (missing.empty()) return {};
  const std::size_t e = missing.size();
  if (e > parities.size() || data.size() > kMaxDataColumns) return {};
  if (scheme != kSchemeXor && scheme != kSchemeGf256) return {};

  // Any e surviving parities suffice (Cauchy submatrices are invertible;
  // with XOR e is necessarily 1), so take the first e.
  std::vector<std::vector<std::uint8_t>> a(e, std::vector<std::uint8_t>(e));
  std::vector<std::vector<std::uint8_t>> rhs(e,
                                             std::vector<std::uint8_t>(width));
  for (std::size_t r = 0; r < e; ++r) {
    const std::size_t j = parities[r].first;
    if (j >= kMaxParityRows || parities[r].second.size() != width) return {};
    // rhs_r = parity_j minus every present symbol's contribution; what is
    // left equals the missing symbols' combined contribution.
    rhs[r] = parities[r].second;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i] == nullptr) continue;
      if (data[i]->size() > width) return {};
      // Present bodies may be shorter than the padded width; the implicit
      // zero suffix contributes nothing, so only their real bytes fold in.
      gf_mul_add(coeff(scheme, j, i), data[i]->data(), rhs[r].data(),
                 data[i]->size());
    }
    for (std::size_t c = 0; c < e; ++c) a[r][c] = coeff(scheme, j, missing[c]);
  }
  if (!gf_solve(a, rhs, width)) return {};

  std::vector<std::pair<std::size_t, Symbol>> out;
  out.reserve(e);
  for (std::size_t c = 0; c < e; ++c)
    out.emplace_back(missing[c], std::move(rhs[c]));
  return out;
}

}  // namespace srm::fec
