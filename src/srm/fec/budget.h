// Loss-adaptive parity budget: how many parity ADUs the next generation
// gets (ARCHITECTURE.md §11, "adaptive-K state machine").
//
// The controller is a deterministic hysteresis machine driven by two
// inputs the repair stack already produces:
//
//   * loss evidence — requests heard for the sender's own stream plus
//     DataNames in RecoveryInvite fingerprints (local_groups.h) naming it.
//     Each is a receiver that failed to get an ADU the cheap way.
//   * burst epochs — the fault layer's Gilbert-Elliott burst_on/burst_off
//     transitions (FaultInjector::set_epoch_observer), which floor K at
//     `burst_floor` for the epoch's duration: bursty links lose
//     consecutive ADUs, exactly the case K==1 XOR parity cannot repair.
//
// Transitions happen only at generation seal time and depend only on
// counts accumulated since the previous seal — never on wall clock or RNG —
// so a replicated or parallel-kernel run observes the identical K sequence
// and `--pdes-verify` stays bit-identical.  Every change is reported to the
// caller (FecSession) for kSrmFecBudgetRaise/Decay trace events.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srm::fec {

struct BudgetConfig {
  std::size_t max_k = 4;           // hard ceiling (kMaxParity)
  std::size_t initial_k = 1;       // starting budget: the XOR fast path
  std::size_t raise_threshold = 2; // evidence per generation that raises K
  std::size_t decay_after_quiet = 3;  // quiet generations before K decays
  std::size_t burst_floor = 2;     // minimum K while a burst epoch is active
};

class ParityBudgetController {
 public:
  explicit ParityBudgetController(const BudgetConfig& config);

  // K for the generation being assembled right now.  K == 0 means the
  // generation seals with no parity at all — the quiet-link steady state,
  // where FEC costs nothing and losses fall through to plain SRM.
  std::size_t current_k() const { return k_; }

  // A receiver demonstrably missed an ADU of this stream (request heard, or
  // the stream appeared in a recovery-invite loss fingerprint).
  void note_loss_evidence(std::size_t count = 1);

  // Gilbert-Elliott burst epoch begins/ends.  Entering a burst floors K
  // immediately (the next generation already needs the protection); leaving
  // one lets the quiet-decay path bring K back down.
  void set_burst_epoch(bool active);

  bool burst_epoch_active() const { return burst_active_; }
  std::size_t evidence_pending() const { return evidence_; }

  // Called once per sealed generation; advances the hysteresis and returns
  // K for the NEXT generation.  Raise: evidence >= raise_threshold steps K
  // up by one (clamped to max_k; any evidence from a K==0 state steps to 1
  // — a quiet link that just lost something re-arms the cheap XOR tier
  // without waiting for a full threshold).  Decay: decay_after_quiet
  // consecutive evidence-free generations step K down by one, clamped to
  // burst_floor while a burst epoch is active and to 0 otherwise.
  std::size_t on_generation_sealed();

 private:
  std::size_t floor_k() const;

  BudgetConfig config_;
  std::size_t k_;
  std::size_t evidence_ = 0;      // since the last seal
  std::size_t quiet_streak_ = 0;  // consecutive evidence-free generations
  bool burst_active_ = false;
};

}  // namespace srm::fec
