// GF(256) arithmetic core for the block-FEC engine (ARCHITECTURE.md §11).
//
// Sec. VII-B of the SRM paper points at parity-based loss recovery
// (Nonnenmacher/Biersack/Towsley) as the way one repair can answer many
// distinct losses.  The XOR parity of srm/parity.h covers exactly one
// erasure per block; covering K erasures needs K independent parity
// equations over a field larger than GF(2).  This header is that field:
// GF(2^8) with the standard Reed-Solomon reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator alpha = 2, implemented as
// log/antilog tables so multiply and divide are two lookups and an add.
//
// Coefficients come from a Cauchy matrix rather than a plain Vandermonde
// one: coeff(j, i) = 1 / (x_j + y_i) with x_j = j (parity rows, j < 4) and
// y_i = 4 + i (data columns), all distinct, addition being XOR.  Every
// square submatrix of a Cauchy matrix is invertible, so ANY e <= K surviving
// parities can repair ANY e missing data symbols — the property the decoder
// (gf_solve, Gaussian elimination over GF(256)) relies on.  Vandermonde
// submatrices over GF(2^8) do not have this guarantee, which is the classic
// trap in "RS via Vandermonde" codes.
//
// This layer is pure byte math: no Payload, no agent, no simulator types.
// srm/fec/block_code.h builds generation encode/decode on top of it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace srm::fec {

// Parity rows are x_j = j, data columns y_i = kCauchyDataOffset + i; keeping
// them disjoint is what makes every 1/(x_j ^ y_i) well defined.
inline constexpr std::size_t kMaxParityRows = 4;
inline constexpr std::uint8_t kCauchyDataOffset = 4;
// Largest generation the Cauchy column range supports (y_i <= 255).
inline constexpr std::size_t kMaxDataColumns = 252 - kMaxParityRows;

// Exponential table (alpha^i for i in [0, 255], alpha = 2 mod 0x11D) and its
// inverse.  log(0) is undefined and stored as 0; callers must special-case
// zero operands, as gf_mul/gf_inv below do.
const std::array<std::uint8_t, 256>& gf_exp_table();
const std::array<std::uint8_t, 256>& gf_log_table();

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);
// Multiplicative inverse; a must be nonzero (throws std::domain_error).
std::uint8_t gf_inv(std::uint8_t a);
// a / b with b nonzero (throws std::domain_error).
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

// The Cauchy coefficient of parity row j (< kMaxParityRows) applied to data
// column i (< kMaxDataColumns).
std::uint8_t cauchy_coeff(std::size_t j, std::size_t i);

// dst[b] ^= c * src[b] for b in [0, len) — the encode/decode inner loop.
void gf_mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                std::size_t len);

// Solves the e x e linear system A * X = B over GF(256) in place, where
// each unknown X[r] and each right-hand side B[r] is a byte row of width
// `width` (the padded symbol length).  On return B holds X.  Returns false
// if A is singular (never the case for Cauchy submatrices; kept as a guard
// against malformed inputs).
bool gf_solve(std::vector<std::vector<std::uint8_t>>& a,
              std::vector<std::vector<std::uint8_t>>& b, std::size_t width);

}  // namespace srm::fec
