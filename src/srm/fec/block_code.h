// Generation-level erasure code on top of the GF(256) core (gf256.h).
//
// A *generation* is N consecutive data symbols protected by K parity
// symbols.  Two schemes share one decoder interface, mirroring the libfec
// scheme-id framing (SNIPPETS.md Snippet 1):
//
//   scheme 0 (kSchemeXor):   K == 1, parity_0 = XOR of all data symbols.
//                            This is the ParitySession fast path: one table
//                            free XOR pass, repairs any single erasure.
//   scheme 1 (kSchemeGf256): K in [2..4], parity_j = sum_i coeff(j,i)*data_i
//                            with Cauchy coefficients, repairs any e <= K
//                            erasures from any K surviving parities.
//
// Symbols are byte strings of possibly different lengths; the encoder pads
// every symbol with zeros to the longest length in the generation, so the
// caller must frame each symbol's true length *inside* the symbol bytes
// (FecSession prepends a u32 length; see srm/fec/session.h).
//
// The layer is pure: no agent, trace, or simulator types, so the tests can
// drive exhaustive erasure patterns without a network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "srm/fec/gf256.h"

namespace srm::fec {

inline constexpr std::uint8_t kSchemeXor = 0;
inline constexpr std::uint8_t kSchemeGf256 = 1;
inline constexpr std::size_t kMaxParity = kMaxParityRows;  // K <= 4

using Symbol = std::vector<std::uint8_t>;

// Scheme implied by the parity count: K==1 is plain XOR, K>=2 needs GF(256).
std::uint8_t scheme_for(std::size_t k);

// Encodes `k` parity symbols over `data` (n = data.size() symbols, each
// padded to the longest symbol's length).  Returns the k parity bodies, all
// of size padded_len(data).  k must be in [1..kMaxParity] and n nonzero.
std::vector<Symbol> encode(const std::vector<Symbol>& data, std::size_t k);

// The padded symbol width encode() used (max data symbol size; 0 if empty).
std::size_t padded_len(const std::vector<Symbol>& data);

// Recovers missing data symbols of an n-symbol generation.
//   data:     n slots; present symbols at their index (shorter bodies are
//             zero-extended to `width` internally), missing slots nullptr.
//   parities: surviving (parity_index j, body) pairs, bodies of size `width`.
//   scheme:   kSchemeXor or kSchemeGf256 (selects the coefficient matrix).
// Returns (data_index, recovered body of size `width`) pairs, one per
// missing slot, in ascending index order.  Returns an empty vector when the
// erasure count exceeds parities.size() or inputs are inconsistent — the
// caller then falls back to SRM request/repair.
std::vector<std::pair<std::size_t, Symbol>> decode(
    std::uint8_t scheme, const std::vector<const Symbol*>& data,
    const std::vector<std::pair<std::size_t, Symbol>>& parities,
    std::size_t width);

}  // namespace srm::fec
