#include "srm/fec/budget.h"

#include <algorithm>

namespace srm::fec {

ParityBudgetController::ParityBudgetController(const BudgetConfig& config)
    : config_(config), k_(std::min(config.initial_k, config.max_k)) {}

void ParityBudgetController::note_loss_evidence(std::size_t count) {
  evidence_ += count;
}

void ParityBudgetController::set_burst_epoch(bool active) {
  burst_active_ = active;
  if (active) k_ = std::max(k_, floor_k());
}

std::size_t ParityBudgetController::floor_k() const {
  return burst_active_ ? std::min(config_.burst_floor, config_.max_k)
                       : std::size_t{0};
}

std::size_t ParityBudgetController::on_generation_sealed() {
  if (evidence_ > 0) {
    quiet_streak_ = 0;
    if (k_ == 0 || evidence_ >= config_.raise_threshold)
      k_ = std::min(k_ + 1, config_.max_k);
    evidence_ = 0;
  } else {
    ++quiet_streak_;
    if (quiet_streak_ >= config_.decay_after_quiet) {
      quiet_streak_ = 0;
      if (k_ > floor_k()) --k_;
    }
  }
  k_ = std::max(k_, floor_k());
  return k_;
}

}  // namespace srm::fec
