#include "srm/fec/gf256.h"

#include <stdexcept>

namespace srm::fec {
namespace {

// x^8 + x^4 + x^3 + x^2 + 1: the standard Reed-Solomon reduction polynomial.
constexpr unsigned kPoly = 0x11D;

struct Tables {
  std::array<std::uint8_t, 256> exp{};
  std::array<std::uint8_t, 256> log{};

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    exp[255] = exp[0];  // alpha^255 == alpha^0 == 1; lets lookups skip a mod
    log[0] = 0;         // undefined; gf_mul/gf_inv special-case zero
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

const std::array<std::uint8_t, 256>& gf_exp_table() { return tables().exp; }
const std::array<std::uint8_t, 256>& gf_log_table() { return tables().log; }

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  unsigned s = t.log[a] + t.log[b];
  if (s >= 255) s -= 255;
  return t.exp[s];
}

std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf_inv(0)");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf_div by 0");
  if (a == 0) return 0;
  const Tables& t = tables();
  unsigned s = t.log[a] + 255 - t.log[b];
  if (s >= 255) s -= 255;
  return t.exp[s];
}

std::uint8_t cauchy_coeff(std::size_t j, std::size_t i) {
  if (j >= kMaxParityRows || i >= kMaxDataColumns)
    throw std::domain_error("cauchy_coeff out of range");
  const std::uint8_t xj = static_cast<std::uint8_t>(j);
  const std::uint8_t yi = static_cast<std::uint8_t>(kCauchyDataOffset + i);
  return gf_inv(static_cast<std::uint8_t>(xj ^ yi));
}

void gf_mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                std::size_t len) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t b = 0; b < len; ++b) dst[b] ^= src[b];
    return;
  }
  const Tables& t = tables();
  const unsigned log_c = t.log[c];
  for (std::size_t b = 0; b < len; ++b) {
    const std::uint8_t s = src[b];
    if (s == 0) continue;
    unsigned e = log_c + t.log[s];
    if (e >= 255) e -= 255;
    dst[b] ^= t.exp[e];
  }
}

bool gf_solve(std::vector<std::vector<std::uint8_t>>& a,
              std::vector<std::vector<std::uint8_t>>& b, std::size_t width) {
  const std::size_t e = a.size();
  for (std::size_t col = 0; col < e; ++col) {
    // Partial pivot: any nonzero entry works over a field.
    std::size_t pivot = col;
    while (pivot < e && a[pivot][col] == 0) ++pivot;
    if (pivot == e) return false;
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      std::swap(b[pivot], b[col]);
    }
    // Normalize the pivot row so a[col][col] == 1.
    const std::uint8_t inv = gf_inv(a[col][col]);
    if (inv != 1) {
      for (std::size_t c = col; c < e; ++c) a[col][c] = gf_mul(a[col][c], inv);
      for (std::size_t w = 0; w < width; ++w) b[col][w] = gf_mul(b[col][w], inv);
    }
    // Eliminate the column everywhere else (Gauss-Jordan: no back-subst pass).
    for (std::size_t row = 0; row < e; ++row) {
      if (row == col) continue;
      const std::uint8_t f = a[row][col];
      if (f == 0) continue;
      for (std::size_t c = col; c < e; ++c)
        a[row][c] = static_cast<std::uint8_t>(a[row][c] ^ gf_mul(f, a[col][c]));
      gf_mul_add(f, b[col].data(), b[row].data(), width);
    }
  }
  return true;
}

}  // namespace srm::fec
