#include "srm/adaptive.h"

#include <algorithm>

namespace srm {

AdaptiveTuner::AdaptiveTuner(const AdaptiveParams& params, Bounds bounds,
                             double start, double width)
    : params_(params),
      bounds_(bounds),
      start_(start),
      width_(width),
      ave_dups_(params.ewma_weight),
      ave_delay_(params.ewma_weight) {
  // Initial values are taken as configured; the Fig. 11 bounds constrain
  // the *adaptation*, not the application's chosen fixed parameters (which
  // may legitimately sit outside them, e.g. C2 = 0 for deterministic
  // timers on a chain).
}

void AdaptiveTuner::end_period(std::size_t duplicates_in_period) {
  ave_dups_.update(static_cast<double>(duplicates_in_period));
}

void AdaptiveTuner::record_delay(double delay_in_rtt) {
  ave_delay_.update(delay_in_rtt);
}

void AdaptiveTuner::adapt_on_timer_set(bool was_recent_sender) {
  if (!ave_dups_.seeded()) return;  // no history yet
  // "Too high" is strictly above the threshold: an average of exactly one
  // duplicate (the AveDups target) is the intended operating point, not a
  // reason to keep widening.
  if (ave_dups_.value() > params_.target_dups) {
    // Too many duplicates: widen the interval.  Increasing the width is the
    // primary lever; the start moves a little to add deterministic spread.
    start_ += params_.start_increase;
    width_ += params_.width_increase;
  } else if (ave_delay_.seeded() &&
             ave_delay_.value() > params_.target_delay) {
    // Duplicates are under control but we are slow: tighten.  The width
    // shrink mirrors the widen condition so the equilibrium at
    // ave_dups == target is drift-free.
    if (ave_dups_.value() < params_.target_dups) {
      width_ -= params_.width_decrease;
    }
    // The paper "only decreases C1 for members who have sent requests, or
    // when the average number of duplicates is already small".
    if (was_recent_sender || ave_dups_.value() < params_.target_dups / 4.0) {
      start_ -= params_.start_decrease;
    }
  }
  clamp();
}

void AdaptiveTuner::on_sent() {
  // "One mechanism for encouraging deterministic suppression is for members
  // to reduce C1 after they send a request": frequent requestors are likely
  // close to the point of failure, so let them keep firing first.
  start_ -= params_.start_decrease;
  clamp();
}

void AdaptiveTuner::on_duplicate_from_farther(double our_distance,
                                              double their_distance) {
  if (their_distance > params_.farther_ratio * our_distance) {
    start_ -= params_.start_decrease;
    clamp();
  }
}

void AdaptiveTuner::clamp() {
  start_ = std::clamp(start_, bounds_.start_min, bounds_.start_max);
  width_ = std::clamp(width_, bounds_.width_min, bounds_.width_max);
}

}  // namespace srm
