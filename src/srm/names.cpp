#include "srm/names.h"

namespace srm {

std::string to_string(const PageId& p) {
  return std::to_string(p.creator) + "/p" + std::to_string(p.number);
}

std::string to_string(const DataName& n) {
  return std::to_string(n.source) + ":" + to_string(n.page) + ":" +
         std::to_string(n.seq);
}

}  // namespace srm
