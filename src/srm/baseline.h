// Sender-based reliable-multicast baseline (the strawman of Sec. II-A, and
// the unicast-NACK scheme of the La Porta/Schwartz comparison in Sec. VI).
//
// Receivers detect sequence gaps exactly like SRM, but instead of scheduling
// a randomized, suppressible multicast request they immediately unicast a
// NACK to the original source.  The source retransmits — either by unicast
// to each NACKer or by a single multicast, per RepairMode.  There is no
// receiver-side suppression, so a loss shared by N receivers costs N NACKs
// at the source: the ACK/NACK implosion that motivates SRM.
//
// Used only by benches and tests as a comparison point; applications should
// use SrmAgent.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/network.h"
#include "net/packet.h"
#include "sim/timer.h"
#include "srm/agent.h"  // MemberDirectory
#include "srm/messages.h"
#include "srm/metrics.h"
#include "srm/names.h"
#include "util/rng.h"

namespace srm::baseline {

// NACK for one missing ADU, unicast to the data's source.
class NackMessage final : public net::Message {
 public:
  NackMessage(DataName name, SourceId requestor)
      : name_(name), requestor_(requestor) {}

  const DataName& name() const { return name_; }
  SourceId requestor() const { return requestor_; }

  std::string describe() const override {
    return "NACK " + to_string(name_) + " by " + std::to_string(requestor_);
  }
  std::size_t size_bytes() const override { return 40; }

 private:
  DataName name_;
  SourceId requestor_;
};

enum class RepairMode {
  kUnicastToNacker,  // source unicasts the retransmission to each NACKer
  kMulticast,        // source multicasts one retransmission per loss event
};

struct NackConfig {
  RepairMode repair_mode = RepairMode::kUnicastToNacker;
  // Retransmit-timer backoff while waiting for the repair, in units of the
  // receiver's RTT to the source (TCP-style; first wait = 1 RTT beyond the
  // expected repair time).
  double retransmit_rtt_multiplier = 2.0;
  double backoff_factor = 2.0;
  int max_retries = 16;
  // When multicasting repairs, the source suppresses retransmissions of the
  // same ADU for this many seconds times its farthest-receiver distance
  // (crude duplicate damping a real sender-based scheme would need).
  double multicast_holddown_rtts = 1.0;
};

struct NackStats {
  std::uint64_t nacks_sent = 0;        // receiver side
  std::uint64_t nacks_received = 0;    // source side (implosion measure)
  std::uint64_t retransmissions = 0;   // source side
  std::uint64_t recoveries = 0;
  util::Samples recovery_delay_rtt;    // per recovery, receiver side
};

class NackAgent : public net::PacketSink {
 public:
  NackAgent(net::MulticastNetwork& network, MemberDirectory& directory,
            net::NodeId node, SourceId id, net::GroupId group,
            NackConfig config, util::Rng rng);
  ~NackAgent() override;

  void start();
  void stop();

  // Sends a new ADU (as the original source).
  DataName send_data(const PageId& page, Payload payload);

  bool has_data(const DataName& name) const { return store_.count(name) > 0; }
  const NackStats& stats() const { return stats_; }

  void on_receive(const net::Packet& packet,
                  const net::DeliveryInfo& info) override;

 private:
  struct PendingLoss {
    std::unique_ptr<sim::Timer> retransmit_timer;
    sim::Time detect_time = 0.0;
    double rtt = 1.0;
    int retries = 0;
  };

  void handle_data(const DataName& name, const PayloadPtr& payload);
  void handle_nack(const NackMessage& msg);
  void detect_gap(const StreamKey& stream, SeqNo seen);
  void send_nack(const DataName& name);
  double rtt_to(SourceId peer) const;

  net::MulticastNetwork* network_;
  MemberDirectory* directory_;
  net::NodeId node_;
  SourceId id_;
  net::GroupId group_;
  NackConfig config_;
  util::Rng rng_;

  std::unordered_map<DataName, PayloadPtr> store_;
  std::unordered_map<StreamKey, SeqNo> next_expected_;
  std::unordered_map<PageId, SeqNo> next_seq_;
  std::unordered_map<DataName, PendingLoss> pending_;
  // Source-side damping for multicast repairs.
  std::unordered_map<DataName, sim::Time> repair_holddown_;

  NackStats stats_;
  bool started_ = false;
};

}  // namespace srm::baseline
