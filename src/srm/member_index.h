// Session-scoped dense member indexing.
//
// Source-IDs are sparse 32-bit values, so every per-peer table keyed by
// SourceId used to be a hash map — one hash + probe per distance lookup,
// per echo fold, per suppression check, G times per session round.  A
// MemberIndex interns each Source-ID into a small dense integer the first
// time it is seen; hot per-peer state (DistanceEstimator's peer records and
// estimates, the agent's oracle-distance cache) then lives in plain vectors
// indexed by it.  Indices are stable for the lifetime of the session and
// never recycled: a member that leaves and re-joins (same persistent
// Source-ID, Sec. II-C) keeps its slot, which is exactly the behavior the
// protocol wants for state that must survive re-joins.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "srm/names.h"

namespace srm {

class MemberIndex {
 public:
  static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

  // Index for `id`, assigning the next dense slot on first use.
  std::uint32_t intern(SourceId id) {
    if (id < kDirectCap) {
      if (id >= direct_.size()) direct_.resize(id + 1, kNoIndex);
      std::uint32_t& slot = direct_[id];
      if (slot == kNoIndex) {
        slot = static_cast<std::uint32_t>(sources_.size());
        sources_.push_back(id);
      }
      return slot;
    }
    const auto [it, inserted] =
        index_.try_emplace(id, static_cast<std::uint32_t>(sources_.size()));
    if (inserted) sources_.push_back(id);
    return it->second;
  }

  // Index for `id` if already interned, else kNoIndex.  Read-only: never
  // grows the table.
  std::uint32_t find(SourceId id) const {
    if (id < kDirectCap) {
      return id < direct_.size() ? direct_[id] : kNoIndex;
    }
    const auto it = index_.find(id);
    return it == index_.end() ? kNoIndex : it->second;
  }

  SourceId source_at(std::uint32_t index) const { return sources_[index]; }

  // Number of interned members; dense indices are [0, size).
  std::size_t size() const { return sources_.size(); }

 private:
  // Source-IDs below kDirectCap (the common case: harnesses and the paper's
  // scenarios number members from zero) resolve through a flat array — one
  // load on the per-delivery hot path instead of a hash probe.  Larger IDs
  // fall back to the hash map; both views share the same dense index space.
  static constexpr SourceId kDirectCap = 1u << 16;

  std::vector<std::uint32_t> direct_;
  std::unordered_map<SourceId, std::uint32_t> index_;
  std::vector<SourceId> sources_;
};

}  // namespace srm
