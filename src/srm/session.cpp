#include "srm/session.h"

#include <algorithm>

namespace srm {

void DistanceEstimator::on_session_message(const SessionMessage& msg,
                                           SourceId self) {
  const sim::Time t2 = clock_->now();
  const std::uint32_t idx = index_->intern(msg.sender());
  if (idx >= slots_.size()) slots_.resize(index_->size());
  PeerSlot& slot = slots_[idx];
  if (!slot.heard) {
    slot.heard = true;
    const auto pos = std::lower_bound(
        heard_.begin(), heard_.end(), msg.sender(),
        [](const auto& entry, SourceId id) { return entry.first < id; });
    heard_.insert(pos, {msg.sender(), idx});
  }
  slot.peer_timestamp = msg.sender_timestamp();
  slot.arrival = t2;

  const auto echo = msg.echoes().find(self);
  if (echo != msg.echoes().end()) {
    // d = (t2 - t1 - delta) / 2.  t1 is in our clock (we stamped it), t2 is
    // our clock now, delta is the peer's residence time, so clock offsets
    // cancel and only the peer's hold-time measurement matters.
    const double rtt = t2 - echo->second.peer_timestamp - echo->second.hold_time;
    // Guard against transient negatives from pathological hold times.
    slot.estimate = std::max(0.0, rtt / 2.0);
    slot.has_estimate = true;
  }
}

void DistanceEstimator::build_echoes(SessionMessage::Echoes& out,
                                     std::size_t max_echoes) {
  out.clear();
  const sim::Time now = clock_->now();
  const std::size_t n = heard_.size();
  const auto emit = [&](std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const auto& [peer, idx] = heard_[i];
      const PeerSlot& slot = slots_[idx];
      out[peer] =
          SessionMessage::Echo{slot.peer_timestamp, now - slot.arrival};
    }
  };
  if (max_echoes == 0 || max_echoes >= n) {
    emit(0, n);
    return;
  }
  // Rotating window [cursor, cursor + K) over the heard list, wrapped; the
  // wrapped (low) half is emitted first so the table stays sorted.
  const std::size_t start = rotation_cursor_ % n;
  const std::size_t stop = start + max_echoes;
  if (stop <= n) {
    emit(start, stop);
  } else {
    emit(0, stop - n);
    emit(start, n);
  }
  rotation_cursor_ = stop % n;
}

std::optional<double> DistanceEstimator::distance(SourceId peer) const {
  const std::uint32_t idx = index_->find(peer);
  if (idx == MemberIndex::kNoIndex || idx >= slots_.size() ||
      !slots_[idx].has_estimate) {
    return std::nullopt;
  }
  return slots_[idx].estimate;
}

void AreaLiveTable::resize(std::uint32_t areas) {
  live_.resize(areas, 0);
  max_seq_.resize(areas, 0);
  heard_.resize(areas, 0.0);
  has_.resize(areas, 0);
}

void AreaLiveTable::fold(const SessionMessage::AreaDigests& digests,
                         sim::Time now) {
  for (const SessionMessage::AreaDigest& d : digests) {
    if (d.area >= live_.size()) continue;  // unknown area: stale topology
    live_[d.area] = d.live_members;
    if (d.max_seq > max_seq_[d.area]) max_seq_[d.area] = d.max_seq;
    heard_[d.area] = now;
    has_[d.area] = 1;
  }
}

std::size_t AreaLiveTable::live_elsewhere(std::uint32_t self_area,
                                          sim::Time now,
                                          sim::Time horizon) const {
  std::size_t total = 0;
  for (std::uint32_t a = 0; a < live_.size(); ++a) {
    if (a == self_area || !has_[a]) continue;
    if (now - heard_[a] > horizon) continue;
    total += live_[a];
  }
  return total;
}

void AreaLiveTable::build_digests(SessionMessage::AreaDigests& out,
                                  std::uint32_t self_area,
                                  std::uint32_t self_live,
                                  SeqNo self_max_seq) {
  out.clear();
  out.push_back(
      SessionMessage::AreaDigest{self_area, self_live, self_max_seq});
}

sim::Time SessionScheduler::mean_interval(std::size_t group_size,
                                          std::size_t message_bytes) const {
  const double session_bw =
      config_.bandwidth_fraction * config_.data_bandwidth_bytes;
  if (session_bw <= 0.0) return config_.min_interval;
  const double g = static_cast<double>(std::max<std::size_t>(1, group_size));
  const double interval =
      g * static_cast<double>(message_bytes) / session_bw;
  return std::max(config_.min_interval, interval);
}

sim::Time SessionScheduler::next_interval(std::size_t group_size,
                                          std::size_t message_bytes) {
  const sim::Time mean = mean_interval(group_size, message_bytes);
  const double lo = 1.0 - config_.jitter;
  const double hi = 1.0 + config_.jitter;
  return mean * rng_.uniform(lo, hi);
}

}  // namespace srm
