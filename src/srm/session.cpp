#include "srm/session.h"

#include <algorithm>

namespace srm {

void DistanceEstimator::on_session_message(const SessionMessage& msg,
                                           SourceId self) {
  const sim::Time t2 = clock_->now();
  last_heard_[msg.sender()] = PeerRecord{msg.sender_timestamp(), t2};

  const auto echo = msg.echoes().find(self);
  if (echo != msg.echoes().end()) {
    // d = (t2 - t1 - delta) / 2.  t1 is in our clock (we stamped it), t2 is
    // our clock now, delta is the peer's residence time, so clock offsets
    // cancel and only the peer's hold-time measurement matters.
    const double rtt = t2 - echo->second.peer_timestamp - echo->second.hold_time;
    // Guard against transient negatives from pathological hold times.
    estimates_[msg.sender()] = std::max(0.0, rtt / 2.0);
  }
}

std::map<SourceId, SessionMessage::Echo> DistanceEstimator::build_echoes()
    const {
  std::map<SourceId, SessionMessage::Echo> echoes;
  const sim::Time now = clock_->now();
  for (const auto& [peer, rec] : last_heard_) {
    echoes[peer] =
        SessionMessage::Echo{rec.peer_timestamp, now - rec.arrival};
  }
  return echoes;
}

std::optional<double> DistanceEstimator::distance(SourceId peer) const {
  const auto it = estimates_.find(peer);
  if (it == estimates_.end()) return std::nullopt;
  return it->second;
}

sim::Time SessionScheduler::mean_interval(std::size_t group_size,
                                          std::size_t message_bytes) const {
  const double session_bw =
      config_.bandwidth_fraction * config_.data_bandwidth_bytes;
  if (session_bw <= 0.0) return config_.min_interval;
  const double g = static_cast<double>(std::max<std::size_t>(1, group_size));
  const double interval =
      g * static_cast<double>(message_bytes) / session_bw;
  return std::max(config_.min_interval, interval);
}

sim::Time SessionScheduler::next_interval(std::size_t group_size,
                                          std::size_t message_bytes) {
  const sim::Time mean = mean_interval(group_size, message_bytes);
  const double lo = 1.0 - config_.jitter;
  const double hi = 1.0 + config_.jitter;
  return mean * rng_.uniform(lo, hi);
}

}  // namespace srm
