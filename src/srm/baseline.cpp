#include "srm/baseline.h"

#include <algorithm>
#include <cmath>

namespace srm::baseline {

NackAgent::NackAgent(net::MulticastNetwork& network,
                     MemberDirectory& directory, net::NodeId node, SourceId id,
                     net::GroupId group, NackConfig config, util::Rng rng)
    : network_(&network),
      directory_(&directory),
      node_(node),
      id_(id),
      group_(group),
      config_(config),
      rng_(std::move(rng)) {}

NackAgent::~NackAgent() {
  if (started_) stop();
}

void NackAgent::start() {
  if (started_) return;
  started_ = true;
  directory_->bind(id_, node_);
  network_->attach(node_, this);
  network_->join(group_, node_);
}

void NackAgent::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& [name, p] : pending_) {
    if (p.retransmit_timer) p.retransmit_timer->cancel();
  }
  network_->leave(group_, node_);
  network_->detach(node_);
  directory_->unbind(id_);
}

DataName NackAgent::send_data(const PageId& page, Payload payload) {
  const SeqNo seq = next_seq_[page]++;
  const DataName name{id_, page, seq};
  auto shared = std::make_shared<const Payload>(std::move(payload));
  store_[name] = shared;
  next_expected_[StreamKey{id_, page}] = seq + 1;

  net::Packet packet;
  packet.group = group_;
  packet.payload = std::make_shared<DataMessage>(name, shared);
  network_->multicast(node_, std::move(packet));
  return name;
}

double NackAgent::rtt_to(SourceId peer) const {
  if (peer == id_) return 1e-9;
  return 2.0 * network_->distance(node_, directory_->node_of(peer));
}

void NackAgent::on_receive(const net::Packet& packet,
                           const net::DeliveryInfo&) {
  if (const auto* d = dynamic_cast<const DataMessage*>(packet.payload.get())) {
    handle_data(d->name(), d->payload());
  } else if (const auto* n =
                 dynamic_cast<const NackMessage*>(packet.payload.get())) {
    handle_nack(*n);
  }
}

void NackAgent::handle_data(const DataName& name, const PayloadPtr& payload) {
  const bool is_new = store_.emplace(name, payload).second;
  if (is_new) {
    if (auto it = pending_.find(name); it != pending_.end()) {
      ++stats_.recoveries;
      const double delay =
          network_->queue().now() - it->second.detect_time;
      stats_.recovery_delay_rtt.add(delay / it->second.rtt);
      it->second.retransmit_timer->cancel();
      pending_.erase(it);
    }
  }
  detect_gap(stream_of(name), name.seq);
}

void NackAgent::detect_gap(const StreamKey& stream, SeqNo seen) {
  if (stream.source == id_) return;
  SeqNo& expected = next_expected_[stream];
  for (SeqNo q = expected; q < seen; ++q) {
    const DataName missing{stream.source, stream.page, q};
    if (store_.count(missing) || pending_.count(missing)) continue;
    PendingLoss loss;
    loss.detect_time = network_->queue().now();
    loss.rtt = rtt_to(stream.source);
    loss.retransmit_timer = std::make_unique<sim::Timer>(
        network_->queue(), [this, missing] { send_nack(missing); });
    auto [it, inserted] = pending_.emplace(missing, std::move(loss));
    // NACK immediately — there is no suppression in the sender-based model.
    send_nack(missing);
    (void)it;
    (void)inserted;
  }
  expected = std::max(expected, seen + 1);
}

void NackAgent::send_nack(const DataName& name) {
  const auto it = pending_.find(name);
  if (it == pending_.end()) return;
  PendingLoss& loss = it->second;
  if (loss.retries > config_.max_retries) {
    pending_.erase(it);
    return;
  }
  ++stats_.nacks_sent;
  net::Packet packet;
  packet.group = group_;
  packet.payload = std::make_shared<NackMessage>(name, id_);
  network_->unicast(node_, directory_->node_of(name.source),
                    std::move(packet));
  // TCP-style retransmit timeout with exponential backoff.
  const double wait = config_.retransmit_rtt_multiplier * loss.rtt *
                      std::pow(config_.backoff_factor, loss.retries);
  ++loss.retries;
  loss.retransmit_timer->schedule_in(wait);
}

void NackAgent::handle_nack(const NackMessage& msg) {
  ++stats_.nacks_received;
  const auto data = store_.find(msg.name());
  if (data == store_.end()) return;  // nothing to retransmit

  if (config_.repair_mode == RepairMode::kMulticast) {
    // Damp duplicate multicast retransmissions of the same ADU.
    const sim::Time now = network_->queue().now();
    auto [it, inserted] = repair_holddown_.try_emplace(msg.name(), 0.0);
    if (!inserted && now < it->second) return;
    double max_rtt = 0.0;
    for (SourceId m : directory_->members()) {
      if (m != id_) max_rtt = std::max(max_rtt, rtt_to(m));
    }
    it->second = now + config_.multicast_holddown_rtts * max_rtt;
    ++stats_.retransmissions;
    net::Packet packet;
    packet.group = group_;
    packet.payload = std::make_shared<DataMessage>(msg.name(), data->second);
    network_->multicast(node_, std::move(packet));
  } else {
    ++stats_.retransmissions;
    net::Packet packet;
    packet.group = group_;
    packet.payload = std::make_shared<DataMessage>(msg.name(), data->second);
    network_->unicast(node_, directory_->node_of(msg.requestor()),
                      std::move(packet));
  }
}

}  // namespace srm::baseline
