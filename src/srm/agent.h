// SrmAgent: one session member's instantiation of the SRM framework
// (Sec. III).  Composes loss detection, the request/repair timer state
// machines with suppression and backoff, session messaging with distance
// estimation, adaptive timer tuning, local recovery scoping, and the
// token-bucket send policy, on top of the simulated IP multicast network.
//
// The Sec. III-B timer algebra, verbatim: a member detecting a loss draws
// its request timer uniformly from
//     [ C1*d_S , (C1+C2)*d_S ]        d_S = est. distance to the source,
// backs off multiplicatively (SrmConfig::backoff_factor; x3 per Sec. VII-A)
// each time it sends or is suppressed, and ignores same-iteration duplicate
// requests (the footnote-1 heuristic).  A member holding the data draws its
// repair timer from
//     [ D1*d_A , (D1+D2)*d_A ]        d_A = est. distance to the requestor,
// cancels it on hearing another member's repair, and holds down further
// repair timers for holddown_multiplier*d_S (3*d_S in the paper) after
// sending or receiving a repair for the ADU.
//
// The agent is deliberately application-agnostic (the ALF framework): the
// application supplies payload bytes, a page structure over the namespace,
// send priorities, and receives delivery callbacks.  src/wb builds the
// whiteboard on this API.
//
// Every protocol decision is observable as srm-category trace events
// (loss / req_* / rep_* / recovered / adapt_* / scope_escalate); attach a
// tracer with set_tracer() and see trace/timeline.h for the per-loss
// recovery-story analyzer built on them.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/timer.h"
#include "transport/transport.h"
#include "srm/adaptive.h"
#include "srm/config.h"
#include "srm/member_index.h"
#include "srm/messages.h"
#include "srm/metrics.h"
#include "srm/names.h"
#include "srm/rate_limiter.h"
#include "srm/session.h"
#include "util/rng.h"

namespace srm {

// Maps persistent application-level Source-IDs to the network nodes the
// members currently run on.  In a real deployment this indirection is why
// Source-IDs survive re-joins from different hosts; in the simulator it also
// lets agents ask the routing oracle for distances when configured to.
//
// The directory also owns the session's dense member index (see
// srm/member_index.h): every agent's per-peer vectors share one interning
// table, so a Source-ID resolves to the same small int everywhere.
class MemberDirectory {
 public:
  void bind(SourceId id, net::NodeId node);
  void unbind(SourceId id);
  net::NodeId node_of(SourceId id) const;        // throws if unknown
  std::optional<SourceId> source_at(net::NodeId node) const;
  std::vector<SourceId> members() const;

  MemberIndex& index() { return index_; }
  const MemberIndex& index() const { return index_; }

  // Bumped on every bind/unbind; per-agent caches keyed by the dense index
  // (e.g. the oracle-distance cache) revalidate against it.
  std::uint64_t version() const { return version_; }

 private:
  std::unordered_map<SourceId, net::NodeId> to_node_;
  std::unordered_map<net::NodeId, SourceId> to_source_;
  MemberIndex index_;
  std::uint64_t version_ = 0;
};

class SrmAgent : public net::PacketSink {
 public:
  // Callbacks into the application.
  struct AppHooks {
    // Invoked on every newly delivered ADU (original or via repair).
    std::function<void(const DataName&, const Payload&, bool via_repair)>
        on_data;
    // Invoked when loss recovery for an ADU is abandoned (only after
    // max_request_backoffs; should not happen in healthy sessions).
    std::function<void(const DataName&)> on_recovery_abandoned;
    // Invoked when a loss is first detected (before the request timer is
    // set).  Extensions use this to track loss neighborhoods (Sec. VII-B).
    std::function<void(const DataName&)> on_loss_detected;
    // Invoked for every repair request heard from another member (after the
    // agent's own processing).  The FEC layer (srm/fec) treats requests for
    // a stream this member originates as loss evidence feeding the adaptive
    // parity budget.
    std::function<void(const DataName&, SourceId requestor)> on_request_heard;
    // Invoked for packets whose payload is not an SRM message type, letting
    // extensions (e.g. local-recovery group invitations) define their own
    // message types without changes to the agent.
    std::function<void(const net::Packet&, const net::DeliveryInfo&)>
        on_unknown_message;
    // Invoked for every session message received (after the agent's own
    // processing).  Used by the hierarchical session-message extension to
    // learn which peers are "local" (Sec. IX-A).
    std::function<void(const SessionMessage&, const net::DeliveryInfo&)>
        on_session_message;
    // Invoked when a page-list reply arrives (response to
    // request_page_state(nullopt)); reports every page the replier knew.
    std::function<void(const std::vector<PageId>&)> on_page_list;
  };

  // Legacy simulator constructor: wraps `network` in an owned per-agent
  // transport::SimTransport so existing harness/bench/test call sites run
  // unchanged (and bit-identically — the wrapper is a pure pass-through).
  SrmAgent(net::MulticastNetwork& network, MemberDirectory& directory,
           net::NodeId node, SourceId id, net::GroupId group,
           const SrmConfig& config, util::Rng rng);
  // Backend-agnostic constructor: the agent speaks only through `transport`
  // (ARCHITECTURE.md §13), which must outlive it.
  SrmAgent(transport::Transport& transport, MemberDirectory& directory,
           net::NodeId node, SourceId id, net::GroupId group,
           const SrmConfig& config, util::Rng rng);
  ~SrmAgent() override;

  SrmAgent(const SrmAgent&) = delete;
  SrmAgent& operator=(const SrmAgent&) = delete;

  // Joins the multicast group, binds the directory entry, and (if enabled)
  // starts the session-message schedule.
  void start();
  // Leaves the group and cancels all timers (a member departing; SRM does
  // not distinguish this from a partition, Sec. III-D).
  void stop();

  // --- application-facing API ---------------------------------------------

  // Multicasts a new ADU on `page` with the next sequence number; returns
  // its name.  The data is retained for answering future repair requests.
  DataName send_data(const PageId& page, Payload payload);

  // The page this member is "currently viewing"; session messages report
  // state for this page only (Sec. III-A), and the send queue gives repairs
  // for it priority over old pages.
  void set_current_page(const PageId& page) { current_page_ = page; }
  const PageId& current_page() const { return current_page_; }

  void set_app_hooks(AppHooks hooks) { hooks_ = std::move(hooks); }
  // Current hooks; extensions capture these to chain rather than replace.
  const AppHooks& app_hooks() const { return hooks_; }

  bool has_data(const DataName& name) const;
  const Payload* find_data(const DataName& name) const;

  // Installs an ADU into the local store without transmitting or triggering
  // loss detection.  Used by simulation setup to model state acquired before
  // the simulated window (and by tests).  Seeded sequence numbers must be
  // contiguous from 0 per stream or the gap will be requested.
  void seed_data(const DataName& name, Payload payload);

  // Supplies an ADU recovered out-of-band (e.g. reconstructed from a parity
  // packet, see srm/parity.h): cancels any pending repair request for it,
  // stores it so this member can answer others' requests, and delivers it
  // to the application.  Counted as a recovery when a request was pending.
  void supply_data(const DataName& name, Payload payload);

  // Highest sequence number known to exist on a stream (from data, repairs,
  // requests or session messages); nullopt if the stream is unknown.
  std::optional<SeqNo> advertised_max(const StreamKey& stream) const;

  // --- distances ----------------------------------------------------------

  // One-way distance estimate to another member, per the configured
  // DistanceMode.  Falls back to config.default_distance when estimating
  // and the peer has not completed a session-message exchange.
  double distance_to(SourceId peer) const;
  const DistanceEstimator& estimator() const { return estimator_; }

  // --- scoping (local recovery, Sec. VII-B) --------------------------------

  // Policy deciding the TTL of requests this agent originates.  Default:
  // global scope (kMaxTtl).  The experiment harness installs loss-
  // neighborhood-aware policies here.
  using TtlPolicy = std::function<int(const DataName&)>;
  void set_request_ttl_policy(TtlPolicy policy) {
    request_ttl_policy_ = std::move(policy);
  }
  // When set, requests/repairs are sent admin-scoped (Sec. VII-B.1).
  void set_use_admin_scope(bool on) { use_admin_scope_ = on; }

  // Policy deciding which multicast group a request for `name` is sent to
  // (default: the session group).  Local recovery via separate multicast
  // groups (Sec. VII-B.2) routes requests for a loss neighborhood to a
  // dedicated recovery group; repairs always answer on the group the
  // request arrived on.
  using GroupPolicy = std::function<net::GroupId(const DataName&)>;
  void set_request_group_policy(GroupPolicy policy) {
    request_group_policy_ = std::move(policy);
  }

  // Joins/leaves an additional multicast group (e.g. a recovery group).
  // Packets for any joined group are dispatched through this agent.
  void join_extra_group(net::GroupId g);
  void leave_extra_group(net::GroupId g);

  // Sends an application-defined message to an arbitrary group this member
  // belongs to (delivered to others via AppHooks::on_unknown_message).
  void send_app_message(net::GroupId g, net::MessagePtr message,
                        int ttl = net::kMaxTtl);

  // --- introspection -------------------------------------------------------

  SourceId id() const { return id_; }
  net::NodeId node() const { return node_; }
  net::GroupId group() const { return group_; }
  sim::EventQueue& queue() { return transport_->queue(); }
  const sim::EventQueue& queue() const { return transport_->queue(); }
  // The backend this agent speaks through (scripted receive filters, backend
  // name for diagnostics).  Owned by the agent only when constructed via the
  // legacy simulator constructor.
  transport::Transport& transport() { return *transport_; }
  const transport::Transport& transport() const { return *transport_; }
  const SrmConfig& config() const { return config_; }
  AgentMetrics& metrics() { return metrics_; }
  const AgentMetrics& metrics() const { return metrics_; }

  // Current (possibly adapted) timer parameters.
  double c1() const { return request_tuner_.start(); }
  double c2() const { return request_tuner_.width(); }
  double d1() const { return repair_tuner_.start(); }
  double d2() const { return repair_tuner_.width(); }
  const AdaptiveTuner& request_tuner() const { return request_tuner_; }
  const AdaptiveTuner& repair_tuner() const { return repair_tuner_; }

  // True while a request timer is pending for `name`.
  bool request_pending(const DataName& name) const;
  bool repair_pending(const DataName& name) const;

  // Structured tracing (srm category: the protocol events of Sec. III-B /
  // VII — loss, timer set/fire/backoff, request/repair send/hear/suppress,
  // adaptive updates, scope escalations).  Never pass nullptr;
  // &trace::Tracer::null() detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  // Forces a session message out immediately (tests / warm-up / the
  // hierarchical extension).  `ttl` limits its scope; by default it reaches
  // the whole group.
  void send_session_message(int ttl = net::kMaxTtl);
  // Representative variant (Sec. IX-A): the global report also carries
  // per-area digests.  The digest vector is swapped into the pooled message
  // (and the recycled message's capacity swapped back), so the caller's
  // scratch circulates allocation-free like the state/echo tables.
  void send_session_message(int ttl, SessionMessage::AreaDigests&& digests);

  // Page-state recovery (Sec. III-A).  With a page id, asks the group for
  // that page's sequence-number state (the reply reveals the page's streams
  // and triggers normal data recovery for anything missing).  With nullopt,
  // asks for the list of pages members know about (late-join browsing);
  // replies arrive via AppHooks::on_page_list and known_pages().
  void request_page_state(std::optional<PageId> page);

  // Pages this member has seen any evidence of (data, requests, session
  // reports or page replies).
  std::vector<PageId> known_pages() const;

  // net::PacketSink:
  void on_receive(const net::Packet& packet,
                  const net::DeliveryInfo& info) override;

 private:
  // ---- per-stream reception state ----
  struct StreamState {
    SeqNo advertised_max = 0;   // highest seq known to exist
    bool any_known = false;     // false until first evidence of the stream
    std::unordered_map<SeqNo, bool> received;  // set of seqs in the store
  };

  // ---- request (loss recovery) state, one per missing ADU ----
  struct RequestState {
    std::unique_ptr<sim::Timer> timer;
    double dist = 1.0;             // d_S at detection time
    int backoffs = 0;              // backoff iteration i
    sim::Time detect_time = 0.0;   // when the loss was detected
    sim::Time timer_set_time = 0.0;
    sim::Time ignore_backoff_until = 0.0;
    bool we_sent_request = false;
    bool delay_recorded = false;   // req_delay recorded once per loss
    int our_request_ttl = net::kMaxTtl;  // TTL used on our own request
  };

  // ---- repair (response) state, one per ADU we owe an answer for ----
  struct RepairState {
    std::unique_ptr<sim::Timer> timer;
    double dist = 1.0;              // d_A to the requestor
    // rep_delay is normalized by the RTT to the original source of the
    // data (Sec. VII-A), which keeps the delay signal meaningful even for
    // holders far from the requestor.
    double dist_to_source = 1.0;
    SourceId requestor = kInvalidSource;
    int request_ttl = net::kMaxTtl;   // initial TTL of the request
    int request_hops = 0;             // hops the request traveled to us
    net::Scope request_scope = net::Scope::kGlobal;  // repair reuses it
    net::GroupId request_group = 0;   // repair answers on this group
    sim::Time timer_set_time = 0.0;
    bool delay_recorded = false;
    sim::Time holddown_until = 0.0;   // ignore requests until then
  };

  // ---- adaptive-algorithm period accounting (Sec. VII-A) ----
  struct Period {
    DataName name;
    std::size_t observed = 0;   // requests (repairs) seen, incl. our own
    bool we_sent = false;
  };

  // message handlers
  void handle_data(const DataName& name, const PayloadPtr& payload,
                   bool via_repair);
  void handle_request(const RequestMessage& msg, const net::Packet& packet,
                      const net::DeliveryInfo& info);
  void handle_repair(const RepairMessage& msg, const net::Packet& packet,
                     const net::DeliveryInfo& info);
  void handle_session(const SessionMessage& msg);
  void handle_page_request(const PageRequestMessage& msg);
  void handle_page_reply(const PageReplyMessage& msg);

  // loss recovery internals
  void note_stream_advance(const StreamKey& stream, SeqNo seen_seq);
  void detect_loss(const DataName& name, bool via_request);
  void schedule_request_timer(RequestState& state, const DataName& name);
  void on_request_timer_expired(const DataName& name);
  void backoff_request(const DataName& name, RequestState& state);
  void complete_recovery(const DataName& name, const PayloadPtr& payload);

  // repair internals
  void maybe_schedule_repair(const DataName& name, const RequestMessage& msg,
                             const net::DeliveryInfo& info,
                             const net::Packet& packet);
  void on_repair_timer_expired(const DataName& name);
  double holddown_distance(const DataName& name, SourceId requestor) const;

  // period bookkeeping
  void open_request_period(const DataName& name);
  void note_request_observed(const DataName& name, bool ours);
  void open_repair_period(const DataName& name);
  void note_repair_observed(const DataName& name, bool ours);

  // transmit paths (respect the rate limiter and priorities)
  enum class Priority { kCurrentPageRecovery, kNewData, kOldPageRecovery };
  void transmit(net::Packet packet, Priority priority);
  void drain_send_queue();
  Priority recovery_priority(const DataName& name) const;

  // Fills `out` (cleared; capacity retained) with the current page's
  // per-stream state.
  void build_state_report(SessionMessage::StateReport& out) const;
  // Common tail of the send_session_message overloads: wraps the pooled
  // message in a packet and multicasts it at `ttl`.
  void send_session_packet(net::MessagePtr msg, int ttl);
  SessionMessage::StateReport page_state(const PageId& page) const;
  void schedule_next_session_message();

  // Emits one srm-category trace event naming an ADU (slot convention:
  // a=src, b=page_c, c=page_n, d=seq; `e`, `x`, `y` per the schema table).
  // The disabled path is a single relaxed-atomic test.
  void trace_adu(trace::EventType type, const DataName& name,
                 std::uint64_t e = 0, double x = 0.0, double y = 0.0) {
    if (!tracer_->wants(trace::Category::kSrm)) return;
    trace::Event ev;
    ev.type = type;
    ev.t = transport_->queue().now();
    ev.actor = id_;
    ev.a = name.source;
    ev.b = name.page.creator;
    ev.c = name.page.number;
    ev.d = name.seq;
    ev.e = e;
    ev.x = x;
    ev.y = y;
    tracer_->emit(ev);
  }

  // Tail of both public constructors: `ext` is used when `owned` is null.
  SrmAgent(std::unique_ptr<transport::Transport> owned,
           transport::Transport* ext, MemberDirectory& directory,
           net::NodeId node, SourceId id, net::GroupId group,
           const SrmConfig& config, util::Rng rng);

  // core wiring (owned_transport_/transport_ must precede every member whose
  // initializer touches the transport's queue)
  std::unique_ptr<transport::Transport> owned_transport_;
  transport::Transport* transport_;
  MemberDirectory* directory_;
  net::NodeId node_;
  SourceId id_;
  net::GroupId group_;
  SrmConfig config_;
  util::Rng rng_;
  sim::LocalClock clock_;

  // protocol state
  std::unordered_map<DataName, PayloadPtr> store_;
  std::unordered_map<StreamKey, StreamState> streams_;
  std::unordered_map<PageId, SeqNo> next_seq_;
  std::unordered_map<DataName, RequestState> requests_;
  std::unordered_map<DataName, RepairState> repairs_;
  // ADUs whose recovery was abandoned; cleared if the data later arrives.
  std::unordered_set<DataName> abandoned_;
  // ADUs whose two-step local repair we already re-multicast (step two
  // happens at most once per ADU).
  std::unordered_set<DataName> step_two_sent_;
  std::optional<Period> request_period_;
  std::optional<Period> repair_period_;
  PageId current_page_;

  // ---- page-state recovery (Sec. III-A) ----
  // Pending reply timers, keyed by the requested page; the list request
  // uses the sentinel PageId{kInvalidSource, 0}.
  struct PageReplyState {
    std::unique_ptr<sim::Timer> timer;
    SourceId requestor = kInvalidSource;
  };
  static constexpr PageId kPageListKey{kInvalidSource, 0};
  std::unordered_map<PageId, PageReplyState> page_replies_;
  std::set<PageId> known_pages_;
  void note_page(const PageId& page) { known_pages_.insert(page); }
  void on_page_reply_timer(const PageId& key);

  // services
  DistanceEstimator estimator_;
  SessionScheduler session_scheduler_;
  AdaptiveTuner request_tuner_;
  AdaptiveTuner repair_tuner_;
  RateLimiter rate_limiter_;
  std::unique_ptr<sim::Timer> session_timer_;
  std::unique_ptr<sim::Timer> send_queue_timer_;

  // ---- large-session fast path ----
  // Message freelists: each send recycles a message object (and, for
  // session messages, its flat state/echo tables) once the previous send's
  // deliveries have all fired.
  net::MessagePool<SessionMessage> session_pool_;
  net::MessagePool<RequestMessage> request_pool_;
  net::MessagePool<RepairMessage> repair_pool_;
  // Scratch buffers the next session message is built into; capacity
  // circulates between these and pooled messages (SessionMessage::rebind
  // swaps), so a session round settles into zero steady-state allocation.
  SessionMessage::StateReport state_scratch_;
  SessionMessage::Echoes echo_scratch_;
  // Oracle-mode distances by dense member index (< 0 = not yet resolved);
  // rebuilt whenever directory membership changes or the topology mutates
  // (link failures change the ground-truth distances).
  mutable std::vector<double> oracle_dist_;
  mutable std::uint64_t oracle_dist_version_ = 0;
  mutable std::uint64_t oracle_topo_version_ = 0;

  struct QueuedSend {
    net::Packet packet;
    Priority priority;
    std::uint64_t seq;  // FIFO within a priority band
  };
  std::deque<QueuedSend> send_queue_;
  std::uint64_t send_seq_ = 0;

  trace::Tracer* tracer_ = &trace::Tracer::null();
  TtlPolicy request_ttl_policy_;
  GroupPolicy request_group_policy_;
  std::unordered_set<net::GroupId> extra_groups_;
  bool use_admin_scope_ = false;
  bool started_ = false;

  AppHooks hooks_;
  AgentMetrics metrics_;
};

}  // namespace srm
