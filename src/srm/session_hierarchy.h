// Hierarchical (scalable) session messages — the Sec. IX-A extension, as
// the primary scaling mechanism for G = 5k-50k member sessions
// (ARCHITECTURE.md §12).
//
// "For larger groups, we are investigating a hierarchical approach for
// scalable session messages, where members in a local area dynamically
// select one of the local members to be the representative...  The
// representatives would each send global session messages, and maintain an
// estimate of their distance in seconds from each of the other
// representatives.  All other members would send local session messages
// with limited scope sufficient to reach their representative."
//
// Election is leaderless and deterministic: among the live members of a
// local area (itself included) the one with the smallest Source-ID is the
// representative.  Ties resolve identically everywhere, membership changes
// re-elect automatically as stale peers age out, and the loss of a
// representative is healed after one staleness interval.  A member that has
// not yet heard any local peer reports locally rather than claiming the
// role (see tick()) — otherwise the session's first interval would be G
// global reports, an O(G^2) cold-start flood.
//
// This is the session-level coordinator (one per SimSession, not one per
// agent).  Scaling rests on three structural choices:
//
//   1. Struct-of-arrays liveness, sharded per area: each member's peer
//      state is dense vectors indexed by its area's member slot (last-heard
//      stamp, last-report seq), sized by ITS OWN area only, plus an
//      AreaLiveTable of per-area digests — O(area + areas) per member, not
//      O(G), and written only by that member's own event queue (the
//      parallel-kernel single-writer rule).
//   2. Batched timer wheels (sim/timer_wheel.h): all reports of one
//      (area, interval-bucket) share one heap entry, so event-heap
//      occupancy grows with areas x buckets, not members.
//   3. Stateless keyed jitter: every report interval is drawn by
//      util::keyed_unit(seed, area, slot, ordinal) — no shared RNG stream,
//      so hierarchy traces are bit-identical across --kernel-threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/timer_wheel.h"
#include "srm/agent.h"
#include "srm/config.h"
#include "srm/session.h"

namespace srm {

class SessionHierarchy {
 public:
  // `area_count` is the number of local areas the topology was partitioned
  // into (harness::SimSession derives it with net::partition_regions).
  // `seed` keys the stateless jitter draws.
  SessionHierarchy(MemberDirectory& directory, const HierarchyConfig& config,
                   std::uint32_t area_count, std::uint64_t seed);
  ~SessionHierarchy();

  SessionHierarchy(const SessionHierarchy&) = delete;
  SessionHierarchy& operator=(const SessionHierarchy&) = delete;

  // Registers `agent` as a member of `area` and chains its session-message
  // hook.  The agent must be bound in the directory (i.e. started).  Its
  // own flat session schedule should be disabled (SessionConfig::enabled =
  // false) when a hierarchy drives reporting.  Must only be called while no
  // event is executing in parallel (setup, or a serialized global phase).
  void attach(SrmAgent& agent, std::uint32_t area);

  // Unchains the hook and lazily cancels the member's pending wheel item
  // (the item's epoch goes stale).  Same phase restrictions as attach().
  // A member that re-attaches (re-join) keeps its area slot.
  void detach(SrmAgent& agent);

  // Schedules the first (staggered) report of every attached member.
  void start();
  // Stops reporting: cancels every wheel bucket.  start() re-arms.
  void stop();
  bool running() const { return running_; }

  // --- introspection ------------------------------------------------------

  std::uint32_t area_count() const { return area_count_; }
  std::uint32_t area_of(const SrmAgent& agent) const;

  // The member `agent` currently believes represents its local area: the
  // smallest Source-ID among the area's live members (itself included).
  SourceId representative_of(const SrmAgent& agent) const;
  bool is_representative(const SrmAgent& agent) const {
    return representative_of(agent) == agent.id();
  }

  // Local-area peers `agent` heard within the staleness horizon (excluding
  // itself).
  std::size_t live_local_peers(const SrmAgent& agent) const;

  // Whole-group size estimate: the member's own area's live count plus the
  // live counts of every fresh area digest it heard from representatives.
  std::size_t estimated_group_size(const SrmAgent& agent) const;

  std::uint64_t global_reports_sent() const { return total_global_; }
  std::uint64_t local_reports_sent() const { return total_local_; }
  std::uint64_t global_reports_sent(const SrmAgent& agent) const;
  std::uint64_t local_reports_sent(const SrmAgent& agent) const;

  // Live heap entries across all timer wheels (the occupancy evidence the
  // scaling bench records: bounded by areas x wheel_buckets, not members).
  std::size_t pending_wheel_buckets() const;
  std::size_t pending_wheel_items() const;

 private:
  struct Member {
    SrmAgent* agent = nullptr;   // null while detached
    std::uint32_t dense = 0;     // directory member-index slot
    std::uint32_t area = 0;
    std::uint32_t slot = 0;      // index into areas_[area].member_dense
    std::uint32_t epoch = 0;     // bumped per attach; stale items ignored
    std::uint64_t ordinal = 0;   // jitter draw counter
    std::uint64_t local_sent = 0;
    std::uint64_t global_sent = 0;
    bool heard_local = false;  // gates the cold-start representative claim
    bool attached = false;
    SrmAgent::AppHooks previous_hooks;

    // SoA slices over this member's OWN area, indexed by area slot.
    std::vector<sim::Time> last_heard;   // last local report heard
    std::vector<SeqNo> last_report_seq;  // reports heard from that slot
    AreaLiveTable area_table;            // digests heard from reps
    SessionMessage::AreaDigests digest_scratch;
  };

  struct AreaInfo {
    std::vector<std::uint32_t> member_dense;  // slot -> dense member id
  };

  const Member* member_of(const SrmAgent& agent) const;
  Member& ensure_member(SrmAgent& agent, std::uint32_t area);
  void on_session(Member& m, const SessionMessage& msg,
                  const net::DeliveryInfo& info);
  void tick(Member& m);
  void schedule_tick(Member& m, bool initial);
  SourceId elect(const Member& m, sim::Time now) const;
  std::uint32_t count_live(const Member& m, sim::Time now,
                           SeqNo* max_seq_out) const;
  sim::BatchTimerWheel& wheel_for(sim::EventQueue& queue);
  void on_wheel_item(std::uint64_t item);
  sim::Time staleness_horizon() const {
    return config_.staleness_intervals * config_.report_interval;
  }

  MemberDirectory* directory_;
  HierarchyConfig config_;
  std::uint32_t area_count_;
  std::uint64_t seed_;
  bool running_ = false;
  std::uint64_t total_local_ = 0;
  std::uint64_t total_global_ = 0;

  // Dense member id -> state.  unique_ptr keeps Member addresses stable
  // across attach-time growth (hook closures capture the pointer).  Grown
  // and structurally mutated only from serialized phases; the per-member
  // payloads are written only by that member's own region queue.
  std::vector<std::unique_ptr<Member>> members_;
  std::vector<AreaInfo> areas_;
  // One wheel per event queue (one queue sequentially; one per region under
  // the parallel kernel).  std::map for deterministic iteration order in
  // the introspection sums.
  std::map<sim::EventQueue*, std::unique_ptr<sim::BatchTimerWheel>> wheels_;
};

}  // namespace srm
