// Hierarchical (scalable) session messages — the Sec. IX-A extension.
//
// "For larger groups, we are investigating a hierarchical approach for
// scalable session messages, where members in a local area dynamically
// select one of the local members to be the representative...  The
// representatives would each send global session messages, and maintain an
// estimate of their distance in seconds from each of the other
// representatives.  All other members would send local session messages
// with limited scope sufficient to reach their representative."
//
// Election is leaderless and deterministic: a member's local area is
// whatever its TTL-limited session messages reach; among the live local
// members (itself included) the one with the smallest Source-ID is the
// representative.  Ties resolve identically everywhere, membership changes
// re-elect automatically as stale peers age out, and the loss of a
// representative is healed after one staleness interval.
#pragma once

#include <memory>
#include <unordered_map>

#include "sim/timer.h"
#include "srm/agent.h"

namespace srm {

struct HierarchyConfig {
  // Scope of local session messages; must reach the representative.
  int local_ttl = 4;
  // Mean reporting interval (each send is jittered to +-50%).
  sim::Time report_interval = 10.0;
  // A local peer not heard for this many intervals is presumed gone.
  double staleness_intervals = 3.0;
};

class SessionHierarchy {
 public:
  SessionHierarchy(SrmAgent& agent, HierarchyConfig config, util::Rng rng);
  ~SessionHierarchy();

  SessionHierarchy(const SessionHierarchy&) = delete;
  SessionHierarchy& operator=(const SessionHierarchy&) = delete;

  // Begins periodic reporting (global when representative, local-TTL
  // otherwise).  The agent's own flat session schedule should be disabled
  // (SessionConfig::enabled = false) when a hierarchy drives reporting.
  void start();
  void stop();

  // The member this agent currently believes represents its local area.
  SourceId representative() const;
  bool is_representative() const { return representative() == agent_->id(); }

  // Local peers currently considered live (heard recently at local scope).
  std::size_t live_local_peers() const;

  std::uint64_t global_reports_sent() const { return global_sent_; }
  std::uint64_t local_reports_sent() const { return local_sent_; }

 private:
  void tick();
  void on_session(const SessionMessage& msg, const net::DeliveryInfo& info);
  sim::Time staleness_horizon() const {
    return config_.staleness_intervals * config_.report_interval;
  }

  SrmAgent* agent_;
  HierarchyConfig config_;
  util::Rng rng_;
  SrmAgent::AppHooks previous_hooks_;
  std::unique_ptr<sim::Timer> timer_;

  // Peers heard within local scope -> last heard time (simulation clock).
  std::unordered_map<SourceId, sim::Time> local_heard_;
  std::uint64_t global_sent_ = 0;
  std::uint64_t local_sent_ = 0;
  bool running_ = false;
};

}  // namespace srm
