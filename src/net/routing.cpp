#include "net/routing.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace srm::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sorted-vector child-list maintenance.  compute() emits children in
// ascending node-id order, so repairs keep every list sorted and the two
// construction paths agree byte for byte.
void erase_child(std::vector<NodeId>& children, NodeId child) {
  const auto it = std::lower_bound(children.begin(), children.end(), child);
  if (it != children.end() && *it == child) children.erase(it);
}

void insert_child(std::vector<NodeId>& children, NodeId child) {
  const auto it = std::lower_bound(children.begin(), children.end(), child);
  children.insert(it, child);
}

}  // namespace

Routing::Routing(const Topology& topo) : topo_(&topo) {
  const char* env = std::getenv("SRM_ROUTING_VERIFY");
  verify_ = env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

const Spt& Routing::spt(NodeId src) {
  if (src >= topo_->node_count()) {
    throw std::out_of_range("Routing::spt: bad source");
  }
  if (cache_.size() < topo_->node_count()) {
    cache_.resize(topo_->node_count());
  }
  Entry& entry = cache_[src];
  if (entry.tree.root == src) {
    if (entry.version == topo_->version()) return entry.tree;
    if (try_repair(entry)) return entry.tree;
  }
  entry.tree = compute(src);
  entry.version = topo_->version();
  ++stats_.full_builds;
  return entry.tree;
}

bool Routing::try_repair(Entry& entry) {
  if (!repair_enabled_) return false;
  if (!topo_->journal_since(entry.version, edit_scratch_)) {
    ++stats_.fallback_truncated;
    return false;
  }
  if (edit_scratch_.size() > repair_threshold_) {
    ++stats_.fallback_threshold;
    return false;
  }
  repair(entry.tree, edit_scratch_);
  entry.version = topo_->version();
  ++stats_.repairs;
  if (verify_) {
    verify_repair(entry.tree);
    ++stats_.verified;
  }
  return true;
}

Spt Routing::compute(NodeId src) const {
  const std::size_t n = topo_->node_count();
  if (src >= n) throw std::out_of_range("Routing::compute: bad source");

  Spt t;
  t.root = src;
  t.dist.assign(n, kInf);
  t.hops.assign(n, -1);
  t.parent.assign(n, kInvalidNode);
  t.parent_link.assign(n, 0);
  t.children.assign(n, {});

  // Dijkstra with (dist, hops, node) keys: ties on distance are broken by
  // fewer hops then lower node id, giving a deterministic tree.
  using Key = std::tuple<double, int, NodeId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> pq;
  t.dist[src] = 0.0;
  t.hops[src] = 0;
  t.parent[src] = src;
  pq.emplace(0.0, 0, src);

  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const LinkEnd& e : topo_->neighbors(u)) {
      const double nd = d + e.delay;
      const int nh = h + 1;
      const bool better =
          nd < t.dist[e.peer] ||
          (nd == t.dist[e.peer] &&
           (nh < t.hops[e.peer] ||
            (nh == t.hops[e.peer] && u < t.parent[e.peer])));
      if (!done[e.peer] && better) {
        t.dist[e.peer] = nd;
        t.hops[e.peer] = nh;
        t.parent[e.peer] = u;
        t.parent_link[e.peer] = e.link;
        pq.emplace(nd, nh, e.peer);
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (v != src && t.parent[v] != kInvalidNode) {
      t.children[t.parent[v]].push_back(v);
    }
  }
  return t;
}

// Dynamic SPT repair, Ramalingam–Reps style, specialized to our canonical
// tree.  The canonical labels are a pure function of the current graph:
//
//   dist[v]   = shortest delay root -> v
//   hops[v]   = fewest hops among shortest-delay paths
//   parent[v] = lowest-id neighbor u with dist[u] + w(u,v) == dist[v] and
//               hops[u] + 1 == hops[v]
//
// so it suffices to reach that fixpoint from the stale tree:
//
//   1. Detach the subtrees hanging off every removed tree link (labels reset
//      to unreachable) — labels of the remaining nodes are still canonical,
//      because every path the stale tree recorded for them is intact and
//      edge removal can only shrink the path set.
//   2. Seed a (dist, hops, node)-keyed frontier: each orphan's best label
//      over its surviving neighbors, plus both endpoints of every inserted
//      link.
//   3. Run Dijkstra over the frontier with the same improvement predicate
//      as compute().  Labels only ever move toward the canonical fixpoint
//      (every candidate is dist[u] + w for a label dist[u] >= canonical),
//      and every affected node's qualifying predecessors settle strictly
//      before it does, so the minimum-id parent tie-break lands exactly as
//      a full Dijkstra's would.
//
// Distances stay bit-identical to compute() because both paths evaluate the
// same sum dist[parent] + delay along the same (unique) canonical parent
// chain — there is no reassociation to accumulate rounding differences.
void Routing::repair(Spt& t, const std::vector<TopoEdit>& edits) {
  const std::size_t n = topo_->node_count();
  if (t.dist.size() < n) {
    t.dist.resize(n, kInf);
    t.hops.resize(n, -1);
    t.parent.resize(n, kInvalidNode);
    t.parent_link.resize(n, 0);
    t.children.resize(n);
  }
  if (orphan_flag_.size() < n) {
    orphan_flag_.resize(n, 0);
    touched_flag_.resize(n, 0);
  }
  orphans_.clear();
  touched_.clear();

  // Phase 1: detach every subtree whose parent link went down.  Children
  // lists are walked before any label is reset, then cleared; the subtree
  // root is removed from its (necessarily surviving) parent's list.
  for (const TopoEdit& e : edits) {
    if (e.kind != TopoEdit::Kind::kLinkDown) continue;
    const Link& l = topo_->link(e.link);
    NodeId cut_child = kInvalidNode;
    if (t.parent[l.b] == l.a && t.parent_link[l.b] == e.link) {
      cut_child = l.b;
    } else if (t.parent[l.a] == l.b && t.parent_link[l.a] == e.link) {
      cut_child = l.a;
    }
    if (cut_child == kInvalidNode) continue;  // not a tree edge (any more)
    erase_child(t.children[t.parent[cut_child]], cut_child);
    stack_scratch_.assign(1, cut_child);
    while (!stack_scratch_.empty()) {
      const NodeId v = stack_scratch_.back();
      stack_scratch_.pop_back();
      orphan_flag_[v] = 1;
      orphans_.push_back(v);
      for (NodeId c : t.children[v]) stack_scratch_.push_back(c);
      t.children[v].clear();
      t.dist[v] = kInf;
      t.hops[v] = -1;
      t.parent[v] = kInvalidNode;
      t.parent_link[v] = 0;
    }
  }

  // compute()'s improvement predicate; returns whether the (dist, hops) key
  // changed (a parent-only improvement needs no propagation: neighbors'
  // labels do not depend on this node's parent).
  const auto improve = [&](NodeId v, double nd, int nh, NodeId p,
                           LinkId link) -> bool {
    const bool better =
        nd < t.dist[v] ||
        (nd == t.dist[v] &&
         (nh < t.hops[v] || (nh == t.hops[v] && p < t.parent[v])));
    if (!better) return false;
    if (!touched_flag_[v] && !orphan_flag_[v]) {
      touched_flag_[v] = 1;
      touched_.emplace_back(v, t.parent[v]);
    }
    const bool key_changed = nd != t.dist[v] || nh != t.hops[v];
    t.dist[v] = nd;
    t.hops[v] = nh;
    t.parent[v] = p;
    t.parent_link[v] = link;
    return key_changed;
  };

  // Phase 2: seed the frontier.  Orphans scan their surviving neighbors
  // (applying the predicate across all of them lands the lowest-id parent);
  // inserted links seed both endpoints.  A link inserted but re-removed
  // within the same batch is skipped — only the current graph matters.
  using Key = std::tuple<double, int, NodeId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> pq;
  for (const NodeId v : orphans_) {
    for (const LinkEnd& e : topo_->neighbors(v)) {
      if (t.dist[e.peer] == kInf) continue;
      improve(v, t.dist[e.peer] + e.delay, t.hops[e.peer] + 1, e.peer, e.link);
    }
    if (t.dist[v] != kInf) pq.emplace(t.dist[v], t.hops[v], v);
  }
  for (const TopoEdit& e : edits) {
    if (e.kind != TopoEdit::Kind::kLinkUp &&
        e.kind != TopoEdit::Kind::kLinkAdded) {
      continue;
    }
    const Link& l = topo_->link(e.link);
    if (!l.up) continue;
    if (t.dist[l.a] != kInf &&
        improve(l.b, t.dist[l.a] + l.delay, t.hops[l.a] + 1, l.a, e.link)) {
      pq.emplace(t.dist[l.b], t.hops[l.b], l.b);
    }
    if (t.dist[l.b] != kInf &&
        improve(l.a, t.dist[l.b] + l.delay, t.hops[l.b] + 1, l.b, e.link)) {
      pq.emplace(t.dist[l.a], t.hops[l.a], l.a);
    }
  }

  // Phase 3: Dijkstra over the affected region.  Stale queue entries (label
  // improved after the push) are skipped by key comparison.
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (d != t.dist[u] || h != t.hops[u]) continue;
    for (const LinkEnd& e : topo_->neighbors(u)) {
      if (improve(e.peer, d + e.delay, h + 1, u, e.link)) {
        pq.emplace(t.dist[e.peer], t.hops[e.peer], e.peer);
      }
    }
  }

  // Phase 4: patch children lists.  Sorted insertion keeps every list in
  // ascending node-id order, matching compute().
  for (const auto& [v, old_parent] : touched_) {
    touched_flag_[v] = 0;
    if (t.parent[v] == old_parent) continue;
    if (old_parent != kInvalidNode) erase_child(t.children[old_parent], v);
    insert_child(t.children[t.parent[v]], v);
  }
  for (const NodeId v : orphans_) {
    orphan_flag_[v] = 0;
    if (t.parent[v] != kInvalidNode) insert_child(t.children[t.parent[v]], v);
  }
  stats_.repaired_nodes += orphans_.size() + touched_.size();
}

void Routing::verify_repair(const Spt& repaired) const {
  const Spt fresh = compute(repaired.root);
  const auto fail = [&](const char* field, NodeId node) {
    std::ostringstream os;
    os << "Routing: repaired SPT diverges from fresh Dijkstra (root "
       << repaired.root << ", field " << field << ", node " << node << ")";
    throw std::logic_error(os.str());
  };
  const std::size_t n = fresh.dist.size();
  if (repaired.dist.size() != n) fail("size", 0);
  for (NodeId v = 0; v < n; ++v) {
    // Exact comparisons on purpose: the guarantee is bit-identical trees,
    // not approximately-equal ones (infinities compare equal under ==).
    if (repaired.dist[v] != fresh.dist[v]) fail("dist", v);
    if (repaired.hops[v] != fresh.hops[v]) fail("hops", v);
    if (repaired.parent[v] != fresh.parent[v]) fail("parent", v);
    if (repaired.parent_link[v] != fresh.parent_link[v]) fail("parent_link", v);
    if (repaired.children[v] != fresh.children[v]) fail("children", v);
  }
}

double Routing::distance(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (to >= t.dist.size() || t.dist[to] == kInf) {
    throw std::runtime_error("Routing::distance: unreachable");
  }
  return t.dist[to];
}

int Routing::hop_count(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (to >= t.hops.size() || t.hops[to] < 0) {
    throw std::runtime_error("Routing::hop_count: unreachable");
  }
  return t.hops[to];
}

double Routing::try_distance(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  return to < t.dist.size() ? t.dist[to] : kInf;
}

int Routing::try_hop_count(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  return to < t.hops.size() ? t.hops[to] : -1;
}

std::vector<NodeId> Routing::path(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (t.parent.at(to) == kInvalidNode) {
    throw std::runtime_error("Routing::path: unreachable");
  }
  std::vector<NodeId> rev;
  for (NodeId v = to; v != from; v = t.parent[v]) rev.push_back(v);
  rev.push_back(from);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace srm::net
