#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace srm::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const Spt& Routing::spt(NodeId src) {
  if (src >= topo_->node_count()) {
    throw std::out_of_range("Routing::spt: bad source");
  }
  if (topo_version_ != topo_->version()) {
    cache_.clear();
    topo_version_ = topo_->version();
  }
  if (cache_.size() < topo_->node_count()) {
    cache_.resize(topo_->node_count());
  }
  Spt& entry = cache_[src];
  if (entry.root != src) entry = compute(src);
  return entry;
}

Spt Routing::compute(NodeId src) const {
  const std::size_t n = topo_->node_count();
  if (src >= n) throw std::out_of_range("Routing::compute: bad source");

  Spt t;
  t.root = src;
  t.dist.assign(n, kInf);
  t.hops.assign(n, -1);
  t.parent.assign(n, kInvalidNode);
  t.parent_link.assign(n, 0);
  t.children.assign(n, {});

  // Dijkstra with (dist, hops, node) keys: ties on distance are broken by
  // fewer hops then lower node id, giving a deterministic tree.
  using Key = std::tuple<double, int, NodeId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> pq;
  t.dist[src] = 0.0;
  t.hops[src] = 0;
  t.parent[src] = src;
  pq.emplace(0.0, 0, src);

  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const LinkEnd& e : topo_->neighbors(u)) {
      const double nd = d + e.delay;
      const int nh = h + 1;
      const bool better =
          nd < t.dist[e.peer] ||
          (nd == t.dist[e.peer] &&
           (nh < t.hops[e.peer] ||
            (nh == t.hops[e.peer] && u < t.parent[e.peer])));
      if (!done[e.peer] && better) {
        t.dist[e.peer] = nd;
        t.hops[e.peer] = nh;
        t.parent[e.peer] = u;
        t.parent_link[e.peer] = e.link;
        pq.emplace(nd, nh, e.peer);
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (v != src && t.parent[v] != kInvalidNode) {
      t.children[t.parent[v]].push_back(v);
    }
  }
  return t;
}

double Routing::distance(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (to >= t.dist.size() || t.dist[to] == kInf) {
    throw std::runtime_error("Routing::distance: unreachable");
  }
  return t.dist[to];
}

int Routing::hop_count(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (to >= t.hops.size() || t.hops[to] < 0) {
    throw std::runtime_error("Routing::hop_count: unreachable");
  }
  return t.hops[to];
}

std::vector<NodeId> Routing::path(NodeId from, NodeId to) {
  const Spt& t = spt(from);
  if (t.parent.at(to) == kInvalidNode) {
    throw std::runtime_error("Routing::path: unreachable");
  }
  std::vector<NodeId> rev;
  for (NodeId v = to; v != from; v = t.parent[v]) rev.push_back(v);
  rev.push_back(from);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

void Routing::invalidate() { cache_.clear(); }

}  // namespace srm::net
