// Packet model for the simulated IP-multicast network.
//
// The network layer is application-agnostic: a Packet carries a type-erased,
// immutable payload (Message).  SRM defines its message types (DATA, REQUEST,
// REPAIR, SESSION) as subclasses in src/srm/messages.h.  The delivery model
// is best-effort IP multicast: possible loss (via DropPolicy), no ordering
// guarantee beyond per-path FIFO that falls out of fixed link delays.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace srm::net {

using NodeId = std::uint32_t;
using GroupId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// TTL value meaning "unlimited scope".
inline constexpr int kMaxTtl = 255;

// Delivery scope of a multicast packet (Sec. VII-B of the paper).
enum class Scope : std::uint8_t {
  kGlobal,  // normal multicast, limited only by TTL
  kAdmin,   // administratively scoped: confined to the sender's admin region
};

// Base class for application payloads.  Immutable after construction; shared
// by all deliveries of one transmission.
class Message {
 public:
  virtual ~Message() = default;

  // Human-readable tag for traces, e.g. "DATA floyd:5".
  virtual std::string describe() const = 0;

  // Nominal size in bytes; used for bandwidth accounting, not for timing.
  virtual std::size_t size_bytes() const { return 1000; }

  // Small integer identifying the message kind in structured trace events
  // (the `kind` field of net send/deliver/drop/prune records).  0 = untyped;
  // SRM message classes return the values documented in srm/messages.h.
  virtual std::uint32_t trace_kind() const { return 0; }
};

using MessagePtr = std::shared_ptr<const Message>;

// Freelist pool for Message subclasses.
//
// MulticastNetwork already shares one immutable Packet (and thus one
// Message) across every delivery of a transmission; the pool closes the
// remaining per-send allocation by recycling the message object itself —
// including any heap buffers it owns, such as a session message's flat
// state and echo tables — once the last in-flight delivery drops its
// reference.  T must provide `rebind(Args...)` mirroring the constructor
// used with acquire(); rebind is only invoked on objects no delivery can
// still see, so Message immutability holds for every observer.
//
// The freelist is shared-ownership: messages returned after the pool is
// destroyed are freed normally.  Pools are single-threaded, like the
// simulation sessions that own them.
template <typename T>
class MessagePool {
 public:
  template <typename... Args>
  std::shared_ptr<T> acquire(Args&&... args) {
    T* raw = nullptr;
    if (!store_->free.empty()) {
      std::unique_ptr<T> recycled = std::move(store_->free.back());
      store_->free.pop_back();
      recycled->rebind(std::forward<Args>(args)...);
      raw = recycled.release();
    } else {
      raw = new T(std::forward<Args>(args)...);
    }
    // The deleter returns the object to the freelist instead of freeing it
    // (bounded; overflow deletes).  It keeps the store alive by value.
    return std::shared_ptr<T>(raw, [store = store_](T* p) {
      if (store->free.size() < kMaxFree) {
        store->free.emplace_back(p);
      } else {
        delete p;
      }
    });
  }

  std::size_t free_count() const { return store_->free.size(); }

 private:
  // One multicast keeps at most one message in flight per sender; the cap
  // only matters if a burst of sends overlaps many pending deliveries.
  static constexpr std::size_t kMaxFree = 64;

  struct Store {
    std::vector<std::unique_ptr<T>> free;
  };
  std::shared_ptr<Store> store_ = std::make_shared<Store>();
};

struct Packet {
  NodeId source = kInvalidNode;   // originating end host
  GroupId group = 0;              // destination multicast group
  int ttl = kMaxTtl;              // initial TTL chosen by the sender
  Scope scope = Scope::kGlobal;
  MessagePtr payload;
};

// Metadata available to a receiver about one delivery.
struct DeliveryInfo {
  NodeId receiver = kInvalidNode;
  double path_delay = 0.0;  // one-way latency from sender, seconds
  int hops = 0;             // hop count from sender
  int remaining_ttl = 0;    // TTL left after traversal (initial ttl - hops)
};

// Interface implemented by protocol agents to receive packets.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_receive(const Packet& packet, const DeliveryInfo& info) = 0;
};

}  // namespace srm::net
