#include "net/region_map.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <queue>
#include <tuple>

namespace srm::net {

namespace {

constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

// BFS hop distances from `from` over every link, up or down (structure,
// not current connectivity, decides the partition).
std::vector<std::uint32_t> hop_distances(
    const Topology& topo, const std::vector<std::vector<LinkEnd>>& adj,
    NodeId from) {
  (void)topo;
  std::vector<std::uint32_t> dist(adj.size(), kUnassigned);
  std::queue<NodeId> frontier;
  dist[from] = 0;
  frontier.push(from);
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (const LinkEnd& e : adj[n]) {
      if (dist[e.peer] != kUnassigned) continue;
      dist[e.peer] = dist[n] + 1;
      frontier.push(e.peer);
    }
  }
  return dist;
}

}  // namespace

RegionMap partition_regions(const Topology& topo, std::uint32_t target) {
  const std::size_t n = topo.node_count();
  RegionMap map;
  map.of.assign(n, 0);
  map.count = 1;
  map.lookahead = std::numeric_limits<double>::infinity();
  if (target <= 1 || n < 2) return map;
  const std::uint32_t regions =
      std::min<std::uint32_t>(target, static_cast<std::uint32_t>(n));

  // Full adjacency including down links, in link-id order (deterministic).
  std::vector<std::vector<LinkEnd>> adj(n);
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    const Link& l = topo.link(id);
    adj[l.a].push_back(LinkEnd{l.b, id, l.delay, l.threshold});
    adj[l.b].push_back(LinkEnd{l.a, id, l.delay, l.threshold});
  }

  // Farthest-point seeds over hop distance, first seed at node 0; each next
  // seed maximizes the min hop distance to the chosen set (unreachable
  // nodes count as infinitely far, so each component gets a seed before any
  // component gets two).  Ties go to the lowest node id.
  std::vector<NodeId> seeds;
  std::vector<std::uint64_t> min_hops(n, std::numeric_limits<std::uint64_t>::max());
  seeds.push_back(0);
  while (seeds.size() < regions) {
    const std::vector<std::uint32_t> d = hop_distances(topo, adj, seeds.back());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t h =
          (d[i] == kUnassigned) ? std::numeric_limits<std::uint64_t>::max()
                                : d[i];
      min_hops[i] = std::min(min_hops[i], h);
    }
    NodeId best = 0;
    std::uint64_t best_h = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (min_hops[i] > best_h) {
        best_h = min_hops[i];
        best = static_cast<NodeId>(i);
      }
    }
    if (best_h == 0) break;  // every node already is a seed
    seeds.push_back(best);
    min_hops[best] = 0;
  }

  // Multi-source Dijkstra growth over link delay, capped at ceil(n/regions)
  // nodes per region so no single region swallows the graph (region balance
  // is what buys parallel speedup).  Entries are (distance, node, region);
  // the strict tuple order makes claim order deterministic.
  const std::size_t cap = (n + seeds.size() - 1) / seeds.size();
  map.of.assign(n, kUnassigned);
  std::vector<std::size_t> size(seeds.size(), 0);
  using Entry = std::tuple<double, NodeId, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (std::uint32_t r = 0; r < seeds.size(); ++r) {
    pq.push(Entry{0.0, seeds[r], r});
  }
  while (!pq.empty()) {
    const auto [dist, node, region] = pq.top();
    pq.pop();
    if (map.of[node] != kUnassigned) continue;
    if (size[region] >= cap) continue;
    map.of[node] = region;
    ++size[region];
    for (const LinkEnd& e : adj[node]) {
      if (map.of[e.peer] == kUnassigned) {
        pq.push(Entry{dist + e.delay, e.peer, region});
      }
    }
  }

  // Leftovers: disconnected from every seed, or walled in by full regions.
  // Attach each (in node-id order) to the smallest region a neighbor
  // already belongs to — but only while that region is below the cap,
  // else the globally smallest.  Without the cap check a tree with
  // BFS-ordered ids cascades its whole walled-in interior into one region
  // (each node's parent is assigned first and becomes its only assigned
  // neighbor), destroying the balance the cap bought.
  for (std::size_t i = 0; i < n; ++i) {
    if (map.of[i] != kUnassigned) continue;
    std::uint32_t best = kUnassigned;
    for (const LinkEnd& e : adj[i]) {
      const std::uint32_t r = map.of[e.peer];
      if (r == kUnassigned) continue;
      if (best == kUnassigned || size[r] < size[best]) best = r;
    }
    if (best == kUnassigned || size[best] >= cap) {
      std::uint32_t smallest = 0;
      for (std::uint32_t r = 1; r < size.size(); ++r) {
        if (size[r] < size[smallest]) smallest = r;
      }
      best = smallest;
    }
    map.of[i] = best;
    ++size[best];
  }

  // Compact region ids (a cap'd growth can leave a seed's region empty only
  // when seeds landed adjacent; renumber so ids are dense) and compute the
  // lookahead over the cut.
  std::vector<std::uint32_t> dense(seeds.size(), kUnassigned);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t& d = dense[map.of[i]];
    if (d == kUnassigned) d = next++;
    map.of[i] = d;
  }
  map.count = next;
  map.lookahead = std::numeric_limits<double>::infinity();
  for (const Link& l : topo.links()) {
    if (map.of[l.a] != map.of[l.b]) {
      map.lookahead = std::min(map.lookahead, l.delay);
    }
  }
  if (map.count <= 1 || !(map.lookahead > 0.0)) {
    // Zero-delay cut links would force zero-width windows; fall back to the
    // sequential kernel rather than livelock.
    map.of.assign(n, 0);
    map.count = 1;
    map.lookahead = std::numeric_limits<double>::infinity();
  }
  return map;
}

std::vector<std::vector<double>> region_distance_matrix(const Topology& topo,
                                                        const RegionMap& map) {
  const std::size_t regions = map.count;
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(regions,
                                     std::vector<double>(regions, inf));
  for (std::size_t r = 0; r < regions; ++r) d[r][r] = 0.0;
  // Direct edges: minimum delay over every link (up or down) joining the
  // pair.
  for (const Link& l : topo.links()) {
    const std::uint32_t a = map.of[l.a];
    const std::uint32_t b = map.of[l.b];
    if (a == b) continue;
    d[a][b] = std::min(d[a][b], l.delay);
    d[b][a] = std::min(d[b][a], l.delay);
  }
  // Metric closure: a relay through region k is still a chain of cut
  // crossings, so the closure stays a valid lower bound and gains the
  // triangle inequality.
  for (std::size_t k = 0; k < regions; ++k) {
    for (std::size_t i = 0; i < regions; ++i) {
      if (d[i][k] == inf) continue;
      for (std::size_t j = 0; j < regions; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

}  // namespace srm::net
