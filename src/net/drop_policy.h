// Loss injection.
//
// The paper's loss-recovery experiments drop one specific data packet on one
// "congested link" per round (Sec. V); extended scenarios add random loss
// and loss of requests/repairs themselves (Sec. VII-A).  A DropPolicy is
// consulted once per directed link traversal of each multicast transmission,
// so a drop prunes the whole subtree below the congested link, exactly as a
// real multicast forwarding drop would.
//
// Parallel-kernel (PDES) note: under --kernel-threads every region's walks
// consult the same policy object concurrently.  NoDrop and ScriptedLinkDrop
// (atomic budget; one predicate-matching packet stream originates from one
// region at a time) are PDES-safe.  RandomDrop and GilbertElliottDrop draw
// from a single RNG stream whose consumption order would depend on worker
// interleaving — they are sequential-kernel only, and SimSession rejects
// them indirectly: scenarios that need stochastic loss must run with
// kernel_threads == 0.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "util/rng.h"

namespace srm::net {

struct HopContext {
  LinkId link;
  NodeId from;
  NodeId to;
};

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  // Returns true if this packet should be dropped on this directed hop.
  virtual bool should_drop(const Packet& packet, const HopContext& hop) = 0;
};

// Never drops anything.
class NoDrop final : public DropPolicy {
 public:
  bool should_drop(const Packet&, const HopContext&) override { return false; }
};

// Drops packets matching a predicate on a specific directed link, up to a
// maximum count (default 1).  This is the paper's "congested link" that
// drops the first packet from the source.
class ScriptedLinkDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  ScriptedLinkDrop(NodeId from, NodeId to, Predicate match,
                   std::size_t max_drops = 1);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const {
    return drops_.load(std::memory_order_relaxed);
  }
  void rearm(std::size_t max_drops = 1);

 private:
  NodeId from_;
  NodeId to_;
  Predicate match_;
  std::size_t max_drops_;
  // Atomic so concurrent region walks (which only read it until the link and
  // predicate both match) are race-free under the parallel kernel.
  std::atomic<std::size_t> drops_{0};
};

// Drops packets matching an (optional) predicate with fixed probability on
// every hop, or only on one directed link if specified.
class RandomDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  RandomDrop(double rate, util::Rng rng, Predicate match = nullptr);

  // Restricts loss to a single directed link.
  void restrict_to(NodeId from, NodeId to);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const { return drops_; }

 private:
  double rate_;
  util::Rng rng_;
  Predicate match_;
  bool restricted_ = false;
  NodeId from_ = kInvalidNode;
  NodeId to_ = kInvalidNode;
  std::size_t drops_ = 0;
};

// Applies several policies in order; drops if any of them drops.
class CompositeDrop final : public DropPolicy {
 public:
  void add(std::shared_ptr<DropPolicy> policy);
  bool should_drop(const Packet& packet, const HopContext& hop) override;

 private:
  std::vector<std::shared_ptr<DropPolicy>> policies_;
};

// Stateful bursty loss: the Gilbert-Elliott two-state Markov model.  The
// channel alternates between a "good" state (loss probability loss_good,
// usually 0) and a "bad" state (loss probability loss_bad, usually 1);
// per consulted hop it first draws the loss decision for the current state,
// then draws the state transition.  Exactly two RNG draws happen on every
// consulted hop regardless of outcome, so drop decisions never perturb the
// stream consumed by later hops (determinism across config tweaks).
class GilbertElliottDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  struct Params {
    double p_good_bad = 0.05;  // P(good -> bad) per consulted hop
    double p_bad_good = 0.25;  // P(bad -> good) per consulted hop
    double loss_good = 0.0;    // loss probability while in the good state
    double loss_bad = 1.0;     // loss probability while in the bad state

    friend bool operator==(const Params&, const Params&) = default;
  };

  GilbertElliottDrop(Params params, util::Rng rng, Predicate match = nullptr);

  // Restricts loss to a single directed link (state still advances only on
  // hops over that link).
  void restrict_to(NodeId from, NodeId to);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  bool in_bad_state() const { return bad_; }
  std::size_t drops_so_far() const { return drops_; }

 private:
  Params params_;
  util::Rng rng_;
  Predicate match_;
  bool restricted_ = false;
  NodeId from_ = kInvalidNode;
  NodeId to_ = kInvalidNode;
  bool bad_ = false;  // start in the good state
  std::size_t drops_ = 0;
};

// First-match composition: policies are consulted in add() order and the
// first one that drops short-circuits the rest.  Use this when a scripted
// one-shot drop should not also advance (or be masked by) a background
// stochastic policy; contrast CompositeDrop, which feeds every hop to every
// policy.
class CompositeDropPolicy final : public DropPolicy {
 public:
  void add(std::shared_ptr<DropPolicy> policy);
  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t size() const { return policies_.size(); }

 private:
  std::vector<std::shared_ptr<DropPolicy>> policies_;
};

}  // namespace srm::net
