// Loss injection.
//
// The paper's loss-recovery experiments drop one specific data packet on one
// "congested link" per round (Sec. V); extended scenarios add random loss
// and loss of requests/repairs themselves (Sec. VII-A).  A DropPolicy is
// consulted once per directed link traversal of each multicast transmission,
// so a drop prunes the whole subtree below the congested link, exactly as a
// real multicast forwarding drop would.
//
// Parallel-kernel (PDES) note: under --kernel-threads every region's walks
// consult the same policy object concurrently, so every policy here is a
// pure function of stable hop coordinates plus at most atomic counters.
// NoDrop and ScriptedLinkDrop use an atomic budget; RandomDrop and
// GilbertElliottDrop key every stochastic draw by (seed, directed edge,
// packet ordinal) through util::keyed_u64 — no shared RNG stream exists, so
// the decision a given hop consultation produces is identical no matter
// which worker, region, or interleaving executes the walk.  The Gilbert-
// Elliott channel state is a time-slotted per-link Markov chain evaluated
// as a pure function of (seed, link, slot); a relaxed-atomic memo per link
// caches the last computed (slot, state) pair purely as an optimization
// (every recomputation yields the same value, so racing writers are
// harmless).  All policies are PDES-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "util/rng.h"

namespace srm::net {

// One directed link traversal of one transmission.  `packet_ordinal` is the
// per-source transmission counter composed with the sending node id (stable
// across kernels: a node's sends execute in the same order under every
// thread count), and `now` is the send time of the walk consulting the
// policy — both are pure coordinates for keyed stochastic draws.
struct HopContext {
  LinkId link;
  NodeId from;
  NodeId to;
  std::uint64_t packet_ordinal = 0;
  double now = 0.0;
};

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  // Returns true if this packet should be dropped on this directed hop.
  virtual bool should_drop(const Packet& packet, const HopContext& hop) = 0;
  // Called by the network when the policy is installed, before any
  // concurrent consultation, so per-link state can be sized up front
  // (resizing during a parallel walk would race).  Default: no-op.
  virtual void prepare(std::size_t link_count) { (void)link_count; }
};

// Never drops anything.
class NoDrop final : public DropPolicy {
 public:
  bool should_drop(const Packet&, const HopContext&) override { return false; }
};

// Drops packets matching a predicate on a specific directed link, up to a
// maximum count (default 1).  This is the paper's "congested link" that
// drops the first packet from the source.
class ScriptedLinkDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  ScriptedLinkDrop(NodeId from, NodeId to, Predicate match,
                   std::size_t max_drops = 1);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const {
    return drops_.load(std::memory_order_relaxed);
  }
  void rearm(std::size_t max_drops = 1);

 private:
  NodeId from_;
  NodeId to_;
  Predicate match_;
  std::size_t max_drops_;
  // Atomic so concurrent region walks (which only read it until the link and
  // predicate both match) are race-free under the parallel kernel.
  std::atomic<std::size_t> drops_{0};
};

// Drops packets matching an (optional) predicate with fixed probability on
// every hop, or only on one directed link if specified.  Each decision is
// keyed_unit(seed, directed edge, packet ordinal) < rate — a pure function,
// so the same transmission crossing the same hop drops identically in every
// kernel and the policy shares safely across concurrent region walks.
class RandomDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  RandomDrop(double rate, std::uint64_t seed, Predicate match = nullptr);

  // Restricts loss to a single directed link.
  void restrict_to(NodeId from, NodeId to);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  double rate_;
  std::uint64_t seed_;
  Predicate match_;
  bool restricted_ = false;
  NodeId from_ = kInvalidNode;
  NodeId to_ = kInvalidNode;
  std::atomic<std::size_t> drops_{0};
};

// Applies several policies in order; drops if any of them drops.
class CompositeDrop final : public DropPolicy {
 public:
  void add(std::shared_ptr<DropPolicy> policy);
  bool should_drop(const Packet& packet, const HopContext& hop) override;
  void prepare(std::size_t link_count) override;

 private:
  std::vector<std::shared_ptr<DropPolicy>> policies_;
};

// Bursty loss: the Gilbert-Elliott two-state Markov model.  Each link is an
// independent channel alternating between a "good" state (loss probability
// loss_good, usually 0) and a "bad" state (loss probability loss_bad,
// usually 1).  The chain is time-slotted: the state during slot k (of width
// slot_dt seconds) is a pure function of (seed, link, k), obtained by
// advancing the per-slot transition draws from slot 0 (all links start
// good).  The per-hop loss decision is keyed by (seed, directed edge,
// packet ordinal) under the current slot's state.  Pure coordinates mean no
// draw-order dependence: the policy composes with the parallel kernel and
// replays bit-identically at any thread count.
class GilbertElliottDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  struct Params {
    double p_good_bad = 0.05;  // P(good -> bad) per slot
    double p_bad_good = 0.25;  // P(bad -> good) per slot
    double loss_good = 0.0;    // loss probability while in the good state
    double loss_bad = 1.0;     // loss probability while in the bad state
    double slot_dt = 0.5;      // chain slot width in simulated seconds

    friend bool operator==(const Params&, const Params&) = default;
  };

  GilbertElliottDrop(Params params, std::uint64_t seed,
                     Predicate match = nullptr);

  // Restricts loss to a single directed link.
  void restrict_to(NodeId from, NodeId to);

  bool should_drop(const Packet& packet, const HopContext& hop) override;
  // Sizes the per-link chain memos; links beyond this count grow lazily,
  // which is only safe before concurrent consultation begins.
  void prepare(std::size_t link_count) override;

  // Channel state of `link` during the slot containing time `at`.
  bool in_bad_state(LinkId link, double at);
  std::size_t drops_so_far() const {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  bool chain_state(LinkId link, std::uint64_t slot);

  Params params_;
  std::uint64_t seed_;
  Predicate match_;
  bool restricted_ = false;
  NodeId from_ = kInvalidNode;
  NodeId to_ = kInvalidNode;
  // Per-link memo of the last evaluated (slot, state), packed as
  // ((slot + 1) << 1) | bad with 0 meaning "unset".  The chain is a pure
  // function of (seed, link, slot), so concurrent stores can only disagree
  // on *which* correct value is cached, never on correctness.
  std::vector<std::atomic<std::uint64_t>> chain_;
  std::atomic<std::size_t> drops_{0};
};

// First-match composition: policies are consulted in add() order and the
// first one that drops short-circuits the rest.  Use this when a scripted
// one-shot drop should not also count against (or be masked by) a background
// stochastic policy; contrast CompositeDrop, which feeds every hop to every
// policy.
class CompositeDropPolicy final : public DropPolicy {
 public:
  void add(std::shared_ptr<DropPolicy> policy);
  bool should_drop(const Packet& packet, const HopContext& hop) override;
  void prepare(std::size_t link_count) override;

  std::size_t size() const { return policies_.size(); }

 private:
  std::vector<std::shared_ptr<DropPolicy>> policies_;
};

}  // namespace srm::net
