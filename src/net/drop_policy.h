// Loss injection.
//
// The paper's loss-recovery experiments drop one specific data packet on one
// "congested link" per round (Sec. V); extended scenarios add random loss
// and loss of requests/repairs themselves (Sec. VII-A).  A DropPolicy is
// consulted once per directed link traversal of each multicast transmission,
// so a drop prunes the whole subtree below the congested link, exactly as a
// real multicast forwarding drop would.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "util/rng.h"

namespace srm::net {

struct HopContext {
  LinkId link;
  NodeId from;
  NodeId to;
};

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;
  // Returns true if this packet should be dropped on this directed hop.
  virtual bool should_drop(const Packet& packet, const HopContext& hop) = 0;
};

// Never drops anything.
class NoDrop final : public DropPolicy {
 public:
  bool should_drop(const Packet&, const HopContext&) override { return false; }
};

// Drops packets matching a predicate on a specific directed link, up to a
// maximum count (default 1).  This is the paper's "congested link" that
// drops the first packet from the source.
class ScriptedLinkDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  ScriptedLinkDrop(NodeId from, NodeId to, Predicate match,
                   std::size_t max_drops = 1);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const { return drops_; }
  void rearm(std::size_t max_drops = 1);

 private:
  NodeId from_;
  NodeId to_;
  Predicate match_;
  std::size_t max_drops_;
  std::size_t drops_ = 0;
};

// Drops packets matching an (optional) predicate with fixed probability on
// every hop, or only on one directed link if specified.
class RandomDrop final : public DropPolicy {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  RandomDrop(double rate, util::Rng rng, Predicate match = nullptr);

  // Restricts loss to a single directed link.
  void restrict_to(NodeId from, NodeId to);

  bool should_drop(const Packet& packet, const HopContext& hop) override;

  std::size_t drops_so_far() const { return drops_; }

 private:
  double rate_;
  util::Rng rng_;
  Predicate match_;
  bool restricted_ = false;
  NodeId from_ = kInvalidNode;
  NodeId to_ = kInvalidNode;
  std::size_t drops_ = 0;
};

// Applies several policies in order; drops if any of them drops.
class CompositeDrop final : public DropPolicy {
 public:
  void add(std::shared_ptr<DropPolicy> policy);
  bool should_drop(const Packet& packet, const HopContext& hop) override;

 private:
  std::vector<std::shared_ptr<DropPolicy>> policies_;
};

}  // namespace srm::net
