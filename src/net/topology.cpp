#include "net/topology.h"

#include <stdexcept>
#include <vector>

namespace srm::net {

Topology::Topology(std::size_t n) : adjacency_(n), regions_(n, 0) {}

void Topology::record_edit(TopoEdit::Kind kind, LinkId link, NodeId node) {
  ++version_;
  if (journal_capacity_ == 0) return;
  journal_.push_back(TopoEdit{kind, version_, link, node});
  while (journal_.size() > journal_capacity_) journal_.pop_front();
}

bool Topology::journal_since(std::uint64_t since_version,
                             std::vector<TopoEdit>& out) const {
  out.clear();
  if (since_version == version_) return true;
  if (since_version > version_) return false;  // snapshot from the future?
  // Entries have consecutive versions, so the journal reaches back to
  // `since_version` iff its oldest entry is the (since_version + 1) edit.
  if (journal_.empty() || journal_.front().version > since_version + 1) {
    return false;
  }
  for (const TopoEdit& e : journal_) {
    if (e.version > since_version) out.push_back(e);
  }
  return true;
}

void Topology::set_journal_capacity(std::size_t capacity) {
  journal_capacity_ = capacity;
  while (journal_.size() > journal_capacity_) journal_.pop_front();
}

NodeId Topology::add_node() {
  adjacency_.emplace_back();
  regions_.push_back(0);
  const auto id = static_cast<NodeId>(adjacency_.size() - 1);
  record_edit(TopoEdit::Kind::kNodeAdded, 0, id);
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, double delay, int threshold) {
  if (a >= node_count() || b >= node_count()) {
    throw std::out_of_range("Topology::add_link: node out of range");
  }
  if (a == b) throw std::invalid_argument("Topology::add_link: self-loop");
  if (delay <= 0.0) {
    throw std::invalid_argument("Topology::add_link: non-positive delay");
  }
  if (threshold < 1) {
    throw std::invalid_argument("Topology::add_link: threshold < 1");
  }
  for (const LinkEnd& e : adjacency_[a]) {
    if (e.peer == b) {
      throw std::invalid_argument("Topology::add_link: duplicate link");
    }
  }
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, delay, threshold, /*up=*/true});
  adjacency_[a].push_back(LinkEnd{b, id, delay, threshold});
  adjacency_[b].push_back(LinkEnd{a, id, delay, threshold});
  record_edit(TopoEdit::Kind::kLinkAdded, id, 0);
  return id;
}

void Topology::rebuild_adjacency(NodeId n) {
  adjacency_[n].clear();
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    if (!l.up) continue;
    if (l.a == n) {
      adjacency_[n].push_back(LinkEnd{l.b, id, l.delay, l.threshold});
    } else if (l.b == n) {
      adjacency_[n].push_back(LinkEnd{l.a, id, l.delay, l.threshold});
    }
  }
}

void Topology::set_link_up(LinkId id, bool up) {
  Link& l = links_.at(id);
  if (l.up == up) return;
  l.up = up;
  rebuild_adjacency(l.a);
  rebuild_adjacency(l.b);
  record_edit(up ? TopoEdit::Kind::kLinkUp : TopoEdit::Kind::kLinkDown, id, 0);
}

LinkId Topology::link_between(NodeId a, NodeId b) const {
  for (const LinkEnd& e : adjacency_.at(a)) {
    if (e.peer == b) return e.link;
  }
  throw std::invalid_argument("Topology::link_between: no such link");
}

void Topology::set_admin_region(NodeId n, std::uint32_t region) {
  regions_.at(n) = region;
}

bool Topology::connected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++visited;
    for (const LinkEnd& e : adjacency_[n]) {
      if (!seen[e.peer]) {
        seen[e.peer] = true;
        stack.push_back(e.peer);
      }
    }
  }
  return visited == node_count();
}

}  // namespace srm::net
