// Network topology: an undirected weighted graph of routers/hosts.
//
// Links have a propagation delay (the paper normalizes this to one "unit"
// per link in most scenarios) and an Mbone-style TTL threshold (default 1).
// Nodes may be assigned an administrative region for admin-scoped multicast.
//
// Topologies are mutable at runtime: links can be taken down and brought
// back up (fault injection; see src/fault).  Every structural mutation bumps
// version(), which the routing layer and the network's pruned-tree cache use
// to revalidate instead of assuming immutability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace srm::net {

using LinkId = std::uint32_t;

struct LinkEnd {
  NodeId peer;       // node on the other side
  LinkId link;       // id of the connecting link
  double delay;      // propagation delay in seconds
  int threshold;     // minimum TTL to be forwarded on this link
};

struct Link {
  NodeId a;
  NodeId b;
  double delay;
  int threshold;
  bool up = true;  // down links carry no traffic and leave adjacency
};

class Topology {
 public:
  // Creates a topology with n isolated nodes.
  explicit Topology(std::size_t n = 0);

  NodeId add_node();
  // Adds an undirected link; returns its id.  Self-loops and duplicate
  // endpoints are rejected.
  LinkId add_link(NodeId a, NodeId b, double delay = 1.0, int threshold = 1);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const { return links_.at(id); }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<LinkEnd>& neighbors(NodeId n) const {
    return adjacency_.at(n);
  }

  // Finds the link connecting a and b; throws if absent.  Only up links are
  // visible (a downed link "does not exist" for forwarding purposes).
  LinkId link_between(NodeId a, NodeId b) const;

  // Link dynamics (fault injection).  Taking a link down removes it from
  // both endpoints' adjacency (and thus from routing and delivery); bringing
  // it back up restores it in link-id order, so a down/up cycle reproduces
  // the original adjacency exactly.  No-op if already in that state.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return links_.at(id).up; }

  // Bumped on every structural mutation (add_node, add_link, set_link_up).
  // Consumers caching anything derived from the graph (shortest-path trees,
  // pruned delivery trees, oracle distances) revalidate against this.
  std::uint64_t version() const { return version_; }

  // Administrative scoping: nodes default to region 0.
  void set_admin_region(NodeId n, std::uint32_t region);
  std::uint32_t admin_region(NodeId n) const { return regions_.at(n); }

  // True if every node is reachable from node 0 (or the graph is empty).
  bool connected() const;

  // Degree of a node (number of incident links).
  std::size_t degree(NodeId n) const { return adjacency_.at(n).size(); }

 private:
  void rebuild_adjacency(NodeId n);

  std::vector<std::vector<LinkEnd>> adjacency_;
  std::vector<Link> links_;
  std::vector<std::uint32_t> regions_;
  std::uint64_t version_ = 0;
};

}  // namespace srm::net
