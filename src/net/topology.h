// Network topology: an undirected weighted graph of routers/hosts.
//
// Links have a propagation delay (the paper normalizes this to one "unit"
// per link in most scenarios) and an Mbone-style TTL threshold (default 1).
// Nodes may be assigned an administrative region for admin-scoped multicast.
//
// Topologies are mutable at runtime: links can be taken down and brought
// back up (fault injection; see src/fault).  Every structural mutation bumps
// version() and appends one entry to a bounded edit journal, so consumers
// caching derived structures (shortest-path trees, pruned delivery trees)
// can see *what* changed since the version they were built against — and
// repair incrementally — instead of discarding everything on every bump.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/packet.h"

namespace srm::net {

using LinkId = std::uint32_t;

// One structural topology mutation.  Each edit corresponds to exactly one
// version() bump: `version` is the stamp the topology carried *after* the
// edit was applied, so consecutive journal entries have consecutive
// versions.
struct TopoEdit {
  enum class Kind : std::uint8_t {
    kNodeAdded,  // add_node(): `node` is the new node's id
    kLinkAdded,  // add_link(): `link` is the new link's id
    kLinkDown,   // set_link_up(link, false)
    kLinkUp,     // set_link_up(link, true)
  };

  Kind kind = Kind::kLinkDown;
  std::uint64_t version = 0;  // version() after this edit
  LinkId link = 0;            // kLinkAdded / kLinkDown / kLinkUp
  NodeId node = 0;            // kNodeAdded

  friend bool operator==(const TopoEdit&, const TopoEdit&) = default;
};

struct LinkEnd {
  NodeId peer;       // node on the other side
  LinkId link;       // id of the connecting link
  double delay;      // propagation delay in seconds
  int threshold;     // minimum TTL to be forwarded on this link
};

struct Link {
  NodeId a;
  NodeId b;
  double delay;
  int threshold;
  bool up = true;  // down links carry no traffic and leave adjacency
};

class Topology {
 public:
  // Creates a topology with n isolated nodes.
  explicit Topology(std::size_t n = 0);

  NodeId add_node();
  // Adds an undirected link; returns its id.  Self-loops and duplicate
  // endpoints are rejected.
  LinkId add_link(NodeId a, NodeId b, double delay = 1.0, int threshold = 1);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Link& link(LinkId id) const { return links_.at(id); }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<LinkEnd>& neighbors(NodeId n) const {
    return adjacency_.at(n);
  }

  // Finds the link connecting a and b; throws if absent.  Only up links are
  // visible (a downed link "does not exist" for forwarding purposes).
  LinkId link_between(NodeId a, NodeId b) const;

  // Link dynamics (fault injection).  Taking a link down removes it from
  // both endpoints' adjacency (and thus from routing and delivery); bringing
  // it back up restores it in link-id order, so a down/up cycle reproduces
  // the original adjacency exactly.  No-op if already in that state.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const { return links_.at(id).up; }

  // Bumped on every structural mutation (add_node, add_link, set_link_up).
  // Consumers caching anything derived from the graph (shortest-path trees,
  // pruned delivery trees, oracle distances) revalidate against this.
  std::uint64_t version() const { return version_; }

  // Appends to `out` every edit applied after `since_version`, oldest first,
  // and returns true.  Returns false — leaving `out` cleared — when the
  // bounded journal no longer reaches back that far (the consumer's snapshot
  // predates the oldest retained edit and it must rebuild from scratch).
  // `since_version == version()` succeeds with an empty delta.
  bool journal_since(std::uint64_t since_version,
                     std::vector<TopoEdit>& out) const;

  // Number of edits the journal retains before discarding the oldest.
  // Shrinking the capacity drops the oldest entries immediately; capacity 0
  // disables journaling (every journal_since() on a stale version fails).
  std::size_t journal_capacity() const { return journal_capacity_; }
  void set_journal_capacity(std::size_t capacity);

  // Administrative scoping: nodes default to region 0.
  void set_admin_region(NodeId n, std::uint32_t region);
  std::uint32_t admin_region(NodeId n) const { return regions_.at(n); }

  // True if every node is reachable from node 0 (or the graph is empty).
  bool connected() const;

  // Degree of a node (number of incident links).
  std::size_t degree(NodeId n) const { return adjacency_.at(n).size(); }

 private:
  void rebuild_adjacency(NodeId n);
  void record_edit(TopoEdit::Kind kind, LinkId link, NodeId node);

  std::vector<std::vector<LinkEnd>> adjacency_;
  std::vector<Link> links_;
  std::vector<std::uint32_t> regions_;
  std::uint64_t version_ = 0;
  // Edit journal: one entry per version bump, oldest first, bounded by
  // journal_capacity_.  Sized so a burst of fault-plan dynamics (a partition
  // cutting dozens of links, a churn epoch) stays repairable without letting
  // an unconsulted journal grow with the run.
  std::deque<TopoEdit> journal_;
  std::size_t journal_capacity_ = 512;
};

}  // namespace srm::net
