// Shortest-path routing.
//
// The paper assumes "messages are multicast to members of the multicast
// group along a shortest-path tree from the source of the message"
// (Sec. V).  Routing computes, per source, a Dijkstra shortest-path tree
// over the full topology; trees are cached because loss-recovery rounds
// repeatedly multicast from the same handful of sources.
//
// Under network dynamics (src/fault) the topology mutates constantly, so a
// stale tree is *repaired* from the topology's edit journal instead of
// being recomputed: the subtrees hanging off a downed parent link are
// detached and only their frontier is re-relaxed (a Ramalingam–Reps-style
// dynamic Dijkstra).  The canonical tree is a pure function of the graph —
// dist is the shortest delay, hops the fewest hops among shortest-delay
// paths, parent the lowest-id neighbor achieving both — so a repaired tree
// is bit-identical to a fresh compute(); SRM_ROUTING_VERIFY=1 (or
// set_verify(true)) cross-checks that on every repair.  When the journal
// has been truncated or a delta batch is larger than the repair threshold,
// the tree falls back to a full recompute.
#pragma once

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "net/topology.h"

namespace srm::net {

// A shortest-path tree rooted at `root`.
struct Spt {
  NodeId root = kInvalidNode;
  std::vector<double> dist;     // dist[n]: path delay root -> n (seconds)
  std::vector<int> hops;        // hops[n]: hop count root -> n
  std::vector<NodeId> parent;   // parent[n] on path to root; root's is self
  std::vector<LinkId> parent_link;            // link to parent
  std::vector<std::vector<NodeId>> children;  // downstream neighbors
};

// How cached trees were brought up to date; bench/routing_dynamics and the
// repair tests read these.
struct RoutingStats {
  std::uint64_t full_builds = 0;        // fresh Dijkstra runs (any reason)
  std::uint64_t repairs = 0;            // incremental journal repairs
  std::uint64_t fallback_truncated = 0;  // journal didn't reach back far enough
  std::uint64_t fallback_threshold = 0;  // delta batch larger than threshold
  std::uint64_t repaired_nodes = 0;     // nodes relabeled across all repairs
  std::uint64_t verified = 0;           // verify-mode cross-checks performed
};

class Routing {
 public:
  explicit Routing(const Topology& topo);

  // Shortest-path tree rooted at src (computed on first use, then cached).
  // Ties are broken deterministically toward fewer hops then the lower node
  // id, so repeated runs are reproducible.  A stale cached tree is repaired
  // in place from the topology's edit journal when possible (see the header
  // comment) and recomputed otherwise; either way the result is identical.
  const Spt& spt(NodeId src);

  // Path delay / hop count between two nodes (via the SPT of `from`).
  // Throws std::runtime_error when `to` is unreachable.
  double distance(NodeId from, NodeId to);
  int hop_count(NodeId from, NodeId to);

  // Non-throwing variants for callers that legitimately race with link
  // dynamics (SRM agents mid-partition): unreachable nodes yield infinity /
  // -1 instead of an exception.
  double try_distance(NodeId from, NodeId to);
  int try_hop_count(NodeId from, NodeId to);

  // Ordered node path from `from` to `to` (inclusive of both endpoints).
  std::vector<NodeId> path(NodeId from, NodeId to);

  // Repair controls.  Disabling repair (or a threshold of 0) forces every
  // stale tree through a full recompute — the pre-journal behavior, kept for
  // baseline comparison in bench/routing_dynamics.
  void set_repair_enabled(bool enabled) { repair_enabled_ = enabled; }
  bool repair_enabled() const { return repair_enabled_; }
  // Maximum journal-delta batch a repair will absorb; larger batches (e.g. a
  // whole topology rebuilt under one cached tree) recompute instead, since
  // the affected region would approach the full graph anyway.
  void set_repair_threshold(std::size_t max_deltas) {
    repair_threshold_ = max_deltas;
  }
  std::size_t repair_threshold() const { return repair_threshold_; }

  // Cross-check every repaired tree against a fresh compute() and throw
  // std::logic_error on any field mismatch.  Defaults to the value of the
  // SRM_ROUTING_VERIFY environment variable (unset/"0" = off); sanitizer CI
  // and `srmsim --routing-verify` turn it on.
  void set_verify(bool verify) { verify_ = verify; }
  bool verify() const { return verify_; }

  const RoutingStats& stats() const { return stats_; }

  const Topology& topology() const { return *topo_; }

 private:
  struct Entry {
    Spt tree;                    // valid iff tree.root matches the slot
    std::uint64_t version = 0;   // Topology::version() the tree reflects
  };

  Spt compute(NodeId src) const;
  // Brings `entry` up to date via the edit journal; false when the journal
  // is truncated, the batch exceeds the threshold, or repair is disabled.
  bool try_repair(Entry& entry);
  void repair(Spt& t, const std::vector<TopoEdit>& edits);
  void verify_repair(const Spt& repaired) const;

  const Topology* topo_;
  // Indexed by source node; an entry whose tree root differs from its slot
  // is a hole (not yet computed).  Node ids are dense [0, node_count), so a
  // flat vector beats hashing on the per-delivery distance lookups.  Each
  // entry carries its own version stamp because trees are repaired lazily,
  // one source at a time, as they are queried.
  std::vector<Entry> cache_;

  bool repair_enabled_ = true;
  std::size_t repair_threshold_ = 64;
  bool verify_ = false;
  RoutingStats stats_;

  // Repair scratch, reused across calls to keep steady-state repairs
  // allocation-free.  Flag vectors are sized to the node count and reset
  // sparsely (only touched slots are cleared).
  std::vector<TopoEdit> edit_scratch_;
  std::vector<char> orphan_flag_;
  std::vector<char> touched_flag_;
  std::vector<NodeId> orphans_;
  std::vector<std::pair<NodeId, NodeId>> touched_;  // (node, pre-repair parent)
  std::vector<NodeId> stack_scratch_;
};

}  // namespace srm::net
