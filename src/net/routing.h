// Shortest-path routing.
//
// The paper assumes "messages are multicast to members of the multicast
// group along a shortest-path tree from the source of the message"
// (Sec. V).  Routing computes, per source, a Dijkstra shortest-path tree
// over the full topology; trees are cached because loss-recovery rounds
// repeatedly multicast from the same handful of sources.
#pragma once

#include <vector>

#include "net/topology.h"

namespace srm::net {

// A shortest-path tree rooted at `root`.
struct Spt {
  NodeId root = kInvalidNode;
  std::vector<double> dist;     // dist[n]: path delay root -> n (seconds)
  std::vector<int> hops;        // hops[n]: hop count root -> n
  std::vector<NodeId> parent;   // parent[n] on path to root; root's is self
  std::vector<LinkId> parent_link;            // link to parent
  std::vector<std::vector<NodeId>> children;  // downstream neighbors
};

class Routing {
 public:
  explicit Routing(const Topology& topo) : topo_(&topo) {}

  // Shortest-path tree rooted at src (computed on first use, then cached).
  // Ties are broken deterministically toward the lower node id so repeated
  // runs are reproducible.  The cache revalidates against the topology's
  // version stamp, so a topology mutation (link down/up, added link) is
  // picked up on the next query without an explicit invalidate() call.
  const Spt& spt(NodeId src);

  // Path delay / hop count between two nodes (via the SPT of `from`).
  double distance(NodeId from, NodeId to);
  int hop_count(NodeId from, NodeId to);

  // Ordered node path from `from` to `to` (inclusive of both endpoints).
  std::vector<NodeId> path(NodeId from, NodeId to);

  // Drops all cached trees immediately.  Rarely needed: the version-stamp
  // check in spt() already catches every Topology mutation lazily.
  void invalidate();

  const Topology& topology() const { return *topo_; }

 private:
  Spt compute(NodeId src) const;

  const Topology* topo_;
  // Indexed by source node; an entry whose root differs from its slot is a
  // hole (not yet computed).  Node ids are dense [0, node_count), so a flat
  // vector beats hashing on the per-delivery distance lookups.
  std::vector<Spt> cache_;
  // Topology::version() the cache was built against; a mismatch in spt()
  // drops every entry (distances/hop counts may all have changed).
  std::uint64_t topo_version_ = 0;
};

}  // namespace srm::net
